"""Fig. 12: end-to-end LLaMA-3.1-8B vs the non-fused KIVI (A100).

Paper anchors: (a) single-batch latency speedup grows with context, with
KIVI OOMing at 128K; (b) batched throughput orders BitDecoding-KC-2 >
KC-4 > KIVI variants, with KIVI capped below BitDecoding.
"""

import math

from repro.bench import assert_monotonic_increase, assert_ordering
from repro.bench.figures import fig12_e2e_kivi


def test_fig12_e2e_kivi(run):
    exp = run(fig12_e2e_kivi)
    exp.show()

    # (a) Latency speedup rises with context length.
    assert_monotonic_increase(exp, "Single/BitDecoding-KC-4")
    assert exp.series["Single/BitDecoding-KC-4"].value_at(131072) > 1.5

    # KIVI OOMs at 128K (NaN marks the paper's OOM bar).
    assert math.isnan(exp.series["Single/Kivi-4"].value_at(131072))
    assert not math.isnan(exp.series["Single/Kivi-4"].value_at(65536))

    # (b) Throughput ordering at every batch point.
    for bs in (10, 30, 50):
        assert_ordering(exp, bs, "Batches/BitDecoding-KC-2", "Batches/BitDecoding-KC-4")
        assert_ordering(exp, bs, "Batches/BitDecoding-KC-4", "Batches/Kivi-4")
        assert_ordering(exp, bs, "Batches/Kivi-2", "Batches/FlashDecoding-v2")

    # Throughput grows with batch (weights amortize).
    assert_monotonic_increase(exp, "Batches/BitDecoding-KC-4")
