"""Fig. 4b (motivation): dequantization under the original warp layout.

Nsight-style micro comparison of the same low-bit kernel with and without
its dequantization instructions, under FlashAttention's original Wn=1
partitioning: adding DQ must depress compute throughput and Tensor-Core
utilization while raising memory-stall exposure.
"""

from repro.bench.figures import fig4_motivation


def test_fig4_motivation(run):
    exp = run(fig4_motivation)
    exp.show()
    wo = exp.series["W/O Dequant"]
    w = exp.series["W/ Dequant"]

    assert w.value_at("TCs utilization") < wo.value_at("TCs utilization")
    assert w.value_at("Com. Throughput") < wo.value_at("Com. Throughput")
    assert w.value_at("Memory Stalls") > wo.value_at("Memory Stalls")
