"""Design-choice ablations beyond the paper's own (DESIGN.md step 5).

These quantify the tunables BitDecoding fixes by construction: the warp
width Wn, the dequantization instruction path, the KV tile size, the page
size, the channel-wise key group size, and the full bit-width range down
to the 1-bit frontier the paper's related work points at.
"""

from repro.bench.ablations import (
    bit_width_sweep,
    dequant_path_sweep,
    key_group_size_sweep,
    page_size_sweep,
    tile_size_sweep,
    warp_width_sweep,
)


def test_warp_width_sweep(run):
    exp = run(warp_width_sweep, "a100")
    exp.show()
    lat = exp.series["Latency-ms"]
    # Wn=1 is the slow corner; returns diminish past 4.
    assert lat.value_at(1) > 1.5 * lat.value_at(4)
    assert lat.value_at(4) < 1.3 * lat.value_at(8)
    # TC utilization rises with warp width.
    tc = exp.series["TC-Utilization-pct"]
    assert tc.value_at(4) > tc.value_at(1)
    # Eq. 1: the residual block grows linearly with Wn.
    nr = exp.series["Residual-block-Nr"]
    assert nr.value_at(8) == 2 * nr.value_at(4) == 4 * nr.value_at(2)


def test_dequant_path_sweep(run):
    exp = run(dequant_path_sweep)
    exp.show()
    for device in ("a100", "rtx4090", "h100"):
        assert exp.series["cvt"].value_at(device) >= exp.series["lop3"].value_at(device)


def test_tile_size_sweep(run):
    exp = run(tile_size_sweep, "a100")
    exp.show()
    smem = exp.series["SMEM-per-block-KiB"]
    assert smem.value_at(256) > smem.value_at(32)
    lat = exp.series["Latency-ms"]
    # 128 is a sane default: within 25% of the best point in the sweep.
    best = min(lat.values())
    assert lat.value_at(128) < 1.25 * best


def test_page_size_sweep(run):
    exp = run(page_size_sweep, "a100")
    exp.show()
    lat = exp.series["Latency-ms"]
    frag = exp.series["Fragmentation-pct"]
    # Smaller pages cost lookups; larger pages cost fragmentation.
    assert lat.value_at(16) > lat.value_at(256)
    assert frag.value_at(256) > frag.value_at(16)


def test_key_group_size_sweep(run):
    exp = run(key_group_size_sweep)
    exp.show()
    meta = exp.series["Meta-bytes-per-token"]
    err = exp.series["Mean-abs-error"]
    # Monotone trade-off in both directions.
    assert meta.value_at(16) > meta.value_at(128)
    assert err.value_at(128) > err.value_at(16)


def test_bit_width_sweep(run):
    exp = run(bit_width_sweep, "rtx4090")
    exp.show()
    lat = exp.series["Latency-ms"]
    order = [lat.value_at(x) for x in ("fp16", "int8", "int4", "int2", "int1")]
    # Strictly cheaper with every halving of the cache.
    for slower, faster in zip(order, order[1:]):
        assert faster < slower
