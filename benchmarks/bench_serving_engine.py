"""Continuous-batching serving engine: FP16 vs INT4 vs INT2 under load.

The dynamic counterpart of the Fig. 13 serving comparison: one Poisson
request trace is pushed through the same device-memory budget in three
cache formats.  The reproduction contract is the paper's chain of effects
— the low-bit formats hold strictly more resident sequences and sustain
more tokens/s than FP16 — and the run prints a JSON summary for tooling.

Fast mode (CI smoke): ``SERVING_BENCH_FAST=1 pytest benchmarks/bench_serving_engine.py``.
"""

import json
import os

from repro.gpu.arch import get_arch
from repro.model.config import LLAMA31_8B
from repro.serving import compare_formats, paper_serving_stacks, poisson_trace

FAST = os.environ.get("SERVING_BENCH_FAST", "") not in ("", "0")


def test_serving_engine_formats(run):
    model = LLAMA31_8B
    arch = get_arch("a100")
    n_requests, output_len = (80, 16) if FAST else (96, 256)
    trace = poisson_trace(
        n_requests,
        rate_rps=32.0,
        prompt_len=8192,
        output_len=output_len,
        seed=0,
        prompt_jitter=0.1,
        output_jitter=0.25,
    )
    reports = run(
        compare_formats, model, arch, paper_serving_stacks(model, arch), trace
    )

    summary = {
        "model": model.name,
        "arch": arch.name,
        "requests": n_requests,
        "fast_mode": FAST,
        "reports": [r.to_dict() for r in reports],
    }
    print(json.dumps(summary, indent=2))

    by_format = {r.format_name: r for r in reports}
    fp16, int4, int2 = by_format["FP16"], by_format["INT4"], by_format["INT2"]

    # More pages and more resident sequences from the same memory budget.
    assert int4.n_pages > 3 * fp16.n_pages
    assert int2.n_pages > int4.n_pages
    assert int4.peak_resident_batch > fp16.peak_resident_batch
    assert int2.peak_resident_batch >= int4.peak_resident_batch

    # The bigger resident batch translates into sustained throughput.
    assert int4.sustained_tokens_per_s > fp16.sustained_tokens_per_s
    assert int2.sustained_tokens_per_s >= int4.sustained_tokens_per_s

    # Everyone drains the trace; nothing is rejected at these sizes.
    for r in reports:
        assert r.completed == n_requests
        assert r.rejected == 0
