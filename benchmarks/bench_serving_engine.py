"""Continuous-batching serving engine: FP16 vs INT4 vs INT2 under load.

The dynamic counterpart of the Fig. 13 serving comparison: one Poisson
request trace is pushed through the same device-memory budget in three
cache formats.  The reproduction contract is the paper's chain of effects
— the low-bit formats hold strictly more resident sequences and sustain
more tokens/s than FP16 — and chunked prefill (the Sarathi/vLLM
discipline) must stop long prompts head-of-line blocking decodes: the
worst inter-token stall collapses with chunking on, at identical token
totals.

Fast mode (CI smoke): ``SERVING_BENCH_FAST=1 pytest benchmarks/bench_serving_engine.py``.

CI's bench job runs this module as a script to emit the gated benchmark
point::

    python benchmarks/bench_serving_engine.py --fast --prefill-chunk 512 \\
        --out BENCH_serving.json

which ``scripts/check_bench_regression.py`` compares against the
committed ``benchmarks/baseline.json``.
"""

import argparse
import json
import os
import sys

from repro.bench.results import write_run
from repro.gpu.arch import get_arch
from repro.model.config import LLAMA31_8B
from repro.serving import compare_formats, paper_serving_stacks, poisson_trace

FAST = os.environ.get("SERVING_BENCH_FAST", "") not in ("", "0")


def bench_trace(fast):
    """The benchmark's canonical trace (seeded, so identical everywhere)."""
    n_requests, output_len = (80, 16) if fast else (96, 256)
    return poisson_trace(
        n_requests,
        rate_rps=32.0,
        prompt_len=8192,
        output_len=output_len,
        seed=0,
        prompt_jitter=0.1,
        output_jitter=0.25,
    )


def run_serving_bench(fast=False, prefill_chunk=None):
    """One full comparison run, summarized as the BENCH_serving.json shape.

    The ``formats`` block carries the gated headline numbers (tokens/s)
    plus the TTFT/TBT percentile split the chunked-prefill knob trades
    between; ``reports`` keeps the complete per-format dump for humans.
    """
    model = LLAMA31_8B
    arch = get_arch("a100")
    trace = bench_trace(fast)
    reports = compare_formats(
        model,
        arch,
        paper_serving_stacks(model, arch),
        trace,
        prefill_chunk_tokens=prefill_chunk,
    )
    return {
        "model": model.name,
        "arch": arch.name,
        "requests": len(trace),
        "fast_mode": fast,
        "prefill_chunk_tokens": prefill_chunk,
        "formats": {
            r.format_name: {
                "tokens_per_s": r.sustained_tokens_per_s,
                "p50_ttft_s": r.p50_ttft_s,
                "p99_ttft_s": r.p99_ttft_s,
                "p50_tbt_s": r.p50_tbt_s,
                "p99_tbt_s": r.p99_tbt_s,
                "max_tbt_s": r.max_tbt_s,
                "p99_latency_s": r.p99_latency_s,
                "completed": r.completed,
                "preemptions": r.preemptions,
            }
            for r in reports
        },
        "reports": [r.to_dict() for r in reports],
    }


def test_serving_engine_formats(run):
    model = LLAMA31_8B
    arch = get_arch("a100")
    trace = bench_trace(FAST)
    n_requests = len(trace)
    reports = run(
        compare_formats, model, arch, paper_serving_stacks(model, arch), trace
    )

    summary = {
        "model": model.name,
        "arch": arch.name,
        "requests": n_requests,
        "fast_mode": FAST,
        "reports": [r.to_dict() for r in reports],
    }
    print(json.dumps(summary, indent=2))

    by_format = {r.format_name: r for r in reports}
    fp16, int4, int2 = by_format["FP16"], by_format["INT4"], by_format["INT2"]

    # More pages and more resident sequences from the same memory budget.
    assert int4.n_pages > 3 * fp16.n_pages
    assert int2.n_pages > int4.n_pages
    assert int4.peak_resident_batch > fp16.peak_resident_batch
    assert int2.peak_resident_batch >= int4.peak_resident_batch

    # The bigger resident batch translates into sustained throughput.
    assert int4.sustained_tokens_per_s > fp16.sustained_tokens_per_s
    assert int2.sustained_tokens_per_s >= int4.sustained_tokens_per_s

    # Everyone drains the trace; nothing is rejected at these sizes.
    for r in reports:
        assert r.completed == n_requests
        assert r.rejected == 0


def test_chunked_prefill_tames_tbt_tail(run):
    """Chunking on vs off, all three formats, one trace (Sarathi Fig. 1).

    Whole-prompt admission makes every resident decode wait out each
    8k-token prefill, so the TBT tail carries multi-step stalls; chunked
    prefill bounds what one step can charge.  Token totals must be
    identical — chunking reschedules work, it must not change it.
    """
    model = LLAMA31_8B
    arch = get_arch("a100")
    trace = bench_trace(FAST)

    def both():
        whole = compare_formats(
            model, arch, paper_serving_stacks(model, arch), trace
        )
        chunked = compare_formats(
            model,
            arch,
            paper_serving_stacks(model, arch),
            trace,
            prefill_chunk_tokens=512,
        )
        return whole, chunked

    whole, chunked = run(both)
    for off, on in zip(whole, chunked):
        assert off.format_name == on.format_name
        assert on.total_generated_tokens == off.total_generated_tokens
        assert on.completed == off.completed
        assert on.mixed_steps > 0
        # The worst stall collapses for every format: whole-prompt
        # admission charges multi-second prefill gaps to residents, a
        # mixed step never charges more than one token quantum.
        assert on.max_tbt_s < off.max_tbt_s
        print(
            f"{off.format_name}: max TBT {off.max_tbt_s * 1e3:.1f} ms -> "
            f"{on.max_tbt_s * 1e3:.1f} ms, p99 TBT {off.p99_tbt_s * 1e3:.1f} ms -> "
            f"{on.p99_tbt_s * 1e3:.1f} ms, p99 TTFT {off.p99_ttft_s:.2f} s -> "
            f"{on.p99_ttft_s:.2f} s"
        )
    # FP16 is the page-constrained format, so its admissions spread through
    # the decode phase and the stalls land inside the p99 — the full
    # percentile tail collapses, not just the max.
    assert chunked[0].p99_tbt_s < whole[0].p99_tbt_s
    # Chunked admission still gates on the page budget: the low-bit
    # formats hold strictly more residents, as in whole-prompt mode.
    assert chunked[1].peak_resident_batch > chunked[0].peak_resident_batch
    assert chunked[2].peak_resident_batch >= chunked[1].peak_resident_batch


def main(argv=None):
    parser = argparse.ArgumentParser(description="Emit the serving benchmark point")
    parser.add_argument("--fast", action="store_true", default=FAST)
    parser.add_argument("--prefill-chunk", type=int, default=512)
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)
    chunk = args.prefill_chunk if args.prefill_chunk > 0 else None
    summary = run_serving_bench(fast=args.fast, prefill_chunk=chunk)
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    run_dir = write_run(
        "serving",
        {"bench": "serving", "fast": args.fast, "prefill_chunk": chunk, "trace_seed": 0},
        summary,
    )
    for name, point in summary["formats"].items():
        print(
            f"{name}: {point['tokens_per_s']:.1f} tok/s, "
            f"p99 TBT {point['p99_tbt_s'] * 1e3:.1f} ms, "
            f"p99 TTFT {point['p99_ttft_s']:.2f} s"
        )
    print(f"wrote {args.out} and {run_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
