"""Continuous-batching serving engine: FP16 vs INT4 vs INT2 under load.

The dynamic counterpart of the Fig. 13 serving comparison: one Poisson
request trace is pushed through the same device-memory budget in three
cache formats.  The reproduction contract is the paper's chain of effects
— the low-bit formats hold strictly more resident sequences and sustain
more tokens/s than FP16 — and chunked prefill (the Sarathi/vLLM
discipline) must stop long prompts head-of-line blocking decodes: the
worst inter-token stall collapses with chunking on, at identical token
totals.

The ``grouped`` section (:func:`run_grouped_bench`) pins the batched
paged-decode win at serving scale: grouping a batch of equal-shape
decode sequences into one kernel launch must beat the per-sequence loop
both on the engine's deterministic price (floor 5x at batch 8, 16k
context, INT4) and on same-machine wall clock (floor 1x).

Fast mode (CI smoke): ``SERVING_BENCH_FAST=1 pytest benchmarks/bench_serving_engine.py``.

CI's bench job runs this module as a script to emit the gated benchmark
point::

    python benchmarks/bench_serving_engine.py --fast --prefill-chunk 512 \\
        --out BENCH_serving.json

which ``scripts/check_bench_regression.py`` compares against the
committed ``benchmarks/baseline.json``.
"""

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.attn.protocol import get_backend
from repro.bench.results import write_run
from repro.core.config import BitDecodingConfig
from repro.gpu.arch import get_arch
from repro.model.config import LLAMA31_8B, get_model
from repro.serving import compare_formats, paper_serving_stacks, poisson_trace

FAST = os.environ.get("SERVING_BENCH_FAST", "") not in ("", "0")

#: The grouped-decode benchmark point: the serving batch the paper's
#: Fig. 13 stacks sustain, at the 16k context of the kernel headline.
GROUPED_BATCH = 8
GROUPED_SEQ_LEN = 16384
#: Engine-priced grouped-vs-looped floor (one batch-8 launch vs eight
#: batch-1 launches at 16k/INT4 prices ~5.8x on the a100 model).
MIN_GROUPED_SPEEDUP = 5.0
#: Same-machine wall-clock floor: grouping must never lose to the loop.
MIN_GROUPED_WALL_SPEEDUP = 1.0


def bench_trace(fast):
    """The benchmark's canonical trace (seeded, so identical everywhere)."""
    n_requests, output_len = (80, 16) if fast else (96, 256)
    return poisson_trace(
        n_requests,
        rate_rps=32.0,
        prompt_len=8192,
        output_len=output_len,
        seed=0,
        prompt_jitter=0.1,
        output_jitter=0.25,
    )


def run_serving_bench(fast=False, prefill_chunk=None):
    """One full comparison run, summarized as the BENCH_serving.json shape.

    The ``formats`` block carries the gated headline numbers (tokens/s)
    plus the TTFT/TBT percentile split the chunked-prefill knob trades
    between; ``reports`` keeps the complete per-format dump for humans.
    """
    model = LLAMA31_8B
    arch = get_arch("a100")
    trace = bench_trace(fast)
    reports = compare_formats(
        model,
        arch,
        paper_serving_stacks(model, arch),
        trace,
        prefill_chunk_tokens=prefill_chunk,
    )
    return {
        "model": model.name,
        "arch": arch.name,
        "requests": len(trace),
        "fast_mode": fast,
        "prefill_chunk_tokens": prefill_chunk,
        "formats": {
            r.format_name: {
                "tokens_per_s": r.sustained_tokens_per_s,
                "p50_ttft_s": r.p50_ttft_s,
                "p99_ttft_s": r.p99_ttft_s,
                "p50_tbt_s": r.p50_tbt_s,
                "p99_tbt_s": r.p99_tbt_s,
                "max_tbt_s": r.max_tbt_s,
                "p99_latency_s": r.p99_latency_s,
                "completed": r.completed,
                "preemptions": r.preemptions,
            }
            for r in reports
        },
        "reports": [r.to_dict() for r in reports],
    }


def run_grouped_bench(fast=False):
    """Looped-vs-grouped batched decode: the speedup the engine observes.

    Two halves, one paged-bit backend:

    - **Priced** (deterministic): before grouping, a batch of ``B``
      decode-ready sequences cost ``B`` batch-1 kernel launches per
      layer; grouping batches equal-shape sequences into ONE launch.
      The looped price is ``B`` calls to ``decode_step_ms`` at batch 1
      and the grouped price is one call with a single
      ``decode_groups=[(B, L)]`` group — both through the backend's own
      pricing surface, so the ratio is exactly what the serving engine's
      clock sees.
    - **Wall clock** (same-machine ratio): real packed pages, identical
      queries, ``decode_step`` (grouped gather + one batched tile walk)
      vs ``decode_step_looped`` (the retained per-sequence reference).
      Both paths are warmed first so the ratio compares steady-state
      decode, the regime serving lives in.
    """
    model = get_model("tiny")
    arch = get_arch("a100")
    config = BitDecodingConfig(bits=4)
    backend = get_backend("paged-bit", engine=config, arch=arch)
    batch, seq_len = GROUPED_BATCH, GROUPED_SEQ_LEN
    looped_ms = sum(backend.decode_step_ms(model, arch, 1, seq_len) for _ in range(batch))
    grouped_ms = backend.decode_step_ms(
        model, arch, batch, seq_len, decode_groups=[(batch, seq_len)]
    )

    rng = np.random.default_rng(0)
    nr = config.residual_block_size
    ctx = nr * (4 if fast else 8)
    hkv, hq, d = model.hkv, model.hq, model.head_dim
    handle = backend.new_handle(batch, hkv, d)
    k = rng.standard_normal((batch, hkv, ctx, d)).astype(np.float32)
    v = rng.standard_normal((batch, hkv, ctx, d)).astype(np.float32)
    backend.prefill(None, (k, v), handle)
    q = rng.standard_normal((batch, 1, hq, d)).astype(np.float32)

    def best_ms(step, reps=3 if fast else 5):
        step()  # warm the dequant memos and gather caches
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            step()
            times.append((time.perf_counter() - t0) * 1e3)
        return min(times)

    wall_grouped_ms = best_ms(lambda: backend.decode_step(q, handle))
    wall_looped_ms = best_ms(lambda: backend.decode_step_looped(q, handle))
    backend.release(handle)
    return {
        "model": model.name,
        "arch": arch.name,
        "bits": config.bits,
        "batch": batch,
        "seq_len": seq_len,
        "looped_step_ms": looped_ms,
        "grouped_step_ms": grouped_ms,
        "priced_speedup": looped_ms / grouped_ms,
        "wall_context_tokens": ctx,
        "wall_looped_ms": wall_looped_ms,
        "wall_grouped_ms": wall_grouped_ms,
        "wall_speedup": wall_looped_ms / wall_grouped_ms,
        "floors": {
            "min_priced_speedup": MIN_GROUPED_SPEEDUP,
            "min_wall_speedup": MIN_GROUPED_WALL_SPEEDUP,
        },
    }


def test_grouped_decode_recovers_kernel_speedup(run):
    """Grouping must hand the batched kernel's win to the serving clock.

    The priced ratio is deterministic (analytic latency model); the wall
    ratio is a same-machine comparison of two code paths doing identical
    math, so grouped must never lose to the loop it replaced.
    """
    point = run(run_grouped_bench, FAST)
    print(json.dumps({k: v for k, v in point.items() if k != "floors"}, indent=2))
    assert point["priced_speedup"] >= MIN_GROUPED_SPEEDUP
    assert point["wall_speedup"] >= MIN_GROUPED_WALL_SPEEDUP


def test_serving_engine_formats(run):
    model = LLAMA31_8B
    arch = get_arch("a100")
    trace = bench_trace(FAST)
    n_requests = len(trace)
    reports = run(
        compare_formats, model, arch, paper_serving_stacks(model, arch), trace
    )

    summary = {
        "model": model.name,
        "arch": arch.name,
        "requests": n_requests,
        "fast_mode": FAST,
        "reports": [r.to_dict() for r in reports],
    }
    print(json.dumps(summary, indent=2))

    by_format = {r.format_name: r for r in reports}
    fp16, int4, int2 = by_format["FP16"], by_format["INT4"], by_format["INT2"]

    # More pages and more resident sequences from the same memory budget.
    assert int4.n_pages > 3 * fp16.n_pages
    assert int2.n_pages > int4.n_pages
    assert int4.peak_resident_batch > fp16.peak_resident_batch
    assert int2.peak_resident_batch >= int4.peak_resident_batch

    # The bigger resident batch translates into sustained throughput.
    assert int4.sustained_tokens_per_s > fp16.sustained_tokens_per_s
    assert int2.sustained_tokens_per_s >= int4.sustained_tokens_per_s

    # Everyone drains the trace; nothing is rejected at these sizes.
    for r in reports:
        assert r.completed == n_requests
        assert r.rejected == 0


def test_chunked_prefill_tames_tbt_tail(run):
    """Chunking on vs off, all three formats, one trace (Sarathi Fig. 1).

    Whole-prompt admission makes every resident decode wait out each
    8k-token prefill, so the TBT tail carries multi-step stalls; chunked
    prefill bounds what one step can charge.  Token totals must be
    identical — chunking reschedules work, it must not change it.
    """
    model = LLAMA31_8B
    arch = get_arch("a100")
    trace = bench_trace(FAST)

    def both():
        whole = compare_formats(
            model, arch, paper_serving_stacks(model, arch), trace
        )
        chunked = compare_formats(
            model,
            arch,
            paper_serving_stacks(model, arch),
            trace,
            prefill_chunk_tokens=512,
        )
        return whole, chunked

    whole, chunked = run(both)
    for off, on in zip(whole, chunked):
        assert off.format_name == on.format_name
        assert on.total_generated_tokens == off.total_generated_tokens
        assert on.completed == off.completed
        assert on.mixed_steps > 0
        # The worst stall collapses for every format: whole-prompt
        # admission charges multi-second prefill gaps to residents, a
        # mixed step never charges more than one token quantum.
        assert on.max_tbt_s < off.max_tbt_s
        print(
            f"{off.format_name}: max TBT {off.max_tbt_s * 1e3:.1f} ms -> "
            f"{on.max_tbt_s * 1e3:.1f} ms, p99 TBT {off.p99_tbt_s * 1e3:.1f} ms -> "
            f"{on.p99_tbt_s * 1e3:.1f} ms, p99 TTFT {off.p99_ttft_s:.2f} s -> "
            f"{on.p99_ttft_s:.2f} s"
        )
    # FP16 is the page-constrained format, so its admissions spread through
    # the decode phase and the stalls land inside the p99 — the full
    # percentile tail collapses, not just the max.
    assert chunked[0].p99_tbt_s < whole[0].p99_tbt_s
    # Chunked admission still gates on the page budget: the low-bit
    # formats hold strictly more residents, as in whole-prompt mode.
    assert chunked[1].peak_resident_batch > chunked[0].peak_resident_batch
    assert chunked[2].peak_resident_batch >= chunked[1].peak_resident_batch


def main(argv=None):
    parser = argparse.ArgumentParser(description="Emit the serving benchmark point")
    parser.add_argument("--fast", action="store_true", default=FAST)
    parser.add_argument("--prefill-chunk", type=int, default=512)
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)
    chunk = args.prefill_chunk if args.prefill_chunk > 0 else None
    summary = run_serving_bench(fast=args.fast, prefill_chunk=chunk)
    grouped = run_grouped_bench(fast=args.fast)
    if os.path.exists(args.out):
        with open(args.out) as fh:
            prior = json.load(fh)
        # A committed baseline may pin gate floors; rewriting must keep
        # them (the per-section benches merged in afterwards do the same).
        existing = prior.get("grouped") or {}
        if "floors" in existing:
            grouped["floors"] = existing["floors"]
    summary["grouped"] = grouped
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    run_dir = write_run(
        "serving",
        {"bench": "serving", "fast": args.fast, "prefill_chunk": chunk, "trace_seed": 0},
        summary,
    )
    for name, point in summary["formats"].items():
        print(
            f"{name}: {point['tokens_per_s']:.1f} tok/s, "
            f"p99 TBT {point['p99_tbt_s'] * 1e3:.1f} ms, "
            f"p99 TTFT {point['p99_ttft_s']:.2f} s"
        )
    print(
        f"grouped decode: priced {grouped['priced_speedup']:.2f}x "
        f"(batch {grouped['batch']}, {grouped['seq_len']} ctx), "
        f"wall {grouped['wall_speedup']:.2f}x"
    )
    print(f"wrote {args.out} and {run_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
