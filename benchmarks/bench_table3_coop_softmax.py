"""Table III: impact of cooperative softmax and warp parallelism.

Paper: Wn=1 is slow but valid (3.746 ms, 10.91% TC util); Wn=4 without
the cooperative softmax is fast but *invalid* (0.610 ms, 19.71%); enabling
Algorithm 1 restores correctness at ~0.5% cost (0.613 ms, 19.66%).

Validity here is not asserted from theory — the broken configuration is
actually executed numerically and compared against the exact reference.
"""

import pytest

from repro.bench.figures import table3_coop_softmax


def test_table3_coop_softmax(run):
    exp = run(table3_coop_softmax)
    exp.show()
    latency = exp.series["Latency-ms"]
    tc_util = exp.series["TC-Utilization-pct"]
    valid = exp.series["Valid"]

    wn1 = ("1", "off")
    wn4_off = ("4", "off")
    wn4_on = ("4", "on")

    # Wn=4 is much faster than Wn=1 (paper: 6.1x; model tolerance wide).
    assert latency.value_at(wn1) > 2.0 * latency.value_at(wn4_on)

    # Cooperative softmax costs almost nothing (paper: 0.5%).
    assert latency.value_at(wn4_on) == pytest.approx(
        latency.value_at(wn4_off), rel=0.05
    )

    # Tensor-core utilization rises with the wide warp layout.
    assert tc_util.value_at(wn4_on) > 1.5 * tc_util.value_at(wn1)

    # The validity column: fast-but-wrong without Algorithm 1.
    assert valid.value_at(wn1) == 1.0
    assert valid.value_at(wn4_off) == 0.0
    assert valid.value_at(wn4_on) == 1.0
