"""Fig. 10: the six-panel RTX 4090 evaluation (Single/Batches/Pages x
MHA/GQA).

Paper anchors: ~4x at 4-bit and >7x at 2-bit in Single and Batches; in the
Pages setting BitDecoding exceeds 6x on MHA where QServe reaches 3.5x, and
holds ~3x on GQA where QServe collapses to 1.4x.
"""

from repro.bench import assert_monotonic_increase, assert_ordering, assert_within
from repro.bench.figures import fig10_rtx4090


def test_fig10_rtx4090(run):
    exp = run(fig10_rtx4090)
    exp.show()

    # Single sweeps rise with context and land in the paper bands.
    assert_monotonic_increase(exp, "Single-MHA/KC-4")
    assert_monotonic_increase(exp, "Single-MHA/KC-2")
    assert_within(exp, "Single-MHA/KC-4", 102400, 2.5, 6.5)
    assert_within(exp, "Single-MHA/KC-2", 102400, 4.5, 10.0)

    # BitDecoding beats the non-fused KIVI at matched bit width.
    for seq in (10240, 102400):
        assert_ordering(exp, seq, "Single-MHA/KC-4", "Single-MHA/KIVI-4")
        assert_ordering(exp, seq, "Single-MHA/KC-2", "Single-MHA/KIVI-2")

    # KIVI collapses under GQA; BitDecoding does not.
    kivi_mha = exp.series["Single-MHA/KIVI-4"].value_at(102400)
    kivi_gqa = exp.series["Single-GQA/KIVI-4"].value_at(102400)
    assert kivi_gqa < 0.6 * kivi_mha
    assert exp.series["Single-GQA/KC-4"].value_at(102400) > 2.0

    # Pages: BitDecoding beats the CUDA-core systems; QServe's GQA collapse.
    for bs in (2, 4, 8):
        assert_ordering(exp, bs, "Pages-MHA/KC-4", "Pages-MHA/QServe")
        assert_ordering(exp, bs, "Pages-GQA/KC-4", "Pages-GQA/QServe")
        assert_ordering(exp, bs, "Pages-MHA/KC-4", "Pages-MHA/Atom")
    qserve_mha = exp.series["Pages-MHA/QServe"].value_at(8)
    qserve_gqa = exp.series["Pages-GQA/QServe"].value_at(8)
    assert qserve_gqa < 0.8 * qserve_mha
    assert qserve_mha > 2.0  # paper: 3.5x
