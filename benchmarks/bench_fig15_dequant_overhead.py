"""Fig. 15: dequantization overhead analysis.

(a) Fraction of kernel time attributable to dequantization: the CUDA-core
systems (Atom, QServe) burn a large share on it; BitDecoding hides it
under Tensor-Core MMAs (paper: <15% at 4-bit, <35% at 2-bit).
(b) Micro analysis: Atom shows zero Tensor-Core activity and high FMA/ALU
pressure; BitDecoding runs closer to the memory roofline with real TC use.
"""

from repro.bench.figures import fig15_dequant_overhead


def test_fig15_dequant_overhead(run):
    exp = run(fig15_dequant_overhead)
    exp.show()
    frac = exp.series["DequantFraction"]

    # CUDA-core-only systems pay far more than BitDecoding.
    assert frac.value_at("Atom") > 2.0 * frac.value_at("B-KC-4")
    assert frac.value_at("Qserve") > 1.5 * frac.value_at("B-KC-4")

    # BitDecoding stays within the paper's ceilings.
    assert frac.value_at("B-KT-4") < 0.20
    assert frac.value_at("B-KC-4") < 0.20
    assert frac.value_at("B-KC-2") < 0.40
    # 2-bit costs more dequant than 4-bit (more unpack logic per value).
    assert frac.value_at("B-KC-2") > frac.value_at("B-KC-4")

    # Micro analysis: Atom has no TC activity; BitDecoding does.
    atom = exp.series["Micro/Atom"]
    bd = exp.series["Micro/BitDecoding"]
    assert atom.value_at("Tensor Core") == 0.0
    assert bd.value_at("Tensor Core") > 10.0
    # Atom's CUDA pipes are busier than BitDecoding's.
    assert atom.value_at("FMA") + atom.value_at("ALU") > bd.value_at("FMA") + bd.value_at("ALU")
