"""Table I: efficiency/accuracy trade-off (LLaMA-3.1-8B @ 32K on A100).

Paper: INT4 gives +2.98x throughput at -0.2% LongBench accuracy; INT2
gives +4.25x at -2.7%.  Throughput comes from the serving model; accuracy
from the LongBench-proxy retrieval suite running through the real
quantized-cache code path (substitution documented in DESIGN.md).
"""

from repro.bench.figures import table1_accuracy


def test_table1_accuracy(run):
    exp = run(table1_accuracy, quick=False)
    exp.show()
    tput = exp.series["Throughput"]
    acc = exp.series["Accuracy"]

    # Throughput ordering and bands (paper: x2.98 / x4.25).
    fp16 = tput.value_at("FP16")
    assert 2.0 < tput.value_at("INT4") / fp16 < 6.5
    assert 3.0 < tput.value_at("INT2") / fp16 < 9.0
    assert tput.value_at("INT2") > tput.value_at("INT4")

    # Accuracy: INT4 near-lossless, INT2 degrades but modestly.
    assert acc.value_at("INT4") >= acc.value_at("FP16") - 3.0   # paper: -0.2%
    assert acc.value_at("INT2") >= acc.value_at("FP16") - 12.0  # paper: -2.7%
    assert acc.value_at("INT2") <= acc.value_at("INT4") + 1.0
