"""Fig. 11: A100 — high bandwidth exposes compute-side weaknesses.

Paper anchors: BitDecoding up to ~3x; KIVI and QServe can drop *below* the
FP16 baseline; the 4-bit-vs-2-bit gap narrows compared with the RTX 4090.
"""

from repro.bench import assert_ordering, assert_within
from repro.bench.figures import fig10_rtx4090, fig11_a100


def test_fig11_a100(run):
    exp = run(fig11_a100)
    exp.show()

    # BitDecoding wins everywhere.
    for seq in (10240, 102400):
        assert_ordering(exp, seq, "Single/KC-4", "Single/KIVI-4", margin=1.5)
    assert_within(exp, "Single/KC-4", 102400, 2.0, 6.0)

    # KIVI under-performs the FP16 baseline on this machine.
    assert exp.series["Single/KIVI-4"].value_at(102400) < 1.2
    assert exp.series["Batches/KIVI-4"].value_at(32) < 1.2

    # QServe hovers at or below the baseline in the Pages setting.
    for bs in (8, 16, 32, 64):
        assert exp.series["Pages/QServe"].value_at(bs) < 1.6
        assert_ordering(exp, bs, "Pages/KC-4", "Pages/QServe", margin=2.0)


def test_fig11_gap_narrows_vs_rtx4090(run):
    """The paper's closing observation: 2-bit's edge over 4-bit shrinks on
    the A100 because abundant bandwidth shifts kernels compute-side."""
    a100 = run(fig11_a100)
    ada = fig10_rtx4090()
    gap_a100 = (
        a100.series["Single/KC-2"].value_at(102400)
        / a100.series["Single/KC-4"].value_at(102400)
    )
    gap_ada = (
        ada.series["Single-MHA/KC-2"].value_at(102400)
        / ada.series["Single-MHA/KC-4"].value_at(102400)
    )
    assert gap_a100 < gap_ada
