"""Fig. 16: breakdown of BitDecoding's optimizations across generations.

Starting from the continuous-packing baseline, the three design stages —
induced layouts, the wide-Wn warp parallelism, and the software pipeline —
must each add speedup, on the A100 (v2 path), H100 (v3 path) and RTX 5090
(native-FP4 path) alike.
"""

from repro.bench.figures import fig16_breakdown

STAGES = (
    "Baseline (Continuous Packing)",
    "Layout",
    "Layout + Warps",
    "Layout + Warps + Pipeline",
)


def test_fig16_breakdown(run):
    exp = run(fig16_breakdown)
    exp.show()
    for device in ("a100", "h100", "rtx5090"):
        ladder = [exp.series[s].value_at(device) for s in STAGES]
        # Monotone ladder (pipeline adds least; allow float slack).
        for lower, upper in zip(ladder, ladder[1:]):
            assert upper >= lower * 0.99, (device, ladder)
        # The full system is a large multiple of the baseline.
        assert ladder[-1] > 2.5 * ladder[0], (device, ladder)

    # Newer generations benefit more from the full stack (paper's shape).
    full = {d: exp.series[STAGES[-1]].value_at(d) for d in ("a100", "h100", "rtx5090")}
    assert full["h100"] > full["a100"]
    assert full["rtx5090"] > full["a100"]
