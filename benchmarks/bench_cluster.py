"""Cluster serving: prefix-affinity routing and the tensor-parallel tax.

Two claims the cluster layer must keep honest:

1. **Routing matters.** On a shared-prefix trace whose groups genuinely
   split under round-robin (the group count is coprime to the replica
   count — an even count would make ``i % groups`` correlate with the
   round-robin parity and hide the effect), ``prefix_affinity`` keeps
   every group on one replica's prefix cache and must deliver strictly
   more aggregate throughput than ``round_robin``, which re-prefills
   every group's prefix once per replica.
2. **TP is not free.** Tensor-parallel pricing at ``tp=2`` must shard
   the decode attention kernel (per-rank attention strictly below the
   full-head kernel) while charging a strictly positive per-step
   all-reduce tax through the interconnect fields on ``ArchSpec``.

Fast mode (CI smoke): ``SERVING_BENCH_FAST=1 pytest benchmarks/bench_cluster.py``.

CI's bench job runs this module as a script to merge the point into the
serving benchmark file::

    python benchmarks/bench_cluster.py --fast --out BENCH_serving.json

which adds a ``cluster`` section that ``scripts/check_bench_regression.py``
gates against the committed ``benchmarks/baseline.json`` (affinity
speedup at or above the floor, all-reduce tax present).
"""

import argparse
import json
import os
import sys

from repro.bench.results import write_run
from repro.cluster import Router
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.gpu.arch import get_arch
from repro.model.config import get_model
from repro.model.inference import decode_step_breakdown, decode_step_ms
from repro.model.memory import int_format
from repro.serving import EngineConfig, poisson_trace

FAST = os.environ.get("SERVING_BENCH_FAST", "") not in ("", "0")

KERNEL_CONFIG = BitDecodingConfig(bits=4, wn=1)

MODEL = "llama-3.1-8b"
ARCH = "a100"
REPLICAS = 2
#: 15 groups over 2 replicas: coprime, so round-robin really does split
#: every group, while the affinity hash spreads 15 groups near-evenly.
PREFIX_GROUPS = 15
TRACE = dict(
    rate_rps=200.0,
    prompt_len=8192,
    output_len=128,
    seed=0,
    shared_prefix_fraction=0.9,
    prefix_groups=PREFIX_GROUPS,
)
#: Requests: 3 members per group in fast mode, 6 in full.
N_REQUESTS_FAST = 45
N_REQUESTS_FULL = 90

#: The TP pricing point: a serving-shaped decode step on the same stack.
TP_BATCH, TP_SEQ_LEN, TP_DEGREE = 16, 8192, 2


def bench_trace(fast):
    n = N_REQUESTS_FAST if fast else N_REQUESTS_FULL
    return poisson_trace(n, **TRACE)


def _engine_config(model, arch, kernel):
    return EngineConfig(
        model=model,
        arch=arch,
        fmt=int_format(4, model, residual_window=64),
        attention=kernel,
        page_size=64,
        prefix_cache=True,
    )


def run_cluster_bench(fast=False):
    """Route the shared-prefix trace under each policy; price the TP point."""
    model, arch = get_model(MODEL), get_arch(ARCH)
    kernel = BitDecoding(KERNEL_CONFIG, arch)
    trace = bench_trace(fast)
    clusters = {
        policy: Router(
            _engine_config(model, arch, kernel), trace, replicas=REPLICAS, policy=policy
        ).run()
        for policy in ("round_robin", "least_loaded", "prefix_affinity")
    }
    rr, pa = clusters["round_robin"], clusters["prefix_affinity"]
    sharded = decode_step_breakdown(
        model, arch, kernel, TP_BATCH, TP_SEQ_LEN, n_gpus=TP_DEGREE, tp=TP_DEGREE
    )
    full = decode_step_breakdown(model, arch, kernel, TP_BATCH, TP_SEQ_LEN)
    return {
        "model": model.name,
        "arch": arch.name,
        "fast_mode": fast,
        "replicas": REPLICAS,
        "n_requests": len(trace),
        **{k: v for k, v in TRACE.items()},
        "tokens_per_s": {
            policy: c.sustained_tokens_per_s for policy, c in clusters.items()
        },
        "affinity_speedup": (
            pa.sustained_tokens_per_s / rr.sustained_tokens_per_s
            if rr.sustained_tokens_per_s
            else 0.0
        ),
        "hit_rate_round_robin": rr.prefix_hit_rate,
        "hit_rate_prefix_affinity": pa.prefix_hit_rate,
        "cross_replica_misses_round_robin": rr.cross_replica_prefix_misses,
        "cross_replica_misses_prefix_affinity": pa.cross_replica_prefix_misses,
        "groups_split_round_robin": rr.prefix_groups_split,
        "groups_split_prefix_affinity": pa.prefix_groups_split,
        "load_imbalance_prefix_affinity": pa.load_imbalance,
        "completed": {policy: c.completed for policy, c in clusters.items()},
        "tp": {
            "batch": TP_BATCH,
            "seq_len": TP_SEQ_LEN,
            "tp": TP_DEGREE,
            "allreduce_tax_ms": sharded.comm_ms,
            "rank_attention_ms": sharded.attention_ms,
            "full_attention_ms": full.attention_ms,
            "step_ms_tp1": decode_step_ms(model, arch, kernel, TP_BATCH, TP_SEQ_LEN),
            "step_ms_tp2": decode_step_ms(
                model, arch, kernel, TP_BATCH, TP_SEQ_LEN, n_gpus=TP_DEGREE, tp=TP_DEGREE
            ),
        },
        "report_round_robin": rr.to_dict(),
        "report_prefix_affinity": pa.to_dict(),
    }


def test_cluster_serving_point(run):
    point = run(run_cluster_bench, FAST)
    print(json.dumps({k: v for k, v in point.items() if not k.startswith("report_")}, indent=2))
    # Routing: affinity keeps every group home and strictly beats
    # round-robin, which splits every group across both replicas.
    assert point["cross_replica_misses_prefix_affinity"] == 0
    assert point["groups_split_prefix_affinity"] == 0
    assert point["cross_replica_misses_round_robin"] >= PREFIX_GROUPS
    assert point["groups_split_round_robin"] == PREFIX_GROUPS
    assert point["hit_rate_prefix_affinity"] > point["hit_rate_round_robin"]
    assert point["affinity_speedup"] > 1.0
    # Every policy still serves every request exactly once.
    assert all(done == point["n_requests"] for done in point["completed"].values())
    # TP pricing: the attention kernel shrinks, the interconnect charges.
    tp = point["tp"]
    assert tp["allreduce_tax_ms"] > 0.0
    assert tp["rank_attention_ms"] < tp["full_attention_ms"]
    assert tp["step_ms_tp2"] < tp["step_ms_tp1"]


def main(argv=None):
    parser = argparse.ArgumentParser(description="Emit the cluster serving benchmark point")
    parser.add_argument("--fast", action="store_true", default=FAST)
    parser.add_argument(
        "--out",
        default="BENCH_serving.json",
        help="serving benchmark file to merge the 'cluster' section into "
        "(created if missing)",
    )
    args = parser.parse_args(argv)
    point = run_cluster_bench(fast=args.fast)
    summary = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            summary = json.load(fh)
    existing = summary.get("cluster") or {}
    # A committed baseline may pin gate floors; merging must keep them.
    if "floors" in existing:
        point["floors"] = existing["floors"]
    summary["cluster"] = point
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    config = {
        "bench": "cluster",
        "fast": args.fast,
        "model": MODEL,
        "arch": ARCH,
        "replicas": REPLICAS,
        "trace": {**TRACE, "n_requests": point["n_requests"]},
        "tp_point": {"batch": TP_BATCH, "seq_len": TP_SEQ_LEN, "tp": TP_DEGREE},
    }
    run_dir = write_run("cluster", config, point)
    tps = point["tokens_per_s"]
    print(
        f"cluster: affinity {tps['prefix_affinity']:.1f} tok/s vs round-robin "
        f"{tps['round_robin']:.1f} ({point['affinity_speedup']:.3f}x); "
        f"tp{TP_DEGREE} all-reduce tax {point['tp']['allreduce_tax_ms']:.4f} ms/step, "
        f"rank attention {point['tp']['rank_attention_ms']:.4f} vs "
        f"{point['tp']['full_attention_ms']:.4f} ms"
    )
    print(f"wrote {args.out} and {run_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
