"""Extension bench: speculative-verification amortization.

Not a paper figure — an extension the paper's query-transform design makes
natural (Sec. V-A: grouped heads fill the MMA's M dimension; draft tokens
stack the same way).  Verifying n draft tokens in one pass streams the
packed cache once, so per-token attention cost falls until the M tile
saturates.
"""

from repro.core.attention import BitDecoding
from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.gpu.arch import get_arch


def _amortization(arch_name: str = "a100", seq: int = 32768):
    arch = get_arch(arch_name)
    engine = BitDecoding(BitDecodingConfig(bits=4), arch)
    single = engine.decode_time_ms(AttentionGeometry(1, 32, 8, seq, 128))
    rows = {}
    for n in (1, 2, 4, 8, 16):
        geom = AttentionGeometry(1, 32, 8, seq, 128, q_len=n)
        rows[n] = (engine.decode_time_ms(geom), n * single)
    return rows


def test_speculative_amortization(run):
    rows = run(_amortization)
    print("\ndraft-n: one-pass ms vs n x single-token ms")
    for n, (one_pass, n_singles) in rows.items():
        print(f"  {n:>2}: {one_pass:8.4f} vs {n_singles:8.4f}")

    # One n-token pass always beats n single-token passes...
    for n, (one_pass, n_singles) in rows.items():
        if n > 1:
            assert one_pass < n_singles
    # ...and the advantage grows with the draft length.
    gain = {n: n_singles / one_pass for n, (one_pass, n_singles) in rows.items()}
    assert gain[4] > gain[2] > 1.0
    assert gain[16] > gain[4]
    # A 16-token verification costs well under 2x a single decode: the M
    # dimension rides the already-padded MMA tile.
    assert rows[16][0] < 2.0 * rows[1][0]
