"""Fig. 9: H100 kernel performance — the v2 vs v3 instruction-path story.

Paper anchors: FA-3 clearly beats FA-2; BitDecoding-v2 reaches up to ~4.1x
and the wgmma/TMA v3 build up to ~8.0x over FP16 Flash-attn-v2.
"""

from repro.bench import assert_ordering, assert_within
from repro.bench.figures import fig9_hopper


def test_fig9_hopper(run):
    exp = run(fig9_hopper)
    exp.show()

    # FA-3 beats the FA-2 baseline at every batch point.
    for bs in (8, 32, 128):
        v = exp.series["Batches/Flash-attn-v3"].value_at(bs)
        assert 1.2 < v < 2.5

    # v3 builds beat their v2 counterparts everywhere (the 35% legacy
    # penalty plus warp-specialized overlap).
    for x_axis, points in (("Single", (1024, 10240, 102400)), ("Batches", (8, 32, 128))):
        for pt in points:
            for cfg in ("KT-4", "KC-4", "KC-2"):
                assert_ordering(
                    exp, pt,
                    f"{x_axis}/BitDecoding-{cfg} (v3)",
                    f"{x_axis}/BitDecoding-{cfg} (v2)",
                )

    # Band anchors (paper: 4.1x / 8.0x; model tolerance documented).
    assert_within(exp, "Single/BitDecoding-KC-4 (v2)", 102400, 2.5, 7.0)
    assert_within(exp, "Single/BitDecoding-KC-2 (v3)", 102400, 5.0, 12.0)
    assert_within(exp, "Batches/BitDecoding-KC-2 (v3)", 128, 5.0, 13.0)

    # 2-bit beats 4-bit at long context on the bandwidth-starved side.
    assert_ordering(exp, 102400, "Single/BitDecoding-KC-2 (v2)", "Single/BitDecoding-KC-4 (v2)")
