"""Fig. 14: runtime overhead of the half-precision residual KV cache.

Paper numbers are attached per point.  The contract: the W/-vs-W/O gap is
a near-constant extra kernel launch (paper ~17us) whose relative cost
vanishes as the context grows, while INT4 holds a multi-x advantage over
FP16 at long context.
"""

from repro.bench.figures import FIG14_PAPER, fig14_residual_overhead


def test_fig14_residual_overhead(run):
    exp = run(fig14_residual_overhead)
    exp.show()
    fp16 = exp.series["FP16 FlashDecoding-v2"]
    without = exp.series["INT4 W/O Residual"]
    with_res = exp.series["INT4 W/ Residual"]

    gaps = []
    for seq in FIG14_PAPER:
        # Ordering at every length: fp16 > with-residual > without.
        assert fp16.value_at(seq) > with_res.value_at(seq) > without.value_at(seq)
        gaps.append(with_res.value_at(seq) - without.value_at(seq))

    # The residual overhead is near-constant across a 32x length sweep...
    assert max(gaps) < 2.5 * min(gaps)
    # ...and becomes a vanishing fraction at long context.
    frac_4k = gaps[0] / with_res.value_at(4096)
    frac_128k = gaps[-1] / with_res.value_at(131072)
    assert frac_128k < 0.5 * frac_4k

    # Long-context speedup in the paper's decade (2.6x at 128K there).
    assert 2.0 < fp16.value_at(131072) / with_res.value_at(131072) < 7.0
