"""Prefix caching under load: hit rate and throughput on a shared-prefix trace.

The serving argument for the radix-style prefix cache: when every request
in a family opens with the same system prompt, page-aligned packed blocks
of that prefix are prefilled once and mapped (refcount-shared, CoW) into
every later admission — prefill compute drops by the hit rate and the
shared pages stretch the pool's effective capacity.  This benchmark runs
one seeded half-shared trace through the INT4 stack with the cache on and
off and emits the gated point.

Fast mode (CI smoke): ``SERVING_BENCH_FAST=1 pytest benchmarks/bench_prefix_cache.py``.

CI's bench job runs this module as a script to merge the point into the
serving benchmark file::

    python benchmarks/bench_prefix_cache.py --fast --out BENCH_serving.json

which adds a ``prefix_cache`` section that
``scripts/check_bench_regression.py`` gates against the committed
``benchmarks/baseline.json`` (min hit rate, cache-on never slower).
"""

import argparse
import json
import os
import sys

from repro.bench.results import write_run
from repro.gpu.arch import get_arch
from repro.model.config import LLAMA31_8B
from repro.serving import compare_formats, paper_serving_stacks, poisson_trace

FAST = os.environ.get("SERVING_BENCH_FAST", "") not in ("", "0")

#: Half of every prompt is a family-shared prefix; two families keep the
#: cache honest about key separation.
SHARED_FRACTION = 0.5
PREFIX_GROUPS = 2


def bench_trace(fast):
    """Seeded shared-prefix trace: identical on every machine."""
    n_requests, output_len = (48, 16) if fast else (96, 128)
    return poisson_trace(
        n_requests,
        rate_rps=32.0,
        prompt_len=8192,
        output_len=output_len,
        seed=0,
        output_jitter=0.25,
        shared_prefix_fraction=SHARED_FRACTION,
        prefix_groups=PREFIX_GROUPS,
    )


def _int4_stack(model, arch):
    return [s for s in paper_serving_stacks(model, arch) if s[0].name == "INT4"]


def run_prefix_bench(fast=False):
    """Cache on vs off over one trace, summarized as the gated section."""
    model = LLAMA31_8B
    arch = get_arch("a100")
    trace = bench_trace(fast)
    stack = _int4_stack(model, arch)
    on = compare_formats(model, arch, stack, trace, prefix_cache=True)[0]
    off = compare_formats(model, arch, stack, trace)[0]
    return {
        "model": model.name,
        "arch": arch.name,
        "requests": len(trace),
        "fast_mode": fast,
        "shared_prefix_fraction": SHARED_FRACTION,
        "prefix_groups": PREFIX_GROUPS,
        "hit_rate": on.prefix_hit_rate,
        "hit_tokens": on.prefix_hit_tokens,
        "probe_tokens": on.prefix_probe_tokens,
        "evictions": on.prefix_evictions,
        "shared_pages_peak": on.shared_pages_peak,
        "n_pages": on.n_pages,
        "effective_capacity_pages": on.effective_capacity_pages,
        "tokens_per_s_on": on.sustained_tokens_per_s,
        "tokens_per_s_off": off.sustained_tokens_per_s,
        "report_on": on.to_dict(),
        "report_off": off.to_dict(),
    }


def test_prefix_cache_serving_point(run):
    point = run(run_prefix_bench, FAST)
    print(json.dumps({k: v for k, v in point.items() if not k.startswith("report_")},
                     indent=2))
    # The gate's qualitative shape: real hits, never slower, more capacity.
    assert point["hit_rate"] >= 0.25
    assert point["tokens_per_s_on"] >= point["tokens_per_s_off"]
    assert point["effective_capacity_pages"] > point["n_pages"]
    # On/off is a scheduling change, not a workload change.
    on, off = point["report_on"], point["report_off"]
    assert on["total_generated_tokens"] == off["total_generated_tokens"]
    assert on["completed"] == off["completed"]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Emit the prefix-cache benchmark point"
    )
    parser.add_argument("--fast", action="store_true", default=FAST)
    parser.add_argument(
        "--out",
        default="BENCH_serving.json",
        help="serving benchmark file to merge the 'prefix_cache' section "
        "into (created if missing)",
    )
    args = parser.parse_args(argv)
    point = run_prefix_bench(fast=args.fast)
    summary = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            summary = json.load(fh)
    existing = summary.get("prefix_cache") or {}
    # A committed baseline may pin gate floors; merging must keep them.
    if "floors" in existing:
        point["floors"] = existing["floors"]
    summary["prefix_cache"] = point
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    run_dir = write_run(
        "prefix-cache",
        {
            "bench": "prefix_cache",
            "fast": args.fast,
            "trace_seed": 0,
            "shared_prefix_fraction": SHARED_FRACTION,
            "prefix_groups": PREFIX_GROUPS,
        },
        point,
    )
    print(
        f"prefix cache: hit rate {point['hit_rate']:.3f}, "
        f"{point['tokens_per_s_on']:.1f} tok/s on vs "
        f"{point['tokens_per_s_off']:.1f} off, "
        f"effective capacity {point['effective_capacity_pages']} pages "
        f"({point['n_pages']} physical)"
    )
    print(f"wrote {args.out} and {run_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
