"""Decode hot-path microbenchmark: vectorized SoA cache vs per-block loops.

Times one decode step over a long-context low-bit cache in two
implementations of identical numerics:

- the vectorized struct-of-arrays ``BitKVCache`` (batched unpack/dequant/
  attention, dequant memoized between flushes), and
- the retained seed implementation (``tests/reference_cache.py``): nested
  Python loops over per-(batch, head) block lists that re-dequantize every
  packed block on every step.

The headline number is the per-decode-step speedup at the acceptance
geometry (batch 8, hkv 8, seq 16k, INT4); the secondary check is that the
vectorized decode's wall time stays flat across steps at fixed sequence
length in the no-flush regime (the memoization contract).

CI runs this module as a script to emit the gated benchmark point::

    python benchmarks/bench_kernel_hotpath.py --out BENCH_kernels.json

which ``scripts/check_bench_regression.py --kernels BENCH_kernels.json``
gates (speedup floor + flatness) next to the serving baseline.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.core.attention import BitDecoding, BitKVCache  # noqa: E402
from repro.core.config import BitDecodingConfig  # noqa: E402

from tests.reference_cache import ReferenceBitKVCache, reference_decode  # noqa: E402

#: Acceptance geometry (ISSUE 3): 16k tokens, batch 8, hkv 8, INT4.
DEFAULT_GEOMETRY = dict(batch=8, hkv=8, hq=8, seq_len=16384, head_dim=64, bits=4)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, (time.perf_counter() - t0) * 1e3


def run_hotpath_bench(
    batch=8,
    hkv=8,
    hq=8,
    seq_len=16384,
    head_dim=64,
    bits=4,
    steps=6,
    reference_steps=1,
    seed=0,
):
    """One full comparison run, summarized as the BENCH_kernels.json shape."""
    config = BitDecodingConfig(bits=bits)
    engine = BitDecoding(config, "a100")
    rng = np.random.default_rng(seed)
    k = rng.standard_normal((batch, hkv, seq_len, head_dim)).astype(np.float16)
    v = rng.standard_normal((batch, hkv, seq_len, head_dim)).astype(np.float16)
    q = rng.standard_normal((batch, 1, hq, head_dim)).astype(np.float16)

    cache, vec_prefill_ms = _timed(lambda: BitKVCache.from_prefill(k, v, config))
    per_step_ms = []
    for _ in range(steps):
        _, t = _timed(lambda: engine.decode(q, cache))
        per_step_ms.append(t)
    # Step 0 pays the one-off dequant of the packed part; the steady state
    # is every subsequent (no-flush) step.
    steady = per_step_ms[1:] if len(per_step_ms) > 1 else per_step_ms
    vec_steady_ms = statistics.median(steady)
    flatness = max(steady) / min(steady) if min(steady) > 0 else float("inf")

    ref, ref_prefill_ms = _timed(lambda: ReferenceBitKVCache.from_prefill(k, v, config))
    ref_step_ms = []
    for _ in range(reference_steps):
        _, t = _timed(lambda: reference_decode(config, q, ref))
        ref_step_ms.append(t)
    ref_decode_ms = statistics.median(ref_step_ms)

    return {
        "geometry": {
            "batch": batch,
            "hkv": hkv,
            "hq": hq,
            "seq_len": seq_len,
            "head_dim": head_dim,
            "bits": bits,
        },
        "vectorized": {
            "prefill_ms": vec_prefill_ms,
            "first_step_ms": per_step_ms[0],
            "steady_step_ms": vec_steady_ms,
            "per_step_ms": per_step_ms,
        },
        "reference": {
            "prefill_ms": ref_prefill_ms,
            "step_ms": ref_decode_ms,
        },
        "speedup_decode_step": ref_decode_ms / vec_steady_ms,
        "speedup_prefill": ref_prefill_ms / vec_prefill_ms,
        "decode_step_flatness": flatness,
    }


def _print_summary(result):
    geom = result["geometry"]
    print(
        f"kernel hot path @ batch {geom['batch']}, hkv {geom['hkv']}, "
        f"seq {geom['seq_len']}, d {geom['head_dim']}, INT{geom['bits']}"
    )
    vec, ref = result["vectorized"], result["reference"]
    print(f"  prefill: vectorized {vec['prefill_ms']:9.1f} ms | reference {ref['prefill_ms']:9.1f} ms")
    print(
        f"  decode:  vectorized {vec['steady_step_ms']:9.1f} ms/step "
        f"(first {vec['first_step_ms']:.1f} ms) | reference {ref['step_ms']:9.1f} ms/step"
    )
    print(
        f"  speedup: {result['speedup_decode_step']:.1f}x per decode step, "
        f"{result['speedup_prefill']:.1f}x prefill; "
        f"flatness {result['decode_step_flatness']:.2f} "
        f"(max/min steady step, 1.0 = perfectly flat)"
    )


def test_kernel_hotpath_smoke(run):
    """Small-geometry smoke: the vectorized path must beat per-block loops."""
    result = run(
        run_hotpath_bench, batch=2, hkv=2, hq=4, seq_len=2048, head_dim=32, bits=4, steps=4
    )
    _print_summary(result)
    assert result["speedup_decode_step"] > 1.0
    assert result["vectorized"]["steady_step_ms"] <= result["vectorized"]["first_step_ms"] * 1.5


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=DEFAULT_GEOMETRY["batch"])
    parser.add_argument("--hkv", type=int, default=DEFAULT_GEOMETRY["hkv"])
    parser.add_argument("--hq", type=int, default=DEFAULT_GEOMETRY["hq"])
    parser.add_argument("--seq", type=int, default=DEFAULT_GEOMETRY["seq_len"])
    parser.add_argument("--head-dim", type=int, default=DEFAULT_GEOMETRY["head_dim"])
    parser.add_argument("--bits", type=int, default=DEFAULT_GEOMETRY["bits"])
    parser.add_argument("--steps", type=int, default=6, help="vectorized decode steps to time")
    parser.add_argument("--out", default=None, help="write BENCH_kernels.json here")
    args = parser.parse_args(argv)

    result = run_hotpath_bench(
        batch=args.batch,
        hkv=args.hkv,
        hq=args.hq,
        seq_len=args.seq,
        head_dim=args.head_dim,
        bits=args.bits,
        steps=args.steps,
    )
    _print_summary(result)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
