"""Decode hot-path microbenchmark: vectorized SoA cache vs per-block loops.

Times the kernel hot paths in two implementations of identical numerics:

- the vectorized struct-of-arrays ``BitKVCache`` (fused tile walk, chunked
  quantize+pack prefill flush, dequant memoized between flushes), and
- the retained seed implementation (``tests/reference_cache.py``): nested
  Python loops over per-(batch, head) block lists that re-dequantize every
  packed block on every step and walk ``tile_n`` tiles in Python.

Three headline numbers at the acceptance geometry (batch 8, hkv 8,
seq 16k, INT4, d 64):

- ``speedup_decode_step``: per-decode-step speedup (gated, floor 25x);
- ``speedup_prefill_pack``: whole-prompt quantize+pack speedup (gated,
  floor 3x).  Both sides are measured steady-state — the vectorized
  prefill runs twice and reports the second run, so neither side pays the
  process's first-allocation page faults while the other reuses a warm
  heap;
- ``decode_step_flatness``: the vectorized decode's wall time must stay
  flat across no-flush steps (the memoization contract).

An end-to-end ``transformer`` section (TinyTransformer decode step,
engine-backed vs exact attention) is reported but not gated: it tracks
what the kernel-level wins are worth inside a full forward pass.

CI runs this module as a script to emit the gated benchmark point::

    python benchmarks/bench_kernel_hotpath.py --out BENCH_kernels.json

which ``scripts/check_bench_regression.py --kernels BENCH_kernels.json``
gates (speedup floors + flatness) next to the serving baseline.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.bench.results import write_run  # noqa: E402
from repro.core.attention import BitDecoding, BitKVCache  # noqa: E402
from repro.core.config import BitDecodingConfig  # noqa: E402
from repro.model.transformer import TinyTransformer  # noqa: E402

from tests.reference_cache import ReferenceBitKVCache, reference_decode  # noqa: E402

#: Acceptance geometry (ISSUE 3/4): 16k tokens, batch 8, hkv 8, INT4.
DEFAULT_GEOMETRY = dict(batch=8, hkv=8, hq=8, seq_len=16384, head_dim=64, bits=4)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, (time.perf_counter() - t0) * 1e3


def run_hotpath_bench(
    batch=8,
    hkv=8,
    hq=8,
    seq_len=16384,
    head_dim=64,
    bits=4,
    steps=6,
    reference_steps=1,
    seed=0,
):
    """One full comparison run, summarized as the BENCH_kernels.json shape."""
    config = BitDecodingConfig(bits=bits)
    engine = BitDecoding(config, "a100")
    rng = np.random.default_rng(seed)
    k = rng.standard_normal((batch, hkv, seq_len, head_dim)).astype(np.float16)
    v = rng.standard_normal((batch, hkv, seq_len, head_dim)).astype(np.float16)
    q = rng.standard_normal((batch, 1, hq, head_dim)).astype(np.float16)

    # Prefill pack: the first run pays the process's cold allocations; the
    # steady-state pack cost is the faster of two subsequent runs (noise
    # only ever adds time, so the min is the stable estimator).  That is
    # the gated number, compared against the reference measured the same
    # way below, on the then-warm heap.
    _, vec_prefill_cold_ms = _timed(lambda: BitKVCache.from_prefill(k, v, config))
    _, vec_prefill_a_ms = _timed(lambda: BitKVCache.from_prefill(k, v, config))
    cache, vec_prefill_b_ms = _timed(lambda: BitKVCache.from_prefill(k, v, config))
    vec_prefill_ms = min(vec_prefill_a_ms, vec_prefill_b_ms)
    per_step_ms = []
    for _ in range(steps):
        _, t = _timed(lambda: engine.decode(q, cache))
        per_step_ms.append(t)
    # Step 0 pays the one-off dequant of the packed part; the steady state
    # is every subsequent (no-flush) step.
    steady = per_step_ms[1:] if len(per_step_ms) > 1 else per_step_ms
    vec_steady_ms = statistics.median(steady)
    flatness = max(steady) / min(steady) if min(steady) > 0 else float("inf")

    # Same min-of-two estimator as the vectorized side.
    ref, ref_prefill_ms = _timed(lambda: ReferenceBitKVCache.from_prefill(k, v, config))
    _, ref_prefill_2_ms = _timed(lambda: ReferenceBitKVCache.from_prefill(k, v, config))
    ref_prefill_ms = min(ref_prefill_ms, ref_prefill_2_ms)
    ref_step_ms = []
    for _ in range(reference_steps):
        _, t = _timed(lambda: reference_decode(config, q, ref))
        ref_step_ms.append(t)
    ref_decode_ms = statistics.median(ref_step_ms)

    return {
        "geometry": {
            "batch": batch,
            "hkv": hkv,
            "hq": hq,
            "seq_len": seq_len,
            "head_dim": head_dim,
            "bits": bits,
        },
        "vectorized": {
            "prefill_pack_ms": vec_prefill_ms,
            "prefill_pack_cold_ms": vec_prefill_cold_ms,
            "first_step_ms": per_step_ms[0],
            "steady_step_ms": vec_steady_ms,
            "per_step_ms": per_step_ms,
        },
        "reference": {
            "prefill_pack_ms": ref_prefill_ms,
            "step_ms": ref_decode_ms,
        },
        "speedup_decode_step": ref_decode_ms / vec_steady_ms,
        "speedup_prefill_pack": ref_prefill_ms / vec_prefill_ms,
        "decode_step_flatness": flatness,
    }


def run_transformer_bench(
    batch=4,
    n_layers=2,
    hq=8,
    hkv=8,
    head_dim=64,
    prefill_tokens=512,
    steps=4,
    bits=4,
    seed=0,
):
    """End-to-end TinyTransformer decode step: engine cache vs exact FP16.

    Small geometry by design — prefill attention materializes O(seq^2)
    scores per KV head, so this measures the decode step's end-to-end
    cost (projections, RoPE, cache append, attention, MLP), not a
    long-context prefill.
    """
    hidden = hq * head_dim
    dims = dict(
        n_layers=n_layers,
        hq=hq,
        hkv=hkv,
        head_dim=head_dim,
        hidden=hidden,
        intermediate=2 * hidden,
    )
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, prefill_tokens, hidden)).astype(np.float32) * 0.5
    step_inputs = [
        rng.standard_normal((batch, hidden)).astype(np.float32) * 0.5 for _ in range(steps)
    ]

    results = {}
    for name, engine in (
        ("engine", BitDecoding(BitDecodingConfig(bits=bits), "a100")),
        ("exact", None),
    ):
        model = TinyTransformer(**dims, engine=engine, seed=seed)
        _, prefill_ms = _timed(lambda: model.prefill(x))
        step_ms = []
        for step in step_inputs:
            _, t = _timed(lambda: model.decode_step(step))
            step_ms.append(t)
        results[name] = {
            "prefill_ms": prefill_ms,
            "step_ms": statistics.median(step_ms),
            "per_step_ms": step_ms,
        }

    return {
        "geometry": {
            "batch": batch,
            "n_layers": n_layers,
            "hq": hq,
            "hkv": hkv,
            "head_dim": head_dim,
            "prefill_tokens": prefill_tokens,
            "bits": bits,
        },
        "engine_step_ms": results["engine"]["step_ms"],
        "exact_step_ms": results["exact"]["step_ms"],
        "engine": results["engine"],
        "exact": results["exact"],
    }


def _print_summary(result):
    geom = result["geometry"]
    print(
        f"kernel hot path @ batch {geom['batch']}, hkv {geom['hkv']}, "
        f"seq {geom['seq_len']}, d {geom['head_dim']}, INT{geom['bits']}"
    )
    vec, ref = result["vectorized"], result["reference"]
    print(
        f"  prefill pack: vectorized {vec['prefill_pack_ms']:9.1f} ms "
        f"(cold {vec['prefill_pack_cold_ms']:.1f} ms) | "
        f"reference {ref['prefill_pack_ms']:9.1f} ms"
    )
    print(
        f"  decode:  vectorized {vec['steady_step_ms']:9.1f} ms/step "
        f"(first {vec['first_step_ms']:.1f} ms) | reference {ref['step_ms']:9.1f} ms/step"
    )
    print(
        f"  speedup: {result['speedup_decode_step']:.1f}x per decode step, "
        f"{result['speedup_prefill_pack']:.1f}x prefill pack; "
        f"flatness {result['decode_step_flatness']:.2f} "
        f"(max/min steady step, 1.0 = perfectly flat)"
    )
    transformer = result.get("transformer")
    if transformer:
        tg = transformer["geometry"]
        print(
            f"  transformer step @ batch {tg['batch']}, {tg['n_layers']} layers, "
            f"hidden {tg['hq'] * tg['head_dim']}: "
            f"engine {transformer['engine_step_ms']:.1f} ms | "
            f"exact {transformer['exact_step_ms']:.1f} ms"
        )


def test_kernel_hotpath_smoke(run):
    """Small-geometry smoke: the vectorized path must beat per-block loops."""
    result = run(
        run_hotpath_bench, batch=2, hkv=2, hq=4, seq_len=2048, head_dim=32, bits=4, steps=4
    )
    result["transformer"] = run_transformer_bench(
        batch=1, n_layers=1, hq=4, hkv=2, head_dim=32, prefill_tokens=128, steps=2
    )
    _print_summary(result)
    assert result["speedup_decode_step"] > 1.0
    assert result["speedup_prefill_pack"] > 1.0
    assert result["vectorized"]["steady_step_ms"] <= result["vectorized"]["first_step_ms"] * 1.5
    assert result["transformer"]["engine_step_ms"] > 0
    assert result["transformer"]["exact_step_ms"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=DEFAULT_GEOMETRY["batch"])
    parser.add_argument("--hkv", type=int, default=DEFAULT_GEOMETRY["hkv"])
    parser.add_argument("--hq", type=int, default=DEFAULT_GEOMETRY["hq"])
    parser.add_argument("--seq", type=int, default=DEFAULT_GEOMETRY["seq_len"])
    parser.add_argument("--head-dim", type=int, default=DEFAULT_GEOMETRY["head_dim"])
    parser.add_argument("--bits", type=int, default=DEFAULT_GEOMETRY["bits"])
    parser.add_argument("--steps", type=int, default=6, help="vectorized decode steps to time")
    parser.add_argument(
        "--skip-transformer", action="store_true", help="omit the TinyTransformer step bench"
    )
    parser.add_argument("--out", default=None, help="write BENCH_kernels.json here")
    args = parser.parse_args(argv)

    result = run_hotpath_bench(
        batch=args.batch,
        hkv=args.hkv,
        hq=args.hq,
        seq_len=args.seq,
        head_dim=args.head_dim,
        bits=args.bits,
        steps=args.steps,
    )
    if not args.skip_transformer:
        result["transformer"] = run_transformer_bench(bits=args.bits)
    _print_summary(result)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2)
    # Every run leaves a config-addressed manifest, --out or not.
    run_dir = write_run(
        "kernels",
        {
            "bench": "kernels",
            "geometry": result.get("geometry"),
            "steps": args.steps,
            "transformer": not args.skip_transformer,
        },
        result,
    )
    if args.out:
        print(f"wrote {args.out} and {run_dir}/")
    else:
        print(f"wrote {run_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
