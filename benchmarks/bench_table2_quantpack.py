"""Table II: quantization + packing latency during inference (128K).

Paper (ms): Marlin 58.02 prefill / 0.41 decode; Ladder 4.79 / 0.65;
BitDecoding 0.0599 / 0.008.  The mechanism contract: weight-oriented
repacking (host round trips, static-shape transforms) costs orders of
magnitude more than BitDecoding's fused in-register quantize+pack.
"""

from repro.bench.figures import table2_quantpack


def test_table2_quantpack(run):
    exp = run(table2_quantpack)
    exp.show()
    marlin = exp.series["Marlin"]
    ladder = exp.series["Ladder"]
    bitdec = exp.series["BitDecoding"]

    # Prefill: Marlin >> Ladder >> BitDecoding, each by >5x.
    assert marlin.value_at("Prefill") > 5 * ladder.value_at("Prefill")
    assert ladder.value_at("Prefill") > 5 * bitdec.value_at("Prefill")

    # Paper-decade bands.
    assert 30 < marlin.value_at("Prefill") < 120
    assert 1.5 < ladder.value_at("Prefill") < 10
    assert bitdec.value_at("Prefill") < 0.3

    # Decode: the pre-transform systems pay per-token; BitDecoding's fused
    # flush is near-free.
    assert 0.1 < marlin.value_at("Decode") < 1.0
    assert 0.1 < ladder.value_at("Decode") < 1.5
    assert bitdec.value_at("Decode") < 0.02
