"""Fig. 13: pages-mode serving throughput vs QServe across five models.

Paper numbers (tokens/s) are attached to every bar; the reproduction
contract is the ordering structure: QServe beats FlashDecoding-v2 *only*
on the MHA model (LLaMA-2-7B), loses on every GQA model, and BitDecoding
delivers >2x QServe's throughput everywhere.
"""

from repro.bench.figures import FIG13_PAPER, fig13_e2e_qserve


def test_fig13_e2e_qserve(run):
    exp = run(fig13_e2e_qserve)
    exp.show()
    fd = exp.series["FlashDecoding-v2"]
    qs = exp.series["Qserve"]
    bd = exp.series["Bitdecoding"]

    # QServe wins only on the MHA model.
    assert qs.value_at("llama-2-7B") > fd.value_at("llama-2-7B")
    for model in ("llama-3.1-8B", "llama-3.1-70B", "Qwen3-8B", "Qwen3-14B"):
        assert qs.value_at(model) < fd.value_at(model), model

    # BitDecoding: > 2x QServe on every model (paper: "more than 2x").
    for model in FIG13_PAPER:
        assert bd.value_at(model) > 2.0 * qs.value_at(model), model

    # And strictly above the FP16 baseline everywhere.
    for model in FIG13_PAPER:
        assert bd.value_at(model) > fd.value_at(model), model

    # The multi-GPU 70B row is the slowest in absolute terms for BD/FDv2,
    # mirroring the paper's ordering across models.
    assert bd.value_at("llama-3.1-70B") < bd.value_at("llama-3.1-8B")
