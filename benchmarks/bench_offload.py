"""Tiered KV offload under pressure: swap vs recompute on one device budget.

The offload argument: when the decode working set outgrows the device
tier, paying PCIe traffic to park packed pages on the host and pull them
back (``preemption="swap"``) must beat throwing the victim's KV away and
replaying its prefill (``preemption="recompute"``) on the *same* device
page budget.  This benchmark executes one seeded over-capacity trace
through the INT4 paged stack both ways — real tokens, real page
migrations — and emits the gated point.

Fast mode (CI smoke): ``SERVING_BENCH_FAST=1 pytest benchmarks/bench_offload.py``.

CI's bench job runs this module as a script to merge the point into the
serving benchmark file::

    python benchmarks/bench_offload.py --fast --out BENCH_serving.json

which adds an ``offload`` section that
``scripts/check_bench_regression.py`` gates against the committed
``benchmarks/baseline.json`` (swap strictly faster than recompute, floor
on the speedup).
"""

import argparse
import json
import os
import sys

from repro.attn import PagedBitBackend
from repro.bench.results import write_run
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.gpu.arch import get_arch
from repro.model.config import TINY
from repro.model.memory import int_format
from repro.serving import ContinuousBatchingEngine, EngineConfig, poisson_trace

FAST = os.environ.get("SERVING_BENCH_FAST", "") not in ("", "0")

KERNEL_CONFIG = BitDecodingConfig(bits=4, wn=1)  # N_r = 32
NR = KERNEL_CONFIG.residual_block_size

#: The device tier; both disciplines get exactly this many device pages.
DEVICE_PAGES = 8


def _geometry(fast):
    """(n_requests, prompt_len, output_len, host_pages).

    Short prompts overcommit recompute admission (it reserves prompt
    pages only) and long outputs then grow every context well past it —
    the regime where recompute preempt-thrashes with ever-costlier
    replays while swap pays a few pages of PCIe per victim.
    """
    if fast:
        return 8, 64, 120, 48
    return 16, 64, 120, 96


def bench_trace(fast):
    """Near-simultaneous arrivals, identical on every machine."""
    n_requests, prompt_len, output_len, _ = _geometry(fast)
    return poisson_trace(
        n_requests, rate_rps=100000.0, prompt_len=prompt_len, output_len=output_len, seed=3
    )


def run_offload_bench(fast=False):
    """Swap vs recompute at one device budget, summarized as the gated point."""
    arch = get_arch("a100")
    n_requests, prompt_len, output_len, host_pages = _geometry(fast)
    trace = bench_trace(fast)
    common = dict(
        model=TINY,
        arch=arch,
        fmt=int_format(4, TINY, residual_window=NR),
        page_size=NR,
        max_batch=32,
        execute=True,
    )
    swap = ContinuousBatchingEngine(
        EngineConfig(
            backend=PagedBitBackend(BitDecoding(KERNEL_CONFIG, arch)),
            preemption="swap",
            device_pages=DEVICE_PAGES,
            host_pages=host_pages,
            **common,
        ),
        trace,
    ).run()
    recompute = ContinuousBatchingEngine(
        EngineConfig(
            backend=PagedBitBackend(BitDecoding(KERNEL_CONFIG, arch)),
            n_pages=DEVICE_PAGES,
            **common,
        ),
        trace,
    ).run()
    speedup = (
        swap.sustained_tokens_per_s / recompute.sustained_tokens_per_s
        if recompute.sustained_tokens_per_s
        else 0.0
    )
    return {
        "model": TINY.name,
        "arch": arch.name,
        "requests": n_requests,
        "prompt_len": prompt_len,
        "output_len": output_len,
        "fast_mode": fast,
        "device_pages": DEVICE_PAGES,
        "host_pages": host_pages,
        "tokens_per_s_swap": swap.sustained_tokens_per_s,
        "tokens_per_s_recompute": recompute.sustained_tokens_per_s,
        "swap_speedup": speedup,
        "swap_outs": swap.swap_outs,
        "swap_ins": swap.swap_ins,
        "offload_faults": swap.offload_faults,
        "offload_stall_s": swap.offload_stall_s,
        "offload_overlapped_s": swap.offload_overlapped_s,
        "offload_d2h_bytes": swap.offload_d2h_bytes,
        "offload_h2d_bytes": swap.offload_h2d_bytes,
        "recompute_preemptions": recompute.preemptions,
        "report_swap": swap.to_dict(),
        "report_recompute": recompute.to_dict(),
    }


def test_offload_serving_point(run):
    point = run(run_offload_bench, FAST)
    print(json.dumps({k: v for k, v in point.items() if not k.startswith("report_")}, indent=2))
    # The gate's qualitative shape: real pressure, real swaps, swap wins.
    assert point["swap_outs"] > 0
    assert point["recompute_preemptions"] > 0
    assert point["tokens_per_s_swap"] > point["tokens_per_s_recompute"]
    # Both disciplines finish the same workload.
    on, off = point["report_swap"], point["report_recompute"]
    assert on["total_generated_tokens"] == off["total_generated_tokens"]
    assert on["completed"] == off["completed"]
    assert on["executed_tokens"] == on["total_generated_tokens"]


def main(argv=None):
    parser = argparse.ArgumentParser(description="Emit the tiered-offload benchmark point")
    parser.add_argument("--fast", action="store_true", default=FAST)
    parser.add_argument(
        "--out",
        default="BENCH_serving.json",
        help="serving benchmark file to merge the 'offload' section into "
        "(created if missing)",
    )
    args = parser.parse_args(argv)
    point = run_offload_bench(fast=args.fast)
    summary = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            summary = json.load(fh)
    existing = summary.get("offload") or {}
    # A committed baseline may pin gate floors; merging must keep them.
    if "floors" in existing:
        point["floors"] = existing["floors"]
    summary["offload"] = point
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    n_requests, prompt_len, output_len, host_pages = _geometry(args.fast)
    run_dir = write_run(
        "offload",
        {
            "bench": "offload",
            "fast": args.fast,
            "trace_seed": 3,
            "requests": n_requests,
            "prompt_len": prompt_len,
            "output_len": output_len,
            "device_pages": DEVICE_PAGES,
            "host_pages": host_pages,
        },
        point,
    )
    print(
        f"offload: swap {point['tokens_per_s_swap']:.1f} tok/s vs recompute "
        f"{point['tokens_per_s_recompute']:.1f} ({point['swap_speedup']:.3f}x) "
        f"on {point['device_pages']} device pages; "
        f"{point['swap_outs']} swap-outs, {point['offload_faults']} faults"
    )
    print(f"wrote {args.out} and {run_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
