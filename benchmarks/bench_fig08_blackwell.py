"""Fig. 8: kernel performance with MXFP4 on Blackwell (RTX 5090 / PRO 6000).

Paper anchors: up to 8.6x batched and >4.3x single@128K on the RTX 5090;
the RTX PRO 6000 peaks around 6.5x.  Reproduction bands accept the shape
within the documented model tolerance (see EXPERIMENTS.md).
"""

from repro.bench import assert_monotonic_increase, assert_ordering, assert_within
from repro.bench.figures import fig8_blackwell


def test_fig8_rtx5090(run):
    exp = run(fig8_blackwell, "rtx5090")
    exp.show()
    assert_monotonic_increase(exp, "Single/BitDecoding-mxfp4")
    assert_monotonic_increase(exp, "Batches/BitDecoding-mxfp4")
    assert_within(exp, "Single/BitDecoding-mxfp4", 131072, 3.0, 9.0)
    assert_within(exp, "Batches/BitDecoding-mxfp4", 128, 4.0, 10.0)
    for seq in (8192, 32768, 131072):
        assert_ordering(exp, seq, "Single/BitDecoding-mxfp4", "Single/KIVI-4", margin=2.0)
    for bs in (8, 32, 128):
        assert_ordering(exp, bs, "Batches/BitDecoding-mxfp4", "Batches/KIVI-4", margin=2.0)


def test_fig8_rtx_pro_6000(run):
    exp = run(fig8_blackwell, "rtx_pro_6000")
    exp.show()
    assert_monotonic_increase(exp, "Single/BitDecoding-mxfp4")
    # Paper: peaks at ~6.5x with large batches.
    assert_within(exp, "Batches/BitDecoding-mxfp4", 128, 3.5, 9.5)
