"""Fault injection under deadline pressure: what recovery costs in goodput.

The robustness argument: on the committed chaos plan (seeded transfer
faults, lost pages, corruption, latency spikes and slow steps over the
swap-tiered INT4 stack, with a per-request deadline), the engine must
recover *everything it keeps* — zero FAILED requests, every lost or
corrupt page healed by bit-exact replay — and the goodput it still
delivers must stay a bounded fraction of the fault-free run's throughput.
This benchmark executes the same seeded trace twice — once under the
demo fault plan with a deadline policy, once fault-free best-effort —
and emits the gated point.

Fast mode (CI smoke): ``SERVING_BENCH_FAST=1 pytest benchmarks/bench_chaos.py``.

CI's bench job runs this module as a script to merge the point into the
serving benchmark file::

    python benchmarks/bench_chaos.py --fast --out BENCH_serving.json

which adds a ``chaos`` section that ``scripts/check_bench_regression.py``
gates against the committed ``benchmarks/baseline.json`` (zero failed
requests, goodput ratio at or above the floor).
"""

import argparse
import json
import os
import sys

from repro.attn import PagedBitBackend
from repro.bench.results import write_run
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.faults import demo_fault_spec
from repro.gpu.arch import get_arch
from repro.model.config import TINY
from repro.model.memory import int_format
from repro.serving import (
    ContinuousBatchingEngine,
    DeadlinePolicy,
    EngineConfig,
    poisson_trace,
)

FAST = os.environ.get("SERVING_BENCH_FAST", "") not in ("", "0")

KERNEL_CONFIG = BitDecodingConfig(bits=4, wn=1)  # N_r = 32
NR = KERNEL_CONFIG.residual_block_size

#: The committed demo plan: seed, tier geometry, batch cap and deadline
#: are tuned together so the plan actually exercises a retry, a heal and
#: a shed while recovery still succeeds for everything that stays.
CHAOS_SEED = 7
DEVICE_PAGES, HOST_PAGES = 8, 28
MAX_BATCH = 3
DEADLINE_MS = 6.0
AUDIT_EVERY = 10
TRACE = dict(n_requests=8, rate_rps=100000.0, prompt_len=40, output_len=60, seed=3)


def bench_trace():
    """Near-simultaneous arrivals, identical on every machine."""
    return poisson_trace(**TRACE)


def run_chaos_bench(fast=False):
    """Chaos vs fault-free on the committed plan, summarized as the gated point."""
    arch = get_arch("a100")
    common = dict(
        model=TINY,
        arch=arch,
        fmt=int_format(4, TINY, residual_window=NR),
        page_size=NR,
        max_batch=MAX_BATCH,
        execute=True,
        preemption="swap",
        device_pages=DEVICE_PAGES,
        host_pages=HOST_PAGES,
    )
    chaos = ContinuousBatchingEngine(
        EngineConfig(
            backend=PagedBitBackend(BitDecoding(KERNEL_CONFIG, arch)),
            faults=demo_fault_spec(CHAOS_SEED),
            deadline_policy=DeadlinePolicy(default_deadline_s=DEADLINE_MS * 1e-3),
            audit_every=AUDIT_EVERY,
            **common,
        ),
        bench_trace(),
    ).run()
    fault_free = ContinuousBatchingEngine(
        EngineConfig(
            backend=PagedBitBackend(BitDecoding(KERNEL_CONFIG, arch)), **common
        ),
        bench_trace(),
    ).run()
    # Fault-free best-effort means every token is goodput; the ratio is
    # "what fraction of a healthy machine's useful throughput survives
    # the committed fault plan plus its deadline discipline".
    goodput_ratio = (
        chaos.goodput_tokens_per_s / fault_free.sustained_tokens_per_s
        if fault_free.sustained_tokens_per_s
        else 0.0
    )
    return {
        "model": TINY.name,
        "arch": arch.name,
        "fast_mode": fast,
        "chaos_seed": CHAOS_SEED,
        "deadline_ms": DEADLINE_MS,
        "device_pages": DEVICE_PAGES,
        "host_pages": HOST_PAGES,
        "max_batch": MAX_BATCH,
        **{k: v for k, v in TRACE.items() if k != "rate_rps"},
        "rate_rps": TRACE["rate_rps"],
        "goodput_tokens_per_s": chaos.goodput_tokens_per_s,
        "tokens_per_s_fault_free": fault_free.sustained_tokens_per_s,
        "goodput_ratio": goodput_ratio,
        "transfer_retries": chaos.transfer_retries,
        "retry_backoff_s": chaos.retry_backoff_s,
        "lost_pages": chaos.lost_pages,
        "checksum_failures": chaos.checksum_failures,
        "healed_pages": chaos.healed_pages,
        "healed_requests": chaos.healed_requests,
        "slow_steps": chaos.slow_steps,
        "shed": chaos.shed,
        "timed_out": chaos.timed_out,
        "failed": chaos.failed,
        "completed": chaos.completed,
        "deadline_met": chaos.deadline_met,
        "audits": chaos.audits,
        "report_chaos": chaos.to_dict(),
        "report_fault_free": fault_free.to_dict(),
    }


def test_chaos_serving_point(run):
    point = run(run_chaos_bench, FAST)
    print(json.dumps({k: v for k, v in point.items() if not k.startswith("report_")}, indent=2))
    # The gate's qualitative shape: the plan bites, recovery holds.
    assert point["transfer_retries"] >= 1
    assert point["healed_pages"] >= 1
    assert point["shed"] >= 1
    assert point["failed"] == 0
    assert point["goodput_ratio"] > 0.0
    # Everything the chaos run finished, it finished for real.
    chaos = point["report_chaos"]
    assert chaos["executed_tokens"] == chaos["total_generated_tokens"]
    assert point["report_fault_free"]["completed"] == TRACE["n_requests"]


def main(argv=None):
    parser = argparse.ArgumentParser(description="Emit the chaos-recovery benchmark point")
    parser.add_argument("--fast", action="store_true", default=FAST)
    parser.add_argument(
        "--out",
        default="BENCH_serving.json",
        help="serving benchmark file to merge the 'chaos' section into "
        "(created if missing)",
    )
    args = parser.parse_args(argv)
    point = run_chaos_bench(fast=args.fast)
    summary = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            summary = json.load(fh)
    existing = summary.get("chaos") or {}
    # A committed baseline may pin gate floors; merging must keep them.
    if "floors" in existing:
        point["floors"] = existing["floors"]
    summary["chaos"] = point
    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    config = {
        "bench": "chaos",
        "fast": args.fast,
        "chaos_seed": CHAOS_SEED,
        "deadline_ms": DEADLINE_MS,
        "audit_every": AUDIT_EVERY,
        "device_pages": DEVICE_PAGES,
        "host_pages": HOST_PAGES,
        "max_batch": MAX_BATCH,
        "trace": TRACE,
    }
    run_dir = write_run("chaos", config, point)
    print(
        f"chaos: goodput {point['goodput_tokens_per_s']:.1f} tok/s vs fault-free "
        f"{point['tokens_per_s_fault_free']:.1f} ({point['goodput_ratio']:.3f}x); "
        f"{point['transfer_retries']} retries, {point['healed_pages']} healed, "
        f"{point['shed']} shed, {point['failed']} failed"
    )
    print(f"wrote {args.out} and {run_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
