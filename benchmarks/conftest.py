"""Benchmark-suite configuration.

Every benchmark reproduces one paper artifact: it runs the experiment once
under ``pytest-benchmark`` timing, prints the paper-vs-measured table, and
asserts the qualitative shape.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def run_experiment(benchmark, fn, *args, **kwargs):
    """Benchmark one experiment function and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def run(benchmark):
    """Fixture wrapping :func:`run_experiment` for terse benchmark bodies."""

    def _run(fn, *args, **kwargs):
        return run_experiment(benchmark, fn, *args, **kwargs)

    return _run
