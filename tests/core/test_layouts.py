"""Fragment layouts and the layout-induction correctness argument (Fig. 3/5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layouts import (
    FRAGMENT_LAYOUTS,
    MMA_M16N8_C,
    MMA_M16N8K8_B,
    MMA_M16N8K16_A,
    MMA_M16N8K16_B,
    block_fragment_pack,
    block_fragment_unpack,
    contiguous_pack,
    induced_pack,
    induced_unpack,
    layouts_match,
    mismatched_unpack,
    tiled_layout,
)

ALL_LAYOUTS = list(FRAGMENT_LAYOUTS.values())


class TestFragmentDefinitions:
    @pytest.mark.parametrize("layout", ALL_LAYOUTS, ids=lambda l: l.name)
    def test_bijective(self, layout):
        layout.validate_bijective()

    def test_b_fragment_matches_ptx_documentation(self):
        """Spot-check mma.m16n8k16 B against the PTX ISA mapping (Fig. 3a):
        lane t owns column t//4; slots cover rows 2r, 2r+1, 2r+8, 2r+9."""
        assert MMA_M16N8K16_B.coords(0, 0) == (0, 0)
        assert MMA_M16N8K16_B.coords(0, 1) == (1, 0)
        assert MMA_M16N8K16_B.coords(0, 2) == (8, 0)
        assert MMA_M16N8K16_B.coords(0, 3) == (9, 0)
        assert MMA_M16N8K16_B.coords(5, 0) == (2, 1)  # lane 5: r=1, col 1
        assert MMA_M16N8K16_B.coords(31, 3) == (15, 7)

    def test_values_per_lane(self):
        assert MMA_M16N8K16_B.values_per_lane == 4
        assert MMA_M16N8K8_B.values_per_lane == 2
        assert MMA_M16N8K16_A.values_per_lane == 8
        assert MMA_M16N8_C.values_per_lane == 4

    def test_k16_and_k8_layouts_differ(self):
        """Different instructions -> different fragment maps (Challenge 1)."""
        assert not layouts_match(MMA_M16N8K16_B, MMA_M16N8K8_B)

    def test_layouts_match_is_reflexive(self):
        for layout in ALL_LAYOUTS:
            assert layouts_match(layout, layout)


class TestGatherScatter:
    @pytest.mark.parametrize("layout", ALL_LAYOUTS, ids=lambda l: l.name)
    def test_gather_scatter_round_trip(self, rng, layout):
        tile = rng.standard_normal((layout.rows, layout.cols)).astype(np.float32)
        frag = layout.gather(tile)
        assert frag.shape == (32, layout.values_per_lane)
        np.testing.assert_array_equal(layout.scatter(frag), tile)

    def test_gather_shape_checked(self, rng):
        with pytest.raises(ValueError):
            MMA_M16N8K16_B.gather(rng.standard_normal((8, 8)))

    def test_scatter_shape_checked(self, rng):
        with pytest.raises(ValueError):
            MMA_M16N8K16_B.scatter(rng.standard_normal((32, 2)))


class TestTiledLayout:
    def test_doubles_values_per_lane(self):
        tiled = tiled_layout(MMA_M16N8K16_B, 2)
        assert tiled.cols == 16
        assert tiled.values_per_lane == 8
        tiled.validate_bijective()

    def test_second_tile_offsets_columns(self):
        tiled = tiled_layout(MMA_M16N8K16_B, 2)
        row0, col0 = tiled.coords(0, 0)
        row4, col4 = tiled.coords(0, 4)  # first slot of the second tile
        assert (row4, col4) == (row0, col0 + 8)

    def test_invalid_repeat_rejected(self):
        with pytest.raises(ValueError):
            tiled_layout(MMA_M16N8K16_B, 0)


class TestLayoutInduction:
    """The paper's central correctness claim, demonstrated both ways."""

    @pytest.mark.parametrize("bits", [4, 8])
    def test_induced_pack_unpack_is_identity(self, rng, bits):
        qtile = rng.integers(0, 1 << bits, size=(16, 8), dtype=np.uint8)
        packed = induced_pack(qtile, MMA_M16N8K16_B, bits)
        restored = induced_unpack(packed, MMA_M16N8K16_B, bits)
        np.testing.assert_array_equal(restored, qtile)

    def test_int2_needs_repeat_tiling(self, rng):
        qtile = rng.integers(0, 4, size=(16, 8), dtype=np.uint8)
        with pytest.raises(ValueError, match="packing ratio"):
            induced_pack(qtile, MMA_M16N8K16_B, bits=2)

    def test_int2_works_with_repeat_tiling(self, rng):
        layout = tiled_layout(MMA_M16N8K16_B, 2)
        qtile = rng.integers(0, 4, size=(16, 16), dtype=np.uint8)
        packed = induced_pack(qtile, layout, bits=2)
        np.testing.assert_array_equal(induced_unpack(packed, layout, 2), qtile)

    def test_contiguous_packing_is_invalid_for_mma(self, rng):
        """Fig. 3b: a row-major packed tile lands on the wrong lanes."""
        qtile = rng.integers(0, 16, size=(16, 8), dtype=np.uint8)
        packed = contiguous_pack(qtile, bits=4)
        seen_by_mma = mismatched_unpack(packed, MMA_M16N8K16_B, bits=4)
        assert not np.array_equal(seen_by_mma, qtile)

    def test_mismatched_unpack_is_a_permutation(self, rng):
        """The corruption is a value permutation — nothing is lost, it is
        all in the wrong places (which is why results are silently wrong
        rather than obviously broken)."""
        qtile = rng.integers(0, 16, size=(16, 8), dtype=np.uint8)
        packed = contiguous_pack(qtile, bits=4)
        seen = mismatched_unpack(packed, MMA_M16N8K16_B, bits=4)
        assert sorted(seen.ravel()) == sorted(qtile.ravel())

    def test_induced_pack_word_layout_is_lane_major(self, rng):
        qtile = rng.integers(0, 16, size=(16, 8), dtype=np.uint8)
        packed = induced_pack(qtile, MMA_M16N8K16_B, 4)
        assert packed.shape == (32, 1)  # one 16-bit word per lane


class TestBlockPacking:
    @pytest.mark.parametrize("bits,repeat", [(4, 1), (2, 2), (8, 1)])
    def test_block_round_trip(self, rng, bits, repeat):
        layout = tiled_layout(MMA_M16N8K16_B, repeat) if repeat > 1 else MMA_M16N8K16_B
        block = rng.integers(0, 1 << bits, size=(128, 64), dtype=np.uint8)
        packed = block_fragment_pack(block, layout, bits)
        restored = block_fragment_unpack(packed, (128, 64), layout, bits)
        np.testing.assert_array_equal(restored, block)

    def test_block_must_tile_evenly(self, rng):
        block = rng.integers(0, 16, size=(100, 64), dtype=np.uint8)
        with pytest.raises(ValueError, match="multiple"):
            block_fragment_pack(block, MMA_M16N8K16_B, 4)

    def test_packed_bits_conserved(self, rng):
        block = rng.integers(0, 16, size=(64, 32), dtype=np.uint8)
        packed = block_fragment_pack(block, MMA_M16N8K16_B, 4)
        assert packed.nbytes * 8 == block.size * 4


class TestProperties:
    @given(
        bits=st.sampled_from([4, 8]),
        tiles_r=st.integers(1, 4),
        tiles_c=st.integers(1, 4),
        seed=st.integers(0, 2 ** 31),
    )
    @settings(max_examples=40, deadline=None)
    def test_block_round_trip_property(self, bits, tiles_r, tiles_c, seed):
        rng = np.random.default_rng(seed)
        shape = (16 * tiles_r, 8 * tiles_c)
        block = rng.integers(0, 1 << bits, size=shape, dtype=np.uint8)
        packed = block_fragment_pack(block, MMA_M16N8K16_B, bits)
        restored = block_fragment_unpack(packed, shape, MMA_M16N8K16_B, bits)
        np.testing.assert_array_equal(restored, block)

    @given(seed=st.integers(0, 2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_gather_is_a_permutation(self, seed):
        rng = np.random.default_rng(seed)
        tile = rng.permutation(16 * 8).reshape(16, 8)
        frag = MMA_M16N8K16_B.gather(tile)
        assert sorted(frag.ravel()) == list(range(128))
