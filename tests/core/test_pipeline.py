"""Software-pipeline overlap algebra."""

import pytest

from repro.core.pipeline import PipelineStage, packing_kernel_stages, schedule


class TestSchedule:
    def test_pipelined_bounded_by_busiest_resource(self):
        stages = packing_kernel_stages(load_time=4, dequant_time=1, mma_time=2, softmax_time=1)
        timing = schedule(stages, n_tiles=100)
        assert timing.per_tile_time == 4  # memory is the bottleneck
        assert timing.bottleneck == "memory"

    def test_shared_resource_stages_add(self):
        # dequant + softmax share the CUDA cores: 3 + 2 = 5 > memory 4.
        stages = packing_kernel_stages(4, 3, 1, 2)
        timing = schedule(stages, n_tiles=10)
        assert timing.per_tile_time == 5
        assert timing.bottleneck == "cuda_cores"

    def test_serial_is_never_faster(self):
        stages = packing_kernel_stages(4, 2, 3, 1)
        piped = schedule(stages, 50)
        serial = schedule(stages, 50, pipelined=False)
        assert serial.total_time >= piped.total_time

    def test_serial_equals_sum_per_tile(self):
        stages = packing_kernel_stages(4, 2, 3, 1)
        serial = schedule(stages, 10, pipelined=False)
        assert serial.per_tile_time == 10

    def test_parallel_streams_hide_serialization(self):
        """The Wn mechanism: more independent streams -> closer to the
        resource bound."""
        stages = packing_kernel_stages(4, 2, 3, 1)
        one = schedule(stages, 10, pipelined=False, parallel_streams=1)
        four = schedule(stages, 10, pipelined=False, parallel_streams=4)
        assert four.per_tile_time < one.per_tile_time
        # But never beats the busiest resource.
        assert four.per_tile_time >= 4

    def test_fill_time_only_when_pipelined(self):
        stages = packing_kernel_stages(4, 2, 3, 1)
        assert schedule(stages, 10).fill_time > 0
        assert schedule(stages, 10, pipelined=False).fill_time == 0

    def test_total_time_zero_tiles(self):
        stages = packing_kernel_stages(1, 1, 1, 1)
        assert schedule(stages, 0).total_time == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule([], 10)
        with pytest.raises(ValueError):
            schedule(packing_kernel_stages(1, 1, 1, 1), -1)
        with pytest.raises(ValueError):
            schedule(packing_kernel_stages(1, 1, 1, 1), 1, parallel_streams=0)
        with pytest.raises(ValueError):
            schedule([PipelineStage("x", -1.0, "memory")], 1)

    def test_canonical_stage_resources(self):
        stages = packing_kernel_stages(1, 2, 3, 4)
        by_name = {s.name: s for s in stages}
        assert by_name["load"].resource == "memory"
        assert by_name["dequant"].resource == "cuda_cores"
        assert by_name["mma"].resource == "tensor_cores"
        assert by_name["softmax"].resource == "cuda_cores"
