"""Dequantization paths: numerics agree, instruction mixes differ."""

import numpy as np
import pytest

from repro.core.dequant import (
    cast_dequant_words,
    dequant_speed_ratio,
    dequant_trace,
    lop3_dequant_words,
)
from repro.core.packing import pack_values


class TestNumericalEquivalence:
    @pytest.mark.parametrize("bits", [2, 4])
    def test_lop3_matches_cast_path(self, rng, bits):
        ratio = 16 // bits
        codes = rng.integers(0, 1 << bits, size=(8, ratio * 4), dtype=np.uint8)
        words = pack_values(codes, bits, 16, interleaved=True)
        scale = np.float32(0.37)
        zero = np.float32(-1.25)
        fast = lop3_dequant_words(words, bits, scale, zero)
        slow = cast_dequant_words(words, bits, scale, zero)
        np.testing.assert_allclose(fast, slow, rtol=1e-3, atol=1e-3)

    def test_lop3_reconstructs_affine_map(self, rng):
        codes = rng.integers(0, 16, size=(1, 8), dtype=np.uint8)
        words = pack_values(codes, 4, 16, interleaved=True)
        out = lop3_dequant_words(words, 4, np.float32(2.0), np.float32(1.0))
        expected = codes.astype(np.float32) * 2.0 + 1.0
        np.testing.assert_allclose(out, expected, rtol=1e-3)

    def test_broadcast_scales(self, rng):
        codes = rng.integers(0, 16, size=(4, 8), dtype=np.uint8)
        words = pack_values(codes, 4, 16, interleaved=True)
        scale = rng.uniform(0.1, 2.0, size=(4, 1)).astype(np.float32)
        out = lop3_dequant_words(words, 4, scale, np.float32(0.0))
        assert out.shape == (4, 8)
        expected = codes.astype(np.float32) * scale
        np.testing.assert_allclose(out, expected, rtol=1e-3)


class TestInstructionMix:
    def test_lop3_path_has_no_cvt(self):
        assert dequant_trace(1000, 4, "lop3").cvt_ops == 0

    def test_cvt_path_has_cvt(self):
        assert dequant_trace(1000, 4, "cvt").cvt_ops == 1000

    def test_lop3_faster_than_cast_on_every_device(self, any_arch):
        """The motivation for the 75316420 remap (Sec. IV-A(3))."""
        ratio = dequant_speed_ratio(any_arch, 1e7, 4)
        assert ratio > 1.5

    def test_speed_gap_wider_for_int4_than_int8_like_costs(self, a100):
        r4 = dequant_speed_ratio(a100, 1e7, 4)
        r2 = dequant_speed_ratio(a100, 1e7, 2)
        assert r4 > 1 and r2 > 1
