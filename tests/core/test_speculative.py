"""Speculative (multi-token) decode: causal tail over the quantized cache."""

import numpy as np
import pytest

from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.core.softmax import reference_attention


def _setup(rng, bits=4, seq=200, hkv=2, hq=8, d=32, n=4):
    engine = BitDecoding(BitDecodingConfig(bits=bits), "a100")
    k = rng.standard_normal((1, hkv, seq, d)).astype(np.float16)
    v = rng.standard_normal((1, hkv, seq, d)).astype(np.float16)
    cache = engine.prefill(k, v)
    q = rng.standard_normal((1, n, hq, d)).astype(np.float16)
    k_draft = rng.standard_normal((1, hkv, n, d)).astype(np.float16)
    v_draft = rng.standard_normal((1, hkv, n, d)).astype(np.float16)
    return engine, cache, k, v, q, k_draft, v_draft


def _sequential_reference(k, v, q, k_draft, v_draft):
    """Position-by-position dense attention: token i sees cache + draft[:i+1]."""
    _, hkv, seq, d = k.shape
    _, n, hq, _ = q.shape
    gq = hq // hkv
    out = np.empty((1, n, hq, d), dtype=np.float32)
    for i in range(n):
        for h in range(hq):
            kv_h = h // gq
            k_ctx = np.concatenate(
                [k[0, kv_h].astype(np.float32), k_draft[0, kv_h, : i + 1].astype(np.float32)]
            )
            v_ctx = np.concatenate(
                [v[0, kv_h].astype(np.float32), v_draft[0, kv_h, : i + 1].astype(np.float32)]
            )
            out[0, i, h] = reference_attention(
                q[0, i, h : h + 1].astype(np.float32), k_ctx, v_ctx
            )
    return out


class TestSpeculativeDecode:
    def test_matches_sequential_reference(self, rng):
        engine, cache, k, v, q, k_draft, v_draft = _setup(rng)
        out = engine.decode_speculative(q, k_draft, v_draft, cache)
        ref = _sequential_reference(k, v, q, k_draft, v_draft)
        assert np.max(np.abs(out - ref)) < 0.06

    def test_single_token_equals_plain_decode_after_append(self, rng):
        engine, cache, k, v, q, k_draft, v_draft = _setup(rng, n=1)
        spec = engine.decode_speculative(q, k_draft, v_draft, cache)
        cache.append_token(k_draft[:, :, 0], v_draft[:, :, 0])
        plain = engine.decode(q, cache)
        np.testing.assert_allclose(spec, plain, rtol=1e-3, atol=1e-3)

    def test_causality_first_token_ignores_later_drafts(self, rng):
        """Perturbing a later draft token must not change earlier outputs."""
        engine, cache, k, v, q, k_draft, v_draft = _setup(rng, n=4)
        out_a = engine.decode_speculative(q, k_draft, v_draft, cache)
        k_mod = k_draft.copy()
        v_mod = v_draft.copy()
        k_mod[0, :, 3] += 5.0
        v_mod[0, :, 3] -= 5.0
        out_b = engine.decode_speculative(q, k_mod, v_mod, cache)
        np.testing.assert_allclose(out_a[:, :3], out_b[:, :3], rtol=1e-4, atol=1e-5)
        assert not np.allclose(out_a[:, 3], out_b[:, 3], atol=1e-3)

    def test_commit_appends_drafts(self, rng):
        engine, cache, k, v, q, k_draft, v_draft = _setup(rng, n=3)
        before = cache.seq_len
        engine.decode_speculative(q, k_draft, v_draft, cache, commit=True)
        assert cache.seq_len == before + 3

    def test_no_commit_leaves_cache_untouched(self, rng):
        engine, cache, k, v, q, k_draft, v_draft = _setup(rng, n=3)
        before = cache.seq_len
        engine.decode_speculative(q, k_draft, v_draft, cache)
        assert cache.seq_len == before

    def test_shape_validation(self, rng):
        engine, cache, k, v, q, k_draft, v_draft = _setup(rng, n=2)
        with pytest.raises(ValueError, match="k_draft"):
            engine.decode_speculative(q, k_draft[:, :, :1], v_draft, cache)
        with pytest.raises(ValueError):
            engine.decode_speculative(q[0], k_draft, v_draft, cache)

    def test_works_across_bit_widths(self, rng):
        for bits, tol in ((8, 0.03), (4, 0.08), (2, 0.4)):
            engine, cache, k, v, q, k_draft, v_draft = _setup(rng, bits=bits, seq=300)
            out = engine.decode_speculative(q, k_draft, v_draft, cache)
            ref = _sequential_reference(k, v, q, k_draft, v_draft)
            assert np.max(np.abs(out - ref)) < tol, bits
