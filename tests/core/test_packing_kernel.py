"""Packing Kernel: numerics, split heuristics, trace/ablation behaviour."""

import numpy as np
import pytest

from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.packing_kernel import (
    build_packing_launch,
    choose_splits,
    run_numeric,
    split_states,
)
from repro.core.softmax import reference_attention
from repro.gpu.kernel import simulate_kernel


class TestNumerics:
    def test_matches_reference_attention(self, rng):
        config = BitDecodingConfig(bits=4)
        q = rng.standard_normal((4, 32)).astype(np.float32)
        k = rng.standard_normal((300, 32)).astype(np.float32)
        v = rng.standard_normal((300, 32)).astype(np.float32)
        out = run_numeric(q, k, v, config).finalize()
        np.testing.assert_allclose(out, reference_attention(q, k, v), rtol=1e-4, atol=1e-5)

    def test_split_states_merge_to_reference(self, rng):
        config = BitDecodingConfig(bits=4)
        q = rng.standard_normal((2, 16)).astype(np.float32)
        k = rng.standard_normal((500, 16)).astype(np.float32)
        v = rng.standard_normal((500, 16)).astype(np.float32)
        states = split_states(q, k, v, config, n_splits=7)
        merged = states[0]
        for st in states[1:]:
            merged.merge(st)
        np.testing.assert_allclose(
            merged.finalize(), reference_attention(q, k, v), rtol=1e-4, atol=1e-5
        )

    def test_broken_coop_softmax_is_wrong(self, rng):
        config = BitDecodingConfig(bits=4, use_coop_softmax=False)
        q = (rng.standard_normal((4, 32)) * 4).astype(np.float32)
        k = rng.standard_normal((256, 32)).astype(np.float32)
        v = rng.standard_normal((256, 32)).astype(np.float32)
        out = run_numeric(q, k, v, config).finalize()
        ref = reference_attention(q, k, v)
        assert not np.allclose(out, ref, atol=1e-3)

    def test_fp4_path_close_but_not_exact(self, rng):
        config = BitDecodingConfig(version="fp4")
        q = rng.standard_normal((4, 32)).astype(np.float32)
        k = rng.standard_normal((128, 32)).astype(np.float32)
        v = rng.standard_normal((128, 32)).astype(np.float32)
        out = run_numeric(q, k, v, config).finalize()
        ref = reference_attention(q, k, v)
        # P re-quantization introduces visible but bounded error.
        assert np.max(np.abs(out - ref)) < 0.35
        cos = float(out.ravel() @ ref.ravel()) / (
            np.linalg.norm(out) * np.linalg.norm(ref)
        )
        assert cos > 0.98


class TestSplitHeuristic:
    def test_small_batch_splits(self, a100):
        geom = AttentionGeometry(1, 32, 8, 131072, 128)
        assert choose_splits(a100, geom, 128) > 4

    def test_large_batch_does_not_split(self, a100):
        geom = AttentionGeometry(128, 32, 8, 8192, 128)
        assert choose_splits(a100, geom, 128) == 1

    def test_splits_never_exceed_tiles(self, a100):
        geom = AttentionGeometry(1, 32, 1, 256, 128)
        assert choose_splits(a100, geom, 128) <= 2


class TestTraceBuilder:
    def test_quantized_traffic_below_fp16(self, a100):
        geom = AttentionGeometry(1, 32, 8, 65536, 128)
        launch = build_packing_launch(geom, BitDecodingConfig(bits=4), a100)
        assert launch.trace.gmem_read_bytes < geom.kv_bytes_fp16 / 3.0

    def test_two_bit_reads_half_of_four_bit(self, a100):
        geom = AttentionGeometry(1, 32, 8, 65536, 128)
        r4 = build_packing_launch(geom, BitDecodingConfig(bits=4), a100)
        r2 = build_packing_launch(geom, BitDecodingConfig(bits=2), a100)
        # Not exactly half because metadata is shared, but well below.
        assert r2.trace.gmem_read_bytes < 0.7 * r4.trace.gmem_read_bytes

    def test_dequant_subtrace_present_for_int(self, a100):
        geom = AttentionGeometry(1, 32, 8, 8192, 128)
        launch = build_packing_launch(geom, BitDecodingConfig(bits=4), a100)
        assert "dequant" in launch.subtraces
        assert "softmax" in launch.subtraces

    def test_fp4_path_has_requant_not_dequant(self, rtx5090):
        geom = AttentionGeometry(1, 32, 8, 8192, 128)
        launch = build_packing_launch(geom, BitDecodingConfig(version="fp4"), rtx5090)
        assert "p_requant" in launch.subtraces
        assert "dequant" not in launch.subtraces
        assert "fp4" in launch.trace.tc_flops

    def test_paged_adds_table_reads_and_stride(self, a100):
        geom = AttentionGeometry(8, 32, 8, 2048, 128)
        config = BitDecodingConfig(bits=4)
        flat = build_packing_launch(geom, config, a100, paged=False)
        paged = build_packing_launch(geom, config, a100, paged=True)
        assert paged.trace.gmem_read_bytes > flat.trace.gmem_read_bytes
        assert (
            paged.trace.gmem_read_bytes_effective
            > flat.trace.gmem_read_bytes_effective
        )

    def test_split_adds_partial_traffic_and_launch(self, a100):
        geom = AttentionGeometry(1, 32, 8, 131072, 128)
        config = BitDecodingConfig(bits=4)
        split = build_packing_launch(geom, config, a100)
        nosplit = build_packing_launch(geom, config, a100, n_splits=1)
        assert split.launches == 2
        assert nosplit.launches == 1
        assert split.trace.gmem_write_bytes > nosplit.trace.gmem_write_bytes


class TestAblations:
    """The Fig. 16 knobs must each cost performance when disabled."""

    @pytest.fixture
    def geom(self):
        return AttentionGeometry(8, 32, 8, 8192, 128)

    def test_no_layout_induction_slower(self, a100, geom):
        full = BitDecodingConfig(bits=4)
        no_layout = full.with_overrides(use_layout_induction=False)
        t_full = simulate_kernel(a100, build_packing_launch(geom, full, a100)).time_s
        t_ablate = simulate_kernel(a100, build_packing_launch(geom, no_layout, a100)).time_s
        assert t_ablate > 1.2 * t_full

    def test_no_warp_parallel_slower(self, a100, geom):
        full = BitDecodingConfig(bits=4)
        ablated = full.with_overrides(use_warp_parallel=False)
        t_full = simulate_kernel(a100, build_packing_launch(geom, full, a100)).time_s
        t_ablate = simulate_kernel(a100, build_packing_launch(geom, ablated, a100)).time_s
        assert t_ablate > t_full

    def test_no_pipeline_slower(self, a100, geom):
        full = BitDecodingConfig(bits=4)
        ablated = full.with_overrides(use_pipeline=False)
        t_full = simulate_kernel(a100, build_packing_launch(geom, full, a100)).time_s
        t_ablate = simulate_kernel(a100, build_packing_launch(geom, ablated, a100)).time_s
        assert t_ablate > t_full

    def test_v3_beats_v2_on_hopper(self, h100, geom):
        v2 = BitDecodingConfig(bits=4, version="v2")
        v3 = BitDecodingConfig(bits=4, version="v3")
        t2 = simulate_kernel(h100, build_packing_launch(geom, v2, h100)).time_s
        t3 = simulate_kernel(h100, build_packing_launch(geom, v3, h100)).time_s
        assert t3 < t2

    def test_cvt_dequant_slower_than_lop3(self, a100, geom):
        lop3 = BitDecodingConfig(bits=4, dequant_method="lop3")
        cvt = BitDecodingConfig(bits=4, dequant_method="cvt")
        t_fast = simulate_kernel(a100, build_packing_launch(geom, lop3, a100)).time_s
        t_slow = simulate_kernel(a100, build_packing_launch(geom, cvt, a100)).time_s
        assert t_slow >= t_fast
