"""BitKVCache + BitDecoding engine: the public API."""

import numpy as np
import pytest

from repro.core.attention import BitDecoding, BitKVCache
from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.softmax import reference_attention


def _kv(rng, batch=1, hkv=2, seq=300, d=32):
    k = rng.standard_normal((batch, hkv, seq, d)).astype(np.float16)
    v = rng.standard_normal((batch, hkv, seq, d)).astype(np.float16)
    return k, v


def _reference(q, k, v):
    batch, q_len, hq, d = q.shape
    hkv = k.shape[1]
    gq = hq // hkv
    out = np.empty((batch, q_len, hq, d), dtype=np.float32)
    for b in range(batch):
        for h in range(hq):
            out[b, 0, h] = reference_attention(
                q[b, 0, h : h + 1].astype(np.float32),
                k[b, h // gq].astype(np.float32),
                v[b, h // gq].astype(np.float32),
            )
    return out


class TestCacheConstruction:
    def test_prefill_partitions_by_eq1(self, rng):
        config = BitDecodingConfig(bits=4)  # N_r = 128
        k, v = _kv(rng, seq=300)
        cache = BitKVCache.from_prefill(k, v, config)
        assert cache.packed_len() == 256
        assert cache.res_len() == 44
        assert cache.seq_len == 300

    def test_short_context_stays_in_residual(self, rng):
        config = BitDecodingConfig(bits=4)
        k, v = _kv(rng, seq=100)
        cache = BitKVCache.from_prefill(k, v, config)
        assert cache.packed_len() == 0
        assert cache.res_len() == 100

    def test_append_flushes_on_block_boundary(self, rng):
        config = BitDecodingConfig(bits=4)
        k, v = _kv(rng, seq=250)  # residual at 122 of 128
        cache = BitKVCache.from_prefill(k, v, config)
        flushed = []
        for i in range(10):
            k_new = rng.standard_normal((1, 2, 32)).astype(np.float16)
            v_new = rng.standard_normal((1, 2, 32)).astype(np.float16)
            flushed.append(cache.append_token(k_new, v_new))
        # 250 % 128 = 122 -> the 6th append (token 256) flushes.
        assert flushed == [False] * 5 + [True] + [False] * 4
        assert cache.seq_len == 260
        assert cache.packed_len() == 256

    def test_compression_approaches_bit_ratio(self, rng):
        config = BitDecodingConfig(bits=4)
        k, v = _kv(rng, seq=2048)
        cache = BitKVCache.from_prefill(k, v, config)
        # 16/4 = 4x, minus metadata and the fixed residual buffers.
        assert 2.5 < cache.compression_ratio() < 4.0

    def test_two_bit_compresses_more(self, rng):
        k, v = _kv(rng, seq=4096)
        c4 = BitKVCache.from_prefill(k, v, BitDecodingConfig(bits=4))
        c2 = BitKVCache.from_prefill(k, v, BitDecodingConfig(bits=2))
        assert c2.compression_ratio() > c4.compression_ratio()

    def test_shape_validation(self, rng):
        config = BitDecodingConfig(bits=4)
        with pytest.raises(ValueError):
            BitKVCache.from_prefill(np.zeros((2, 2, 10)), np.zeros((2, 2, 10)), config)
        cache = BitKVCache(1, 2, 32, config)
        with pytest.raises(ValueError):
            cache.append_token(np.zeros((1, 3, 32)), np.zeros((1, 3, 32)))


class TestDecodeNumerics:
    @pytest.mark.parametrize("bits,tol", [(4, 0.06), (8, 0.02)])
    def test_decode_close_to_reference(self, rng, bits, tol):
        config = BitDecodingConfig(bits=bits)
        engine = BitDecoding(config, "a100")
        k, v = _kv(rng, seq=300)
        cache = engine.prefill(k, v)
        q = rng.standard_normal((1, 1, 8, 32)).astype(np.float16)
        out = engine.decode(q, cache)
        ref = _reference(q, k, v)
        assert np.max(np.abs(out - ref)) < tol

    def test_residual_only_decode_is_exact(self, rng):
        engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
        k, v = _kv(rng, seq=64)  # < N_r: all FP16
        cache = engine.prefill(k, v)
        q = rng.standard_normal((1, 1, 8, 32)).astype(np.float16)
        out = engine.decode(q, cache)
        np.testing.assert_allclose(out, _reference(q, k, v), rtol=1e-3, atol=1e-3)

    def test_split_decode_matches_unsplit(self, rng):
        engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
        k, v = _kv(rng, seq=512)
        cache = engine.prefill(k, v)
        q = rng.standard_normal((1, 1, 8, 32)).astype(np.float16)
        np.testing.assert_allclose(
            engine.decode(q, cache), engine.decode(q, cache, n_splits=4),
            rtol=1e-4, atol=1e-5,
        )

    def test_gqa_and_mha_both_supported(self, rng):
        for hkv, hq in ((2, 8), (4, 4), (1, 8)):
            engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
            k, v = _kv(rng, hkv=hkv, seq=200)
            cache = engine.prefill(k, v)
            q = rng.standard_normal((1, 1, hq, 32)).astype(np.float16)
            out = engine.decode(q, cache)
            ref = _reference(q, k, v)
            assert np.max(np.abs(out - ref)) < 0.1

    def test_decode_on_empty_cache_rejected(self, rng):
        engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
        cache = BitKVCache(1, 2, 32, engine.config)
        q = rng.standard_normal((1, 1, 8, 32)).astype(np.float16)
        with pytest.raises(ValueError, match="empty"):
            engine.decode(q, cache)

    def test_mismatched_query_rejected(self, rng):
        engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
        k, v = _kv(rng)
        cache = engine.prefill(k, v)
        with pytest.raises(ValueError):
            engine.decode(rng.standard_normal((2, 1, 8, 32)), cache)  # batch
        with pytest.raises(ValueError):
            engine.decode(rng.standard_normal((1, 1, 7, 32)), cache)  # heads

    def test_decode_after_appends_includes_new_tokens(self, rng):
        engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
        k, v = _kv(rng, seq=127)
        cache = engine.prefill(k, v)
        k_new = rng.standard_normal((1, 2, 32)).astype(np.float16)
        v_new = rng.standard_normal((1, 2, 32)).astype(np.float16)
        cache.append_token(k_new, v_new)  # flushes block 0
        q = rng.standard_normal((1, 1, 8, 32)).astype(np.float16)
        out = engine.decode(q, cache)
        k_full = np.concatenate([k, k_new[:, :, None]], axis=2)
        v_full = np.concatenate([v, v_new[:, :, None]], axis=2)
        ref = _reference(q, k_full, v_full)
        assert np.max(np.abs(out - ref)) < 0.06


class TestEngineValidation:
    def test_arch_by_name(self):
        engine = BitDecoding(BitDecodingConfig(bits=4), "rtx4090")
        assert engine.arch.name == "rtx4090"

    def test_v3_requires_hopper(self):
        with pytest.raises(ValueError):
            BitDecoding(BitDecodingConfig(version="v3"), "a100")

    def test_fp4_requires_blackwell(self):
        with pytest.raises(ValueError):
            BitDecoding(BitDecodingConfig(version="fp4"), "h100")
        BitDecoding(BitDecodingConfig(version="fp4"), "rtx5090")


class TestPerformanceApi:
    def test_decode_results_two_kernels(self, a100):
        engine = BitDecoding(BitDecodingConfig(bits=4), a100)
        geom = AttentionGeometry(1, 32, 8, 8192, 128)
        results = engine.decode_results(geom)
        names = [r.name for r in results]
        assert names == ["packing_kernel", "residual_kernel"]

    def test_short_sequence_skips_packing_kernel(self, a100):
        engine = BitDecoding(BitDecodingConfig(bits=4), a100)
        geom = AttentionGeometry(1, 32, 8, 64, 128)
        results = engine.decode_results(geom, res_len=64)
        assert [r.name for r in results] == ["residual_kernel"]

    def test_decode_time_scales_with_seq(self, a100):
        engine = BitDecoding(BitDecodingConfig(bits=4), a100)
        short = engine.decode_time_ms(AttentionGeometry(1, 32, 8, 8192, 128))
        long = engine.decode_time_ms(AttentionGeometry(1, 32, 8, 131072, 128))
        assert long > 2 * short

    def test_two_bit_faster_than_four_bit_at_long_seq(self, rtx4090):
        geom = AttentionGeometry(1, 32, 8, 131072, 128)
        t4 = BitDecoding(BitDecodingConfig(bits=4), rtx4090).decode_time_ms(geom)
        t2 = BitDecoding(BitDecodingConfig(bits=2), rtx4090).decode_time_ms(geom)
        assert t2 < t4
