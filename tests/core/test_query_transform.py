"""Query transformation: semantics-preserving GQA/MQA grouping (Sec. V-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query_transform import gemm_m_dimension, group_queries, ungroup_output


class TestGrouping:
    def test_shapes_gqa(self, rng):
        q = rng.standard_normal((2, 1, 32, 16)).astype(np.float32)
        grouped = group_queries(q, hkv=8)
        assert grouped.shape == (2, 8, 4, 16)

    def test_shapes_mha(self, rng):
        q = rng.standard_normal((2, 1, 8, 16)).astype(np.float32)
        grouped = group_queries(q, hkv=8)
        assert grouped.shape == (2, 8, 1, 16)

    def test_shapes_mqa(self, rng):
        q = rng.standard_normal((2, 1, 8, 16)).astype(np.float32)
        grouped = group_queries(q, hkv=1)
        assert grouped.shape == (2, 1, 8, 16)

    def test_head_to_kv_mapping(self, rng):
        """Query head h must land in the group of KV head h // gq."""
        q = rng.standard_normal((1, 1, 8, 4)).astype(np.float32)
        grouped = group_queries(q, hkv=2)  # gq = 4
        for h in range(8):
            kv_head, slot = divmod(h, 4)
            np.testing.assert_array_equal(grouped[0, kv_head, slot], q[0, 0, h])

    def test_round_trip(self, rng):
        q = rng.standard_normal((3, 2, 32, 8)).astype(np.float32)
        grouped = group_queries(q, hkv=8)
        restored = ungroup_output(grouped, hq=32, q_len=2)
        np.testing.assert_array_equal(restored, q)

    def test_rank_checked(self, rng):
        with pytest.raises(ValueError):
            group_queries(rng.standard_normal((2, 32, 8)), hkv=8)

    def test_divisibility_checked(self, rng):
        with pytest.raises(ValueError):
            group_queries(rng.standard_normal((1, 1, 30, 8)), hkv=8)

    def test_ungroup_m_checked(self, rng):
        grouped = rng.standard_normal((1, 8, 4, 16))
        with pytest.raises(ValueError, match="grouped M"):
            ungroup_output(grouped, hq=32, q_len=2)


class TestSemanticEquivalence:
    def test_grouped_gemm_equals_per_head_gemv(self, rng):
        """The whole point: one (gq x L) GEMM == gq separate GEMVs."""
        hq, hkv, d, L = 8, 2, 16, 64
        q = rng.standard_normal((1, 1, hq, d)).astype(np.float32)
        k = rng.standard_normal((hkv, L, d)).astype(np.float32)
        grouped = group_queries(q, hkv)
        gq = hq // hkv
        for kv_h in range(hkv):
            gemm = grouped[0, kv_h] @ k[kv_h].T  # (gq, L)
            for slot in range(gq):
                gemv = q[0, 0, kv_h * gq + slot] @ k[kv_h].T
                # GEMM vs GEMV BLAS paths reorder the FP32 reduction.
                np.testing.assert_allclose(gemm[slot], gemv, rtol=1e-4, atol=1e-5)


class TestMDimension:
    def test_gqa_fills_tile(self):
        m, padded = gemm_m_dimension(hq=128, hkv=8)  # gq = 16
        assert (m, padded) == (16, 16)

    def test_mha_pads_heavily(self):
        m, padded = gemm_m_dimension(hq=32, hkv=32)
        assert (m, padded) == (1, 16)

    def test_q_len_multiplies(self):
        m, padded = gemm_m_dimension(hq=32, hkv=8, q_len=4)
        assert (m, padded) == (16, 16)

    def test_over_tile_rounds_up(self):
        m, padded = gemm_m_dimension(hq=64, hkv=2)
        assert (m, padded) == (32, 32)

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            gemm_m_dimension(hq=30, hkv=8)


class TestProperties:
    @given(
        batch=st.integers(1, 3),
        q_len=st.integers(1, 3),
        hkv=st.sampled_from([1, 2, 4, 8]),
        gq=st.sampled_from([1, 2, 4, 8]),
        seed=st.integers(0, 2 ** 31),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, batch, q_len, hkv, gq, seed):
        rng = np.random.default_rng(seed)
        hq = hkv * gq
        q = rng.standard_normal((batch, q_len, hq, 4)).astype(np.float32)
        restored = ungroup_output(group_queries(q, hkv), hq, q_len)
        np.testing.assert_array_equal(restored, q)

    @given(hkv=st.sampled_from([1, 2, 4]), gq=st.sampled_from([1, 2, 4]),
           seed=st.integers(0, 2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_grouping_preserves_multiset_of_rows(self, hkv, gq, seed):
        rng = np.random.default_rng(seed)
        q = rng.standard_normal((1, 1, hkv * gq, 4)).astype(np.float32)
        grouped = group_queries(q, hkv)
        orig = {tuple(row) for row in q.reshape(-1, 4)}
        after = {tuple(row) for row in grouped.reshape(-1, 4)}
        assert orig == after
