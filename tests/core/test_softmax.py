"""Online softmax, split-KV merges, and Algorithm 1's cooperative variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.softmax import (
    OnlineSoftmaxState,
    reference_attention,
    split_kv_attention,
    tile_softmax_split,
)


def _rand_attention(rng, m=4, n=256, d=32):
    q = rng.standard_normal((m, d)).astype(np.float32)
    k = rng.standard_normal((n, d)).astype(np.float32)
    v = rng.standard_normal((n, d)).astype(np.float32)
    return q, k, v


class TestOnlineSoftmax:
    def test_single_tile_matches_reference(self, rng):
        q, k, v = _rand_attention(rng)
        state = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        s = (q @ k.T) / np.sqrt(q.shape[1])
        state.update(s, v)
        np.testing.assert_allclose(state.finalize(), reference_attention(q, k, v), rtol=1e-5, atol=1e-6)

    def test_tiled_updates_match_reference(self, rng):
        q, k, v = _rand_attention(rng, n=300)
        scale = 1 / np.sqrt(q.shape[1])
        state = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        for t0 in range(0, 300, 64):
            t1 = min(t0 + 64, 300)
            state.update((q @ k[t0:t1].T) * scale, v[t0:t1])
        np.testing.assert_allclose(state.finalize(), reference_attention(q, k, v), rtol=1e-5, atol=1e-6)

    def test_tile_order_does_not_matter(self, rng):
        q, k, v = _rand_attention(rng, n=128)
        scale = 1 / np.sqrt(q.shape[1])
        a = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        b = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        a.update((q @ k[:64].T) * scale, v[:64])
        a.update((q @ k[64:].T) * scale, v[64:])
        b.update((q @ k[64:].T) * scale, v[64:])
        b.update((q @ k[:64].T) * scale, v[:64])
        np.testing.assert_allclose(a.finalize(), b.finalize(), rtol=1e-5, atol=1e-6)

    def test_merge_equals_sequential(self, rng):
        """The split-KV reduction: merging partials == one long pass."""
        q, k, v = _rand_attention(rng, n=256)
        scale = 1 / np.sqrt(q.shape[1])
        seq = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        seq.update((q @ k.T) * scale, v)
        p1 = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        p1.update((q @ k[:96].T) * scale, v[:96])
        p2 = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        p2.update((q @ k[96:].T) * scale, v[96:])
        p1.merge(p2)
        np.testing.assert_allclose(p1.finalize(), seq.finalize(), rtol=1e-5, atol=1e-6)

    def test_merge_with_empty_partial(self, rng):
        q, k, v = _rand_attention(rng)
        scale = 1 / np.sqrt(q.shape[1])
        full = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        full.update((q @ k.T) * scale, v)
        empty = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        full.merge(empty)
        np.testing.assert_allclose(full.finalize(), reference_attention(q, k, v), rtol=1e-5, atol=1e-6)

    def test_finalize_on_empty_state_raises(self):
        with pytest.raises(ValueError):
            OnlineSoftmaxState.fresh(2, 4).finalize()

    def test_large_logits_stable(self, rng):
        """Online rescaling must survive logits that overflow naive exp."""
        q, k, v = _rand_attention(rng, n=64)
        state = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        s = (q @ k.T) + 300.0
        state.update(s[:, :32], v[:32])
        state.update(s[:, 32:] + 300.0, v[32:])  # second tile even hotter
        out = state.finalize()
        assert np.all(np.isfinite(out))


class TestCooperativeSoftmax:
    @pytest.mark.parametrize("wn", [1, 2, 4, 8])
    def test_cooperative_matches_single_warp(self, rng, wn):
        q, k, v = _rand_attention(rng, n=128)
        scale = 1 / np.sqrt(q.shape[1])
        s = (q @ k.T) * scale
        coop = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        tile_softmax_split(coop, s, v, wn=wn, cooperative=True)
        ref = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        ref.update(s, v)
        np.testing.assert_allclose(coop.finalize(), ref.finalize(), rtol=1e-5, atol=1e-6)

    def test_non_cooperative_is_wrong_for_wide_wn(self, rng):
        """Table III's 'Valid = x' row, reproduced numerically."""
        q, k, v = _rand_attention(rng, n=128)
        s = (q @ k.T)  # unscaled: larger spread -> distinct warp maxima
        broken = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        tile_softmax_split(broken, s, v, wn=4, cooperative=False)
        ref = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        ref.update(s, v)
        assert not np.allclose(broken.finalize(), ref.finalize(), atol=1e-3)

    def test_non_cooperative_with_single_warp_is_fine(self, rng):
        q, k, v = _rand_attention(rng, n=128)
        s = (q @ k.T)
        solo = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        tile_softmax_split(solo, s, v, wn=1, cooperative=False)
        ref = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        ref.update(s, v)
        np.testing.assert_allclose(solo.finalize(), ref.finalize(), rtol=1e-5, atol=1e-6)

    def test_uneven_split_rejected(self, rng):
        q, k, v = _rand_attention(rng, n=100)
        state = OnlineSoftmaxState.fresh(q.shape[0], v.shape[1])
        with pytest.raises(ValueError, match="evenly"):
            tile_softmax_split(state, q @ k.T, v, wn=3)


class TestSplitKv:
    @pytest.mark.parametrize("n_splits", [1, 2, 7, 32])
    def test_any_split_count_matches_reference(self, rng, n_splits):
        q, k, v = _rand_attention(rng, n=500)
        out = split_kv_attention(q, k, v, n_splits)
        np.testing.assert_allclose(out, reference_attention(q, k, v), rtol=1e-5, atol=1e-6)

    def test_more_splits_than_tokens_clamped(self, rng):
        q, k, v = _rand_attention(rng, n=8)
        out = split_kv_attention(q, k, v, n_splits=64)
        np.testing.assert_allclose(out, reference_attention(q, k, v), rtol=1e-5, atol=1e-6)


class TestProperties:
    @given(
        n=st.integers(2, 200),
        wn=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 2 ** 31),
    )
    @settings(max_examples=50, deadline=None)
    def test_cooperative_equivalence_property(self, n, wn, seed):
        rng = np.random.default_rng(seed)
        n = (n // wn) * wn
        if n == 0:
            return
        q = rng.standard_normal((2, 16)).astype(np.float32)
        k = rng.standard_normal((n, 16)).astype(np.float32)
        v = rng.standard_normal((n, 16)).astype(np.float32)
        s = q @ k.T
        coop = OnlineSoftmaxState.fresh(2, 16)
        tile_softmax_split(coop, s, v, wn=wn, cooperative=True)
        ref = OnlineSoftmaxState.fresh(2, 16)
        ref.update(s, v)
        np.testing.assert_allclose(coop.finalize(), ref.finalize(), rtol=1e-4, atol=1e-5)

    @given(n_splits=st.integers(1, 16), seed=st.integers(0, 2 ** 31))
    @settings(max_examples=40, deadline=None)
    def test_split_invariance_property(self, n_splits, seed):
        rng = np.random.default_rng(seed)
        q = rng.standard_normal((1, 8)).astype(np.float32)
        k = rng.standard_normal((64, 8)).astype(np.float32)
        v = rng.standard_normal((64, 8)).astype(np.float32)
        out = split_kv_attention(q, k, v, n_splits)
        np.testing.assert_allclose(
            out, reference_attention(q, k, v), rtol=1e-4, atol=1e-5
        )

    @given(seed=st.integers(0, 2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_output_in_value_convex_hull(self, seed):
        """Softmax attention output is a convex combination of V rows."""
        rng = np.random.default_rng(seed)
        q = rng.standard_normal((1, 8)).astype(np.float32)
        k = rng.standard_normal((32, 8)).astype(np.float32)
        v = rng.standard_normal((32, 8)).astype(np.float32)
        out = split_kv_attention(q, k, v, 4)
        assert np.all(out <= v.max(axis=0) + 1e-5)
        assert np.all(out >= v.min(axis=0) - 1e-5)
