"""Bit-exactness of the vectorized SoA cache, and the dual-mode contract.

The batched struct-of-arrays refactor is only a *layout* change: every
quantization group, fragment permutation, packed word, half2 metadata
entry and online-softmax update must be bit-for-bit what the original
per-(batch, head, block) implementation produced.  The hypothesis sweep
drives random shapes through both implementations and asserts exact array
equality — not closeness — on the dequantized K/V, the residual views,
the byte accounting and the decode output.

Since the decode tile walk gained a ``fused`` numerics mode (one batched
QK^T + two-pass softmax, which changes BLAS summation order), the decode
contract is dual-mode:

- ``exact_tiled`` remains *bit-identical* to the seed per-block reference
  (the exactness sweep below pins that mode);
- ``fused`` must agree with ``exact_tiled`` within the documented
  tolerance (:data:`repro.core.packing_kernel.FUSED_NUMERICS_TOLERANCE`),
  across bits {1, 2, 4, 8}, both granularities and both FP4 formats.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.core.attention import BitDecoding, BitKVCache
from repro.core.config import BitDecodingConfig
from repro.core.packing_kernel import FUSED_NUMERICS_TOLERANCE

from tests.reference_cache import ReferenceBitKVCache, reference_decode

_D = 32  # multiple of every fragment-tile extent for bits in {1, 2, 4, 8}


def _arch_for(config):
    return "rtx5090" if config.version == "fp4" else "a100"


# The exactness sweep pins exact_tiled: that is the mode whose decode is
# bit-identical to the seed tile walk.  Storage (quantize/pack/flush) is
# mode-independent, so one sweep covers it for both modes.
int_configs = st.builds(
    lambda bits, granularity: BitDecodingConfig(
        bits=bits, granularity=granularity, numerics_mode="exact_tiled"
    ),
    st.sampled_from([1, 2, 4, 8]),
    st.sampled_from(["channel", "tensor"]),
)
fp4_configs = st.builds(
    lambda fmt: BitDecodingConfig(version="fp4", fp4_format=fmt, numerics_mode="exact_tiled"),
    st.sampled_from(["mxfp4", "nvfp4"]),
)
configs = st.one_of(int_configs, fp4_configs)


def _random_kv(seed, batch, hkv, seq, d):
    rng = np.random.default_rng(seed)
    k = rng.standard_normal((batch, hkv, seq, d)).astype(np.float16)
    v = rng.standard_normal((batch, hkv, seq, d)).astype(np.float16)
    return rng, k, v


def _assert_cache_identical(cache: BitKVCache, ref: ReferenceBitKVCache):
    assert cache.seq_len == ref.seq_len
    assert cache.packed_len() == ref.packed_len()
    assert cache.res_len() == ref.res_len()
    assert cache.packed_nbytes == ref.packed_nbytes
    assert cache.meta_nbytes == ref.meta_nbytes
    assert cache.residual_nbytes == ref.residual_nbytes
    for b in range(cache.batch):
        for h in range(cache.hkv):
            k_hat, v_hat = cache.dequantized_packed(b, h)
            k_ref, v_ref = ref.dequantized_packed(b, h)
            assert np.array_equal(k_hat, k_ref)
            assert np.array_equal(v_hat, v_ref)
            k_res, v_res = cache.residual_view(b, h)
            kr_ref, vr_ref = ref.residual_view(b, h)
            assert np.array_equal(k_res, kr_ref)
            assert np.array_equal(v_res, vr_ref)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    config=configs,
    batch=st.integers(1, 2),
    hkv=st.integers(1, 2),
    gq=st.integers(1, 2),
    seq_frac=st.floats(0.05, 2.3),
    seed=st.integers(0, 2**31 - 1),
)
def test_vectorized_cache_bit_exact_vs_reference(config, batch, hkv, gq, seq_frac, seed):
    nr = config.residual_block_size
    seq = max(1, int(nr * seq_frac))
    rng, k, v = _random_kv(seed, batch, hkv, seq, _D)

    cache = BitKVCache.from_prefill(k, v, config)
    ref = ReferenceBitKVCache.from_prefill(k, v, config)
    _assert_cache_identical(cache, ref)

    engine = BitDecoding(config, _arch_for(config))
    q = rng.standard_normal((batch, 1, hkv * gq, _D)).astype(np.float16)
    out = engine.decode(q, cache)
    out_ref = reference_decode(config, q, ref)
    assert np.array_equal(out, out_ref)

    # Cross one flush boundary (plus one token) and re-check everything.
    n_appends = (nr - cache.res_len()) + 1
    for _ in range(n_appends):
        k_new = rng.standard_normal((batch, hkv, _D)).astype(np.float16)
        v_new = rng.standard_normal((batch, hkv, _D)).astype(np.float16)
        assert cache.append_token(k_new, v_new) == ref.append_token(k_new, v_new)
    _assert_cache_identical(cache, ref)

    q2 = rng.standard_normal((batch, 1, hkv * gq, _D)).astype(np.float16)
    assert np.array_equal(engine.decode(q2, cache), reference_decode(config, q2, ref))


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    bits=st.sampled_from([2, 4]),
    n_splits=st.integers(2, 5),
    seed=st.integers(0, 2**31 - 1),
)
def test_split_decode_bit_exact_vs_reference(bits, n_splits, seed):
    config = BitDecodingConfig(bits=bits, numerics_mode="exact_tiled")
    seq = config.residual_block_size * 3 + 11
    rng, k, v = _random_kv(seed, 2, 2, seq, _D)
    cache = BitKVCache.from_prefill(k, v, config)
    ref = ReferenceBitKVCache.from_prefill(k, v, config)
    engine = BitDecoding(config, "a100")
    q = rng.standard_normal((2, 1, 4, _D)).astype(np.float16)
    out = engine.decode(q, cache, n_splits=n_splits)
    out_ref = reference_decode(config, q, ref, n_splits=n_splits)
    assert np.array_equal(out, out_ref)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    config=configs,
    batch=st.integers(1, 2),
    hkv=st.integers(1, 2),
    gq=st.integers(1, 2),
    n_blocks=st.floats(1.0, 3.5),
    q_scale=st.floats(0.5, 4.0),
    seed=st.integers(0, 2**31 - 1),
)
@example(
    # Worst MXFP4 divergence found by hypothesis (err ~9.2e-2): pinned so
    # the committed tolerance always covers it.
    config=BitDecodingConfig(version="fp4", fp4_format="mxfp4", numerics_mode="exact_tiled"),
    batch=2,
    hkv=2,
    gq=2,
    n_blocks=2.5625,
    q_scale=1.75,
    seed=129953,
)
def test_fused_mode_within_documented_tolerance(
    config, batch, hkv, gq, n_blocks, q_scale, seed
):
    """Dual-mode contract, fused half: for every bit width, granularity and
    FP4 format, ``fused`` decode agrees with ``exact_tiled`` within
    :data:`FUSED_NUMERICS_TOLERANCE` (relative to the tiled output)."""
    seq = int(config.residual_block_size * n_blocks)  # >= 1 packed block
    rng, k, v = _random_kv(seed, batch, hkv, seq, _D)
    q = (rng.standard_normal((batch, 1, hkv * gq, _D)) * q_scale).astype(np.float16)

    tiled_config = config.with_overrides(numerics_mode="exact_tiled")
    fused_config = config.with_overrides(numerics_mode="fused")
    out_tiled = BitDecoding(tiled_config, _arch_for(config)).decode(
        q, BitKVCache.from_prefill(k, v, tiled_config)
    )
    out_fused = BitDecoding(fused_config, _arch_for(config)).decode(
        q, BitKVCache.from_prefill(k, v, fused_config)
    )
    tol = FUSED_NUMERICS_TOLERANCE["fp4" if config.version == "fp4" else "int"]
    err = np.max(np.abs(out_fused - out_tiled)) / max(1.0, np.max(np.abs(out_tiled)))
    assert err <= tol


def test_exact_tiled_decode_bit_identical_to_reference(rng):
    """Dual-mode contract, exact half (the hypothesis sweep above covers
    the full config grid; this pins one deterministic case as a fast,
    non-property regression check)."""
    config = BitDecodingConfig(bits=4, numerics_mode="exact_tiled")
    k = rng.standard_normal((2, 2, 300, _D)).astype(np.float16)
    v = rng.standard_normal((2, 2, 300, _D)).astype(np.float16)
    q = rng.standard_normal((2, 1, 4, _D)).astype(np.float16)
    cache = BitKVCache.from_prefill(k, v, config)
    ref = ReferenceBitKVCache.from_prefill(k, v, config)
    out = BitDecoding(config, "a100").decode(q, cache)
    assert np.array_equal(out, reference_decode(config, q, ref))


class TestDequantMemoization:
    """Satellite fix: decode must stop re-dequantizing unchanged blocks."""

    def test_dequant_cached_between_flushes(self, rng):
        config = BitDecodingConfig(bits=4)
        k = rng.standard_normal((1, 2, 256, 32)).astype(np.float16)
        v = rng.standard_normal((1, 2, 256, 32)).astype(np.float16)
        cache = BitKVCache.from_prefill(k, v, config)
        k1, v1 = cache.dequant_kv()
        k2, v2 = cache.dequant_kv()
        assert k1 is k2 and v1 is v2  # memo hit, no rebuild

    def test_non_flushing_append_keeps_memo(self, rng):
        config = BitDecodingConfig(bits=4)
        k = rng.standard_normal((1, 2, 256, 32)).astype(np.float16)
        v = rng.standard_normal((1, 2, 256, 32)).astype(np.float16)
        cache = BitKVCache.from_prefill(k, v, config)
        k1, _ = cache.dequant_kv()
        flushed = cache.append_token(
            rng.standard_normal((1, 2, 32)).astype(np.float16),
            rng.standard_normal((1, 2, 32)).astype(np.float16),
        )
        assert not flushed
        k2, _ = cache.dequant_kv()
        assert k1 is k2  # the packed part did not change

    def test_flush_extends_warm_memo_exactly(self, rng):
        """A flush with a warm memo appends just the new blocks' dequant;
        the result must be bit-identical to a cold full rebuild."""
        config = BitDecodingConfig(bits=4)
        nr = config.residual_block_size
        k = rng.standard_normal((2, 2, nr * 2, 32)).astype(np.float16)
        v = rng.standard_normal((2, 2, nr * 2, 32)).astype(np.float16)
        cache = BitKVCache.from_prefill(k, v, config)
        cache.dequant_kv()  # warm the memo
        for _ in range(nr):
            cache.append_token(
                rng.standard_normal((2, 2, 32)).astype(np.float16),
                rng.standard_normal((2, 2, 32)).astype(np.float16),
            )
        assert cache._dequant_memo is not None  # extended in place, not dropped
        k_inc, v_inc = cache.dequant_kv()
        cache.invalidate_dequant_cache()
        k_full, v_full = cache.dequant_kv()
        assert np.array_equal(k_inc, k_full)
        assert np.array_equal(v_inc, v_full)

    def test_flush_invalidates_memo(self, rng):
        config = BitDecodingConfig(bits=4)
        nr = config.residual_block_size
        k = rng.standard_normal((1, 2, nr, 32)).astype(np.float16)
        v = rng.standard_normal((1, 2, nr, 32)).astype(np.float16)
        cache = BitKVCache.from_prefill(k, v, config)
        k1, _ = cache.dequant_kv()
        for _ in range(nr):  # fill and flush a second block
            cache.append_token(
                rng.standard_normal((1, 2, 32)).astype(np.float16),
                rng.standard_normal((1, 2, 32)).astype(np.float16),
            )
        k2, _ = cache.dequant_kv()
        assert k2 is not k1
        assert k2.shape[-2] == 2 * nr

    def test_byte_properties_are_shape_derived(self, rng):
        """O(1) accounting: the properties come from array shapes, not a
        walk over per-block Python objects."""
        config = BitDecodingConfig(bits=4)
        k = rng.standard_normal((2, 4, 640, 32)).astype(np.float16)
        v = rng.standard_normal((2, 4, 640, 32)).astype(np.float16)
        cache = BitKVCache.from_prefill(k, v, config)
        packed = cache.packed
        assert cache.packed_nbytes == packed.k_words.nbytes + packed.v_words.nbytes
        assert cache.meta_nbytes == packed.k_params.nbytes + packed.v_params.nbytes
        assert cache.residual_nbytes == cache.residual.k.nbytes + cache.residual.v.nbytes


class TestEmptyAndErrorPaths:
    def test_empty_cache_has_zero_bytes_and_rejects_decode(self, rng):
        config = BitDecodingConfig(bits=4)
        cache = BitKVCache(1, 2, 32, config)
        assert cache.packed_nbytes == 0
        assert cache.meta_nbytes == 0
        assert cache.packed_len() == 0
        engine = BitDecoding(config, "a100")
        q = rng.standard_normal((1, 1, 4, 32)).astype(np.float16)
        with pytest.raises(ValueError, match="empty"):
            engine.decode(q, cache)

    def test_residual_only_cache_has_empty_packed_views(self, rng):
        config = BitDecodingConfig(bits=4)
        k = rng.standard_normal((1, 2, 17, 32)).astype(np.float16)
        v = rng.standard_normal((1, 2, 17, 32)).astype(np.float16)
        cache = BitKVCache.from_prefill(k, v, config)
        k_hat, v_hat = cache.dequant_kv()
        assert k_hat.shape == (1, 2, 0, 32)
        k00, v00 = cache.dequantized_packed(0, 0)
        assert k00.shape == (0, 32) and v00.shape == (0, 32)
