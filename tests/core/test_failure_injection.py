"""Failure injection: corrupted data, poisoned inputs, config mismatches.

A cache is storage; storage fails.  These tests pin how the system behaves
when things go wrong — corrupt packed words must visibly change outputs
(no silent masking), non-finite inputs must be rejected before they poison
group scales, and mismatched kernel configurations must refuse to run.
"""

import numpy as np
import pytest

from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.core.quantization import quantize


class TestCorruption:
    def test_flipped_word_changes_decode_output(self, rng):
        """Bit flips in the packed cache must propagate to the output —
        the layout round trip is lossless, including for damage.  In-place
        mutation bypasses the flush-epoch bookkeeping, so the memoized
        reconstruction must be dropped explicitly."""
        engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
        k = rng.standard_normal((1, 1, 256, 32)).astype(np.float16)
        v = rng.standard_normal((1, 1, 256, 32)).astype(np.float16)
        cache = engine.prefill(k, v)
        q = rng.standard_normal((1, 1, 4, 32)).astype(np.float16)
        clean = engine.decode(q, cache)
        cache.packed.v_words.flat[::7] ^= np.uint16(0xFFFF)  # corrupt V storage
        cache.invalidate_dequant_cache()
        corrupted = engine.decode(q, cache)
        assert not np.allclose(clean, corrupted, atol=1e-3)

    def test_corrupt_metadata_changes_reconstruction(self, rng):
        engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
        k = rng.standard_normal((1, 1, 128, 32)).astype(np.float16)
        v = rng.standard_normal((1, 1, 128, 32)).astype(np.float16)
        cache = engine.prefill(k, v)
        k_before, _ = cache.dequantized_packed(0, 0)
        k_before = k_before.copy()
        cache.packed.k_params.scale *= 3.0
        cache.invalidate_dequant_cache()
        k_after, _ = cache.dequantized_packed(0, 0)
        assert np.abs(k_after - k_before).max() > 0.1

    def test_memoized_dequant_masks_mutation_until_invalidated(self, rng):
        """The other side of the memoization contract: without an
        invalidate (or a flush), the cached reconstruction is returned."""
        engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
        k = rng.standard_normal((1, 1, 128, 32)).astype(np.float16)
        v = rng.standard_normal((1, 1, 128, 32)).astype(np.float16)
        cache = engine.prefill(k, v)
        k_before, _ = cache.dequant_kv()
        cache.packed.k_params.scale *= 3.0
        k_memo, _ = cache.dequant_kv()
        assert k_memo is k_before  # same cached array, no re-dequant
        cache.invalidate_dequant_cache()
        k_after, _ = cache.dequant_kv()
        assert np.abs(k_after - k_before).max() > 0.1


class TestPoisonedInputs:
    def test_nan_in_keys_rejected_at_quantization(self):
        x = np.zeros((32, 4), dtype=np.float32)
        x[3, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            quantize(x, 4, axis=0, group_size=32)

    def test_inf_in_values_rejected(self):
        x = np.zeros((32, 4), dtype=np.float32)
        x[0, 0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            quantize(x, 4, axis=0, group_size=32)

    def test_nan_prefill_rejected_end_to_end(self, rng):
        engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
        k = rng.standard_normal((1, 1, 128, 32)).astype(np.float16)
        v = rng.standard_normal((1, 1, 128, 32)).astype(np.float16)
        k[0, 0, 7, 3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            engine.prefill(k, v)


class TestConfigMismatch:
    def test_block_refuses_wrong_instruction_config(self, rng):
        """Sec. IV-A(4): Residual and Packing kernels must share the
        ldmatrix/mma configuration; the block enforces it."""
        engine4 = BitDecoding(BitDecodingConfig(bits=4), "a100")
        k = rng.standard_normal((1, 1, 128, 32)).astype(np.float16)
        v = rng.standard_normal((1, 1, 128, 32)).astype(np.float16)
        cache = engine4.prefill(k, v)
        with pytest.raises(ValueError, match="instruction configuration"):
            cache.packed.dequant_kv(BitDecodingConfig(bits=2))

    def test_cache_and_engine_bits_must_agree(self, rng):
        """Decoding a 4-bit cache with a 2-bit engine's Packing Kernel
        fails fast rather than unpacking garbage."""
        engine4 = BitDecoding(BitDecodingConfig(bits=4), "a100")
        engine2 = BitDecoding(BitDecodingConfig(bits=2), "a100")
        k = rng.standard_normal((1, 1, 256, 32)).astype(np.float16)
        v = rng.standard_normal((1, 1, 256, 32)).astype(np.float16)
        cache = engine4.prefill(k, v)
        q = rng.standard_normal((1, 1, 4, 32)).astype(np.float16)
        with pytest.raises(ValueError):
            engine2.decode(q, cache)
