"""Quantization: error bounds, granularities, fp4 formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantization import (
    E2M1_VALUES,
    QuantScheme,
    dequantize,
    fp4_storage_bits_per_value,
    quantization_error_bound,
    quantize,
    quantize_fp4,
    quantize_key,
    quantize_value,
)


class TestQuantScheme:
    def test_short_names(self):
        assert QuantScheme(4, "channel", 64).short_name == "KC-4"
        assert QuantScheme(2, "tensor", 128).short_name == "KT-2"

    def test_levels(self):
        assert QuantScheme(4, "channel", 64).levels == 16
        assert QuantScheme(2, "channel", 64).levels == 4

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantScheme(3, "channel", 64)

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            QuantScheme(4, "rowwise", 64)


class TestIntegerQuantization:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_codes_in_range(self, rng, bits):
        x = rng.standard_normal((64, 32)).astype(np.float32)
        codes, params = quantize(x, bits, axis=0, group_size=32)
        assert codes.dtype == np.uint8
        assert codes.max() < (1 << bits)
        assert params.bits == bits

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_reconstruction_error_bounded(self, rng, bits):
        x = rng.standard_normal((64, 32)).astype(np.float32)
        codes, params = quantize(x, bits, axis=0, group_size=32)
        x_hat = dequantize(codes, params)
        bound = quantization_error_bound(params)
        assert np.max(np.abs(x_hat - x)) <= bound

    def test_higher_bits_lower_error(self, rng):
        x = rng.standard_normal((128, 64)).astype(np.float32)
        errs = {}
        for bits in (2, 4, 8):
            codes, params = quantize(x, bits, axis=0, group_size=64)
            errs[bits] = np.abs(dequantize(codes, params) - x).mean()
        assert errs[8] < errs[4] < errs[2]

    def test_constant_group_is_exact(self):
        x = np.full((32, 8), 2.5, dtype=np.float32)
        codes, params = quantize(x, 4, axis=0, group_size=32)
        np.testing.assert_allclose(dequantize(codes, params), x, atol=2e-3)

    def test_group_extrema_representable(self, rng):
        """Asymmetric quantization must hit both group endpoints."""
        x = rng.uniform(-3, 5, size=(64, 4)).astype(np.float32)
        codes, params = quantize(x, 4, axis=0, group_size=64)
        x_hat = dequantize(codes, params)
        # fp16 metadata introduces slack; endpoints within one step.
        step = params.scale.max()
        assert abs(x_hat.min() - x.min()) <= step
        assert abs(x_hat.max() - x.max()) <= step

    def test_misaligned_group_rejected(self, rng):
        x = rng.standard_normal((60, 4)).astype(np.float32)
        with pytest.raises(ValueError, match="group"):
            quantize(x, 4, axis=0, group_size=64)

    def test_metadata_stored_as_half2(self, rng):
        x = rng.standard_normal((64, 8)).astype(np.float32)
        _, params = quantize(x, 4, axis=0, group_size=32)
        # scale/zero survive an fp16 round trip unchanged (already rounded).
        np.testing.assert_array_equal(
            params.scale, params.scale.astype(np.float16).astype(np.float32)
        )
        assert params.nbytes == params.scale.size * 2 + params.zero.size * 2


class TestGranularities:
    def test_channel_wise_groups_along_seq(self, rng):
        k = rng.standard_normal((128, 64)).astype(np.float32)  # (seq, d)
        scheme = QuantScheme(4, "channel", 64)
        codes, params = quantize_key(k, scheme, seq_axis=0, channel_axis=1)
        # one (scale, zero) per channel per 64-token group.
        assert params.scale.shape == (64, 2)

    def test_tensor_wise_groups_along_channels(self, rng):
        k = rng.standard_normal((128, 64)).astype(np.float32)
        scheme = QuantScheme(4, "tensor", 64)
        codes, params = quantize_key(k, scheme, seq_axis=0, channel_axis=1)
        # one (scale, zero) per token per 64-channel group.
        assert params.scale.shape == (128, 1)

    def test_channel_outliers_hurt_tensor_wise_more(self, rng):
        """The reason KC exists: per-channel outliers (KIVI Sec. 1)."""
        k = rng.standard_normal((128, 64)).astype(np.float32)
        k[:, 7] *= 30.0  # one outlier channel
        kc_codes, kc_params = quantize_key(k, QuantScheme(2, "channel", 64), 0, 1)
        kt_codes, kt_params = quantize_key(k, QuantScheme(2, "tensor", 64), 0, 1)
        kc_err = np.abs(dequantize(kc_codes, kc_params) - k)[:, :7].mean()
        kt_err = np.abs(dequantize(kt_codes, kt_params) - k)[:, :7].mean()
        assert kc_err < kt_err

    def test_value_quantization_is_per_token(self, rng):
        v = rng.standard_normal((128, 64)).astype(np.float32)
        codes, params = quantize_value(v, 4, group_size=64, channel_axis=1)
        assert params.scale.shape == (128, 1)


class TestFp4:
    def test_e2m1_value_set(self):
        assert list(E2M1_VALUES) == [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]

    @pytest.mark.parametrize("fmt,block", [("mxfp4", 32), ("nvfp4", 16)])
    def test_block_sizes(self, rng, fmt, block):
        x = rng.standard_normal((4, 128)).astype(np.float32)
        _, params = quantize_fp4(x, fmt)
        assert params.block_size == block
        assert params.scale.shape == (4, 128 // block)

    def test_outputs_are_representable(self, rng):
        x = rng.standard_normal((2, 64)).astype(np.float32)
        q, params = quantize_fp4(x, "mxfp4")
        scaled = q.reshape(2, 2, 32) / params.scale[..., None]
        for val in np.abs(scaled).ravel():
            assert np.min(np.abs(E2M1_VALUES - val)) < 1e-5

    def test_mxfp4_scales_are_powers_of_two(self, rng):
        x = rng.standard_normal((2, 64)).astype(np.float32) * 7
        _, params = quantize_fp4(x, "mxfp4")
        log2 = np.log2(params.scale)
        np.testing.assert_allclose(log2, np.round(log2), atol=1e-6)

    def test_relative_error_bounded(self, rng):
        x = rng.standard_normal((8, 128)).astype(np.float32)
        q, _ = quantize_fp4(x, "mxfp4")
        # E2M1's worst-case relative spacing is 0.5/1.5 on top of the block
        # scale rounding (another up-to-2x); modest absolute check instead.
        amax = np.abs(x).max()
        assert np.max(np.abs(q - x)) <= amax * 0.6

    def test_nvfp4_tighter_than_mxfp4(self, rng):
        """Finer blocks + non-power-of-two scales -> lower error."""
        x = rng.standard_normal((16, 128)).astype(np.float32)
        q_mx, _ = quantize_fp4(x, "mxfp4")
        q_nv, _ = quantize_fp4(x, "nvfp4")
        assert np.abs(q_nv - x).mean() <= np.abs(q_mx - x).mean()

    def test_unknown_format_rejected(self, rng):
        with pytest.raises(ValueError):
            quantize_fp4(np.zeros((1, 32), np.float32), "fp4e3m0")

    def test_misaligned_block_rejected(self, rng):
        with pytest.raises(ValueError):
            quantize_fp4(np.zeros((1, 40), np.float32), "mxfp4")

    def test_storage_bits(self):
        assert fp4_storage_bits_per_value("mxfp4") == 4.25
        assert fp4_storage_bits_per_value("nvfp4") == 4.5


class TestProperties:
    @given(
        bits=st.sampled_from([2, 4, 8]),
        groups=st.integers(1, 4),
        scale=st.floats(0.1, 100),
        seed=st.integers(0, 2 ** 31),
    )
    @settings(max_examples=60, deadline=None)
    def test_error_bound_property(self, bits, groups, scale, seed):
        rng = np.random.default_rng(seed)
        x = (rng.standard_normal((32 * groups, 4)) * scale).astype(np.float32)
        codes, params = quantize(x, bits, axis=0, group_size=32)
        x_hat = dequantize(codes, params)
        # Bound: half a quantization step plus fp16 metadata rounding.
        bound = params.scale.max() / 2 + np.abs(x).max() * 2e-3 + 1e-3
        assert np.max(np.abs(x_hat - x)) <= bound

    @given(seed=st.integers(0, 2 ** 31), shift=st.floats(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_quantization_shift_covariance(self, seed, shift):
        """Asymmetric quantization tracks additive shifts (zero-point)."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((32, 4)).astype(np.float32)
        codes_a, _ = quantize(x, 4, axis=0, group_size=32)
        codes_b, _ = quantize(x + shift, 4, axis=0, group_size=32)
        # Codes are identical up to fp16 rounding of the shifted metadata.
        assert np.mean(codes_a != codes_b) < 0.35
