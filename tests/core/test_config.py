"""Configuration objects: geometry derivations and ablation flags."""

import pytest

from repro.core.config import AttentionGeometry, BitDecodingConfig


class TestAttentionGeometry:
    def test_variants(self):
        assert AttentionGeometry(1, 32, 32, 100, 128).attention_variant == "MHA"
        assert AttentionGeometry(1, 32, 8, 100, 128).attention_variant == "GQA"
        assert AttentionGeometry(1, 32, 1, 100, 128).attention_variant == "MQA"

    def test_gq(self):
        assert AttentionGeometry(1, 32, 8, 100, 128).gq == 4

    def test_kv_bytes(self):
        g = AttentionGeometry(2, 32, 8, 1024, 128)
        assert g.kv_elements == 2 * 2 * 8 * 1024 * 128
        assert g.kv_bytes_fp16 == g.kv_elements * 2
        assert g.kv_bytes_quantized(4) == g.kv_elements / 2

    def test_attention_flops(self):
        g = AttentionGeometry(1, 2, 2, 100, 16)
        assert g.attention_flops == 2 * 100 * 16 * 2 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AttentionGeometry(0, 32, 8, 100, 128)
        with pytest.raises(ValueError, match="multiple"):
            AttentionGeometry(1, 30, 8, 100, 128)


class TestBitDecodingConfig:
    def test_defaults_are_the_paper_flagship(self):
        cfg = BitDecodingConfig()
        assert cfg.bits == 4
        assert cfg.granularity == "channel"
        assert cfg.residual_block_size == 128
        assert cfg.warps_per_block == 4

    def test_residual_block_follows_eq1(self):
        assert BitDecodingConfig(bits=2).residual_block_size == 256
        assert BitDecodingConfig(bits=8).residual_block_size == 64
        assert BitDecodingConfig(bits=4, wn=8).residual_block_size == 256

    def test_warp_ablation_shrinks_block(self):
        cfg = BitDecodingConfig(use_warp_parallel=False)
        assert cfg.effective_wn == 1
        assert cfg.residual_block_size == 32

    def test_instruction_paths(self):
        assert BitDecodingConfig(version="v2").instruction_path == "sm80"
        assert BitDecodingConfig(version="v3").instruction_path == "sm90"
        assert BitDecodingConfig(version="fp4").instruction_path == "blackwell_fp4"

    def test_short_names(self):
        assert BitDecodingConfig(bits=4).short_name == "BitDecoding-KC-4 (v2)"
        assert (
            BitDecodingConfig(bits=2, granularity="tensor", version="v3").short_name
            == "BitDecoding-KT-2 (v3)"
        )
        assert BitDecodingConfig(version="fp4").short_name == "BitDecoding-mxfp4"

    def test_with_overrides_copies(self):
        cfg = BitDecodingConfig()
        ablated = cfg.with_overrides(use_pipeline=False)
        assert cfg.use_pipeline and not ablated.use_pipeline
        assert ablated.bits == cfg.bits

    def test_storage_bits(self):
        assert BitDecodingConfig(bits=2).storage_bits_per_value == 2.0
        assert BitDecodingConfig(version="fp4").storage_bits_per_value == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BitDecodingConfig(version="v4")
        with pytest.raises(ValueError):
            BitDecodingConfig(bits=3)
        with pytest.raises(ValueError):
            BitDecodingConfig(dequant_method="simd")
        with pytest.raises(ValueError):
            BitDecodingConfig(tile_n=0)

    def test_key_scheme_reflects_config(self):
        cfg = BitDecodingConfig(bits=2, granularity="tensor", key_group_size=32)
        scheme = cfg.key_scheme
        assert scheme.bits == 2
        assert scheme.granularity == "tensor"
        assert scheme.group_size == 32

    def test_packing_ratio(self):
        assert BitDecodingConfig(bits=4).packing_ratio == 4
        assert BitDecodingConfig(bits=2).packing_ratio == 8
