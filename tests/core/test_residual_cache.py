"""Residual KV cache: Eq. 1 sizing, partitioning, append/flush protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.residual_cache import (
    ResidualBuffer,
    partition_prefill,
    residual_block_size,
)


class TestEquationOne:
    @pytest.mark.parametrize(
        "wn,bits,word_bits,expected",
        [
            (4, 4, 16, 128),   # the paper's flagship INT4 configuration
            (4, 2, 16, 256),   # INT2 (matches "N_r always <= 256")
            (1, 4, 16, 32),    # Wn ablation
            (4, 8, 16, 64),
            (4, 4, 32, 256),
        ],
    )
    def test_block_sizes(self, wn, bits, word_bits, expected):
        assert residual_block_size(wn, bits, word_bits) == expected

    def test_block_size_is_mma_aligned(self):
        """N_r must tile evenly by the warp footprint P_n x W_n."""
        for wn in (1, 2, 4, 8):
            for bits in (2, 4, 8):
                nr = residual_block_size(wn, bits)
                assert nr % (8 * wn) == 0

    def test_invalid_factors_rejected(self):
        with pytest.raises(ValueError):
            residual_block_size(0, 4)


class TestPartition:
    @pytest.mark.parametrize(
        "seq,block,packed,res",
        [(1000, 128, 896, 104), (1024, 128, 1024, 0), (100, 128, 0, 100), (0, 128, 0, 0)],
    )
    def test_partition(self, seq, block, packed, res):
        assert partition_prefill(seq, block) == (packed, res)

    def test_partition_conserves_tokens(self):
        for seq in range(0, 600, 37):
            packed, res = partition_prefill(seq, 128)
            assert packed + res == seq
            assert packed % 128 == 0
            assert 0 <= res < 128

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            partition_prefill(-1, 128)
        with pytest.raises(ValueError):
            partition_prefill(10, 0)


class TestResidualBuffer:
    def test_starts_empty(self):
        buf = ResidualBuffer(capacity=8, head_dim=4)
        assert buf.length == 0
        assert not buf.is_full

    def test_append_until_flush(self, rng):
        buf = ResidualBuffer(capacity=4, head_dim=8)
        rows_k = rng.standard_normal((4, 8)).astype(np.float16)
        rows_v = rng.standard_normal((4, 8)).astype(np.float16)
        for i in range(3):
            assert buf.append(rows_k[i], rows_v[i]) is None
        flushed = buf.append(rows_k[3], rows_v[3])
        assert flushed is not None
        np.testing.assert_array_equal(flushed[0], rows_k)
        np.testing.assert_array_equal(flushed[1], rows_v)
        # Buffer resets after the flush.
        assert buf.length == 0

    def test_flush_returns_copies(self, rng):
        buf = ResidualBuffer(capacity=2, head_dim=4)
        k = rng.standard_normal((2, 4)).astype(np.float16)
        v = rng.standard_normal((2, 4)).astype(np.float16)
        buf.append(k[0], v[0])
        flushed_k, _ = buf.append(k[1], v[1])
        buf.append(k[0] * 0 + 9, v[0])  # overwrite internal storage
        np.testing.assert_array_equal(flushed_k, k)

    def test_fill_from_prefill_remainder(self, rng):
        buf = ResidualBuffer(capacity=8, head_dim=4)
        buf.fill(
            rng.standard_normal((5, 4)).astype(np.float16),
            rng.standard_normal((5, 4)).astype(np.float16),
        )
        assert buf.length == 5
        k_view, v_view = buf.view()
        assert k_view.shape == (5, 4)

    def test_fill_with_full_block_rejected(self, rng):
        buf = ResidualBuffer(capacity=4, head_dim=4)
        with pytest.raises(ValueError, match="smaller"):
            buf.fill(np.zeros((4, 4), np.float16), np.zeros((4, 4), np.float16))

    def test_mismatched_kv_lengths_rejected(self):
        buf = ResidualBuffer(capacity=8, head_dim=4)
        with pytest.raises(ValueError, match="equal length"):
            buf.fill(np.zeros((3, 4), np.float16), np.zeros((2, 4), np.float16))

    def test_view_is_fp16(self):
        buf = ResidualBuffer(capacity=4, head_dim=4)
        buf.append(np.ones(4), np.ones(4))
        k_view, v_view = buf.view()
        assert k_view.dtype == np.float16

    def test_constant_memory_footprint(self):
        buf = ResidualBuffer(capacity=128, head_dim=128)
        expected = 2 * 128 * 128 * 2
        assert buf.nbytes == expected


class TestProperties:
    @given(
        capacity=st.integers(1, 64),
        n_appends=st.integers(1, 400),
        seed=st.integers(0, 2 ** 31),
    )
    @settings(max_examples=40, deadline=None)
    def test_append_stream_invariants(self, capacity, n_appends, seed):
        """Over any append stream: flush count and residual length obey
        modular arithmetic, and no token is lost."""
        rng = np.random.default_rng(seed)
        buf = ResidualBuffer(capacity=capacity, head_dim=2)
        flushes = 0
        total_flushed_rows = 0
        for i in range(n_appends):
            out = buf.append(rng.standard_normal(2), rng.standard_normal(2))
            if out is not None:
                flushes += 1
                total_flushed_rows += out[0].shape[0]
        assert flushes == n_appends // capacity
        assert buf.length == n_appends % capacity
        assert total_flushed_rows + buf.length == n_appends
