"""Architecture-specific path resolution (Sec. V-D)."""

import pytest

from repro.core.arch_support import (
    resolve_version,
    stsm_staging_bytes,
    uses_ldmatrix,
    validate_config,
    validate_version,
    wgmma_b_operand_in_smem,
)
from repro.core.config import BitDecodingConfig
from repro.gpu.arch import get_arch


class TestResolveVersion:
    def test_auto_picks_best_path(self):
        assert resolve_version(get_arch("a100")) == "v2"
        assert resolve_version(get_arch("rtx4090")) == "v2"
        assert resolve_version(get_arch("h100")) == "v3"
        assert resolve_version(get_arch("rtx5090")) == "fp4"
        assert resolve_version(get_arch("rtx_pro_6000")) == "fp4"

    def test_explicit_request_honored(self):
        assert resolve_version(get_arch("h100"), "v2") == "v2"

    def test_v3_rejected_pre_hopper(self):
        with pytest.raises(ValueError, match="wgmma"):
            resolve_version(get_arch("a100"), "v3")

    def test_fp4_rejected_pre_blackwell(self):
        with pytest.raises(ValueError, match="FP4"):
            resolve_version(get_arch("h100"), "fp4")

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            validate_version(get_arch("a100"), "v9")


class TestValidateConfig:
    def test_valid_config_passes(self):
        validate_config(get_arch("h100"), BitDecodingConfig(version="v3"))

    def test_mismatched_config_rejected(self):
        with pytest.raises(ValueError):
            validate_config(get_arch("rtx4090"), BitDecodingConfig(version="v3"))


class TestPathProperties:
    def test_wgmma_b_operand_constraint(self):
        assert wgmma_b_operand_in_smem("v3")
        assert not wgmma_b_operand_in_smem("v2")

    def test_stsm_bytes(self):
        # K + V tiles of 128 x 128 FP16.
        assert stsm_staging_bytes(128, 128) == 2 * 128 * 128 * 2

    def test_fp4_skips_ldmatrix(self):
        assert uses_ldmatrix("v2")
        assert uses_ldmatrix("v3")
        assert not uses_ldmatrix("fp4")
