"""Bit packing/unpacking: round trips, interleave order, storage math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packing import (
    INTERLEAVE_75316420,
    _word_dtype,
    fast_parity_extract,
    gather_pack_into,
    pack_values,
    packed_nbytes,
    packing_ratio,
    unpack_values,
)


class TestGatherPackInto:
    """The fused gather+pack must be bit-equal to take() then pack_values."""

    @settings(max_examples=40, deadline=None)
    @given(
        bits=st.sampled_from([1, 2, 4, 8]),
        word_bits=st.sampled_from([16, 32]),
        interleaved=st.booleans(),
        rows=st.integers(1, 4),
        n_words=st.integers(1, 32),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_bit_equal_to_unfused(self, bits, word_bits, interleaved, rows, n_words, seed):
        ratio = packing_ratio(bits, word_bits)
        rng = np.random.default_rng(seed)
        n_values = n_words * ratio
        codes = rng.integers(0, 1 << bits, size=(rows, 2 * n_values), dtype=np.uint8)
        index = rng.permutation(2 * n_values)[:n_values]
        expected = pack_values(
            np.take(codes, index, axis=-1), bits, word_bits, interleaved=interleaved
        )
        out = np.empty((rows, n_words), _word_dtype(word_bits))
        gather_pack_into(codes, index, bits, out, word_bits, interleaved)
        np.testing.assert_array_equal(out, expected)

    def test_scratch_buffers_reused(self, rng):
        codes = rng.integers(0, 16, size=(2, 32), dtype=np.uint8)
        index = np.arange(32)
        out = np.empty((2, 8), np.uint16)
        scratch = (np.empty((2, 8), np.uint8), np.empty((2, 8), np.uint16))
        gather_pack_into(codes, index, 4, out, 16, True, scratch)
        expected = pack_values(np.take(codes, index, axis=-1), 4, 16, interleaved=True)
        np.testing.assert_array_equal(out, expected)

    def test_shape_mismatch_rejected(self, rng):
        codes = rng.integers(0, 16, size=(2, 32), dtype=np.uint8)
        with pytest.raises(ValueError, match="word tensor"):
            gather_pack_into(codes, np.arange(32), 4, np.empty((2, 4), np.uint16))
        with pytest.raises(ValueError, match="multiple"):
            gather_pack_into(codes, np.arange(31), 4, np.empty((2, 8), np.uint16))


class TestPackingRatio:
    @pytest.mark.parametrize(
        "bits,word_bits,expected",
        [(4, 16, 4), (2, 16, 8), (1, 16, 16), (8, 16, 2), (4, 32, 8), (2, 32, 16)],
    )
    def test_ratio(self, bits, word_bits, expected):
        assert packing_ratio(bits, word_bits) == expected

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            packing_ratio(3)

    def test_invalid_word_rejected(self):
        with pytest.raises(ValueError):
            packing_ratio(4, 12)

    def test_word_narrower_than_value_rejected(self):
        with pytest.raises(ValueError):
            packing_ratio(8, 8) and packing_ratio(16, 8)


class TestRoundTrip:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    @pytest.mark.parametrize("word_bits", [16, 32])
    @pytest.mark.parametrize("interleaved", [False, True])
    def test_round_trip_identity(self, rng, bits, word_bits, interleaved):
        ratio = packing_ratio(bits, word_bits)
        values = rng.integers(0, 1 << bits, size=(6, ratio * 5), dtype=np.uint8)
        words = pack_values(values, bits, word_bits, interleaved=interleaved)
        restored = unpack_values(words, bits, word_bits, interleaved=interleaved)
        np.testing.assert_array_equal(restored, values)

    def test_word_count(self, rng):
        values = rng.integers(0, 16, size=(3, 16), dtype=np.uint8)
        words = pack_values(values, 4, 16)
        assert words.shape == (3, 4)
        assert words.dtype == np.uint16

    def test_misaligned_length_rejected(self, rng):
        values = rng.integers(0, 16, size=(3, 15), dtype=np.uint8)
        with pytest.raises(ValueError, match="multiple"):
            pack_values(values, 4, 16)

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(ValueError, match="range"):
            pack_values(np.asarray([[16, 0, 0, 0]]), 4, 16)

    def test_interleaved_and_linear_differ(self, rng):
        values = np.arange(8, dtype=np.uint8).reshape(1, 8)
        linear = pack_values(values, 4, 32, interleaved=False)
        inter = pack_values(values, 4, 32, interleaved=True)
        assert linear[0, 0] != inter[0, 0]

    def test_cross_order_unpack_is_wrong(self, rng):
        """Packing interleaved but unpacking linear corrupts data — the
        config-coordination requirement of Sec. IV-A(4)."""
        values = rng.integers(0, 16, size=(1, 8), dtype=np.uint8)
        words = pack_values(values, 4, 32, interleaved=True)
        wrong = unpack_values(words, 4, 32, interleaved=False)
        assert not np.array_equal(wrong, values)


class TestInterleave75316420:
    def test_pattern_definition(self):
        # Logical value j lands in physical field INTERLEAVE[j]: first half
        # in even fields, second half in odd fields.
        assert INTERLEAVE_75316420 == (0, 2, 4, 6, 1, 3, 5, 7)

    def test_physical_nibble_placement(self):
        values = np.arange(8, dtype=np.uint8).reshape(1, 8)
        word = int(pack_values(values, 4, 32, interleaved=True)[0, 0])
        nibbles = [(word >> (4 * i)) & 0xF for i in range(8)]
        # Physical layout must read v0 v4 v1 v5 v2 v6 v3 v7.
        assert nibbles == [0, 4, 1, 5, 2, 6, 3, 7]

    def test_fast_extract_returns_halves_in_order(self, rng):
        values = rng.integers(0, 16, size=(4, 8), dtype=np.uint8)
        words = pack_values(values, 4, 32, interleaved=True)
        first, second = fast_parity_extract(words, 4, 32)
        np.testing.assert_array_equal(first.reshape(4, 4), values[:, :4])
        np.testing.assert_array_equal(second.reshape(4, 4), values[:, 4:])

    @pytest.mark.parametrize("bits,word_bits", [(4, 16), (2, 16), (4, 32), (2, 32)])
    def test_fast_extract_matches_unpack(self, rng, bits, word_bits):
        ratio = packing_ratio(bits, word_bits)
        values = rng.integers(0, 1 << bits, size=(3, ratio), dtype=np.uint8)
        words = pack_values(values, bits, word_bits, interleaved=True)
        first, second = fast_parity_extract(words, bits, word_bits)
        combined = np.concatenate([first, second], axis=-1).reshape(3, ratio)
        np.testing.assert_array_equal(combined, values)


class TestStorageMath:
    def test_packed_nbytes(self):
        assert packed_nbytes(128, 4, 16) == 64
        assert packed_nbytes(128, 2, 16) == 32

    def test_packed_nbytes_alignment_enforced(self):
        with pytest.raises(ValueError):
            packed_nbytes(130, 4, 16)


class TestProperties:
    @given(
        bits=st.sampled_from([1, 2, 4, 8]),
        word_bits=st.sampled_from([16, 32]),
        interleaved=st.booleans(),
        n_words=st.integers(1, 32),
        seed=st.integers(0, 2 ** 31),
    )
    @settings(max_examples=80, deadline=None)
    def test_round_trip_property(self, bits, word_bits, interleaved, n_words, seed):
        ratio = packing_ratio(bits, word_bits)
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << bits, size=(n_words * ratio,), dtype=np.uint8)
        words = pack_values(values, bits, word_bits, interleaved=interleaved)
        assert words.nbytes * 8 == bits * values.size
        restored = unpack_values(words, bits, word_bits, interleaved=interleaved)
        np.testing.assert_array_equal(restored, values)

    @given(
        bits=st.sampled_from([2, 4]),
        seed=st.integers(0, 2 ** 31),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_is_injective(self, bits, seed):
        """Distinct code vectors always pack to distinct words."""
        ratio = packing_ratio(bits, 16)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 1 << bits, size=(ratio,), dtype=np.uint8)
        b = a.copy()
        b[rng.integers(ratio)] ^= 1
        wa = pack_values(a, bits, 16, interleaved=True)
        wb = pack_values(b, bits, 16, interleaved=True)
        assert not np.array_equal(wa, wb)
