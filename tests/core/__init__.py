"""BitDecoding reproduction test suite (tests/core)."""
