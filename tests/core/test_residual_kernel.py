"""Residual Kernel: flush numerics, layout coordination, trace builders."""

import numpy as np
import pytest

from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.residual_kernel import (
    Fp4Block,
    PackedBlock,
    attend_residual,
    build_prefill_quant_launch,
    build_residual_launch,
    flush_block,
)
from repro.core.softmax import reference_attention
from repro.gpu.kernel import simulate_kernel


def _block(rng, config, n=None, d=32):
    n = n or config.residual_block_size
    k = rng.standard_normal((n, d)).astype(np.float16)
    v = rng.standard_normal((n, d)).astype(np.float16)
    return k, v


class TestFlushNumerics:
    @pytest.mark.parametrize("bits,granularity", [(4, "channel"), (4, "tensor"), (2, "channel"), (8, "channel")])
    def test_flush_dequant_round_trip_error(self, rng, bits, granularity):
        config = BitDecodingConfig(bits=bits, granularity=granularity)
        k, v = _block(rng, config)
        block = flush_block(k, v, config)
        k_hat, v_hat = block.dequant_kv(config)
        # Reconstruction error bounded by the quantization step.
        step_k = float(np.max(block.k_params.scale))
        step_v = float(np.max(block.v_params.scale))
        assert np.max(np.abs(k_hat - k.astype(np.float32))) <= step_k / 2 + 1e-2
        assert np.max(np.abs(v_hat - v.astype(np.float32))) <= step_v / 2 + 1e-2

    def test_flush_stores_real_packed_words(self, rng):
        config = BitDecodingConfig(bits=4)
        k, v = _block(rng, config)
        block = flush_block(k, v, config)
        assert isinstance(block, PackedBlock)
        assert block.k_words.dtype == np.uint16
        assert block.meta_nbytes > 0

    def test_packed_bytes_are_quarter_of_fp16_for_int4(self, rng):
        config = BitDecodingConfig(bits=4)
        k, v = _block(rng, config)
        block = flush_block(k, v, config)
        assert block.packed_nbytes * 4 == (k.nbytes + v.nbytes)

    def test_layout_mismatch_detected(self, rng):
        """Sec. IV-A(4): store and load must share the instruction config."""
        config4 = BitDecodingConfig(bits=4)
        config2 = BitDecodingConfig(bits=2)
        k, v = _block(rng, config4)
        block = flush_block(k, v, config4)
        with pytest.raises(ValueError, match="instruction configuration"):
            block.dequant_kv(config2)

    def test_fp4_flush(self, rng):
        config = BitDecodingConfig(version="fp4")
        k, v = _block(rng, config)
        block = flush_block(k, v, config)
        assert isinstance(block, Fp4Block)
        k_hat, _ = block.dequant_kv(config)
        # fp4 reconstruction error is bounded relative to the block max.
        assert np.max(np.abs(k_hat - k.astype(np.float32))) <= np.abs(k).max() * 0.6

    def test_shape_mismatch_rejected(self, rng):
        config = BitDecodingConfig(bits=4)
        k, _ = _block(rng, config)
        with pytest.raises(ValueError, match="shape"):
            flush_block(k, k[:64], config)


class TestAttendResidual:
    def test_matches_reference(self, rng):
        config = BitDecodingConfig(bits=4)
        q = rng.standard_normal((4, 32)).astype(np.float32)
        k, v = _block(rng, config, n=100)
        state = attend_residual(q, k, v, config)
        out = state.finalize()
        ref = reference_attention(q, k.astype(np.float32), v.astype(np.float32))
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-3)

    def test_empty_residual_returns_fresh_state(self, rng):
        config = BitDecodingConfig(bits=4)
        q = rng.standard_normal((4, 32)).astype(np.float32)
        state = attend_residual(q, np.zeros((0, 32)), np.zeros((0, 32)), config)
        assert np.all(state.l == 0)


class TestTraceBuilders:
    def test_residual_launch_flush_adds_work(self, a100):
        geom = AttentionGeometry(2, 32, 8, 4096, 128)
        config = BitDecodingConfig(bits=4)
        plain = simulate_kernel(a100, build_residual_launch(geom, config, a100))
        flush = simulate_kernel(
            a100, build_residual_launch(geom, config, a100, flush=True)
        )
        assert flush.time_s > plain.time_s
        assert "quant_pack" in flush.subtrace_times

    def test_residual_launch_res_len_bounds(self, a100):
        geom = AttentionGeometry(1, 32, 8, 4096, 128)
        config = BitDecodingConfig(bits=4)
        with pytest.raises(ValueError):
            build_residual_launch(geom, config, a100, res_len=0)
        with pytest.raises(ValueError):
            build_residual_launch(geom, config, a100, res_len=129)

    def test_residual_cost_independent_of_seq_len(self, a100):
        """The residual kernel touches only N_r rows, not the whole cache."""
        config = BitDecodingConfig(bits=4)
        short = AttentionGeometry(1, 32, 8, 4096, 128)
        long = AttentionGeometry(1, 32, 8, 131072, 128)
        t_short = simulate_kernel(a100, build_residual_launch(short, config, a100)).time_s
        t_long = simulate_kernel(a100, build_residual_launch(long, config, a100)).time_s
        assert t_long == pytest.approx(t_short, rel=0.01)

    def test_prefill_quant_launch_scales_with_context(self, a100):
        config = BitDecodingConfig(bits=4)
        small = AttentionGeometry(1, 32, 8, 8192, 128)
        large = AttentionGeometry(1, 32, 8, 131072, 128)
        t_small = simulate_kernel(a100, build_prefill_quant_launch(small, config, a100)).time_s
        t_large = simulate_kernel(a100, build_prefill_quant_launch(large, config, a100)).time_s
        assert t_large > 4 * t_small
