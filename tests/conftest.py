"""Shared fixtures for the BitDecoding reproduction test suite."""

import numpy as np
import pytest

from repro.gpu.arch import GPU_REGISTRY, get_arch


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def a100():
    return get_arch("a100")


@pytest.fixture
def rtx4090():
    return get_arch("rtx4090")


@pytest.fixture
def h100():
    return get_arch("h100")


@pytest.fixture
def rtx5090():
    return get_arch("rtx5090")


@pytest.fixture(params=sorted(GPU_REGISTRY))
def any_arch(request):
    """Parametrized over every registered device."""
    return get_arch(request.param)
