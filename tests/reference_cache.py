"""The seed per-block KV cache, retained as a slow reference.

This is the pre-vectorization *orchestration* of ``BitKVCache`` /
``BitDecoding.decode``: nested Python loops over ``blocks[b][h]`` lists of
per-block objects and per-(batch, head) kernel calls.  It exists so the
batched struct-of-arrays cache can be proven *bit-exact* against the
per-block semantics (see ``tests/core/test_vectorized_cache.py``) and so
``benchmarks/bench_kernel_hotpath.py`` can measure the speedup the
vectorization buys.

Scope of the equivalence: this reference shares the low-level primitives
(``quantize``/``dequantize``/``pack_values``/``flush_block``/
``run_numeric``) with the vectorized path, so the sweep pins the
batched-vs-per-block *orchestration*, not the primitives themselves —
those are pinned separately by their own unit tests
(``tests/core/test_quantization.py``, ``test_packing.py``,
``test_residual_kernel.py``, ``test_softmax.py``), which predate the
vectorization and ran unchanged against it.  Do not "optimize" this
file — its slowness is the point.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.config import BitDecodingConfig
from repro.core.packing_kernel import run_numeric, split_states
from repro.core.query_transform import group_queries, ungroup_output
from repro.core.residual_cache import ResidualBuffer, partition_prefill
from repro.core.residual_kernel import (
    Fp4Block,
    PackedBlock,
    attend_residual,
    flush_block,
)
from repro.core.softmax import OnlineSoftmaxState


class ReferenceBitKVCache:
    """Per-(sequence, kv-head) lists of packed blocks + residual buffers."""

    def __init__(self, batch: int, hkv: int, head_dim: int, config: BitDecodingConfig):
        if min(batch, hkv, head_dim) <= 0:
            raise ValueError("batch, hkv and head_dim must be positive")
        self.batch = batch
        self.hkv = hkv
        self.head_dim = head_dim
        self.config = config
        nr = config.residual_block_size
        self.blocks: List[List[List[Union[PackedBlock, Fp4Block]]]] = [
            [[] for _ in range(hkv)] for _ in range(batch)
        ]
        self.residuals: List[List[ResidualBuffer]] = [
            [ResidualBuffer(nr, head_dim) for _ in range(hkv)] for _ in range(batch)
        ]
        self.seq_len = 0

    @classmethod
    def from_prefill(
        cls, k: np.ndarray, v: np.ndarray, config: BitDecodingConfig
    ) -> "ReferenceBitKVCache":
        k = np.asarray(k)
        v = np.asarray(v)
        if k.ndim != 4 or k.shape != v.shape:
            raise ValueError("k and v must both be [batch, hkv, seq, d]")
        batch, hkv, seq_len, d = k.shape
        cache = cls(batch, hkv, d, config)
        nr = config.residual_block_size
        packed_len, res_len = partition_prefill(seq_len, nr)
        for b in range(batch):
            for h in range(hkv):
                for t0 in range(0, packed_len, nr):
                    cache.blocks[b][h].append(
                        flush_block(k[b, h, t0 : t0 + nr], v[b, h, t0 : t0 + nr], config)
                    )
                if res_len:
                    cache.residuals[b][h].fill(
                        k[b, h, packed_len:], v[b, h, packed_len:]
                    )
        cache.seq_len = seq_len
        return cache

    def append_token(self, k_new: np.ndarray, v_new: np.ndarray) -> bool:
        k_new = np.asarray(k_new)
        v_new = np.asarray(v_new)
        expected = (self.batch, self.hkv, self.head_dim)
        if k_new.shape != expected or v_new.shape != expected:
            raise ValueError(f"new K/V must have shape {expected}")
        flushed = False
        for b in range(self.batch):
            for h in range(self.hkv):
                block = self.residuals[b][h].append(k_new[b, h], v_new[b, h])
                if block is not None:
                    self.blocks[b][h].append(
                        flush_block(block[0], block[1], self.config)
                    )
                    flushed = True
        self.seq_len += 1
        return flushed

    def packed_len(self) -> int:
        if not self.blocks[0][0]:
            return 0
        return sum(blk.length for blk in self.blocks[0][0])

    def res_len(self) -> int:
        return self.residuals[0][0].length

    def dequantized_packed(self, b: int, h: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-block unpack + dequant + concatenate — re-done on every call."""
        blocks = self.blocks[b][h]
        if not blocks:
            d = self.head_dim
            return np.zeros((0, d), np.float32), np.zeros((0, d), np.float32)
        ks, vs = zip(*(blk.dequant_kv(self.config) for blk in blocks))
        return np.concatenate(ks, axis=0), np.concatenate(vs, axis=0)

    def residual_view(self, b: int, h: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.residuals[b][h].view()

    @property
    def packed_nbytes(self) -> float:
        return sum(
            blk.packed_nbytes for row in self.blocks for head in row for blk in head
        )

    @property
    def meta_nbytes(self) -> float:
        return sum(
            blk.meta_nbytes for row in self.blocks for head in row for blk in head
        )

    @property
    def residual_nbytes(self) -> float:
        return sum(r.nbytes for row in self.residuals for r in row)

    @property
    def total_nbytes(self) -> float:
        return self.packed_nbytes + self.meta_nbytes + self.residual_nbytes


def reference_decode(
    config: BitDecodingConfig,
    q: np.ndarray,
    cache: ReferenceBitKVCache,
    n_splits: Optional[int] = None,
) -> np.ndarray:
    """The seed decode loop: per-(batch, kv-head) kernel calls + merge.

    The seed implementation predates ``numerics_mode`` and always walked
    ``tile_n`` tiles through the online softmax, so this reference pins
    ``exact_tiled`` regardless of what the caller's config selects.
    """
    config = config.with_overrides(numerics_mode="exact_tiled")
    q = np.asarray(q, dtype=np.float32)
    if q.ndim != 4:
        raise ValueError("q must be [batch, q_len, hq, d]")
    batch, q_len, hq, d = q.shape
    scale = 1.0 / math.sqrt(d)
    grouped = group_queries(q, cache.hkv)  # [b, hkv, M, d]
    out = np.empty_like(grouped)
    for b in range(batch):
        for h in range(cache.hkv):
            q_bh = grouped[b, h]
            k_hat, v_hat = cache.dequantized_packed(b, h)
            states: List[OnlineSoftmaxState] = []
            if k_hat.shape[0]:
                if n_splits and n_splits > 1:
                    states.extend(
                        split_states(q_bh, k_hat, v_hat, config, n_splits, scale)
                    )
                else:
                    states.append(run_numeric(q_bh, k_hat, v_hat, config, scale))
            k_res, v_res = cache.residual_view(b, h)
            if k_res.shape[0]:
                states.append(attend_residual(q_bh, k_res, v_res, config, scale))
            if not states:
                raise ValueError("decode on an empty cache")
            merged = states[0]
            for st in states[1:]:
                merged.merge(st)
            out[b, h] = merged.finalize()
    return ungroup_output(out, hq, q_len)
