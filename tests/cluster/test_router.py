"""Data-parallel routing: exactly-once dispatch, affinity, merged reports.

The router fronts independent engine replicas; whatever the policy, the
cluster must serve every request of the trace exactly once — no drops,
no duplicates — including under page pressure that forces preemptions
inside a replica.  ``prefix_affinity`` must additionally keep each
shared-prefix group on one replica while ``round_robin`` provably
splits it (the group count is chosen coprime to the replica count, so
the split is structural, not incidental).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ROUTER_POLICIES, ClusterReport, Router
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.gpu.arch import get_arch
from repro.model.config import LLAMA31_8B
from repro.model.memory import int_format
from repro.serving import ContinuousBatchingEngine, EngineConfig, poisson_trace

KERNEL_CONFIG = BitDecodingConfig(bits=4, wn=1)

A100 = get_arch("a100")


def _config(n_pages=None, prefix_cache=False, page_size=64):
    return EngineConfig(
        model=LLAMA31_8B,
        arch=A100,
        fmt=int_format(4, LLAMA31_8B, residual_window=64),
        attention=BitDecoding(KERNEL_CONFIG, A100),
        page_size=page_size,
        n_pages=n_pages,
        prefix_cache=prefix_cache,
    )


def _shared_trace(n, groups, shared=0.9):
    return poisson_trace(
        n,
        200.0,
        prompt_len=512,
        output_len=16,
        seed=0,
        shared_prefix_fraction=shared,
        prefix_groups=groups,
    )


class TestExactlyOnce:
    @settings(deadline=None, max_examples=25)
    @given(
        policy=st.sampled_from(ROUTER_POLICIES),
        replicas=st.integers(min_value=1, max_value=3),
        n_requests=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=5),
        tight_pool=st.booleans(),
    )
    def test_every_request_completes_exactly_once(
        self, policy, replicas, n_requests, seed, tight_pool
    ):
        # A pool tight enough to force preemptions inside a replica must
        # not change WHAT completes, only when.
        trace = poisson_trace(n_requests, 100.0, prompt_len=256, output_len=24, seed=seed)
        router = Router(
            _config(n_pages=24 if tight_pool else None),
            trace,
            replicas=replicas,
            policy=policy,
        )
        report = router.run()
        served = [
            lc.request.req_id
            for engine in router.engines
            for lc in engine.lifecycles
            if lc.finished
        ]
        assert sorted(served) == sorted(r.req_id for r in trace)
        assert report.completed == n_requests
        assert sum(router.dispatch_counts) == n_requests
        assert sorted(router.dispatch_log) == sorted(r.req_id for r in trace)

    def test_preemption_pressure_really_happens(self):
        # Guard the property above: the tight pool must actually preempt,
        # otherwise the hypothesis case tests nothing extra.
        trace = poisson_trace(12, 100.0, prompt_len=256, output_len=24, seed=0)
        router = Router(_config(n_pages=24), trace, replicas=2, policy="round_robin")
        report = router.run()
        assert sum(r.preemptions for r in report.per_replica) > 0
        assert report.completed == 12


class TestAffinity:
    def test_affinity_keeps_groups_home_round_robin_splits(self):
        # 3 groups over 2 replicas: coprime, so round-robin alternation
        # cannot accidentally keep any group's members on one parity.
        trace = _shared_trace(12, groups=3)
        pa = Router(_config(prefix_cache=True), trace, replicas=2, policy="prefix_affinity").run()
        rr = Router(_config(prefix_cache=True), trace, replicas=2, policy="round_robin").run()
        assert pa.prefix_groups_seen == 3
        assert pa.prefix_groups_split == 0
        assert pa.cross_replica_prefix_misses == 0
        assert rr.prefix_groups_split == 3
        assert rr.cross_replica_prefix_misses > 0
        # Affinity converts the splits it avoids into prefix-cache hits.
        assert pa.prefix_hit_rate > rr.prefix_hit_rate

    def test_affinity_dispatch_is_by_group(self):
        trace = _shared_trace(12, groups=3)
        router = Router(_config(prefix_cache=True), trace, replicas=2, policy="prefix_affinity")
        router.run()
        homes = {}
        for request in trace:
            home = homes.setdefault(request.prefix_group, router.dispatch_log[request.req_id])
            assert router.dispatch_log[request.req_id] == home

    def test_unshared_requests_spread_by_request_id(self):
        # No page-aligned shared prefix: the affinity key degenerates to
        # the request's own id, so routing still spreads and no request
        # is counted as a shareable group.
        trace = poisson_trace(8, 200.0, prompt_len=256, output_len=8, seed=1)
        router = Router(_config(prefix_cache=True), trace, replicas=2, policy="prefix_affinity")
        report = router.run()
        assert report.prefix_groups_seen == 0
        assert report.cross_replica_prefix_misses == 0
        assert min(router.dispatch_counts) > 0  # not all on one replica


class TestRoundRobinAndLeastLoaded:
    def test_round_robin_alternates(self):
        trace = poisson_trace(8, 200.0, prompt_len=128, output_len=8, seed=0)
        router = Router(_config(), trace, replicas=2, policy="round_robin")
        router.run()
        assert router.dispatch_counts == [4, 4]
        assert [router.dispatch_log[r.req_id] for r in sorted(trace, key=lambda r: r.arrival_s)][
            :4
        ] == [0, 1, 0, 1]

    def test_least_loaded_balances_within_one(self):
        trace = poisson_trace(9, 200.0, prompt_len=128, output_len=8, seed=0)
        router = Router(_config(), trace, replicas=3, policy="least_loaded")
        router.run()
        assert max(router.dispatch_counts) - min(router.dispatch_counts) <= 1


class TestValidationAndReport:
    def test_rejects_bad_replica_count(self):
        with pytest.raises(ValueError, match="replicas must be >= 1"):
            Router(_config(), [], replicas=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown router policy"):
            Router(_config(), [], replicas=2, policy="random")

    def test_merged_report_is_consistent(self):
        trace = _shared_trace(12, groups=3)
        router = Router(_config(prefix_cache=True), trace, replicas=2, policy="prefix_affinity")
        report = router.run()
        assert isinstance(report, ClusterReport)
        assert report.replicas == 2
        assert report.n_requests == 12
        assert report.completed == sum(r.completed for r in report.per_replica)
        assert report.total_generated_tokens == sum(
            r.total_generated_tokens for r in report.per_replica
        )
        assert report.sim_time_s == max(r.sim_time_s for r in report.per_replica)
        assert report.dispatch_counts == router.dispatch_counts
        assert report.load_imbalance >= 1.0
        d = report.to_dict()
        assert d["policy"] == "prefix_affinity"
        assert len(d["per_replica"]) == 2
        assert d["completed"] == 12

    def test_single_replica_matches_plain_engine(self):
        # replicas=1 is the degenerate cluster: same trace, same engine
        # config, so the lone replica must reproduce the plain engine run.
        trace = poisson_trace(6, 100.0, prompt_len=256, output_len=12, seed=2)
        report = Router(_config(), trace, replicas=1, policy="round_robin").run()
        plain = ContinuousBatchingEngine(_config(), trace).run()
        (replica,) = report.per_replica
        assert replica.total_generated_tokens == plain.total_generated_tokens
        assert replica.sim_time_s == pytest.approx(plain.sim_time_s)
        assert replica.decode_steps == plain.decode_steps
