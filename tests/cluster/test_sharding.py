"""Tensor-parallel page sharding: bit-exactness, pricing, validation.

TP shards the KV-head space; per-head independence (quantization,
softmax, PV never mix heads) means the sharded backend must reproduce
the single-rank run *bit for bit*, not approximately.  Every numeric
test here asserts ``array_equal``, never ``allclose``.
"""

import numpy as np
import pytest

from repro.attn import PagedBitBackend
from repro.cluster import ShardedPagedBackend, ShardedPagedStore
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.model.config import TINY, get_model
from repro.model.inference import decode_step_breakdown

KERNEL_CONFIG = BitDecodingConfig(bits=4, wn=1)  # N_r = 32
NR = KERNEL_CONFIG.residual_block_size

#: TINY's attention geometry: 4 query heads grouped over 2 KV heads.
HQ, HKV, HEAD_DIM = TINY.hq, TINY.hkv, TINY.head_dim


def _qkv(rng, batch, n, hq=HQ, hkv=HKV, head_dim=HEAD_DIM):
    q = rng.standard_normal((batch, n, hq, head_dim)).astype(np.float32)
    k = rng.standard_normal((batch, hkv, n, head_dim)).astype(np.float32)
    v = rng.standard_normal((batch, hkv, n, head_dim)).astype(np.float32)
    return q, k, v


def _pair(a100, tp=2):
    sharded = ShardedPagedBackend(BitDecoding(KERNEL_CONFIG, a100), tp=tp)
    single = PagedBitBackend(BitDecoding(KERNEL_CONFIG, a100))
    return sharded, single


class TestBitExactness:
    def test_prefill_matches_single_rank(self, rng, a100):
        sharded, single = _pair(a100)
        q, k, v = _qkv(rng, batch=2, n=3 * NR + 7)
        out_s = sharded.prefill(q, (k, v), sharded.new_handle(2, HKV, HEAD_DIM))
        out_1 = single.prefill(q, (k, v), single.new_handle(2, HKV, HEAD_DIM))
        assert out_s.shape == out_1.shape
        assert np.array_equal(out_s, out_1)

    def test_decode_stream_matches_single_rank(self, rng, a100):
        sharded, single = _pair(a100)
        bt_s = sharded.new_handle(2, HKV, HEAD_DIM)
        bt_1 = single.new_handle(2, HKV, HEAD_DIM)
        q0, k0, v0 = _qkv(rng, batch=2, n=2 * NR + 5)
        sharded.prefill(q0, (k0, v0), bt_s)
        single.prefill(q0, (k0, v0), bt_1)
        for _ in range(2 * NR + 3):  # crosses a residual-block flush
            q, k, v = _qkv(rng, batch=2, n=1)
            k, v = k[:, :, 0], v[:, :, 0]  # one token: [batch, hkv, d] rows
            sharded.append_kv((k, v), bt_s)
            single.append_kv((k, v), bt_1)
            out_s = sharded.decode_step(q, bt_s)
            out_1 = single.decode_step(q, bt_1)
            assert np.array_equal(out_s, out_1)

    def test_looped_decode_matches_single_rank(self, rng, a100):
        sharded, single = _pair(a100)
        bt_s = sharded.new_handle(3, HKV, HEAD_DIM)
        bt_1 = single.new_handle(3, HKV, HEAD_DIM)
        q0, k0, v0 = _qkv(rng, batch=3, n=NR + 9)
        sharded.prefill(q0, (k0, v0), bt_s)
        single.prefill(q0, (k0, v0), bt_1)
        q, k, v = _qkv(rng, batch=3, n=1)
        k, v = k[:, :, 0], v[:, :, 0]
        sharded.append_kv((k, v), bt_s)
        single.append_kv((k, v), bt_1)
        assert np.array_equal(
            sharded.decode_step_looped(q, bt_s),
            single.decode_step_looped(q, bt_1),
        )

    def test_tp_equals_hkv_still_exact(self, rng, a100):
        # One KV head per rank: the finest legal shard.
        sharded, single = _pair(a100, tp=HKV)
        q, k, v = _qkv(rng, batch=1, n=NR + 3)
        out_s = sharded.prefill(q, (k, v), sharded.new_handle(1, HKV, HEAD_DIM))
        out_1 = single.prefill(q, (k, v), single.new_handle(1, HKV, HEAD_DIM))
        assert np.array_equal(out_s, out_1)


class TestShardedStore:
    def test_tp_must_divide_hkv(self, a100):
        with pytest.raises(ValueError, match="does not divide"):
            ShardedPagedStore(KERNEL_CONFIG, hkv=2, head_dim=16, tp=3)

    def test_tp_must_be_positive(self, a100):
        with pytest.raises(ValueError, match="tp must be >= 1"):
            ShardedPagedStore(KERNEL_CONFIG, hkv=2, head_dim=16, tp=0)
        with pytest.raises(ValueError, match="tp must be >= 1"):
            ShardedPagedBackend(BitDecoding(KERNEL_CONFIG, a100), tp=0)

    def test_tiers_rejected(self):
        class FakeTiers:
            pass

        with pytest.raises(NotImplementedError, match="tiered offload"):
            ShardedPagedStore(KERNEL_CONFIG, hkv=2, head_dim=16, tp=2, tiers=FakeTiers())

    def test_swap_reattach_rejected(self):
        store = ShardedPagedStore(KERNEL_CONFIG, hkv=2, head_dim=16, tp=2)
        with pytest.raises(NotImplementedError, match="swap-in"):
            store.reattach(0, 32)

    def test_sharded_bytes_sum_to_single_rank_bytes(self, a100):
        # Sharding partitions the head space; it must not duplicate or
        # drop any storage relative to one pool holding all the heads.
        sharded = ShardedPagedStore(KERNEL_CONFIG, hkv=4, head_dim=16, tp=2, n_slots=8)
        single = PagedBitBackend(BitDecoding(KERNEL_CONFIG, a100), n_slots=8).make_store(
            4, 16, n_slots=8, table=sharded.table
        )
        assert sharded.packed_nbytes == single.packed_nbytes
        assert sharded.meta_nbytes == single.meta_nbytes
        assert sharded.residual_nbytes == single.residual_nbytes

    def test_head_split_requires_divisible_heads(self, rng, a100):
        sharded, _ = _pair(a100, tp=2)
        q = rng.standard_normal((1, 1, 3, HEAD_DIM)).astype(np.float32)
        with pytest.raises(ValueError, match="does not split"):
            sharded._split_heads(q, axis=2)


class TestTPPricing:
    def test_allreduce_tax_is_charged(self, a100):
        model = get_model("llama-3.1-8b")
        kernel = BitDecoding(KERNEL_CONFIG, a100)
        tp2 = decode_step_breakdown(model, a100, kernel, 8, 4096, n_gpus=2, tp=2)
        tp1 = decode_step_breakdown(model, a100, kernel, 8, 4096)
        assert tp2.comm_ms > 0.0
        assert tp1.comm_ms == 0.0
        # Head sharding shrinks the attention kernel strictly.
        assert tp2.attention_ms < tp1.attention_ms

    def test_backend_pricing_defaults_to_its_own_degree(self, a100):
        sharded, single = _pair(a100, tp=2)
        model = get_model("llama-3.1-8b")
        # No n_gpus/tp arguments: the sharded backend prices at tp=2.
        ms_sharded = sharded.decode_step_ms(model, a100, 8, 4096)
        ms_explicit = single.decode_step_ms(model, a100, 8, 4096, n_gpus=2, tp=2)
        ms_single = single.decode_step_ms(model, a100, 8, 4096)
        assert ms_sharded == pytest.approx(ms_explicit)
        assert ms_sharded != pytest.approx(ms_single)

    def test_arch_interconnect_fields_validated(self, a100):
        import dataclasses

        assert a100.nvlink_bw_gbs > 0
        assert a100.allreduce_latency_us >= 0
        with pytest.raises(ValueError, match="nvlink_bw_gbs"):
            dataclasses.replace(a100, nvlink_bw_gbs=0.0)
        with pytest.raises(ValueError, match="nvlink_bw_gbs"):
            dataclasses.replace(a100, allreduce_latency_us=-1.0)
