"""Executed cluster serving: sharded TP decode is bit-exact, config gates.

The strongest cluster claim: with ``execute=True`` at ``tp=2`` behind
routed replicas, every replica's decoded streams must be bit-identical
to a single-rank (``tp=1``) rerun of exactly the requests that replica
served.  The rerun preserves each replica's prefix-cache hit pattern —
a cache hit makes the suffix prefill attend dequantized (lossy) prefix
KV while a miss attends exact FP32 KV, so only same-subset reruns are
comparable, not a whole-trace merge.
"""

import numpy as np
import pytest

from repro.attn import PagedBitBackend
from repro.cluster import Router, ShardedPagedBackend
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.gpu.arch import get_arch
from repro.model.config import TINY
from repro.model.memory import int_format
from repro.serving import ContinuousBatchingEngine, EngineConfig, poisson_trace

KERNEL_CONFIG = BitDecodingConfig(bits=4, wn=1)  # N_r = 32
NR = KERNEL_CONFIG.residual_block_size

A100 = get_arch("a100")


def _common(prefix_cache=False):
    return dict(
        model=TINY,
        arch=A100,
        fmt=int_format(4, TINY, residual_window=NR),
        page_size=NR,
        n_pages=96,
        max_batch=8,
        max_steps=600,
        prefix_cache=prefix_cache,
        execute=True,
        execute_seed=0,
    )


def _decoded(engine):
    return {rid: [t.copy() for t in toks] for rid, toks in engine._runner.decoded.items()}


def _assert_decoded_equal(a, b):
    assert sorted(a) == sorted(b)
    for rid in a:
        assert len(a[rid]) == len(b[rid])
        for x, y in zip(a[rid], b[rid]):
            assert np.array_equal(x, y)


class TestExecutedCluster:
    @pytest.mark.parametrize("prefix_cache", [False, True])
    def test_tp2_replicas2_bit_exact_vs_single_rank_reruns(self, prefix_cache):
        kernel = BitDecoding(KERNEL_CONFIG, A100)
        trace = poisson_trace(
            8,
            200.0,
            prompt_len=96,
            output_len=12,
            seed=3,
            shared_prefix_fraction=0.5,
            prefix_groups=3,
        )
        router = Router(
            EngineConfig(
                backend=ShardedPagedBackend(kernel, tp=2),
                n_gpus=2,
                tp=2,
                **_common(prefix_cache),
            ),
            trace,
            replicas=2,
            policy="prefix_affinity",
        )
        report = router.run()
        assert report.completed == len(trace)
        for engine in router.engines:
            subset = [lc.request for lc in engine.lifecycles]
            if not subset:
                continue
            single = ContinuousBatchingEngine(
                EngineConfig(
                    backend=PagedBitBackend(kernel),
                    n_gpus=1,
                    tp=1,
                    **_common(prefix_cache),
                ),
                subset,
            )
            single.run()
            _assert_decoded_equal(_decoded(engine), _decoded(single))

    def test_without_prefix_cache_matches_whole_trace_single_engine(self):
        # With the prefix cache off there is no hit-pattern dependence,
        # so the merged cluster output must equal one engine serving the
        # whole trace at tp=1.
        kernel = BitDecoding(KERNEL_CONFIG, A100)
        trace = poisson_trace(6, 100.0, prompt_len=64, output_len=10, seed=1)
        router = Router(
            EngineConfig(
                backend=ShardedPagedBackend(kernel, tp=2), n_gpus=2, tp=2, **_common()
            ),
            trace,
            replicas=2,
            policy="round_robin",
        )
        router.run()
        merged = {}
        for engine in router.engines:
            merged.update(_decoded(engine))
        single = ContinuousBatchingEngine(
            EngineConfig(backend=PagedBitBackend(kernel), **_common()), trace
        )
        single.run()
        _assert_decoded_equal(merged, _decoded(single))


class TestConfigValidation:
    def test_tp_must_be_positive(self):
        with pytest.raises(ValueError, match="tp must be >= 1"):
            EngineConfig(
                model=TINY,
                arch=A100,
                fmt=int_format(4, TINY),
                attention=BitDecoding(KERNEL_CONFIG, A100),
                tp=0,
            )

    def test_tp_must_divide_kv_heads(self):
        with pytest.raises(ValueError, match="does not divide"):
            EngineConfig(
                model=TINY,
                arch=A100,
                fmt=int_format(4, TINY),
                attention=BitDecoding(KERNEL_CONFIG, A100),
                tp=3,
                n_gpus=3,
            )

    def test_tp_spans_the_engines_gpus(self):
        with pytest.raises(ValueError, match="n_gpus must equal"):
            EngineConfig(
                model=TINY,
                arch=A100,
                fmt=int_format(4, TINY),
                attention=BitDecoding(KERNEL_CONFIG, A100),
                tp=2,
                n_gpus=1,
            )

    def test_execute_tp_needs_matching_sharded_backend(self):
        kernel = BitDecoding(KERNEL_CONFIG, A100)
        with pytest.raises(ValueError, match="ShardedPagedBackend"):
            EngineConfig(backend=PagedBitBackend(kernel), n_gpus=2, tp=2, **_common())
        with pytest.raises(ValueError, match="ShardedPagedBackend"):
            EngineConfig(
                backend=ShardedPagedBackend(kernel, tp=4), n_gpus=2, tp=2, **_common()
            )

    def test_execute_tp_rejects_swap_preemption(self):
        kernel = BitDecoding(KERNEL_CONFIG, A100)
        with pytest.raises(ValueError, match="swap"):
            EngineConfig(
                backend=ShardedPagedBackend(kernel, tp=2),
                n_gpus=2,
                tp=2,
                preemption="swap",
                **_common(),
            )
