"""Cluster layer: TP sharding, routing, merged reports."""
