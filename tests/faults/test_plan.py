"""Fault plan determinism: the contract the chaos cross-check stands on.

Two plans built from the same spec must draw identical outcomes for the
same transfer sequence — that is what keeps an analytical and an
executed chaos run in lock-step.  The stronger alignment contract:
``transfer()`` consumes a *fixed* number of variates per call, so leg
filters and zero rates change *verdicts*, never stream positions.
"""

import pytest

from repro.faults.plan import LEG_NAMES, FaultPlan, FaultSpec, demo_fault_spec

LEGS = ["device→host", "host→device", "device→host", "host→disk", "disk→host"] * 8


def _outcomes(plan, legs=LEGS):
    return [plan.transfer(leg) for leg in legs]


class TestSpecValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "transfer_fault_rate",
            "permanent_fraction",
            "latency_spike_rate",
            "corruption_rate",
            "slow_step_rate",
        ],
    )
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(**{field: 1.5})
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(**{field: -0.1})

    def test_unknown_leg_rejected(self):
        with pytest.raises(ValueError, match="unknown legs"):
            FaultSpec(legs=("device→mars",))
        FaultSpec(legs=LEG_NAMES)  # every known leg is accepted

    def test_retry_and_factor_floors(self):
        with pytest.raises(ValueError, match="max_retries"):
            FaultSpec(max_retries=0)
        with pytest.raises(ValueError, match="factors"):
            FaultSpec(latency_spike_factor=0.5)
        with pytest.raises(ValueError, match="backoff"):
            FaultSpec(backoff_base_ms=-1.0)

    def test_all_transient_means_no_content_loss(self):
        assert FaultSpec(transfer_fault_rate=0.5, slow_step_rate=0.5).all_transient
        assert not FaultSpec(transfer_fault_rate=0.5, permanent_fraction=0.1).all_transient
        assert not FaultSpec(corruption_rate=0.1).all_transient
        assert not demo_fault_spec(0).all_transient


class TestDeterminism:
    def test_same_spec_same_draw_sequence(self):
        spec = demo_fault_spec(7)
        assert _outcomes(FaultPlan(spec)) == _outcomes(FaultPlan(spec))

    def test_different_seed_different_draws(self):
        a = _outcomes(FaultPlan(demo_fault_spec(7)))
        b = _outcomes(FaultPlan(demo_fault_spec(8)))
        assert a != b

    def test_fixed_variate_budget_across_leg_filters(self):
        """A leg filter suppresses verdicts without shifting the stream:
        on the legs both plans inject, their outcomes agree call-for-call."""
        seed = 11
        everywhere = FaultPlan(FaultSpec(seed=seed, transfer_fault_rate=0.5))
        filtered = FaultPlan(
            FaultSpec(seed=seed, transfer_fault_rate=0.5, legs=("device→host",))
        )
        full = _outcomes(everywhere)
        narrow = _outcomes(filtered)
        for leg, a, b in zip(LEGS, full, narrow):
            if leg == "device→host":
                assert a == b
            else:
                assert b.clean

    def test_zero_rate_category_does_not_shift_other_draws(self):
        """Adding corruption must not change which transfers fail — each
        call consumes the same variates whatever the rates are."""
        quiet = FaultPlan(FaultSpec(seed=3, transfer_fault_rate=0.4))
        noisy = FaultPlan(FaultSpec(seed=3, transfer_fault_rate=0.4, corruption_rate=0.9))
        for a, b in zip(_outcomes(quiet), _outcomes(noisy)):
            assert (a.failures, a.lost, a.spike) == (b.failures, b.lost, b.spike)

    def test_step_stream_is_independent_of_transfers(self):
        """Scheduler-step skew and transfer outcomes draw from separate
        streams: interleaving transfers must not perturb step draws."""
        spec = FaultSpec(seed=5, transfer_fault_rate=0.5, slow_step_rate=0.5)
        pure = FaultPlan(spec)
        steps_only = [pure.step_factor() for _ in range(32)]
        mixed = FaultPlan(spec)
        interleaved = []
        for _ in range(32):
            mixed.transfer("device→host")
            interleaved.append(mixed.step_factor())
        assert steps_only == interleaved


class TestOutcomes:
    def test_certain_fault_always_retries_or_loses(self):
        plan = FaultPlan(FaultSpec(seed=0, transfer_fault_rate=1.0, permanent_fraction=0.0))
        for out in _outcomes(plan):
            assert out.failures >= 1 and not out.lost

    def test_certain_permanent_fault_always_loses_at_budget(self):
        spec = FaultSpec(seed=0, transfer_fault_rate=1.0, permanent_fraction=1.0, max_retries=3)
        for out in _outcomes(FaultPlan(spec)):
            assert out.lost and out.failures == 3
            assert not out.corrupt  # lost content cannot also be corrupt

    def test_backoff_is_exponential(self):
        plan = FaultPlan(FaultSpec(backoff_base_ms=0.5))
        assert [plan.backoff_ms(a) for a in range(3)] == [0.5, 1.0, 2.0]

    def test_clean_plan_is_clean(self):
        plan = FaultPlan(FaultSpec(seed=0))
        assert all(out.clean for out in _outcomes(plan))
        assert all(plan.step_factor() == 1.0 for _ in range(16))

    def test_slow_step_factor_applies(self):
        plan = FaultPlan(FaultSpec(seed=0, slow_step_rate=1.0, slow_step_factor=4.0))
        assert plan.step_factor() == 4.0

    def test_draw_counters_track_consumption(self):
        plan = FaultPlan(demo_fault_spec(0))
        _outcomes(plan)
        plan.step_factor()
        assert plan.transfers_drawn == len(LEGS)
        assert plan.steps_drawn == 1
