"""Invariant auditor: seeded bookkeeping violations must be caught.

Each test corrupts one internal structure the way a real bug would
(a double-free, a leaked refcount, a desynchronized tier bijection) and
asserts the auditor names it.  A healthy system must pass every check —
the auditor runs on every engine step, so false positives are as fatal
as misses.
"""

import pytest

from repro.faults.audit import InvariantAuditor, InvariantViolation
from repro.pages.allocator import PageAllocator
from repro.pages.page_table import PageTable
from repro.pages.tiers import TieredPageStore


def _system(n_pages=8, page_size=4, tiers=False):
    alloc = PageAllocator(n_pages)
    store = TieredPageStore(alloc, 3, n_pages - 3) if tiers else None
    table = PageTable(alloc, page_size=page_size)
    return alloc, table, store


class TestHealthy:
    def test_fresh_system_passes(self):
        alloc, table, store = _system(tiers=True)
        InvariantAuditor(alloc, table, store).audit()

    def test_live_sequences_pass(self):
        alloc, table, store = _system(tiers=True)
        table.add_sequence(6)
        seq = table.add_sequence(9)
        store.start_step()
        store.ensure_resident(table.sequences[seq].pages)
        InvariantAuditor(alloc, table, store).audit(step=3)

    def test_released_and_parked_pages_pass(self):
        alloc, table, _ = _system()
        seq = table.add_sequence(6)
        table.release_sequence(seq)
        auditor = InvariantAuditor(alloc, table)
        auditor.audit()
        assert auditor.audits == 1

    def test_violation_is_an_assertion(self):
        assert issubclass(InvariantViolation, AssertionError)


class TestAllocatorChecks:
    def test_page_both_free_and_live_caught(self):
        alloc, table, _ = _system()
        seq = table.add_sequence(4)
        alloc._free.append(table.sequences[seq].pages[0])  # seeded double-free
        with pytest.raises(InvariantViolation, match="free/live"):
            InvariantAuditor(alloc, table).audit()

    def test_unaccounted_page_caught(self):
        alloc, _, _ = _system()
        alloc._free.remove(5)  # page 5 vanishes from every partition
        with pytest.raises(InvariantViolation, match="unaccounted"):
            InvariantAuditor(alloc).audit()

    def test_nonpositive_refcount_caught(self):
        alloc, table, _ = _system()
        seq = table.add_sequence(4)
        page = table.sequences[seq].pages[0]
        alloc._refs[page] = 0  # a release that forgot to move the page
        with pytest.raises(InvariantViolation, match="refcount"):
            InvariantAuditor(alloc).audit()


class TestOwnershipChecks:
    def test_refcount_mapping_mismatch_caught(self):
        alloc, table, _ = _system()
        seq = table.add_sequence(4)
        alloc._refs[table.sequences[seq].pages[0]] += 1  # leaked acquire
        with pytest.raises(InvariantViolation, match="refcount"):
            InvariantAuditor(alloc, table).audit()

    def test_released_sequence_retaining_pages_caught(self):
        alloc, table, _ = _system()
        seq = table.add_sequence(4)
        pages = list(table.sequences[seq].pages)
        table.release_sequence(seq)
        table.sequences[seq].pages = pages  # use-after-free mapping
        with pytest.raises(InvariantViolation, match="released sequence"):
            InvariantAuditor(alloc, table).audit()

    def test_orphaned_refs_caught(self):
        alloc, table, _ = _system()
        alloc.allocate()  # a ref'd page no sequence maps
        with pytest.raises(InvariantViolation, match="no sequence maps"):
            InvariantAuditor(alloc, table).audit()


class TestTierChecks:
    def test_broken_bijection_caught(self):
        alloc, table, store = _system(tiers=True)
        store._frame_of[0], store._frame_of[1] = store._frame_of[1], store._frame_of[0]
        with pytest.raises(InvariantViolation, match="bijection|permutations"):
            InvariantAuditor(alloc, table, store).audit()

    def test_lru_tracking_nonresident_page_caught(self):
        alloc, table, store = _system(tiers=True)
        page = store._page_at[store.device_pages]  # a host-tier page
        store._lru[page] = None
        with pytest.raises(InvariantViolation, match="non-resident"):
            InvariantAuditor(alloc, table, store).audit()

    def test_step_number_lands_in_message(self):
        alloc, _, store = _system(tiers=True)
        store._frame_of[0] = store._frame_of[1]
        with pytest.raises(InvariantViolation, match="at step 42"):
            InvariantAuditor(alloc, tiers=store).audit(step=42)
