"""Backend parity: paged and contiguous decode must agree exactly.

The acceptance contract of the AttentionBackend redesign: with identical
inputs, ``PagedBitBackend`` decode outputs are bit-identical to
``ContiguousBitBackend`` under ``numerics_mode="exact_tiled"`` (and
within ``FUSED_NUMERICS_TOLERANCE`` under ``"fused"``), across bit
widths, granularities, flush boundaries and a preemption/resume
schedule.  The paged backend stores the *same* packed words behind block
tables, and decode runs through the *same* ``BitDecoding.decode`` code
path, so any divergence is a real storage or gather bug.
"""

import numpy as np
import pytest

from repro.attn import ContiguousBitBackend, PagedBitBackend
from repro.core.config import BitDecodingConfig
from repro.core.packing_kernel import FUSED_NUMERICS_TOLERANCE
from repro.model.transformer import TinyTransformer


def _assert_decode_parity(out_cont, out_paged, numerics_mode):
    if numerics_mode == "exact_tiled":
        np.testing.assert_array_equal(out_cont, out_paged)
    else:
        tol = FUSED_NUMERICS_TOLERANCE["int"]
        denom = max(1.0, float(np.abs(out_cont).max()))
        assert float(np.abs(out_cont - out_paged).max()) / denom <= tol


class TestDecodeParity:
    @pytest.mark.parametrize("bits", [2, 4])
    @pytest.mark.parametrize("granularity", ["channel", "token"])
    @pytest.mark.parametrize("numerics_mode", ["exact_tiled", "fused"])
    def test_paged_matches_contiguous_across_flushes(self, rng, bits, granularity, numerics_mode):
        config = BitDecodingConfig(
            bits=bits, granularity=granularity, numerics_mode=numerics_mode, wn=1
        )
        nr = config.residual_block_size
        batch, hkv, hq, d = 2, 2, 4, 16
        seq = nr * 2 + 5
        cont = ContiguousBitBackend(config)
        paged = PagedBitBackend(config, n_pages=8 * (seq // nr + 4))
        hc = cont.new_handle(batch, hkv, d)
        hp = paged.new_handle(batch, hkv, d)

        k = rng.standard_normal((batch, hkv, seq, d)).astype(np.float16)
        v = rng.standard_normal((batch, hkv, seq, d)).astype(np.float16)
        q_pre = rng.standard_normal((batch, seq, hq, d)).astype(np.float32)
        out_c = cont.prefill(q_pre, (k, v), hc)
        out_p = paged.prefill(q_pre, (k, v), hp)
        # Prefill attention is exact FP32 either way: bit-identical always.
        np.testing.assert_array_equal(out_c, out_p)

        # Decode across a flush boundary (the residual fills and packs).
        for _ in range(nr + 3):
            k_new = rng.standard_normal((batch, hkv, d)).astype(np.float32)
            v_new = rng.standard_normal((batch, hkv, d)).astype(np.float32)
            cont.append_kv((k_new, v_new), hc)
            paged.append_kv((k_new, v_new), hp)
            q = rng.standard_normal((batch, 1, hq, d)).astype(np.float32)
            _assert_decode_parity(cont.decode_step(q, hc), paged.decode_step(q, hp), numerics_mode)

    @pytest.mark.parametrize("bits", [2, 4])
    def test_preemption_resume_schedule_stays_bit_identical(self, rng, bits):
        """Preempt (release pages), re-admit, re-pack: decode must equal the
        contiguous cache fed the same tokens — recycled pages included."""
        config = BitDecodingConfig(bits=bits, numerics_mode="exact_tiled", wn=1)
        nr = config.residual_block_size
        hkv, hq, d = 2, 4, 16
        seq = nr * 2 + 7
        paged = PagedBitBackend(config, n_pages=3 * (seq // nr + 2))
        k = rng.standard_normal((1, hkv, seq, d)).astype(np.float16)
        v = rng.standard_normal((1, hkv, seq, d)).astype(np.float16)

        # Victim fills pages, then is preempted (pages recycled).
        victim = paged.new_handle(1, hkv, d)
        paged.prefill(None, (k, v), victim)
        freed = set(victim.seqs[0].block_ids)
        paged.release(victim)

        # A new sequence re-admitted through the backend API lands in the
        # SAME physical pool and must reuse the victim's recycled pages.
        resumed = paged.new_handle(1, hkv, d)
        assert resumed.store is victim.store
        paged.prefill(None, (k, v), resumed)
        assert set(resumed.seqs[0].block_ids) & freed

        cont = ContiguousBitBackend(config)
        hc = cont.new_handle(1, hkv, d)
        cont.prefill(None, (k, v), hc)
        for _ in range(3):
            k_new = rng.standard_normal((1, hkv, d)).astype(np.float32)
            v_new = rng.standard_normal((1, hkv, d)).astype(np.float32)
            cont.append_kv((k_new, v_new), hc)
            paged.append_kv((k_new, v_new), resumed)
            q = rng.standard_normal((1, 1, hq, d)).astype(np.float32)
            np.testing.assert_array_equal(cont.decode_step(q, hc), paged.decode_step(q, resumed))


class TestTransformerParity:
    def test_tiny_transformer_identical_on_both_backends(self, rng):
        """End to end: a TinyTransformer wired to the paged backend decodes
        the exact same hidden states as one wired to the contiguous cache."""
        config = BitDecodingConfig(bits=4, numerics_mode="exact_tiled", wn=1)
        dims = dict(n_layers=2, hq=4, hkv=2, head_dim=16, hidden=64, intermediate=128)
        cont_model = TinyTransformer(**dims, backend=ContiguousBitBackend(config), seed=0)
        paged_model = TinyTransformer(**dims, backend=PagedBitBackend(config, n_pages=16), seed=0)
        nr = config.residual_block_size
        x = rng.standard_normal((1, nr + 5, 64)).astype(np.float32) * 0.5
        h_c = cont_model.prefill(x.copy())
        h_p = paged_model.prefill(x.copy())
        np.testing.assert_array_equal(h_c, h_p)
        for _ in range(3):
            step = rng.standard_normal((1, 64)).astype(np.float32) * 0.5
            np.testing.assert_array_equal(
                cont_model.decode_step(step.copy()), paged_model.decode_step(step.copy())
            )

    def test_repeated_prefill_recycles_the_shared_pool(self, rng):
        """Re-prefilling a paged-backend model must release the old
        session's pages and residual slots, not leak the shared pool."""
        config = BitDecodingConfig(bits=4, wn=1)
        dims = dict(n_layers=2, hq=4, hkv=2, head_dim=16, hidden=64, intermediate=128)
        backend = PagedBitBackend(config, n_pages=8, n_slots=2)
        model = TinyTransformer(**dims, backend=backend, seed=0)
        store = backend.store_for(2, 16)
        for _ in range(6):  # > n_slots and > n_pages worth of prompts
            model.prefill(rng.standard_normal((1, 40, 64)).astype(np.float32) * 0.5)
            assert store.slots.used_pages == dims["n_layers"]
        model.release_session(model._session)
        assert store.slots.used_pages == 0
        assert store.table.allocator.used_pages == 0

    def test_chunked_prefill_tracks_whole_prompt(self, rng):
        """Chunked prefill over the paged cache stays close to whole-prompt
        prefill: chunks re-read context through the quantized cache, so the
        match is tolerance-level, not bitwise."""
        config = BitDecodingConfig(bits=8, wn=1)  # INT8: tiny quantization error
        dims = dict(n_layers=2, hq=4, hkv=2, head_dim=16, hidden=64, intermediate=128)
        whole = TinyTransformer(**dims, backend=PagedBitBackend(config, n_pages=32), seed=0)
        chunked = TinyTransformer(**dims, backend=PagedBitBackend(config, n_pages=32), seed=0)
        x = rng.standard_normal((1, 40, 64)).astype(np.float32) * 0.5
        h_whole = whole.prefill(x.copy())
        sess = chunked.new_session()
        outs = [chunked.prefill_chunk(x[:, c : c + 16].copy(), sess) for c in (0, 16, 32)]
        h_chunked = np.concatenate(outs, axis=1)
        rel = np.abs(h_chunked - h_whole).max() / (np.abs(h_whole).max() + 1e-9)
        assert rel < 0.05
        # And decode continues seamlessly from the chunked session.
        step = rng.standard_normal((1, 64)).astype(np.float32) * 0.5
        out = chunked.decode_step(step, sess)
        assert out.shape == (1, 64) and np.all(np.isfinite(out))
