"""Grouped batched decode parity: one kernel launch must change nothing.

The batched-decode contract: ``PagedBitBackend.decode_step`` (equal-shape
sequences gathered into batched SoA views, one ``run_numeric`` launch per
group) is *bit-identical* to ``decode_step_looped`` (the retained
per-sequence reference) — across bit widths, granularities, numerics
modes, ragged residual fills, flush boundaries, swap preemption and
copy-on-write forks.  Grouping reorders nothing and rounds nothing: the
padded-tail contract in ``attend_residual_grouped`` is tolerance-free,
so any divergence at all is a gather or invalidation bug.

The hypothesis property at the bottom drives the gather-cache machinery
(epoch-guarded ``np.take`` index maps and group dequant memos) through
random append / flush / swap / fork / recycle schedules and asserts the
cache never serves stale words: every memoized read equals a cold
rebuild, and both equal the per-sequence reference path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attn.paged import PagedBatchHandle, PagedBitBackend
from repro.core.config import BitDecodingConfig
from repro.model.transformer import CacheSession, TinyTransformer

HKV, HQ, D = 2, 4, 16


def _ragged_batch(backend, lengths, rng, hkv=HKV, d=D):
    """Prefill one sequence per length into the backend's shared pool."""
    seqs = []
    for length in lengths:
        handle = backend.new_handle(1, hkv, d)
        if length:
            k = rng.standard_normal((1, hkv, length, d)).astype(np.float16)
            v = rng.standard_normal((1, hkv, length, d)).astype(np.float16)
            backend.prefill(None, (k, v), handle)
        seqs.append(handle.seqs[0])
    return PagedBatchHandle(backend.store_for(hkv, d), seqs)


def _assert_grouped_matches_looped(backend, bt, rng, steps, hq=HQ, d=D):
    """Append/decode ``steps`` times, diffing grouped vs looped bitwise."""
    batch = len(bt.seqs)
    q = rng.standard_normal((batch, 1, hq, d)).astype(np.float32)
    np.testing.assert_array_equal(
        backend.decode_step(q, bt), backend.decode_step_looped(q, bt)
    )
    for _ in range(steps):
        k_new = rng.standard_normal((batch, HKV, d)).astype(np.float32)
        v_new = rng.standard_normal((batch, HKV, d)).astype(np.float32)
        backend.append_kv((k_new, v_new), bt)
        q = rng.standard_normal((batch, 1, hq, d)).astype(np.float32)
        np.testing.assert_array_equal(
            backend.decode_step(q, bt), backend.decode_step_looped(q, bt)
        )


class TestGroupedLoopedParity:
    @pytest.mark.parametrize(
        "bits, granularity, numerics_mode, wn, coop",
        [
            (2, "channel", "fused", 1, True),
            (2, "token", "exact_tiled", 1, True),
            (4, "channel", "exact_tiled", 1, True),
            (4, "token", "fused", 1, True),
            # Cooperative softmax: ragged residual fills group together.
            (4, "channel", "fused", 4, True),
            # Broken non-cooperative softmax: partition-sensitive, so the
            # backend must fall back to exact-(n_blocks, res_len) groups.
            (4, "channel", "exact_tiled", 2, False),
        ],
    )
    def test_grouped_bit_identical_across_ragged_lengths(
        self, rng, bits, granularity, numerics_mode, wn, coop
    ):
        config = BitDecodingConfig(
            bits=bits,
            granularity=granularity,
            numerics_mode=numerics_mode,
            wn=wn,
            use_coop_softmax=coop,
        )
        nr = config.residual_block_size
        # Ragged on purpose: equal shapes, near-full residuals (so flushes
        # land mid-run at different steps), an empty-packed sequence, and
        # an exactly block-aligned one (res_len == 0).
        lengths = [4 * nr - 3, 4 * nr - 3, 4 * nr - 9, nr - 1, 2 * nr - 5, 3 * nr]
        backend = PagedBitBackend(config, n_pages=64, n_slots=16)
        bt = _ragged_batch(backend, lengths, rng)
        _assert_grouped_matches_looped(backend, bt, rng, steps=12)

    def test_grouped_parity_across_swap(self, rng):
        """Swap a member out (slot freed, pages kept) and back in: the
        reattached handle must group bit-identically — the content-epoch
        bump on ``free_slot``/``reattach`` invalidates any memoized view
        that could still alias the retired slot."""
        config = BitDecodingConfig(bits=4, wn=1)
        nr = config.residual_block_size
        backend = PagedBitBackend(config, n_pages=32, n_slots=8)
        store = backend.store_for(HKV, D)
        bt = _ragged_batch(backend, [2 * nr + 5, 2 * nr + 5, 2 * nr + 9], rng)
        q = rng.standard_normal((3, 1, HQ, D)).astype(np.float32)
        np.testing.assert_array_equal(
            backend.decode_step(q, bt), backend.decode_step_looped(q, bt)
        )

        victim = bt.seqs[1]
        n_res = victim.res_len
        stash_k = np.array(store.res_k[victim.slot][:, :n_res])
        stash_v = np.array(store.res_v[victim.slot][:, :n_res])
        seq_id, seq_len = victim.seq_id, victim.seq_len
        store.free_slot(victim)
        bt.seqs[1] = store.reattach(seq_id, seq_len, stash_k, stash_v)
        _assert_grouped_matches_looped(backend, bt, rng, steps=3)

    def test_grouped_parity_across_cow_fork(self, rng):
        """Fork a sequence copy-on-write, flush the child onto the shared
        page (cloning it), and decode parent + child in one group."""
        config = BitDecodingConfig(bits=4, wn=1)
        nr = config.residual_block_size
        backend = PagedBitBackend(config, n_pages=32, n_slots=8)
        store = backend.store_for(HKV, D)
        bt = _ragged_batch(backend, [nr + 5], rng)
        parent = bt.seqs[0]
        child = store.fork(parent)
        shared = list(parent.block_ids)
        bt.seqs.append(child)

        # Fill the child's residual to the flush boundary: the flush lands
        # on the page it still shares with the parent and must clone it.
        fill = nr - child.res_len
        store.reserve(child, fill)
        store.write_rows(
            child,
            rng.standard_normal((HKV, fill, D)).astype(np.float32),
            rng.standard_normal((HKV, fill, D)).astype(np.float32),
        )
        assert child.n_blocks == 2
        assert child.block_ids[1] not in shared  # the CoW really happened
        assert parent.block_ids == shared

        _assert_grouped_matches_looped(backend, bt, rng, steps=nr + 2)


class TestTransformerGroupedParity:
    def test_grouped_session_matches_sequential_decode(self, rng):
        """The runner's ``decode_batch`` shape: same-position sequences
        decoded through one transient grouped ``CacheSession`` must emit
        the exact hidden states of per-sequence ``decode_step`` calls."""
        config = BitDecodingConfig(bits=4, wn=1)
        nr = config.residual_block_size
        dims = dict(n_layers=2, hq=HQ, hkv=HKV, head_dim=D, hidden=64, intermediate=128)
        seq_model = TinyTransformer(
            **dims, backend=PagedBitBackend(config, n_pages=64, n_slots=8), seed=0
        )
        grp_model = TinyTransformer(
            **dims, backend=PagedBitBackend(config, n_pages=64, n_slots=8), seed=0
        )
        prompts = [
            rng.standard_normal((1, nr + 5, 64)).astype(np.float32) * 0.5 for _ in range(3)
        ]
        seq_sessions = [seq_model.new_session() for _ in prompts]
        grp_sessions = [grp_model.new_session() for _ in prompts]
        for x, ss, gs in zip(prompts, seq_sessions, grp_sessions):
            seq_model.prefill_chunk(x.copy(), ss)
            grp_model.prefill_chunk(x.copy(), gs)

        for _ in range(3):
            xs = rng.standard_normal((3, 64)).astype(np.float32) * 0.5
            outs_seq = np.concatenate(
                [seq_model.decode_step(xs[g : g + 1].copy(), s) for g, s in enumerate(seq_sessions)]
            )
            gsession = CacheSession(
                caches=[
                    PagedBatchHandle(
                        grp_sessions[0].caches[layer].store,
                        [s.caches[layer].seqs[0] for s in grp_sessions],
                    )
                    for layer in range(dims["n_layers"])
                ],
                positions=grp_sessions[0].positions,
            )
            outs_grp = grp_model.decode_step(xs.copy(), gsession)
            for s in grp_sessions:
                s.positions += 1
            np.testing.assert_array_equal(outs_seq, outs_grp)


# --------------------------------------------------------------- property

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["append", "block", "swap", "fork_flush", "recycle"]),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=1,
    max_size=8,
)


class TestGatherCacheNeverStale:
    @settings(max_examples=25, deadline=None)
    @given(ops=_OPS, seed=st.integers(min_value=0, max_value=2**16))
    def test_group_reads_equal_cold_rebuild_and_reference(self, ops, seed):
        """Random op schedules must never let a memoized group read drift.

        After every mutation, every equal-``n_blocks`` group of live
        sequences is read three ways — memoized ``dequant_group``, the
        same call after dropping every gather cache, and the per-sequence
        ``dequant_seq`` reference with its memo cleared — and all three
        must agree bitwise.  Swap, fork (CoW) and page recycling are the
        schedules that move content under a cached index map; the epoch
        machinery must catch each one.
        """
        rng = np.random.default_rng(seed)
        config = BitDecodingConfig(bits=4, wn=1)
        nr = config.residual_block_size
        backend = PagedBitBackend(config, n_pages=96, n_slots=24)
        store = backend.store_for(HKV, D)

        def rows(n):
            return (
                rng.standard_normal((HKV, n, D)).astype(np.float32),
                rng.standard_normal((HKV, n, D)).astype(np.float32),
            )

        seqs = []
        for length in (nr + 3, 2 * nr, nr - 1):
            handle = store.add_sequence()
            store.reserve(handle, length)
            k, v = rows(length)
            store.write_rows(handle, k, v)
            seqs.append(handle)

        def check():
            groups = {}
            for h in seqs:
                groups.setdefault(h.n_blocks, []).append(h)
            for nb, members in groups.items():
                if nb == 0:
                    continue
                warm = store.dequant_group(members)
                store._group_memos.clear()
                store._group_frame_maps.clear()
                cold = store.dequant_group(members)
                np.testing.assert_array_equal(warm[0], cold[0])
                np.testing.assert_array_equal(warm[1], cold[1])
                for g, h in enumerate(members):
                    h._dequant_memo = None
                    k_ref, v_ref = store.dequant_seq(h)
                    np.testing.assert_array_equal(warm[0][g], k_ref[0])
                    np.testing.assert_array_equal(warm[1][g], v_ref[0])

        check()
        for op, idx in ops:
            h = seqs[idx % len(seqs)]
            if op == "append":
                store.reserve(h, 1)
                k, v = rows(1)
                store.append_rows([h], k[None, :, 0], v[None, :, 0])
            elif op == "block":
                n = nr - h.res_len  # exactly to the flush boundary
                store.reserve(h, n)
                store.write_rows(h, *rows(n))
            elif op == "swap":
                n_res = h.res_len
                stash_k = np.array(store.res_k[h.slot][:, :n_res])
                stash_v = np.array(store.res_v[h.slot][:, :n_res])
                seq_id, seq_len = h.seq_id, h.seq_len
                store.free_slot(h)
                seqs[seqs.index(h)] = store.reattach(seq_id, seq_len, stash_k, stash_v)
            elif op == "fork_flush":
                child = store.fork(h)
                fill = nr - child.res_len
                if fill:
                    store.reserve(child, fill)
                    store.write_rows(child, *rows(fill))
                seqs.append(child)
            elif op == "recycle":
                # Free a sequence's pages, then land a fresh sequence in
                # the recycled frames — the classic stale-gather hazard.
                store.release(h)
                seqs.remove(h)
                fresh = store.add_sequence()
                store.reserve(fresh, nr)
                store.write_rows(fresh, *rows(nr))
                seqs.append(fresh)
            check()
