"""Page recycling must never leak stale packed words between sequences.

The paged pool hands preempted sequences' pages straight back to the
allocator; a recycled page still physically holds the victim's packed
words until the next flush overwrites it.  The invariant under test:
whatever admit/preempt/resume schedule ran before, every *live*
sequence's reconstruction (packed dequant + residual) is bit-identical
to a fresh pool fed only that sequence's rows — i.e. block tables never
alias and recycled pages never bleed through.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attn.paged import PagedBitKVCache
from repro.core.config import BitDecodingConfig

CONFIG = BitDecodingConfig(bits=4, wn=1)  # N_r = 32
NR = CONFIG.residual_block_size
HKV, D = 2, 16
N_PAGES = 12
N_SLOTS = 4


def _rows(rng, n):
    k = rng.standard_normal((HKV, n, D)).astype(np.float16)
    v = rng.standard_normal((HKV, n, D)).astype(np.float16)
    return k, v


def _reference_reconstruction(k_rows, v_rows):
    """A fresh single-sequence pool fed the same rows, end to end."""
    store = PagedBitKVCache(CONFIG, HKV, D, n_pages=N_PAGES, n_slots=1)
    handle = store.add_sequence()
    n = k_rows.shape[1]
    if n:
        store.reserve(handle, n)
        store.write_rows(handle, k_rows, v_rows)
    return handle.dequant_kv(), handle.residual_kv()


# One op per draw: (kind, amount). "write" appends `amount` tokens to a
# round-robin live sequence, "admit" starts a new one, "fork" clones one
# (sharing every page copy-on-write), "preempt" releases the oldest live
# one (recycling its pages for whoever comes next).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["admit", "write", "fork", "preempt"]),
        st.integers(min_value=1, max_value=NR + NR // 2),
    ),
    min_size=4,
    max_size=14,
)


class TestPageRecycling:
    @settings(max_examples=25, deadline=None)
    @given(ops=_OPS, seed=st.integers(min_value=0, max_value=2**16))
    def test_live_sequences_never_see_stale_words(self, ops, seed):
        rng = np.random.default_rng(seed)
        store = PagedBitKVCache(CONFIG, HKV, D, n_pages=N_PAGES, n_slots=N_SLOTS)
        live = []  # (handle, k_rows, v_rows) with rows the ground truth

        for kind, amount in ops:
            if kind == "admit" and len(live) < N_SLOTS:
                live.append(
                    (store.add_sequence(), np.zeros((HKV, 0, D), np.float16),
                     np.zeros((HKV, 0, D), np.float16))
                )
            elif kind == "write" and live:
                idx = amount % len(live)
                handle, k_all, v_all = live[idx]
                alloc = store.table.allocator
                # Pages this sequence shares with a fork: flushing into one
                # copy-on-writes it, drawing a fresh page, so budget them
                # out of the free pool before sizing the write.
                shared = sum(
                    1
                    for p in store.table.sequences[handle.seq_id].pages
                    if alloc.refcount(p) > 1
                )
                budget = alloc.free_pages - shared
                pad = handle.seq_len % NR
                take = min(amount, budget * NR + (NR - pad) % NR) if budget >= 0 else 0
                if take <= 0:
                    continue
                k_new, v_new = _rows(rng, take)
                store.reserve(handle, take)
                store.write_rows(handle, k_new, v_new)
                live[idx] = (
                    handle,
                    np.concatenate([k_all, k_new], axis=1),
                    np.concatenate([v_all, v_new], axis=1),
                )
            elif kind == "fork" and live and len(live) < N_SLOTS:
                handle, k_all, v_all = live[amount % len(live)]
                child = store.fork(handle)
                # The child inherits the parent's history as ground truth.
                live.append((child, k_all.copy(), v_all.copy()))
            elif kind == "preempt" and live:
                handle, _, _ = live.pop(0)
                store.release(handle)  # pages go straight back to the pool

        for handle, k_all, v_all in live:
            (k_hat, v_hat), (k_res, v_res) = (
                handle.dequant_kv(),
                handle.residual_kv(),
            )
            (k_ref, v_ref), (k_res_ref, v_res_ref) = _reference_reconstruction(k_all, v_all)
            np.testing.assert_array_equal(k_hat, k_ref)
            np.testing.assert_array_equal(v_hat, v_ref)
            np.testing.assert_array_equal(k_res, k_res_ref)
            np.testing.assert_array_equal(v_res, v_res_ref)

    def test_resumed_sequence_overwrites_recycled_pages(self, rng):
        """Deterministic regression: preempt, re-admit with different rows,
        and check both the recycled page content and the residual slot."""
        store = PagedBitKVCache(CONFIG, HKV, D, n_pages=4, n_slots=2)
        first = store.add_sequence()
        k1, v1 = _rows(rng, NR + 3)
        store.reserve(first, NR + 3)
        store.write_rows(first, k1, v1)
        pages_before = list(store.table.sequences[first.seq_id].pages)
        store.release(first)

        second = store.add_sequence()
        k2, v2 = _rows(rng, NR + 3)
        store.reserve(second, NR + 3)
        store.write_rows(second, k2, v2)
        assert set(second.block_ids) & set(pages_before)

        (k_ref, v_ref), (kr_ref, vr_ref) = _reference_reconstruction(k2, v2)
        np.testing.assert_array_equal(second.dequant_kv()[0], k_ref)
        np.testing.assert_array_equal(second.dequant_kv()[1], v_ref)
        np.testing.assert_array_equal(second.residual_kv()[0], kr_ref)
        np.testing.assert_array_equal(second.residual_kv()[1], vr_ref)


class TestCopyOnWriteDivergence:
    def test_fork_then_diverge_is_bit_exact(self, rng):
        """Fork a sequence, write different continuations to both sides,
        and check each against a fresh unshared pool: copy-on-write must
        keep the shared prefix bit-identical while neither side's writes
        bleed into the other."""
        store = PagedBitKVCache(CONFIG, HKV, D, n_pages=N_PAGES, n_slots=N_SLOTS)
        parent = store.add_sequence()
        k0, v0 = _rows(rng, 2 * NR + 5)
        store.reserve(parent, 2 * NR + 5)
        store.write_rows(parent, k0, v0)

        child = store.fork(parent)
        assert child.block_ids == parent.block_ids  # fully shared at fork
        np.testing.assert_array_equal(child.residual_kv()[0], parent.residual_kv()[0])

        ka, va = _rows(rng, NR + 7)
        store.reserve(parent, NR + 7)
        store.write_rows(parent, ka, va)
        kb, vb = _rows(rng, NR + 2)
        store.reserve(child, NR + 2)
        store.write_rows(child, kb, vb)

        # Divergence happened at the shared partially-filled block.
        assert parent.block_ids[2] != child.block_ids[2]
        assert parent.block_ids[:2] == child.block_ids[:2]

        for handle, (ks, vs) in (
            (parent, (np.concatenate([k0, ka], 1), np.concatenate([v0, va], 1))),
            (child, (np.concatenate([k0, kb], 1), np.concatenate([v0, vb], 1))),
        ):
            (k_hat, v_hat), (k_res, v_res) = handle.dequant_kv(), handle.residual_kv()
            (k_ref, v_ref), (kr_ref, vr_ref) = _reference_reconstruction(ks, vs)
            np.testing.assert_array_equal(k_hat, k_ref)
            np.testing.assert_array_equal(v_hat, v_ref)
            np.testing.assert_array_equal(k_res, kr_ref)
            np.testing.assert_array_equal(v_res, vr_ref)
