"""The AttentionBackend protocol: registry, surfaces, deprecation shims."""

import numpy as np
import pytest

from repro.attn import (
    AnalyticalBackend,
    ContiguousBitBackend,
    PagedBitBackend,
    backend_names,
    get_backend,
)
from repro.core.config import BitDecodingConfig


class TestRegistry:
    def test_all_three_backends_registered(self):
        assert set(backend_names()) >= {"analytical", "contiguous-bit", "paged-bit"}

    def test_get_backend_constructs(self):
        backend = get_backend("contiguous-bit", engine=BitDecodingConfig(bits=2))
        assert isinstance(backend, ContiguousBitBackend)
        assert backend.config.bits == 2

    def test_unknown_backend_lists_known(self):
        with pytest.raises(KeyError, match="paged-bit"):
            get_backend("flash-attention-9")


class TestAnalyticalBackend:
    def test_prices_steps_like_the_raw_functions(self, a100):
        from repro.core.attention import BitDecoding
        from repro.model.config import LLAMA31_8B
        from repro.model.inference import decode_step_ms, mixed_step_ms, prefill_time_ms

        kernel = BitDecoding(BitDecodingConfig(bits=4), a100)
        backend = AnalyticalBackend(kernel)
        assert backend.decode_step_ms(LLAMA31_8B, a100, 4, 4096) == decode_step_ms(
            LLAMA31_8B, a100, kernel, 4, 4096
        )
        assert backend.mixed_step_ms(
            LLAMA31_8B, a100, 4, 4096, [(0, 512)]
        ) == mixed_step_ms(LLAMA31_8B, a100, kernel, 4, 4096, [(0, 512)])
        assert backend.prefill_time_ms(LLAMA31_8B, a100, 4096) == prefill_time_ms(
            LLAMA31_8B, a100, 4096
        )

    def test_refuses_tokens(self, a100):
        from repro.core.attention import BitDecoding

        backend = AnalyticalBackend(BitDecoding(BitDecodingConfig(bits=4), a100))
        assert not backend.executes_tokens
        with pytest.raises(NotImplementedError):
            backend.new_handle(1, 2, 16)
        with pytest.raises(NotImplementedError):
            backend.decode_step(np.zeros((1, 1, 4, 16), np.float32), None)

    def test_needs_an_attention_system(self):
        with pytest.raises(TypeError):
            AnalyticalBackend(object())


class TestHandles:
    def test_contiguous_handle_tracks_seq_len(self, rng):
        backend = ContiguousBitBackend(BitDecodingConfig(bits=4, wn=1))
        handle = backend.new_handle(1, 2, 16)
        assert handle.seq_len == 0
        k = rng.standard_normal((1, 2, 10, 16)).astype(np.float16)
        backend.prefill(None, (k, k), handle)
        assert handle.seq_len == 10
        backend.append_kv(
            (np.zeros((1, 2, 16), np.float32), np.zeros((1, 2, 16), np.float32)), handle
        )
        assert handle.seq_len == 11

    def test_contiguous_rejects_chunked_continuation(self, rng):
        backend = ContiguousBitBackend(BitDecodingConfig(bits=4, wn=1))
        handle = backend.new_handle(1, 2, 16)
        k = rng.standard_normal((1, 2, 8, 16)).astype(np.float16)
        backend.prefill(None, (k, k), handle)
        with pytest.raises(NotImplementedError):
            backend.prefill(None, (k, k), handle)

    def test_paged_handle_block_tables_grow_with_flushes(self, rng):
        config = BitDecodingConfig(bits=4, wn=1)  # N_r = 32
        backend = PagedBitBackend(config, n_pages=16)
        handle = backend.new_handle(1, 2, 16)
        seqh = handle.seqs[0]
        k = rng.standard_normal((1, 2, 70, 16)).astype(np.float16)
        backend.prefill(None, (k, k), handle)
        assert seqh.seq_len == 70
        assert seqh.n_blocks == 2 and seqh.res_len == 6
        assert len(seqh.block_ids) == 2
        # Pages back the packed part through the shared allocator.
        assert handle.store.table.allocator.used_pages == 3  # ceil(70/32)


class TestShimsRemoved:
    """The 0.2-era ``BitDecoding``/``BitKVCache`` re-exports are gone in 0.4:
    the classes live in ``repro.core.attention`` / the engine cache modules."""

    def test_repro_core_reexports_removed(self):
        import repro.core

        with pytest.raises(AttributeError):
            repro.core.BitDecoding
        with pytest.raises(AttributeError):
            repro.core.BitKVCache
        assert "BitDecoding" not in repro.core.__all__

    def test_repro_reexports_removed(self):
        import repro

        with pytest.raises(AttributeError):
            repro.BitDecoding
        with pytest.raises(AttributeError):
            repro.BitKVCache
        assert "BitKVCache" not in repro.__all__

    def test_unknown_core_attribute_still_raises(self):
        import repro.core

        with pytest.raises(AttributeError):
            repro.core.NoSuchThing
