"""Prefix cache: content keys -> shared physical pages, LRU eviction."""

import pytest

from repro.pages.allocator import PageAllocator
from repro.pages.prefix_cache import PrefixCache


def _cache(n_pages=8):
    alloc = PageAllocator(n_pages)
    return alloc, PrefixCache(alloc)


class TestInsertLookup:
    def test_insert_and_lookup(self):
        alloc, cache = _cache()
        page = alloc.allocate()
        assert cache.insert(("p", 0), page) == page
        assert cache.lookup(("p", 0)) == page
        assert len(cache) == 1
        assert cache.insertions == 1

    def test_first_writer_wins(self):
        alloc, cache = _cache()
        a, b = alloc.allocate(), alloc.allocate()
        assert cache.insert(("p", 0), a) == a
        # Second producer of the same content keeps the canonical page.
        assert cache.insert(("p", 0), b) == a
        assert cache.lookup(("p", 0)) == a
        assert cache.insertions == 1

    def test_insert_marks_cacheable(self):
        alloc, cache = _cache()
        page = alloc.allocate()
        cache.insert(("p", 0), page)
        alloc.release(page)
        # The page parks in the cached pool instead of going truly free.
        assert alloc.cached_pages == 1
        assert cache.lookup(("p", 0)) == page

    def test_recycled_page_drops_stale_key(self):
        alloc, cache = _cache()
        page = alloc.allocate()
        cache.insert(("old",), page)
        # Same physical page re-registered under new content: the stale
        # mapping must not resolve anymore.
        cache.insert(("new",), page)
        assert cache.lookup(("old",)) is None
        assert cache.lookup(("new",)) == page

    def test_registers_as_eviction_policy(self):
        alloc, cache = _cache()
        page = alloc.allocate()
        cache.insert(("p", 0), page)
        assert cache.retains(page)
        # Registering the same cache twice is a policy-protocol violation.
        with pytest.raises(ValueError):
            alloc.register(cache)


class TestMatch:
    def test_longest_prefix_stops_at_first_miss(self):
        alloc, cache = _cache()
        pages = alloc.allocate_many(3)
        cache.insert(("k", 0), pages[0])
        cache.insert(("k", 1), pages[1])
        # ("k", 2) not inserted; ("k", 3) inserted but unreachable.
        cache.insert(("k", 3), pages[2])
        hit = cache.match([("k", 0), ("k", 1), ("k", 2), ("k", 3)])
        assert hit == [pages[0], pages[1]]

    def test_match_empty_on_cold_cache(self):
        _, cache = _cache()
        assert cache.match([("k", 0)]) == []

    def test_match_is_pure(self):
        alloc, cache = _cache()
        page = alloc.allocate()
        cache.insert(("k", 0), page)
        before = alloc.refcount(page)
        cache.match([("k", 0)])
        assert alloc.refcount(page) == before


class TestEviction:
    def test_pressure_eviction_unregisters(self):
        alloc, cache = _cache(n_pages=2)
        pages = alloc.allocate_many(2)
        cache.insert(("k", 0), pages[0])
        cache.insert(("k", 1), pages[1])
        alloc.release_many(pages)
        # Pool is all cached; two fresh allocations must evict both
        # entries in LRU order and notify the cache.
        got = alloc.allocate_many(2)
        assert got == pages
        assert len(cache) == 0
        assert cache.evictions == 2
        assert cache.lookup(("k", 0)) is None

    def test_referenced_cached_page_survives_pressure(self):
        alloc, cache = _cache(n_pages=2)
        pages = alloc.allocate_many(2)
        cache.insert(("k", 0), pages[0])
        cache.insert(("k", 1), pages[1])
        alloc.release(pages[1])  # pages[0] still referenced
        alloc.allocate()  # evicts pages[1], the only refcount-0 entry
        assert cache.lookup(("k", 0)) == pages[0]
        assert cache.lookup(("k", 1)) is None

    def test_forget_page(self):
        alloc, cache = _cache()
        page = alloc.allocate()
        cache.insert(("k", 0), page)
        alloc.release(page)
        cache.forget_page(page)
        assert cache.lookup(("k", 0)) is None
        assert alloc.cached_pages == 0
        assert cache.evictions == 0  # explicit forget is not an eviction

    def test_forget_unknown_page_is_noop(self):
        _, cache = _cache()
        cache.forget_page(3)

    def test_hit_resurrects_cached_page(self):
        alloc, cache = _cache(n_pages=2)
        page = alloc.allocate()
        cache.insert(("k", 0), page)
        alloc.release(page)
        hit = cache.match([("k", 0)])
        assert hit == [page]
        alloc.acquire(hit[0])  # admission maps the hit page
        assert alloc.refcount(page) == 1
        assert alloc.cached_pages == 0
        # Still registered: the next request can hit it too.
        assert cache.lookup(("k", 0)) == page
