"""Page allocator conservation and refcount invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pages.allocator import EvictionPolicy, OutOfPagesError, PageAllocator


class _RetainSet(EvictionPolicy):
    """Test policy: retains an explicit page set, records hook firings."""

    def __init__(self, pages=()):
        self.pages = set(pages)
        self.released = []
        self.evicted = []

    def retains(self, page):
        return page in self.pages

    def page_released(self, page):
        self.released.append(page)

    def page_evicted(self, page):
        self.evicted.append(page)
        self.pages.discard(page)


class TestAllocator:
    def test_initial_state(self):
        alloc = PageAllocator(16)
        assert alloc.free_pages == 16
        assert alloc.used_pages == 0

    def test_allocate_release_cycle(self):
        alloc = PageAllocator(4)
        page = alloc.allocate()
        assert alloc.used_pages == 1
        assert alloc.refcount(page) == 1
        alloc.release(page)
        assert alloc.used_pages == 0
        assert alloc.free_pages == 4

    def test_exhaustion_raises(self):
        alloc = PageAllocator(2)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(OutOfPagesError):
            alloc.allocate()

    def test_allocate_many_all_or_nothing(self):
        alloc = PageAllocator(4)
        alloc.allocate()
        with pytest.raises(OutOfPagesError):
            alloc.allocate_many(4)
        # Failed bulk allocation must not leak pages.
        assert alloc.free_pages == 3

    def test_double_release_rejected(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.release(page)
        with pytest.raises(ValueError):
            alloc.release(page)

    def test_release_unallocated_rejected(self):
        with pytest.raises(ValueError):
            PageAllocator(2).release(0)

    def test_unique_page_ids(self):
        alloc = PageAllocator(32)
        pages = alloc.allocate_many(32)
        assert len(set(pages)) == 32

    def test_zero_pool_rejected(self):
        with pytest.raises(ValueError):
            PageAllocator(0)


class TestRefcounts:
    def test_acquire_increments(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.acquire(page)
        assert alloc.refcount(page) == 2
        alloc.release(page)
        assert alloc.refcount(page) == 1
        assert alloc.used_pages == 1
        alloc.release(page)
        assert alloc.refcount(page) == 0
        assert alloc.free_pages == 2

    def test_acquire_unreferenced_uncached_rejected(self):
        alloc = PageAllocator(2)
        with pytest.raises(ValueError):
            alloc.acquire(0)

    def test_shared_page_not_reallocated(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.acquire(page)
        alloc.release(page)  # still held once
        other = alloc.allocate()
        assert other != page
        with pytest.raises(OutOfPagesError):
            alloc.allocate()

    def test_release_many(self):
        alloc = PageAllocator(4)
        pages = alloc.allocate_many(3)
        alloc.release_many(pages)
        assert alloc.free_pages == 4


class TestEvictionPolicy:
    def test_retained_page_parks_and_resurrects(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.register(_RetainSet([page]))
        alloc.release(page)
        assert alloc.cached_pages == 1
        assert alloc.is_cached(page)
        assert alloc.free_pages == 2  # cached counts as reclaimable
        alloc.acquire(page)
        assert alloc.refcount(page) == 1
        assert alloc.cached_pages == 0

    def test_eviction_is_lru_and_fires_hook(self):
        alloc = PageAllocator(3)
        pages = alloc.allocate_many(3)
        policy = _RetainSet(pages)
        alloc.register(policy)
        # Release in order a, b, c -> a is least recently released.
        for p in pages:
            alloc.release(p)
        # Pool has no truly-free pages; allocation must evict pages[0] first.
        got = alloc.allocate()
        assert got == pages[0]
        assert policy.evicted == [pages[0]]
        assert alloc.evictions == 1

    def test_page_released_fires_for_every_policy(self):
        alloc = PageAllocator(2)
        a, b = _RetainSet(), _RetainSet()
        alloc.register(a)
        alloc.register(b)
        page = alloc.allocate()
        alloc.release(page)
        assert a.released == [page] and b.released == [page]
        assert alloc.cached_pages == 0  # neither policy retains it

    def test_reconsider_frees_unretained_without_hook(self):
        alloc = PageAllocator(1)
        page = alloc.allocate()
        policy = _RetainSet([page])
        alloc.register(policy)
        alloc.release(page)
        assert alloc.is_cached(page)
        policy.pages.discard(page)
        alloc.reconsider(page)
        assert alloc.cached_pages == 0
        assert policy.evicted == []
        # Page is plain-free again.
        assert alloc.allocate() == page

    def test_any_retaining_policy_parks(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.register(_RetainSet())  # retains nothing
        alloc.register(_RetainSet([page]))
        alloc.release(page)
        assert alloc.is_cached(page)

    def test_double_register_rejected(self):
        alloc = PageAllocator(2)
        policy = _RetainSet()
        alloc.register(policy)
        with pytest.raises(ValueError):
            alloc.register(policy)

    def test_unregister_stops_retention(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        policy = _RetainSet([page])
        alloc.register(policy)
        alloc.unregister(policy)
        alloc.release(page)
        assert alloc.cached_pages == 0

    def test_cached_page_not_double_counted(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.register(_RetainSet([page]))
        alloc.release(page)
        assert alloc.free_pages + alloc.used_pages == 2


class TestRemovedShims:
    """The 0.2-era exclusive-ownership / cacheable shims are gone in 0.4."""

    def test_free_removed(self):
        assert not hasattr(PageAllocator(2), "free")
        assert not hasattr(PageAllocator(2), "free_many")

    def test_cacheable_trio_removed(self):
        alloc = PageAllocator(2)
        assert not hasattr(alloc, "mark_cacheable")
        assert not hasattr(alloc, "unmark_cacheable")
        with pytest.raises(TypeError):
            PageAllocator(2, on_evict=lambda p: None)


class TestConservationProperty:
    @given(ops=st.lists(st.integers(0, 2), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_free_plus_used_constant(self, ops):
        """allocate / acquire / release in any order conserve the pool.

        `held` is a multiset of outstanding references; the allocator's
        refcounts must track it exactly, never go negative, and allocate
        must never hand out a page that still has references.
        """
        alloc = PageAllocator(16)
        held = []
        for op in ops:
            if op == 0:
                try:
                    page = alloc.allocate()
                    assert page not in held  # never recycle a referenced page
                    held.append(page)
                except OutOfPagesError:
                    assert alloc.free_pages == 0
            elif op == 1 and held:
                page = held[len(held) // 2]
                alloc.acquire(page)
                held.append(page)
            elif op == 2 and held:
                page = held.pop()
                alloc.release(page)
            for page in set(held):
                assert alloc.refcount(page) == held.count(page)
                assert alloc.refcount(page) > 0
            assert alloc.free_pages + alloc.used_pages == 16
            assert alloc.used_pages == len(set(held))
