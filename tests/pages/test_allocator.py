"""Page allocator conservation invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pages.allocator import OutOfPagesError, PageAllocator


class TestAllocator:
    def test_initial_state(self):
        alloc = PageAllocator(16)
        assert alloc.free_pages == 16
        assert alloc.used_pages == 0

    def test_allocate_free_cycle(self):
        alloc = PageAllocator(4)
        page = alloc.allocate()
        assert alloc.used_pages == 1
        alloc.free(page)
        assert alloc.used_pages == 0
        assert alloc.free_pages == 4

    def test_exhaustion_raises(self):
        alloc = PageAllocator(2)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(OutOfPagesError):
            alloc.allocate()

    def test_allocate_many_all_or_nothing(self):
        alloc = PageAllocator(4)
        alloc.allocate()
        with pytest.raises(OutOfPagesError):
            alloc.allocate_many(4)
        # Failed bulk allocation must not leak pages.
        assert alloc.free_pages == 3

    def test_double_free_rejected(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.free(page)
        with pytest.raises(ValueError):
            alloc.free(page)

    def test_free_unallocated_rejected(self):
        with pytest.raises(ValueError):
            PageAllocator(2).free(0)

    def test_unique_page_ids(self):
        alloc = PageAllocator(32)
        pages = alloc.allocate_many(32)
        assert len(set(pages)) == 32

    def test_zero_pool_rejected(self):
        with pytest.raises(ValueError):
            PageAllocator(0)


class TestConservationProperty:
    @given(ops=st.lists(st.integers(0, 1), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_free_plus_used_constant(self, ops):
        alloc = PageAllocator(16)
        held = []
        for op in ops:
            if op == 0:
                try:
                    held.append(alloc.allocate())
                except OutOfPagesError:
                    assert alloc.free_pages == 0
            elif held:
                alloc.free(held.pop())
            assert alloc.free_pages + alloc.used_pages == 16
            assert alloc.used_pages == len(held)
