"""Page allocator conservation and refcount invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pages.allocator import OutOfPagesError, PageAllocator


class TestAllocator:
    def test_initial_state(self):
        alloc = PageAllocator(16)
        assert alloc.free_pages == 16
        assert alloc.used_pages == 0

    def test_allocate_release_cycle(self):
        alloc = PageAllocator(4)
        page = alloc.allocate()
        assert alloc.used_pages == 1
        assert alloc.refcount(page) == 1
        alloc.release(page)
        assert alloc.used_pages == 0
        assert alloc.free_pages == 4

    def test_exhaustion_raises(self):
        alloc = PageAllocator(2)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(OutOfPagesError):
            alloc.allocate()

    def test_allocate_many_all_or_nothing(self):
        alloc = PageAllocator(4)
        alloc.allocate()
        with pytest.raises(OutOfPagesError):
            alloc.allocate_many(4)
        # Failed bulk allocation must not leak pages.
        assert alloc.free_pages == 3

    def test_double_release_rejected(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.release(page)
        with pytest.raises(ValueError):
            alloc.release(page)

    def test_release_unallocated_rejected(self):
        with pytest.raises(ValueError):
            PageAllocator(2).release(0)

    def test_unique_page_ids(self):
        alloc = PageAllocator(32)
        pages = alloc.allocate_many(32)
        assert len(set(pages)) == 32

    def test_zero_pool_rejected(self):
        with pytest.raises(ValueError):
            PageAllocator(0)


class TestRefcounts:
    def test_acquire_increments(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.acquire(page)
        assert alloc.refcount(page) == 2
        alloc.release(page)
        assert alloc.refcount(page) == 1
        assert alloc.used_pages == 1
        alloc.release(page)
        assert alloc.refcount(page) == 0
        assert alloc.free_pages == 2

    def test_acquire_unreferenced_uncached_rejected(self):
        alloc = PageAllocator(2)
        with pytest.raises(ValueError):
            alloc.acquire(0)

    def test_shared_page_not_reallocated(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.acquire(page)
        alloc.release(page)  # still held once
        other = alloc.allocate()
        assert other != page
        with pytest.raises(OutOfPagesError):
            alloc.allocate()

    def test_release_many(self):
        alloc = PageAllocator(4)
        pages = alloc.allocate_many(3)
        alloc.release_many(pages)
        assert alloc.free_pages == 4


class TestCachedPages:
    def test_cached_page_resurrected_by_acquire(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.mark_cacheable(page)
        alloc.release(page)
        assert alloc.cached_pages == 1
        assert alloc.free_pages == 2  # cached counts as reclaimable
        alloc.acquire(page)
        assert alloc.refcount(page) == 1
        assert alloc.cached_pages == 0

    def test_eviction_is_lru_and_fires_callback(self):
        evicted = []
        alloc = PageAllocator(3, on_evict=evicted.append)
        pages = alloc.allocate_many(3)
        for p in pages:
            alloc.mark_cacheable(p)
        # Release in order a, b, c -> a is least recently cached.
        for p in pages:
            alloc.release(p)
        # Pool has no truly-free pages; allocation must evict pages[0] first.
        got = alloc.allocate()
        assert got == pages[0]
        assert evicted == [pages[0]]
        assert alloc.evictions == 1

    def test_unmark_cacheable_skips_callback(self):
        evicted = []
        alloc = PageAllocator(1, on_evict=evicted.append)
        page = alloc.allocate()
        alloc.mark_cacheable(page)
        alloc.release(page)
        alloc.unmark_cacheable(page)
        assert alloc.cached_pages == 0
        assert evicted == []
        # Page is plain-free again.
        assert alloc.allocate() == page

    def test_cached_page_not_double_counted(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.mark_cacheable(page)
        alloc.release(page)
        assert alloc.free_pages + alloc.used_pages == 2


class TestDeprecatedFree:
    def test_free_warns_and_releases(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        with pytest.warns(DeprecationWarning, match="release"):
            alloc.free(page)
        assert alloc.free_pages == 2

    def test_free_many_warns(self):
        alloc = PageAllocator(4)
        pages = alloc.allocate_many(2)
        with pytest.warns(DeprecationWarning, match="release"):
            alloc.free_many(pages)
        assert alloc.free_pages == 4

    def test_free_rejects_shared_page(self):
        alloc = PageAllocator(2)
        page = alloc.allocate()
        alloc.acquire(page)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                alloc.free(page)
        # Refcount must be untouched by the failed free.
        assert alloc.refcount(page) == 2


class TestConservationProperty:
    @given(ops=st.lists(st.integers(0, 2), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_free_plus_used_constant(self, ops):
        """allocate / acquire / release in any order conserve the pool.

        `held` is a multiset of outstanding references; the allocator's
        refcounts must track it exactly, never go negative, and allocate
        must never hand out a page that still has references.
        """
        alloc = PageAllocator(16)
        held = []
        for op in ops:
            if op == 0:
                try:
                    page = alloc.allocate()
                    assert page not in held  # never recycle a referenced page
                    held.append(page)
                except OutOfPagesError:
                    assert alloc.free_pages == 0
            elif op == 1 and held:
                page = held[len(held) // 2]
                alloc.acquire(page)
                held.append(page)
            elif op == 2 and held:
                page = held.pop()
                alloc.release(page)
            for page in set(held):
                assert alloc.refcount(page) == held.count(page)
                assert alloc.refcount(page) > 0
            assert alloc.free_pages + alloc.used_pages == 16
            assert alloc.used_pages == len(set(held))
