"""Tiered page store: bijection, migration pricing, bit-exact content moves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BitDecodingConfig
from repro.pages.allocator import EvictionPolicy, OutOfPagesError, PageAllocator
from repro.pages.page_table import PageTable
from repro.pages.tiers import TieredPageStore, TierObserver


class _ArrayStore(TierObserver):
    """One int64 of 'content' per frame; migrations must preserve it."""

    def __init__(self, n_frames):
        self.data = np.arange(n_frames, dtype=np.int64)

    def copy_frame(self, src, dst):
        self.data[dst] = self.data[src]

    def exchange_frames(self, a, b):
        self.data[[a, b]] = self.data[[b, a]]


class _RetainSet(EvictionPolicy):
    def __init__(self, pages=()):
        self.pages = set(pages)

    def retains(self, page):
        return page in self.pages

    def page_evicted(self, page):
        self.pages.discard(page)


def _store(device=2, host=3, disk=0, nbytes=1000.0, model=None):
    alloc = PageAllocator(device + host + disk)
    tiers = TieredPageStore(alloc, device, host, disk, page_nbytes=nbytes, model=model)
    obs = _ArrayStore(alloc.n_pages)
    tiers.add_observer(obs)
    return alloc, tiers, obs


def _content_intact(alloc, tiers, obs):
    """Every live page's content must sit at its current frame, untouched."""
    for page in range(alloc.n_pages):
        if alloc.refcount(page) > 0 or alloc.is_cached(page):
            assert obs.data[tiers.frame_of(page)] == page


class TestGeometry:
    def test_identity_bijection_at_birth(self):
        _, tiers, _ = _store(device=2, host=2, disk=1)
        assert [tiers.frame_of(p) for p in range(5)] == [0, 1, 2, 3, 4]
        assert [tiers.tier_of(p) for p in range(5)] == [
            "device", "device", "host", "host", "disk",
        ]
        assert tiers.resident(1) and not tiers.resident(2)
        np.testing.assert_array_equal(tiers.frames_of([3, 0]), [3, 0])

    def test_pool_must_match_tier_total(self):
        with pytest.raises(ValueError, match="tier total"):
            TieredPageStore(PageAllocator(4), 2, 3)

    def test_device_tier_required(self):
        with pytest.raises(ValueError, match="device_pages"):
            TieredPageStore(PageAllocator(3), 0, 3)


class TestMigration:
    def test_fault_promotes_and_prices_both_legs(self):
        alloc, tiers, obs = _store(device=2, host=2)
        alloc.allocate_many(4)
        tiers.start_step()
        ms = tiers.ensure_resident([2])
        assert tiers.resident(2)
        # The displaced live device page rides the exchange to page 2's
        # old host frame — both transfer legs are priced and counted.
        model = tiers.model
        expected = model.transfer_ms(1000.0, "host", "device") + model.transfer_ms(
            1000.0, "device", "host"
        )
        assert ms == pytest.approx(expected)
        assert tiers.step_fault_ms == pytest.approx(expected)
        assert tiers.step_prefetch_ms == 0.0
        assert tiers.faults == 1
        assert tiers.h2d_bytes == 1000 and tiers.d2h_bytes == 1000
        _content_intact(alloc, tiers, obs)

    def test_prefetch_books_the_overlappable_bucket(self):
        alloc, tiers, _ = _store(device=2, host=2)
        alloc.allocate_many(4)
        tiers.start_step()
        tiers.ensure_resident([3], prefetch=True)
        assert tiers.step_prefetch_ms > 0.0
        assert tiers.step_fault_ms == 0.0
        assert tiers.prefetched_pages == 1 and tiers.faults == 0

    def test_resident_pages_promote_for_free(self):
        alloc, tiers, _ = _store()
        alloc.allocate_many(2)
        assert tiers.ensure_resident([0, 1]) == 0.0
        assert tiers.faults == 0 and tiers.h2d_bytes == 0

    def test_promotion_overwrites_garbage_frame_cheaply(self):
        alloc, tiers, obs = _store(device=2, host=2)
        pages = alloc.allocate_many(4)
        alloc.release(pages[0])  # frame 0 now holds dead content
        tiers.start_step()
        ms = tiers.ensure_resident([3])
        # One leg only: nothing worth saving rode back to the host frame.
        assert ms == pytest.approx(tiers.model.transfer_ms(1000.0, "host", "device"))
        assert tiers.frame_of(3) == 0
        assert tiers.d2h_bytes == 0
        _content_intact(alloc, tiers, obs)

    def test_demote_then_promote_is_bit_exact(self):
        alloc, tiers, obs = _store(device=2, host=2)
        alloc.allocate_many(4)
        tiers.start_step()
        tiers.demote([0, 1])
        assert not tiers.resident(0) and not tiers.resident(1)
        assert tiers.demoted_pages == 2
        assert tiers.step_prefetch_ms > 0.0  # demotion overlaps compute
        tiers.ensure_resident([0, 1], prefetch=True)
        assert tiers.resident(0) and tiers.resident(1)
        _content_intact(alloc, tiers, obs)

    def test_disk_tier_prices_nvme_and_counts_bytes(self):
        alloc, tiers, obs = _store(device=1, host=1, disk=1)
        alloc.allocate_many(3)
        tiers.start_step()
        ms = tiers.ensure_resident([2])
        model = tiers.model
        expected = model.transfer_ms(1000.0, "disk", "device") + model.transfer_ms(
            1000.0, "device", "disk"
        )
        assert ms == pytest.approx(expected)
        assert tiers.disk_bytes == 2000
        _content_intact(alloc, tiers, obs)

    def test_demote_needs_a_backing_tier(self):
        alloc = PageAllocator(2)
        tiers = TieredPageStore(alloc, 2, 0)
        alloc.allocate_many(2)
        with pytest.raises(RuntimeError, match="no host/disk frames"):
            tiers.demote([0])


class TestVictimSelection:
    def test_parked_page_preferred_over_live(self):
        alloc, tiers, obs = _store(device=2, host=1)
        pages = alloc.allocate_many(3)
        alloc.register(_RetainSet([pages[0]]))
        alloc.release(pages[0])  # parked in the cached pool, frame 0
        assert alloc.is_cached(pages[0])
        tiers.touch([pages[1]])
        tiers.start_step()
        tiers.ensure_resident([2])
        assert tiers.frame_of(2) == 0
        # The parked page's content survived the exchange off-device.
        assert tiers.tier_of(pages[0]) == "host"
        assert alloc.is_cached(pages[0])
        _content_intact(alloc, tiers, obs)

    def test_pinned_pages_victimized_last(self):
        alloc, tiers, obs = _store(device=2, host=2)
        alloc.allocate_many(4)
        tiers.touch([0, 1])  # LRU order: 0 oldest
        tiers.start_step()
        tiers.pin([0])
        tiers.ensure_resident([2])
        # Without the pin the LRU victim would be page 0.
        assert tiers.resident(0)
        assert tiers.tier_of(1) == "host"
        _content_intact(alloc, tiers, obs)

    def test_start_step_resets_buckets_and_pins(self):
        alloc, tiers, _ = _store(device=2, host=2)
        alloc.allocate_many(4)
        tiers.start_step()
        tiers.ensure_resident([2])
        assert tiers.step_fault_ms > 0.0
        tiers.start_step()
        assert tiers.step_fault_ms == 0.0 and tiers.step_prefetch_ms == 0.0
        assert tiers.fault_ms_total > 0.0  # cumulative totals persist


class TestPolicyHooks:
    def test_released_page_becomes_garbage_victim(self):
        alloc, tiers, obs = _store(device=1, host=1)
        pages = alloc.allocate_many(2)
        tiers.touch([pages[0]])
        alloc.release(pages[0])
        tiers.start_step()
        tiers.ensure_resident([pages[1]])
        # Dead content was overwritten in place, nothing was exchanged out.
        assert tiers.frame_of(pages[1]) == 0
        assert tiers.d2h_bytes == 0
        assert obs.data[0] == pages[1]

    def test_resident_live_pages_counts_parked_content(self):
        alloc, tiers, _ = _store(device=2, host=1)
        pages = alloc.allocate_many(2)
        assert tiers.resident_live_pages == 2
        alloc.register(_RetainSet([pages[0]]))
        alloc.release(pages[0])
        assert tiers.resident_live_pages == 2  # parked content still live
        alloc.release(pages[1])
        assert tiers.resident_live_pages == 1


CONFIG = BitDecodingConfig(bits=4, wn=1)
NR = CONFIG.residual_block_size


class _World:
    """A paged cache over a tiered (or flat) pool plus its page table."""

    def __init__(self, tiered, n_pages=12, device=3):
        from repro.attn.paged import PagedBitKVCache

        self.alloc = PageAllocator(n_pages)
        self.table = PageTable(self.alloc, page_size=NR)
        self.tiers = (
            TieredPageStore(self.alloc, device, n_pages - device, page_nbytes=64.0)
            if tiered
            else None
        )
        self.cache = PagedBitKVCache(
            CONFIG, hkv=2, head_dim=16, table=self.table, tiers=self.tiers, n_slots=8
        )


class TestTieredCacheProperty:
    """Random admit/append/swap-out/swap-in/release schedules: the tiered
    cache must dequantize bit-identically to a flat shadow pool driven by
    the same logical operations — migrations never lose or corrupt packed
    words, and swapped pages come back bit-exact through ``reattach``."""

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 2**16 - 1)),
            min_size=1,
            max_size=30,
        ),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_schedule_matches_flat_shadow(self, ops, seed):
        rng = np.random.default_rng(seed)
        tiered, flat = _World(tiered=True), _World(tiered=False)
        seqs = []  # [t_handle, f_handle, seq_len, swapped, stash]
        for code, param in ops:
            if code == 0 and len(seqs) < 4:
                t_seq = tiered.table.add_sequence(0)
                f_seq = flat.table.add_sequence(0)
                assert t_seq == f_seq
                seqs.append([tiered.cache.adopt(t_seq), flat.cache.adopt(f_seq), 0, False, None])
            elif not seqs:
                continue
            elif code == 1:
                state = seqs[param % len(seqs)]
                if state[3]:
                    continue
                n = 1 + param % (2 * NR)
                rows = rng.standard_normal((2, 2, n, 16)).astype(np.float16)
                try:
                    tiered.table.extend_sequence(state[0].seq_id, n)
                except OutOfPagesError:
                    with pytest.raises(OutOfPagesError):
                        flat.table.extend_sequence(state[1].seq_id, n)
                    continue
                flat.table.extend_sequence(state[1].seq_id, n)
                tiered.cache.write_rows(state[0], rows[0], rows[1])
                flat.cache.write_rows(state[1], rows[0], rows[1])
                state[2] += n
            elif code == 2:
                state = seqs[param % len(seqs)]
                if state[3]:
                    continue
                handle = state[0]
                n_res = handle.res_len
                state[4] = (
                    np.array(tiered.cache.res_k[handle.slot][:, :n_res]),
                    np.array(tiered.cache.res_v[handle.slot][:, :n_res]),
                )
                seq_id = handle.seq_id
                tiered.cache.free_slot(handle)
                tiered.tiers.demote(tiered.table.sequences[seq_id].pages)
                state[0] = seq_id
                state[3] = True
            elif code == 3:
                state = seqs[param % len(seqs)]
                if not state[3]:
                    continue
                rk, rv = state[4]
                state[0] = tiered.cache.reattach(state[0], state[2], rk, rv)
                tiered.tiers.ensure_resident(
                    tiered.table.sequences[state[0].seq_id].pages,
                    prefetch=bool(param % 2),
                )
                state[3], state[4] = False, None
            elif code == 4:
                state = seqs.pop(param % len(seqs))
                if state[3]:
                    tiered.table.release_sequence(state[0])
                else:
                    tiered.cache.release(state[0])
                flat.cache.release(state[1])
        for state in seqs:
            if state[3]:
                rk, rv = state[4]
                state[0] = tiered.cache.reattach(state[0], state[2], rk, rv)
                state[3] = False
        for t_handle, f_handle, seq_len, _, _ in seqs:
            assert t_handle.seq_len == f_handle.seq_len == seq_len
            kt, vt = tiered.cache.dequant_seq(t_handle)
            kf, vf = flat.cache.dequant_seq(f_handle)
            np.testing.assert_array_equal(kt, kf)
            np.testing.assert_array_equal(vt, vf)
            rkt, rvt = tiered.cache.residual_view(t_handle)
            rkf, rvf = flat.cache.residual_view(f_handle)
            np.testing.assert_array_equal(rkt, rkf)
            np.testing.assert_array_equal(rvt, rvf)
