"""BitDecoding reproduction test suite (tests/pages)."""
