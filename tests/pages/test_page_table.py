"""Page table: logical->physical mapping and growth."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pages.allocator import OutOfPagesError, PageAllocator
from repro.pages.page_table import PagedSequence, PageTable


class TestPagedSequence:
    def test_lookup(self):
        seq = PagedSequence(page_size=4, pages=[7, 9], length=6)
        assert seq.lookup(0) == (7, 0)
        assert seq.lookup(3) == (7, 3)
        assert seq.lookup(4) == (9, 0)
        assert seq.lookup(5) == (9, 1)

    def test_lookup_bounds(self):
        seq = PagedSequence(page_size=4, pages=[7], length=2)
        with pytest.raises(IndexError):
            seq.lookup(2)
        with pytest.raises(IndexError):
            seq.lookup(-1)

    def test_needs_page(self):
        seq = PagedSequence(page_size=4, pages=[1], length=4)
        assert seq.needs_page()


class TestPageTable:
    def test_add_sequence_allocates_ceiling(self):
        table = PageTable(PageAllocator(64), page_size=16)
        sid = table.add_sequence(initial_length=33)
        assert len(table.sequences[sid].pages) == 3

    def test_append_allocates_on_boundary(self):
        alloc = PageAllocator(8)
        table = PageTable(alloc, page_size=4)
        sid = table.add_sequence(initial_length=4)
        used_before = alloc.used_pages
        table.append_token(sid)
        assert alloc.used_pages == used_before + 1
        table.append_token(sid)
        assert alloc.used_pages == used_before + 1  # same page

    def test_release_returns_pages(self):
        alloc = PageAllocator(8)
        table = PageTable(alloc, page_size=4)
        sid = table.add_sequence(initial_length=16)
        table.release_sequence(sid)
        assert alloc.free_pages == 8

    def test_released_ids_are_recycled(self):
        alloc = PageAllocator(8)
        table = PageTable(alloc, page_size=4)
        first = table.add_sequence(initial_length=4)
        table.release_sequence(first)
        second = table.add_sequence(initial_length=4)
        assert second == first
        assert len(table.sequences) == 1  # bounded by peak concurrency

    def test_double_release_raises(self):
        table = PageTable(PageAllocator(8), page_size=4)
        sid = table.add_sequence(initial_length=4)
        table.release_sequence(sid)
        with pytest.raises(ValueError):
            table.release_sequence(sid)

    def test_oom_on_add(self):
        table = PageTable(PageAllocator(2), page_size=4)
        with pytest.raises(OutOfPagesError):
            table.add_sequence(initial_length=100)

    def test_extend_sequence_allocates_ceiling(self):
        alloc = PageAllocator(16)
        table = PageTable(alloc, page_size=4)
        sid = table.add_sequence(initial_length=3)
        table.extend_sequence(sid, 6)  # 9 tokens -> 3 pages
        assert table.sequences[sid].length == 9
        assert len(table.sequences[sid].pages) == 3
        table.extend_sequence(sid, 0)  # no-op chunk
        assert alloc.used_pages == 3

    def test_extend_sequence_oom_is_atomic(self):
        alloc = PageAllocator(3)
        table = PageTable(alloc, page_size=4)
        sid = table.add_sequence(initial_length=4)
        with pytest.raises(OutOfPagesError):
            table.extend_sequence(sid, 12)  # needs 3 more pages, only 2 free
        # The failed chunk left no partial reservation behind.
        assert table.sequences[sid].length == 4
        assert len(table.sequences[sid].pages) == 1
        assert alloc.used_pages == 1
        table.extend_sequence(sid, 8)  # retry that fits
        assert table.sequences[sid].length == 12

    def test_extend_released_sequence_raises(self):
        table = PageTable(PageAllocator(8), page_size=4)
        sid = table.add_sequence(initial_length=4)
        table.release_sequence(sid)
        with pytest.raises(ValueError):
            table.extend_sequence(sid, 4)

    def test_extend_negative_raises(self):
        table = PageTable(PageAllocator(8), page_size=4)
        sid = table.add_sequence(initial_length=4)
        with pytest.raises(ValueError):
            table.extend_sequence(sid, -1)

    def test_fragmentation(self):
        table = PageTable(PageAllocator(8), page_size=4)
        table.add_sequence(initial_length=5)  # 2 pages, 3 slots wasted
        assert table.fragmentation() == pytest.approx(3 / 8)

    def test_fragmentation_empty(self):
        assert PageTable(PageAllocator(4)).fragmentation() == 0.0

    def test_total_tokens(self):
        table = PageTable(PageAllocator(32), page_size=4)
        table.add_sequence(initial_length=5)
        table.add_sequence(initial_length=7)
        assert table.total_tokens() == 12


class TestSharedPages:
    def test_add_sequence_acquires_shared(self):
        alloc = PageAllocator(8)
        table = PageTable(alloc, page_size=4)
        parent = table.add_sequence(initial_length=8)
        shared = table.sequences[parent].pages
        child = table.add_sequence(initial_length=12, shared_pages=shared)
        assert table.sequences[child].pages[:2] == shared
        assert all(alloc.refcount(p) == 2 for p in shared)
        # Only the third block drew a fresh page.
        assert alloc.used_pages == 3

    def test_too_many_shared_pages_rejected(self):
        table = PageTable(PageAllocator(8), page_size=4)
        parent = table.add_sequence(initial_length=8)
        with pytest.raises(ValueError):
            table.add_sequence(
                initial_length=4, shared_pages=table.sequences[parent].pages
            )

    def test_shared_admission_rolls_back_on_oom(self):
        alloc = PageAllocator(3)
        table = PageTable(alloc, page_size=4)
        parent = table.add_sequence(initial_length=8)
        shared = table.sequences[parent].pages
        with pytest.raises(OutOfPagesError):
            # Needs 2 fresh pages on top of the 2 shared; only 1 free.
            table.add_sequence(initial_length=16, shared_pages=shared)
        # The failed admission dropped its references on the shared pages.
        assert all(alloc.refcount(p) == 1 for p in shared)
        assert alloc.free_pages == 1

    def test_shared_admission_rolls_back_bad_page(self):
        alloc = PageAllocator(8)
        table = PageTable(alloc, page_size=4)
        parent = table.add_sequence(initial_length=4)
        good = table.sequences[parent].pages[0]
        with pytest.raises(ValueError):
            table.add_sequence(initial_length=8, shared_pages=[good, 7])
        assert alloc.refcount(good) == 1

    def test_release_keeps_shared_pages_alive(self):
        alloc = PageAllocator(8)
        table = PageTable(alloc, page_size=4)
        parent = table.add_sequence(initial_length=8)
        shared = table.sequences[parent].pages
        child = table.add_sequence(initial_length=8, shared_pages=shared)
        table.release_sequence(parent)
        # The child still maps the pages; they must not be reclaimable.
        assert all(alloc.refcount(p) == 1 for p in shared)
        assert alloc.free_pages == 6
        table.release_sequence(child)
        assert alloc.free_pages == 8


class TestCopyOnWrite:
    def test_exclusive_page_untouched(self):
        alloc = PageAllocator(8)
        table = PageTable(alloc, page_size=4)
        sid = table.add_sequence(initial_length=4)
        page = table.sequences[sid].pages[0]
        assert table.ensure_exclusive(sid, 0) == (page, None)
        assert table.sequences[sid].pages[0] == page

    def test_shared_page_cloned(self):
        alloc = PageAllocator(8)
        table = PageTable(alloc, page_size=4)
        parent = table.add_sequence(initial_length=4)
        old = table.sequences[parent].pages[0]
        child = table.add_sequence(initial_length=4, shared_pages=[old])
        fresh, copied_from = table.ensure_exclusive(child, 0)
        assert copied_from == old
        assert fresh != old
        assert table.sequences[child].pages[0] == fresh
        # Parent keeps the original page, now exclusively.
        assert table.sequences[parent].pages[0] == old
        assert alloc.refcount(old) == 1
        assert alloc.refcount(fresh) == 1


class TestForkSequence:
    def test_fork_shares_everything(self):
        alloc = PageAllocator(8)
        table = PageTable(alloc, page_size=4)
        parent = table.add_sequence(initial_length=6)
        child = table.fork_sequence(parent)
        assert table.sequences[child].pages == table.sequences[parent].pages
        assert table.sequences[child].length == 6
        assert alloc.used_pages == 2  # no new physical pages

    def test_fork_released_sequence_raises(self):
        table = PageTable(PageAllocator(8), page_size=4)
        sid = table.add_sequence(initial_length=4)
        table.release_sequence(sid)
        with pytest.raises(ValueError):
            table.fork_sequence(sid)

    def test_fork_then_diverge(self):
        alloc = PageAllocator(8)
        table = PageTable(alloc, page_size=4)
        parent = table.add_sequence(initial_length=8)
        child = table.fork_sequence(parent)
        table.append_token(child)  # third page, child-private
        fresh, copied_from = table.ensure_exclusive(child, 1)
        assert copied_from == table.sequences[parent].pages[1]
        assert table.sequences[child].pages[0] == table.sequences[parent].pages[0]
        assert table.sequences[child].pages[1] == fresh
        table.release_sequence(parent)
        table.release_sequence(child)
        assert alloc.free_pages == 8


class TestGrowthProperty:
    @given(
        page_size=st.sampled_from([4, 16, 64]),
        appends=st.integers(0, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_page_count_is_ceiling(self, page_size, appends):
        table = PageTable(PageAllocator(512), page_size=page_size)
        sid = table.add_sequence()
        for _ in range(appends):
            table.append_token(sid)
        seq = table.sequences[sid]
        assert seq.length == appends
        assert len(seq.pages) == -(-appends // page_size)
        # Every token resolves to a valid page.
        for t in range(appends):
            page, offset = seq.lookup(t)
            assert 0 <= offset < page_size
