"""Fault injection and integrity checking on the tiered page store.

The store's side of the chaos contract: transient leg failures are
priced as retry+backoff stall, permanent failures and corruption land
live pages in the bad-page ledger (never silently), the page<->frame
bijection survives every outcome, and — with observers attached — the
demote/promote checksum pair catches byte damage even when no fault
plan predicted it.
"""

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, FaultSpec
from repro.pages.allocator import PageAllocator
from repro.pages.tiers import TieredPageStore, TierObserver

DEVICE, HOST = 2, 3


class _ByteStore(TierObserver):
    """A few words of real content per frame, with checksum + damage."""

    def __init__(self, n_frames, words=4):
        rng = np.random.default_rng(0)
        self.data = rng.integers(0, 2**31, size=(n_frames, words), dtype=np.int64)

    def copy_frame(self, src, dst):
        self.data[dst] = self.data[src]

    def exchange_frames(self, a, b):
        self.data[[a, b]] = self.data[[b, a]]

    def frame_checksum(self, frame):
        return int(np.bitwise_xor.reduce(self.data[frame]) & 0xFFFFFFFF)

    def corrupt_frame(self, frame, salt):
        self.data[frame, 0] ^= salt | 1  # never a no-op


def _store(spec=None, observer=False, integrity=None):
    alloc = PageAllocator(DEVICE + HOST)
    tiers = TieredPageStore(
        alloc,
        DEVICE,
        HOST,
        page_nbytes=1000.0,
        faults=FaultPlan(spec) if spec is not None else None,
        integrity=integrity,
    )
    obs = None
    if observer:
        obs = _ByteStore(alloc.n_pages)
        tiers.add_observer(obs)
    alloc.allocate_many(alloc.n_pages)  # everything live
    return alloc, tiers, obs


def _round_trip(tiers, page=0):
    """Demote one live page and promote it back, one step each."""
    tiers.start_step()
    tiers.demote([page])
    assert not tiers.resident(page)
    tiers.start_step()
    tiers.ensure_resident([page])
    assert tiers.resident(page)


def _bijection_ok(tiers):
    assert sorted(tiers._frame_of) == list(range(tiers.n_pages))
    for page in range(tiers.n_pages):
        assert tiers._page_at[tiers._frame_of[page]] == page


class TestRetryPricing:
    def test_transient_faults_charge_retry_stall(self):
        spec = FaultSpec(seed=0, transfer_fault_rate=1.0, backoff_base_ms=0.5)
        _, tiers, _ = _store(spec)
        _round_trip(tiers)
        assert tiers.transfer_retries >= 2  # every leg failed at least once
        assert tiers.retry_backoff_ms_total > 0
        assert tiers.retry_stall_ms_total > tiers.retry_backoff_ms_total  # + leg time
        # Retries are stall even on prefetch-booked legs, and they feed
        # the cumulative fault clock.
        assert tiers.step_fault_ms > 0
        assert tiers.fault_ms_total >= tiers.retry_stall_ms_total
        assert not tiers.has_bad_pages  # transient = content arrives
        _bijection_ok(tiers)

    def test_latency_spike_multiplies_the_leg(self):
        calm, spiky = _store()[1], _store(FaultSpec(seed=0, latency_spike_rate=1.0))[1]
        calm.start_step()
        spiky.start_step()
        base = calm.demote([0])
        spiked = spiky.demote([0])
        assert spiky.fault_plan.spec.latency_spike_factor == 8.0
        assert spiked == pytest.approx(base * 8.0)
        assert spiky.spiked_transfers >= 1

    def test_clean_plan_prices_like_no_plan(self):
        plain, planned = _store()[1], _store(FaultSpec(seed=0))[1]
        plain.start_step()
        planned.start_step()
        assert planned.demote([0]) == pytest.approx(plain.demote([0]))
        assert planned.transfer_retries == 0 and not planned.has_bad_pages


class TestLossAndCorruption:
    def test_permanent_fault_marks_live_page_lost(self):
        spec = FaultSpec(seed=0, transfer_fault_rate=1.0, permanent_fraction=1.0)
        _, tiers, _ = _store(spec)
        tiers.start_step()
        tiers.demote([0])
        assert tiers.lost_pages >= 1
        assert tiers.has_bad_pages
        drained = tiers.drain_bad_pages()
        assert drained.get(0) == "lost" or "lost" in drained.values()
        assert not tiers.has_bad_pages  # drain hands the ledger over
        _bijection_ok(tiers)  # loss never breaks the frame maps

    def test_dead_content_is_never_marked_bad(self):
        spec = FaultSpec(seed=0, transfer_fault_rate=1.0, permanent_fraction=1.0)
        alloc, tiers, _ = _store(spec)
        alloc.release(0)  # page 0's content is garbage now
        tiers.start_step()
        tiers.ensure_resident([2])  # may overwrite or displace page 0
        assert 0 not in tiers.drain_bad_pages()

    def test_analytical_corruption_detected_by_taint(self):
        """No observers, no bytes — the plan's own corruption events must
        still surface at the on-device verify, so analytical and executed
        chaos runs count identical checksum failures."""
        _, tiers, _ = _store(FaultSpec(seed=0, corruption_rate=1.0))
        assert tiers.integrity
        _round_trip(tiers)
        assert tiers.injected_corruptions >= 1
        assert tiers.checksum_failures >= 1
        assert "corrupt" in tiers.drain_bad_pages().values()

    def test_executed_corruption_damages_and_detects_real_bytes(self):
        _, tiers, obs = _store(FaultSpec(seed=0, corruption_rate=1.0), observer=True)
        before = obs.data.copy()
        _round_trip(tiers)
        assert not np.array_equal(obs.data, before)  # bytes really damaged
        assert tiers.checksum_failures >= 1
        assert "corrupt" in tiers.drain_bad_pages().values()

    def test_out_of_plan_damage_caught_by_checksum_alone(self):
        """Integrity without any fault plan: damage the host copy by hand
        and the promote-side digest check must flag it."""
        _, tiers, obs = _store(observer=True, integrity=True)
        assert tiers.fault_plan is None
        tiers.start_step()
        tiers.demote([0])
        obs.data[tiers.frame_of(0), 0] ^= 0xDEAD  # bit rot on the host tier
        tiers.start_step()
        tiers.ensure_resident([0])
        assert tiers.checksum_failures == 1
        assert tiers.drain_bad_pages() == {0: "corrupt"}

    def test_intact_round_trip_raises_no_alarms(self):
        _, tiers, obs = _store(observer=True, integrity=True)
        before = obs.data.copy()
        _round_trip(tiers)
        assert tiers.checksum_failures == 0 and not tiers.has_bad_pages
        # Content moved frames but every page's words survived bit-exactly.
        for page in range(tiers.n_pages):
            np.testing.assert_array_equal(
                obs.data[tiers.frame_of(page)], before[page]
            )


class TestDeterminism:
    def test_same_spec_same_counters(self):
        spec = FaultSpec(
            seed=9,
            transfer_fault_rate=0.5,
            permanent_fraction=0.2,
            latency_spike_rate=0.3,
            corruption_rate=0.3,
        )
        runs = []
        for _ in range(2):
            _, tiers, _ = _store(spec)
            for page in (0, 1, 0):
                _round_trip(tiers, page)
            runs.append(
                (
                    tiers.transfer_retries,
                    tiers.lost_pages,
                    tiers.injected_corruptions,
                    tiers.checksum_failures,
                    tiers.retry_backoff_ms_total,
                    tiers.fault_ms_total,
                    sorted(tiers.drain_bad_pages().items()),
                )
            )
        assert runs[0] == runs[1]
