"""Numeric paged KV storage: gather order under page recycling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.softmax import reference_attention
from repro.pages.paged_cache import PagedKVStore


class TestPagedStore:
    def test_gather_preserves_logical_order(self, rng):
        store = PagedKVStore(n_pages=16, page_size=4, head_dim=8)
        sid = store.add_sequence()
        rows = rng.standard_normal((11, 8)).astype(np.float16)
        for i in range(11):
            store.append(sid, rows[i], -rows[i])
        k, v = store.gather(sid)
        np.testing.assert_array_equal(k, rows)
        np.testing.assert_array_equal(v, -rows)

    def test_empty_sequence_gathers_empty(self):
        store = PagedKVStore(4, 4, 8)
        sid = store.add_sequence()
        k, v = store.gather(sid)
        assert k.shape == (0, 8)

    def test_recycled_pages_interleave_correctly(self, rng):
        """A sequence written after another was released must read back its
        own rows even though its pages are physically scattered."""
        store = PagedKVStore(n_pages=4, page_size=2, head_dim=4)
        a = store.add_sequence()
        for i in range(6):
            store.append(a, np.full(4, i), np.full(4, i))
        store.release(a)
        b = store.add_sequence()
        rows = rng.standard_normal((7, 4)).astype(np.float16)
        # 7 rows need 4 pages of 2 -> reuses all freed pages, out of order.
        with pytest.raises(Exception):
            for i in range(9):  # 9 rows > 8 slots: must OOM at some point
                store.append(b, rows[i % 7], rows[i % 7])
        store.release(b)
        c = store.add_sequence()
        for i in range(7):
            store.append(c, rows[i], rows[i])
        k, _ = store.gather(c)
        np.testing.assert_array_equal(k, rows)

    def test_attention_over_paged_rows_matches_flat(self, rng):
        """The end-to-end contract: paged storage is numerically invisible."""
        store = PagedKVStore(n_pages=32, page_size=8, head_dim=16)
        sid = store.add_sequence()
        k_flat = rng.standard_normal((50, 16)).astype(np.float16)
        v_flat = rng.standard_normal((50, 16)).astype(np.float16)
        for i in range(50):
            store.append(sid, k_flat[i], v_flat[i])
        k_paged, v_paged = store.gather(sid)
        q = rng.standard_normal((1, 16)).astype(np.float32)
        out_paged = reference_attention(q, k_paged.astype(np.float32), v_paged.astype(np.float32))
        out_flat = reference_attention(q, k_flat.astype(np.float32), v_flat.astype(np.float32))
        np.testing.assert_allclose(out_paged, out_flat, rtol=1e-6)

    def test_physical_bytes_fixed(self):
        store = PagedKVStore(8, 16, 32)
        assert store.physical_nbytes == 2 * 8 * 16 * 32 * 2


class TestPagedProperty:
    @given(
        page_size=st.sampled_from([2, 4, 8]),
        lengths=st.lists(st.integers(1, 30), min_size=1, max_size=5),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_multi_sequence_isolation(self, page_size, lengths, seed):
        """Concurrent sequences never see each other's rows."""
        rng = np.random.default_rng(seed)
        store = PagedKVStore(n_pages=256, page_size=page_size, head_dim=4)
        expected = []
        for n in lengths:
            sid = store.add_sequence()
            rows = rng.standard_normal((n, 4)).astype(np.float16)
            for i in range(n):
                store.append(sid, rows[i], rows[i])
            expected.append((sid, rows))
        for sid, rows in expected:
            k, _ = store.gather(sid)
            np.testing.assert_array_equal(k, rows)
