"""Numeric paged KV storage: gather order under page recycling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.softmax import reference_attention
from repro.pages.paged_cache import PagedKVStore


class TestPagedStore:
    def test_gather_preserves_logical_order(self, rng):
        store = PagedKVStore(n_pages=16, page_size=4, head_dim=8)
        sid = store.add_sequence()
        rows = rng.standard_normal((11, 8)).astype(np.float16)
        for i in range(11):
            store.append(sid, rows[i], -rows[i])
        k, v = store.gather(sid)
        np.testing.assert_array_equal(k, rows)
        np.testing.assert_array_equal(v, -rows)

    def test_empty_sequence_gathers_empty(self):
        store = PagedKVStore(4, 4, 8)
        sid = store.add_sequence()
        k, v = store.gather(sid)
        assert k.shape == (0, 8)

    def test_append_rows_matches_per_token_appends(self, rng):
        """The slab write is a pure batching of append(): same pages, same
        gather, including across page boundaries and a pre-filled tail."""
        slab = PagedKVStore(n_pages=16, page_size=4, head_dim=8)
        loop = PagedKVStore(n_pages=16, page_size=4, head_dim=8)
        sid_a, sid_b = slab.add_sequence(), loop.add_sequence()
        head = rng.standard_normal((3, 8)).astype(np.float16)
        rows = rng.standard_normal((10, 8)).astype(np.float16)
        for i in range(3):
            slab.append(sid_a, head[i], -head[i])
            loop.append(sid_b, head[i], -head[i])
        slab.append_rows(sid_a, rows, -rows)
        for i in range(10):
            loop.append(sid_b, rows[i], -rows[i])
        k_a, v_a = slab.gather(sid_a)
        k_b, v_b = loop.gather(sid_b)
        np.testing.assert_array_equal(k_a, k_b)
        np.testing.assert_array_equal(v_a, v_b)

    def test_append_rows_rejects_mismatched_kv(self, rng):
        store = PagedKVStore(4, 4, 8)
        sid = store.add_sequence()
        with pytest.raises(ValueError, match="share a shape"):
            store.append_rows(sid, np.zeros((3, 8)), np.zeros((2, 8)))

    def test_recycled_pages_interleave_correctly(self, rng):
        """A sequence written after another was released must read back its
        own rows even though its pages are physically scattered."""
        store = PagedKVStore(n_pages=4, page_size=2, head_dim=4)
        a = store.add_sequence()
        for i in range(6):
            store.append(a, np.full(4, i), np.full(4, i))
        store.release(a)
        b = store.add_sequence()
        rows = rng.standard_normal((7, 4)).astype(np.float16)
        # 7 rows need 4 pages of 2 -> reuses all freed pages, out of order.
        with pytest.raises(Exception):
            for i in range(9):  # 9 rows > 8 slots: must OOM at some point
                store.append(b, rows[i % 7], rows[i % 7])
        store.release(b)
        c = store.add_sequence()
        for i in range(7):
            store.append(c, rows[i], rows[i])
        k, _ = store.gather(c)
        np.testing.assert_array_equal(k, rows)

    def test_attention_over_paged_rows_matches_flat(self, rng):
        """The end-to-end contract: paged storage is numerically invisible."""
        store = PagedKVStore(n_pages=32, page_size=8, head_dim=16)
        sid = store.add_sequence()
        k_flat = rng.standard_normal((50, 16)).astype(np.float16)
        v_flat = rng.standard_normal((50, 16)).astype(np.float16)
        for i in range(50):
            store.append(sid, k_flat[i], v_flat[i])
        k_paged, v_paged = store.gather(sid)
        q = rng.standard_normal((1, 16)).astype(np.float32)
        out_paged = reference_attention(q, k_paged.astype(np.float32), v_paged.astype(np.float32))
        out_flat = reference_attention(q, k_flat.astype(np.float32), v_flat.astype(np.float32))
        np.testing.assert_allclose(out_paged, out_flat, rtol=1e-6)

    def test_physical_bytes_fixed(self):
        store = PagedKVStore(8, 16, 32)
        assert store.physical_nbytes == 2 * 8 * 16 * 32 * 2


class TestPagedProperty:
    @given(
        page_size=st.sampled_from([2, 4, 8]),
        lengths=st.lists(st.integers(1, 30), min_size=1, max_size=5),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_multi_sequence_isolation(self, page_size, lengths, seed):
        """Concurrent sequences never see each other's rows."""
        rng = np.random.default_rng(seed)
        store = PagedKVStore(n_pages=256, page_size=page_size, head_dim=4)
        expected = []
        for n in lengths:
            sid = store.add_sequence()
            rows = rng.standard_normal((n, 4)).astype(np.float16)
            for i in range(n):
                store.append(sid, rows[i], rows[i])
            expected.append((sid, rows))
        for sid, rows in expected:
            k, _ = store.gather(sid)
            np.testing.assert_array_equal(k, rows)


class TestFormatParameterization:
    """Page dtype/width follow the cache format, not a hard-coded FP16."""

    def test_default_stays_fp16(self):
        store = PagedKVStore(8, 16, 32)
        assert store.dtype == np.float16
        assert store.bits_per_value == 16.0
        assert store.physical_nbytes == store.working_nbytes

    def test_low_bit_format_reports_packed_footprint(self):
        from repro.model.config import LLAMA31_8B
        from repro.model.memory import int_format

        fmt = int_format(4, LLAMA31_8B)
        store = PagedKVStore.for_format(8, 16, 32, fmt, heads=LLAMA31_8B.hkv)
        # 2 tensors * 8 pages * 16 tokens * 32 dims * 4 bits / 8 + meta.
        values = 2 * 8 * 16 * 32
        meta = 8 * 16 * fmt.meta_bytes_per_token_layer / LLAMA31_8B.hkv
        assert store.physical_nbytes == int(values * 4 / 8.0 + meta)
        # The numeric rows still live in fp16 working arrays (4-bit has no
        # numpy dtype); the honest number is the format's, not the array's.
        assert store.working_nbytes == values * 2
        assert store.physical_nbytes < store.working_nbytes

    def test_fp32_format_widens_the_working_dtype(self):
        from repro.model.memory import CacheFormat

        fmt = CacheFormat(name="FP32", bits_per_value=32.0)
        store = PagedKVStore.for_format(4, 8, 16, fmt)
        assert store.dtype == np.float32
        assert store.physical_nbytes == store.working_nbytes

    def test_round_trip_unaffected_by_accounting(self, rng):
        from repro.model.config import LLAMA31_8B
        from repro.model.memory import int_format

        store = PagedKVStore.for_format(8, 4, 8, int_format(2, LLAMA31_8B), heads=8)
        sid = store.add_sequence()
        rows = rng.standard_normal((9, 8)).astype(np.float16)
        store.append_rows(sid, rows, -rows)
        k, v = store.gather(sid)
        np.testing.assert_array_equal(k, rows)
        np.testing.assert_array_equal(v, -rows)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            PagedKVStore(4, 4, 8, bits_per_value=0)
        with pytest.raises(ValueError):
            PagedKVStore(4, 4, 8, meta_bytes_per_token=-1.0)
