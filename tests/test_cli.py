"""CLI entry point (`python -m repro`)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_devices(self, capsys):
        main(["devices"])
        out = capsys.readouterr().out
        for name in ("a100", "rtx4090", "h100", "rtx5090", "rtx_pro_6000"):
            assert name in out

    def test_demo(self, capsys):
        main(["demo"])
        out = capsys.readouterr().out
        assert "compression" in out
        assert "max error" in out

    def test_sweep(self, capsys):
        main(["sweep", "--arch", "rtx4090"])
        out = capsys.readouterr().out
        assert "BitDecoding" in out
        assert "131072" in out

    def test_experiment(self, capsys):
        main(["experiment", "table2"])
        out = capsys.readouterr().out
        assert "Marlin" in out

    def test_serve_sim(self, capsys):
        main([
            "serve-sim", "--requests", "6", "--rate", "100",
            "--prompt-len", "512", "--output-len", "16",
        ])
        out = capsys.readouterr().out
        for token in ("FP16", "INT4", "INT2", "tok/s", "p99 tbt ms", "whole-prompt prefill"):
            assert token in out

    def test_serve_sim_chunked(self, capsys):
        main([
            "serve-sim", "--requests", "6", "--rate", "100",
            "--prompt-len", "512", "--output-len", "16",
            "--prefill-chunk", "128",
        ])
        out = capsys.readouterr().out
        assert "chunked prefill 128 tok/step" in out
        for token in ("FP16", "INT4", "INT2", "tok/s"):
            assert token in out

    def test_serve_sim_step_cap_and_json(self, capsys):
        import json

        main([
            "serve-sim", "--requests", "6", "--rate", "100",
            "--prompt-len", "512", "--output-len", "64",
            "--steps", "5", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert [r["format_name"] for r in payload["reports"]] == ["FP16", "INT4", "INT2"]
        assert all(r["decode_steps"] <= 5 for r in payload["reports"])

    def test_serve_sim_chunked_json(self, capsys):
        import json

        main([
            "serve-sim", "--requests", "6", "--rate", "100",
            "--prompt-len", "512", "--output-len", "16",
            "--prefill-chunk", "128", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["prefill_chunk_tokens"] == 128
        for report in payload["reports"]:
            assert report["prefill_chunk_tokens"] == 128
            assert report["completed"] == 6
            assert report["p99_tbt_s"] is not None

    def test_unknown_experiment_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestServeSimExecute:
    _ARGS = [
        "serve-sim", "--model", "tiny", "--execute",
        "--requests", "4", "--rate", "100",
        "--prompt-len", "40", "--output-len", "6",
        "--pages", "64", "--max-batch", "4", "--steps", "120",
    ]

    def test_execute_reports_matching_schedule(self, capsys):
        main(self._ARGS)
        out = capsys.readouterr().out
        assert "token counts match the analytical schedule: True" in out
        assert "executed" in out and "analytical" in out

    def test_execute_json_carries_both_reports(self, capsys):
        import json

        main(self._ARGS + ["--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "execute"
        assert payload["schedule_match"] is True
        executed = payload["reports"]["executed"]
        analytical = payload["reports"]["analytical"]
        assert executed["executed_tokens"] == executed["total_generated_tokens"]
        assert analytical["executed_tokens"] is None
        assert executed["total_generated_tokens"] == analytical["total_generated_tokens"]
