"""CLI entry point (`python -m repro`)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_devices(self, capsys):
        main(["devices"])
        out = capsys.readouterr().out
        for name in ("a100", "rtx4090", "h100", "rtx5090", "rtx_pro_6000"):
            assert name in out

    def test_demo(self, capsys):
        main(["demo"])
        out = capsys.readouterr().out
        assert "compression" in out
        assert "max error" in out

    def test_sweep(self, capsys):
        main(["sweep", "--arch", "rtx4090"])
        out = capsys.readouterr().out
        assert "BitDecoding" in out
        assert "131072" in out

    def test_experiment(self, capsys):
        main(["experiment", "table2"])
        out = capsys.readouterr().out
        assert "Marlin" in out

    def test_unknown_experiment_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
