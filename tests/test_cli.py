"""CLI entry point (`python -m repro`)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_devices(self, capsys):
        main(["devices"])
        out = capsys.readouterr().out
        for name in ("a100", "rtx4090", "h100", "rtx5090", "rtx_pro_6000"):
            assert name in out

    def test_demo(self, capsys):
        main(["demo"])
        out = capsys.readouterr().out
        assert "compression" in out
        assert "max error" in out

    def test_sweep(self, capsys):
        main(["sweep", "--arch", "rtx4090"])
        out = capsys.readouterr().out
        assert "BitDecoding" in out
        assert "131072" in out

    def test_experiment(self, capsys):
        main(["experiment", "table2"])
        out = capsys.readouterr().out
        assert "Marlin" in out

    def test_serve_sim(self, capsys):
        main([
            "serve-sim", "--requests", "6", "--rate", "100",
            "--prompt-len", "512", "--output-len", "16",
        ])
        out = capsys.readouterr().out
        for token in ("FP16", "INT4", "INT2", "tok/s", "p99 tbt ms", "whole-prompt prefill"):
            assert token in out

    def test_serve_sim_chunked(self, capsys):
        main([
            "serve-sim", "--requests", "6", "--rate", "100",
            "--prompt-len", "512", "--output-len", "16",
            "--prefill-chunk", "128",
        ])
        out = capsys.readouterr().out
        assert "chunked prefill 128 tok/step" in out
        for token in ("FP16", "INT4", "INT2", "tok/s"):
            assert token in out

    def test_serve_sim_step_cap_and_json(self, capsys):
        import json

        main([
            "serve-sim", "--requests", "6", "--rate", "100",
            "--prompt-len", "512", "--output-len", "64",
            "--steps", "5", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert [r["format_name"] for r in payload["reports"]] == ["FP16", "INT4", "INT2"]
        assert all(r["decode_steps"] <= 5 for r in payload["reports"])

    def test_serve_sim_chunked_json(self, capsys):
        import json

        main([
            "serve-sim", "--requests", "6", "--rate", "100",
            "--prompt-len", "512", "--output-len", "16",
            "--prefill-chunk", "128", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["prefill_chunk_tokens"] == 128
        for report in payload["reports"]:
            assert report["prefill_chunk_tokens"] == 128
            assert report["completed"] == 6
            assert report["p99_tbt_s"] is not None

    def test_unknown_experiment_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestServeSimExecute:
    _ARGS = [
        "serve-sim", "--model", "tiny", "--execute",
        "--requests", "4", "--rate", "100",
        "--prompt-len", "40", "--output-len", "6",
        "--pages", "64", "--max-batch", "4", "--steps", "120",
    ]

    def test_execute_reports_matching_schedule(self, capsys):
        main(self._ARGS)
        out = capsys.readouterr().out
        assert "token counts match the analytical schedule: True" in out
        assert "executed" in out and "analytical" in out

    def test_execute_json_carries_both_reports(self, capsys):
        import json

        main(self._ARGS + ["--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "execute"
        assert payload["schedule_match"] is True
        executed = payload["reports"]["executed"]
        analytical = payload["reports"]["analytical"]
        assert executed["executed_tokens"] == executed["total_generated_tokens"]
        assert analytical["executed_tokens"] is None
        assert executed["total_generated_tokens"] == analytical["total_generated_tokens"]


class TestServeSimPrefixCache:
    # Prompts long enough that half of one is page-aligned in *both* page
    # geometries: the analytical default (64 tok) and execute's N_r (32).
    _ARGS = [
        "serve-sim", "--model", "tiny", "--requests", "8", "--rate", "5000",
        "--prompt-len", "256", "--output-len", "24", "--max-batch", "8",
        "--seed", "7", "--shared-prefix", "0.5", "--prefix-cache",
    ]

    def test_analytical_table_has_hit_columns(self, capsys):
        main(self._ARGS)
        out = capsys.readouterr().out
        assert "prefix cache on (50% shared, 1 group)" in out
        assert "hit %" in out and "eff cap" in out

    def test_analytical_json_carries_hit_rate(self, capsys):
        import json

        main(self._ARGS + ["--json"])
        payload = json.loads(capsys.readouterr().out)
        for report in payload["reports"]:
            assert report["prefix_cache_enabled"] is True
            assert report["prefix_hit_rate"] > 0
            assert report["effective_capacity_pages"] > report["n_pages"]

    def test_execute_runs_all_cross_checks(self, capsys):
        main(self._ARGS + ["--execute", "--pages", "96"])
        out = capsys.readouterr().out
        for check in (
            "check schedule_match: True",
            "check share_vs_copy_schedule_match: True",
            "check share_vs_copy_bit_exact: True",
            "check hit_rate_positive: True",
            "check faster_than_cache_off: True",
            "check more_effective_capacity: True",
        ):
            assert check in out

    def test_execute_json_carries_all_reports(self, capsys):
        import json

        main(self._ARGS + ["--execute", "--pages", "96", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["prefix_cache"] is True
        assert all(payload["checks"].values())
        assert set(payload["reports"]) == {
            "analytical", "executed", "executed_copy", "cache_off",
        }
        assert payload["reports"]["executed"]["prefix_hit_rate"] > 0
        assert payload["reports"]["cache_off"]["prefix_hit_rate"] == 0

    def test_no_prefix_cache_flag_restores_plain_run(self, capsys):
        main([
            "serve-sim", "--model", "tiny", "--requests", "4", "--rate", "100",
            "--prompt-len", "64", "--output-len", "8", "--no-prefix-cache",
        ])
        out = capsys.readouterr().out
        assert "prefix cache on" not in out
        assert "hit %" not in out


class TestServeSimCluster:
    _ARGS = [
        "serve-sim", "--model", "tiny", "--execute",
        "--tp", "2", "--replicas", "2", "--router", "prefix_affinity",
        "--prefix-cache", "--requests", "8", "--rate", "200",
        "--prompt-len", "96", "--output-len", "12",
        "--shared-prefix", "0.5", "--prefix-groups", "3", "--seed", "3",
    ]

    def test_executed_cluster_passes_all_checks(self, capsys):
        main(self._ARGS)
        out = capsys.readouterr().out
        assert "tp 2 x 2 replicas" in out
        assert "router prefix_affinity" in out
        assert "check exactly_once_across_replicas: True" in out
        assert "check tp_decode_bit_exact_vs_single_rank: True" in out

    def test_executed_cluster_json(self, capsys):
        import json

        main(self._ARGS + ["--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "cluster-execute"
        assert payload["tp"] == 2 and payload["replicas"] == 2
        assert payload["allreduce_tax_ms"] > 0
        assert payload["rank_attention_ms"] < payload["full_attention_ms"]
        assert all(payload["checks"].values())
        cluster = payload["cluster"]
        assert cluster["completed"] == 8
        assert cluster["cross_replica_prefix_misses"] == 0
        assert len(cluster["per_replica"]) == 2

    def test_analytical_cluster_runs(self, capsys):
        main([
            "serve-sim", "--tp", "2", "--replicas", "2",
            "--router", "least_loaded", "--requests", "8", "--rate", "100",
            "--prompt-len", "256", "--output-len", "8",
        ])
        out = capsys.readouterr().out
        assert "analytical" in out
        assert "8 done of 8" in out

    def test_router_without_replicas_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve-sim", "--router", "prefix_affinity"])
        assert exc.value.code == 2

    def test_nonpositive_tp_or_replicas_exits_2(self):
        for flags in (["--tp", "0"], ["--replicas", "0"], ["--tp", "-1"]):
            with pytest.raises(SystemExit) as exc:
                main(["serve-sim", "--requests", "4", *flags])
            assert exc.value.code == 2

    def test_tp_must_divide_kv_heads_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve-sim", "--model", "tiny", "--tp", "3", "--requests", "4"])
        assert exc.value.code == 2

    def test_cluster_rejects_chaos_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main([
                "serve-sim", "--model", "tiny", "--replicas", "2",
                "--chaos", "7", "--requests", "4",
            ])
        assert exc.value.code == 2

    def test_cluster_rejects_swap_preemption_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main([
                "serve-sim", "--model", "tiny", "--tp", "2",
                "--preemption", "swap", "--requests", "4",
            ])
        assert exc.value.code == 2
