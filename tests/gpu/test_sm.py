"""Occupancy model invariants."""

import pytest

from repro.gpu.sm import MAX_BLOCKS_PER_SM, occupancy


class TestLimits:
    def test_warp_limit_binds(self, a100):
        occ = occupancy(a100, grid_blocks=10000, warps_per_block=16, regs_per_thread=16)
        assert occ.blocks_per_sm == a100.max_warps_per_sm // 16

    def test_smem_limit_binds(self, a100):
        occ = occupancy(a100, 10000, 4, smem_per_block_bytes=100 * 1024)
        assert occ.blocks_per_sm == a100.smem_per_sm_bytes // (100 * 1024)

    def test_register_limit_binds(self, a100):
        # 255 regs/thread x 256 threads = 65280 regs -> 1 block.
        occ = occupancy(a100, 10000, 8, regs_per_thread=255)
        assert occ.blocks_per_sm == 1

    def test_block_too_large_raises(self, a100):
        with pytest.raises(ValueError, match="shared memory"):
            occupancy(a100, 1, 4, smem_per_block_bytes=200 * 1024)
        with pytest.raises(ValueError, match="warps"):
            occupancy(a100, 1, 128)

    def test_zero_grid_rejected(self, a100):
        with pytest.raises(ValueError):
            occupancy(a100, 0, 4)


class TestDerived:
    def test_small_grid_activates_one_sm_per_block(self, a100):
        occ = occupancy(a100, 8, 4)
        assert occ.active_sms == 8
        assert occ.inflight_warps == 32
        assert occ.waves == 1

    def test_large_grid_fills_machine(self, a100):
        occ = occupancy(a100, 100000, 4, smem_per_block_bytes=64 * 1024)
        assert occ.active_sms == a100.sm_count
        assert occ.waves > 1
        assert occ.inflight_warps == occ.blocks_per_sm * a100.sm_count * 4

    def test_waves_ceiling(self, a100):
        occ = occupancy(a100, a100.sm_count + 1, 4, smem_per_block_bytes=164 * 1024)
        # one block per SM -> second wave for the +1 block
        assert occ.blocks_per_sm == 1
        assert occ.waves == 2

    def test_active_fraction_in_unit_interval(self, any_arch):
        occ = occupancy(any_arch, 3, 4)
        assert 0 < occ.active_sm_fraction <= 1.0

    def test_blocks_per_sm_capped(self, a100):
        occ = occupancy(a100, 10, 1, smem_per_block_bytes=0)
        assert occ.blocks_per_sm <= MAX_BLOCKS_PER_SM
