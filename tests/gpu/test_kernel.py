"""Kernel time-model invariants."""

import pytest

from repro.gpu.kernel import KernelLaunch, simulate_kernel, sum_results
from repro.gpu.trace import OpTrace


def _mem_launch(nbytes, grid=1024, hide=1.0, path="sm80", launches=1):
    t = OpTrace()
    t.gmem_read(nbytes)
    return KernelLaunch(
        name="mem", trace=t, grid_blocks=grid, warps_per_block=4,
        smem_per_block_bytes=16 * 1024, hide_factor=hide,
        instruction_path=path, launches=launches,
    )


class TestValidation:
    def test_hide_factor_bounds(self):
        with pytest.raises(ValueError):
            _mem_launch(1e6, hide=1.5)

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError):
            _mem_launch(1e6, path="sm70")

    def test_sm90_path_requires_wgmma(self, a100, h100):
        launch = _mem_launch(1e6, path="sm90")
        with pytest.raises(ValueError, match="wgmma"):
            simulate_kernel(a100, launch)
        assert simulate_kernel(h100, launch).time_s > 0

    def test_fp4_path_requires_blackwell(self, h100, rtx5090):
        launch = _mem_launch(1e6, path="blackwell_fp4")
        with pytest.raises(ValueError, match="FP4"):
            simulate_kernel(h100, launch)
        assert simulate_kernel(rtx5090, launch).time_s > 0


class TestTimeModel:
    def test_memory_bound_kernel_hits_roofline(self, a100):
        res = simulate_kernel(a100, _mem_launch(2e9))
        ideal = 2e9 / a100.dram_bw_bytes_per_s
        assert res.exec_time_s == pytest.approx(ideal, rel=0.05)
        assert res.bound_by == "dram"

    def test_launch_overhead_counted(self, a100):
        one = simulate_kernel(a100, _mem_launch(1e6, launches=1))
        five = simulate_kernel(a100, _mem_launch(1e6, launches=5))
        delta = five.launch_time_s - one.launch_time_s
        assert delta == pytest.approx(4 * a100.kernel_launch_us * 1e-6)

    def test_more_bytes_more_time(self, any_arch):
        t1 = simulate_kernel(any_arch, _mem_launch(1e8)).time_s
        t2 = simulate_kernel(any_arch, _mem_launch(4e8)).time_s
        assert t2 > t1

    def test_hide_factor_zero_serializes(self, a100):
        t = OpTrace()
        t.gmem_read(1e9)
        t.tensor_core(1e11)
        overlapped = KernelLaunch(
            name="k", trace=t, grid_blocks=1024, warps_per_block=4, hide_factor=1.0
        )
        serial = KernelLaunch(
            name="k", trace=t, grid_blocks=1024, warps_per_block=4, hide_factor=0.0
        )
        t_overlap = simulate_kernel(a100, overlapped).exec_time_s
        t_serial = simulate_kernel(a100, serial).exec_time_s
        assert t_serial > t_overlap
        times = simulate_kernel(a100, serial).resource_times
        assert t_serial == pytest.approx(sum(times.values()), rel=1e-6)

    def test_legacy_path_slower_on_hopper_only(self, a100, h100):
        launch = _mem_launch(1e9)
        a_legacy = simulate_kernel(a100, launch).exec_time_s
        h_legacy = simulate_kernel(h100, launch).exec_time_s
        h_native = simulate_kernel(h100, _mem_launch(1e9, path="sm90")).exec_time_s
        assert h_legacy == pytest.approx(h_native / h100.legacy_path_efficiency, rel=1e-6)
        # A100 is the sm80 native home: no penalty anywhere.
        ideal = 1e9 / a100.dram_bw_bytes_per_s
        assert a_legacy == pytest.approx(ideal, rel=0.05)

    def test_small_grid_underutilizes_bandwidth(self, a100):
        small = simulate_kernel(a100, _mem_launch(1e9, grid=8)).exec_time_s
        large = simulate_kernel(a100, _mem_launch(1e9, grid=4096)).exec_time_s
        assert small > 2 * large

    def test_barriers_add_time(self, a100):
        t = OpTrace()
        t.gmem_read(1e6)
        t.barriers_per_block = 1000
        with_barriers = KernelLaunch(
            name="k", trace=t, grid_blocks=128, warps_per_block=4
        )
        t2 = OpTrace()
        t2.gmem_read(1e6)
        without = KernelLaunch(name="k", trace=t2, grid_blocks=128, warps_per_block=4)
        assert (
            simulate_kernel(a100, with_barriers).time_s
            > simulate_kernel(a100, without).time_s
        )

    def test_subtrace_times_reported(self, a100):
        t = OpTrace()
        t.gmem_read(1e9)
        sub = OpTrace()
        sub.alu_ops = 1e9
        t.merge(sub)
        launch = KernelLaunch(
            name="k", trace=t, grid_blocks=1024, warps_per_block=4,
            subtraces={"dequant": sub},
        )
        res = simulate_kernel(a100, launch)
        assert 0 < res.subtrace_times["dequant"] < res.time_s


class TestComposition:
    def test_sum_results_adds_times(self, a100):
        r1 = simulate_kernel(a100, _mem_launch(1e8))
        r2 = simulate_kernel(a100, _mem_launch(2e8))
        total = sum_results([r1, r2])
        assert total.time_s == pytest.approx(r1.time_s + r2.time_s)
        assert total.launch_time_s == pytest.approx(r1.launch_time_s + r2.launch_time_s)

    def test_sum_results_empty_rejected(self):
        with pytest.raises(ValueError):
            sum_results([])

    def test_time_unit_conversions(self, a100):
        res = simulate_kernel(a100, _mem_launch(1e9))
        assert res.time_ms == pytest.approx(res.time_s * 1e3)
        assert res.time_us == pytest.approx(res.time_s * 1e6)
