"""Property tests on the performance model itself.

A cost model earns trust through invariants: more work never takes less
time, faster hardware never loses, and overlap never hurts.  Hypothesis
sweeps the model over randomized workloads to pin these.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.arch import get_arch
from repro.gpu.kernel import KernelLaunch, simulate_kernel
from repro.gpu.trace import OpTrace


def _launch(read_gb, tc_gflops, alu_gops, grid, hide):
    t = OpTrace()
    t.gmem_read(read_gb * 1e9)
    t.tensor_core(tc_gflops * 1e9)
    t.alu_ops = alu_gops * 1e9
    return KernelLaunch(
        name="k", trace=t, grid_blocks=grid, warps_per_block=4,
        smem_per_block_bytes=32 * 1024, hide_factor=hide,
    )


workloads = st.tuples(
    st.floats(0.01, 10),    # GB read
    st.floats(0.1, 1000),   # TC GFLOPs
    st.floats(0.01, 10),    # ALU Gops
    st.integers(1, 8192),   # grid
    st.floats(0, 1),        # hide
)


class TestModelInvariants:
    @given(workloads)
    @settings(max_examples=60, deadline=None)
    def test_more_bytes_never_faster(self, w):
        read, tc, alu, grid, hide = w
        arch = get_arch("a100")
        base = simulate_kernel(arch, _launch(read, tc, alu, grid, hide)).time_s
        more = simulate_kernel(arch, _launch(read * 2, tc, alu, grid, hide)).time_s
        assert more >= base * 0.999

    @given(workloads)
    @settings(max_examples=60, deadline=None)
    def test_overlap_never_hurts(self, w):
        read, tc, alu, grid, _ = w
        arch = get_arch("a100")
        serial = simulate_kernel(arch, _launch(read, tc, alu, grid, 0.0)).time_s
        overlapped = simulate_kernel(arch, _launch(read, tc, alu, grid, 1.0)).time_s
        assert overlapped <= serial * 1.001

    @given(workloads)
    @settings(max_examples=60, deadline=None)
    def test_time_strictly_positive(self, w):
        arch = get_arch("rtx4090")
        launch = _launch(*w)
        if launch.smem_per_block_bytes > arch.smem_per_sm_bytes:
            return
        assert simulate_kernel(arch, launch).time_s > 0

    @given(workloads)
    @settings(max_examples=40, deadline=None)
    def test_wider_machine_never_slower_when_saturated(self, w):
        """H100 strictly dominates A100 on bandwidth and compute; a
        saturated memory/TC workload must not run slower there."""
        read, tc, alu, grid, hide = w
        if grid < 2000:
            return  # only compare when both machines are saturated
        a100 = get_arch("a100")
        h100 = get_arch("h100")
        t_a = simulate_kernel(a100, _launch(read, tc, alu, grid, hide)).exec_time_s
        launch = _launch(read, tc, alu, grid, hide)
        launch.instruction_path = "sm90"  # native path: no legacy penalty
        t_h = simulate_kernel(h100, launch).exec_time_s
        assert t_h <= t_a * 1.01

    @given(st.floats(0.05, 5), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_ramp_monotone_in_grid(self, read_gb, scale):
        """More blocks (up to saturation) never slow a memory workload."""
        arch = get_arch("a100")
        small = simulate_kernel(arch, _launch(read_gb, 0, 0, 8, 1.0)).exec_time_s
        large = simulate_kernel(arch, _launch(read_gb, 0, 0, 8 * scale, 1.0)).exec_time_s
        assert large <= small * 1.001


class TestArchPerturbations:
    def test_bandwidth_increase_speeds_memory_kernel(self):
        arch = get_arch("a100")
        boosted = dataclasses.replace(arch, dram_bw_gbs=arch.dram_bw_gbs * 2)
        launch = _launch(5, 1, 0.1, 4096, 1.0)
        t_base = simulate_kernel(arch, launch).exec_time_s
        t_boost = simulate_kernel(boosted, launch).exec_time_s
        assert t_boost == pytest.approx(t_base / 2, rel=0.05)

    def test_tc_increase_speeds_compute_kernel(self):
        arch = get_arch("a100")
        boosted = dataclasses.replace(arch, tc_fp16_tflops=arch.tc_fp16_tflops * 2)
        launch = _launch(0.01, 5000, 0.01, 4096, 1.0)
        t_base = simulate_kernel(arch, launch).exec_time_s
        t_boost = simulate_kernel(boosted, launch).exec_time_s
        assert t_boost < t_base * 0.7
