"""OpTrace accounting invariants (including hypothesis properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.trace import AccessPattern, OpTrace


class TestRecording:
    def test_coalesced_read_effective_equals_raw(self):
        t = OpTrace()
        t.gmem_read(1000)
        assert t.gmem_read_bytes == 1000
        assert t.gmem_read_bytes_effective == 1000

    def test_strided_read_doubles_effective(self):
        t = OpTrace()
        t.gmem_read(1000, AccessPattern.STRIDED)
        assert t.gmem_read_bytes == 1000
        assert t.gmem_read_bytes_effective == 2000

    def test_scattered_write_quadruples_effective(self):
        t = OpTrace()
        t.gmem_write(1000, AccessPattern.SCATTERED)
        assert t.gmem_write_bytes_effective == 4000

    def test_smem_conflict_inflates_effective(self):
        t = OpTrace()
        t.smem_traffic(256, conflict_factor=4.0)
        assert t.smem_bytes == 256
        assert t.smem_bytes_effective == 1024

    def test_smem_conflict_below_one_rejected(self):
        t = OpTrace()
        with pytest.raises(ValueError):
            t.smem_traffic(256, conflict_factor=0.5)

    def test_negative_bytes_rejected(self):
        t = OpTrace()
        with pytest.raises(ValueError):
            t.gmem_read(-1)
        with pytest.raises(ValueError):
            t.gmem_write(-1)
        with pytest.raises(ValueError):
            t.l2_read(-1)

    def test_tensor_core_by_precision(self):
        t = OpTrace()
        t.tensor_core(100, "fp16")
        t.tensor_core(50, "fp16")
        t.tensor_core(25, "fp4")
        assert t.tc_flops == {"fp16": 150, "fp4": 25}
        assert t.total_tc_flops == 175

    def test_fresh_trace_is_empty(self):
        assert OpTrace().is_empty()

    def test_any_recording_makes_non_empty(self):
        t = OpTrace()
        t.sfu_ops += 1
        assert not t.is_empty()


class TestAlgebra:
    def test_merge_accumulates_all_counters(self):
        a, b = OpTrace(), OpTrace()
        a.gmem_read(100)
        a.tensor_core(10)
        b.gmem_read(50, AccessPattern.STRIDED)
        b.fma_flops = 7
        a.merge(b)
        assert a.gmem_read_bytes == 150
        assert a.gmem_read_bytes_effective == 200
        assert a.fma_flops == 7
        assert a.total_tc_flops == 10

    def test_merge_returns_self(self):
        a = OpTrace()
        assert a.merge(OpTrace()) is a

    def test_scaled_multiplies_everything(self):
        t = OpTrace()
        t.gmem_read(100)
        t.tensor_core(10, "fp16")
        t.alu_ops = 3
        t.barriers_per_block = 2
        s = t.scaled(2.5)
        assert s.gmem_read_bytes == 250
        assert s.tc_flops["fp16"] == 25
        assert s.alu_ops == 7.5
        assert s.barriers_per_block == 5
        # original untouched
        assert t.gmem_read_bytes == 100

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            OpTrace().scaled(-1)

    def test_merged_of_empty_list_is_empty(self):
        assert OpTrace.merged([]).is_empty()

    def test_without_subtracts_and_clamps(self):
        t = OpTrace()
        t.gmem_read(100)
        t.alu_ops = 10
        sub = OpTrace()
        sub.gmem_read(40)
        sub.alu_ops = 50  # more than present -> clamps to 0
        out = t.without(sub)
        assert out.gmem_read_bytes == 60
        assert out.alu_ops == 0
        assert t.alu_ops == 10  # original untouched

    def test_without_whole_trace_is_empty(self):
        t = OpTrace()
        t.gmem_read(100, AccessPattern.STRIDED)
        t.tensor_core(5)
        t.sfu_ops = 2
        out = t.without(t)
        assert out.is_empty()


@st.composite
def traces(draw):
    t = OpTrace()
    t.gmem_read(draw(st.floats(0, 1e9)))
    t.gmem_write(draw(st.floats(0, 1e9)), AccessPattern.STRIDED)
    t.smem_traffic(draw(st.floats(0, 1e8)), draw(st.floats(1, 8)))
    t.tensor_core(draw(st.floats(0, 1e12)))
    t.fma_flops = draw(st.floats(0, 1e12))
    t.alu_ops = draw(st.floats(0, 1e10))
    t.sfu_ops = draw(st.floats(0, 1e10))
    return t


class TestProperties:
    @given(traces(), traces())
    @settings(max_examples=50, deadline=None)
    def test_merge_is_commutative_on_totals(self, a, b):
        left = a.scaled(1.0).merge(b)
        right = b.scaled(1.0).merge(a)
        assert left.total_gmem_bytes == pytest.approx(right.total_gmem_bytes)
        assert left.total_tc_flops == pytest.approx(right.total_tc_flops)
        assert left.alu_ops == pytest.approx(right.alu_ops)

    @given(traces(), st.floats(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_scaling_distributes_over_totals(self, t, k):
        assert t.scaled(k).total_gmem_bytes == pytest.approx(t.total_gmem_bytes * k)

    @given(traces())
    @settings(max_examples=50, deadline=None)
    def test_effective_bytes_never_below_raw(self, t):
        assert t.gmem_read_bytes_effective >= t.gmem_read_bytes
        assert t.gmem_write_bytes_effective >= t.gmem_write_bytes
        assert t.smem_bytes_effective >= t.smem_bytes

    @given(traces(), traces())
    @settings(max_examples=50, deadline=None)
    def test_without_never_negative(self, a, b):
        out = a.without(b)
        assert out.gmem_read_bytes >= 0
        assert out.alu_ops >= 0
        assert out.smem_bytes >= 0
        assert all(v >= 0 for v in out.tc_flops.values())
