"""Warp-layout latency-hiding model (the Table III mechanism)."""

import pytest

from repro.gpu.warp import (
    WarpLayout,
    combined_hide_factor,
    dequant_hide_factor,
    memory_hide_factor,
)


class TestWarpLayout:
    def test_warps_per_block(self):
        assert WarpLayout(wm=1, wn=4).warps_per_block == 4
        assert WarpLayout(wm=2, wn=2).warps_per_block == 4

    def test_positive_required(self):
        with pytest.raises(ValueError):
            WarpLayout(wm=0, wn=4)


class TestDequantHiding:
    def test_single_warp_cannot_hide(self):
        # The original FlashAttention layout: dequant fully serializes.
        assert dequant_hide_factor(WarpLayout(wm=4, wn=1)) == 0.0

    def test_wider_wn_hides_more(self):
        h = [dequant_hide_factor(WarpLayout(wm=1, wn=w)) for w in (1, 2, 4, 8)]
        assert h == sorted(h)
        assert h[0] == 0.0
        assert h[2] == pytest.approx(0.75)

    def test_pipeline_off_halves_overlap(self):
        on = dequant_hide_factor(WarpLayout(wm=1, wn=4), pipelined=True)
        off = dequant_hide_factor(WarpLayout(wm=1, wn=4), pipelined=False)
        assert off == pytest.approx(on / 2)


class TestMemoryHiding:
    def test_no_warps_no_hiding(self):
        assert memory_hide_factor(0) == 0.0

    def test_saturates_at_eight_warps(self):
        assert memory_hide_factor(8) == 1.0
        assert memory_hide_factor(100) == 1.0

    def test_monotone(self):
        vals = [memory_hide_factor(w) for w in (1, 2, 4, 8)]
        assert vals == sorted(vals)


class TestCombined:
    def test_weakest_mechanism_governs(self):
        layout = WarpLayout(wm=1, wn=8)  # great dequant hiding
        assert combined_hide_factor(layout, inflight_warps_per_sm=1) == pytest.approx(
            memory_hide_factor(1)
        )

    def test_bitdecoding_layout_beats_original(self):
        original = combined_hide_factor(WarpLayout(wm=4, wn=1), 16)
        bitdecoding = combined_hide_factor(WarpLayout(wm=1, wn=4), 16)
        assert bitdecoding > original

    def test_bounded(self):
        for wn in (1, 2, 4):
            for warps in (1, 8, 64):
                h = combined_hide_factor(WarpLayout(1, wn), warps)
                assert 0.0 <= h <= 1.0
