"""BitDecoding reproduction test suite (tests/gpu)."""
