"""Architecture-spec invariants."""

import pytest

from repro.gpu.arch import GENERATIONS, GPU_REGISTRY, ArchSpec, get_arch


class TestRegistry:
    def test_all_expected_devices_registered(self):
        assert set(GPU_REGISTRY) == {
            "a100", "rtx4090", "h100", "rtx5090", "rtx_pro_6000",
        }

    def test_lookup_is_case_insensitive(self):
        assert get_arch("A100") is get_arch("a100")

    def test_unknown_device_raises_with_known_list(self):
        with pytest.raises(KeyError, match="rtx4090"):
            get_arch("rtx9999")

    def test_every_generation_in_order(self):
        for spec in GPU_REGISTRY.values():
            assert spec.generation in GENERATIONS


class TestDerivedQuantities:
    def test_cycle_time_matches_clock(self, a100):
        assert a100.cycle_s == pytest.approx(1.0 / (1.41e9))

    def test_tc_flops_fp16_positive_everywhere(self, any_arch):
        assert any_arch.tc_flops_per_s("fp16") > 0

    def test_fp4_only_on_blackwell(self, any_arch):
        if any_arch.generation == "blackwell":
            assert any_arch.tc_flops_per_s("fp4") > 0
        else:
            with pytest.raises(ValueError):
                any_arch.tc_flops_per_s("fp4")

    def test_unknown_precision_raises(self, a100):
        with pytest.raises(ValueError, match="precision"):
            a100.tc_flops_per_s("fp2")

    def test_alu_rate_scales_with_sm_count(self, a100, h100):
        ratio = h100.alu_ops_per_s() / a100.alu_ops_per_s()
        expected = (h100.sm_count * h100.clock_ghz) / (a100.sm_count * a100.clock_ghz)
        assert ratio == pytest.approx(expected)

    def test_tensor_core_dwarfs_cuda_cores(self, any_arch):
        # The paper's motivating observation (Sec. II).  The consumer Ada
        # part has the smallest gap (exactly 2x at FP32 accumulate).
        assert any_arch.tc_flops_per_s("fp16") >= 2 * any_arch.cuda_flops_per_s


class TestGenerationOrdering:
    def test_is_at_least_reflexive(self, any_arch):
        assert any_arch.is_at_least(any_arch.generation)

    def test_hopper_at_least_ampere(self, h100):
        assert h100.is_at_least("ampere")
        assert not h100.is_at_least("blackwell")

    def test_unknown_generation_raises(self, a100):
        with pytest.raises(ValueError):
            a100.is_at_least("volta")


class TestFeatureFlags:
    def test_wgmma_only_on_hopper(self):
        assert get_arch("h100").has_wgmma
        assert not get_arch("a100").has_wgmma
        assert not get_arch("rtx4090").has_wgmma

    def test_native_fp4_only_on_blackwell(self):
        assert get_arch("rtx5090").has_native_fp4
        assert get_arch("rtx_pro_6000").has_native_fp4
        assert not get_arch("h100").has_native_fp4

    def test_legacy_penalty_only_on_post_ampere(self):
        assert get_arch("a100").legacy_path_efficiency == 1.0
        assert get_arch("h100").legacy_path_efficiency < 1.0


class TestValidation:
    def test_bad_generation_rejected(self):
        with pytest.raises(ValueError, match="generation"):
            ArchSpec(
                name="x", generation="volta", sm_count=80, clock_ghz=1.5,
                max_warps_per_sm=64, smem_per_sm_bytes=96 * 1024,
                registers_per_sm=65536, dram_bw_gbs=900, l2_size_mb=6,
                l2_bw_gbs=2000, smem_bytes_per_cycle=128,
                bw_saturation_warps=640, tc_fp16_tflops=125,
                tc_fp8_tflops=0, tc_fp4_tflops=0, cuda_fp32_tflops=15,
                alu_ops_per_sm_cycle=64, sfu_ops_per_sm_cycle=16,
                cvt_ops_per_sm_cycle=16,
            )

    def test_native_fp4_requires_fp4_throughput(self):
        with pytest.raises(ValueError, match="FP4"):
            ArchSpec(
                name="x", generation="blackwell", sm_count=80, clock_ghz=1.5,
                max_warps_per_sm=64, smem_per_sm_bytes=96 * 1024,
                registers_per_sm=65536, dram_bw_gbs=900, l2_size_mb=6,
                l2_bw_gbs=2000, smem_bytes_per_cycle=128,
                bw_saturation_warps=640, tc_fp16_tflops=125,
                tc_fp8_tflops=250, tc_fp4_tflops=0, cuda_fp32_tflops=15,
                alu_ops_per_sm_cycle=64, sfu_ops_per_sm_cycle=16,
                cvt_ops_per_sm_cycle=16, has_native_fp4=True,
            )
