"""Memory-hierarchy model invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import (
    MemoryFootprint,
    achieved_dram_bw,
    bandwidth_utilization,
    bank_conflict_factor,
    dram_time,
    l2_time,
    smem_time,
    swizzled_column,
)


class TestBandwidthRamp:
    def test_zero_warps_zero_bandwidth(self, a100):
        assert bandwidth_utilization(a100, 0) == 0.0

    def test_saturation_reaches_peak(self, a100):
        assert bandwidth_utilization(a100, a100.bw_saturation_warps) == 1.0
        assert achieved_dram_bw(a100, 10 ** 6) == a100.dram_bw_bytes_per_s

    def test_ramp_is_monotonic(self, a100):
        utils = [bandwidth_utilization(a100, w) for w in (8, 32, 128, 512, 2048)]
        assert utils == sorted(utils)

    def test_small_grids_get_a_floor(self, a100):
        assert bandwidth_utilization(a100, 1) >= 0.02

    def test_negative_warps_rejected(self, a100):
        with pytest.raises(ValueError):
            bandwidth_utilization(a100, -1)

    @given(st.integers(1, 10000))
    @settings(max_examples=30, deadline=None)
    def test_utilization_bounded(self, warps):
        from repro.gpu.arch import get_arch

        u = bandwidth_utilization(get_arch("a100"), warps)
        assert 0.0 < u <= 1.0


class TestTransferTimes:
    def test_dram_time_linear_in_bytes(self, a100):
        t1 = dram_time(a100, 1e9, 4096)
        t2 = dram_time(a100, 2e9, 4096)
        assert t2 == pytest.approx(2 * t1)

    def test_dram_time_zero_bytes_is_zero(self, a100):
        assert dram_time(a100, 0, 4096) == 0.0

    def test_dram_time_needs_warps(self, a100):
        with pytest.raises(ValueError):
            dram_time(a100, 1e9, 0)

    def test_l2_faster_than_dram(self, a100):
        assert l2_time(a100, 1e9, 1.0) < dram_time(a100, 1e9, 10 ** 6)

    def test_smem_time_scales_with_active_fraction(self, a100):
        assert smem_time(a100, 1e9, 0.5) == pytest.approx(2 * smem_time(a100, 1e9, 1.0))


class TestBankConflicts:
    def test_swizzle_eliminates_conflicts(self):
        assert bank_conflict_factor(8, 128, swizzled=True) == 1.0

    def test_power_of_two_stride_conflicts_without_swizzle(self):
        # 128-byte rows: every row starts at the same bank -> full replay.
        assert bank_conflict_factor(32, 128, swizzled=False) == 32.0

    def test_odd_stride_has_fewer_conflicts(self):
        conflicted = bank_conflict_factor(32, 128, swizzled=False)
        padded = bank_conflict_factor(32, 132, swizzled=False)
        assert padded < conflicted

    def test_swizzled_column_is_xor(self):
        assert swizzled_column(3, 5) == 3 ^ 5

    def test_swizzle_is_row_wise_permutation(self):
        # Within each row, the swizzle must be a bijection over columns.
        for row in range(8):
            cols = {swizzled_column(row, c) for c in range(8)}
            assert cols == set(range(8))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            bank_conflict_factor(0, 128)
        with pytest.raises(ValueError):
            swizzled_column(-1, 0)


class TestMemoryFootprint:
    def test_total_sums_components(self):
        fp = MemoryFootprint(weights_bytes=10e9, kv_cache_bytes=5e9, workspace_bytes=1e9)
        assert fp.total_bytes == 16e9

    def test_fits_respects_capacity(self):
        fp = MemoryFootprint(weights_bytes=70 * 1024 ** 3, kv_cache_bytes=20 * 1024 ** 3)
        assert not fp.fits(80)
        assert fp.fits(96)
