"""Profiler metric invariants."""

import pytest

from repro.gpu.kernel import KernelLaunch, simulate_kernel
from repro.gpu.profiler import dequant_overhead_fraction, profile_kernel
from repro.gpu.trace import OpTrace


def _launch(read=1e9, tc=0.0, alu=0.0, hide=1.0, subtraces=None):
    t = OpTrace()
    t.gmem_read(read)
    if tc:
        t.tensor_core(tc)
    t.alu_ops = alu
    return KernelLaunch(
        name="k", trace=t, grid_blocks=2048, warps_per_block=4,
        hide_factor=hide, subtraces=subtraces or {},
    )


class TestMetrics:
    def test_memory_bound_kernel_shows_high_memory_throughput(self, a100):
        prof = profile_kernel(simulate_kernel(a100, _launch()))
        assert prof.memory_throughput_pct > 90

    def test_percentages_bounded(self, a100):
        prof = profile_kernel(simulate_kernel(a100, _launch(tc=1e12, alu=1e9)))
        for value in prof.as_dict().values():
            assert 0 <= value <= 100 or value == prof.time_ms

    def test_tc_util_rises_with_tc_work(self, a100):
        low = profile_kernel(simulate_kernel(a100, _launch(tc=1e10)))
        high = profile_kernel(simulate_kernel(a100, _launch(tc=1e12)))
        assert high.tensor_core_util_pct > low.tensor_core_util_pct

    def test_serialization_stall_zero_when_pipelined(self, a100):
        prof = profile_kernel(simulate_kernel(a100, _launch(tc=1e11, hide=1.0)))
        assert prof.serialization_stall_pct == pytest.approx(0.0, abs=0.5)

    def test_serialization_stall_grows_without_overlap(self, a100):
        on = profile_kernel(simulate_kernel(a100, _launch(tc=1e12, alu=1e10, hide=1.0)))
        off = profile_kernel(simulate_kernel(a100, _launch(tc=1e12, alu=1e10, hide=0.0)))
        assert off.serialization_stall_pct > on.serialization_stall_pct

    def test_as_dict_round_trips_fields(self, a100):
        prof = profile_kernel(simulate_kernel(a100, _launch()))
        d = prof.as_dict()
        assert d["memory_throughput_pct"] == prof.memory_throughput_pct
        assert "serialization_stall_pct" in d


class TestDequantFraction:
    def test_no_subtrace_gives_zero(self, a100):
        res = simulate_kernel(a100, _launch())
        assert dequant_overhead_fraction(res) == 0.0

    def test_fraction_bounded_and_positive(self, a100):
        sub = OpTrace()
        sub.alu_ops = 5e9
        launch = _launch(alu=5e9, subtraces={"dequant": sub})
        res = simulate_kernel(a100, launch)
        frac = dequant_overhead_fraction(res)
        assert 0 < frac <= 1
