"""Instruction cost-model invariants."""

import pytest

from repro.gpu.instructions import (
    LDMATRIX_X4_BYTES,
    MMA_M16N8K16,
    MMA_SHAPES,
    WGMMA_M64N64K16,
    dequant_ops,
    p_requant_ops,
    quant_pack_ops,
    rescale_accum_ops,
    softmax_ops,
)


class TestMmaShapes:
    def test_m16n8k16_flops(self):
        assert MMA_M16N8K16.flops == 2 * 16 * 8 * 16

    def test_wgmma_covers_four_warps_of_work(self):
        assert WGMMA_M64N64K16.flops == 16 * MMA_M16N8K16.flops * 2  # 64x64 vs 16x8

    def test_registry_keys_match_names(self):
        for name, shape in MMA_SHAPES.items():
            assert shape.name == name

    def test_ldmatrix_x4_moves_four_8x8_fp16_tiles(self):
        assert LDMATRIX_X4_BYTES == 512


class TestDequantCosts:
    def test_lop3_avoids_cvt_pipe(self):
        t = dequant_ops(1024, 4, "lop3")
        assert t.cvt_ops == 0
        assert t.alu_ops > 0
        assert t.fma_flops > 0

    def test_cvt_path_uses_cvt_pipe(self):
        t = dequant_ops(1024, 4, "cvt")
        assert t.cvt_ops == 1024

    def test_int2_unpack_costs_more_logic_than_int4(self):
        t4 = dequant_ops(1024, 4, "lop3")
        t2 = dequant_ops(1024, 2, "lop3")
        assert t2.alu_ops > t4.alu_ops

    def test_costs_scale_linearly(self):
        a = dequant_ops(100, 4)
        b = dequant_ops(200, 4)
        assert b.alu_ops == pytest.approx(2 * a.alu_ops)
        assert b.fma_flops == pytest.approx(2 * a.fma_flops)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            dequant_ops(10, 4, "magic")

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            dequant_ops(10, 3)


class TestQuantPackCosts:
    def test_includes_shfl_butterfly_per_group(self):
        t = quant_pack_ops(640, 4, group_size=64)
        assert t.shfl_ops == pytest.approx(10 * 10)  # 10 groups x 10 shfl

    def test_smaller_groups_cost_more_reduction(self):
        coarse = quant_pack_ops(4096, 4, group_size=128)
        fine = quant_pack_ops(4096, 4, group_size=32)
        assert fine.shfl_ops > coarse.shfl_ops
        assert fine.fma_flops > coarse.fma_flops

    def test_group_size_must_be_positive(self):
        with pytest.raises(ValueError):
            quant_pack_ops(10, 4, 0)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            quant_pack_ops(10, 5, 32)


class TestSoftmaxCosts:
    def test_exp_per_score(self):
        t = softmax_ops(1000, 10)
        assert t.sfu_ops == 1000

    def test_cooperative_adds_smem_round_trips(self):
        solo = softmax_ops(1000, 10, coop_warps=1)
        coop = softmax_ops(1000, 10, coop_warps=4)
        assert solo.smem_bytes == 0
        assert coop.smem_bytes > 0
        assert coop.shfl_ops > solo.shfl_ops

    def test_requant_cheaper_than_full_dequant(self):
        rq = p_requant_ops(1000)
        dq = dequant_ops(1000, 4, "lop3")
        assert rq.fma_flops <= dq.fma_flops
        assert rq.cvt_ops == 0

    def test_rescale_two_flops_per_value(self):
        assert rescale_accum_ops(100).fma_flops == 200
