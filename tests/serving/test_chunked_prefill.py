"""Chunked prefill: mixed batches, partial-prefill preemption, TBT tail.

The deterministic tests hand-build traces and pass explicit ``n_pages``;
the hypothesis property builds staggered long-prompt traces where
whole-prompt admission provably stalls resident decodes, and checks that
chunking never worsens the p99 time-between-tokens while generating the
exact same tokens.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.arch import get_arch
from repro.model.config import LLAMA31_8B
from repro.model.inference import decode_step_ms, prefill_time_ms
from repro.model.serving import int_format
from repro.serving.engine import ContinuousBatchingEngine, EngineConfig
from repro.serving.request import Phase, Request, RequestLifecycle

ARCH = get_arch("a100")
MODEL = LLAMA31_8B


class ConstAttention:
    """Duck-typed attention system with a fixed per-layer latency."""

    def __init__(self, ms=0.01):
        self.ms = ms

    def decode_time_ms(self, geom):
        return self.ms


ATTN = ConstAttention()


def make_engine(requests, n_pages, chunk, page_size=64, max_batch=384, max_steps=None):
    return ContinuousBatchingEngine(
        EngineConfig(
            model=MODEL,
            arch=ARCH,
            fmt=int_format(4, MODEL),
            attention=ATTN,
            page_size=page_size,
            n_pages=n_pages,
            max_batch=max_batch,
            max_steps=max_steps,
            prefill_chunk_tokens=chunk,
        ),
        requests,
    )


def pool_for(trace, page_size=64, slack=4):
    """A pool that fits every request's full context simultaneously."""
    return sum(-(-r.total_len // page_size) for r in trace) + slack


def staggered_trace(prompt_len, base_output, n_followers, follow_output):
    """One long-decode request, then long prompts arriving mid-decode.

    Followers are spaced two whole-prompt prefill times apart, which
    guarantees each one is admitted in its own admission phase under
    whole-prompt scheduling (no two prefills merge into one stall), so the
    baseline TBT tail provably contains ``n_followers`` separate stalls.
    """
    prefill_s = prefill_time_ms(MODEL, ARCH, prompt_len) * 1e-3
    trace = [Request(req_id=0, arrival_s=0.0, prompt_len=prompt_len, output_len=base_output)]
    for i in range(n_followers):
        trace.append(
            Request(
                req_id=i + 1,
                arrival_s=prefill_s + (i + 1) * 2.0 * prefill_s,
                prompt_len=prompt_len,
                output_len=follow_output,
            )
        )
    return trace


class TestMixedScheduling:
    def test_single_request_identical_tokens_both_modes(self):
        trace = [Request(req_id=0, arrival_s=0.0, prompt_len=1000, output_len=12)]
        pages = pool_for(trace)
        whole = make_engine(trace, pages, chunk=None).run()
        chunked = make_engine(trace, pages, chunk=256).run()
        assert whole.total_generated_tokens == chunked.total_generated_tokens == 12
        assert whole.completed == chunked.completed == 1
        # 1000 tokens at 256/step -> 4 prefill-bearing steps, no mixing.
        assert chunked.prefill_steps == 4
        assert chunked.mixed_steps == 0

    def test_prefill_progress_state_machine(self):
        lc = RequestLifecycle(Request(req_id=0, arrival_s=0.0, prompt_len=100, output_len=4))
        assert lc.phase is Phase.QUEUED
        lc.seq_id = 0
        lc.prefill_target = 100
        assert lc.phase is Phase.PREFILL
        lc.prefilled = 100
        assert lc.phase is Phase.DECODE
        lc.finish_s = 1.0
        assert lc.phase is Phase.FINISHED

    def test_chunked_engine_walks_phases(self):
        trace = [Request(req_id=0, arrival_s=0.0, prompt_len=300, output_len=4)]
        engine = make_engine(trace, pool_for(trace), chunk=128, max_steps=2)
        engine.run()
        lc = engine.lifecycles[0]
        # Two steps of 128 tokens leave the prompt mid-prefill.
        assert lc.phase is Phase.PREFILL
        assert lc.prefilled == 256
        assert engine.allocator.used_pages == -(-256 // 64)

    def test_mixed_steps_batch_prefill_with_decode(self):
        prefill_s = prefill_time_ms(MODEL, ARCH, 2048) * 1e-3
        trace = [
            Request(req_id=0, arrival_s=0.0, prompt_len=2048, output_len=64),
            Request(req_id=1, arrival_s=prefill_s * 3, prompt_len=2048, output_len=8),
        ]
        report = make_engine(trace, pool_for(trace), chunk=256).run()
        assert report.mixed_steps > 0
        assert report.completed == 2
        assert report.rejected == 0

    def test_rejected_oversized_request(self):
        trace = [
            Request(req_id=0, arrival_s=0.0, prompt_len=64 * 64, output_len=4),
            Request(req_id=1, arrival_s=0.0, prompt_len=128, output_len=4),
        ]
        report = make_engine(trace, n_pages=8, chunk=128).run()
        assert report.rejected == 1
        assert report.completed == 1


class TestPartialPrefillPreemption:
    def test_mid_prefill_preemption_releases_exact_pages(self):
        # Pool of 10 pages (640 tokens).  A is admitted and decodes; B's
        # chunked prefill fills the rest of the pool; growing A then
        # preempts B mid-prefill, which must release exactly B's chunk
        # reservation (the engine's conservation check runs every step).
        trace = [
            Request(req_id=0, arrival_s=0.0, prompt_len=256, output_len=96),
            Request(req_id=1, arrival_s=0.0, prompt_len=360, output_len=8),
        ]
        engine = make_engine(trace, n_pages=10, chunk=128)
        report = engine.run()
        assert report.preemptions >= 1
        assert engine.lifecycles[1].preemptions >= 1
        assert report.completed == 2
        assert engine.allocator.used_pages == 0
        assert engine.allocator.free_pages == engine.n_pages

    def test_preemption_resets_prefill_progress(self):
        trace = [
            Request(req_id=0, arrival_s=0.0, prompt_len=256, output_len=32),
            Request(req_id=1, arrival_s=0.0, prompt_len=320, output_len=8),
        ]
        engine = make_engine(trace, n_pages=9, chunk=128)
        report = engine.run()
        victim = engine.lifecycles[1]
        assert victim.preemptions >= 1
        # After the run everything finished; recompute re-prefilled from 0
        # and the re-admission target covered prompt + generated tokens.
        assert victim.finished
        assert report.total_generated_tokens == 40

    def test_conservation_assertion_trips_on_double_release(self):
        trace = [Request(req_id=0, arrival_s=0.0, prompt_len=128, output_len=4)]
        engine = make_engine(trace, pool_for(trace), chunk=64)
        # Sabotage: leak a page outside the table's books, then step.
        engine.allocator.allocate()
        with pytest.raises(AssertionError, match="conservation"):
            engine.run()


class TestTbtProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        prompt_len=st.integers(1024, 2048),
        base_output=st.integers(48, 88),
        n_followers=st.just(2),
        follow_output=st.integers(3, 6),
        chunk=st.sampled_from([128, 256]),
    )
    def test_chunking_never_worsens_p99_tbt(
        self, prompt_len, base_output, n_followers, follow_output, chunk
    ):
        """Sarathi's claim as a property: at equal page pool, chunked
        prefill never worsens p99 TBT and generates identical tokens.

        The trace keeps the TBT sample count under ~100 so the p99 sits at
        or above the second-largest sample, and the construction guarantees
        at least two separate whole-prompt stalls — so the baseline p99 is
        a stall, which a bounded mixed step always beats.
        """
        trace = staggered_trace(prompt_len, base_output, n_followers, follow_output)
        pages = pool_for(trace)
        whole = make_engine(trace, pages, chunk=None).run()
        chunked = make_engine(trace, pages, chunk=chunk).run()
        assert whole.completed == chunked.completed == len(trace)
        assert whole.total_generated_tokens == chunked.total_generated_tokens
        assert chunked.p99_tbt_s <= whole.p99_tbt_s * (1.0 + 1e-9)


class TestLongPromptAcceptance:
    def test_32k_prompt_strictly_improves_p99_tbt(self):
        """The ISSUE's acceptance trace: one 32k prompt against short
        decodes shows strictly lower p99 TBT with chunking at 512."""
        prefill_short = prefill_time_ms(MODEL, ARCH, 512) * 1e-3
        trace = [
            Request(req_id=i, arrival_s=0.01 * i, prompt_len=512, output_len=64)
            for i in range(4)
        ]
        trace.append(
            Request(
                req_id=9,
                arrival_s=4 * prefill_short + 0.5,
                prompt_len=32768,
                output_len=8,
            )
        )
        pages = pool_for(trace)
        whole = make_engine(trace, pages, chunk=None).run()
        chunked = make_engine(trace, pages, chunk=512).run()
        assert chunked.p99_tbt_s < whole.p99_tbt_s
        assert chunked.max_tbt_s < whole.max_tbt_s
        assert chunked.total_generated_tokens == whole.total_generated_tokens
        # The price: the 32k prompt's own first token arrives later.
        assert chunked.p99_ttft_s >= whole.p99_ttft_s

    def test_decode_step_gap_bounded_by_quantum(self):
        """While the 32k prompt prefills, resident TBT gaps stay within a
        small multiple of a pure decode step instead of one whole prefill."""
        trace = [Request(req_id=0, arrival_s=0.0, prompt_len=512, output_len=96)]
        prefill_short = prefill_time_ms(MODEL, ARCH, 512) * 1e-3
        trace.append(
            Request(req_id=1, arrival_s=prefill_short + 0.2, prompt_len=32768, output_len=4)
        )
        pages = pool_for(trace)
        engine = make_engine(trace, pages, chunk=512)
        report = engine.run()
        whole_prefill_s = prefill_time_ms(MODEL, ARCH, 32768) * 1e-3
        step_s = decode_step_ms(MODEL, ARCH, ATTN, 1, 33000) * 1e-3
        assert report.max_tbt_s < whole_prefill_s / 4
        assert report.max_tbt_s < step_s * 20
