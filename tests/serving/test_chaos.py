"""Chaos serving: fault recovery, deadlines and degradation end to end.

The recovery contract this file pins down:

- **lock-step determinism** — an analytical and an executed chaos run
  built from the same :class:`FaultSpec` draw identical fault outcomes
  and produce the same schedule and counters;
- **bit-exact recovery** — whenever recovery succeeds (no FAILED
  requests, no undrained bad pages), every executed decode output under
  faults is bit-identical to the fault-free run: retries, swaps and
  heal replays cost time, never numerics;
- **graceful degradation** — deadline pressure ends in SHED/TIMED_OUT
  accounting and a goodput figure, never a wedged engine, and a plan
  that keeps destroying one sequence's pages exhausts the heal budget
  into FAILED instead of looping forever.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attn import PagedBitBackend
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.faults.plan import FaultSpec, demo_fault_spec
from repro.gpu.arch import get_arch
from repro.model.config import TINY
from repro.model.memory import int_format
from repro.serving import ContinuousBatchingEngine, DeadlinePolicy, EngineConfig, poisson_trace

KERNEL_CONFIG = BitDecodingConfig(bits=4, wn=1)  # N_r = 32
NR = KERNEL_CONFIG.residual_block_size

#: The committed chaos demo geometry (see ``serve-sim --chaos``): an
#: over-capacity trace on a small device tier with a tight batch cap, so
#: faults land on real swap traffic and deadlines on a real queue.
DEVICE, HOST = 8, 28


def _trace():
    return poisson_trace(8, 100000.0, prompt_len=40, output_len=60, seed=3)


def _config(a100, execute=True, **overrides):
    kwargs = dict(
        model=TINY,
        arch=a100,
        fmt=int_format(4, TINY, residual_window=NR),
        page_size=NR,
        max_batch=16,
        max_steps=4000,
        preemption="swap",
        device_pages=DEVICE,
        host_pages=HOST,
    )
    kwargs.update(overrides)
    if execute:
        kernel = BitDecoding(KERNEL_CONFIG, a100)
        return EngineConfig(backend=PagedBitBackend(kernel), execute=True, **kwargs)
    return EngineConfig(attention=BitDecoding(KERNEL_CONFIG, a100), **kwargs)


def _decoded(engine):
    return engine._runner.decoded


def _assert_recovered_outputs(chaos_engine, free_engine):
    """Chaos outputs must be a bit-exact prefix of the fault-free run's
    (full-length for requests that finished)."""
    chaos, free = _decoded(chaos_engine), _decoded(free_engine)
    finished = {
        lc.request.req_id for lc in chaos_engine.lifecycles if lc.finished
    }
    for req_id, steps in chaos.items():
        reference = free[req_id]
        assert len(steps) <= len(reference)
        if req_id in finished:
            assert len(steps) == len(reference)
        for got, want in zip(steps, reference):
            np.testing.assert_array_equal(got, want)


class TestLockstepDeterminism:
    def test_executed_and_analytical_chaos_agree(self, a100):
        spec = demo_fault_spec(7)
        executed = ContinuousBatchingEngine(
            _config(a100, faults=spec, audit_every=10), _trace()
        ).run()
        analytical = ContinuousBatchingEngine(
            _config(a100, execute=False, faults=spec, audit_every=10), _trace()
        ).run()
        for field in (
            "total_generated_tokens",
            "decode_steps",
            "mixed_steps",
            "swap_outs",
            "swap_ins",
            "transfer_retries",
            "lost_pages",
            "checksum_failures",
            "healed_pages",
            "healed_requests",
            "slow_steps",
            "completed",
            "failed",
            "audits",
        ):
            assert getattr(executed, field) == getattr(analytical, field), field
        assert executed.sim_time_s == pytest.approx(analytical.sim_time_s)
        assert executed.faults_enabled and analytical.faults_enabled

    def test_same_spec_reproduces_exactly(self, a100):
        spec = demo_fault_spec(3)
        a = ContinuousBatchingEngine(_config(a100, execute=False, faults=spec), _trace()).run()
        b = ContinuousBatchingEngine(_config(a100, execute=False, faults=spec), _trace()).run()
        assert a.to_dict() == b.to_dict()


class TestBitExactRecovery:
    def test_demo_plan_recovers_bit_exactly(self, a100):
        """The committed demo spec injects retries, loss and corruption;
        after healing, every decoded token matches the fault-free run."""
        chaos = ContinuousBatchingEngine(_config(a100, faults=demo_fault_spec(7)), _trace())
        report = chaos.run()
        assert report.transfer_retries > 0  # the plan actually fired
        assert report.healed_pages > 0
        assert report.failed == 0 and not chaos.tiers.has_bad_pages
        assert report.completed == 8
        free = ContinuousBatchingEngine(_config(a100), _trace())
        free_report = free.run()
        assert free_report.completed == 8
        _assert_recovered_outputs(chaos, free)

    def test_faults_cost_time_not_work(self, a100):
        chaos = ContinuousBatchingEngine(
            _config(a100, execute=False, faults=demo_fault_spec(7)), _trace()
        ).run()
        free = ContinuousBatchingEngine(_config(a100, execute=False), _trace()).run()
        assert chaos.total_generated_tokens == free.total_generated_tokens
        assert chaos.sim_time_s > free.sim_time_s

    def test_heal_budget_exhaustion_fails_the_request(self, a100):
        """A plan that destroys every transferred page keeps killing the
        same sequences; the heal budget must convert that into FAILED."""
        spec = FaultSpec(seed=0, transfer_fault_rate=1.0, permanent_fraction=1.0)
        report = ContinuousBatchingEngine(
            _config(a100, execute=False, faults=spec, max_heals=2), _trace()
        ).run()
        assert report.failed > 0
        assert report.healed_requests > 0
        assert report.completed + report.failed == 8  # nothing wedged or lost


class TestDeadlines:
    def test_pressure_ends_in_shed_and_timeout_accounting(self, a100):
        policy = DeadlinePolicy(default_deadline_s=6e-3)
        engine = ContinuousBatchingEngine(
            _config(a100, faults=demo_fault_spec(7), deadline_policy=policy, max_batch=3),
            _trace(),
        )
        report = engine.run()
        assert report.shed > 0
        assert report.timed_out > 0
        assert report.shed + report.timed_out + report.completed + report.failed == 8
        # Goodput only counts deadline-meeting requests, so it is bounded
        # by raw throughput and here strictly below it.
        assert 0 < report.goodput_tokens_per_s < report.sustained_tokens_per_s
        assert report.deadline_met == report.completed - (
            sum(1 for lc in engine.lifecycles if lc.finished and not lc.met_deadline)
        )

    def test_generous_deadline_changes_nothing(self, a100):
        policy = DeadlinePolicy(default_deadline_s=1e6)
        with_deadline = ContinuousBatchingEngine(
            _config(a100, execute=False, deadline_policy=policy), _trace()
        ).run()
        without = ContinuousBatchingEngine(_config(a100, execute=False), _trace()).run()
        assert with_deadline.shed == 0 and with_deadline.timed_out == 0
        assert with_deadline.completed == 8 and with_deadline.deadline_met == 8
        assert with_deadline.total_generated_tokens == without.total_generated_tokens
        assert with_deadline.goodput_tokens_per_s == pytest.approx(
            with_deadline.sustained_tokens_per_s
        )

    def test_per_request_deadline_beats_the_default(self, a100):
        trace = _trace()
        tight = [
            type(r)(**{**r.__dict__, "deadline_s": 1e-6}) if r.req_id == 7 else r
            for r in trace
        ]
        policy = DeadlinePolicy(default_deadline_s=1e6)
        report = ContinuousBatchingEngine(
            _config(a100, execute=False, deadline_policy=policy), tight
        ).run()
        assert report.shed + report.timed_out == 1
        assert report.completed == 7

    def test_shedding_can_be_disabled(self, a100):
        policy = DeadlinePolicy(default_deadline_s=6e-3, shed_on_admission=False)
        report = ContinuousBatchingEngine(
            _config(a100, execute=False, deadline_policy=policy, max_batch=3), _trace()
        ).run()
        assert report.shed == 0
        assert report.timed_out > 0  # pressure now lands entirely on timeouts


class TestAuditor:
    def test_auditor_runs_in_both_modes(self, a100):
        for execute in (True, False):
            report = ContinuousBatchingEngine(
                _config(a100, execute=execute, faults=demo_fault_spec(7), audit_every=5),
                _trace(),
            ).run()
            assert report.audits > 1  # periodic plus the final drain audit

    def test_audit_disabled_by_default(self, a100):
        report = ContinuousBatchingEngine(_config(a100, execute=False), _trace()).run()
        assert report.audits == 0


class TestConfigValidation:
    def test_faults_require_swap_preemption(self, a100):
        with pytest.raises(ValueError, match="swap"):
            _config(
                a100,
                execute=False,
                preemption="recompute",
                device_pages=None,
                host_pages=None,
                n_pages=DEVICE,
                faults=demo_fault_spec(0),
            )

    def test_audit_every_must_be_positive(self, a100):
        with pytest.raises(ValueError, match="audit_every"):
            _config(a100, execute=False, audit_every=0)

    def test_max_heals_floor(self, a100):
        with pytest.raises(ValueError, match="max_heals"):
            _config(a100, execute=False, max_heals=0)


class TestAllTransientProperty:
    """ISSUE satellite: under any all-transient plan (no loss, no rot)
    the engine completes every request and — executed — every decode
    output is bit-identical to the fault-free run."""

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        fault_rate=st.floats(min_value=0.0, max_value=0.6),
        spike_rate=st.floats(min_value=0.0, max_value=0.4),
        slow_rate=st.floats(min_value=0.0, max_value=0.3),
    )
    def test_all_transient_faults_complete_bit_identically(
        self, seed, fault_rate, spike_rate, slow_rate
    ):
        a100 = get_arch("a100")  # hypothesis forbids function-scoped fixtures
        spec = FaultSpec(
            seed=seed,
            transfer_fault_rate=fault_rate,
            latency_spike_rate=spike_rate,
            slow_step_rate=slow_rate,
        )
        assert spec.all_transient
        trace = poisson_trace(4, 100000.0, prompt_len=40, output_len=24, seed=5)
        chaos = ContinuousBatchingEngine(_config(a100, faults=spec), trace)
        report = chaos.run()
        assert report.completed == 4
        assert report.failed == 0 and report.healed_pages == 0
        free = ContinuousBatchingEngine(_config(a100), trace)
        free.run()
        chaos_out, free_out = _decoded(chaos), _decoded(free)
        assert chaos_out.keys() == free_out.keys()
        for req_id, steps in chaos_out.items():
            assert len(steps) == len(free_out[req_id])
            for got, want in zip(steps, free_out[req_id]):
                np.testing.assert_array_equal(got, want)
