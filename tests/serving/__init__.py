"""BitDecoding reproduction test suite (tests/serving)."""
