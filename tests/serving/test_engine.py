"""Continuous-batching engine: scheduling, preemption, page conservation.

All tests pin the trace seed (or hand-build traces) and, where the page
pool matters, pass an explicit ``n_pages`` so behavior is deterministic
and independent of any device's memory size.
"""

import pytest

from repro.model.config import LLAMA31_8B
from repro.model.serving import ServingOOMError, int_format
from repro.serving.engine import ContinuousBatchingEngine, EngineConfig
from repro.serving.request import Request, poisson_trace


class ConstAttention:
    """Duck-typed attention system with a fixed per-layer latency."""

    def __init__(self, ms: float = 0.01):
        self.ms = ms

    def decode_time_ms(self, geom) -> float:
        return self.ms


def make_engine(requests, n_pages, page_size=16, max_batch=384, max_steps=None, a100=None):
    model = LLAMA31_8B
    return ContinuousBatchingEngine(
        EngineConfig(
            model=model,
            arch=a100,
            fmt=int_format(4, model),
            attention=ConstAttention(),
            page_size=page_size,
            n_pages=n_pages,
            max_batch=max_batch,
            max_steps=max_steps,
        ),
        requests,
    )


class TestAdmission:
    def test_fcfs_admission_order(self, a100):
        trace = [
            Request(req_id=i, arrival_s=0.5 * i, prompt_len=32, output_len=4)
            for i in (3, 1, 0, 2)  # construction order is not arrival order
        ]
        engine = make_engine(trace, n_pages=1024, a100=a100)
        engine.run()
        admitted = sorted(engine.lifecycles, key=lambda lc: lc.admitted_s)
        assert [lc.request.req_id for lc in admitted] == [0, 1, 2, 3]
        assert all(lc.finished for lc in engine.lifecycles)

    def test_arrivals_gate_admission(self, a100):
        trace = [
            Request(req_id=0, arrival_s=0.0, prompt_len=32, output_len=4),
            Request(req_id=1, arrival_s=1e6, prompt_len=32, output_len=4),
        ]
        engine = make_engine(trace, n_pages=1024, a100=a100)
        engine.run()
        late = engine.lifecycles[1]
        assert late.admitted_s >= 1e6

    def test_max_batch_caps_residency(self, a100):
        trace = poisson_trace(16, 1000.0, 32, 8, seed=0)
        engine = make_engine(trace, n_pages=1024, max_batch=4, a100=a100)
        report = engine.run()
        assert report.peak_resident_batch == 4
        assert report.completed == 16

    def test_oversized_request_rejected_others_complete(self, a100):
        trace = [
            Request(req_id=0, arrival_s=0.0, prompt_len=16 * 64, output_len=4),
            Request(req_id=1, arrival_s=0.0, prompt_len=32, output_len=4),
        ]
        engine = make_engine(trace, n_pages=8, a100=a100)  # 128 tokens total
        report = engine.run()
        assert report.rejected == 1
        assert report.completed == 1
        assert engine.lifecycles[0].rejected
        assert engine.lifecycles[1].finished


class TestPreemption:
    def test_page_exhaustion_preempts_and_requeues(self, a100):
        # Two sequences of 32-token prompts fill all 4 pages; the first
        # decode step must evict the later arrival to grow the earlier one.
        trace = [
            Request(req_id=0, arrival_s=0.0, prompt_len=32, output_len=8),
            Request(req_id=1, arrival_s=0.0, prompt_len=32, output_len=8),
        ]
        engine = make_engine(trace, n_pages=4, a100=a100)
        report = engine.run()
        assert report.preemptions >= 1
        assert engine.lifecycles[1].preemptions >= 1
        assert report.completed == 2
        # Recompute-style preemption re-prefills the victim.
        assert report.prefill_steps > 2

    def test_preemption_releases_pages(self, a100):
        trace = poisson_trace(8, 1000.0, 48, 16, seed=1)
        engine = make_engine(trace, n_pages=7, a100=a100)
        report = engine.run()
        assert report.preemptions >= 1
        assert engine.allocator.used_pages == 0
        assert engine.allocator.free_pages == engine.n_pages
        # Re-admissions recycle sequence ids: the table stays bounded by
        # peak concurrency, not total (admissions + preemption retries).
        assert len(engine.table.sequences) <= report.peak_resident_batch

    def test_single_oversized_total_context_rejected_not_livelocked(self, a100):
        # Prompt fits the pool but prompt+output cannot: the engine must
        # reject at admission rather than preempt-thrash forever.
        trace = [Request(req_id=0, arrival_s=0.0, prompt_len=60, output_len=16)]
        engine = make_engine(trace, n_pages=4, a100=a100)  # 64-token pool
        report = engine.run()
        assert report.rejected == 1
        assert report.completed == 0
        assert engine.allocator.used_pages == 0


class TestConservation:
    def test_no_kv_leaks_after_completion(self, a100):
        trace = poisson_trace(24, 500.0, 40, 12, seed=2, prompt_jitter=0.5, output_jitter=0.5)
        engine = make_engine(trace, n_pages=16, a100=a100)
        report = engine.run()
        assert report.completed + report.rejected == 24
        assert engine.allocator.used_pages == 0
        generated = sum(lc.generated for lc in engine.lifecycles if lc.finished)
        assert generated == sum(
            lc.request.output_len for lc in engine.lifecycles if lc.finished
        )

    def test_token_accounting(self, a100):
        trace = poisson_trace(6, 100.0, 32, 10, seed=0)
        engine = make_engine(trace, n_pages=64, a100=a100)
        report = engine.run()
        assert report.total_generated_tokens == 6 * 10
        assert report.completed == 6
        assert report.p50_latency_s is not None
        assert report.p99_latency_s >= report.p50_latency_s


class TestStepCapAndClock:
    def test_max_steps_stops_early(self, a100):
        trace = poisson_trace(8, 100.0, 32, 1000, seed=0)
        engine = make_engine(trace, n_pages=1024, max_steps=5, a100=a100)
        report = engine.run()
        assert report.decode_steps <= 5
        assert report.completed == 0
        assert report.sim_time_s > 0

    def test_clock_jumps_to_next_arrival_when_idle(self, a100):
        trace = [Request(req_id=0, arrival_s=123.0, prompt_len=32, output_len=2)]
        engine = make_engine(trace, n_pages=64, a100=a100)
        report = engine.run()
        assert engine.lifecycles[0].admitted_s == 123.0
        assert report.sim_time_s > 123.0

    def test_latency_counts_queueing(self, a100):
        # Burst of arrivals at t=0 through a tiny batch slot: later
        # requests wait, so their e2e latency exceeds the first one's.
        trace = [
            Request(req_id=i, arrival_s=0.0, prompt_len=32, output_len=4)
            for i in range(4)
        ]
        engine = make_engine(trace, n_pages=1024, max_batch=1, a100=a100)
        engine.run()
        finishes = [lc.finish_s for lc in engine.lifecycles]
        assert finishes == sorted(finishes)
        assert finishes[-1] > finishes[0]


class TestConfigValidation:
    def test_zero_page_pool_raises(self, a100):
        with pytest.raises(ServingOOMError):
            make_engine(poisson_trace(2, 1.0, 8, 2), n_pages=0, a100=a100)

    def test_bad_page_size_raises(self, a100):
        with pytest.raises(ValueError):
            EngineConfig(
                model=LLAMA31_8B,
                arch=a100,
                fmt=int_format(4, LLAMA31_8B),
                attention=ConstAttention(),
                page_size=0,
            )
