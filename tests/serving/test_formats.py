"""Format-level serving properties: low-bit caches dominate FP16 residency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.arch import get_arch
from repro.model.config import LLAMA31_8B
from repro.model.memory import fp16_format, int_format, pages_in_budget
from repro.serving import compare_formats, paper_serving_stacks, poisson_trace
from repro.serving.engine import ContinuousBatchingEngine, EngineConfig


class ConstAttention:
    def decode_time_ms(self, geom) -> float:
        return 0.01


def _peak_resident(fmt, budget_bytes, trace, page_size=64):
    model = LLAMA31_8B
    n_pages = pages_in_budget(model, fmt, page_size, budget_bytes)
    if n_pages <= 0:
        return 0
    engine = ContinuousBatchingEngine(
        EngineConfig(
            model=model,
            arch=get_arch("a100"),
            fmt=fmt,
            attention=ConstAttention(),
            page_size=page_size,
            n_pages=n_pages,
        ),
        trace,
    )
    report = engine.run()
    assert engine.allocator.used_pages == 0  # no leaks, whatever the budget
    return report.peak_resident_batch


class TestResidencyProperty:
    @given(
        budget_mb=st.integers(min_value=64, max_value=4096),
        prompt_len=st.integers(min_value=128, max_value=2048),
        seed=st.integers(min_value=0, max_value=32),
    )
    @settings(max_examples=20, deadline=None)
    def test_int2_resident_batch_dominates_fp16_at_equal_memory(
        self, budget_mb, prompt_len, seed
    ):
        """The paper's capacity claim as an invariant: at any byte budget,
        INT2 holds at least as many resident sequences as FP16."""
        trace = poisson_trace(12, 500.0, prompt_len, 8, seed=seed)
        budget = budget_mb * 2**20
        fp16_peak = _peak_resident(fp16_format(), budget, trace)
        int2_peak = _peak_resident(int_format(2, LLAMA31_8B), budget, trace)
        assert int2_peak >= fp16_peak

    def test_paper_stacks_end_to_end(self, a100):
        """Smoke the real FP16/INT4/INT2 stacks through one small trace."""
        model = LLAMA31_8B
        trace = poisson_trace(64, 64.0, 8192, 8, seed=0)
        reports = compare_formats(
            model, a100, paper_serving_stacks(model, a100), trace
        )
        by_format = {r.format_name: r for r in reports}
        assert by_format["INT4"].peak_resident_batch > by_format["FP16"].peak_resident_batch
        assert by_format["INT2"].peak_resident_batch >= by_format["INT4"].peak_resident_batch
        assert all(r.completed == 64 for r in reports)
