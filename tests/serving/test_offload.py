"""Swap-based preemption: tiered offload executed end to end.

The parity contract: a swap run's decode outputs are bit-identical to a
*never-swapped* run over the same total page budget — demotion and
promotion move packed pages without touching a bit.  (Recompute replay
is bit-exact too — the runner re-decodes consumed inputs through the
quantized cache — but swap runs are the cleaner reference because their
schedule never re-prefills at all.)
"""

import numpy as np
import pytest

from repro.attn import PagedBitBackend
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.model.config import TINY
from repro.model.memory import MemoryTierModel, int_format
from repro.serving import ContinuousBatchingEngine, EngineConfig, poisson_trace

KERNEL_CONFIG = BitDecodingConfig(bits=4, wn=1)  # N_r = 32
NR = KERNEL_CONFIG.residual_block_size

#: Near-simultaneous arrivals whose aggregate context (8 requests x 4
#: pages) far exceeds the 8-page device tier — admission must succeed
#: through the host tier and decode must proceed by swapping.
DEVICE, HOST = 8, 28


def _trace():
    return poisson_trace(8, 100000.0, prompt_len=40, output_len=60, seed=3)


def _config(a100, execute=True, **overrides):
    kwargs = dict(
        model=TINY,
        arch=a100,
        fmt=int_format(4, TINY, residual_window=NR),
        page_size=NR,
        max_batch=16,
        max_steps=2000,
    )
    kwargs.update(overrides)
    if execute:
        kernel = BitDecoding(KERNEL_CONFIG, a100)
        return EngineConfig(backend=PagedBitBackend(kernel), execute=True, **kwargs)
    return EngineConfig(attention=BitDecoding(KERNEL_CONFIG, a100), **kwargs)


def _swap_config(a100, execute=True, **overrides):
    kwargs = dict(preemption="swap", device_pages=DEVICE, host_pages=HOST)
    kwargs.update(overrides)
    return _config(a100, execute=execute, **kwargs)


def _decoded(engine):
    return engine._runner.decoded


def _assert_decoded_equal(a, b):
    assert a.keys() == b.keys()
    for req_id, steps_a in a.items():
        steps_b = b[req_id]
        assert len(steps_a) == len(steps_b)
        for x, y in zip(steps_a, steps_b):
            np.testing.assert_array_equal(x, y)


class TestSwapExecution:
    def test_over_capacity_trace_completes_by_swapping(self, a100):
        engine = ContinuousBatchingEngine(_swap_config(a100), _trace())
        report = engine.run()
        assert report.completed == 8 and report.rejected == 0
        assert report.preemptions == 0  # pressure was paid in swaps
        assert report.swap_outs > 0
        assert report.swap_ins == report.swap_outs
        assert report.executed_tokens == report.total_generated_tokens == 8 * 60
        assert report.offload_d2h_bytes > 0 and report.offload_h2d_bytes > 0
        assert report.preemption == "swap"
        assert report.device_pages == DEVICE and report.host_pages == HOST
        assert report.n_pages == DEVICE + HOST

    def test_swapped_decode_bit_identical_to_never_swapped(self, a100):
        swap = ContinuousBatchingEngine(_swap_config(a100), _trace())
        swap_report = swap.run()
        assert swap_report.swap_outs > 0
        baseline = ContinuousBatchingEngine(_config(a100, n_pages=DEVICE + HOST), _trace())
        baseline_report = baseline.run()
        assert baseline_report.preemptions == 0  # truly unpressured
        _assert_decoded_equal(_decoded(swap), _decoded(baseline))

    def test_swap_beats_recompute_at_equal_device_budget(self, a100):
        swap = ContinuousBatchingEngine(_swap_config(a100), _trace()).run()
        recompute = ContinuousBatchingEngine(_config(a100, n_pages=DEVICE), _trace()).run()
        assert recompute.preemptions > 0
        assert swap.total_generated_tokens == recompute.total_generated_tokens
        assert swap.sustained_tokens_per_s > recompute.sustained_tokens_per_s

    def test_executed_schedule_matches_analytical(self, a100):
        executed = ContinuousBatchingEngine(_swap_config(a100), _trace()).run()
        analytical = ContinuousBatchingEngine(_swap_config(a100, execute=False), _trace()).run()
        assert analytical.executed_tokens is None
        assert executed.total_generated_tokens == analytical.total_generated_tokens
        assert executed.decode_steps == analytical.decode_steps
        assert executed.swap_outs == analytical.swap_outs
        assert executed.swap_ins == analytical.swap_ins
        assert executed.sim_time_s == pytest.approx(analytical.sim_time_s)

    def test_faults_and_stall_are_priced(self, a100):
        report = ContinuousBatchingEngine(_swap_config(a100), _trace()).run()
        pcie_only = ContinuousBatchingEngine(_config(a100, n_pages=DEVICE + HOST), _trace()).run()
        # Tier traffic costs real simulated time on top of the compute.
        assert report.sim_time_s > pcie_only.sim_time_s
        assert report.offload_stall_s >= 0.0
        assert report.offload_overlapped_s > 0.0

    def test_slower_tier_model_costs_more_time(self, a100):
        fast = ContinuousBatchingEngine(_swap_config(a100), _trace()).run()
        slow = ContinuousBatchingEngine(
            _swap_config(a100, tier_model=MemoryTierModel(pcie_gbs=0.001)), _trace()
        ).run()
        assert slow.sim_time_s > fast.sim_time_s

    def test_request_larger_than_device_tier_rejected(self, a100):
        trace = poisson_trace(1, 10.0, prompt_len=DEVICE * NR + 40, output_len=4, seed=0)
        report = ContinuousBatchingEngine(_swap_config(a100, host_pages=64), trace).run()
        assert report.rejected == 1 and report.completed == 0


class TestSwapConfigValidation:
    def test_swap_needs_tier_sizes(self, a100):
        with pytest.raises(ValueError, match="device_pages"):
            _config(a100, preemption="swap", host_pages=8)
        with pytest.raises(ValueError, match="host_pages"):
            _config(a100, preemption="swap", device_pages=8)

    def test_swap_derives_the_pool(self, a100):
        with pytest.raises(ValueError, match="derived"):
            _swap_config(a100, n_pages=64)

    def test_recompute_forbids_tier_geometry(self, a100):
        with pytest.raises(ValueError, match='preemption="swap"'):
            _config(a100, n_pages=16, device_pages=8)
        with pytest.raises(ValueError, match='preemption="swap"'):
            _config(a100, n_pages=16, tier_model=MemoryTierModel())

    def test_unknown_preemption_rejected(self, a100):
        with pytest.raises(ValueError, match="preemption"):
            _config(a100, n_pages=16, preemption="migrate")

    def test_recompute_report_shows_whole_pool_as_device(self, a100):
        report = ContinuousBatchingEngine(_config(a100, n_pages=DEVICE + HOST), _trace()).run()
        assert report.preemption == "recompute"
        assert report.device_pages == report.n_pages
        assert report.swap_outs == 0 and report.offload_h2d_bytes == 0
