"""Real-token execution mode: the scheduler and the numerics share pages.

``execute=True`` runs every scheduler step's tokens through
TinyTransformer + the paged low-bit cache, with the runner's per-layer
pools indexed by the engine's own page table.  The schedule must be
byte-for-byte the analytical one (same clock, same admissions, same
preemptions), and every generated token must actually have been run.
"""

import pytest

from repro.attn import AnalyticalBackend, PagedBitBackend
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.model.config import TINY
from repro.model.memory import int_format
from repro.serving import ContinuousBatchingEngine, EngineConfig, poisson_trace

KERNEL_CONFIG = BitDecodingConfig(bits=4, wn=1)  # N_r = 32
NR = KERNEL_CONFIG.residual_block_size


def _common(a100, n_pages, max_steps=400, prefill_chunk=None, max_batch=8):
    return dict(
        model=TINY,
        arch=a100,
        fmt=int_format(4, TINY, residual_window=NR),
        page_size=NR,
        n_pages=n_pages,
        max_batch=max_batch,
        max_steps=max_steps,
        prefill_chunk_tokens=prefill_chunk,
    )


def _run_pair(a100, trace, **kwargs):
    kernel = BitDecoding(KERNEL_CONFIG, a100)
    common = _common(a100, **kwargs)
    analytical = ContinuousBatchingEngine(EngineConfig(attention=kernel, **common), trace).run()
    executed = ContinuousBatchingEngine(
        EngineConfig(backend=PagedBitBackend(kernel), execute=True, **common), trace
    ).run()
    return analytical, executed


class TestExecuteMode:
    def test_schedule_matches_analytical(self, a100):
        trace = poisson_trace(6, 50.0, prompt_len=48, output_len=8, seed=3)
        analytical, executed = _run_pair(a100, trace, n_pages=96)
        assert executed.total_generated_tokens == analytical.total_generated_tokens
        assert executed.decode_steps == analytical.decode_steps
        assert executed.prefill_steps == analytical.prefill_steps
        assert executed.preemptions == analytical.preemptions
        assert executed.sim_time_s == pytest.approx(analytical.sim_time_s)
        assert analytical.executed_tokens is None
        assert executed.executed_tokens == executed.total_generated_tokens

    def test_executes_through_preemption_and_recompute(self, a100):
        # A pool tight enough that decode growth forces a preemption; the
        # victim recomputes its full context through the runner's recorded
        # input program on re-admission.
        trace = poisson_trace(6, 100.0, prompt_len=40, output_len=30, seed=0)
        analytical, executed = _run_pair(a100, trace, n_pages=7)
        assert executed.preemptions > 0
        assert executed.preemptions == analytical.preemptions
        assert executed.total_generated_tokens == analytical.total_generated_tokens
        assert executed.executed_tokens == executed.total_generated_tokens

    def test_executes_under_chunked_prefill(self, a100):
        trace = poisson_trace(5, 100.0, prompt_len=70, output_len=10, seed=1)
        analytical, executed = _run_pair(a100, trace, n_pages=12, prefill_chunk=NR)
        assert executed.mixed_steps == analytical.mixed_steps
        assert executed.total_generated_tokens == analytical.total_generated_tokens
        assert executed.executed_tokens == executed.total_generated_tokens

    def test_execute_requires_numeric_backend(self, a100):
        kernel = BitDecoding(KERNEL_CONFIG, a100)
        with pytest.raises(ValueError, match="token-executing"):
            EngineConfig(backend=AnalyticalBackend(kernel), execute=True, **_common(a100, 16))
        with pytest.raises(ValueError, match="token-executing"):
            EngineConfig(attention=kernel, execute=True, **_common(a100, 16))

    def test_execute_requires_page_size_nr(self, a100):
        kernel = BitDecoding(KERNEL_CONFIG, a100)
        common = _common(a100, 16)
        common["page_size"] = NR * 2
        with pytest.raises(ValueError, match="N_r"):
            ContinuousBatchingEngine(
                EngineConfig(backend=PagedBitBackend(kernel), execute=True, **common),
                poisson_trace(2, 10.0, prompt_len=16, output_len=2),
            )

    def test_execute_requires_explicit_pool_size(self, a100):
        kernel = BitDecoding(KERNEL_CONFIG, a100)
        common = _common(a100, None)
        with pytest.raises(ValueError, match="n_pages"):
            EngineConfig(backend=PagedBitBackend(kernel), execute=True, **common)

    def test_config_requires_some_attention(self, a100):
        with pytest.raises(ValueError, match="attention"):
            EngineConfig(model=TINY, arch=a100, fmt=int_format(4, TINY))

    def test_execute_rejects_non_paged_numeric_backend(self, a100):
        from repro.attn import ContiguousBitBackend

        with pytest.raises(ValueError, match="paged-bit"):
            EngineConfig(
                backend=ContiguousBitBackend(KERNEL_CONFIG, a100),
                execute=True,
                **_common(a100, 16),
            )
