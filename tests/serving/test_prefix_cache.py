"""Prefix caching end to end: hit accounting, sharing, and bit-exactness.

The cache reuses page-aligned flushed packed blocks across requests with
a common prompt prefix.  Three contracts under test:

1. *Priced and executed alike*: with ``execute=True`` the schedule is
   byte-for-byte the analytical one — hits skip the same prefill compute
   in both worlds.
2. *Sharing is free*: ``prefix_share=False`` is a diagnostic mode that
   copies hit pages into private ones instead of mapping them shared.
   Schedules and decoded hidden states must be bit-identical either way —
   copy-on-write and refcounts change *where* bits live, never the bits.
3. *Never worse*: caching on beats caching off on a shared-prefix trace
   (hit rate > 0, strictly higher tokens/s, more effective capacity).
"""

import numpy as np
import pytest

from repro.attn import PagedBitBackend
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.model.config import TINY
from repro.model.memory import int_format
from repro.serving import ContinuousBatchingEngine, EngineConfig, poisson_trace

KERNEL_CONFIG = BitDecodingConfig(bits=4, wn=1)  # N_r = 32
NR = KERNEL_CONFIG.residual_block_size


def _trace(n=8, rate=5000.0, prompt=96, output=24, shared=0.5, groups=1, seed=7):
    # High arrival rate so requests overlap in residence: concurrent
    # sharing (not just cached-pool resurrection) is what stresses CoW.
    return poisson_trace(
        n, rate, prompt_len=prompt, output_len=output, seed=seed,
        shared_prefix_fraction=shared, prefix_groups=groups,
    )


def _config(a100, n_pages=96, max_batch=8, prefill_chunk=None, **over):
    kwargs = dict(
        model=TINY,
        arch=a100,
        fmt=int_format(4, TINY, residual_window=NR),
        page_size=NR,
        n_pages=n_pages,
        max_batch=max_batch,
        max_steps=2000,
        prefill_chunk_tokens=prefill_chunk,
    )
    kwargs.update(over)
    return kwargs


def _engine(a100, trace, execute=False, **over):
    kernel = BitDecoding(KERNEL_CONFIG, a100)
    common = _config(a100, **over)
    if execute:
        cfg = EngineConfig(backend=PagedBitBackend(kernel), execute=True, **common)
    else:
        cfg = EngineConfig(attention=kernel, **common)
    return ContinuousBatchingEngine(cfg, trace)


class TestAnalytical:
    def test_hits_on_shared_prefix_trace(self, a100):
        trace = _trace()
        report = _engine(a100, trace, prefix_cache=True).run()
        assert report.prefix_cache_enabled
        assert report.prefix_hit_tokens > 0
        assert report.prefix_probe_tokens > 0
        assert 0.0 < report.prefix_hit_rate <= 1.0
        assert report.shared_pages_peak > 0
        assert report.effective_capacity_pages > 96

    def test_no_hits_without_shared_prefix(self, a100):
        trace = _trace(shared=0.0)
        report = _engine(a100, trace, prefix_cache=True).run()
        assert report.prefix_hit_tokens == 0
        assert report.prefix_hit_rate == 0.0

    def test_disabled_reports_zeroes(self, a100):
        report = _engine(a100, _trace()).run()
        assert not report.prefix_cache_enabled
        assert report.prefix_hit_tokens == 0
        assert report.effective_capacity_pages == 96

    def test_caching_strictly_helps(self, a100):
        trace = _trace()
        on = _engine(a100, trace, prefix_cache=True).run()
        off = _engine(a100, trace).run()
        assert on.total_generated_tokens == off.total_generated_tokens
        assert on.sustained_tokens_per_s > off.sustained_tokens_per_s
        assert on.effective_capacity_pages > off.effective_capacity_pages

    def test_prefix_groups_partition_hits(self, a100):
        # Two disjoint prefix groups: requests only hit within their group.
        trace = _trace(groups=2)
        report = _engine(a100, trace, prefix_cache=True).run()
        assert report.prefix_hit_tokens > 0

    def test_eviction_under_tiny_pool(self, a100):
        # Pool too small to keep every group's prefix cached: the LRU
        # pool must recycle registered pages without ever wedging.
        trace = _trace(n=10, prompt=64, output=8, groups=5)
        report = _engine(a100, trace, n_pages=10, max_batch=2, prefix_cache=True).run()
        assert report.completed == 10
        assert report.prefix_evictions > 0

    def test_share_flag_requires_cache(self):
        # The validation fires before any field is touched, so the other
        # required fields can be placeholders.
        with pytest.raises(ValueError, match="prefix_share"):
            EngineConfig(model=TINY, arch=None, fmt=None, prefix_share=False)


class TestExecuted:
    def test_schedule_matches_analytical(self, a100):
        trace = _trace()
        analytical = _engine(a100, trace, prefix_cache=True).run()
        executed = _engine(a100, trace, execute=True, prefix_cache=True).run()
        assert executed.prefix_hit_tokens == analytical.prefix_hit_tokens
        assert executed.total_generated_tokens == analytical.total_generated_tokens
        assert executed.decode_steps == analytical.decode_steps
        assert executed.prefill_steps == analytical.prefill_steps
        assert executed.preemptions == analytical.preemptions
        assert executed.sim_time_s == pytest.approx(analytical.sim_time_s)
        assert executed.executed_tokens == executed.total_generated_tokens

    def test_share_vs_copy_is_bit_exact(self, a100):
        """The load-bearing numerics check: mapping hit pages shared must
        decode the exact same hidden states as copying them privately."""
        trace = _trace()
        shared_eng = _engine(a100, trace, execute=True, prefix_cache=True)
        shared = shared_eng.run()
        copied_eng = _engine(
            a100, trace, execute=True, prefix_cache=True, prefix_share=False
        )
        copied = copied_eng.run()
        assert shared.sim_time_s == pytest.approx(copied.sim_time_s)
        assert shared.prefix_hit_tokens == copied.prefix_hit_tokens
        # Sharing actually happened in the shared run and not in the copy run.
        assert shared.shared_pages_peak > 0
        assert copied.shared_pages_peak == 0
        decoded_shared = shared_eng._runner.decoded
        decoded_copied = copied_eng._runner.decoded
        assert decoded_shared.keys() == decoded_copied.keys()
        for req_id in decoded_shared:
            for h_s, h_c in zip(decoded_shared[req_id], decoded_copied[req_id]):
                np.testing.assert_array_equal(h_s, h_c)

    def test_executes_under_chunked_prefill(self, a100):
        trace = _trace(prompt=70, output=10)
        analytical = _engine(
            a100, trace, prefix_cache=True, prefill_chunk=NR, n_pages=64
        ).run()
        executed = _engine(
            a100, trace, execute=True, prefix_cache=True, prefill_chunk=NR, n_pages=64
        ).run()
        assert analytical.prefix_hit_tokens > 0
        assert executed.prefix_hit_tokens == analytical.prefix_hit_tokens
        assert executed.total_generated_tokens == analytical.total_generated_tokens
        assert executed.sim_time_s == pytest.approx(analytical.sim_time_s)

    def test_executes_through_preemption(self, a100):
        # Tight pool: decode growth forces preemptions; a preempted victim
        # re-probes the cache on re-admission and must still execute every
        # generated token.
        trace = _trace(n=6, prompt=64, output=30, rate=5000.0)
        analytical = _engine(
            a100, trace, prefix_cache=True, n_pages=8, max_batch=4
        ).run()
        executed = _engine(
            a100, trace, execute=True, prefix_cache=True, n_pages=8, max_batch=4
        ).run()
        assert analytical.preemptions > 0
        assert executed.preemptions == analytical.preemptions
        assert executed.total_generated_tokens == analytical.total_generated_tokens
        assert executed.executed_tokens == executed.total_generated_tokens
