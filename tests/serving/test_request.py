"""Request model and Poisson trace generation."""

import pytest

from repro.serving.request import Request, poisson_trace


class TestRequest:
    def test_total_len(self):
        r = Request(req_id=0, arrival_s=0.0, prompt_len=100, output_len=20)
        assert r.total_len == 120

    def test_validation(self):
        with pytest.raises(ValueError):
            Request(req_id=0, arrival_s=-1.0, prompt_len=10, output_len=5)
        with pytest.raises(ValueError):
            Request(req_id=0, arrival_s=0.0, prompt_len=0, output_len=5)
        with pytest.raises(ValueError):
            Request(req_id=0, arrival_s=0.0, prompt_len=10, output_len=0)


class TestPoissonTrace:
    def test_deterministic_for_seed(self):
        a = poisson_trace(32, 4.0, 512, 64, seed=7, prompt_jitter=0.25)
        b = poisson_trace(32, 4.0, 512, 64, seed=7, prompt_jitter=0.25)
        assert a == b

    def test_seeds_differ(self):
        a = poisson_trace(32, 4.0, 512, 64, seed=1)
        b = poisson_trace(32, 4.0, 512, 64, seed=2)
        assert a != b

    def test_arrivals_sorted_and_start_at_zero(self):
        trace = poisson_trace(64, 8.0, 256, 32, seed=0)
        arrivals = [r.arrival_s for r in trace]
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)

    def test_mean_rate_roughly_matches(self):
        trace = poisson_trace(2000, 10.0, 256, 32, seed=0)
        span = trace[-1].arrival_s
        assert 2000 / span == pytest.approx(10.0, rel=0.15)

    def test_jitter_bounds(self):
        trace = poisson_trace(200, 4.0, 1000, 100, seed=3, prompt_jitter=0.25, output_jitter=0.5)
        assert all(750 <= r.prompt_len <= 1250 for r in trace)
        assert all(50 <= r.output_len <= 150 for r in trace)
        assert len({r.prompt_len for r in trace}) > 1

    def test_no_jitter_keeps_lengths_fixed(self):
        trace = poisson_trace(20, 4.0, 777, 33, seed=0)
        assert {r.prompt_len for r in trace} == {777}
        assert {r.output_len for r in trace} == {33}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_trace(0, 4.0, 10, 10)
        with pytest.raises(ValueError):
            poisson_trace(4, 0.0, 10, 10)
