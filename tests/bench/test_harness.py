"""Experiment container + assertion helpers."""

import pytest

from repro.bench.harness import (
    Experiment,
    Series,
    assert_monotonic_increase,
    assert_ordering,
    assert_within,
)


def _experiment():
    exp = Experiment(exp_id="t", title="test")
    exp.series_for("fast").add(1, 2.0)
    exp.series_for("fast").add(2, 3.0)
    exp.series_for("slow").add(1, 1.0)
    exp.series_for("slow").add(2, 0.9)
    return exp


class TestSeries:
    def test_value_at(self):
        s = Series("x", [(1, 2.0), (2, 4.0)])
        assert s.value_at(2) == 4.0
        with pytest.raises(KeyError):
            s.value_at(3)

    def test_paper_alignment(self):
        s = Series("x")
        s.add(1, 2.0)
        s.add(2, 4.0, paper=4.1)
        assert s.paper == [None, 4.1]


class TestExperiment:
    def test_series_for_creates_once(self):
        exp = Experiment("e", "t")
        a = exp.series_for("s")
        assert exp.series_for("s") is a

    def test_render_contains_values_and_paper(self):
        exp = Experiment("e", "t")
        exp.series_for("s").add("x", 2.5, paper=3.0)
        text = exp.render()
        assert "2.50(3)" in text
        assert "e: t" in text

    def test_render_handles_missing_points(self):
        text = _experiment().render()
        assert "-" not in text.split("\n")[0]  # header clean

    def test_notes_rendered(self):
        exp = _experiment()
        exp.note("hello")
        assert "note: hello" in exp.render()


class TestAssertions:
    def test_ordering_passes(self):
        assert_ordering(_experiment(), 1, "fast", "slow")

    def test_ordering_fails(self):
        with pytest.raises(AssertionError):
            assert_ordering(_experiment(), 1, "slow", "fast")

    def test_ordering_with_margin(self):
        with pytest.raises(AssertionError):
            assert_ordering(_experiment(), 1, "fast", "slow", margin=3.0)

    def test_monotonic_passes(self):
        assert_monotonic_increase(_experiment(), "fast")

    def test_monotonic_fails(self):
        with pytest.raises(AssertionError):
            assert_monotonic_increase(_experiment(), "slow")

    def test_within_band(self):
        assert_within(_experiment(), "fast", 2, 2.5, 3.5)
        with pytest.raises(AssertionError):
            assert_within(_experiment(), "fast", 2, 5.0, 6.0)
