"""BitDecoding reproduction test suite (tests/bench)."""
