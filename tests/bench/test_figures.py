"""Fast shape checks on the experiment definitions.

Full paper-vs-measured reporting lives in ``benchmarks/``; these tests pin
the qualitative claims on the cheaper experiments so plain ``pytest tests``
already guards the reproduction contract.
"""


import pytest

from repro.bench import (
    assert_monotonic_increase,
    assert_ordering,
    assert_within,
)
from repro.bench.figures import (
    fig4_motivation,
    fig8_blackwell,
    fig10_rtx4090,
    fig14_residual_overhead,
    fig16_breakdown,
    table2_quantpack,
)


class TestFig8:
    @pytest.fixture(scope="class")
    def exp(self):
        return fig8_blackwell("rtx5090")

    def test_speedup_grows_with_context(self, exp):
        assert_monotonic_increase(exp, "Single/BitDecoding-mxfp4")

    def test_reaches_the_paper_band(self, exp):
        assert_within(exp, "Single/BitDecoding-mxfp4", 131072, 3.0, 9.0)
        assert_within(exp, "Batches/BitDecoding-mxfp4", 128, 4.0, 10.0)

    def test_beats_kivi_everywhere(self, exp):
        for seq in (8192, 32768, 131072):
            assert_ordering(exp, seq, "Single/BitDecoding-mxfp4", "Single/KIVI-4")


class TestFig10:
    @pytest.fixture(scope="class")
    def exp(self):
        return fig10_rtx4090()

    def test_two_bit_beats_four_bit_at_long_context(self, exp):
        assert_ordering(exp, 102400, "Single-MHA/KC-2", "Single-MHA/KC-4")

    def test_paper_bands_single(self, exp):
        assert_within(exp, "Single-MHA/KC-4", 102400, 2.5, 6.5)   # paper ~4x
        assert_within(exp, "Single-MHA/KC-2", 102400, 4.5, 10.0)  # paper >7x

    def test_kivi_collapses_under_gqa(self, exp):
        mha = exp.series["Single-MHA/KIVI-4"].value_at(102400)
        gqa = exp.series["Single-GQA/KIVI-4"].value_at(102400)
        assert gqa < 0.6 * mha

    def test_bitdecoding_survives_gqa(self, exp):
        assert exp.series["Single-GQA/KC-4"].value_at(102400) > 2.0

    def test_pages_bitdecoding_beats_qserve(self, exp):
        for variant in ("MHA", "GQA"):
            for bs in (2, 4, 8):
                assert_ordering(exp, bs, f"Pages-{variant}/KC-4", f"Pages-{variant}/QServe")

    def test_qserve_gqa_collapse(self, exp):
        mha = exp.series["Pages-MHA/QServe"].value_at(8)
        gqa = exp.series["Pages-GQA/QServe"].value_at(8)
        assert gqa < 0.8 * mha


class TestFig14:
    @pytest.fixture(scope="class")
    def exp(self):
        return fig14_residual_overhead()

    def test_int4_beats_fp16_at_every_length(self, exp):
        for seq in (4096, 16384, 32768, 65536, 131072):
            fp16 = exp.series["FP16 FlashDecoding-v2"].value_at(seq)
            int4 = exp.series["INT4 W/ Residual"].value_at(seq)
            # Launch overhead compresses the ratio at 4K (paper: 1.53x
            # there, ~2.6x at 128K).
            floor = 1.1 if seq <= 4096 else 2.0
            assert fp16 / int4 > floor

    def test_residual_overhead_is_near_constant(self, exp):
        gaps = [
            exp.series["INT4 W/ Residual"].value_at(seq)
            - exp.series["INT4 W/O Residual"].value_at(seq)
            for seq in (4096, 131072)
        ]
        assert gaps[0] > 0 and gaps[1] > 0
        assert abs(gaps[1] - gaps[0]) < 0.5 * max(gaps)

    def test_overhead_fraction_vanishes_with_length(self, exp):
        def fraction(seq):
            w = exp.series["INT4 W/ Residual"].value_at(seq)
            wo = exp.series["INT4 W/O Residual"].value_at(seq)
            return (w - wo) / w

        assert fraction(131072) < fraction(4096)


class TestFig16:
    @pytest.fixture(scope="class")
    def exp(self):
        return fig16_breakdown()

    @pytest.mark.parametrize("device", ["a100", "h100", "rtx5090"])
    def test_every_stage_adds_speedup(self, exp, device):
        ladder = [
            exp.series["Baseline (Continuous Packing)"].value_at(device),
            exp.series["Layout"].value_at(device),
            exp.series["Layout + Warps"].value_at(device),
        ]
        assert ladder == sorted(ladder)
        full = exp.series["Layout + Warps + Pipeline"].value_at(device)
        assert full >= ladder[-1] * 0.99

    def test_newer_devices_gain_more(self, exp):
        a100 = exp.series["Layout + Warps + Pipeline"].value_at("a100")
        h100 = exp.series["Layout + Warps + Pipeline"].value_at("h100")
        assert h100 > a100


class TestTable2:
    @pytest.fixture(scope="class")
    def exp(self):
        return table2_quantpack()

    def test_prefill_ordering(self, exp):
        marlin = exp.series["Marlin"].value_at("Prefill")
        ladder = exp.series["Ladder"].value_at("Prefill")
        bitdec = exp.series["BitDecoding"].value_at("Prefill")
        assert marlin > 5 * ladder > 5 * bitdec

    def test_decode_ordering(self, exp):
        assert exp.series["BitDecoding"].value_at("Decode") < 0.01
        assert exp.series["Marlin"].value_at("Decode") > 0.1


class TestFig4:
    def test_dequant_degrades_the_original_layout(self):
        exp = fig4_motivation()
        wo = exp.series["W/O Dequant"]
        w = exp.series["W/ Dequant"]
        assert w.value_at("TCs utilization") < wo.value_at("TCs utilization")
        assert w.value_at("Memory Stalls") > wo.value_at("Memory Stalls")
