"""End-to-end decode latency model."""

import pytest

from repro.baselines.flash_decoding import FlashDecodingV2
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.model.config import LLAMA31_8B, LLAMA31_70B
from repro.model.inference import (
    decode_step_breakdown,
    decode_step_ms,
    decode_throughput_tokens_per_s,
    generation_latency_s,
    weight_gemm_ms,
)


class TestWeightGemm:
    def test_memory_bound_at_small_batch(self, a100):
        t1 = weight_gemm_ms(LLAMA31_8B, a100, batch=1)
        t8 = weight_gemm_ms(LLAMA31_8B, a100, batch=8)
        assert t1 == pytest.approx(t8)  # streaming weights dominates

    def test_compute_bound_at_huge_batch(self, a100):
        t_small = weight_gemm_ms(LLAMA31_8B, a100, batch=1)
        t_large = weight_gemm_ms(LLAMA31_8B, a100, batch=2048)
        assert t_large > 2 * t_small

    def test_tensor_parallel_divides(self, a100):
        t1 = weight_gemm_ms(LLAMA31_70B, a100, batch=1, n_gpus=1)
        t8 = weight_gemm_ms(LLAMA31_70B, a100, batch=1, n_gpus=8)
        assert t8 == pytest.approx(t1 / 8)

    def test_validation(self, a100):
        with pytest.raises(ValueError):
            weight_gemm_ms(LLAMA31_8B, a100, batch=0)


class TestDecodeStep:
    def test_breakdown_sums(self, a100):
        attn = FlashDecodingV2(a100)
        bd = decode_step_breakdown(LLAMA31_8B, a100, attn, batch=4, seq_len=8192)
        assert bd.total_ms == pytest.approx(
            bd.weights_ms + bd.attention_ms + bd.overhead_ms + bd.comm_ms
        )
        assert bd.comm_ms == 0  # single GPU

    def test_multi_gpu_adds_comm(self, a100):
        attn = FlashDecodingV2(a100)
        bd = decode_step_breakdown(LLAMA31_70B, a100, attn, batch=1, seq_len=8192, n_gpus=8)
        assert bd.comm_ms > 0

    def test_attention_grows_with_context(self, a100):
        attn = FlashDecodingV2(a100)
        t1 = decode_step_ms(LLAMA31_8B, a100, attn, batch=1, seq_len=8192)
        t2 = decode_step_ms(LLAMA31_8B, a100, attn, batch=1, seq_len=131072)
        assert t2 > t1

    def test_bitdecoding_cuts_long_context_latency(self, a100):
        fp16 = FlashDecodingV2(a100)
        bd = BitDecoding(BitDecodingConfig(bits=4), a100)
        t_fp16 = decode_step_ms(LLAMA31_8B, a100, fp16, batch=1, seq_len=131072)
        t_bd = decode_step_ms(LLAMA31_8B, a100, bd, batch=1, seq_len=131072)
        assert 1.3 < t_fp16 / t_bd < 4.0  # paper: ~3x at 128K


class TestThroughputAndGeneration:
    def test_throughput_is_batch_over_step(self, a100):
        attn = FlashDecodingV2(a100)
        step = decode_step_ms(LLAMA31_8B, a100, attn, batch=8, seq_len=4096)
        tput = decode_throughput_tokens_per_s(LLAMA31_8B, a100, attn, 8, 4096)
        assert tput == pytest.approx(8 / (step * 1e-3))

    def test_generation_latency_sums_growing_steps(self, a100):
        attn = FlashDecodingV2(a100)
        lat = generation_latency_s(LLAMA31_8B, a100, attn, seq_len=4096, new_tokens=4)
        one = decode_step_ms(LLAMA31_8B, a100, attn, batch=1, seq_len=4096) * 1e-3
        assert lat >= 4 * one * 0.99
