"""End-to-end decode latency model."""

import pytest

from repro.baselines.flash_decoding import FlashDecodingV2
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.model.config import LLAMA31_8B, LLAMA31_70B
from repro.model.inference import (
    decode_step_breakdown,
    decode_step_ms,
    decode_throughput_tokens_per_s,
    generation_latency_s,
    mixed_step_breakdown,
    mixed_step_ms,
    prefill_attention_flops,
    prefill_time_ms,
    weight_gemm_ms,
)


class TestWeightGemm:
    def test_memory_bound_at_small_batch(self, a100):
        t1 = weight_gemm_ms(LLAMA31_8B, a100, batch=1)
        t8 = weight_gemm_ms(LLAMA31_8B, a100, batch=8)
        assert t1 == pytest.approx(t8)  # streaming weights dominates

    def test_compute_bound_at_huge_batch(self, a100):
        t_small = weight_gemm_ms(LLAMA31_8B, a100, batch=1)
        t_large = weight_gemm_ms(LLAMA31_8B, a100, batch=2048)
        assert t_large > 2 * t_small

    def test_tensor_parallel_divides(self, a100):
        t1 = weight_gemm_ms(LLAMA31_70B, a100, batch=1, n_gpus=1)
        t8 = weight_gemm_ms(LLAMA31_70B, a100, batch=1, n_gpus=8)
        assert t8 == pytest.approx(t1 / 8)

    def test_validation(self, a100):
        with pytest.raises(ValueError):
            weight_gemm_ms(LLAMA31_8B, a100, batch=0)


class TestDecodeStep:
    def test_breakdown_sums(self, a100):
        attn = FlashDecodingV2(a100)
        bd = decode_step_breakdown(LLAMA31_8B, a100, attn, batch=4, seq_len=8192)
        assert bd.total_ms == pytest.approx(
            bd.weights_ms + bd.attention_ms + bd.overhead_ms + bd.comm_ms
        )
        assert bd.comm_ms == 0  # single GPU

    def test_multi_gpu_adds_comm(self, a100):
        attn = FlashDecodingV2(a100)
        bd = decode_step_breakdown(LLAMA31_70B, a100, attn, batch=1, seq_len=8192, n_gpus=8)
        assert bd.comm_ms > 0

    def test_attention_grows_with_context(self, a100):
        attn = FlashDecodingV2(a100)
        t1 = decode_step_ms(LLAMA31_8B, a100, attn, batch=1, seq_len=8192)
        t2 = decode_step_ms(LLAMA31_8B, a100, attn, batch=1, seq_len=131072)
        assert t2 > t1

    def test_bitdecoding_cuts_long_context_latency(self, a100):
        fp16 = FlashDecodingV2(a100)
        bd = BitDecoding(BitDecodingConfig(bits=4), a100)
        t_fp16 = decode_step_ms(LLAMA31_8B, a100, fp16, batch=1, seq_len=131072)
        t_bd = decode_step_ms(LLAMA31_8B, a100, bd, batch=1, seq_len=131072)
        assert 1.3 < t_fp16 / t_bd < 4.0  # paper: ~3x at 128K


class TestMixedStep:
    def test_pure_decode_matches_decode_step(self, a100):
        attn = FlashDecodingV2(a100)
        mixed = mixed_step_ms(LLAMA31_8B, a100, attn, 8, 4096, prefill_chunks=[])
        plain = decode_step_ms(LLAMA31_8B, a100, attn, batch=8, seq_len=4096)
        assert mixed == pytest.approx(plain)

    def test_chunk_attention_flops_telescope(self):
        whole = prefill_attention_flops(LLAMA31_8B, 0, 4096)
        chunked = sum(prefill_attention_flops(LLAMA31_8B, ctx, 512) for ctx in range(0, 4096, 512))
        assert chunked == pytest.approx(whole)

    def test_chunked_prefill_total_exceeds_whole_prompt(self, a100):
        """Chunking repeats per-step overheads and loses weight-GEMM
        efficiency, so the summed chunk steps cost more than one prefill —
        the TTFT price of not head-of-line blocking."""
        attn = FlashDecodingV2(a100)
        whole = prefill_time_ms(LLAMA31_8B, a100, 4096)
        chunked = sum(
            mixed_step_ms(LLAMA31_8B, a100, attn, 0, 0, [(ctx, 512)])
            for ctx in range(0, 4096, 512)
        )
        assert chunked > whole

    def test_mixed_step_cheaper_than_stall(self, a100):
        """One mixed step (chunk + decode batch) must cost far less than a
        whole-prompt prefill — the inequality the TBT collapse rests on."""
        attn = FlashDecodingV2(a100)
        mixed = mixed_step_ms(LLAMA31_8B, a100, attn, 4, 8192, [(2048, 512)])
        stall = prefill_time_ms(LLAMA31_8B, a100, 32768)
        assert mixed < stall / 10

    def test_breakdown_carries_composition(self, a100):
        attn = FlashDecodingV2(a100)
        bd = mixed_step_breakdown(LLAMA31_8B, a100, attn, 4, 8192, [(0, 512), (1024, 256)])
        assert bd.prefill_tokens == 768
        assert bd.decode_tokens == 4
        assert bd.total_ms == pytest.approx(
            bd.weights_ms + bd.attention_ms + bd.overhead_ms + bd.comm_ms
        )
        assert bd.comm_ms == 0  # single GPU

    def test_weights_see_combined_tokens(self, a100):
        attn = FlashDecodingV2(a100)
        small = mixed_step_breakdown(LLAMA31_8B, a100, attn, 1, 1024, [(0, 64)])
        large = mixed_step_breakdown(LLAMA31_8B, a100, attn, 1, 1024, [(0, 4096)])
        assert large.weights_ms > small.weights_ms

    def test_multi_gpu_comm_counts_all_tokens(self, a100):
        attn = FlashDecodingV2(a100)
        bd = mixed_step_breakdown(LLAMA31_70B, a100, attn, 2, 4096, [(0, 512)], n_gpus=8)
        decode_only = decode_step_breakdown(LLAMA31_70B, a100, attn, 2, 4096, n_gpus=8)
        assert bd.comm_ms > decode_only.comm_ms

    def test_validation(self, a100):
        attn = FlashDecodingV2(a100)
        with pytest.raises(ValueError):
            mixed_step_ms(LLAMA31_8B, a100, attn, 0, 0, [])
        with pytest.raises(ValueError):
            mixed_step_ms(LLAMA31_8B, a100, attn, -1, 128, [(0, 64)])
        with pytest.raises(ValueError):
            prefill_attention_flops(LLAMA31_8B, -1, 64)


class TestThroughputAndGeneration:
    def test_throughput_is_batch_over_step(self, a100):
        attn = FlashDecodingV2(a100)
        step = decode_step_ms(LLAMA31_8B, a100, attn, batch=8, seq_len=4096)
        tput = decode_throughput_tokens_per_s(LLAMA31_8B, a100, attn, 8, 4096)
        assert tput == pytest.approx(8 / (step * 1e-3))

    def test_generation_latency_sums_growing_steps(self, a100):
        attn = FlashDecodingV2(a100)
        lat = generation_latency_s(LLAMA31_8B, a100, attn, seq_len=4096, new_tokens=4)
        one = decode_step_ms(LLAMA31_8B, a100, attn, batch=1, seq_len=4096) * 1e-3
        assert lat >= 4 * one * 0.99
