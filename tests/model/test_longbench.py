"""LongBench-proxy accuracy suite (Table I's mechanism)."""

import pytest

from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.model.longbench import DEFAULT_SUITE, TaskConfig, run_suite, run_task

QUICK = TaskConfig(name="quick", n_pairs=256, trials=40)


class TestTaskMechanics:
    def test_fp16_reference_solves_the_task(self):
        acc = run_task(QUICK, engine=None, seed=0)
        assert acc > 0.85

    def test_scores_are_probabilities(self):
        acc = run_task(QUICK, engine=None, seed=1)
        assert 0.0 <= acc <= 1.0

    def test_deterministic_given_seed(self):
        a = run_task(QUICK, engine=None, seed=3)
        b = run_task(QUICK, engine=None, seed=3)
        assert a == b

    def test_context_must_exercise_quantization(self):
        """Suite tasks must exceed the INT2 residual block (256 tokens) so
        the packed path actually runs."""
        for task in DEFAULT_SUITE:
            assert task.n_pairs >= 256


class TestQuantizationDegradation:
    @pytest.fixture(scope="class")
    def scores(self):
        engine4 = BitDecoding(BitDecodingConfig(bits=4), "a100")
        engine2 = BitDecoding(BitDecodingConfig(bits=2), "a100")
        return {
            "fp16": run_task(QUICK, None, seed=5),
            "int4": run_task(QUICK, engine4, seed=5),
            "int2": run_task(QUICK, engine2, seed=5),
        }

    def test_int4_near_lossless(self, scores):
        """Paper: -0.2% for INT4."""
        assert scores["int4"] >= scores["fp16"] - 0.08

    def test_int2_degrades_more_than_int4(self, scores):
        assert scores["int2"] <= scores["int4"] + 0.02

    def test_int2_still_usable(self, scores):
        """Paper: INT2 loses only a few percent, not everything."""
        assert scores["int2"] >= scores["fp16"] - 0.15


class TestSuite:
    def test_suite_reports_average(self):
        small = (TaskConfig(name="t", n_pairs=256, trials=10),)
        scores = run_suite(None, small, seed=0)
        assert set(scores) == {"t", "average"}
        assert scores["average"] == scores["t"]


class TestOneBitFrontier:
    def test_int1_collapses_retrieval(self):
        """The paper cites 1-bit caches as viable only 'under specific
        conditions' (Sec. I); on a generic retrieval task the binary key
        cache must lose a large share of its accuracy while INT4 stays
        near FP16.  512 pairs are needed: INT1's residual block (Eq. 1,
        R = 16) holds 512 tokens, and shorter contexts never quantize."""
        task = TaskConfig(name="q", n_pairs=512, trials=40)
        fp16 = run_task(task, None, seed=9)
        int4 = run_task(
            task, BitDecoding(BitDecodingConfig(bits=4), "a100"), seed=9
        )
        int1 = run_task(
            task, BitDecoding(BitDecodingConfig(bits=1), "a100"), seed=9
        )
        assert int4 > fp16 - 0.1
        assert int1 < fp16 - 0.15
