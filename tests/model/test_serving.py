"""Serving model: capacity, max batch, throughput chain."""

import pytest

from repro.baselines.flash_decoding import FlashDecodingV2
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.model.config import LLAMA2_7B, LLAMA31_8B, LLAMA31_70B
from repro.model.inference import prefill_time_ms
from repro.model.memory import (
    page_bytes,
    page_pool_size,
    pages_in_budget,
    residual_bytes_per_seq,
)
from repro.model.serving import (
    CacheFormat,
    ServingOOMError,
    cache_bytes_per_token,
    fits,
    fp16_format,
    int_format,
    max_batch_size,
    max_throughput_tokens_per_s,
    memory_required_bytes,
)


class TestCacheFormats:
    def test_fp16_baseline(self):
        assert fp16_format().bits_per_value == 16

    def test_int_format_has_metadata(self):
        fmt = int_format(4, LLAMA31_8B)
        assert fmt.bits_per_value == 4
        assert fmt.meta_bytes_per_token_layer > 0

    def test_bytes_per_token_ordering(self):
        fp16 = cache_bytes_per_token(LLAMA31_8B, fp16_format())
        int4 = cache_bytes_per_token(LLAMA31_8B, int_format(4, LLAMA31_8B))
        int2 = cache_bytes_per_token(LLAMA31_8B, int_format(2, LLAMA31_8B))
        assert fp16 > 3 * int4
        assert int4 > 1.5 * int2

    def test_paper_intro_example(self):
        """Sec. I: a 7B model at 32K x batch 8 needs ~128GB of FP16 KV."""
        per_token = cache_bytes_per_token(LLAMA2_7B, fp16_format())
        total = 8 * 32768 * per_token
        assert 120e9 < total < 145e9


class TestCapacity:
    def test_memory_includes_weights(self, a100):
        req = memory_required_bytes(LLAMA31_8B, fp16_format(), 1, 1024)
        assert req > LLAMA31_8B.weights_bytes()

    def test_quantization_multiplies_max_batch(self, a100):
        fp16_bs = max_batch_size(LLAMA31_8B, a100, fp16_format(), 32768)
        int4_bs = max_batch_size(LLAMA31_8B, a100, int_format(4, LLAMA31_8B), 32768)
        int2_bs = max_batch_size(LLAMA31_8B, a100, int_format(2, LLAMA31_8B), 32768)
        assert int4_bs >= 3 * fp16_bs
        assert int2_bs > int4_bs

    def test_zero_when_nothing_fits(self, rtx4090):
        # 70B weights alone exceed a 24GB card.
        assert max_batch_size(LLAMA31_70B, rtx4090, fp16_format(), 1024) == 0

    def test_workspace_counts_against_memory(self, a100):
        heavy = CacheFormat(
            name="kivi-like", bits_per_value=4,
            workspace_bytes=lambda b, s: 2.0 * float(s) ** 2 * 2.0,
        )
        assert not fits(LLAMA31_8B, a100, heavy, 1, 131072)
        assert fits(LLAMA31_8B, a100, heavy, 1, 65536)

    def test_multi_gpu_divides_footprint(self, a100):
        assert not fits(LLAMA31_70B, a100, fp16_format(), 1, 32768, n_gpus=1)
        assert fits(LLAMA31_70B, a100, fp16_format(), 1, 32768, n_gpus=8)


class TestSharedMemoryAccounting:
    """The static model and the serving engine share one byte code path."""

    def test_residual_window_costs_memory(self):
        plain = int_format(2, LLAMA31_8B)
        windowed = int_format(2, LLAMA31_8B, residual_window=64)
        assert residual_bytes_per_seq(LLAMA31_8B, plain) == 0
        assert residual_bytes_per_seq(LLAMA31_8B, windowed) == pytest.approx(
            64 * LLAMA31_8B.kv_bytes_per_token(16.0)
        )
        assert memory_required_bytes(LLAMA31_8B, windowed, 8, 1024) > (
            memory_required_bytes(LLAMA31_8B, plain, 8, 1024)
        )

    def test_page_pool_orders_by_bits(self, a100):
        fp16 = page_pool_size(LLAMA31_8B, a100, fp16_format())
        int4 = page_pool_size(LLAMA31_8B, a100, int_format(4, LLAMA31_8B))
        int2 = page_pool_size(LLAMA31_8B, a100, int_format(2, LLAMA31_8B))
        assert fp16 > 0
        assert int4 > 3 * fp16
        assert int2 > int4

    def test_reserved_seqs_shrink_pool(self, a100):
        fmt = int_format(4, LLAMA31_8B, residual_window=64)
        free = page_pool_size(LLAMA31_8B, a100, fmt)
        reserved = page_pool_size(LLAMA31_8B, a100, fmt, reserved_seqs=256)
        assert 0 < reserved < free

    def test_pool_empty_when_weights_exceed_memory(self, rtx4090):
        assert page_pool_size(LLAMA31_70B, rtx4090, fp16_format()) == 0

    def test_pages_in_budget_matches_page_bytes(self):
        fmt = fp16_format()
        per_page = page_bytes(LLAMA31_8B, fmt, 64)
        assert pages_in_budget(LLAMA31_8B, fmt, 64, 10 * per_page) == 10

    def test_multi_gpu_pool_matches_static_model(self, a100):
        """The engine's sharded page pool and the static max-batch model
        must describe the same capacity (70B only fits on 8 GPUs)."""
        fmt = fp16_format()
        seq_len = 32768
        pool_pages = page_pool_size(LLAMA31_70B, a100, fmt, page_size=64, n_gpus=8)
        pool_tokens = pool_pages * 64
        static_tokens = max_batch_size(LLAMA31_70B, a100, fmt, seq_len, n_gpus=8) * seq_len
        assert static_tokens > 0
        assert static_tokens <= pool_tokens < static_tokens + 2 * seq_len

    def test_prefill_time_grows_superlinearly(self, a100):
        short = prefill_time_ms(LLAMA31_8B, a100, 1024)
        long = prefill_time_ms(LLAMA31_8B, a100, 16384)
        assert long > 16 * short  # attention term is quadratic


class TestThroughput:
    def test_bitdecoding_beats_fp16_serving(self, a100):
        fp16 = max_throughput_tokens_per_s(
            LLAMA31_8B, a100, fp16_format(), FlashDecodingV2(a100), 32768
        )
        bd = max_throughput_tokens_per_s(
            LLAMA31_8B, a100, int_format(4, LLAMA31_8B),
            BitDecoding(BitDecodingConfig(bits=4), a100), 32768,
        )
        assert 2.0 < bd / fp16 < 6.5  # paper Table I: +2.98x

    def test_oom_raises(self, rtx4090):
        with pytest.raises(ServingOOMError):
            max_throughput_tokens_per_s(
                LLAMA31_70B, rtx4090, fp16_format(), FlashDecodingV2(rtx4090), 32768
            )

    def test_int2_highest_throughput(self, a100):
        results = {}
        for bits in (4, 2):
            engine = BitDecoding(BitDecodingConfig(bits=bits), a100)
            results[bits] = max_throughput_tokens_per_s(
                LLAMA31_8B, a100, int_format(bits, LLAMA31_8B), engine, 32768
            )
        assert results[2] > results[4]
