"""Serving model: capacity, max batch, throughput chain."""

import pytest

from repro.baselines.flash_decoding import FlashDecodingV2
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.model.config import LLAMA2_7B, LLAMA31_8B, LLAMA31_70B
from repro.model.serving import (
    CacheFormat,
    ServingOOMError,
    cache_bytes_per_token,
    fits,
    fp16_format,
    int_format,
    max_batch_size,
    max_throughput_tokens_per_s,
    memory_required_bytes,
)


class TestCacheFormats:
    def test_fp16_baseline(self):
        assert fp16_format().bits_per_value == 16

    def test_int_format_has_metadata(self):
        fmt = int_format(4, LLAMA31_8B)
        assert fmt.bits_per_value == 4
        assert fmt.meta_bytes_per_token_layer > 0

    def test_bytes_per_token_ordering(self):
        fp16 = cache_bytes_per_token(LLAMA31_8B, fp16_format())
        int4 = cache_bytes_per_token(LLAMA31_8B, int_format(4, LLAMA31_8B))
        int2 = cache_bytes_per_token(LLAMA31_8B, int_format(2, LLAMA31_8B))
        assert fp16 > 3 * int4
        assert int4 > 1.5 * int2

    def test_paper_intro_example(self):
        """Sec. I: a 7B model at 32K x batch 8 needs ~128GB of FP16 KV."""
        per_token = cache_bytes_per_token(LLAMA2_7B, fp16_format())
        total = 8 * 32768 * per_token
        assert 120e9 < total < 145e9


class TestCapacity:
    def test_memory_includes_weights(self, a100):
        req = memory_required_bytes(LLAMA31_8B, fp16_format(), 1, 1024)
        assert req > LLAMA31_8B.weights_bytes()

    def test_quantization_multiplies_max_batch(self, a100):
        fp16_bs = max_batch_size(LLAMA31_8B, a100, fp16_format(), 32768)
        int4_bs = max_batch_size(LLAMA31_8B, a100, int_format(4, LLAMA31_8B), 32768)
        int2_bs = max_batch_size(LLAMA31_8B, a100, int_format(2, LLAMA31_8B), 32768)
        assert int4_bs >= 3 * fp16_bs
        assert int2_bs > int4_bs

    def test_zero_when_nothing_fits(self, rtx4090):
        # 70B weights alone exceed a 24GB card.
        assert max_batch_size(LLAMA31_70B, rtx4090, fp16_format(), 1024) == 0

    def test_workspace_counts_against_memory(self, a100):
        heavy = CacheFormat(
            name="kivi-like", bits_per_value=4,
            workspace_bytes=lambda b, s: 2.0 * float(s) ** 2 * 2.0,
        )
        assert not fits(LLAMA31_8B, a100, heavy, 1, 131072)
        assert fits(LLAMA31_8B, a100, heavy, 1, 65536)

    def test_multi_gpu_divides_footprint(self, a100):
        assert not fits(LLAMA31_70B, a100, fp16_format(), 1, 32768, n_gpus=1)
        assert fits(LLAMA31_70B, a100, fp16_format(), 1, 32768, n_gpus=8)


class TestThroughput:
    def test_bitdecoding_beats_fp16_serving(self, a100):
        fp16 = max_throughput_tokens_per_s(
            LLAMA31_8B, a100, fp16_format(), FlashDecodingV2(a100), 32768
        )
        bd = max_throughput_tokens_per_s(
            LLAMA31_8B, a100, int_format(4, LLAMA31_8B),
            BitDecoding(BitDecodingConfig(bits=4), a100), 32768,
        )
        assert 2.0 < bd / fp16 < 6.5  # paper Table I: +2.98x

    def test_oom_raises(self, rtx4090):
        with pytest.raises(ServingOOMError):
            max_throughput_tokens_per_s(
                LLAMA31_70B, rtx4090, fp16_format(), FlashDecodingV2(rtx4090), 32768
            )

    def test_int2_highest_throughput(self, a100):
        results = {}
        for bits in (4, 2):
            engine = BitDecoding(BitDecodingConfig(bits=bits), a100)
            results[bits] = max_throughput_tokens_per_s(
                LLAMA31_8B, a100, int_format(bits, LLAMA31_8B), engine, 32768
            )
        assert results[2] > results[4]
