"""TinyTransformer: the runnable numerics substrate."""

import numpy as np
import pytest

from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.model.transformer import (
    TinyTransformer,
    apply_rope,
    rms_norm,
    rope_angles,
    swiglu,
)


class TestPrimitives:
    def test_rms_norm_unit_scale(self, rng):
        x = rng.standard_normal((4, 16)).astype(np.float32)
        out = rms_norm(x, np.ones(16, dtype=np.float32))
        rms = np.sqrt(np.mean(out * out, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_rope_preserves_norm(self, rng):
        x = rng.standard_normal((2, 8, 16)).astype(np.float32)
        cos, sin = rope_angles(16, np.arange(8))
        out = apply_rope(x, cos, sin)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-5
        )

    def test_rope_position_zero_is_identity(self, rng):
        x = rng.standard_normal((1, 1, 16)).astype(np.float32)
        cos, sin = rope_angles(16, np.asarray([0]))
        np.testing.assert_allclose(apply_rope(x, cos, sin), x, atol=1e-6)

    def test_rope_relative_dot_products(self, rng):
        """RoPE encodes relative positions: <q_m, k_n> depends on m - n."""
        q = rng.standard_normal(16).astype(np.float32)
        k = rng.standard_normal(16).astype(np.float32)
        cos, sin = rope_angles(16, np.arange(10))
        q_rot = apply_rope(np.tile(q, (10, 1))[None], cos, sin)[0]
        k_rot = apply_rope(np.tile(k, (10, 1))[None], cos, sin)[0]
        d1 = q_rot[5] @ k_rot[3]
        d2 = q_rot[7] @ k_rot[5]  # same offset of 2
        assert d1 == pytest.approx(d2, rel=1e-4, abs=1e-4)

    def test_rope_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_angles(15, np.arange(4))

    def test_swiglu_shape(self, rng):
        x = rng.standard_normal((2, 8)).astype(np.float32)
        w_g = rng.standard_normal((8, 16)).astype(np.float32)
        w_u = rng.standard_normal((8, 16)).astype(np.float32)
        w_d = rng.standard_normal((16, 8)).astype(np.float32)
        assert swiglu(x, w_g, w_u, w_d).shape == (2, 8)


class TestEndToEnd:
    @pytest.fixture
    def dims(self):
        return dict(n_layers=2, hq=4, hkv=2, head_dim=16, hidden=64, intermediate=128)

    def test_reference_decode_runs(self, rng, dims):
        model = TinyTransformer(**dims, engine=None, seed=0)
        x = rng.standard_normal((1, 20, 64)).astype(np.float32)
        model.prefill(x)
        out = model.decode_step(rng.standard_normal((1, 64)).astype(np.float32))
        assert out.shape == (1, 64)
        assert np.all(np.isfinite(out))

    def test_quantized_engine_tracks_reference(self, rng, dims):
        """A full transformer forward through the INT8 cache stays close to
        the exact-attention reference (INT8 error is tiny)."""
        x = rng.standard_normal((1, 40, 64)).astype(np.float32) * 0.5
        steps = [rng.standard_normal((1, 64)).astype(np.float32) * 0.5 for _ in range(3)]

        ref = TinyTransformer(**dims, engine=None, seed=0)
        ref.prefill(x.copy())
        engine = BitDecoding(
            BitDecodingConfig(bits=8, wn=2), "a100"
        )  # small N_r so the cache actually quantizes
        quant = TinyTransformer(**dims, engine=engine, seed=0)
        quant.prefill(x.copy())

        for step in steps:
            out_ref = ref.decode_step(step.copy())
            out_quant = quant.decode_step(step.copy())
        rel = np.abs(out_quant - out_ref).max() / (np.abs(out_ref).max() + 1e-9)
        assert rel < 0.05

    def test_cache_grows_with_decode(self, rng, dims):
        engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
        model = TinyTransformer(**dims, engine=engine, seed=0)
        model.prefill(rng.standard_normal((1, 10, 64)).astype(np.float32))
        assert model.caches[0].seq_len == 10
        model.decode_step(rng.standard_normal((1, 64)).astype(np.float32))
        assert model.caches[0].seq_len == 11

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            TinyTransformer(n_layers=1, hq=4, hkv=2, head_dim=16, hidden=63, intermediate=64)
