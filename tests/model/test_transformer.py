"""TinyTransformer: the runnable numerics substrate."""

import numpy as np
import pytest

from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.model.transformer import (
    TinyTransformer,
    apply_rope,
    rms_norm,
    rope_angles,
    swiglu,
)


class TestPrimitives:
    def test_rms_norm_unit_scale(self, rng):
        x = rng.standard_normal((4, 16)).astype(np.float32)
        out = rms_norm(x, np.ones(16, dtype=np.float32))
        rms = np.sqrt(np.mean(out * out, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_rope_preserves_norm(self, rng):
        x = rng.standard_normal((2, 8, 16)).astype(np.float32)
        cos, sin = rope_angles(16, np.arange(8))
        out = apply_rope(x, cos, sin)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-5
        )

    def test_rope_position_zero_is_identity(self, rng):
        x = rng.standard_normal((1, 1, 16)).astype(np.float32)
        cos, sin = rope_angles(16, np.asarray([0]))
        np.testing.assert_allclose(apply_rope(x, cos, sin), x, atol=1e-6)

    def test_rope_relative_dot_products(self, rng):
        """RoPE encodes relative positions: <q_m, k_n> depends on m - n."""
        q = rng.standard_normal(16).astype(np.float32)
        k = rng.standard_normal(16).astype(np.float32)
        cos, sin = rope_angles(16, np.arange(10))
        q_rot = apply_rope(np.tile(q, (10, 1))[None], cos, sin)[0]
        k_rot = apply_rope(np.tile(k, (10, 1))[None], cos, sin)[0]
        d1 = q_rot[5] @ k_rot[3]
        d2 = q_rot[7] @ k_rot[5]  # same offset of 2
        assert d1 == pytest.approx(d2, rel=1e-4, abs=1e-4)

    def test_rope_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_angles(15, np.arange(4))

    def test_swiglu_shape(self, rng):
        x = rng.standard_normal((2, 8)).astype(np.float32)
        w_g = rng.standard_normal((8, 16)).astype(np.float32)
        w_u = rng.standard_normal((8, 16)).astype(np.float32)
        w_d = rng.standard_normal((16, 8)).astype(np.float32)
        assert swiglu(x, w_g, w_u, w_d).shape == (2, 8)


class TestEndToEnd:
    @pytest.fixture
    def dims(self):
        return dict(n_layers=2, hq=4, hkv=2, head_dim=16, hidden=64, intermediate=128)

    def test_reference_decode_runs(self, rng, dims):
        model = TinyTransformer(**dims, engine=None, seed=0)
        x = rng.standard_normal((1, 20, 64)).astype(np.float32)
        model.prefill(x)
        out = model.decode_step(rng.standard_normal((1, 64)).astype(np.float32))
        assert out.shape == (1, 64)
        assert np.all(np.isfinite(out))

    def test_quantized_engine_tracks_reference(self, rng, dims):
        """A full transformer forward through the INT8 cache stays close to
        the exact-attention reference (INT8 error is tiny)."""
        x = rng.standard_normal((1, 40, 64)).astype(np.float32) * 0.5
        steps = [rng.standard_normal((1, 64)).astype(np.float32) * 0.5 for _ in range(3)]

        ref = TinyTransformer(**dims, engine=None, seed=0)
        ref.prefill(x.copy())
        engine = BitDecoding(
            BitDecodingConfig(bits=8, wn=2), "a100"
        )  # small N_r so the cache actually quantizes
        quant = TinyTransformer(**dims, engine=engine, seed=0)
        quant.prefill(x.copy())

        for step in steps:
            out_ref = ref.decode_step(step.copy())
            out_quant = quant.decode_step(step.copy())
        rel = np.abs(out_quant - out_ref).max() / (np.abs(out_ref).max() + 1e-9)
        assert rel < 0.05

    def test_cache_grows_with_decode(self, rng, dims):
        engine = BitDecoding(BitDecodingConfig(bits=4), "a100")
        model = TinyTransformer(**dims, engine=engine, seed=0)
        model.prefill(rng.standard_normal((1, 10, 64)).astype(np.float32))
        assert model.caches[0].seq_len == 10
        model.decode_step(rng.standard_normal((1, 64)).astype(np.float32))
        assert model.caches[0].seq_len == 11

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            TinyTransformer(n_layers=1, hq=4, hkv=2, head_dim=16, hidden=63, intermediate=64)


class TestVectorizedAttention:
    """The grouped-query einsum paths must match per-head loop semantics."""

    @pytest.mark.parametrize("hq,hkv", [(4, 2), (4, 4), (4, 1)])
    def test_prefill_attention_matches_per_head_loop(self, rng, hq, hkv):
        from repro.attn.reference import chunked_causal_attention

        dims = dict(n_layers=1, hq=hq, hkv=hkv, head_dim=16, hidden=64, intermediate=64)
        model = TinyTransformer(**dims, engine=None, seed=1)
        layer = model.layers[0]
        normed = rng.standard_normal((2, 12, 64)).astype(np.float32)
        k, v = model._project_kv(layer, normed, 0)
        qr = model._project_q(layer, normed, 0)
        out = chunked_causal_attention(qr, None, None, k, v).reshape(2, 12, 64) @ layer.wo

        # Per-head loop reference (the pre-vectorization implementation).
        seq = normed.shape[1]
        q = (normed @ layer.wq).reshape(2, seq, hq, 16)
        cos, sin = rope_angles(16, np.arange(seq))
        q = apply_rope(q.transpose(0, 2, 1, 3), cos, sin)
        gq = hq // hkv
        per_head = np.empty_like(q)
        for b in range(2):
            for hh in range(hq):
                s = (q[b, hh] @ k[b, hh // gq].T) / np.sqrt(np.float32(16))
                s = s + np.triu(np.full((seq, seq), -np.inf, dtype=np.float32), k=1)
                s = s - s.max(axis=-1, keepdims=True)
                p = np.exp(s)
                p /= p.sum(axis=-1, keepdims=True)
                per_head[b, hh] = p @ v[b, hh // gq]
        expected = per_head.transpose(0, 2, 1, 3).reshape(2, seq, 64) @ layer.wo
        np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-6)

    def test_exact_decode_matches_reference_attention(self, rng):
        from repro.core.softmax import reference_attention

        dims = dict(n_layers=1, hq=4, hkv=2, head_dim=16, hidden=64, intermediate=64)
        model = TinyTransformer(**dims, engine=None, seed=2)
        q = rng.standard_normal((2, 1, 4, 16)).astype(np.float32)
        k = rng.standard_normal((2, 2, 9, 16)).astype(np.float32)
        v = rng.standard_normal((2, 2, 9, 16)).astype(np.float32)
        out = model._exact_decode(q, k, v)
        for b in range(2):
            for hh in range(4):
                ref = reference_attention(q[b, 0, hh : hh + 1], k[b, hh // 2], v[b, hh // 2])
                np.testing.assert_allclose(out[b, 0, hh], ref[0], rtol=1e-5, atol=1e-6)

    def test_rope_tables_cached_across_layers_and_calls(self, rng):
        dims = dict(n_layers=3, hq=4, hkv=2, head_dim=16, hidden=64, intermediate=64)
        model = TinyTransformer(**dims, engine=None, seed=0)
        model.prefill(rng.standard_normal((1, 8, 64)).astype(np.float32))
        # Prefill touches (0, 8) once, shared by all 3 layers.
        assert set(model._rope_cache) == {(0, 8)}
        first = model._rope(0, 8)
        assert model._rope(0, 8) is first  # memo hit, no recompute
        model.decode_step(rng.standard_normal((1, 64)).astype(np.float32))
        assert (8, 1) in model._rope_cache
