"""Model-config registry checks."""

import pytest

from repro.model.config import (
    LLAMA2_7B,
    LLAMA31_8B,
    LLAMA31_70B,
    MODEL_REGISTRY,
    TINY,
    ModelConfig,
    QWEN3_14B,
    QWEN3_8B,
    get_model,
)


class TestRegistry:
    def test_all_models_registered(self):
        # The paper's five evaluated LLMs plus the tiny execution model.
        assert len(MODEL_REGISTRY) == 6

    def test_lookup(self):
        assert get_model("LLaMA-3.1-8B") is LLAMA31_8B

    def test_tiny_model_for_execution(self):
        assert get_model("tiny") is TINY
        assert TINY.attention_variant == "GQA"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("gpt-5")


class TestShapes:
    def test_only_llama2_is_mha(self):
        assert LLAMA2_7B.attention_variant == "MHA"
        for model in (LLAMA31_8B, LLAMA31_70B, QWEN3_8B, QWEN3_14B):
            assert model.attention_variant == "GQA"

    def test_param_counts_in_expected_range(self):
        assert 6e9 < LLAMA2_7B.param_count < 8e9
        assert 7e9 < LLAMA31_8B.param_count < 9.5e9
        assert 60e9 < LLAMA31_70B.param_count < 80e9
        assert 12e9 < QWEN3_14B.param_count < 16.5e9

    def test_kv_bytes_per_token(self):
        # LLaMA-3.1-8B at FP16: 2 * 32 layers * 8 heads * 128 dims * 2B = 128KB.
        assert LLAMA31_8B.kv_bytes_per_token(16) == 131072
        assert LLAMA31_8B.kv_bytes_per_token(4) == 32768

    def test_attention_geometry(self):
        geom = LLAMA31_8B.attention_geometry(batch=4, seq_len=1024)
        assert geom.hq == 32 and geom.hkv == 8 and geom.gq == 4

    def test_hidden_consistency_enforced(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", n_layers=2, hq=8, hkv=8, head_dim=128,
                hidden=4096, intermediate=8192, vocab=1000,
            )

    def test_weights_bytes(self):
        assert LLAMA31_8B.weights_bytes() == pytest.approx(
            LLAMA31_8B.param_count * 2
        )
