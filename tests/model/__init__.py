"""BitDecoding reproduction test suite (tests/model)."""
