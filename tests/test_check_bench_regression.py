"""Benchmark regression gate (`scripts/check_bench_regression.py`)."""

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_bench_regression.py"


def _load_checker():
    import importlib.util

    spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _point(tokens_per_s):
    return {
        "tokens_per_s": tokens_per_s,
        "p99_tbt_s": 0.03,
        "p99_ttft_s": 20.0,
    }


@pytest.fixture
def baseline():
    return {"formats": {"FP16": _point(100.0), "INT4": _point(200.0), "INT2": _point(210.0)}}


class TestCompare:
    def test_identical_passes(self, baseline):
        checker = _load_checker()
        assert checker.compare(copy.deepcopy(baseline), baseline) == []

    def test_small_drop_within_threshold_passes(self, baseline):
        checker = _load_checker()
        current = copy.deepcopy(baseline)
        current["formats"]["INT4"]["tokens_per_s"] = 185.0  # -7.5%
        assert checker.compare(current, baseline) == []

    def test_synthetic_regression_fails(self, baseline):
        checker = _load_checker()
        current = copy.deepcopy(baseline)
        current["formats"]["INT4"]["tokens_per_s"] = 170.0  # -15%
        failures = checker.compare(current, baseline)
        assert len(failures) == 1
        assert "INT4" in failures[0]

    def test_missing_format_fails(self, baseline):
        checker = _load_checker()
        current = copy.deepcopy(baseline)
        del current["formats"]["INT2"]
        failures = checker.compare(current, baseline)
        assert any("INT2" in f for f in failures)

    def test_improvement_passes(self, baseline):
        checker = _load_checker()
        current = copy.deepcopy(baseline)
        current["formats"]["FP16"]["tokens_per_s"] = 300.0
        assert checker.compare(current, baseline) == []

    def test_none_percentiles_are_reported_not_fabricated(self, baseline, capsys):
        checker = _load_checker()
        current = copy.deepcopy(baseline)
        baseline["formats"]["FP16"]["p99_tbt_s"] = None
        current["formats"]["FP16"]["p99_tbt_s"] = 0.035
        assert checker.compare(current, baseline) == []
        assert "n/a" in capsys.readouterr().out

    def test_threshold_is_tunable(self, baseline):
        checker = _load_checker()
        current = copy.deepcopy(baseline)
        current["formats"]["FP16"]["tokens_per_s"] = 95.0  # -5%
        assert checker.compare(current, baseline, threshold=0.10) == []
        assert len(checker.compare(current, baseline, threshold=0.02)) == 1


def _kernels_point(speedup=30.0, flatness=1.1, prefill=4.0):
    return {
        "speedup_decode_step": speedup,
        "speedup_prefill_pack": prefill,
        "decode_step_flatness": flatness,
    }


class TestCompareKernels:
    def test_healthy_point_passes(self):
        checker = _load_checker()
        assert checker.compare_kernels(_kernels_point(), _kernels_point()) == []

    def test_speedup_below_floor_fails(self):
        checker = _load_checker()
        failures = checker.compare_kernels(_kernels_point(speedup=6.0))
        assert len(failures) == 1
        assert "6.0x" in failures[0]

    def test_prefill_pack_below_floor_fails(self):
        """The chunked-flush floor: prefill pack must stay >= 3x."""
        checker = _load_checker()
        failures = checker.compare_kernels(_kernels_point(prefill=1.2))
        assert len(failures) == 1
        assert "prefill pack" in failures[0]
        assert "1.2x" in failures[0]

    def test_growing_step_time_fails(self):
        """The memoization contract: no-flush decode steps must stay flat."""
        checker = _load_checker()
        failures = checker.compare_kernels(_kernels_point(flatness=3.5))
        assert len(failures) == 1
        assert "memo" in failures[0]

    def test_floors_are_tunable(self):
        checker = _load_checker()
        point = _kernels_point(speedup=6.0, flatness=3.5, prefill=1.5)
        assert (
            checker.compare_kernels(
                point, min_speedup=5.0, min_prefill_speedup=1.0, max_flatness=4.0
            )
            == []
        )

    def test_floors_read_from_baseline(self):
        """The committed baseline may ratchet its own floors; explicit
        arguments still win over it."""
        checker = _load_checker()
        point = _kernels_point(speedup=30.0, prefill=4.0)
        strict = dict(_kernels_point(), floors={"decode_step_speedup": 40.0})
        failures = checker.compare_kernels(point, strict)
        assert len(failures) == 1 and "40x" in failures[0]
        assert checker.compare_kernels(point, strict, min_speedup=25.0) == []

    def test_missing_fields_fail_not_crash(self):
        checker = _load_checker()
        failures = checker.compare_kernels({})
        assert len(failures) == 3

    def test_committed_kernels_baseline_is_gated_shape(self):
        """The baseline's kernels entry must itself pass the default gate."""
        checker = _load_checker()
        baseline = json.loads((REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        assert checker.compare_kernels(baseline["kernels"], baseline["kernels"]) == []


def _offload_point(swap=110.0, recompute=100.0, swap_outs=12):
    return {
        "tokens_per_s_swap": swap,
        "tokens_per_s_recompute": recompute,
        "swap_speedup": swap / recompute if recompute else 0.0,
        "swap_outs": swap_outs,
        "offload_stall_s": 0.001,
    }


class TestCompareOffload:
    def test_healthy_point_passes(self):
        checker = _load_checker()
        assert checker.compare_offload(_offload_point(), _offload_point()) == []

    def test_swap_not_strictly_above_recompute_fails(self):
        checker = _load_checker()
        failures = checker.compare_offload(_offload_point(swap=100.0, recompute=100.0))
        assert len(failures) == 1
        assert "not strictly above" in failures[0]

    def test_no_swaps_means_no_pressure_fails(self):
        """An over-capacity trace that never swapped is a broken discipline,
        even if the throughput numbers happen to look fine."""
        checker = _load_checker()
        failures = checker.compare_offload(_offload_point(swap_outs=0))
        assert len(failures) == 1
        assert "never swapped" in failures[0]

    def test_floor_reads_from_baseline_explicit_arg_wins(self):
        checker = _load_checker()
        point = _offload_point(swap=101.0, recompute=100.0)  # 1.01x
        strict = dict(_offload_point(), floors={"min_swap_speedup": 1.05})
        failures = checker.compare_offload(point, strict)
        assert len(failures) == 1
        assert "floor" in failures[0]
        assert checker.compare_offload(point, strict, min_speedup=1.0) == []

    def test_missing_fields_fail_not_crash(self):
        checker = _load_checker()
        failures = checker.compare_offload({})
        assert failures  # no swaps + no throughput, but never a traceback

    def test_committed_offload_baseline_is_gated_shape(self):
        """The baseline's offload entry must itself pass its own floors."""
        checker = _load_checker()
        baseline = json.loads((REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        assert checker.compare_offload(baseline["offload"], baseline["offload"]) == []


def _grouped_point(priced=7.0, wall=1.5):
    return {
        "batch": 8,
        "seq_len": 16384,
        "priced_speedup": priced,
        "wall_speedup": wall,
    }


class TestCompareGrouped:
    def test_healthy_point_passes(self):
        checker = _load_checker()
        assert checker.compare_grouped(_grouped_point(), _grouped_point()) == []

    def test_priced_speedup_below_floor_fails(self):
        """The priced ratio is deterministic, so falling below the floor
        means decode stopped launching one kernel per equal-shape group."""
        checker = _load_checker()
        failures = checker.compare_grouped(_grouped_point(priced=3.0))
        assert len(failures) == 1
        assert "floor" in failures[0]

    def test_wall_clock_losing_to_loop_fails(self):
        checker = _load_checker()
        failures = checker.compare_grouped(_grouped_point(wall=0.8))
        assert len(failures) == 1
        assert "loop" in failures[0]

    def test_floor_reads_from_baseline_explicit_arg_wins(self):
        checker = _load_checker()
        point = _grouped_point(priced=6.0)
        strict = dict(_grouped_point(), floors={"min_priced_speedup": 6.5})
        failures = checker.compare_grouped(point, strict)
        assert len(failures) == 1
        assert "floor" in failures[0]
        assert checker.compare_grouped(point, strict, min_priced_speedup=5.0) == []

    def test_missing_fields_fail_not_crash(self):
        checker = _load_checker()
        failures = checker.compare_grouped({})
        assert failures  # no speedups at all, but never a traceback

    def test_committed_grouped_baseline_is_gated_shape(self):
        """The baseline's grouped entry must itself pass its own floors."""
        checker = _load_checker()
        baseline = json.loads((REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        assert checker.compare_grouped(baseline["grouped"], baseline["grouped"]) == []


def _chaos_point(ratio=0.5, failed=0, retries=7, healed=3):
    return {
        "goodput_ratio": ratio,
        "failed": failed,
        "transfer_retries": retries,
        "healed_pages": healed,
        "shed": 2,
    }


class TestCompareChaos:
    def test_healthy_point_passes(self):
        checker = _load_checker()
        assert checker.compare_chaos(_chaos_point(), _chaos_point()) == []

    def test_goodput_ratio_below_floor_fails(self):
        checker = _load_checker()
        failures = checker.compare_chaos(_chaos_point(ratio=0.1))
        assert len(failures) == 1
        assert "floor" in failures[0]

    def test_failed_requests_fail_the_gate(self):
        """The committed plan is recoverable: a FAILED request means the
        heal budget drained, which is a recovery regression."""
        checker = _load_checker()
        failures = checker.compare_chaos(_chaos_point(failed=1))
        assert len(failures) == 1
        assert "FAILED" in failures[0]

    def test_unexercised_plan_fails(self):
        """Zero retries or zero heals means injection stopped reaching
        the tier store, even if the throughput numbers look fine."""
        checker = _load_checker()
        assert checker.compare_chaos(_chaos_point(retries=0))
        assert checker.compare_chaos(_chaos_point(healed=0))

    def test_floor_reads_from_baseline_explicit_arg_wins(self):
        checker = _load_checker()
        point = _chaos_point(ratio=0.42)
        strict = dict(_chaos_point(), floors={"min_goodput_ratio": 0.45})
        failures = checker.compare_chaos(point, strict)
        assert len(failures) == 1
        assert "floor" in failures[0]
        assert checker.compare_chaos(point, strict, min_goodput_ratio=0.4) == []

    def test_max_failed_floor_reads_from_baseline(self):
        checker = _load_checker()
        lenient = dict(_chaos_point(), floors={"max_failed": 1})
        assert checker.compare_chaos(_chaos_point(failed=1), lenient) == []
        assert checker.compare_chaos(_chaos_point(failed=2), lenient)

    def test_missing_fields_fail_not_crash(self):
        checker = _load_checker()
        failures = checker.compare_chaos({})
        assert failures  # unexercised + no ratio, but never a traceback

    def test_committed_chaos_baseline_is_gated_shape(self):
        """The baseline's chaos entry must itself pass its own floors."""
        checker = _load_checker()
        baseline = json.loads((REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        assert checker.compare_chaos(baseline["chaos"], baseline["chaos"]) == []


def _cluster_point(speedup=1.4, misses=0, tax=0.35, rank=6.2, full=13.7):
    return {
        "affinity_speedup": speedup,
        "cross_replica_misses_prefix_affinity": misses,
        "tp": {
            "tp": 2,
            "allreduce_tax_ms": tax,
            "rank_attention_ms": rank,
            "full_attention_ms": full,
        },
    }


class TestCompareCluster:
    def test_healthy_point_passes(self):
        checker = _load_checker()
        assert checker.compare_cluster(_cluster_point(), _cluster_point()) == []

    def test_affinity_not_beating_round_robin_fails(self):
        """The default floor is 1.0 *strict*: a speedup of exactly 1.0
        means affinity routing stopped buying anything."""
        checker = _load_checker()
        assert checker.compare_cluster(_cluster_point(speedup=1.0))
        assert checker.compare_cluster(_cluster_point(speedup=0.9))
        assert checker.compare_cluster(_cluster_point(speedup=1.2)) == []

    def test_cross_replica_misses_fail(self):
        checker = _load_checker()
        failures = checker.compare_cluster(_cluster_point(misses=3))
        assert len(failures) == 1
        assert "cross-replica" in failures[0]

    def test_vanished_allreduce_tax_fails(self):
        checker = _load_checker()
        failures = checker.compare_cluster(_cluster_point(tax=0.0))
        assert len(failures) == 1
        assert "all-reduce" in failures[0]

    def test_unsharded_attention_fails(self):
        checker = _load_checker()
        failures = checker.compare_cluster(_cluster_point(rank=13.7, full=13.7))
        assert len(failures) == 1
        assert "sharding" in failures[0]

    def test_floor_reads_from_baseline_explicit_arg_wins(self):
        checker = _load_checker()
        point = _cluster_point(speedup=1.2)
        strict = dict(_cluster_point(), floors={"min_affinity_speedup": 1.3})
        failures = checker.compare_cluster(point, strict)
        assert len(failures) == 1
        assert "floor" in failures[0]
        assert checker.compare_cluster(point, strict, min_affinity_speedup=1.1) == []

    def test_missing_fields_fail_not_crash(self):
        checker = _load_checker()
        failures = checker.compare_cluster({})
        assert failures  # no speedup, no tp sub-dict, but never a traceback

    def test_committed_cluster_baseline_is_gated_shape(self):
        """The baseline's cluster entry must itself pass its own floors."""
        checker = _load_checker()
        baseline = json.loads((REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        assert checker.compare_cluster(baseline["cluster"], baseline["cluster"]) == []


class TestCli:
    def _run(self, tmp_path, current, baseline, *extra):
        cur = tmp_path / "current.json"
        base = tmp_path / "baseline.json"
        cur.write_text(json.dumps(current))
        base.write_text(json.dumps(baseline))
        return subprocess.run(
            [sys.executable, str(SCRIPT), str(cur), str(base), *extra],
            capture_output=True,
            text=True,
        )

    def test_exit_zero_on_pass(self, tmp_path, baseline):
        result = self._run(tmp_path, copy.deepcopy(baseline), baseline)
        assert result.returncode == 0
        assert "benchmark gate: OK" in result.stdout

    def test_exit_nonzero_on_regression(self, tmp_path, baseline):
        current = copy.deepcopy(baseline)
        current["formats"]["FP16"]["tokens_per_s"] = 50.0  # -50%
        result = self._run(tmp_path, current, baseline)
        assert result.returncode == 1
        assert "REGRESSION" in result.stdout

    def test_kernels_gate_plumbs_through_cli(self, tmp_path, baseline):
        kern = tmp_path / "kernels.json"
        kern.write_text(json.dumps(_kernels_point(speedup=4.0)))
        baseline_with_kernels = copy.deepcopy(baseline)
        baseline_with_kernels["kernels"] = _kernels_point()
        result = self._run(
            tmp_path, copy.deepcopy(baseline), baseline_with_kernels, "--kernels", str(kern)
        )
        assert result.returncode == 1
        assert "4.0x" in result.stdout
        kern.write_text(json.dumps(_kernels_point(speedup=40.0)))
        result = self._run(
            tmp_path, copy.deepcopy(baseline), baseline_with_kernels, "--kernels", str(kern)
        )
        assert result.returncode == 0

    def test_offload_section_mandatory_once_baselined(self, tmp_path, baseline):
        baseline_with_offload = copy.deepcopy(baseline)
        baseline_with_offload["offload"] = _offload_point()
        result = self._run(tmp_path, copy.deepcopy(baseline), baseline_with_offload)
        assert result.returncode == 1
        assert "offload: missing" in result.stdout
        current = copy.deepcopy(baseline)
        current["offload"] = _offload_point()
        result = self._run(tmp_path, current, baseline_with_offload)
        assert result.returncode == 0

    def test_min_offload_speedup_flag_plumbs_through(self, tmp_path, baseline):
        current = copy.deepcopy(baseline)
        current["offload"] = _offload_point(swap=102.0, recompute=100.0)  # 1.02x
        result = self._run(
            tmp_path, current, copy.deepcopy(baseline), "--min-offload-speedup", "1.5"
        )
        assert result.returncode == 1
        assert "floor" in result.stdout

    def test_grouped_section_mandatory_once_baselined(self, tmp_path, baseline):
        baseline_with_grouped = copy.deepcopy(baseline)
        baseline_with_grouped["grouped"] = _grouped_point()
        result = self._run(tmp_path, copy.deepcopy(baseline), baseline_with_grouped)
        assert result.returncode == 1
        assert "grouped decode: missing" in result.stdout
        current = copy.deepcopy(baseline)
        current["grouped"] = _grouped_point()
        result = self._run(tmp_path, current, baseline_with_grouped)
        assert result.returncode == 0

    def test_min_grouped_speedup_flag_plumbs_through(self, tmp_path, baseline):
        current = copy.deepcopy(baseline)
        current["grouped"] = _grouped_point(priced=7.0)
        result = self._run(
            tmp_path, current, copy.deepcopy(baseline), "--min-grouped-speedup", "8.0"
        )
        assert result.returncode == 1
        assert "floor" in result.stdout

    def test_chaos_section_mandatory_once_baselined(self, tmp_path, baseline):
        baseline_with_chaos = copy.deepcopy(baseline)
        baseline_with_chaos["chaos"] = _chaos_point()
        result = self._run(tmp_path, copy.deepcopy(baseline), baseline_with_chaos)
        assert result.returncode == 1
        assert "chaos: missing" in result.stdout
        current = copy.deepcopy(baseline)
        current["chaos"] = _chaos_point()
        result = self._run(tmp_path, current, baseline_with_chaos)
        assert result.returncode == 0

    def test_min_goodput_ratio_flag_plumbs_through(self, tmp_path, baseline):
        current = copy.deepcopy(baseline)
        current["chaos"] = _chaos_point(ratio=0.5)
        result = self._run(
            tmp_path, current, copy.deepcopy(baseline), "--min-goodput-ratio", "0.9"
        )
        assert result.returncode == 1
        assert "floor" in result.stdout

    def test_cluster_section_mandatory_once_baselined(self, tmp_path, baseline):
        baseline_with_cluster = copy.deepcopy(baseline)
        baseline_with_cluster["cluster"] = _cluster_point()
        result = self._run(tmp_path, copy.deepcopy(baseline), baseline_with_cluster)
        assert result.returncode == 1
        assert "cluster: missing" in result.stdout
        current = copy.deepcopy(baseline)
        current["cluster"] = _cluster_point()
        result = self._run(tmp_path, current, baseline_with_cluster)
        assert result.returncode == 0

    def test_min_affinity_speedup_flag_plumbs_through(self, tmp_path, baseline):
        current = copy.deepcopy(baseline)
        current["cluster"] = _cluster_point(speedup=1.2)
        result = self._run(
            tmp_path, current, copy.deepcopy(baseline), "--min-affinity-speedup", "1.5"
        )
        assert result.returncode == 1
        assert "floor" in result.stdout

    def test_committed_baseline_matches_engine_output(self):
        """A fresh deterministic run must pass the gate against the
        committed baseline — a stale baseline.json fails tier-1, not just
        the separate CI bench job."""
        import importlib.util

        bench_path = REPO_ROOT / "benchmarks" / "bench_serving_engine.py"
        spec = importlib.util.spec_from_file_location("bench_serving_engine", bench_path)
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        baseline = json.loads((REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        fresh = bench.run_serving_bench(
            fast=baseline["fast_mode"], prefill_chunk=baseline["prefill_chunk_tokens"]
        )
        checker = _load_checker()
        assert checker.compare(fresh, baseline) == []
        # Deterministic simulation: the refresh command reproduces the
        # committed numbers exactly, not merely within the gate threshold.
        for name, point in baseline["formats"].items():
            assert fresh["formats"][name]["tokens_per_s"] == pytest.approx(
                point["tokens_per_s"], rel=1e-12
            )
