"""FP16 baselines: numerics, split heuristics, architecture paths."""

import numpy as np
import pytest

from repro.baselines.flash_decoding import (
    FlashAttention2,
    FlashDecodingV2,
    FlashDecodingV3,
)
from repro.core.config import AttentionGeometry
from repro.core.softmax import reference_attention


class TestNumerics:
    def test_exact_attention(self, rng, rtx4090):
        fd = FlashDecodingV2(rtx4090)
        q = rng.standard_normal((4, 32)).astype(np.float32)
        k = rng.standard_normal((333, 32)).astype(np.float32)
        v = rng.standard_normal((333, 32)).astype(np.float32)
        np.testing.assert_allclose(
            fd.run_numeric(q, k, v, n_splits=5),
            reference_attention(q, k, v),
            rtol=1e-4, atol=1e-5,
        )

    def test_fa2_ignores_requested_splits(self, rng, rtx4090):
        fa2 = FlashAttention2(rtx4090)
        q = rng.standard_normal((1, 16)).astype(np.float32)
        k = rng.standard_normal((64, 16)).astype(np.float32)
        v = rng.standard_normal((64, 16)).astype(np.float32)
        np.testing.assert_allclose(
            fa2.run_numeric(q, k, v, n_splits=8),
            reference_attention(q, k, v),
            rtol=1e-4, atol=1e-5,
        )


class TestSplitHeuristic:
    def test_splits_at_small_batch(self, a100):
        fd = FlashDecodingV2(a100)
        assert fd.n_splits(AttentionGeometry(1, 32, 8, 131072, 128)) > 8

    def test_no_split_at_large_batch(self, a100):
        fd = FlashDecodingV2(a100)
        assert fd.n_splits(AttentionGeometry(64, 32, 8, 8192, 128)) == 1

    def test_fa2_never_splits(self, a100):
        fa2 = FlashAttention2(a100)
        assert fa2.n_splits(AttentionGeometry(1, 32, 8, 131072, 128)) == 1


class TestPerformance:
    def test_split_helps_single_batch(self, a100):
        geom = AttentionGeometry(1, 32, 8, 131072, 128)
        t_fd = FlashDecodingV2(a100).decode_time_ms(geom)
        t_fa2 = FlashAttention2(a100).decode_time_ms(geom)
        assert t_fd < t_fa2

    def test_time_scales_with_seq_len(self, any_arch):
        fd = FlashDecodingV2(any_arch)
        t1 = fd.decode_time_ms(AttentionGeometry(1, 32, 8, 8192, 128))
        t2 = fd.decode_time_ms(AttentionGeometry(1, 32, 8, 65536, 128))
        assert t2 > 2 * t1

    def test_paged_slower_than_contiguous(self, a100):
        geom = AttentionGeometry(8, 32, 8, 2048, 128)
        fd = FlashDecodingV2(a100)
        assert fd.decode_time_ms(geom, paged=True) > fd.decode_time_ms(geom)

    def test_v3_requires_hopper(self, a100, h100):
        geom = AttentionGeometry(8, 32, 8, 8192, 128)
        with pytest.raises(ValueError):
            FlashDecodingV3(a100).decode_time_ms(geom)
        assert FlashDecodingV3(h100).decode_time_ms(geom) > 0

    def test_v3_beats_v2_on_hopper(self, h100):
        geom = AttentionGeometry(32, 128, 32, 32768, 128)
        t2 = FlashDecodingV2(h100).decode_time_ms(geom)
        t3 = FlashDecodingV3(h100).decode_time_ms(geom)
        assert 1.2 < t2 / t3 < 2.5  # the paper's FA3-over-FA2 band

    def test_memory_bound_at_long_context(self, a100):
        geom = AttentionGeometry(1, 32, 8, 131072, 128)
        result = FlashDecodingV2(a100).decode_result(geom)
        assert result.bound_by == "dram"
