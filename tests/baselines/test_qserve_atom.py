"""QServe / Atom: CUDA-core-only behaviour and GQA collapse."""

import numpy as np
import pytest

from repro.baselines.atom import Atom
from repro.baselines.flash_decoding import FlashDecodingV2
from repro.baselines.qserve import QServe
from repro.core.config import AttentionGeometry
from repro.core.softmax import reference_attention


class TestNumerics:
    def test_qserve_attention_correct(self, rng, a100):
        q = rng.standard_normal((2, 16)).astype(np.float32)
        k = rng.standard_normal((64, 16)).astype(np.float32)
        v = rng.standard_normal((64, 16)).astype(np.float32)
        np.testing.assert_allclose(
            QServe(a100).run_numeric(q, k, v), reference_attention(q, k, v),
            rtol=1e-4, atol=1e-5,
        )


class TestNoTensorCores:
    def test_qserve_issues_zero_tc_flops(self, a100):
        launch = QServe(a100, 4).build_launch(AttentionGeometry(8, 32, 8, 2048, 128))
        assert launch.trace.total_tc_flops == 0
        assert launch.trace.fma_flops > 0

    def test_atom_issues_zero_tc_flops(self, a100):
        launch = Atom(a100, 4).build_launch(AttentionGeometry(8, 32, 32, 2048, 128))
        assert launch.trace.total_tc_flops == 0

    def test_atom_uses_cvt_dequant(self, a100):
        launch = Atom(a100, 4).build_launch(AttentionGeometry(8, 32, 32, 2048, 128))
        assert launch.trace.cvt_ops > 0


class TestGqaBehaviour:
    def test_atom_rejects_gqa(self, a100):
        with pytest.raises(ValueError, match="GQA"):
            Atom(a100, 4).build_launch(AttentionGeometry(8, 32, 8, 2048, 128))

    def test_qserve_gqa_speedup_collapses(self, rtx4090):
        """Fig. 10 Pages: QServe 3.5x on MHA -> 1.4x on GQA."""
        fd = FlashDecodingV2(rtx4090)
        qs = QServe(rtx4090, 4)
        mha = AttentionGeometry(8, 32, 32, 2048, 128)
        gqa = AttentionGeometry(8, 32, 8, 2048, 128)
        s_mha = fd.decode_time_ms(mha, paged=True) / qs.decode_time_ms(mha)
        s_gqa = fd.decode_time_ms(gqa, paged=True) / qs.decode_time_ms(gqa)
        assert s_gqa < 0.75 * s_mha
        assert s_mha > 2.0

    def test_qserve_below_fp16_on_a100(self, a100):
        """Fig. 11: the A100's weak CUDA cores sink QServe below FP16."""
        geom = AttentionGeometry(8, 32, 8, 2048, 128)
        fd_time = FlashDecodingV2(a100).decode_time_ms(geom, paged=True)
        qs_time = QServe(a100, 4).decode_time_ms(geom)
        assert qs_time > 0.7 * fd_time  # at best marginal, often worse

    def test_qserve_compute_bound_under_gqa_on_a100(self, a100):
        geom = AttentionGeometry(32, 128, 16, 32768, 128)  # gq = 8
        result = QServe(a100, 4).decode_result(geom)
        assert result.bound_by == "fma"


class TestDequantOverheadAttribution:
    def test_both_register_dequant_subtraces(self, rtx4090):
        geom = AttentionGeometry(8, 32, 32, 2048, 128)
        for system in (QServe(rtx4090, 4), Atom(rtx4090, 4)):
            result = system.decode_result(geom)
            assert result.subtrace_times.get("dequant", 0) > 0

    def test_cache_bytes_below_fp16(self, a100):
        geom = AttentionGeometry(8, 32, 8, 2048, 128)
        assert QServe(a100, 4).cache_bytes(geom) < geom.kv_bytes_fp16 / 2
