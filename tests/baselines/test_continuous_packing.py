"""Continuous-packing baseline (Fig. 16's starting point)."""

import pytest

from repro.baselines.continuous_packing import (
    ContinuousPacking,
    ablation_config,
    build_repack_launch,
)
from repro.core.attention import BitDecoding
from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.gpu.kernel import simulate_kernel


@pytest.fixture
def geom():
    return AttentionGeometry(8, 32, 8, 8192, 128)


class TestAblationConfig:
    def test_flags_applied(self):
        base = BitDecodingConfig(bits=4)
        cfg = ablation_config(base, layout=False, warps=True, pipeline=False)
        assert not cfg.use_layout_induction
        assert cfg.use_warp_parallel
        assert not cfg.use_pipeline

    def test_base_untouched(self):
        base = BitDecodingConfig(bits=4)
        ablation_config(base, layout=False, warps=False, pipeline=False)
        assert base.use_layout_induction


class TestRepackPass:
    def test_repack_touches_whole_cache(self, a100, geom):
        launch = build_repack_launch(geom, BitDecodingConfig(bits=4), a100)
        packed = geom.kv_elements * 4 / 8
        assert launch.trace.gmem_read_bytes == pytest.approx(packed)
        assert launch.trace.gmem_write_bytes == pytest.approx(packed)

    def test_repack_scales_with_seq(self, a100):
        cfg = BitDecodingConfig(bits=4)
        short = simulate_kernel(a100, build_repack_launch(AttentionGeometry(8, 32, 8, 4096, 128), cfg, a100))
        long = simulate_kernel(a100, build_repack_launch(AttentionGeometry(8, 32, 8, 16384, 128), cfg, a100))
        assert long.time_s > 2 * short.time_s


class TestBreakdownMonotonicity:
    def test_each_stage_helps(self, a100, geom):
        """The Fig. 16 ladder must be monotone on every device."""
        base_cfg = BitDecodingConfig(bits=4)
        baseline = ContinuousPacking(a100, base_cfg).decode_time_ms(geom)
        layout = BitDecoding(
            ablation_config(base_cfg, True, False, False), a100
        ).decode_time_ms(geom)
        warps = BitDecoding(
            ablation_config(base_cfg, True, True, False), a100
        ).decode_time_ms(geom)
        full = BitDecoding(
            ablation_config(base_cfg, True, True, True), a100
        ).decode_time_ms(geom)
        assert baseline > layout > warps > full

    def test_baseline_runs_two_kernels(self, a100, geom):
        results = ContinuousPacking(a100, BitDecodingConfig(bits=4)).decode_results(geom)
        assert [r.name for r in results] == ["continuous_repack", "packing_kernel"]
