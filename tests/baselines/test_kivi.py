"""KIVI baseline: non-fused costs and GQA degradation."""

import numpy as np
import pytest

from repro.baselines.flash_decoding import FlashDecodingV2
from repro.baselines.kivi import Kivi
from repro.core.config import AttentionGeometry
from repro.core.softmax import reference_attention


class TestNumerics:
    def test_full_softmax_matches_reference(self, rng, a100):
        kivi = Kivi(a100, 4)
        q = rng.standard_normal((2, 16)).astype(np.float32)
        k = rng.standard_normal((100, 16)).astype(np.float32)
        v = rng.standard_normal((100, 16)).astype(np.float32)
        np.testing.assert_allclose(
            kivi.run_numeric(q, k, v), reference_attention(q, k, v),
            rtol=1e-4, atol=1e-5,
        )


class TestConstruction:
    def test_supported_bits(self, a100):
        assert Kivi(a100, 4).name == "KIVI-4"
        assert Kivi(a100, 2).name == "KIVI-2"
        with pytest.raises(ValueError):
            Kivi(a100, 8)


class TestCosts:
    def test_five_launches_per_step(self, a100):
        launch = Kivi(a100, 4).build_launch(AttentionGeometry(1, 32, 8, 4096, 128))
        assert launch.launches == 5

    def test_intermediate_traffic_scales_with_hq_and_seq(self, a100):
        kivi = Kivi(a100, 4)
        small = kivi.build_launch(AttentionGeometry(1, 32, 8, 4096, 128))
        large = kivi.build_launch(AttentionGeometry(1, 32, 8, 16384, 128))
        assert large.trace.gmem_write_bytes > 3 * small.trace.gmem_write_bytes

    def test_gqa_rereads_inflate_traffic(self, a100):
        kivi = Kivi(a100, 4)
        mha = kivi.build_launch(AttentionGeometry(1, 32, 32, 65536, 128))
        gqa = kivi.build_launch(AttentionGeometry(1, 32, 8, 65536, 128))
        # GQA has 4x less semantic KV data but re-reads it per query head:
        # its DRAM traffic must exceed a quarter of MHA's.
        assert gqa.trace.gmem_read_bytes > 0.4 * mha.trace.gmem_read_bytes

    def test_gqa_slower_relative_to_baseline(self, rtx4090):
        """Fig. 10: KIVI degrades severely under GQA."""
        mha = AttentionGeometry(1, 32, 32, 65536, 128)
        gqa = AttentionGeometry(1, 32, 8, 65536, 128)
        fd = FlashDecodingV2(rtx4090)
        kivi = Kivi(rtx4090, 4)
        speedup_mha = fd.decode_time_ms(mha) / kivi.decode_time_ms(mha)
        speedup_gqa = fd.decode_time_ms(gqa) / kivi.decode_time_ms(gqa)
        assert speedup_gqa < 0.6 * speedup_mha

    def test_two_bit_faster_than_four_bit(self, rtx4090):
        geom = AttentionGeometry(1, 32, 32, 65536, 128)
        assert Kivi(rtx4090, 2).decode_time_ms(geom) < Kivi(rtx4090, 4).decode_time_ms(geom)

    def test_prefill_workspace_quadratic(self, a100):
        kivi = Kivi(a100, 4)
        w64 = kivi.prefill_workspace_bytes(AttentionGeometry(1, 32, 8, 65536, 128))
        w128 = kivi.prefill_workspace_bytes(AttentionGeometry(1, 32, 8, 131072, 128))
        assert w128 == 4 * w64

    def test_128k_workspace_ooms_an_a100(self, a100):
        kivi = Kivi(a100, 4)
        workspace = kivi.prefill_workspace_bytes(AttentionGeometry(1, 32, 8, 131072, 128))
        model_weights = 16e9
        usable = a100.memory_gb * 1024 ** 3 * 0.9  # allocator/activation slack
        assert workspace + model_weights > usable
        # ... while 64K fits comfortably (the paper's Fig. 12a pattern).
        w64 = kivi.prefill_workspace_bytes(AttentionGeometry(1, 32, 8, 65536, 128))
        assert w64 + model_weights < usable

    def test_cache_bytes_includes_group32_metadata(self, a100):
        geom = AttentionGeometry(1, 32, 8, 4096, 128)
        total = Kivi(a100, 4).cache_bytes(geom)
        assert total > geom.kv_elements * 4 / 8
