"""Marlin / Ladder repack cost models (Table II's mechanism)."""

import pytest

from repro.baselines.ladder import LadderTransform
from repro.baselines.marlin import MarlinRepack
from repro.core.config import AttentionGeometry
from repro.core.residual_kernel import build_prefill_quant_launch
from repro.core.config import BitDecodingConfig
from repro.gpu.kernel import simulate_kernel


@pytest.fixture
def geom_128k():
    return AttentionGeometry(1, 32, 8, 131072, 128)


class TestOrdering:
    def test_marlin_slowest_prefill(self, a100, geom_128k):
        marlin = MarlinRepack(a100).prefill_latency_ms(geom_128k)
        ladder = LadderTransform(a100).prefill_latency_ms(geom_128k)
        assert marlin > 5 * ladder

    def test_bitdecoding_orders_of_magnitude_cheaper(self, a100, geom_128k):
        ladder = LadderTransform(a100).prefill_latency_ms(geom_128k)
        fused = simulate_kernel(
            a100, build_prefill_quant_launch(geom_128k, BitDecodingConfig(bits=4), a100)
        ).time_ms
        assert fused < ladder / 10

    def test_decode_ordering(self, a100, geom_128k):
        """Per-token: both pre-transform approaches cost ~0.5ms; fused ~0."""
        marlin = MarlinRepack(a100).decode_latency_ms(geom_128k)
        ladder = LadderTransform(a100).decode_latency_ms(geom_128k)
        assert 0.1 < marlin < 1.0
        assert 0.1 < ladder < 1.5


class TestScaling:
    def test_marlin_prefill_scales_with_context(self, a100):
        short = MarlinRepack(a100).prefill_latency_ms(AttentionGeometry(1, 32, 8, 32768, 128))
        long = MarlinRepack(a100).prefill_latency_ms(AttentionGeometry(1, 32, 8, 131072, 128))
        assert long > 3 * short

    def test_marlin_decode_latency_dominated_by_round_trips(self, a100):
        """Per-token cost barely changes with context (fixed PCIe latency)."""
        short = MarlinRepack(a100).decode_latency_ms(AttentionGeometry(1, 32, 8, 8192, 128))
        long = MarlinRepack(a100).decode_latency_ms(AttentionGeometry(1, 32, 8, 131072, 128))
        assert long == pytest.approx(short, rel=0.01)

    def test_ladder_prefill_scales_with_context(self, a100):
        short = LadderTransform(a100).prefill_latency_ms(AttentionGeometry(1, 32, 8, 32768, 128))
        long = LadderTransform(a100).prefill_latency_ms(AttentionGeometry(1, 32, 8, 131072, 128))
        assert long > 2 * short

    def test_paper_table2_band(self, a100, geom_128k):
        """The reproduced Table II must stay in the paper's decade."""
        assert 30 < MarlinRepack(a100).prefill_latency_ms(geom_128k) < 120
        assert 1.5 < LadderTransform(a100).prefill_latency_ms(geom_128k) < 10
