"""BitDecoding reproduction test suite (tests/baselines)."""
