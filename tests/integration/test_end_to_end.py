"""Cross-module integration: long decode loops, flush boundaries, and the
numerics contract between prefill packing and decode kernels."""

import numpy as np
import pytest

from repro.core.attention import BitDecoding, BitKVCache
from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.softmax import reference_attention


def _reference(q, k, v):
    batch, q_len, hq, d = q.shape
    hkv = k.shape[1]
    gq = hq // hkv
    out = np.empty((batch, q_len, hq, d), dtype=np.float32)
    for b in range(batch):
        for h in range(hq):
            out[b, 0, h] = reference_attention(
                q[b, 0, h : h + 1].astype(np.float32),
                k[b, h // gq].astype(np.float32),
                v[b, h // gq].astype(np.float32),
            )
    return out


class TestDecodeLoop:
    @pytest.mark.parametrize("bits", [4, 2])
    def test_multi_step_decode_stays_accurate(self, rng, bits):
        """Decode across a flush boundary: every step's output must track
        the exact-FP16 reference within quantization tolerance."""
        config = BitDecodingConfig(bits=bits)
        engine = BitDecoding(config, "a100")
        nr = config.residual_block_size
        seq0 = nr * 2 - 3  # residual nearly full: appends will flush
        k = rng.standard_normal((1, 2, seq0, 32)).astype(np.float16)
        v = rng.standard_normal((1, 2, seq0, 32)).astype(np.float16)
        cache = engine.prefill(k, v)

        k_all, v_all = k, v
        worst = 0.0
        for step in range(6):
            k_new = rng.standard_normal((1, 2, 32)).astype(np.float16)
            v_new = rng.standard_normal((1, 2, 32)).astype(np.float16)
            cache.append_token(k_new, v_new)
            k_all = np.concatenate([k_all, k_new[:, :, None]], axis=2)
            v_all = np.concatenate([v_all, v_new[:, :, None]], axis=2)
            q = rng.standard_normal((1, 1, 8, 32)).astype(np.float16)
            out = engine.decode(q, cache)
            ref = _reference(q, k_all, v_all)
            worst = max(worst, float(np.max(np.abs(out - ref))))
        tol = 0.08 if bits == 4 else 0.35
        assert worst < tol

    def test_flush_preserves_token_order(self, rng):
        """Tokens must come back from packed blocks in append order."""
        config = BitDecodingConfig(bits=8)  # tiny error, N_r = 64
        cache = BitKVCache(1, 1, 16, config)
        tokens = []
        for i in range(130):
            k_new = np.full((1, 1, 16), i / 130.0, dtype=np.float16)
            v_new = rng.standard_normal((1, 1, 16)).astype(np.float16)
            tokens.append(float(k_new[0, 0, 0]))
            cache.append_token(k_new, v_new)
        k_hat, _ = cache.dequantized_packed(0, 0)
        assert k_hat.shape[0] == 128
        np.testing.assert_allclose(k_hat[:, 0], tokens[:128], atol=0.02)
        k_res, _ = cache.residual_view(0, 0)
        np.testing.assert_allclose(
            k_res[:, 0].astype(np.float32), tokens[128:], atol=1e-3
        )

    def test_cache_memory_tracks_growth(self, rng):
        config = BitDecodingConfig(bits=4)
        k = rng.standard_normal((1, 2, 512, 32)).astype(np.float16)
        v = rng.standard_normal((1, 2, 512, 32)).astype(np.float16)
        cache = BitKVCache.from_prefill(k, v, config)
        before = cache.packed_nbytes
        for _ in range(config.residual_block_size):
            cache.append_token(
                rng.standard_normal((1, 2, 32)).astype(np.float16),
                rng.standard_normal((1, 2, 32)).astype(np.float16),
            )
        assert cache.packed_nbytes > before


class TestKernelConsistency:
    def test_numeric_decode_agrees_with_perf_geometry(self, rng):
        """The geometry the perf model uses must match what the cache holds."""
        config = BitDecodingConfig(bits=4)
        engine = BitDecoding(config, "a100")
        k = rng.standard_normal((2, 4, 300, 64)).astype(np.float16)
        v = rng.standard_normal((2, 4, 300, 64)).astype(np.float16)
        cache = engine.prefill(k, v)
        geom = AttentionGeometry(
            batch=cache.batch, hq=8, hkv=cache.hkv,
            seq_len=cache.seq_len, head_dim=cache.head_dim,
        )
        results = engine.decode_results(geom, res_len=cache.res_len() or None)
        assert sum(r.time_ms for r in results) > 0

    def test_quant_noise_changes_logits_not_structure(self, rng):
        """Quantized attention keeps the same argmax rows as FP16 in the
        overwhelming majority of queries (the accuracy-preservation story)."""
        config = BitDecodingConfig(bits=4)
        engine = BitDecoding(config, "a100")
        k = rng.standard_normal((1, 1, 384, 64)).astype(np.float16)
        v = rng.standard_normal((1, 1, 384, 64)).astype(np.float16)
        cache = engine.prefill(k, v)
        k_hat, _ = cache.dequantized_packed(0, 0)
        q = rng.standard_normal((16, 64)).astype(np.float32)
        exact_scores = q @ k[0, 0].astype(np.float32)[: k_hat.shape[0]].T
        quant_scores = q @ k_hat.T
        agree = np.mean(
            exact_scores.argmax(axis=1) == quant_scores.argmax(axis=1)
        )
        assert agree > 0.8


class TestCrossArchitecture:
    @pytest.mark.parametrize("arch_name,version", [
        ("a100", "v2"), ("rtx4090", "v2"), ("h100", "v3"), ("rtx5090", "fp4"),
    ])
    def test_every_flagship_path_decodes(self, rng, arch_name, version):
        config = BitDecodingConfig(bits=4, version=version)
        engine = BitDecoding(config, arch_name)
        k = rng.standard_normal((1, 2, 256, 32)).astype(np.float16)
        v = rng.standard_normal((1, 2, 256, 32)).astype(np.float16)
        cache = engine.prefill(k, v)
        q = rng.standard_normal((1, 1, 8, 32)).astype(np.float16)
        out = engine.decode(q, cache)
        ref = _reference(q, k, v)
        tol = 0.3 if version == "fp4" else 0.08
        assert np.max(np.abs(out - ref)) < tol
        # And the perf model runs for the same configuration.
        geom = AttentionGeometry(1, 8, 2, 8192, 32)
        assert engine.decode_time_ms(geom) > 0
