"""BitDecoding reproduction test suite (tests/integration)."""
