"""BitDecoding reproduction test suite (tests)."""
