#!/usr/bin/env python
"""Repo lint gate: ruff when available, a stdlib fallback otherwise.

CI installs ruff, so there this runs ``ruff check`` (rules from
pyproject.toml) plus ``ruff format --check`` over the formatted targets.
On machines without ruff (e.g. hermetic containers) it degrades to a
stdlib approximation — a syntax compile of every Python file and a
Pyflakes-style unused-import scan — so ``python scripts/lint.py`` always
means *something* locally.

Exit status is non-zero on any finding, which is what CI gates on.
"""

from __future__ import annotations

import ast
import importlib.util
import py_compile
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The format ratchet is complete: every tree that is linted is also held
#: to ``ruff format`` style, so there is no separate target list anymore.
LINT_TARGETS = ["src", "tests", "benchmarks", "examples", "scripts"]


def _python_files() -> list[Path]:
    files: list[Path] = []
    for target in LINT_TARGETS:
        root = REPO_ROOT / target
        files.extend(sorted(root.rglob("*.py")))
    return files


def run_ruff() -> int:
    status = subprocess.call([sys.executable, "-m", "ruff", "check", *LINT_TARGETS], cwd=REPO_ROOT)
    status |= subprocess.call(
        [sys.executable, "-m", "ruff", "format", "--check", *LINT_TARGETS],
        cwd=REPO_ROOT,
    )
    return status


def _unused_imports(path: Path, tree: ast.Module) -> list[str]:
    """Module-level imports never referenced anywhere in the file (F401-ish)."""
    if path.name == "__init__.py":  # re-export modules are exempt
        return []
    imported: dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                imported[alias.asname or alias.name.split(".")[0]] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name != "*":
                    imported[alias.asname or alias.name] = node.lineno
    used = {n.id for n in ast.walk(tree) if isinstance(n, ast.Name)}
    used |= {
        n.value.id
        for n in ast.walk(tree)
        if isinstance(n, ast.Attribute) and isinstance(n.value, ast.Name)
    }
    # Names re-exported through __all__ count as used (ruff semantics).
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets)
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            used |= {
                elt.value
                for elt in node.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            }
    return [
        f"{path.relative_to(REPO_ROOT)}:{lineno}: unused import '{name}'"
        for name, lineno in sorted(imported.items(), key=lambda kv: kv[1])
        if name not in used
    ]


def run_fallback() -> int:
    findings: list[str] = []
    for path in _python_files():
        try:
            py_compile.compile(str(path), doraise=True)
        except py_compile.PyCompileError as err:
            findings.append(str(err))
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        findings.extend(_unused_imports(path, tree))
    for finding in findings:
        print(finding)
    print(
        f"fallback lint (ruff unavailable): {len(findings)} finding(s) "
        f"across {len(_python_files())} files"
    )
    return 1 if findings else 0


def main() -> int:
    if importlib.util.find_spec("ruff") is not None:
        return run_ruff()
    return run_fallback()


if __name__ == "__main__":
    sys.exit(main())
