#!/usr/bin/env python
"""Benchmark regression gate: fail CI when serving throughput drops.

Compares a freshly emitted ``BENCH_serving.json`` (see
``benchmarks/bench_serving_engine.py``) against the committed
``benchmarks/baseline.json``.  The simulation is fully deterministic —
seeded trace, analytic latency model — so any movement is a real code
change, not machine noise, and a tight threshold is safe.

Gated: per-format sustained tokens/s must not drop more than
``--threshold`` (default 10%) below baseline, and no baseline format may
disappear.  Reported but not gated: p99 TBT and p99 TTFT shifts, because
the chunked-prefill knob deliberately trades one against the other.

With ``--kernels BENCH_kernels.json`` (see
``benchmarks/bench_kernel_hotpath.py``) the kernel hot paths are gated
too: the vectorized cache must stay at least ``--min-speedup`` (default
25x) faster per decode step and ``--min-prefill-speedup`` (default 3x)
faster at whole-prompt quantize+pack than the retained per-block
reference, and the per-step wall time must stay flat (max/min <=
``--max-flatness``) in the no-flush regime.  The committed baseline may
carry its own ``kernels.floors`` entry; explicit CLI flags override it.
Speedup and flatness are same-machine ratios, so they are stable across
runner hardware where absolute milliseconds are not; drift against the
baseline's recorded speedups (and the ungated transformer step time) is
reported, not gated.

When the current file carries a ``prefix_cache`` section (see
``benchmarks/bench_prefix_cache.py``) it is gated too: the hit rate on
the seeded shared-prefix trace must stay at or above ``--min-hit-rate``
(default 0.25, baseline ``prefix_cache.floors`` may override) and
cache-on throughput must never fall below cache-off.  A baseline that
records the section makes it mandatory in the current results.

Likewise an ``offload`` section (see ``benchmarks/bench_offload.py``):
on the seeded over-capacity trace, swap-preemption throughput must stay
strictly above recompute at the same device page budget, with the
speedup at or above ``--min-offload-speedup`` (default 1.0, baseline
``offload.floors`` may override), and the run must have actually swapped.

A ``grouped`` section (the grouped-decode point
``bench_serving_engine.py`` emits alongside the formats) gates the
batched paged decode: the engine-priced speedup of one grouped kernel
launch over the per-sequence loop at batch 8 must stay at or above
``--min-grouped-speedup`` (default 5.0, baseline ``grouped.floors`` may
override), and the same-machine wall-clock ratio of ``decode_step`` over
``decode_step_looped`` must stay at or above
``--min-grouped-wall-speedup`` (default 1.0) — grouping must never lose
to the loop it replaced.  A baseline that records the section makes it
mandatory in the current results.

A ``cluster`` section (see ``benchmarks/bench_cluster.py``) gates the
cluster layer: on the seeded shared-prefix trace whose group count is
coprime to the replica count, ``prefix_affinity`` routing must beat
``round_robin`` by at least ``--min-affinity-speedup`` (default 1.0 —
i.e. strictly better, baseline ``cluster.floors`` may override) with
zero cross-replica prefix misses, and the tensor-parallel pricing point
must charge a strictly positive all-reduce tax while pricing the
per-rank attention kernel strictly below the full-head kernel.  A
baseline that records the section makes it mandatory in the current
results.

And a ``chaos`` section (see ``benchmarks/bench_chaos.py``): on the
committed fault plan the run must have exercised recovery (retries and
healed pages), no request may end FAILED (baseline ``chaos.floors``
``max_failed``, default 0), and the goodput delivered under faults plus
deadline shedding must stay at or above ``--min-goodput-ratio`` (default
0.35, baseline ``chaos.floors`` may override) of the fault-free run's
throughput.

Exit status is non-zero on any gated regression, which is what CI's
``bench`` job gates on.  When a throughput change is intentional, refresh
the baseline::

    python benchmarks/bench_serving_engine.py --fast --prefill-chunk 512 \\
        --out benchmarks/baseline.json
    python benchmarks/bench_prefix_cache.py --fast --out benchmarks/baseline.json
    python benchmarks/bench_offload.py --fast --out benchmarks/baseline.json
    python benchmarks/bench_chaos.py --fast --out benchmarks/baseline.json
    python benchmarks/bench_cluster.py --fast --out benchmarks/baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.10
#: Decode-step floor, ratcheted 10x -> 25x when the tile walk was fused.
DEFAULT_MIN_SPEEDUP = 25.0
#: Prefill quantize+pack floor, introduced with the chunked fused flush.
DEFAULT_MIN_PREFILL_SPEEDUP = 3.0
DEFAULT_MAX_FLATNESS = 2.0
#: Prefix-cache hit-rate floor on the half-shared benchmark trace.
DEFAULT_MIN_HIT_RATE = 0.25
#: Swap-vs-recompute throughput floor on the over-capacity offload trace.
DEFAULT_MIN_OFFLOAD_SPEEDUP = 1.0
#: Engine-priced grouped-vs-looped decode floor at the batch-8 point.
DEFAULT_MIN_GROUPED_SPEEDUP = 5.0
#: Wall-clock grouped-vs-looped floor (same-machine ratio).
DEFAULT_MIN_GROUPED_WALL_SPEEDUP = 1.0
#: Goodput-under-faults floor relative to fault-free throughput.
DEFAULT_MIN_GOODPUT_RATIO = 0.35
#: Requests allowed to end FAILED (heal budget exhausted) on the plan.
DEFAULT_MAX_FAILED = 0
#: Prefix-affinity-vs-round-robin throughput floor on the cluster trace.
DEFAULT_MIN_AFFINITY_SPEEDUP = 1.0


def _pct(current: float | None, base: float | None) -> str:
    if current is None or not base:
        return "n/a"
    return f"{(current / base - 1.0) * 100.0:+.1f}%"


def compare(current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD) -> list[str]:
    """Return the list of gated failures (empty means the gate passes)."""
    failures: list[str] = []
    cur_formats = current.get("formats", {})
    for name, base in sorted(baseline.get("formats", {}).items()):
        cur = cur_formats.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current results")
            continue
        base_tps = base["tokens_per_s"]
        cur_tps = cur["tokens_per_s"]
        print(
            f"{name}: {cur_tps:.1f} tok/s vs baseline {base_tps:.1f} "
            f"({_pct(cur_tps, base_tps)}), "
            f"p99 TBT {_pct(cur.get('p99_tbt_s'), base.get('p99_tbt_s'))}, "
            f"p99 TTFT {_pct(cur.get('p99_ttft_s'), base.get('p99_ttft_s'))}"
        )
        if cur_tps < base_tps * (1.0 - threshold):
            drop = (1.0 - cur_tps / base_tps) * 100.0
            failures.append(
                f"{name}: tokens/s dropped {drop:.1f}% "
                f"({base_tps:.1f} -> {cur_tps:.1f}, threshold {threshold * 100:.0f}%)"
            )
    return failures


def compare_kernels(
    kernels: dict,
    baseline_kernels: dict | None = None,
    min_speedup: float | None = None,
    min_prefill_speedup: float | None = None,
    max_flatness: float | None = None,
) -> list[str]:
    """Gate the kernel hot-path microbenchmark (empty list = pass).

    Floors resolve as: explicit argument > the baseline's
    ``kernels.floors`` entry > the module defaults.
    """
    floors = (baseline_kernels or {}).get("floors", {})
    if min_speedup is None:
        min_speedup = floors.get("decode_step_speedup", DEFAULT_MIN_SPEEDUP)
    if min_prefill_speedup is None:
        min_prefill_speedup = floors.get("prefill_pack_speedup", DEFAULT_MIN_PREFILL_SPEEDUP)
    if max_flatness is None:
        max_flatness = floors.get("max_flatness", DEFAULT_MAX_FLATNESS)

    failures: list[str] = []
    speedup = kernels.get("speedup_decode_step")
    prefill = kernels.get("speedup_prefill_pack")
    flatness = kernels.get("decode_step_flatness")
    base_speedup = (baseline_kernels or {}).get("speedup_decode_step")
    base_prefill = (baseline_kernels or {}).get("speedup_prefill_pack")
    speedup_s = "n/a" if speedup is None else f"{speedup:.1f}x"
    prefill_s = "n/a" if prefill is None else f"{prefill:.1f}x"
    flatness_s = "n/a" if flatness is None else f"{flatness:.2f}"
    print(
        f"kernels: decode-step speedup {speedup_s} "
        f"(floor {min_speedup:.0f}x, baseline {_pct(speedup, base_speedup)}), "
        f"prefill-pack speedup {prefill_s} "
        f"(floor {min_prefill_speedup:.0f}x, baseline {_pct(prefill, base_prefill)}), "
        f"flatness {flatness_s} (max {max_flatness:.1f})"
    )
    transformer = kernels.get("transformer")
    if transformer:
        base_tf = (baseline_kernels or {}).get("transformer") or {}
        engine_ms = transformer.get("engine_step_ms")
        exact_ms = transformer.get("exact_step_ms")
        engine_s = "n/a" if engine_ms is None else f"{engine_ms:.1f} ms"
        exact_s = "n/a" if exact_ms is None else f"{exact_ms:.1f} ms"
        print(
            f"kernels: transformer decode step engine {engine_s} "
            f"({_pct(engine_ms, base_tf.get('engine_step_ms'))} vs baseline), "
            f"exact {exact_s} "
            f"({_pct(exact_ms, base_tf.get('exact_step_ms'))} vs baseline) "
            "[reported, not gated]"
        )
    if speedup is None or speedup < min_speedup:
        failures.append(
            f"kernels: vectorized decode step is only {speedup_s} the per-block "
            f"reference (floor {min_speedup:.0f}x)"
        )
    if prefill is None or prefill < min_prefill_speedup:
        failures.append(
            f"kernels: vectorized prefill pack is only {prefill_s} the per-block "
            f"reference (floor {min_prefill_speedup:.0f}x)"
        )
    if flatness is None or flatness > max_flatness:
        failures.append(
            f"kernels: decode step time grows across no-flush steps "
            f"(max/min {flatness_s} > {max_flatness:.1f}); the dequant memo "
            "is being invalidated or rebuilt"
        )
    return failures


def compare_prefix(
    prefix: dict,
    baseline_prefix: dict | None = None,
    min_hit_rate: float | None = None,
) -> list[str]:
    """Gate the prefix-cache serving point (empty list = pass).

    The trace is seeded and half of every prompt is a family-shared
    prefix, so the hit rate is deterministic: dropping below the floor
    means admission stopped probing, keys stopped matching, or eviction
    got too eager.  Cache-on throughput must also never fall below
    cache-off — hits only ever remove prefill work.  The floor resolves
    as: explicit argument > the baseline's ``prefix_cache.floors`` entry
    > the module default.
    """
    floors = (baseline_prefix or {}).get("floors", {})
    if min_hit_rate is None:
        min_hit_rate = floors.get("min_hit_rate", DEFAULT_MIN_HIT_RATE)

    failures: list[str] = []
    hit_rate = prefix.get("hit_rate")
    on = prefix.get("tokens_per_s_on")
    off = prefix.get("tokens_per_s_off")
    base = baseline_prefix or {}
    hit_s = "n/a" if hit_rate is None else f"{hit_rate:.3f}"
    on_s = "n/a" if on is None else f"{on:.1f}"
    off_s = "n/a" if off is None else f"{off:.1f}"
    print(
        f"prefix cache: hit rate {hit_s} "
        f"(floor {min_hit_rate:.2f}, baseline {_pct(hit_rate, base.get('hit_rate'))}), "
        f"{on_s} tok/s on vs {off_s} off "
        f"({_pct(on, base.get('tokens_per_s_on'))} vs baseline), "
        f"effective capacity {prefix.get('effective_capacity_pages', 'n/a')} pages "
        "[capacity reported, not gated]"
    )
    if hit_rate is None or hit_rate < min_hit_rate:
        failures.append(
            f"prefix cache: hit rate {hit_s} fell below the floor "
            f"{min_hit_rate:.2f} on the shared-prefix trace"
        )
    if on is None or off is None or on < off:
        failures.append(
            f"prefix cache: cache-on throughput ({on_s} tok/s) fell below "
            f"cache-off ({off_s} tok/s); hits must only remove prefill work"
        )
    return failures


def compare_offload(
    offload: dict,
    baseline_offload: dict | None = None,
    min_speedup: float | None = None,
) -> list[str]:
    """Gate the tiered-offload serving point (empty list = pass).

    The trace deliberately overcommits the device tier, so a swap run
    that never swapped means the working-set discipline broke; swap
    throughput at or below recompute means migration started costing
    more than the replays it avoids.  The floor resolves as: explicit
    argument > the baseline's ``offload.floors`` entry > the module
    default.
    """
    floors = (baseline_offload or {}).get("floors", {})
    if min_speedup is None:
        min_speedup = floors.get("min_swap_speedup", DEFAULT_MIN_OFFLOAD_SPEEDUP)

    failures: list[str] = []
    swap = offload.get("tokens_per_s_swap")
    recompute = offload.get("tokens_per_s_recompute")
    speedup = offload.get("swap_speedup")
    swap_outs = offload.get("swap_outs", 0)
    base = baseline_offload or {}
    swap_s = "n/a" if swap is None else f"{swap:.1f}"
    rec_s = "n/a" if recompute is None else f"{recompute:.1f}"
    speedup_s = "n/a" if speedup is None else f"{speedup:.3f}x"
    print(
        f"offload: swap {swap_s} tok/s vs recompute {rec_s} "
        f"({speedup_s}, floor {min_speedup:.2f}x, "
        f"baseline {_pct(speedup, base.get('swap_speedup'))}), "
        f"{swap_outs} swap-outs, "
        f"stall {offload.get('offload_stall_s', 'n/a')} s "
        "[stall reported, not gated]"
    )
    if not swap_outs:
        failures.append(
            "offload: the over-capacity trace never swapped; the working-set "
            "discipline is not demoting under pressure"
        )
    if swap is None or recompute is None or swap <= recompute:
        failures.append(
            f"offload: swap throughput ({swap_s} tok/s) is not strictly above "
            f"recompute ({rec_s} tok/s) at the same device page budget"
        )
    elif speedup is None or speedup < min_speedup:
        failures.append(
            f"offload: swap speedup {speedup_s} fell below the floor "
            f"{min_speedup:.2f}x"
        )
    return failures


def compare_grouped(
    grouped: dict,
    baseline_grouped: dict | None = None,
    min_priced_speedup: float | None = None,
    min_wall_speedup: float | None = None,
) -> list[str]:
    """Gate the grouped batched-decode point (empty list = pass).

    The priced half is deterministic (analytic latency model over the
    backend's own pricing surface), so any movement is a code change:
    falling below the floor means decode stopped launching one kernel
    per equal-shape group.  The wall half is a same-machine ratio of two
    code paths doing identical math — grouped ``decode_step`` must never
    lose to the retained per-sequence loop.  Floors resolve as: explicit
    argument > the baseline's ``grouped.floors`` entry > the module
    defaults.
    """
    floors = (baseline_grouped or {}).get("floors", {})
    if min_priced_speedup is None:
        min_priced_speedup = floors.get("min_priced_speedup", DEFAULT_MIN_GROUPED_SPEEDUP)
    if min_wall_speedup is None:
        min_wall_speedup = floors.get("min_wall_speedup", DEFAULT_MIN_GROUPED_WALL_SPEEDUP)

    failures: list[str] = []
    priced = grouped.get("priced_speedup")
    wall = grouped.get("wall_speedup")
    base = baseline_grouped or {}
    priced_s = "n/a" if priced is None else f"{priced:.2f}x"
    wall_s = "n/a" if wall is None else f"{wall:.2f}x"
    print(
        f"grouped decode: priced speedup {priced_s} at batch "
        f"{grouped.get('batch', 'n/a')} "
        f"(floor {min_priced_speedup:.1f}x, "
        f"baseline {_pct(priced, base.get('priced_speedup'))}), "
        f"wall {wall_s} (floor {min_wall_speedup:.2f}x, "
        "same-machine ratio)"
    )
    if priced is None or priced < min_priced_speedup:
        failures.append(
            f"grouped decode: engine-priced grouped speedup {priced_s} fell "
            f"below the floor {min_priced_speedup:.1f}x; decode is no longer "
            "launching one kernel per equal-shape group"
        )
    if wall is None or wall < min_wall_speedup:
        failures.append(
            f"grouped decode: grouped decode_step wall time is not beating "
            f"the per-sequence loop ({wall_s}, floor {min_wall_speedup:.2f}x)"
        )
    return failures


def compare_chaos(
    chaos: dict,
    baseline_chaos: dict | None = None,
    min_goodput_ratio: float | None = None,
) -> list[str]:
    """Gate the chaos-recovery serving point (empty list = pass).

    The fault plan is seeded and the engine is deterministic, so the
    counters are exact: a run that never retried or never healed means
    injection stopped reaching the tier store; a FAILED request above the
    floor means recovery exhausted its heal budget; a goodput ratio below
    the floor means surviving the plan started costing more than it
    should.  Floors resolve as: explicit argument > the baseline's
    ``chaos.floors`` entry > the module defaults.
    """
    floors = (baseline_chaos or {}).get("floors", {})
    if min_goodput_ratio is None:
        min_goodput_ratio = floors.get("min_goodput_ratio", DEFAULT_MIN_GOODPUT_RATIO)
    max_failed = floors.get("max_failed", DEFAULT_MAX_FAILED)

    failures: list[str] = []
    ratio = chaos.get("goodput_ratio")
    failed = chaos.get("failed")
    retries = chaos.get("transfer_retries", 0)
    healed = chaos.get("healed_pages", 0)
    base = baseline_chaos or {}
    ratio_s = "n/a" if ratio is None else f"{ratio:.3f}x"
    print(
        f"chaos: goodput ratio {ratio_s} vs fault-free "
        f"(floor {min_goodput_ratio:.2f}x, "
        f"baseline {_pct(ratio, base.get('goodput_ratio'))}), "
        f"{retries} retries, {healed} healed pages, "
        f"{chaos.get('shed', 'n/a')} shed, {failed} failed "
        f"(max {max_failed})"
    )
    if not retries or not healed:
        failures.append(
            "chaos: the committed fault plan was not exercised "
            f"({retries} retries, {healed} healed pages); injection is not "
            "reaching the tier store"
        )
    if failed is None or failed > max_failed:
        failures.append(
            f"chaos: {failed} requests ended FAILED (max {max_failed}); "
            "recovery is exhausting its heal budget on the committed plan"
        )
    if ratio is None or ratio < min_goodput_ratio:
        failures.append(
            f"chaos: goodput ratio {ratio_s} fell below the floor "
            f"{min_goodput_ratio:.2f}x of fault-free throughput"
        )
    return failures


def compare_cluster(
    cluster: dict,
    baseline_cluster: dict | None = None,
    min_affinity_speedup: float | None = None,
) -> list[str]:
    """Gate the cluster serving point (empty list = pass).

    The trace is seeded and the group count is coprime to the replica
    count, so round-robin genuinely splits every shared-prefix group:
    affinity losing its edge means routing stopped keeping groups on
    the replica whose cache holds their pages.  A nonzero cross-replica
    miss count under ``prefix_affinity`` means the hash stopped being
    stable.  The TP point is priced analytically, so a vanished
    all-reduce tax or a per-rank attention kernel that no longer shrinks
    is a code change, not noise.  The floor resolves as: explicit
    argument > the baseline's ``cluster.floors`` entry > the module
    default.
    """
    floors = (baseline_cluster or {}).get("floors", {})
    if min_affinity_speedup is None:
        min_affinity_speedup = floors.get("min_affinity_speedup", DEFAULT_MIN_AFFINITY_SPEEDUP)

    failures: list[str] = []
    speedup = cluster.get("affinity_speedup")
    misses = cluster.get("cross_replica_misses_prefix_affinity")
    tp = cluster.get("tp") or {}
    tax = tp.get("allreduce_tax_ms")
    rank_ms = tp.get("rank_attention_ms")
    full_ms = tp.get("full_attention_ms")
    base = baseline_cluster or {}
    speedup_s = "n/a" if speedup is None else f"{speedup:.3f}x"
    tax_s = "n/a" if tax is None else f"{tax:.4f} ms"
    rank_s = "n/a" if rank_ms is None else f"{rank_ms:.4f}"
    full_s = "n/a" if full_ms is None else f"{full_ms:.4f}"
    print(
        f"cluster: affinity speedup {speedup_s} over round-robin "
        f"(floor {min_affinity_speedup:.2f}x, "
        f"baseline {_pct(speedup, base.get('affinity_speedup'))}), "
        f"{misses} cross-replica prefix misses, "
        f"tp{tp.get('tp', 'n/a')} all-reduce tax {tax_s}, "
        f"rank attention {rank_s} vs full {full_s} ms"
    )
    if speedup is None or speedup <= 1.0 or speedup < min_affinity_speedup:
        failures.append(
            f"cluster: prefix-affinity routing is not beating round-robin "
            f"({speedup_s}, floor {min_affinity_speedup:.2f}x) on the "
            "shared-prefix trace"
        )
    if misses is None or misses > 0:
        failures.append(
            f"cluster: prefix_affinity incurred {misses} cross-replica prefix "
            "misses; the routing hash is no longer keeping groups home"
        )
    if tax is None or tax <= 0.0:
        failures.append(
            f"cluster: tp pricing charges no all-reduce tax ({tax_s}); the "
            "interconnect term dropped out of the sharded decode step"
        )
    if rank_ms is None or full_ms is None or rank_ms >= full_ms:
        failures.append(
            f"cluster: per-rank attention ({rank_s} ms) is not strictly below "
            f"the full-head kernel ({full_s} ms); head sharding stopped "
            "shrinking the attention kernel"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_serving.json")
    parser.add_argument("baseline", help="committed benchmarks/baseline.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max fractional tokens/s drop before failing (default 0.10)",
    )
    parser.add_argument(
        "--kernels",
        default=None,
        help="fresh BENCH_kernels.json to gate against the baseline's 'kernels' entry",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="min vectorized-vs-reference decode-step speedup "
        f"(default: baseline floors, else {DEFAULT_MIN_SPEEDUP:.0f})",
    )
    parser.add_argument(
        "--min-prefill-speedup",
        type=float,
        default=None,
        help="min vectorized-vs-reference prefill quantize+pack speedup "
        f"(default: baseline floors, else {DEFAULT_MIN_PREFILL_SPEEDUP:.0f})",
    )
    parser.add_argument(
        "--max-flatness",
        type=float,
        default=None,
        help="max steady-step max/min wall-time ratio "
        f"(default: baseline floors, else {DEFAULT_MAX_FLATNESS})",
    )
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        help="min prefix-cache hit rate on the shared-prefix trace "
        f"(default: baseline floors, else {DEFAULT_MIN_HIT_RATE})",
    )
    parser.add_argument(
        "--min-offload-speedup",
        type=float,
        default=None,
        help="min swap-vs-recompute throughput ratio on the offload trace "
        f"(default: baseline floors, else {DEFAULT_MIN_OFFLOAD_SPEEDUP})",
    )
    parser.add_argument(
        "--min-grouped-speedup",
        type=float,
        default=None,
        help="min engine-priced grouped-vs-looped decode speedup "
        f"(default: baseline floors, else {DEFAULT_MIN_GROUPED_SPEEDUP})",
    )
    parser.add_argument(
        "--min-grouped-wall-speedup",
        type=float,
        default=None,
        help="min wall-clock grouped-vs-looped decode_step ratio "
        f"(default: baseline floors, else {DEFAULT_MIN_GROUPED_WALL_SPEEDUP})",
    )
    parser.add_argument(
        "--min-goodput-ratio",
        type=float,
        default=None,
        help="min goodput-under-faults vs fault-free throughput on the "
        f"chaos trace (default: baseline floors, else {DEFAULT_MIN_GOODPUT_RATIO})",
    )
    parser.add_argument(
        "--min-affinity-speedup",
        type=float,
        default=None,
        help="min prefix-affinity-vs-round-robin throughput ratio on the "
        f"cluster trace (default: baseline floors, else {DEFAULT_MIN_AFFINITY_SPEEDUP})",
    )
    args = parser.parse_args(argv)
    with open(args.current) as fh:
        current = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    failures = compare(current, baseline, args.threshold)
    if current.get("prefix_cache"):
        failures += compare_prefix(
            current["prefix_cache"],
            baseline.get("prefix_cache"),
            min_hit_rate=args.min_hit_rate,
        )
    elif baseline.get("prefix_cache"):
        failures.append("prefix cache: missing from current results")
    if current.get("offload"):
        failures += compare_offload(
            current["offload"],
            baseline.get("offload"),
            min_speedup=args.min_offload_speedup,
        )
    elif baseline.get("offload"):
        failures.append("offload: missing from current results")
    if current.get("grouped"):
        failures += compare_grouped(
            current["grouped"],
            baseline.get("grouped"),
            min_priced_speedup=args.min_grouped_speedup,
            min_wall_speedup=args.min_grouped_wall_speedup,
        )
    elif baseline.get("grouped"):
        failures.append("grouped decode: missing from current results")
    if current.get("chaos"):
        failures += compare_chaos(
            current["chaos"],
            baseline.get("chaos"),
            min_goodput_ratio=args.min_goodput_ratio,
        )
    elif baseline.get("chaos"):
        failures.append("chaos: missing from current results")
    if current.get("cluster"):
        failures += compare_cluster(
            current["cluster"],
            baseline.get("cluster"),
            min_affinity_speedup=args.min_affinity_speedup,
        )
    elif baseline.get("cluster"):
        failures.append("cluster: missing from current results")
    if args.kernels:
        with open(args.kernels) as fh:
            kernels = json.load(fh)
        failures += compare_kernels(
            kernels,
            baseline.get("kernels"),
            min_speedup=args.min_speedup,
            min_prefill_speedup=args.min_prefill_speedup,
            max_flatness=args.max_flatness,
        )
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}")
        return 1
    print("benchmark gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
