"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
installs an egg-link without needing wheel.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
