"""Accuracy/efficiency trade-off across bit widths (Table I's mechanism).

Runs the LongBench-proxy retrieval suite through the real quantized-cache
path at FP16/INT8/INT4/INT2, prints per-task accuracy alongside cache
compression and serving throughput, and shows channel-wise vs tensor-wise
key scaling on an outlier-heavy synthetic distribution.

Run:  python examples/accuracy_tradeoff.py
"""

import numpy as np

from repro import BitDecodingConfig, get_arch
from repro.core.attention import BitDecoding
from repro.core.quantization import QuantScheme, dequantize, quantize_key
from repro.model import LLAMA31_8B, int_format, max_throughput_tokens_per_s
from repro.model.longbench import TaskConfig, run_suite

SUITE = (
    TaskConfig(name="recall-256", n_pairs=256, trials=120),
    TaskConfig(name="needle-hard", n_pairs=256, noise=0.20, trials=80),
)


def main() -> None:
    arch = get_arch("a100")
    model = LLAMA31_8B

    print("LongBench-proxy accuracy (higher is better):")
    rows = [("FP16", None)]
    for bits in (8, 4, 2):
        rows.append((f"INT{bits}", BitDecoding(BitDecodingConfig(bits=bits), arch)))
    fp16_avg = None
    for label, engine in rows:
        scores = run_suite(engine, SUITE, seed=11)
        if fp16_avg is None:
            fp16_avg = scores["average"]
        delta = 100 * (scores["average"] - fp16_avg)
        tasks = "  ".join(f"{k}={v:.3f}" for k, v in scores.items() if k != "average")
        print(f"  {label:<5} avg {scores['average']:.3f} ({delta:+.1f}%)   {tasks}")

    print("\nthroughput at the accuracy point (LLaMA-3.1-8B @ 32K, A100):")
    for bits in (4, 2):
        engine = BitDecoding(BitDecodingConfig(bits=bits), arch)
        tput = max_throughput_tokens_per_s(
            model, arch, int_format(bits, model), engine, 32768
        )
        print(f"  INT{bits}: {tput:8.1f} tok/s")

    # Why channel-wise keys (KC): per-channel outliers, the KIVI observation.
    print("\nchannel-wise vs tensor-wise keys on an outlier-heavy K block:")
    rng = np.random.default_rng(3)
    k = rng.standard_normal((256, 128)).astype(np.float32)
    k[:, 5] *= 25.0  # one outlier channel, as real keys exhibit
    for granularity in ("channel", "tensor"):
        scheme = QuantScheme(2, granularity, 64)
        codes, params = quantize_key(k, scheme, seq_axis=0, channel_axis=1)
        err = np.abs(dequantize(codes, params) - k).mean()
        print(f"  {scheme.short_name}: mean reconstruction error {err:.4f}")


if __name__ == "__main__":
    main()
