"""Speculative decoding over a low-bit KV cache.

A draft model proposes n tokens; the target model verifies all n in ONE
attention pass over the quantized cache (queries for positions L..L+n-1,
causal within the draft tail).  Because grouped-query heads already stack
into the MMA's M dimension, a draft of n tokens just makes the tile
``n x gq`` rows tall — the Tensor-Core tiles finally fill up, and the
packed cache is streamed once instead of n times.

Run:  python examples/speculative_decoding.py
"""

import numpy as np

from repro import AttentionGeometry, BitDecodingConfig, get_arch
from repro.core.attention import BitDecoding
from repro.core.softmax import reference_attention


def main() -> None:
    rng = np.random.default_rng(0)
    arch = get_arch("a100")
    engine = BitDecoding(BitDecodingConfig(bits=4), arch)
    batch, hkv, hq, seq, d, n_draft = 1, 8, 32, 2048, 128, 4

    k = rng.standard_normal((batch, hkv, seq, d)).astype(np.float16)
    v = rng.standard_normal((batch, hkv, seq, d)).astype(np.float16)
    cache = engine.prefill(k, v)

    # The "draft model" proposes 4 tokens.
    q = rng.standard_normal((batch, n_draft, hq, d)).astype(np.float16)
    k_draft = rng.standard_normal((batch, hkv, n_draft, d)).astype(np.float16)
    v_draft = rng.standard_normal((batch, hkv, n_draft, d)).astype(np.float16)

    out = engine.decode_speculative(q, k_draft, v_draft, cache)
    print(f"verified {n_draft} draft tokens in one pass -> output {out.shape}")

    # Check position 2 against a dense reference (cache + draft[:3]).
    gq = hq // hkv
    h = 5
    k_ctx = np.concatenate(
        [k[0, h // gq].astype(np.float32), k_draft[0, h // gq, :3].astype(np.float32)]
    )
    v_ctx = np.concatenate(
        [v[0, h // gq].astype(np.float32), v_draft[0, h // gq, :3].astype(np.float32)]
    )
    ref = reference_attention(q[0, 2, h : h + 1].astype(np.float32), k_ctx, v_ctx)
    print(f"position-2 head-{h} max error vs dense reference: "
          f"{np.abs(out[0, 2, h] - ref[0]).max():.4f}")

    # Perf model: one n-token verification pass vs n single-token decodes.
    print("\nsimulated cost on A100 (32K context, LLaMA-3.1-8B heads):")
    for n in (1, 2, 4, 8, 16):
        geom = AttentionGeometry(1, 32, 8, 32768, 128, q_len=n)
        pass_ms = engine.decode_time_ms(geom)
        single = engine.decode_time_ms(AttentionGeometry(1, 32, 8, 32768, 128))
        print(
            f"  draft {n:>2}: one pass {pass_ms:7.4f} ms vs {n} x single "
            f"{n * single:7.4f} ms ({n * single / pass_ms:4.2f}x amortization)"
        )

    # Accept-and-commit: the cache grows by the accepted tokens.
    engine.decode_speculative(q, k_draft, v_draft, cache, commit=True)
    print(f"\nafter commit: cache length {cache.seq_len} (was {seq})")


if __name__ == "__main__":
    main()
