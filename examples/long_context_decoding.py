"""Long-context single-user decoding: the paper's intro scenario.

An edge user runs LLaMA-3.1-8B with a growing 32K-128K context at batch 1.
This example sweeps context length across cache formats and GPUs and shows
where BitDecoding's speedup comes from: the attention kernel's DRAM
traffic, which dominates the step once the context dwarfs the weights.

Run:  python examples/long_context_decoding.py
"""

from repro import BitDecodingConfig, get_arch
from repro.baselines import FlashDecodingV2, Kivi
from repro.core.attention import BitDecoding
from repro.model import LLAMA31_8B, decode_step_breakdown

CONTEXTS = (8192, 32768, 65536, 131072)


def main() -> None:
    model = LLAMA31_8B
    arch = get_arch("a100")
    systems = {
        "FP16 FlashDecoding-v2": FlashDecodingV2(arch),
        "KIVI-4 (non-fused)": Kivi(arch, 4),
        "BitDecoding KC-4": BitDecoding(BitDecodingConfig(bits=4), arch),
        "BitDecoding KC-2": BitDecoding(BitDecodingConfig(bits=2), arch),
    }

    print(f"{model.name} on {arch.name}, batch 1 — per-token latency (ms)")
    header = f"{'context':>10} " + " ".join(f"{name:>24}" for name in systems)
    print(header)
    baseline_ms = {}
    for seq in CONTEXTS:
        cells = []
        for name, system in systems.items():
            bd = decode_step_breakdown(model, arch, system, batch=1, seq_len=seq)
            if name.startswith("FP16"):
                baseline_ms[seq] = bd.total_ms
            cells.append(f"{bd.total_ms:>24.2f}")
        print(f"{seq:>10} " + " ".join(cells))

    print("\nspeedup over FP16 (end-to-end):")
    for seq in CONTEXTS:
        row = []
        for name, system in systems.items():
            bd = decode_step_breakdown(model, arch, system, batch=1, seq_len=seq)
            row.append(f"{name}: {baseline_ms[seq] / bd.total_ms:.2f}x")
        print(f"  {seq:>7}: " + ", ".join(row))

    # Where the time goes at 128K for the FP16 baseline vs BitDecoding.
    print("\nstep breakdown at 128K (ms):")
    for name in ("FP16 FlashDecoding-v2", "BitDecoding KC-4"):
        bd = decode_step_breakdown(model, arch, systems[name], batch=1, seq_len=131072)
        print(
            f"  {name:<24} weights {bd.weights_ms:6.2f} | attention "
            f"{bd.attention_ms:6.2f} | overhead {bd.overhead_ms:5.2f}"
        )


if __name__ == "__main__":
    main()
