"""Quickstart: decode with a 4-bit KV cache through the AttentionBackend API.

Builds a small GQA attention problem, prefills a quantized cache behind a
backend handle (the Residual Kernel packs complete blocks, the FP16
residual holds the tail), runs one decode step through the Packing +
Residual kernels, and compares against exact FP16 attention — then shows
the paged backend producing bit-identical decode output from a page pool.
Also prints the simulated kernel timing on an A100 for a realistic
long-context geometry.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AttentionGeometry,
    BitDecodingConfig,
    ContiguousBitBackend,
    PagedBitBackend,
    get_arch,
)
from repro.core.softmax import reference_attention


def main() -> None:
    rng = np.random.default_rng(0)
    batch, hkv, hq, seq_len, head_dim = 1, 8, 32, 1000, 128

    # 1. Configure: 4-bit, channel-wise keys (the paper's KC-4 flagship),
    #    behind the contiguous (bit-exact reference) backend.
    config = BitDecodingConfig(bits=4, granularity="channel")
    backend = ContiguousBitBackend(config, get_arch("a100"))
    print(f"configuration: {config.short_name} via backend {backend.name!r}")
    print(f"residual block size N_r = {config.residual_block_size} (Eq. 1)")

    # 2. Prefill: quantize + pack the context into a cache handle.
    k = rng.standard_normal((batch, hkv, seq_len, head_dim)).astype(np.float16)
    v = rng.standard_normal((batch, hkv, seq_len, head_dim)).astype(np.float16)
    cache = backend.new_handle(batch, hkv, head_dim)
    backend.prefill(None, (k, v), cache)
    # Handles are opaque to the protocol (seq_len is the only portable
    # observable); the contiguous handle's BitKVCache is reached here
    # explicitly for backend-specific introspection.
    bitkv = cache.cache
    print(f"cache holds {cache.seq_len} tokens")
    print(
        f"  {bitkv.packed_len()} packed + {bitkv.res_len()} residual, "
        f"{bitkv.compression_ratio():.2f}x compression vs FP16"
    )

    # 3. Decode one token.
    q = rng.standard_normal((batch, 1, hq, head_dim)).astype(np.float16)
    out = backend.decode_step(q, cache)

    # 4. Compare against exact FP16 attention.
    gq = hq // hkv
    ref = np.empty_like(out)
    for h in range(hq):
        ref[0, 0, h] = reference_attention(
            q[0, 0, h : h + 1].astype(np.float32),
            k[0, h // gq].astype(np.float32),
            v[0, h // gq].astype(np.float32),
        )
    err = np.abs(out - ref).max()
    cos = float(out.ravel() @ ref.ravel()) / (
        np.linalg.norm(out) * np.linalg.norm(ref)
    )
    print(f"decode vs FP16 reference: max error {err:.4f}, cosine {cos:.6f}")

    # 5. Append new tokens; the residual flushes on block boundaries.
    for _ in range(config.residual_block_size):
        backend.append_kv(
            (
                rng.standard_normal((batch, hkv, head_dim)).astype(np.float16),
                rng.standard_normal((batch, hkv, head_dim)).astype(np.float16),
            ),
            cache,
        )
    print(f"after {config.residual_block_size} appends: {bitkv.packed_len()} packed tokens")

    # 6. Same protocol, paged storage: packed blocks live in a page pool
    #    behind a block table, and decode is bit-identical to the
    #    contiguous reference under exact_tiled numerics.
    exact = BitDecodingConfig(bits=4, granularity="channel", numerics_mode="exact_tiled")
    short_k, short_v = k[:, :, : 3 * 128], v[:, :, : 3 * 128]
    pair = {}
    for impl in (
        ContiguousBitBackend(exact, get_arch("a100")),
        PagedBitBackend(exact, get_arch("a100"), n_pages=64),
    ):
        handle = impl.new_handle(batch, hkv, head_dim)
        impl.prefill(None, (short_k, short_v), handle)
        pair[impl.name] = impl.decode_step(q, handle)
    identical = np.array_equal(pair["contiguous-bit"], pair["paged-bit"])
    print(f"paged vs contiguous decode bit-identical: {identical}")

    # 7. Simulated decode latency at a realistic long-context geometry.
    geom = AttentionGeometry(batch=1, hq=32, hkv=8, seq_len=131072, head_dim=128)
    engine = backend.attention_system
    for result in engine.decode_results(geom):
        print(
            f"  {result.name:<16} {result.time_ms:7.4f} ms "
            f"(bound by {result.bound_by})"
        )
    print(f"decode attention total: {engine.decode_time_ms(geom):.4f} ms @ 128K on A100")


if __name__ == "__main__":
    main()
