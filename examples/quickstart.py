"""Quickstart: decode with a 4-bit KV cache and check the numerics.

Builds a small GQA attention problem, prefillls a quantized cache (the
Residual Kernel packs complete blocks, the FP16 residual holds the tail),
runs one decode step through the Packing + Residual kernels, and compares
against exact FP16 attention.  Also prints the simulated kernel timing on
an A100 for a realistic long-context geometry.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AttentionGeometry, BitDecoding, BitDecodingConfig, get_arch
from repro.core.softmax import reference_attention


def main() -> None:
    rng = np.random.default_rng(0)
    batch, hkv, hq, seq_len, head_dim = 1, 8, 32, 1000, 128

    # 1. Configure: 4-bit, channel-wise keys (the paper's KC-4 flagship).
    config = BitDecodingConfig(bits=4, granularity="channel")
    engine = BitDecoding(config, get_arch("a100"))
    print(f"configuration: {config.short_name}")
    print(f"residual block size N_r = {config.residual_block_size} (Eq. 1)")

    # 2. Prefill: quantize + pack the context.
    k = rng.standard_normal((batch, hkv, seq_len, head_dim)).astype(np.float16)
    v = rng.standard_normal((batch, hkv, seq_len, head_dim)).astype(np.float16)
    cache = engine.prefill(k, v)
    print(
        f"cache: {cache.packed_len()} packed + {cache.res_len()} residual tokens, "
        f"{cache.compression_ratio():.2f}x compression vs FP16"
    )

    # 3. Decode one token.
    q = rng.standard_normal((batch, 1, hq, head_dim)).astype(np.float16)
    out = engine.decode(q, cache)

    # 4. Compare against exact FP16 attention.
    gq = hq // hkv
    ref = np.empty_like(out)
    for h in range(hq):
        ref[0, 0, h] = reference_attention(
            q[0, 0, h : h + 1].astype(np.float32),
            k[0, h // gq].astype(np.float32),
            v[0, h // gq].astype(np.float32),
        )
    err = np.abs(out - ref).max()
    cos = float(out.ravel() @ ref.ravel()) / (
        np.linalg.norm(out) * np.linalg.norm(ref)
    )
    print(f"decode vs FP16 reference: max error {err:.4f}, cosine {cos:.6f}")

    # 5. Append new tokens; the residual flushes on block boundaries.
    for _ in range(config.residual_block_size):
        cache.append_token(
            rng.standard_normal((batch, hkv, head_dim)).astype(np.float16),
            rng.standard_normal((batch, hkv, head_dim)).astype(np.float16),
        )
    print(f"after {config.residual_block_size} appends: {cache.packed_len()} packed tokens")

    # 6. Simulated decode latency at a realistic long-context geometry.
    geom = AttentionGeometry(batch=1, hq=32, hkv=8, seq_len=131072, head_dim=128)
    for result in engine.decode_results(geom):
        print(
            f"  {result.name:<16} {result.time_ms:7.4f} ms "
            f"(bound by {result.bound_by})"
        )
    print(f"decode attention total: {engine.decode_time_ms(geom):.4f} ms @ 128K on A100")


if __name__ == "__main__":
    main()
