"""High-throughput serving: paged caches, memory-bounded batches.

The serving win of a low-bit KV cache is two-fold: the attention kernel
moves fewer bytes AND more sequences fit in device memory, so the weight
GEMMs amortize over a bigger batch.  This example reproduces that chain
for the Fig. 13 models through the AttentionBackend API: each serving
stack is a backend whose ``attention_system`` prices the decode kernel,
printing the max feasible batch and throughput per cache format, plus a
page-allocator view of one serving point.

Run:  python examples/serving_throughput.py
"""

from repro import AnalyticalBackend, BitDecodingConfig, ContiguousBitBackend, get_arch
from repro.baselines import FlashDecodingV2, QServe
from repro.model import (
    LLAMA2_7B,
    LLAMA31_8B,
    QWEN3_8B,
    fp16_format,
    int_format,
    max_batch_size,
    max_throughput_tokens_per_s,
    page_pool_size,
)
from repro.pages import OutOfPagesError, PageAllocator, PageTable
from repro.pages.paged_cache import PagedKVStore

SEQ_LEN = 32768


def main() -> None:
    arch = get_arch("a100")
    print(f"pages-mode serving at {SEQ_LEN} tokens/sequence on {arch.name}\n")

    for model in (LLAMA2_7B, LLAMA31_8B, QWEN3_8B):
        fp16 = fp16_format()
        int4 = int_format(4, model)
        # Every stack is an AttentionBackend; the analytical backend wraps
        # the baseline cost models, the contiguous-bit backend carries the
        # real BitDecoding kernel stack.
        rows = [
            ("FP16 + FlashDecoding-v2", fp16, AnalyticalBackend(FlashDecodingV2(arch))),
            ("INT4 + QServe", int4, AnalyticalBackend(QServe(arch, 4))),
            (
                "INT4 + BitDecoding",
                int4,
                ContiguousBitBackend(BitDecodingConfig(bits=4), arch),
            ),
        ]
        print(f"{model.name} ({model.attention_variant}):")
        for label, fmt, backend in rows:
            batch = max_batch_size(model, arch, fmt, SEQ_LEN)
            tput = max_throughput_tokens_per_s(
                model, arch, fmt, backend.attention_system, SEQ_LEN
            )
            print(f"  {label:<26} max batch {batch:>3}   {tput:8.1f} tok/s")
        print()

    # A concrete paged-memory view: how many 32K sequences fit in the HBM
    # left after weights, at page granularity.  The per-format store dtype
    # and byte accounting come from the CacheFormat — the INT4 store
    # reports its true packed footprint, not fp16 working arrays.
    model = LLAMA31_8B
    page_tokens = 64
    for fmt in (fp16_format(), int_format(4, model)):
        n_pages = page_pool_size(model, arch, fmt, page_size=page_tokens)
        allocator = PageAllocator(n_pages)
        table = PageTable(allocator, page_size=page_tokens)
        admitted = 0
        try:
            while True:
                table.add_sequence(initial_length=SEQ_LEN)
                admitted += 1
        except OutOfPagesError:
            pass
        per_head = PagedKVStore.for_format(
            1024, page_tokens, model.head_dim, fmt, heads=model.hkv
        )
        print(
            f"{fmt.name}: {allocator.n_pages} pages of {page_tokens} tokens -> "
            f"{admitted} concurrent 32K sequences "
            f"(fragmentation {table.fragmentation():.1%}; "
            f"1024-page per-head store: {per_head.physical_nbytes / 1e6:.1f} MB physical)"
        )


if __name__ == "__main__":
    main()
