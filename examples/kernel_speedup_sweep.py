"""Kernel speedup sweep across GPU generations (the Figs. 8-11 picture).

For each registered device, sweeps sequence length at batch 1 (the Single
setting) and batch size at 8K (the Batches setting) and prints the
BitDecoding speedup over FP16 FlashDecoding-v2, picking each device's best
kernel path automatically (v2 / v3 / native FP4).

Run:  python examples/kernel_speedup_sweep.py
"""

from repro import AttentionGeometry, BitDecodingConfig, get_arch
from repro.baselines import FlashDecodingV2
from repro.core.arch_support import resolve_version
from repro.core.attention import BitDecoding
from repro.gpu.arch import GPU_REGISTRY

SEQS = (8192, 32768, 131072)
BATCHES = (8, 32, 128)


def best_engine(arch) -> BitDecoding:
    version = resolve_version(arch)
    if version == "fp4":
        config = BitDecodingConfig(version="fp4", fp4_format="mxfp4")
    else:
        config = BitDecodingConfig(bits=4, granularity="channel", version=version)
    return BitDecoding(config, arch)


def main() -> None:
    for name in sorted(GPU_REGISTRY):
        arch = get_arch(name)
        engine = best_engine(arch)
        baseline = FlashDecodingV2(arch)
        print(f"\n{arch.name} ({arch.generation}) — {engine.config.short_name}")

        print("  Single (bs=1, hq=32, hkv=8, d=128):")
        for seq in SEQS:
            geom = AttentionGeometry(1, 32, 8, seq, 128)
            ref = baseline.decode_time_ms(geom)
            ours = engine.decode_time_ms(geom)
            print(
                f"    {seq:>7} tokens: {ref:8.4f} ms -> {ours:8.4f} ms "
                f"({ref / ours:4.2f}x)"
            )

        print("  Batches (len=8k):")
        for bs in BATCHES:
            geom = AttentionGeometry(bs, 32, 8, 8192, 128)
            ref = baseline.decode_time_ms(geom)
            ours = engine.decode_time_ms(geom)
            print(
                f"    batch {bs:>3}: {ref:8.4f} ms -> {ours:8.4f} ms "
                f"({ref / ours:4.2f}x)"
            )


if __name__ == "__main__":
    main()
