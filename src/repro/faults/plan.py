"""Deterministic, seedable fault plans for the tiered page store.

A :class:`FaultSpec` is pure configuration: rates and severities for
each fault category.  A :class:`FaultPlan` is the live oracle built from
it — every consumer (the analytical engine and the executed engine of a
cross-checked pair) constructs its *own* plan from the same spec, and
because the two runs issue identical transfer sequences (the PR 7
schedule-equality contract) they draw identical outcomes.

Determinism rules:

- Each fault category draws from its own seeded
  :func:`numpy.random.default_rng` stream, so adding a category never
  perturbs another's draws.
- :meth:`FaultPlan.transfer` consumes a *fixed* number of variates per
  call regardless of the outcome, so a leg filter or a zero rate cannot
  desynchronize two plans built from specs that differ only in rates.

Fault taxonomy (see the README recovery matrix):

- **transient transfer fault** — a leg transfer fails ``failures`` times
  before succeeding; each failed attempt costs the full leg time plus
  exponential backoff, priced as synchronous stall.
- **permanent transfer fault** — the retry budget is exhausted; the
  page's content is *lost* and the affected sequences must be healed by
  recompute-style replay.
- **latency spike** — a successful transfer takes ``spike``× its modeled
  time (a congested link, an NVMe garbage-collection pause).
- **corruption** — the transfer completes but the payload is damaged in
  flight; detected by the demote/promote checksum pair and healed like a
  lost page.
- **slow step** — the whole scheduler quantum runs ``step_factor()``×
  slower (clock skew, a noisy neighbor stealing the host).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Every leg name the tiered store can price.  Direct device<->disk moves
#: stage through host inside one transfer_ms call; the plan treats them
#: as a single named leg.
LEG_NAMES = (
    "device→host",
    "host→device",
    "host→disk",
    "disk→host",
    "device→disk",
    "disk→device",
)


@dataclass(frozen=True)
class FaultSpec:
    """Rates and severities of every injected fault category.

    All rates are per-event probabilities: ``transfer_fault_rate``,
    ``latency_spike_rate`` and ``corruption_rate`` per leg transfer,
    ``slow_step_rate`` per scheduler step.  ``legs`` restricts transfer
    faults / spikes / corruption to the named legs (None = all legs).
    """

    seed: int = 0
    transfer_fault_rate: float = 0.0
    permanent_fraction: float = 0.0
    max_retries: int = 3
    backoff_base_ms: float = 0.05
    latency_spike_rate: float = 0.0
    latency_spike_factor: float = 8.0
    corruption_rate: float = 0.0
    slow_step_rate: float = 0.0
    slow_step_factor: float = 4.0
    legs: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        for name in (
            "transfer_fault_rate",
            "permanent_fraction",
            "latency_spike_rate",
            "corruption_rate",
            "slow_step_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be non-negative")
        if self.latency_spike_factor < 1.0 or self.slow_step_factor < 1.0:
            raise ValueError("spike/slow-step factors must be >= 1.0")
        if self.legs is not None:
            unknown = set(self.legs) - set(LEG_NAMES)
            if unknown:
                raise ValueError(f"unknown legs {sorted(unknown)}; known: {LEG_NAMES}")

    @property
    def all_transient(self) -> bool:
        """True when no fault can destroy page content (no loss, no rot)."""
        return self.permanent_fraction == 0.0 and self.corruption_rate == 0.0


@dataclass(frozen=True)
class TransferOutcome:
    """The plan's verdict on one leg transfer.

    ``failures`` failed attempts precede the success; ``lost`` means the
    retry budget is exhausted and the content never arrives.  ``spike``
    multiplies the successful attempt's transfer time.  ``corrupt`` marks
    the payload damaged in flight despite the transfer "succeeding".
    """

    failures: int = 0
    lost: bool = False
    spike: float = 1.0
    corrupt: bool = False

    @property
    def clean(self) -> bool:
        return self.failures == 0 and not self.lost and self.spike == 1.0 and not self.corrupt


_CLEAN = TransferOutcome()


class FaultPlan:
    """Live fault oracle: seeded RNG streams drawn per transfer / per step."""

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        # Independent streams per category: transfer outcomes and step
        # skew never contend for the same variates.
        self._transfer_rng = np.random.default_rng([int(spec.seed), 0x7A])
        self._step_rng = np.random.default_rng([int(spec.seed), 0x57])
        self.transfers_drawn = 0
        self.steps_drawn = 0

    # ------------------------------------------------------------- transfers

    def transfer(self, leg: str) -> TransferOutcome:
        """Draw the outcome of one leg transfer (fixed variate budget)."""
        spec = self.spec
        u_fail, u_sev, u_spike, u_corrupt = self._transfer_rng.random(4)
        self.transfers_drawn += 1
        if spec.legs is not None and leg not in spec.legs:
            return _CLEAN
        failures, lost = 0, False
        if u_fail < spec.transfer_fault_rate:
            if u_sev < spec.permanent_fraction:
                failures, lost = spec.max_retries, True
            else:
                # Rescale the severity draw over the transient range:
                # mostly one failed attempt, sometimes two.
                span = 1.0 - spec.permanent_fraction
                burst = (u_sev - spec.permanent_fraction) / span if span else 0.0
                failures = min(1 + (1 if burst > 0.75 else 0), spec.max_retries)
        spike = spec.latency_spike_factor if u_spike < spec.latency_spike_rate else 1.0
        corrupt = bool(u_corrupt < spec.corruption_rate) and not lost
        return TransferOutcome(failures=failures, lost=lost, spike=spike, corrupt=corrupt)

    def backoff_ms(self, attempt: int) -> float:
        """Exponential backoff charged after failed attempt ``attempt`` (0-based)."""
        return self.spec.backoff_base_ms * (2.0**attempt)

    # ----------------------------------------------------------------- steps

    def step_factor(self) -> float:
        """Slow-down multiplier for the next scheduler step (usually 1.0)."""
        u = self._step_rng.random()
        self.steps_drawn += 1
        if u < self.spec.slow_step_rate:
            return self.spec.slow_step_factor
        return 1.0


def demo_fault_spec(seed: int) -> FaultSpec:
    """The committed chaos demo plan: every category enabled at rates that
    exercise retry, loss-heal, corruption-heal and slow steps on the small
    smoke traces (CI asserts >= 1 retry and >= 1 healed page on it)."""
    return FaultSpec(
        seed=seed,
        transfer_fault_rate=0.12,
        permanent_fraction=0.2,
        max_retries=3,
        backoff_base_ms=0.05,
        latency_spike_rate=0.08,
        latency_spike_factor=8.0,
        corruption_rate=0.06,
        slow_step_rate=0.08,
        slow_step_factor=4.0,
    )
