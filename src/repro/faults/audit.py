"""Periodic cross-checks of the paged-serving bookkeeping invariants.

The engine's per-step conservation assert covers page *counts*; the
auditor goes deeper and cross-checks the actual data structures against
each other — the redundancy that catches a corrupted refcount or a
desynchronized tier bijection the moment it happens rather than steps
later when a sequence reads someone else's pages:

- **allocator partition** — every page id is in exactly one of the free
  list, the live refcount map (refcount >= 1), or the parked LRU pool.
- **ownership** — a page's refcount equals the number of live sequences
  mapping it in the block tables, and no released sequence retains
  pages.
- **tier bijection** — ``frame_of`` and ``page_at`` are inverse
  permutations, and the device LRU tracks only device-resident pages.

Violations raise :class:`InvariantViolation` (an ``AssertionError``
subclass, so test suites treating asserts as failures catch it too).
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.pages.allocator import PageAllocator
from repro.pages.page_table import PageTable


class InvariantViolation(AssertionError):
    """A cross-structure bookkeeping invariant does not hold."""


class InvariantAuditor:
    """Cross-checks allocator, block tables and the tier store.

    ``audit()`` runs every check wired at construction and raises
    :class:`InvariantViolation` on the first failure; the engine calls it
    every ``audit_every`` steps and once after the run drains.
    """

    def __init__(
        self,
        allocator: PageAllocator,
        table: Optional[PageTable] = None,
        tiers=None,
    ):
        self.allocator = allocator
        self.table = table
        self.tiers = tiers
        self.audits = 0

    def audit(self, step: Optional[int] = None) -> None:
        self.audits += 1
        where = f" at step {step}" if step is not None else ""
        self._check_allocator(where)
        if self.table is not None:
            self._check_ownership(where)
        if self.tiers is not None:
            self._check_bijection(where)

    # -------------------------------------------------------------- checks

    def _fail(self, msg: str) -> None:
        raise InvariantViolation(msg)

    def _check_allocator(self, where: str) -> None:
        alloc = self.allocator
        free = set(alloc._free)
        live = set(alloc._refs)
        parked = set(alloc._cached)
        if len(free) != len(alloc._free):
            self._fail(f"free list holds duplicate pages{where}")
        for a, b, name in (
            (free, live, "free/live"),
            (free, parked, "free/parked"),
            (live, parked, "live/parked"),
        ):
            overlap = a & b
            if overlap:
                self._fail(f"pages {sorted(overlap)} are both {name}{where}")
        union = free | live | parked
        if union != set(range(alloc.n_pages)):
            missing = sorted(set(range(alloc.n_pages)) - union)
            self._fail(f"pages {missing} are unaccounted for{where}")
        bad = {p: r for p, r in alloc._refs.items() if r <= 0}
        if bad:
            self._fail(f"non-positive refcounts {bad}{where}")

    def _check_ownership(self, where: str) -> None:
        table, alloc = self.table, self.allocator
        released = set(table._free_ids)
        mapped: Counter = Counter()
        for seq_id, seq in enumerate(table.sequences):
            if seq_id in released:
                if seq.pages:
                    self._fail(f"released sequence {seq_id} still maps pages {seq.pages}{where}")
                continue
            mapped.update(seq.pages)
        for page, count in mapped.items():
            refs = alloc.refcount(page)
            if refs != count:
                self._fail(
                    f"page {page} mapped by {count} sequence(s) but refcount is {refs}{where}"
                )
        orphaned = set(alloc._refs) - set(mapped)
        if orphaned:
            self._fail(f"pages {sorted(orphaned)} hold refs but no sequence maps them{where}")

    def _check_bijection(self, where: str) -> None:
        tiers = self.tiers
        n = tiers.n_pages
        frame_of, page_at = tiers._frame_of, tiers._page_at
        if sorted(frame_of) != list(range(n)) or sorted(page_at) != list(range(n)):
            self._fail(f"tier frame maps are not permutations of [0, {n}){where}")
        for page in range(n):
            if page_at[frame_of[page]] != page:
                self._fail(
                    f"tier bijection broken: page {page} -> frame {frame_of[page]} "
                    f"-> page {page_at[frame_of[page]]}{where}"
                )
        for page in tiers._lru:
            if not tiers.resident(page):
                self._fail(f"LRU tracks non-resident page {page}{where}")
