"""Fault injection, integrity checking, and invariant auditing.

The serving stack moves packed KV pages across PCIe and NVMe — media
that, at production scale, fail: transfers error and must be retried,
latency spikes, bits rot in flight, and the host machine itself gets
slow.  This package makes those failures *deterministic and replayable*
so recovery can be tested bit-for-bit:

- :class:`FaultSpec` / :class:`FaultPlan` — a seedable plan drawing
  per-category RNG streams, injected into the
  :class:`~repro.pages.tiers.TieredPageStore` migration seam.
- :class:`InvariantAuditor` — periodic cross-check of allocator
  refcounts, block-table page ownership, and the tier-store
  page<->frame bijection.
"""

from repro.faults.audit import InvariantAuditor, InvariantViolation
from repro.faults.plan import FaultPlan, FaultSpec, TransferOutcome, demo_fault_spec

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InvariantAuditor",
    "InvariantViolation",
    "TransferOutcome",
    "demo_fault_spec",
]
