"""Nsight-Compute-style profiling metrics over simulated kernels.

The paper supports its design with profiler evidence (Fig. 4b, Fig. 15,
Table III): Tensor-Core utilization, achieved memory throughput, FMA/ALU
pipe pressure, and memory-stall fractions.  This module derives the same
metrics from a :class:`~repro.gpu.kernel.KernelResult`.

Definitions (all percentages of kernel execution time):

- ``memory_throughput_pct`` — DRAM busy time / exec time: how close the
  kernel runs to the memory roofline.
- ``tensor_core_util_pct`` — Tensor-Core busy time / exec time.
- ``fma_pct`` / ``alu_pct`` / ``cvt_pct`` / ``sfu_pct`` — CUDA-core pipe
  pressure.
- ``memory_stall_pct`` — fraction of exec time no compute pipe is busy
  (exposed memory latency).
- ``compute_throughput_pct`` — busiest compute pipe / exec time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.gpu.kernel import KernelResult


@dataclass(frozen=True)
class KernelProfile:
    """Profiler view of one simulated kernel."""

    name: str
    time_ms: float
    memory_throughput_pct: float
    tensor_core_util_pct: float
    fma_pct: float
    alu_pct: float
    cvt_pct: float
    sfu_pct: float
    smem_pct: float
    memory_stall_pct: float
    compute_throughput_pct: float
    #: Fraction of exec time beyond the bottleneck resource's busy time —
    #: exposure from serialized phases (warps waiting with nothing issued).
    serialization_stall_pct: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "time_ms": self.time_ms,
            "memory_throughput_pct": self.memory_throughput_pct,
            "tensor_core_util_pct": self.tensor_core_util_pct,
            "fma_pct": self.fma_pct,
            "alu_pct": self.alu_pct,
            "cvt_pct": self.cvt_pct,
            "sfu_pct": self.sfu_pct,
            "smem_pct": self.smem_pct,
            "memory_stall_pct": self.memory_stall_pct,
            "compute_throughput_pct": self.compute_throughput_pct,
            "serialization_stall_pct": self.serialization_stall_pct,
        }


def _pct(part: float, whole: float) -> float:
    if whole <= 0:
        return 0.0
    return min(100.0, 100.0 * part / whole)


def profile_kernel(result: KernelResult) -> KernelProfile:
    """Derive utilization metrics from a simulated kernel result."""
    exec_time = result.exec_time_s
    times = result.resource_times
    get = lambda key: times.get(key, 0.0)  # noqa: E731 - tiny local accessor

    compute_times = [get("tensor_core"), get("fma"), get("alu"), get("cvt"), get("sfu")]
    busiest_compute = max(compute_times) if compute_times else 0.0
    # Exposed memory time: DRAM busy time not covered by any compute pipe.
    exposed = max(0.0, get("dram") - busiest_compute)
    bottleneck = max(times.values()) if times else 0.0
    serialization = max(0.0, exec_time - bottleneck)

    return KernelProfile(
        name=result.name,
        time_ms=result.time_ms,
        memory_throughput_pct=_pct(get("dram"), exec_time),
        tensor_core_util_pct=_pct(get("tensor_core"), exec_time),
        fma_pct=_pct(get("fma"), exec_time),
        alu_pct=_pct(get("alu"), exec_time),
        cvt_pct=_pct(get("cvt"), exec_time),
        sfu_pct=_pct(get("sfu"), exec_time),
        smem_pct=_pct(get("smem"), exec_time),
        memory_stall_pct=_pct(exposed, exec_time),
        compute_throughput_pct=_pct(busiest_compute, exec_time),
        serialization_stall_pct=_pct(serialization, exec_time),
    )


def dequant_overhead_fraction(result: KernelResult) -> float:
    """Fraction of kernel time attributable to dequantization.

    Requires the kernel to have registered a ``"dequant"`` subtrace.
    Matches the Fig. 15a methodology: standalone dequant time over total
    kernel time (overlap means the fractions of all subtraces need not sum
    to one).
    """
    if "dequant" not in result.subtrace_times:
        return 0.0
    if result.time_s <= 0:
        return 0.0
    return min(1.0, result.subtrace_times["dequant"] / result.time_s)
