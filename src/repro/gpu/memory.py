"""Memory-hierarchy model: DRAM roofline, L2, shared memory, banks.

The central effect this module captures is that *achieved* DRAM bandwidth
depends on how many warps are in flight.  Decode-attention kernels at
``batch=1`` launch few blocks; without split-KV partitioning they cannot
cover DRAM latency and see a fraction of peak bandwidth.  This is the
mechanism behind several of the paper's observations:

- FlashDecoding's split-KV exists precisely to recover bandwidth at small
  batch (Sec. VI-A baselines);
- KIVI's non-tiled kernels underfill the machine and degrade (Fig. 10/11);
- the ``Wn=1`` warp layout of Table III both serializes dequantization and
  starves the memory system.

Shared memory is modelled with 32 banks of 4 bytes; the swizzling scheme of
Eq. 2 (``col ^= row``) removes the replay factor for ``ldmatrix`` tile
accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.arch import ArchSpec

#: Number of shared-memory banks on every modern NVIDIA part.
SMEM_BANKS = 32
#: Bytes per bank word.
SMEM_BANK_BYTES = 4

#: Exponent of the bandwidth-vs-occupancy ramp.  A mildly concave curve:
#: doubling in-flight warps less than doubles achieved bandwidth near
#: saturation, matching measured latency-hiding behaviour.
_BW_RAMP_EXPONENT = 0.75

#: Bandwidth floor as a fraction of peak: even a single warp streams
#: something (DRAM latency ~500ns at 128B per access).
_BW_FLOOR_FRACTION = 0.02


def bandwidth_utilization(arch: ArchSpec, inflight_warps: float) -> float:
    """Fraction of peak DRAM bandwidth achieved with ``inflight_warps``.

    Saturates at 1.0 once the machine-wide warp count reaches
    ``arch.bw_saturation_warps``; below that, follows a concave ramp with a
    small floor.
    """
    if inflight_warps < 0:
        raise ValueError("inflight_warps must be non-negative")
    if inflight_warps == 0:
        return 0.0
    frac = inflight_warps / arch.bw_saturation_warps
    util = min(1.0, frac ** _BW_RAMP_EXPONENT)
    return max(_BW_FLOOR_FRACTION, util)


def achieved_dram_bw(arch: ArchSpec, inflight_warps: float) -> float:
    """Achieved DRAM bandwidth in bytes/s for a given warp occupancy."""
    return arch.dram_bw_bytes_per_s * bandwidth_utilization(arch, inflight_warps)


def dram_time(arch: ArchSpec, effective_bytes: float, inflight_warps: float) -> float:
    """Seconds to move ``effective_bytes`` through DRAM."""
    if effective_bytes <= 0:
        return 0.0
    bw = achieved_dram_bw(arch, inflight_warps)
    if bw <= 0:
        raise ValueError("cannot move bytes with zero in-flight warps")
    return effective_bytes / bw


def l2_time(arch: ArchSpec, l2_bytes: float, active_sm_fraction: float) -> float:
    """Seconds of L2 service time; L2 bandwidth scales with active SMs."""
    if l2_bytes <= 0:
        return 0.0
    frac = max(min(active_sm_fraction, 1.0), 1.0 / arch.sm_count)
    return l2_bytes / (arch.l2_bw_bytes_per_s * frac)


def smem_time(arch: ArchSpec, smem_bytes_effective: float, active_sm_fraction: float) -> float:
    """Seconds of shared-memory service time across the active SMs."""
    if smem_bytes_effective <= 0:
        return 0.0
    frac = max(min(active_sm_fraction, 1.0), 1.0 / arch.sm_count)
    return smem_bytes_effective / (arch.smem_bw_bytes_per_s * frac)


# ---------------------------------------------------------------------------
# Bank-conflict model
# ---------------------------------------------------------------------------


def swizzled_column(row: int, col: int) -> int:
    """Eq. 2 of the paper: XOR-swizzle a shared-memory column index."""
    if row < 0 or col < 0:
        raise ValueError("row/col must be non-negative")
    return row ^ col


def bank_conflict_factor(
    rows: int, row_stride_bytes: int, access_bytes: int = 16, swizzled: bool = True
) -> float:
    """Replay factor for a warp loading one ``access_bytes`` chunk per row.

    Models the ``ldmatrix`` access pattern: 32 threads each supply the
    address of one 8x8-tile row.  Without swizzling, a power-of-two row
    stride maps many rows to the same bank and the access replays; the
    XOR swizzle of Eq. 2 spreads rows across banks.

    Returns a multiplicative factor >= 1 applied to shared-memory traffic.
    """
    if rows <= 0 or row_stride_bytes <= 0:
        raise ValueError("rows and row_stride_bytes must be positive")
    if swizzled:
        return 1.0
    # Distinct banks hit by consecutive rows at this stride.
    words_per_row = row_stride_bytes // SMEM_BANK_BYTES
    if words_per_row == 0:
        return 1.0
    distinct = len({(r * words_per_row) % SMEM_BANKS for r in range(min(rows, SMEM_BANKS))})
    lanes = min(rows, SMEM_BANKS)
    return max(1.0, lanes / distinct)


@dataclass(frozen=True)
class MemoryFootprint:
    """Device-memory footprint of one decode configuration (for OOM checks)."""

    weights_bytes: float
    kv_cache_bytes: float
    workspace_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.weights_bytes + self.kv_cache_bytes + self.workspace_bytes

    def fits(self, device_memory_gb: float) -> bool:
        """True when the footprint fits in ``device_memory_gb`` gigabytes."""
        return self.total_bytes <= device_memory_gb * (1024 ** 3)
