"""Kernel time model: trace + launch configuration -> seconds.

``simulate_kernel`` computes per-resource busy times from an
:class:`~repro.gpu.trace.OpTrace` and combines them according to an overlap
(hide) factor:

``t_exec = max(resources) + (sum(resources) - max(resources)) * (1 - hide)``

- ``hide = 1``: a perfectly software-pipelined kernel; the slowest resource
  bounds execution (roofline behaviour).
- ``hide = 0``: fully serialized phases (e.g. the ``Wn = 1`` layout of
  Table III, or a non-fused kernel chain).

Launch overhead, barrier serialization and the legacy-instruction-path
penalty (SM80 code on Hopper/Blackwell) are added on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.gpu.arch import ArchSpec
from repro.gpu.memory import dram_time, l2_time, smem_time
from repro.gpu.sm import Occupancy, occupancy
from repro.gpu.trace import OpTrace

#: Cycles one ``__syncthreads`` costs the block that executes it.
BARRIER_CYCLES = 30.0

#: Instruction paths a kernel can compile for.
INSTRUCTION_PATHS = ("sm80", "sm90", "blackwell_fp4")


@dataclass
class KernelLaunch:
    """Everything the model needs about one kernel launch."""

    name: str
    trace: OpTrace
    grid_blocks: int
    warps_per_block: int
    smem_per_block_bytes: int = 0
    regs_per_thread: int = 64
    #: Overlap quality in [0, 1]; see module docstring.
    hide_factor: float = 1.0
    #: Which instruction path the kernel was built for.
    instruction_path: str = "sm80"
    #: Number of host-side launches this represents (split-KV adds a
    #: reduction launch; non-fused systems launch many kernels).
    launches: int = 1
    #: Standalone sub-traces for attribution (e.g. "dequant", "softmax");
    #: their counts are *already included* in ``trace``.
    subtraces: Dict[str, OpTrace] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.hide_factor <= 1.0:
            raise ValueError("hide_factor must be in [0, 1]")
        if self.instruction_path not in INSTRUCTION_PATHS:
            raise ValueError(
                f"unknown instruction path {self.instruction_path!r}; "
                f"expected one of {INSTRUCTION_PATHS}"
            )
        if self.launches < 1:
            raise ValueError("launches must be >= 1")


@dataclass
class KernelResult:
    """Simulated execution of one kernel launch."""

    name: str
    time_s: float
    launch_time_s: float
    exec_time_s: float
    resource_times: Dict[str, float]
    occupancy: Occupancy
    arch_name: str
    #: Standalone times of the launch's subtraces (same occupancy/overlap).
    subtrace_times: Dict[str, float] = field(default_factory=dict)

    @property
    def time_ms(self) -> float:
        return self.time_s * 1e3

    @property
    def time_us(self) -> float:
        return self.time_s * 1e6

    @property
    def bound_by(self) -> str:
        """Name of the resource with the largest busy time."""
        if not self.resource_times:
            return "none"
        return max(self.resource_times, key=self.resource_times.get)


def _tc_peak(arch: ArchSpec, launch: KernelLaunch, precision: str) -> float:
    """Tensor-core peak FLOP/s for this launch."""
    return arch.tc_flops_per_s(precision)


def _path_efficiency(arch: ArchSpec, launch: KernelLaunch) -> float:
    """Whole-kernel throughput factor for the chosen instruction path.

    The paper reports a ~35% throughput penalty for running legacy SM80
    instruction sequences on Hopper (Sec. III-A); kernels built for the
    native path (``sm90`` wgmma/TMA, ``blackwell_fp4``) run at full speed.
    """
    if launch.instruction_path == "sm80" and arch.is_at_least("hopper"):
        return arch.legacy_path_efficiency
    return 1.0


def _resource_times(
    arch: ArchSpec, launch: KernelLaunch, trace: OpTrace, occ: Occupancy
) -> Dict[str, float]:
    """Busy time per hardware resource for one trace under one launch."""
    active_frac = occ.active_sm_fraction
    times: Dict[str, float] = {}

    times["dram"] = dram_time(
        arch, trace.total_gmem_bytes_effective, occ.inflight_warps
    ) if trace.total_gmem_bytes_effective > 0 else 0.0
    times["l2"] = l2_time(arch, trace.l2_bytes, active_frac)
    times["smem"] = smem_time(arch, trace.smem_bytes_effective, active_frac)

    tc_time = 0.0
    for precision, flops in trace.tc_flops.items():
        if flops <= 0:
            continue
        peak = _tc_peak(arch, launch, precision) * max(active_frac, 1.0 / arch.sm_count)
        tc_time += flops / peak
    times["tensor_core"] = tc_time

    frac = max(active_frac, 1.0 / arch.sm_count)
    times["fma"] = trace.fma_flops / (arch.cuda_flops_per_s * frac) if trace.fma_flops else 0.0
    alu = trace.alu_ops + trace.shfl_ops
    times["alu"] = alu / (arch.alu_ops_per_s() * frac) if alu else 0.0
    times["cvt"] = trace.cvt_ops / (arch.cvt_ops_per_s() * frac) if trace.cvt_ops else 0.0
    times["sfu"] = trace.sfu_ops / (arch.sfu_ops_per_s() * frac) if trace.sfu_ops else 0.0
    return times


def _combine(times: Dict[str, float], hide_factor: float) -> float:
    total = sum(times.values())
    if total <= 0:
        return 0.0
    peak = max(times.values())
    return peak + (total - peak) * (1.0 - hide_factor)


def simulate_kernel(arch: ArchSpec, launch: KernelLaunch) -> KernelResult:
    """Simulate one kernel launch on ``arch`` and return timing + breakdown."""
    if launch.instruction_path == "sm90" and not arch.has_wgmma:
        raise ValueError(f"{arch.name} cannot execute the sm90 (wgmma) path")
    if launch.instruction_path == "blackwell_fp4" and not arch.has_native_fp4:
        raise ValueError(f"{arch.name} has no native FP4 tensor cores")

    occ = occupancy(
        arch,
        launch.grid_blocks,
        launch.warps_per_block,
        launch.smem_per_block_bytes,
        launch.regs_per_thread,
    )
    path_eff = _path_efficiency(arch, launch)
    times = _resource_times(arch, launch, launch.trace, occ)
    exec_time = _combine(times, launch.hide_factor) / path_eff

    # Barriers serialize within a block; blocks across the machine run them
    # in parallel, so charge per-wave.
    barrier_time = launch.trace.barriers_per_block * BARRIER_CYCLES * arch.cycle_s * occ.waves
    launch_time = launch.launches * arch.kernel_launch_us * 1e-6
    total = launch_time + exec_time + barrier_time

    sub_times = {}
    for tag, sub in launch.subtraces.items():
        sub_times[tag] = (
            _combine(_resource_times(arch, launch, sub, occ), launch.hide_factor)
            / path_eff
        )

    return KernelResult(
        name=launch.name,
        time_s=total,
        launch_time_s=launch_time,
        exec_time_s=exec_time + barrier_time,
        resource_times=times,
        occupancy=occ,
        arch_name=arch.name,
        subtrace_times=sub_times,
    )


def sum_results(results: Iterable[KernelResult], name: str = "total") -> KernelResult:
    """Serially compose kernel results (back-to-back launches on a stream)."""
    results = list(results)
    if not results:
        raise ValueError("sum_results needs at least one result")
    total = sum(r.time_s for r in results)
    launch = sum(r.launch_time_s for r in results)
    execu = sum(r.exec_time_s for r in results)
    merged: Dict[str, float] = {}
    merged_sub: Dict[str, float] = {}
    for r in results:
        for k, v in r.resource_times.items():
            merged[k] = merged.get(k, 0.0) + v
        for k, v in r.subtrace_times.items():
            merged_sub[k] = merged_sub.get(k, 0.0) + v
    return KernelResult(
        name=name,
        time_s=total,
        launch_time_s=launch,
        exec_time_s=execu,
        resource_times=merged,
        occupancy=results[0].occupancy,
        arch_name=results[0].arch_name,
        subtrace_times=merged_sub,
    )
