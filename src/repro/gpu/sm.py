"""Streaming-Multiprocessor occupancy model.

Turns a launch configuration (blocks, warps per block, shared memory per
block) into the quantities the time model needs: blocks resident per SM,
machine-wide in-flight warps, the number of waves, and the fraction of SMs
with work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.arch import ArchSpec

#: Hardware cap on resident blocks per SM (post-Volta parts allow 16-32;
#: attention kernels never hit it before warps/smem limits, but keep it).
MAX_BLOCKS_PER_SM = 32


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy for one kernel launch."""

    blocks_per_sm: int
    active_sms: int
    inflight_warps: int
    waves: int

    @property
    def active_sm_fraction(self) -> float:
        return self.active_sms / self._sm_count if self._sm_count else 0.0

    # active_sm_fraction needs the machine size; stored privately.
    _sm_count: int = 0


def occupancy(
    arch: ArchSpec,
    grid_blocks: int,
    warps_per_block: int,
    smem_per_block_bytes: int = 0,
    regs_per_thread: int = 64,
) -> Occupancy:
    """Compute occupancy for a launch on ``arch``.

    Raises ``ValueError`` when one block cannot fit on an SM at all (too
    much shared memory or too many warps) — a real launch failure.
    """
    if grid_blocks <= 0:
        raise ValueError("grid_blocks must be positive")
    if warps_per_block <= 0:
        raise ValueError("warps_per_block must be positive")
    if warps_per_block > arch.max_warps_per_sm:
        raise ValueError(
            f"block of {warps_per_block} warps exceeds SM limit "
            f"{arch.max_warps_per_sm} on {arch.name}"
        )
    if smem_per_block_bytes > arch.smem_per_sm_bytes:
        raise ValueError(
            f"block needs {smem_per_block_bytes} B shared memory; "
            f"{arch.name} SM has {arch.smem_per_sm_bytes} B"
        )

    by_warps = arch.max_warps_per_sm // warps_per_block
    by_smem = (
        arch.smem_per_sm_bytes // smem_per_block_bytes
        if smem_per_block_bytes > 0
        else MAX_BLOCKS_PER_SM
    )
    threads_per_block = warps_per_block * 32
    by_regs = (
        arch.registers_per_sm // (regs_per_thread * threads_per_block)
        if regs_per_thread > 0
        else MAX_BLOCKS_PER_SM
    )
    blocks_per_sm = max(1, min(by_warps, by_smem, by_regs, MAX_BLOCKS_PER_SM))

    resident_blocks = min(grid_blocks, blocks_per_sm * arch.sm_count)
    # The block scheduler spreads blocks round-robin: every SM has work as
    # long as there are at least sm_count blocks.
    active_sms = min(arch.sm_count, grid_blocks)
    inflight_warps = resident_blocks * warps_per_block
    waves = math.ceil(grid_blocks / (blocks_per_sm * arch.sm_count))
    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        active_sms=active_sms,
        inflight_warps=inflight_warps,
        waves=waves,
        _sm_count=arch.sm_count,
    )
