"""Operation traces emitted by kernel implementations.

A kernel in this reproduction does two things: it computes its numerics in
numpy, and it *counts* the work a real CUDA kernel would have issued while
walking the same tile/warp structure.  Those counts live in an
:class:`OpTrace`.  The GPU model (:mod:`repro.gpu.kernel`) turns a trace into
time; the profiler (:mod:`repro.gpu.profiler`) turns it into Nsight-style
utilization percentages.

Counters are floats because kernels frequently record amortized per-value
costs (e.g. "0.75 lop3 ops per dequantized value").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable


class MemoryScope(Enum):
    """Which level of the hierarchy a transfer touches."""

    GLOBAL = "global"
    L2 = "l2"
    SHARED = "shared"


class AccessPattern(Enum):
    """Global-memory access pattern, with its achieved-bandwidth efficiency.

    The value is the fraction of peak bandwidth a stream of such accesses
    sustains: fully coalesced 128B transactions reach peak, strided accesses
    waste half of each transaction, scattered (random) accesses waste 3/4.
    """

    COALESCED = 1.0
    STRIDED = 0.5
    SCATTERED = 0.25


@dataclass
class OpTrace:
    """Kernel-total operation counts.

    Global-memory counters keep both the *raw* bytes the kernel semantically
    moves and the *effective* bytes after access-pattern inflation
    (raw / pattern efficiency); the effective figure is what the bandwidth
    model charges.
    """

    # --- global memory ----------------------------------------------------
    gmem_read_bytes: float = 0.0
    gmem_write_bytes: float = 0.0
    gmem_read_bytes_effective: float = 0.0
    gmem_write_bytes_effective: float = 0.0

    # --- L2-resident traffic (reuse hits served without DRAM) --------------
    l2_bytes: float = 0.0

    # --- shared memory ------------------------------------------------------
    smem_bytes: float = 0.0
    smem_bytes_effective: float = 0.0  # inflated by bank-conflict factor

    # --- compute pipes ------------------------------------------------------
    #: Tensor-Core FLOPs by precision ("fp16", "fp8", "fp4").
    tc_flops: Dict[str, float] = field(default_factory=dict)
    #: CUDA-core floating-point FLOPs (FMA counts as 2).
    fma_flops: float = 0.0
    #: Integer / logic ops (``lop3``, shifts, masks, compares).
    alu_ops: float = 0.0
    #: Slow conversion ops (``cvt`` / ``static_cast`` int->half).
    cvt_ops: float = 0.0
    #: Special-function-unit ops (``exp``, ``rcp``).
    sfu_ops: float = 0.0
    #: Warp-shuffle ops (charged to the ALU pipe but counted separately).
    shfl_ops: float = 0.0
    #: ``ldmatrix`` issues (their smem traffic is recorded via smem counters).
    ldmatrix_ops: float = 0.0

    # --- synchronization ----------------------------------------------------
    #: ``__syncthreads`` executions per block (serial within a block).
    barriers_per_block: float = 0.0

    # --- recording helpers --------------------------------------------------

    def gmem_read(self, nbytes: float, pattern: AccessPattern = AccessPattern.COALESCED) -> None:
        """Record a global-memory read of ``nbytes`` with an access pattern."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.gmem_read_bytes += nbytes
        self.gmem_read_bytes_effective += nbytes / pattern.value

    def gmem_write(self, nbytes: float, pattern: AccessPattern = AccessPattern.COALESCED) -> None:
        """Record a global-memory write of ``nbytes`` with an access pattern."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.gmem_write_bytes += nbytes
        self.gmem_write_bytes_effective += nbytes / pattern.value

    def l2_read(self, nbytes: float) -> None:
        """Record traffic served from L2 (e.g. broadcast Q, page tables)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.l2_bytes += nbytes

    def smem_traffic(self, nbytes: float, conflict_factor: float = 1.0) -> None:
        """Record shared-memory traffic; ``conflict_factor`` >= 1 replays."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if conflict_factor < 1.0:
            raise ValueError("conflict_factor must be >= 1")
        self.smem_bytes += nbytes
        self.smem_bytes_effective += nbytes * conflict_factor

    def tensor_core(self, flops: float, precision: str = "fp16") -> None:
        """Record Tensor-Core FLOPs at a given compute precision."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        self.tc_flops[precision] = self.tc_flops.get(precision, 0.0) + flops

    # --- algebra -------------------------------------------------------------

    def merge(self, other: "OpTrace") -> "OpTrace":
        """Accumulate ``other`` into ``self`` (in place); returns ``self``."""
        self.gmem_read_bytes += other.gmem_read_bytes
        self.gmem_write_bytes += other.gmem_write_bytes
        self.gmem_read_bytes_effective += other.gmem_read_bytes_effective
        self.gmem_write_bytes_effective += other.gmem_write_bytes_effective
        self.l2_bytes += other.l2_bytes
        self.smem_bytes += other.smem_bytes
        self.smem_bytes_effective += other.smem_bytes_effective
        for precision, flops in other.tc_flops.items():
            self.tc_flops[precision] = self.tc_flops.get(precision, 0.0) + flops
        self.fma_flops += other.fma_flops
        self.alu_ops += other.alu_ops
        self.cvt_ops += other.cvt_ops
        self.sfu_ops += other.sfu_ops
        self.shfl_ops += other.shfl_ops
        self.ldmatrix_ops += other.ldmatrix_ops
        self.barriers_per_block += other.barriers_per_block
        return self

    def scaled(self, factor: float) -> "OpTrace":
        """Return a new trace with every counter multiplied by ``factor``.

        ``barriers_per_block`` scales too: scaling a per-tile trace by the
        number of tiles a block processes multiplies the barriers the block
        executes.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        out = OpTrace(
            gmem_read_bytes=self.gmem_read_bytes * factor,
            gmem_write_bytes=self.gmem_write_bytes * factor,
            gmem_read_bytes_effective=self.gmem_read_bytes_effective * factor,
            gmem_write_bytes_effective=self.gmem_write_bytes_effective * factor,
            l2_bytes=self.l2_bytes * factor,
            smem_bytes=self.smem_bytes * factor,
            smem_bytes_effective=self.smem_bytes_effective * factor,
            tc_flops={k: v * factor for k, v in self.tc_flops.items()},
            fma_flops=self.fma_flops * factor,
            alu_ops=self.alu_ops * factor,
            cvt_ops=self.cvt_ops * factor,
            sfu_ops=self.sfu_ops * factor,
            shfl_ops=self.shfl_ops * factor,
            ldmatrix_ops=self.ldmatrix_ops * factor,
            barriers_per_block=self.barriers_per_block * factor,
        )
        return out

    def without(self, sub: "OpTrace") -> "OpTrace":
        """Return a copy with ``sub``'s counts removed (clamped at zero).

        Used for what-if profiling (e.g. Fig. 4b's "W/O Dequant" bar: the
        same kernel minus its dequantization instructions).
        """
        out = self.scaled(1.0)
        out.gmem_read_bytes = max(0.0, out.gmem_read_bytes - sub.gmem_read_bytes)
        out.gmem_write_bytes = max(0.0, out.gmem_write_bytes - sub.gmem_write_bytes)
        out.gmem_read_bytes_effective = max(
            0.0, out.gmem_read_bytes_effective - sub.gmem_read_bytes_effective
        )
        out.gmem_write_bytes_effective = max(
            0.0, out.gmem_write_bytes_effective - sub.gmem_write_bytes_effective
        )
        out.l2_bytes = max(0.0, out.l2_bytes - sub.l2_bytes)
        out.smem_bytes = max(0.0, out.smem_bytes - sub.smem_bytes)
        out.smem_bytes_effective = max(0.0, out.smem_bytes_effective - sub.smem_bytes_effective)
        for precision, flops in sub.tc_flops.items():
            out.tc_flops[precision] = max(0.0, out.tc_flops.get(precision, 0.0) - flops)
        out.fma_flops = max(0.0, out.fma_flops - sub.fma_flops)
        out.alu_ops = max(0.0, out.alu_ops - sub.alu_ops)
        out.cvt_ops = max(0.0, out.cvt_ops - sub.cvt_ops)
        out.sfu_ops = max(0.0, out.sfu_ops - sub.sfu_ops)
        out.shfl_ops = max(0.0, out.shfl_ops - sub.shfl_ops)
        out.ldmatrix_ops = max(0.0, out.ldmatrix_ops - sub.ldmatrix_ops)
        return out

    @staticmethod
    def merged(traces: Iterable["OpTrace"]) -> "OpTrace":
        """Merge an iterable of traces into a fresh one."""
        out = OpTrace()
        for trace in traces:
            out.merge(trace)
        return out

    # --- summaries -------------------------------------------------------------

    @property
    def total_tc_flops(self) -> float:
        return sum(self.tc_flops.values())

    @property
    def total_gmem_bytes(self) -> float:
        return self.gmem_read_bytes + self.gmem_write_bytes

    @property
    def total_gmem_bytes_effective(self) -> float:
        return self.gmem_read_bytes_effective + self.gmem_write_bytes_effective

    def is_empty(self) -> bool:
        """True when no work has been recorded."""
        return (
            self.total_gmem_bytes == 0
            and self.l2_bytes == 0
            and self.smem_bytes == 0
            and self.total_tc_flops == 0
            and self.fma_flops == 0
            and self.alu_ops == 0
            and self.cvt_ops == 0
            and self.sfu_ops == 0
            and self.shfl_ops == 0
            and self.ldmatrix_ops == 0
        )
