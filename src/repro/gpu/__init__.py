"""GPU performance-model substrate for the BitDecoding reproduction.

The paper evaluates CUDA kernels on physical Blackwell / Hopper / Ada /
Ampere GPUs.  This package substitutes those GPUs with an analytical,
trace-driven performance model:

- :mod:`repro.gpu.arch` — per-architecture specifications (SM count,
  clocks, DRAM/L2/SMEM bandwidth, Tensor-Core and CUDA-core throughput,
  feature flags such as ``cp.async``, TMA, ``wgmma`` and native FP4).
- :mod:`repro.gpu.instructions` — instruction classes and per-architecture
  issue costs (``mma``, ``wgmma``, ``ldmatrix``, ``lop3``, ``cvt``,
  ``shfl``, SFU ``exp`` and friends).
- :mod:`repro.gpu.trace` — ``OpTrace``: the counts a kernel implementation
  emits while it walks its tile/warp structure.
- :mod:`repro.gpu.memory` — DRAM roofline with occupancy-dependent
  efficiency, L2, and a shared-memory model with bank conflicts.
- :mod:`repro.gpu.warp` / :mod:`repro.gpu.sm` — warp-scheduler
  latency-hiding and SM occupancy models.
- :mod:`repro.gpu.kernel` — turns a trace plus a launch configuration and a
  pipeline descriptor into kernel time.
- :mod:`repro.gpu.profiler` — Nsight-Compute-style utilization metrics.

Kernels in :mod:`repro.core` and :mod:`repro.baselines` do their numerics in
numpy and emit :class:`~repro.gpu.trace.OpTrace` objects; this package turns
those traces into time and utilization figures.
"""

from repro.gpu.arch import (
    ArchSpec,
    GPU_REGISTRY,
    get_arch,
    A100,
    RTX4090,
    H100,
    RTX5090,
    RTX_PRO_6000,
)
from repro.gpu.trace import OpTrace, MemoryScope, AccessPattern
from repro.gpu.kernel import KernelLaunch, KernelResult, simulate_kernel, sum_results
from repro.gpu.profiler import KernelProfile, profile_kernel

__all__ = [
    "ArchSpec",
    "GPU_REGISTRY",
    "get_arch",
    "A100",
    "RTX4090",
    "H100",
    "RTX5090",
    "RTX_PRO_6000",
    "OpTrace",
    "MemoryScope",
    "AccessPattern",
    "KernelLaunch",
    "KernelResult",
    "simulate_kernel",
    "sum_results",
    "KernelProfile",
    "profile_kernel",
]
