"""Warp-scheduler latency-hiding model.

The paper's Challenge 2 (Fig. 4) and Table III show that where dequantization
sits relative to the warp layout decides whether it stalls Tensor Cores:

- Under FlashAttention's original partitioning, one warp owns the whole N
  dimension of a tile (``Wn = 1``).  The dequant -> mma chain inside that
  warp has no independent peer to hide behind, so the SM scheduler cannot
  overlap CUDA-core dequantization with Tensor-Core MMA: the two serialize.
- BitDecoding sets ``Wm = 1`` and widens ``Wn``, giving the scheduler
  ``Wn`` independent dequant/mma streams; one warp's dequant hides under
  another's MMA.

This module turns a warp layout (plus whether the software pipeline is
enabled) into a *hide factor* in [0, 1]: 1 means resource times combine as
``max`` (perfect overlap), 0 means they add (full serialization).  The
kernel model interpolates between the two.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WarpLayout:
    """Warp tiling of one thread block over an (M, N) score tile.

    ``wm`` warps partition the M (query) dimension, ``wn`` the N (key)
    dimension.  FlashAttention decode kernels historically use
    ``wm = warps, wn = 1``; BitDecoding uses ``wm = 1, wn = warps``
    (Sec. IV-B(1)).
    """

    wm: int
    wn: int

    def __post_init__(self) -> None:
        if self.wm <= 0 or self.wn <= 0:
            raise ValueError("warp counts must be positive")

    @property
    def warps_per_block(self) -> int:
        return self.wm * self.wn


def dequant_hide_factor(layout: WarpLayout, pipelined: bool = True) -> float:
    """How well per-warp CUDA-core work hides under Tensor-Core MMA.

    With ``wn`` independent warps along N the scheduler can interleave
    ``wn`` dequant/MMA streams, hiding ``(wn - 1)/wn`` of the serial
    exposure.  Disabling the software pipeline (no double-buffered
    ldmatrix/dequant ahead of the MMA) halves the achievable overlap: even
    with many warps, each one alternates load/dequant/mma phases.
    """
    hide = 1.0 - 1.0 / layout.wn
    if not pipelined:
        hide *= 0.5
    return hide


def memory_hide_factor(inflight_warps_per_sm: float, pipelined: bool = True) -> float:
    """How well global-memory latency hides under compute.

    ``cp.async`` / TMA double buffering plus a few resident warps is enough
    to overlap the tile-load stream with compute; without the async
    pipeline, loads synchronize with compute at every tile.
    """
    if inflight_warps_per_sm <= 0:
        return 0.0
    base = min(1.0, inflight_warps_per_sm / 8.0)
    if not pipelined:
        base *= 0.5
    return base


def combined_hide_factor(
    layout: WarpLayout,
    inflight_warps_per_sm: float,
    pipelined: bool = True,
) -> float:
    """Overall overlap quality for a fused mixed-precision attention kernel.

    The kernel's exposure is governed by its weakest overlap mechanism:
    dequant-vs-MMA interleaving (warp layout) and load-vs-compute
    double-buffering (async pipeline + occupancy).
    """
    return min(
        dequant_hide_factor(layout, pipelined=pipelined),
        memory_hide_factor(inflight_warps_per_sm, pipelined=pipelined),
    )
