"""GPU architecture specifications.

Each :class:`ArchSpec` captures the handful of hardware quantities the
BitDecoding performance model needs.  The numbers come from vendor
datasheets and the micro-benchmarking literature the paper cites
(e.g. Luo et al., "Benchmarking and dissecting the NVIDIA Hopper GPU
architecture").  They are *model parameters*: the reproduction targets
relative shapes, not absolute testbed milliseconds.

Five devices from the paper's evaluation are registered:

========================  ==========  =========================
name                      generation  role in the paper
========================  ==========  =========================
``a100``                  ampere      high-bandwidth datacenter
``rtx4090``               ada         bandwidth-constrained
``h100``                  hopper      wgmma / TMA showcase
``rtx5090``               blackwell   native MXFP4 showcase
``rtx_pro_6000``          blackwell   native MXFP4, workstation
========================  ==========  =========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


#: Ordered list of supported generation names, oldest first.
GENERATIONS: Tuple[str, ...] = ("ampere", "ada", "hopper", "blackwell")


@dataclass(frozen=True)
class ArchSpec:
    """Static description of one GPU for the performance model.

    Throughput figures are *dense* (non-sparse) peaks.  Tensor-Core numbers
    assume FP32 accumulation, which is what attention kernels use.
    """

    name: str
    generation: str

    # --- parallel machine shape -------------------------------------------------
    sm_count: int
    clock_ghz: float
    max_warps_per_sm: int
    smem_per_sm_bytes: int
    registers_per_sm: int

    # --- memory system ----------------------------------------------------------
    dram_bw_gbs: float
    l2_size_mb: float
    l2_bw_gbs: float
    #: Bytes of shared memory traffic one SM can move per cycle (LSU width).
    smem_bytes_per_cycle: int
    #: Total inflight warps needed machine-wide to reach peak DRAM bandwidth.
    bw_saturation_warps: int

    # --- compute pipes ----------------------------------------------------------
    #: Tensor-Core half-precision (FP16/BF16 in, FP32 accumulate) TFLOPS.
    tc_fp16_tflops: float
    #: Tensor-Core FP8 TFLOPS (0 when the generation lacks FP8).
    tc_fp8_tflops: float
    #: Tensor-Core FP4 (MXFP4/NVFP4) TFLOPS (0 when unsupported).
    tc_fp4_tflops: float
    #: CUDA-core FP32 TFLOPS (FMA counts as two FLOPs).
    cuda_fp32_tflops: float
    #: CUDA-core INT32/logic ops per SM per cycle (``lop3`` class).
    alu_ops_per_sm_cycle: int
    #: Special-function-unit (exp/rcp) ops per SM per cycle.
    sfu_ops_per_sm_cycle: int
    #: Slow data-conversion (``cvt`` / ``static_cast``) ops per SM per cycle.
    cvt_ops_per_sm_cycle: int

    # --- feature flags ----------------------------------------------------------
    has_cp_async: bool = True
    has_tma: bool = False
    has_wgmma: bool = False
    has_native_fp4: bool = False

    #: Device memory capacity (for serving-time OOM / batch-size limits).
    memory_gb: float = 80.0

    # --- software overheads -----------------------------------------------------
    kernel_launch_us: float = 6.0
    #: Relative throughput when running the legacy SM80 instruction path on a
    #: newer machine (the paper reports ~35% penalty on Hopper).
    legacy_path_efficiency: float = 1.0

    # --- interconnect (tensor-parallel all-reduce) ------------------------------
    #: All-reduce bandwidth per GPU (NVLink-class for the datacenter parts;
    #: the default is the A100 SXM figure behind the 70B/8xA100 row).
    nvlink_bw_gbs: float = 300.0
    #: Fixed all-reduce latency per layer per step (microseconds).
    allreduce_latency_us: float = 10.0

    def __post_init__(self) -> None:
        if self.generation not in GENERATIONS:
            raise ValueError(
                f"unknown generation {self.generation!r}; expected one of {GENERATIONS}"
            )
        if self.sm_count <= 0 or self.clock_ghz <= 0:
            raise ValueError("sm_count and clock_ghz must be positive")
        if self.has_native_fp4 and self.tc_fp4_tflops <= 0:
            raise ValueError("native FP4 support requires tc_fp4_tflops > 0")
        if self.nvlink_bw_gbs <= 0 or self.allreduce_latency_us < 0:
            raise ValueError(
                "nvlink_bw_gbs must be positive and allreduce_latency_us non-negative"
            )

    # --- derived quantities -------------------------------------------------

    @property
    def cycle_s(self) -> float:
        """Seconds per clock cycle."""
        return 1.0 / (self.clock_ghz * 1e9)

    @property
    def dram_bw_bytes_per_s(self) -> float:
        return self.dram_bw_gbs * 1e9

    @property
    def l2_bw_bytes_per_s(self) -> float:
        return self.l2_bw_gbs * 1e9

    def tc_flops_per_s(self, precision: str = "fp16") -> float:
        """Tensor-Core FLOP/s for a compute precision.

        ``precision`` is one of ``fp16``, ``fp8``, ``fp4``.  Requesting an
        unsupported precision raises ``ValueError`` so kernels cannot silently
        pretend a machine has hardware it lacks.
        """
        table = {
            "fp16": self.tc_fp16_tflops,
            "bf16": self.tc_fp16_tflops,
            "fp8": self.tc_fp8_tflops,
            "fp4": self.tc_fp4_tflops,
        }
        if precision not in table:
            raise ValueError(f"unknown tensor-core precision {precision!r}")
        tflops = table[precision]
        if tflops <= 0:
            raise ValueError(f"{self.name} has no tensor-core support for {precision}")
        return tflops * 1e12

    @property
    def cuda_flops_per_s(self) -> float:
        return self.cuda_fp32_tflops * 1e12

    def alu_ops_per_s(self) -> float:
        return self.alu_ops_per_sm_cycle * self.sm_count * self.clock_ghz * 1e9

    def sfu_ops_per_s(self) -> float:
        return self.sfu_ops_per_sm_cycle * self.sm_count * self.clock_ghz * 1e9

    def cvt_ops_per_s(self) -> float:
        return self.cvt_ops_per_sm_cycle * self.sm_count * self.clock_ghz * 1e9

    @property
    def smem_bw_bytes_per_s(self) -> float:
        return self.smem_bytes_per_cycle * self.sm_count * self.clock_ghz * 1e9

    def is_at_least(self, generation: str) -> bool:
        """True when this device's generation is >= ``generation``."""
        if generation not in GENERATIONS:
            raise ValueError(f"unknown generation {generation!r}")
        return GENERATIONS.index(self.generation) >= GENERATIONS.index(generation)


# ---------------------------------------------------------------------------
# Device registry.  Peak numbers: vendor datasheets (dense, FP32 accumulate).
# ---------------------------------------------------------------------------

A100 = ArchSpec(
    name="a100",
    generation="ampere",
    sm_count=108,
    clock_ghz=1.41,
    max_warps_per_sm=64,
    smem_per_sm_bytes=164 * 1024,
    registers_per_sm=65536,
    dram_bw_gbs=2039.0,  # A100-SXM4-80GB
    l2_size_mb=40.0,
    l2_bw_gbs=5120.0,
    smem_bytes_per_cycle=128,
    bw_saturation_warps=108 * 8,
    tc_fp16_tflops=312.0,
    tc_fp8_tflops=0.0,
    tc_fp4_tflops=0.0,
    cuda_fp32_tflops=19.5,
    alu_ops_per_sm_cycle=64,
    sfu_ops_per_sm_cycle=16,
    cvt_ops_per_sm_cycle=16,
    has_cp_async=True,
    memory_gb=80.0,
    kernel_launch_us=6.0,
)

RTX4090 = ArchSpec(
    name="rtx4090",
    generation="ada",
    sm_count=128,
    clock_ghz=2.52,
    max_warps_per_sm=48,
    smem_per_sm_bytes=100 * 1024,
    registers_per_sm=65536,
    dram_bw_gbs=1008.0,
    l2_size_mb=72.0,
    l2_bw_gbs=5000.0,
    smem_bytes_per_cycle=128,
    bw_saturation_warps=128 * 6,
    tc_fp16_tflops=165.2,  # FP16 with FP32 accumulate
    tc_fp8_tflops=330.4,
    tc_fp4_tflops=0.0,
    cuda_fp32_tflops=82.6,
    alu_ops_per_sm_cycle=64,
    sfu_ops_per_sm_cycle=16,
    cvt_ops_per_sm_cycle=16,
    has_cp_async=True,
    memory_gb=24.0,
    kernel_launch_us=5.0,
)

H100 = ArchSpec(
    name="h100",
    generation="hopper",
    sm_count=132,
    clock_ghz=1.83,
    max_warps_per_sm=64,
    smem_per_sm_bytes=228 * 1024,
    registers_per_sm=65536,
    dram_bw_gbs=3350.0,  # H100-SXM5
    l2_size_mb=50.0,
    l2_bw_gbs=12000.0,
    smem_bytes_per_cycle=128,
    bw_saturation_warps=132 * 10,
    tc_fp16_tflops=989.0,
    tc_fp8_tflops=1979.0,
    tc_fp4_tflops=0.0,
    cuda_fp32_tflops=66.9,
    alu_ops_per_sm_cycle=64,
    sfu_ops_per_sm_cycle=16,
    cvt_ops_per_sm_cycle=16,
    has_cp_async=True,
    has_tma=True,
    has_wgmma=True,
    memory_gb=80.0,
    kernel_launch_us=5.0,
    legacy_path_efficiency=0.65,  # paper: 35% penalty for SM80 path on Hopper
)

RTX5090 = ArchSpec(
    name="rtx5090",
    generation="blackwell",
    sm_count=170,
    clock_ghz=2.41,
    max_warps_per_sm=48,
    smem_per_sm_bytes=100 * 1024,
    registers_per_sm=65536,
    dram_bw_gbs=1792.0,
    l2_size_mb=96.0,
    l2_bw_gbs=8000.0,
    smem_bytes_per_cycle=128,
    bw_saturation_warps=170 * 6,
    tc_fp16_tflops=419.0,
    tc_fp8_tflops=838.0,
    tc_fp4_tflops=1676.0,
    cuda_fp32_tflops=104.8,
    alu_ops_per_sm_cycle=64,
    sfu_ops_per_sm_cycle=16,
    cvt_ops_per_sm_cycle=16,
    has_cp_async=True,
    has_tma=True,
    has_wgmma=False,  # consumer Blackwell keeps per-warp MMA but adds FP4 units
    has_native_fp4=True,
    memory_gb=32.0,
    kernel_launch_us=5.0,
    legacy_path_efficiency=0.75,
)

RTX_PRO_6000 = ArchSpec(
    name="rtx_pro_6000",
    generation="blackwell",
    sm_count=188,
    clock_ghz=2.29,
    max_warps_per_sm=48,
    smem_per_sm_bytes=100 * 1024,
    registers_per_sm=65536,
    dram_bw_gbs=1792.0,
    l2_size_mb=128.0,
    l2_bw_gbs=8200.0,
    smem_bytes_per_cycle=128,
    bw_saturation_warps=188 * 6,
    tc_fp16_tflops=503.0,
    tc_fp8_tflops=1007.0,
    tc_fp4_tflops=2014.0,
    cuda_fp32_tflops=125.0,
    alu_ops_per_sm_cycle=64,
    sfu_ops_per_sm_cycle=16,
    cvt_ops_per_sm_cycle=16,
    has_cp_async=True,
    has_tma=True,
    has_wgmma=False,
    has_native_fp4=True,
    memory_gb=96.0,
    kernel_launch_us=5.0,
    legacy_path_efficiency=0.75,
)

GPU_REGISTRY: Dict[str, ArchSpec] = {
    spec.name: spec for spec in (A100, RTX4090, H100, RTX5090, RTX_PRO_6000)
}


def get_arch(name: str) -> ArchSpec:
    """Look up a registered device by name (case-insensitive)."""
    key = name.lower()
    if key not in GPU_REGISTRY:
        known = ", ".join(sorted(GPU_REGISTRY))
        raise KeyError(f"unknown GPU {name!r}; known devices: {known}")
    return GPU_REGISTRY[key]
