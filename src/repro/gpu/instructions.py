"""Instruction-level cost helpers.

Kernel implementations translate value-level events ("dequantized N INT4
values via the lop3 path", "quantized and packed N values", "ran softmax on
an ``M x N`` score tile") into pipe-level op counts using the helpers here.
The per-value coefficients encode the PTX sequences the paper discusses:

- **lop3 fast dequant** (Kim et al. [14], BitDecoding Sec. IV-A(3)): packed
  INT4 values are mapped through the ``75316420`` interleaved pattern so one
  ``lop3.b32`` extracts two values; applying scale/zero is one ``HFMA2``.
- **static_cast dequant**: the naive path shifts, masks, and runs ``cvt``
  per value; ``cvt`` issues on the slow conversion pipe.
- **quantize + pack**: min/max reductions (compares), ``__shfl_xor_sync``
  butterflies for the warp-level reduction, one FMA per value for the affine
  map, and shift/or packing.

The exact coefficients are model parameters; tests pin their *relative*
ordering (lop3 path beats cvt path; INT2 unpack costs more logic than INT4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.gpu.trace import OpTrace


# --------------------------------------------------------------------------
# Tensor-Core MMA shapes
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MmaShape:
    """One Tensor-Core matrix instruction shape (``mma.mMnNkK``)."""

    m: int
    n: int
    k: int
    name: str

    @property
    def flops(self) -> int:
        """FLOPs one instruction performs (multiply + add)."""
        return 2 * self.m * self.n * self.k


#: Per-warp MMA used on Ampere/Ada (and as the legacy path on newer parts).
MMA_M16N8K16 = MmaShape(16, 8, 16, "mma.m16n8k16")
#: Smaller-K variant with a different fragment layout (Fig. 3 discussion).
MMA_M16N8K8 = MmaShape(16, 8, 8, "mma.m16n8k8")
#: Hopper warpgroup MMA (4 warps cooperate; B sourced from shared memory).
WGMMA_M64N64K16 = MmaShape(64, 64, 16, "wgmma.m64n64k16")
#: Blackwell block-scaled FP4 MMA.
MMA_FP4_M16N8K32 = MmaShape(16, 8, 32, "mma.m16n8k32.mxf4")

MMA_SHAPES: Dict[str, MmaShape] = {
    shape.name: shape
    for shape in (MMA_M16N8K16, MMA_M16N8K8, WGMMA_M64N64K16, MMA_FP4_M16N8K32)
}


#: Bytes one ``ldmatrix.x4`` moves from shared memory into registers
#: (four 8x8 FP16 tiles).
LDMATRIX_X4_BYTES = 4 * 8 * 8 * 2


# --------------------------------------------------------------------------
# Dequantization cost models
# --------------------------------------------------------------------------

#: Per-value pipe costs of the lop3 fast-dequant path, keyed by bit width.
#: ``alu``: lop3/shift ops; ``fma``: scale/zero FLOPs (one HFMA2 = 2 FLOPs).
_LOP3_DEQUANT_COST = {
    8: {"alu": 0.50, "fma": 2.0, "cvt": 0.0},
    4: {"alu": 0.75, "fma": 2.0, "cvt": 0.0},
    2: {"alu": 1.25, "fma": 2.0, "cvt": 0.0},
    1: {"alu": 1.50, "fma": 2.0, "cvt": 0.0},
}

#: Per-value pipe costs of the naive static_cast path.
_CVT_DEQUANT_COST = {
    8: {"alu": 0.5, "fma": 2.0, "cvt": 1.0},
    4: {"alu": 1.0, "fma": 2.0, "cvt": 1.0},
    2: {"alu": 1.5, "fma": 2.0, "cvt": 1.0},
    1: {"alu": 2.0, "fma": 2.0, "cvt": 1.0},
}


def dequant_ops(n_values: float, bits: int, method: str = "lop3") -> OpTrace:
    """Trace for dequantizing ``n_values`` packed ``bits``-wide integers.

    ``method`` is ``"lop3"`` (the paper's fast path, Sec. IV-A(3)) or
    ``"cvt"`` (naive ``static_cast``).
    """
    table = _LOP3_DEQUANT_COST if method == "lop3" else _CVT_DEQUANT_COST
    if method not in ("lop3", "cvt"):
        raise ValueError(f"unknown dequant method {method!r}")
    if bits not in table:
        raise ValueError(f"unsupported dequant bit width {bits}")
    cost = table[bits]
    trace = OpTrace()
    trace.alu_ops += cost["alu"] * n_values
    trace.fma_flops += cost["fma"] * n_values
    trace.cvt_ops += cost["cvt"] * n_values
    return trace


def quant_pack_ops(n_values: float, bits: int, group_size: int) -> OpTrace:
    """Trace for online quantization + packing of ``n_values`` FP16 values.

    Covers the Residual Kernel's work: per-group min/max (thread-level
    compares + warp ``shfl_xor`` butterfly), the affine quantization FMA,
    rounding, and shift/or packing into words.
    """
    if bits not in (1, 2, 4, 8):
        raise ValueError(f"unsupported quantization bit width {bits}")
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    trace = OpTrace()
    # min/max scan: two compares per value.
    trace.alu_ops += 2.0 * n_values
    # warp butterfly reduction: 5 shfl levels x 2 (min and max) per group
    # that spans a warp; amortized per value.
    n_groups = n_values / group_size
    trace.shfl_ops += 10.0 * n_groups
    # scale/zero computation: a handful of FLOPs per group.
    trace.fma_flops += 8.0 * n_groups
    # affine map + round per value.
    trace.fma_flops += 2.0 * n_values
    trace.alu_ops += 1.0 * n_values  # shift/or packing
    return trace


def softmax_ops(n_scores: float, n_rows: float, coop_warps: int = 1) -> OpTrace:
    """Trace for an online-softmax update over ``n_scores`` logits.

    ``n_rows`` is the number of softmax rows (for rowmax/rescale traffic),
    ``coop_warps`` the number of warps participating in the cross-warp
    reduction of Algorithm 1 (adds ``shfl`` + shared-memory round trips).
    """
    trace = OpTrace()
    trace.alu_ops += 1.0 * n_scores  # running-max compares
    trace.sfu_ops += 1.0 * n_scores  # exp
    trace.fma_flops += 3.0 * n_scores  # subtract max, scale, accumulate
    trace.shfl_ops += 5.0 * n_rows  # intra-warp rowmax butterfly
    if coop_warps > 1:
        # Inter-warp reduction via the sTMP buffer: one float per warp per
        # row written + read back (Algorithm 1, line 2).
        trace.smem_traffic(4.0 * n_rows * coop_warps * 2)
        trace.shfl_ops += 5.0 * n_rows
    return trace


def p_requant_ops(n_values: float) -> OpTrace:
    """Trace for on-the-fly re-quantization of the probability matrix P.

    Blackwell's native-FP4 path must quantize ``P = softmax(QK^T)`` before
    the second MMA (Sec. III-B, Challenge 2).  Cost: rowmax reuse plus one
    FMA + round/pack per value.
    """
    trace = OpTrace()
    trace.fma_flops += 2.0 * n_values
    trace.alu_ops += 1.0 * n_values
    return trace


def rescale_accum_ops(n_values: float) -> OpTrace:
    """Trace for the `diag(exp(m_old - m_new)) @ O` accumulator rescale."""
    trace = OpTrace()
    trace.fma_flops += 2.0 * n_values
    return trace
