"""Continuous-batching serving engine over the paged low-bit KV cache.

The dynamic half of the paper's serving claim: a discrete-event scheduler
that admits Poisson request traffic into a physical page pool, interleaves
prefill with decode, preempts on page exhaustion, and times every step
with the end-to-end latency model.  Lower-bit cache formats earn more
pages from the same device memory, hold more resident sequences, and
sustain higher throughput at lower tail latency — the Figs. 12b/13 chain
of effects, end to end.

With ``prefill_chunk_tokens`` set, the scheduler switches from whole-prompt
admission to Sarathi/vLLM-style chunked prefill: prompts advance one token
quantum per step, batched with resident decode tokens into mixed steps, so
a 32k-token prompt no longer head-of-line blocks every in-flight decode.

With ``EngineConfig(execute=True)`` (CLI: ``serve-sim --execute``) the
engine additionally runs real tokens through TinyTransformer + the paged
low-bit cache each step — the scheduler's pages are the pages the
numerics read; see :mod:`repro.attn`.

Quickstart::

    from repro.gpu.arch import get_arch
    from repro.model.config import LLAMA31_8B
    from repro.serving import compare_formats, paper_serving_stacks, poisson_trace

    trace = poisson_trace(96, rate_rps=32.0, prompt_len=8192, output_len=256)
    arch = get_arch("a100")
    reports = compare_formats(
        LLAMA31_8B, arch, paper_serving_stacks(LLAMA31_8B, arch), trace
    )

Or from the command line: ``python -m repro serve-sim``.
"""

from repro.serving.engine import (
    ContinuousBatchingEngine,
    EngineConfig,
    compare_formats,
)
from repro.serving.formats import paper_serving_stacks
from repro.serving.report import ServingReport
from repro.serving.request import (
    DeadlinePolicy,
    Phase,
    Request,
    RequestLifecycle,
    poisson_trace,
)

__all__ = [
    "ContinuousBatchingEngine",
    "DeadlinePolicy",
    "EngineConfig",
    "Phase",
    "Request",
    "RequestLifecycle",
    "ServingReport",
    "compare_formats",
    "paper_serving_stacks",
    "poisson_trace",
]
