"""The paper's serving stacks: cache format paired with attention system.

Each entry binds a :class:`~repro.model.memory.CacheFormat` to the
attention system that actually decodes from it, so a simulation differs
between formats exactly where the paper says it should: page-pool
capacity (bytes per cached token) and attention kernel time.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.flash_decoding import FlashDecodingV2
from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.gpu.arch import ArchSpec
from repro.model.config import ModelConfig
from repro.model.inference import AttentionSystem
from repro.model.memory import CacheFormat, fp16_format, int_format


def paper_serving_stacks(
    model: ModelConfig,
    arch: ArchSpec,
    residual_window: int = 64,
) -> List[Tuple[CacheFormat, AttentionSystem]]:
    """FP16 / INT4 / INT2 stacks for the Fig. 13-style comparison.

    The low-bit formats carry an FP16 residual window per sequence
    (Sec. IV-A(2)): the newest tokens stay unquantized until a Tensor-Core
    aligned block fills, and the engine reserves that working set per
    batch slot before sizing the page pool.
    """
    return [
        (fp16_format(), FlashDecodingV2(arch)),
        (
            int_format(4, model, residual_window=residual_window),
            BitDecoding(BitDecodingConfig(bits=4), arch),
        ),
        (
            int_format(2, model, residual_window=residual_window),
            BitDecoding(BitDecodingConfig(bits=2), arch),
        ),
    ]
