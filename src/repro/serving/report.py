"""Simulation metrics: what one engine run reports.

The report carries exactly the quantities the paper's serving argument is
about — sustained tokens/s, request-latency percentiles, and the peak
resident batch the page pool supported — plus the scheduler counters
(preemptions, rejections, step counts) the tests assert on.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional

import numpy as np


def _percentile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass
class ServingReport:
    """Outcome of one continuous-batching simulation."""

    format_name: str
    n_pages: int
    page_size: int
    n_requests: int
    completed: int
    rejected: int
    preemptions: int
    prefill_steps: int
    decode_steps: int
    sim_time_s: float
    total_generated_tokens: int
    peak_resident_batch: int
    sustained_tokens_per_s: float
    p50_latency_s: Optional[float]
    p99_latency_s: Optional[float]
    p50_ttft_s: Optional[float]

    @classmethod
    def build(
        cls,
        format_name: str,
        n_pages: int,
        page_size: int,
        n_requests: int,
        rejected: int,
        preemptions: int,
        prefill_steps: int,
        decode_steps: int,
        sim_time_s: float,
        total_generated_tokens: int,
        peak_resident_batch: int,
        latencies_s: List[float],
        ttfts_s: List[float],
    ) -> "ServingReport":
        sustained = total_generated_tokens / sim_time_s if sim_time_s > 0 else 0.0
        return cls(
            format_name=format_name,
            n_pages=n_pages,
            page_size=page_size,
            n_requests=n_requests,
            completed=len(latencies_s),
            rejected=rejected,
            preemptions=preemptions,
            prefill_steps=prefill_steps,
            decode_steps=decode_steps,
            sim_time_s=sim_time_s,
            total_generated_tokens=total_generated_tokens,
            peak_resident_batch=peak_resident_batch,
            sustained_tokens_per_s=sustained,
            p50_latency_s=_percentile(latencies_s, 50.0),
            p99_latency_s=_percentile(latencies_s, 99.0),
            p50_ttft_s=_percentile(ttfts_s, 50.0),
        )

    def to_dict(self) -> dict:
        """JSON-safe summary (None percentiles stay None)."""
        return asdict(self)
