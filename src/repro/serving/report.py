"""Simulation metrics: what one engine run reports.

The report carries exactly the quantities the paper's serving argument is
about — sustained tokens/s, request-latency percentiles, and the peak
resident batch the page pool supported — plus the scheduler counters
(preemptions, rejections, step counts) the tests assert on.

TTFT (time to first token) and TBT (time between tokens) are reported as
separate percentile families because chunked prefill trades one for the
other: splitting a long prompt into scheduler quanta stops it head-of-line
blocking resident decodes (p99 TBT collapses) at the cost of the prompt's
own first token arriving later (TTFT grows).  A single latency number
would hide exactly the trade-off the ``prefill_chunk_tokens`` knob exists
to tune.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional

import numpy as np


def _percentile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass
class ServingReport:
    """Outcome of one continuous-batching simulation."""

    format_name: str
    n_pages: int
    page_size: int
    prefill_chunk_tokens: Optional[int]
    n_requests: int
    completed: int
    rejected: int
    preemptions: int
    prefill_steps: int
    decode_steps: int
    mixed_steps: int
    sim_time_s: float
    total_generated_tokens: int
    peak_resident_batch: int
    sustained_tokens_per_s: float
    p50_latency_s: Optional[float]
    p99_latency_s: Optional[float]
    p50_ttft_s: Optional[float]
    p99_ttft_s: Optional[float]
    p50_tbt_s: Optional[float]
    p99_tbt_s: Optional[float]
    #: The single worst inter-token gap — the headline stall number.  A
    #: p99 can miss a handful of giant whole-prompt stalls when decodes
    #: outnumber admissions 100:1; the max never does.
    max_tbt_s: Optional[float]
    #: Tokens actually run through the numeric model (execute mode); None
    #: for purely analytical runs.  Must equal ``total_generated_tokens``
    #: when set — the scheduler and the model runner advance in lock-step.
    executed_tokens: Optional[int] = None
    #: Whether the engine probed a prefix cache at admission.
    prefix_cache_enabled: bool = False
    #: Prompt tokens served from the prefix cache (prefill compute skipped).
    prefix_hit_tokens: int = 0
    #: Prompt tokens probed against the cache (every admission's context).
    prefix_probe_tokens: int = 0
    #: Pages resurrected or shared instead of freshly prefilled (cumulative
    #: count of hit pages across admissions — the "reclaimed" metric).
    prefix_reclaimed_pages: int = 0
    #: Cached refcount-0 pages the allocator evicted (LRU) under pressure.
    prefix_evictions: int = 0
    #: Peak pages saved by sharing at any instant: sum over resident pages
    #: of (refcount - 1) at its maximum.
    shared_pages_peak: int = 0
    #: Pool capacity the trace effectively saw: physical pages plus the
    #: peak concurrent sharing saving.  Equals ``n_pages`` when nothing
    #: was ever shared.
    effective_capacity_pages: int = 0
    #: Preemption discipline the run used ("recompute" or "swap").
    preemption: str = "recompute"
    #: Tier geometry of a swap run; a recompute run reports the whole pool
    #: as the device tier and zero host/disk.
    device_pages: int = 0
    host_pages: int = 0
    disk_pages: int = 0
    #: Sequences demoted to the host tier (swap preemption) / promoted back.
    swap_outs: int = 0
    swap_ins: int = 0
    #: Cumulative migration traffic of the tier store.
    offload_h2d_bytes: int = 0
    offload_d2h_bytes: int = 0
    offload_disk_bytes: int = 0
    #: Pages fetched synchronously because compute touched them cold.
    offload_faults: int = 0
    #: Stall seconds the faults added to the clock (never overlapped).
    offload_stall_s: float = 0.0
    #: Prefetch/demote transfer seconds hidden under compute.
    offload_overlapped_s: float = 0.0
    #: Whether a fault-injection plan was active for this run.
    faults_enabled: bool = False
    #: Failed transfer attempts that were retried (each priced in full).
    transfer_retries: int = 0
    #: Exponential-backoff seconds charged between retry attempts.
    retry_backoff_s: float = 0.0
    #: Pages whose content failed its promote-time integrity check.
    checksum_failures: int = 0
    #: Pages whose content a permanent transfer fault destroyed.
    lost_pages: int = 0
    #: Lost/corrupt pages recovered by recompute-style replay.
    healed_pages: int = 0
    #: Sequences replayed because a page they mapped died.
    healed_requests: int = 0
    #: Scheduler steps the plan slowed down, and the extra seconds added.
    slow_steps: int = 0
    slow_step_stall_s: float = 0.0
    #: Requests refused by deadline-aware admission / expired in-system /
    #: dropped after exhausting the heal budget.
    shed: int = 0
    timed_out: int = 0
    failed: int = 0
    #: Finished requests that met their deadline (best-effort always does).
    deadline_met: int = 0
    #: Tokens/s counting only requests that met their deadline.
    goodput_tokens_per_s: float = 0.0
    #: Invariant-auditor passes completed during the run.
    audits: int = 0

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of probed prompt tokens served from the cache."""
        if self.prefix_probe_tokens == 0:
            return 0.0
        return self.prefix_hit_tokens / self.prefix_probe_tokens

    @classmethod
    def build(
        cls,
        format_name: str,
        n_pages: int,
        page_size: int,
        n_requests: int,
        rejected: int,
        preemptions: int,
        prefill_steps: int,
        decode_steps: int,
        sim_time_s: float,
        total_generated_tokens: int,
        peak_resident_batch: int,
        latencies_s: List[float],
        ttfts_s: List[float],
        tbts_s: List[float],
        mixed_steps: int = 0,
        prefill_chunk_tokens: Optional[int] = None,
        executed_tokens: Optional[int] = None,
        prefix_cache_enabled: bool = False,
        prefix_hit_tokens: int = 0,
        prefix_probe_tokens: int = 0,
        prefix_reclaimed_pages: int = 0,
        prefix_evictions: int = 0,
        shared_pages_peak: int = 0,
        effective_capacity_pages: Optional[int] = None,
        preemption: str = "recompute",
        device_pages: Optional[int] = None,
        host_pages: int = 0,
        disk_pages: int = 0,
        swap_outs: int = 0,
        swap_ins: int = 0,
        offload_h2d_bytes: int = 0,
        offload_d2h_bytes: int = 0,
        offload_disk_bytes: int = 0,
        offload_faults: int = 0,
        offload_stall_s: float = 0.0,
        offload_overlapped_s: float = 0.0,
        faults_enabled: bool = False,
        transfer_retries: int = 0,
        retry_backoff_s: float = 0.0,
        checksum_failures: int = 0,
        lost_pages: int = 0,
        healed_pages: int = 0,
        healed_requests: int = 0,
        slow_steps: int = 0,
        slow_step_stall_s: float = 0.0,
        shed: int = 0,
        timed_out: int = 0,
        failed: int = 0,
        deadline_met: int = 0,
        goodput_tokens: int = 0,
        audits: int = 0,
    ) -> "ServingReport":
        sustained = total_generated_tokens / sim_time_s if sim_time_s > 0 else 0.0
        goodput = goodput_tokens / sim_time_s if sim_time_s > 0 else 0.0
        return cls(
            format_name=format_name,
            n_pages=n_pages,
            page_size=page_size,
            prefill_chunk_tokens=prefill_chunk_tokens,
            n_requests=n_requests,
            completed=len(latencies_s),
            rejected=rejected,
            preemptions=preemptions,
            prefill_steps=prefill_steps,
            decode_steps=decode_steps,
            mixed_steps=mixed_steps,
            sim_time_s=sim_time_s,
            total_generated_tokens=total_generated_tokens,
            peak_resident_batch=peak_resident_batch,
            sustained_tokens_per_s=sustained,
            p50_latency_s=_percentile(latencies_s, 50.0),
            p99_latency_s=_percentile(latencies_s, 99.0),
            p50_ttft_s=_percentile(ttfts_s, 50.0),
            p99_ttft_s=_percentile(ttfts_s, 99.0),
            p50_tbt_s=_percentile(tbts_s, 50.0),
            p99_tbt_s=_percentile(tbts_s, 99.0),
            max_tbt_s=max(tbts_s) if tbts_s else None,
            executed_tokens=executed_tokens,
            prefix_cache_enabled=prefix_cache_enabled,
            prefix_hit_tokens=prefix_hit_tokens,
            prefix_probe_tokens=prefix_probe_tokens,
            prefix_reclaimed_pages=prefix_reclaimed_pages,
            prefix_evictions=prefix_evictions,
            shared_pages_peak=shared_pages_peak,
            effective_capacity_pages=(
                n_pages + shared_pages_peak
                if effective_capacity_pages is None
                else effective_capacity_pages
            ),
            preemption=preemption,
            device_pages=n_pages if device_pages is None else device_pages,
            host_pages=host_pages,
            disk_pages=disk_pages,
            swap_outs=swap_outs,
            swap_ins=swap_ins,
            offload_h2d_bytes=offload_h2d_bytes,
            offload_d2h_bytes=offload_d2h_bytes,
            offload_disk_bytes=offload_disk_bytes,
            offload_faults=offload_faults,
            offload_stall_s=offload_stall_s,
            offload_overlapped_s=offload_overlapped_s,
            faults_enabled=faults_enabled,
            transfer_retries=transfer_retries,
            retry_backoff_s=retry_backoff_s,
            checksum_failures=checksum_failures,
            lost_pages=lost_pages,
            healed_pages=healed_pages,
            healed_requests=healed_requests,
            slow_steps=slow_steps,
            slow_step_stall_s=slow_step_stall_s,
            shed=shed,
            timed_out=timed_out,
            failed=failed,
            deadline_met=deadline_met,
            goodput_tokens_per_s=goodput,
            audits=audits,
        )

    def to_dict(self) -> dict:
        """JSON-safe summary (None percentiles stay None)."""
        out = asdict(self)
        out["prefix_hit_rate"] = self.prefix_hit_rate
        return out
