"""Request model, lifecycle state machine, and traffic traces.

A request is the unit the continuous-batching scheduler reasons about: it
arrives at a point in time, carries a prompt that must be prefilled, and
wants a fixed number of decoded tokens.  Its scheduler-side state walks a
small machine (:class:`Phase`): QUEUED until admission, PREFILL while the
prompt is being written into the page pool (whole-prompt admission jumps
through this in one step; chunked prefill walks it a scheduler quantum at
a time), DECODE until the last output token, then FINISHED — with
REJECTED terminal for requests that could never fit the pool.  Traces are
generated with a seeded Poisson process so every simulation is exactly
reproducible.

Deadlines add three more terminal states: SHED (the deadline-aware
admission gate refused a request it predicted could not finish in time),
TIMED_OUT (the deadline passed with the request queued, running or
swapped), and FAILED (fault recovery exhausted its heal budget).  How
aggressively the engine sheds is a :class:`DeadlinePolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Request:
    """One serving request: arrival time plus prompt/output lengths.

    ``shared_prefix_len`` marks the leading tokens as a shared system
    prompt: every request with the same ``prefix_group`` has *identical*
    token content there (the runner synthesizes those rows from the group,
    not the request id), which is what the prefix cache deduplicates.

    ``deadline_s`` is the request's completion budget *relative to its
    arrival*: the last output token must be emitted by
    ``arrival_s + deadline_s`` for the request to count toward goodput.
    None means best-effort (always counts).
    """

    req_id: int
    arrival_s: float
    prompt_len: int
    output_len: int
    shared_prefix_len: int = 0
    prefix_group: int = 0
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.prompt_len <= 0 or self.output_len <= 0:
            raise ValueError("prompt_len and output_len must be positive")
        if not 0 <= self.shared_prefix_len <= self.prompt_len:
            raise ValueError("shared_prefix_len must lie in [0, prompt_len]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None for best-effort)")

    @property
    def total_len(self) -> int:
        """Context length when the last output token has been decoded."""
        return self.prompt_len + self.output_len


def prefix_block_keys(request: Request, n_blocks: int, page_size: int) -> List[Hashable]:
    """Content keys of a request's first ``n_blocks`` page-aligned blocks.

    Requests carry lengths, not token ids, so a block's "content hash" is
    derived from its *token identity*: blocks fully inside the shared
    prefix are tagged by ``(prefix_group, block_idx)`` — identical across
    every request of the group — and later blocks by ``(req_id, block_idx)``.
    Keys chain (block *i*'s key embeds all earlier tags), so equal keys
    mean the entire token prefix up to that block matches, exactly like a
    radix-tree path.  The tags are plain tuples, not salted ``hash()``
    values, so they are stable across processes and runs.
    """
    keys: List[Hashable] = []
    tags: List[Tuple] = []
    for i in range(n_blocks):
        if (i + 1) * page_size <= request.shared_prefix_len:
            tags.append(("prefix", request.prefix_group, i))
        else:
            tags.append(("req", request.req_id, i))
        keys.append(tuple(tags))
    return keys


class Phase(Enum):
    """Where a request stands in the scheduler's state machine."""

    QUEUED = "queued"
    PREFILL = "prefill"
    DECODE = "decode"
    FINISHED = "finished"
    REJECTED = "rejected"
    #: Dropped by deadline-aware admission before ever being served.
    SHED = "shed"
    #: Deadline passed while queued, running or swapped.
    TIMED_OUT = "timed_out"
    #: Fault recovery exhausted the heal budget.
    FAILED = "failed"


@dataclass(frozen=True)
class DeadlinePolicy:
    """How the engine treats request deadlines.

    ``default_deadline_s`` applies to requests that carry none (None
    leaves them best-effort).  With ``shed_on_admission`` the FCFS head
    is *shed* — refused before consuming any pages — when the current
    clock plus an optimistic service estimate already overshoots its
    deadline; ``admission_slack`` scales that estimate (values above 1.0
    shed earlier, below 1.0 gamble on the estimate being pessimistic).
    Requests whose deadline passes while in the system are TIMED_OUT and
    their resources reclaimed after the step that crossed the line.
    """

    default_deadline_s: Optional[float] = None
    shed_on_admission: bool = True
    admission_slack: float = 1.0

    def __post_init__(self) -> None:
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive (or None)")
        if self.admission_slack <= 0:
            raise ValueError("admission_slack must be positive")


@dataclass
class RequestLifecycle:
    """Mutable scheduler-side state of one request.

    ``prefilled`` tracks how many context tokens have been written into
    the page pool toward ``prefill_target`` (set at admission to prompt
    plus any previously generated tokens, so a recompute re-admission
    re-prefills the full context).  Whole-prompt admission sets
    ``prefilled = prefill_target`` immediately; chunked prefill advances
    it one scheduler quantum per step.  Preemption clears ``seq_id`` and
    resets ``prefilled`` — the generated-token count survives, which is
    what makes recovery recompute-style rather than lossy.
    """

    request: Request
    seq_id: Optional[int] = None
    prefilled: int = 0
    prefill_target: int = 0
    generated: int = 0
    #: Leading tokens served from the prefix cache at this admission
    #: (block-aligned; their prefill compute was skipped).
    cached_tokens: int = 0
    #: Leading blocks of the current residency already registered with the
    #: prefix cache (so registration is incremental under chunked prefill).
    registered_blocks: int = 0
    admitted_s: Optional[float] = None
    first_token_s: Optional[float] = None
    last_token_s: Optional[float] = None
    finish_s: Optional[float] = None
    preemptions: int = 0
    rejected: bool = False
    #: Absolute completion deadline (arrival + deadline), resolved by the
    #: engine from the request and the deadline policy; None = best-effort.
    deadline_abs: Optional[float] = None
    shed: bool = False
    timed_out: bool = False
    failed: bool = False
    #: Recompute-style replays forced by lost/corrupt pages (distinct from
    #: capacity preemptions).
    heals: int = 0

    @property
    def context_len(self) -> int:
        """Tokens the KV cache must hold before the next decode step."""
        return self.request.prompt_len + self.generated

    @property
    def prefill_done(self) -> bool:
        """True once the resident context is fully written (decode-ready)."""
        return self.seq_id is not None and self.prefilled >= self.prefill_target

    @property
    def finished(self) -> bool:
        return self.finish_s is not None

    @property
    def met_deadline(self) -> bool:
        """Finished in time (best-effort requests always qualify)."""
        if not self.finished:
            return False
        return self.deadline_abs is None or self.finish_s <= self.deadline_abs

    @property
    def phase(self) -> Phase:
        if self.rejected:
            return Phase.REJECTED
        if self.shed:
            return Phase.SHED
        if self.timed_out:
            return Phase.TIMED_OUT
        if self.failed:
            return Phase.FAILED
        if self.finished:
            return Phase.FINISHED
        if self.seq_id is None:
            return Phase.QUEUED
        if not self.prefill_done:
            return Phase.PREFILL
        return Phase.DECODE


def _jittered(rng: np.random.Generator, base: int, jitter: float) -> int:
    if jitter <= 0:
        return base
    return max(1, int(round(base * rng.uniform(1.0 - jitter, 1.0 + jitter))))


def poisson_trace(
    n_requests: int,
    rate_rps: float,
    prompt_len: int,
    output_len: int,
    seed: int = 0,
    prompt_jitter: float = 0.0,
    output_jitter: float = 0.0,
    shared_prefix_fraction: float = 0.0,
    prefix_groups: int = 1,
    deadline_s: Optional[float] = None,
) -> List[Request]:
    """Build a deterministic Poisson arrival trace.

    Inter-arrival gaps are exponential with mean ``1 / rate_rps``; prompt
    and output lengths are drawn uniformly within ``+-jitter`` of their
    base values (0 keeps them fixed).  The same seed always yields the
    same trace, which is what makes the engine tests and the FP16 vs
    INT4/INT2 comparisons apples-to-apples.

    ``shared_prefix_fraction`` models shared system prompts: that fraction
    of the *base* prompt length is a prefix whose token content is shared
    by every request assigned the same group (requests round-robin over
    ``prefix_groups`` groups).  The prefix length is fixed per trace — not
    jittered — so group members really do share it; jittered prompts are
    clamped to leave at least one private token after the prefix.

    ``deadline_s`` stamps every request with the same relative completion
    deadline (None leaves the trace best-effort).
    """
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if not 0.0 <= shared_prefix_fraction < 1.0:
        raise ValueError("shared_prefix_fraction must lie in [0, 1)")
    if prefix_groups <= 0:
        raise ValueError("prefix_groups must be positive")
    shared_len = int(prompt_len * shared_prefix_fraction)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, n_requests)
    arrivals = np.cumsum(gaps)
    arrivals -= arrivals[0]  # first request lands at t=0
    return [
        Request(
            req_id=i,
            arrival_s=float(arrivals[i]),
            prompt_len=max(shared_len + 1, _jittered(rng, prompt_len, prompt_jitter)),
            output_len=_jittered(rng, output_len, output_jitter),
            shared_prefix_len=shared_len,
            prefix_group=i % prefix_groups,
            deadline_s=deadline_s,
        )
        for i in range(n_requests)
    ]
