"""Discrete-event continuous-batching engine over the paged low-bit KV cache.

This is the paper's serving claim (Figs. 12b/13, Table I) made dynamic:
instead of asking "what is the largest static batch that fits", the engine
schedules a *trace* of requests through a physical page pool and measures
what the format actually sustains under load.

Mechanics (the vLLM/QServe-style loop, one simulation step at a time):

- **Admission** is FCFS: the head of the wait queue is admitted as soon as
  the page pool can hold its context, charged a prefill step
  (:func:`repro.model.inference.prefill_time_ms`).  Admission does not
  skip over a blocked head — that keeps the discipline starvation-free.
- **Decode** advances every resident sequence by one token.  Token growth
  allocates pages through the shared
  :class:`~repro.pages.page_table.PageTable`; when the
  :class:`~repro.pages.allocator.PageAllocator` runs dry the engine
  preempts the most recently admitted sequence, releases all its pages,
  and requeues it at the front of the wait queue (recompute-style: its
  generated-token count is kept, its KV is rebuilt on re-admission).
- **Step timing** comes from the existing end-to-end latency model
  (:func:`repro.model.inference.decode_step_ms`) with whichever
  duck-typed attention system matches the cache format, so FP16 vs INT4
  vs INT2 runs differ exactly where the paper says they do: page-pool
  capacity and attention kernel time.

The page pool is sized from the *same* byte accounting the static model
uses (:func:`repro.model.memory.page_pool_size`), which is what makes
"equal memory, different bit width" a fair comparison.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from repro.gpu.arch import ArchSpec
from repro.model.config import ModelConfig
from repro.model.inference import AttentionSystem, decode_step_ms, prefill_time_ms
from repro.model.memory import CacheFormat, page_pool_size
from repro.model.serving import ServingOOMError
from repro.pages.allocator import OutOfPagesError, PageAllocator
from repro.pages.page_table import PageTable
from repro.serving.report import ServingReport
from repro.serving.request import Request


@dataclass
class EngineConfig:
    """Knobs of one simulation run."""

    model: ModelConfig
    arch: ArchSpec
    fmt: CacheFormat
    attention: AttentionSystem
    page_size: int = 64
    #: Physical pages in the pool; None derives it from the device memory
    #: left after weights and residual buffers (the shared code path with
    #: the static serving model).
    n_pages: Optional[int] = None
    max_batch: int = 384
    n_gpus: int = 1
    #: Cap on scheduler iterations (one admission phase + one decode step
    #: each); None runs the trace to completion.
    max_steps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.n_gpus <= 0:
            raise ValueError("n_gpus must be positive")


@dataclass
class RequestLifecycle:
    """Mutable scheduler-side state of one request."""

    request: Request
    seq_id: Optional[int] = None
    generated: int = 0
    admitted_s: Optional[float] = None
    first_token_s: Optional[float] = None
    finish_s: Optional[float] = None
    preemptions: int = 0
    rejected: bool = False

    @property
    def context_len(self) -> int:
        """Tokens the KV cache must hold before the next decode step."""
        return self.request.prompt_len + self.generated

    @property
    def finished(self) -> bool:
        return self.finish_s is not None


class ContinuousBatchingEngine:
    """Run one request trace through one (cache format, attention) stack."""

    def __init__(self, config: EngineConfig, requests: Sequence[Request]):
        self.config = config
        n_pages = config.n_pages
        if n_pages is None:
            n_pages = page_pool_size(
                config.model,
                config.arch,
                config.fmt,
                page_size=config.page_size,
                n_gpus=config.n_gpus,
                reserved_seqs=config.max_batch,
            )
        if n_pages <= 0:
            raise ServingOOMError(
                f"{config.model.name} leaves no page budget for {config.fmt.name} "
                f"on {config.arch.name} x{config.n_gpus}"
            )
        self.n_pages = n_pages
        self.allocator = PageAllocator(n_pages)
        self.table = PageTable(self.allocator, page_size=config.page_size)
        self.lifecycles: List[RequestLifecycle] = [
            RequestLifecycle(r)
            for r in sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        ]
        self._queue: Deque[RequestLifecycle] = deque()
        self._running: List[RequestLifecycle] = []
        self._clock = 0.0
        self._steps = 0
        self._prefill_steps = 0
        self._decode_steps = 0
        self._preemptions = 0
        self._total_generated = 0
        self._peak_resident = 0

    # ------------------------------------------------------------- scheduling

    def _pages_needed(self, tokens: int) -> int:
        return -(-tokens // self.config.page_size)

    def _admit(self) -> None:
        """FCFS admission: prefill queued requests while pages + slots last."""
        cfg = self.config
        while self._queue and len(self._running) < cfg.max_batch:
            head = self._queue[0]
            if self._pages_needed(head.request.total_len) > self.n_pages:
                # Could never finish, even with the pool to itself; admitting
                # it would only preempt-thrash, so reject it outright.
                head.rejected = True
                self._queue.popleft()
                continue
            need = self._pages_needed(head.context_len)
            if need > self.allocator.free_pages:
                break
            self._queue.popleft()
            head.seq_id = self.table.add_sequence(head.context_len)
            if head.admitted_s is None:
                head.admitted_s = self._clock
            self._clock += (
                prefill_time_ms(cfg.model, cfg.arch, head.context_len, cfg.n_gpus)
                * 1e-3
            )
            self._prefill_steps += 1
            self._running.append(head)
        self._peak_resident = max(self._peak_resident, len(self._running))

    def _preempt(self, victim: RequestLifecycle) -> None:
        """Release a sequence's pages and requeue it for recompute."""
        assert victim.seq_id is not None
        self.table.release_sequence(victim.seq_id)
        victim.seq_id = None
        victim.preemptions += 1
        self._preemptions += 1
        self._running.remove(victim)
        # Requeueing at the front cannot livelock: admission rejects any
        # request whose total context exceeds the pool, so a sequence that
        # has the pool to itself always has room to grow and the earliest
        # admitted sequence always completes.
        self._queue.appendleft(victim)

    def _grow(self, lc: RequestLifecycle) -> bool:
        """Make room for one more token; False if ``lc`` itself got evicted."""
        assert lc.seq_id is not None
        while True:
            try:
                self.table.append_token(lc.seq_id)
                return True
            except OutOfPagesError:
                victim = self._running[-1]  # most recently admitted
                evicted_self = victim is lc
                self._preempt(victim)
                if evicted_self:
                    return False

    def _decode(self) -> None:
        """One decode step: every resident sequence emits one token."""
        cfg = self.config
        for lc in list(self._running):
            if lc.seq_id is None:
                continue  # preempted earlier in this loop
            self._grow(lc)
        if not self._running:
            return
        batch = len(self._running)
        seq_len = max(lc.context_len + 1 for lc in self._running)
        step_s = (
            decode_step_ms(cfg.model, cfg.arch, cfg.attention, batch, seq_len, cfg.n_gpus)
            * 1e-3
        )
        self._clock += step_s
        self._decode_steps += 1
        self._peak_resident = max(self._peak_resident, batch)
        for lc in list(self._running):
            lc.generated += 1
            self._total_generated += 1
            if lc.first_token_s is None:
                lc.first_token_s = self._clock
            if lc.generated >= lc.request.output_len:
                assert lc.seq_id is not None
                self.table.release_sequence(lc.seq_id)
                lc.seq_id = None
                lc.finish_s = self._clock
                self._running.remove(lc)

    # -------------------------------------------------------------------- run

    def run(self) -> ServingReport:
        """Drive the trace to completion (or the step cap) and report."""
        pending: Deque[RequestLifecycle] = deque(self.lifecycles)
        while True:
            while pending and pending[0].request.arrival_s <= self._clock:
                self._queue.append(pending.popleft())
            if not self._queue and not self._running:
                if not pending:
                    break
                self._clock = pending[0].request.arrival_s
                continue
            if self.config.max_steps is not None and self._steps >= self.config.max_steps:
                break
            self._steps += 1
            self._admit()
            self._decode()
        return self._report()

    def _report(self) -> ServingReport:
        finished = [lc for lc in self.lifecycles if lc.finished]
        latencies = [lc.finish_s - lc.request.arrival_s for lc in finished]
        ttfts = [
            lc.first_token_s - lc.request.arrival_s
            for lc in self.lifecycles
            if lc.first_token_s is not None
        ]
        return ServingReport.build(
            format_name=self.config.fmt.name,
            n_pages=self.n_pages,
            page_size=self.config.page_size,
            n_requests=len(self.lifecycles),
            rejected=sum(1 for lc in self.lifecycles if lc.rejected),
            preemptions=self._preemptions,
            prefill_steps=self._prefill_steps,
            decode_steps=self._decode_steps,
            sim_time_s=self._clock,
            total_generated_tokens=self._total_generated,
            peak_resident_batch=self._peak_resident,
            latencies_s=latencies,
            ttfts_s=ttfts,
        )


def compare_formats(
    model: ModelConfig,
    arch: ArchSpec,
    stacks: Sequence[Tuple[CacheFormat, AttentionSystem]],
    requests: Sequence[Request],
    page_size: int = 64,
    max_batch: int = 384,
    n_gpus: int = 1,
    max_steps: Optional[int] = None,
) -> List[ServingReport]:
    """Run the same trace through several (format, attention) stacks.

    Every stack gets the page pool its format affords within the *same*
    device-memory budget — the lower-bit formats earn more pages, which is
    the whole serving argument of the paper.
    """
    reports = []
    for fmt, attention in stacks:
        engine = ContinuousBatchingEngine(
            EngineConfig(
                model=model,
                arch=arch,
                fmt=fmt,
                attention=attention,
                page_size=page_size,
                max_batch=max_batch,
                n_gpus=n_gpus,
                max_steps=max_steps,
            ),
            requests,
        )
        reports.append(engine.run())
    return reports
