"""Discrete-event continuous-batching engine over the paged low-bit KV cache.

This is the paper's serving claim (Figs. 12b/13, Table I) made dynamic:
instead of asking "what is the largest static batch that fits", the engine
schedules a *trace* of requests through a physical page pool and measures
what the format actually sustains under load.

Mechanics (the vLLM/QServe-style loop, one simulation step at a time):

- **Admission** is FCFS: the head of the wait queue is admitted as soon as
  the page pool can hold its context, charged a prefill step
  (:func:`repro.model.inference.prefill_time_ms`).  Admission does not
  skip over a blocked head — that keeps the discipline starvation-free.
- **Chunked prefill** (``EngineConfig.prefill_chunk_tokens``, the
  Sarathi/vLLM discipline) replaces whole-prompt admission: each step
  spends at most one token-budget quantum on in-flight prefills, reserving
  pages chunk by chunk, and batches those chunks *with* the resident
  decode tokens into one mixed step priced by
  :func:`repro.model.inference.mixed_step_ms`.  Long prompts stop
  head-of-line blocking decodes (p99 time-between-tokens collapses) at the
  cost of their own time-to-first-token.
- **Decode** advances every resident sequence by one token.  Token growth
  allocates pages through the shared
  :class:`~repro.pages.page_table.PageTable`; when the
  :class:`~repro.pages.allocator.PageAllocator` runs dry the engine
  preempts the most recently admitted sequence — decoding or mid-prefill —
  releases exactly the pages it had reserved so far, and requeues it at
  the front of the wait queue (recompute-style: its generated-token count
  is kept, its KV is rebuilt on re-admission).
- **Prefix caching** (``EngineConfig.prefix_cache``, the vLLM/SGLang
  discipline): admission probes a :class:`~repro.pages.prefix_cache.PrefixCache`
  of flushed page-aligned blocks chunk by chunk; hit pages are mapped into
  the new sequence's block table (refcount sharing through
  :meth:`PageAllocator.acquire <repro.pages.allocator.PageAllocator.acquire>`)
  and their prefill compute is skipped — priced *and* executed.  Pages
  whose last reference drops park in an LRU pool the allocator evicts
  from under pressure, so caching trades capacity for hit rate without
  leaking the pool.
- **Step timing** goes through the
  :class:`~repro.attn.protocol.AttentionBackend` protocol: a bare
  attention system is wrapped into an
  :class:`~repro.attn.analytical.AnalyticalBackend` (the end-to-end
  latency model, demoted to one implementation among three), so FP16 vs
  INT4 vs INT2 runs differ exactly where the paper says they do:
  page-pool capacity and attention kernel time.
- **Real execution** (``EngineConfig.execute``): with a
  :class:`~repro.attn.paged.PagedBitBackend`, every scheduler step also
  runs its tokens through a :class:`~repro.attn.runner.ModelRunner` —
  TinyTransformer layers over per-layer paged pools indexed by *this
  engine's page table*.  Admission reserves the pages the prefill
  numerics fill, chunked prefill writes packed blocks page by page, and
  preemption frees pages that really hold the victim's quantized KV.
  The clock is still the analytical one (same backend pricing), so the
  executed schedule is byte-for-byte the analytical schedule, with
  ``ServingReport.executed_tokens`` proving every generated token was
  actually computed.

The page pool is sized from the *same* byte accounting the static model
uses (:func:`repro.model.memory.page_pool_size`), which is what makes
"equal memory, different bit width" a fair comparison.  After every step
the engine checks page conservation — the pages held by resident
sequences must equal the allocator's used count — so scheduling bugs
(double releases, leaked mid-prefill reservations) fail loudly instead of
skewing the comparison.

**Faults, deadlines and degradation** (``EngineConfig.faults`` /
``deadline_policy`` / ``audit_every``): a
:class:`~repro.faults.plan.FaultSpec` arms the tier store with a
deterministic :class:`~repro.faults.plan.FaultPlan` — transient transfer
faults retry with backoff (priced as stall), permanent faults and
in-flight corruption (caught by demote/promote checksums) surface as
*bad pages* the engine heals by recompute-style replay of just the
affected sequences before any numerics read them.  A
:class:`~repro.serving.request.DeadlinePolicy` adds per-request
deadlines: admission sheds a head that cannot finish in time, expired
requests are timed out and reclaimed, and the report splits goodput
(tokens of deadline-meeting requests) from raw throughput.  An
:class:`~repro.faults.audit.InvariantAuditor` cross-checks allocator,
block tables and tier bijection every ``audit_every`` steps.  All
decisions are schedule-level, so an analytical and an executed chaos run
stay in lock-step — the ``serve-sim --chaos --execute`` cross-check
proves recovered decodes bit-identical to a fault-free run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.attn.analytical import AnalyticalBackend
from repro.attn.protocol import AttentionBackend
from repro.faults.audit import InvariantAuditor
from repro.faults.plan import FaultPlan, FaultSpec
from repro.gpu.arch import ArchSpec
from repro.model.config import ModelConfig
from repro.model.inference import AttentionSystem
from repro.model.memory import CacheFormat, MemoryTierModel, page_bytes, page_pool_size
from repro.model.serving import ServingOOMError
from repro.pages.allocator import OutOfPagesError, PageAllocator
from repro.pages.page_table import PageTable
from repro.pages.prefix_cache import PrefixCache
from repro.pages.tiers import TieredPageStore
from repro.serving.report import ServingReport
from repro.serving.request import (
    DeadlinePolicy,
    Phase,
    Request,
    RequestLifecycle,
    prefix_block_keys,
)

__all__ = [
    "ContinuousBatchingEngine",
    "DeadlinePolicy",
    "EngineConfig",
    "Phase",
    "RequestLifecycle",
    "compare_formats",
]


@dataclass
class EngineConfig:
    """Knobs of one simulation run.

    Exactly one of ``attention`` / ``backend`` selects the attention
    implementation: a bare :class:`AttentionSystem` is wrapped into an
    :class:`~repro.attn.analytical.AnalyticalBackend` (pure step
    pricing), while an :class:`~repro.attn.protocol.AttentionBackend`
    prices steps through the protocol and — with ``execute=True`` and a
    token-executing backend — also runs real tokens through a
    :class:`~repro.attn.runner.ModelRunner` sharing the engine's page
    table (``page_size`` must then equal the backend's residual block
    size ``N_r``, so one scheduler page is one packed block).
    """

    model: ModelConfig
    arch: ArchSpec
    fmt: CacheFormat
    attention: Optional[AttentionSystem] = None
    backend: Optional[AttentionBackend] = None
    #: Run real tokens through the numeric backend each scheduler step.
    execute: bool = False
    #: Seed of the runner's synthesized per-request input programs.
    execute_seed: int = 0
    page_size: int = 64
    #: Physical pages in the pool; None derives it from the device memory
    #: left after weights and residual buffers (the shared code path with
    #: the static serving model).
    n_pages: Optional[int] = None
    max_batch: int = 384
    n_gpus: int = 1
    #: Tensor-parallel degree: the KV-head space is sharded across ``tp``
    #: ranks (whole GQA groups, so ``tp`` must divide the model's KV-head
    #: count) and each decode step pays one rank's attention plus the
    #: all-reduce tax.  ``tp > 1`` spans the engine's GPUs, so it must
    #: equal ``n_gpus``; with ``execute=True`` the backend must be a
    #: :class:`~repro.cluster.sharding.ShardedPagedBackend` of the same
    #: degree.
    tp: int = 1
    #: Cap on scheduler iterations (one admission phase + one decode step
    #: each); None runs the trace to completion.
    max_steps: Optional[int] = None
    #: Token budget one scheduler step spends on prefill (vLLM/Sarathi
    #: chunked prefill).  None keeps whole-prompt admission: a prompt is
    #: prefilled in one step, head-of-line blocking resident decodes.
    prefill_chunk_tokens: Optional[int] = None
    #: Probe a radix-style prefix cache at admission: page-aligned blocks
    #: whose content keys were registered by an earlier prefill are mapped
    #: into the new sequence (refcount sharing) and their prefill compute
    #: is skipped.
    prefix_cache: bool = False
    #: Diagnostic knob: with ``False``, prefix-cache hits allocate private
    #: pages and *copy* the packed words instead of sharing the mapping.
    #: The schedule and every decode output must be bit-identical to the
    #: shared run — which is how the sharing machinery is validated.
    prefix_share: bool = True
    #: What happens when pages run out: ``"recompute"`` releases the
    #: victim's pages and replays its prefill on re-admission (the 0.2
    #: behaviour); ``"swap"`` demotes the victim's pages to the host tier
    #: and promotes them back on resume — no recompute, bit-identical KV.
    preemption: str = "recompute"
    #: Tier geometry of a ``preemption="swap"`` run: the device tier holds
    #: ``device_pages`` frames, backed by ``host_pages`` (+ modeled
    #: ``disk_pages``).  The allocator pool spans the *total*, so admission
    #: can accept aggregate context beyond device capacity; only the
    #: decode working set must fit the device tier at once.
    device_pages: Optional[int] = None
    host_pages: Optional[int] = None
    disk_pages: int = 0
    #: PCIe/NVMe bandwidth model pricing page migration (defaults used
    #: when None).
    tier_model: Optional[MemoryTierModel] = None
    #: Fault-injection spec; the engine builds a deterministic
    #: :class:`~repro.faults.plan.FaultPlan` from it and arms the tier
    #: store.  Requires ``preemption="swap"`` — faults live on the tier
    #: transfer legs.
    faults: Optional[FaultSpec] = None
    #: Deadline semantics (shedding, timeouts, goodput); None ignores
    #: ``Request.deadline_s`` entirely.
    deadline_policy: Optional[DeadlinePolicy] = None
    #: Run the invariant auditor every N steps (and once after the run);
    #: None disables auditing.
    audit_every: Optional[int] = None
    #: Heal budget per request: a sequence replayed more than this many
    #: times by fault recovery is dropped as FAILED.
    max_heals: int = 5

    @property
    def tiered(self) -> bool:
        return self.preemption == "swap"

    def __post_init__(self) -> None:
        if self.preemption not in ("recompute", "swap"):
            raise ValueError('preemption must be "recompute" or "swap"')
        if self.preemption == "swap":
            if self.device_pages is None or self.device_pages <= 0:
                raise ValueError('preemption="swap" needs a positive device_pages')
            if self.host_pages is None or self.host_pages <= 0:
                raise ValueError('preemption="swap" needs a positive host_pages')
            if self.disk_pages < 0:
                raise ValueError("disk_pages must be non-negative")
            if self.n_pages is not None:
                raise ValueError(
                    "n_pages is derived (device + host + disk) under "
                    'preemption="swap"; set the tier sizes instead'
                )
        elif (
            self.device_pages is not None
            or self.host_pages is not None
            or self.disk_pages
            or self.tier_model is not None
        ):
            raise ValueError(
                'tier geometry (device/host/disk pages, tier_model) requires '
                'preemption="swap"'
            )
        if not self.prefix_share and not self.prefix_cache:
            raise ValueError("prefix_share=False only modifies a prefix_cache=True run")
        if self.faults is not None and not self.tiered:
            raise ValueError(
                'faults are injected on tier transfer legs: FaultSpec needs '
                'preemption="swap" and a tier geometry'
            )
        if self.audit_every is not None and self.audit_every <= 0:
            raise ValueError("audit_every must be positive (or None)")
        if self.max_heals < 1:
            raise ValueError("max_heals must be at least 1")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.n_gpus <= 0:
            raise ValueError(
                f"n_gpus must be positive, got {self.n_gpus}; the engine "
                "needs at least one GPU to schedule on"
            )
        if self.tp < 1:
            raise ValueError(f"tp must be >= 1, got {self.tp}")
        if self.model.hkv % self.tp != 0:
            divisors = [d for d in range(1, self.model.hkv + 1) if self.model.hkv % d == 0]
            raise ValueError(
                f"tp={self.tp} does not divide {self.model.name}'s KV-head "
                f"count ({self.model.hkv}); tensor parallelism shards whole "
                f"GQA head groups, so pick tp in {divisors}"
            )
        if self.tp > 1 and self.n_gpus != self.tp:
            raise ValueError(
                f"tp={self.tp} spans the engine's GPUs, so n_gpus must equal "
                f"tp (got n_gpus={self.n_gpus}); data parallelism is layered "
                "on top via cluster replicas, not n_gpus"
            )
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens <= 0:
            raise ValueError("prefill_chunk_tokens must be positive (or None)")
        if self.attention is None and self.backend is None:
            raise ValueError("provide an attention system or an AttentionBackend")
        if self.attention is not None and self.backend is not None:
            raise ValueError(
                "provide either an attention system or an AttentionBackend, "
                "not both: the backend would silently win the step pricing"
            )
        if self.execute:
            if self.backend is None or not self.backend.executes_tokens:
                raise ValueError(
                    "execute=True needs a token-executing AttentionBackend "
                    "(e.g. PagedBitBackend); the analytical backend only "
                    "prices steps"
                )
            from repro.attn.paged import PagedBitBackend

            if not isinstance(self.backend, PagedBitBackend):
                raise ValueError(
                    "execute=True shares the scheduler's page table with the "
                    "numerics, which only the paged-bit backend supports"
                )
            if self.n_pages is None and not self.tiered:
                raise ValueError(
                    "execute=True needs an explicit n_pages: the runner "
                    "allocates real per-layer pools for every page, so a "
                    "device-memory-derived pool would be enormous"
                )
            if self.tp > 1:
                if self.preemption == "swap":
                    raise ValueError(
                        "tp > 1 with execute=True does not support "
                        'preemption="swap" yet: the swap path stashes one '
                        "store's residual slot, which a sharded store "
                        "splits across ranks; use recompute preemption "
                        "(analytical tp+swap pricing is fine)"
                    )
                # Duck-typed (the cluster package imports this module, so
                # importing ShardedPagedBackend here would cycle): any
                # backend advertising a matching ``tp`` degree shards the
                # head space the way the runner expects.
                if getattr(self.backend, "tp", 1) != self.tp:
                    raise ValueError(
                        f"tp={self.tp} with execute=True needs a "
                        "ShardedPagedBackend of the same degree (e.g. "
                        f"ShardedPagedBackend(..., tp={self.tp})); got "
                        f"{type(self.backend).__name__} with "
                        f"tp={getattr(self.backend, 'tp', 1)}"
                    )

    def resolve_backend(self) -> AttentionBackend:
        """The backend the engine schedules with (wrapping ``attention``)."""
        if self.backend is not None:
            return self.backend
        return AnalyticalBackend(self.attention)


class ContinuousBatchingEngine:
    """Run one request trace through one (cache format, attention) stack."""

    def __init__(self, config: EngineConfig, requests: Sequence[Request]):
        self.config = config
        n_pages = config.n_pages
        if config.tiered:
            n_pages = config.device_pages + config.host_pages + config.disk_pages
        elif n_pages is None:
            n_pages = page_pool_size(
                config.model,
                config.arch,
                config.fmt,
                page_size=config.page_size,
                n_gpus=config.n_gpus,
                reserved_seqs=config.max_batch,
            )
        if n_pages <= 0:
            raise ServingOOMError(
                f"{config.model.name} leaves no page budget for {config.fmt.name} "
                f"on {config.arch.name} x{config.n_gpus}"
            )
        self.n_pages = n_pages
        self.allocator = PageAllocator(n_pages)
        self.table = PageTable(self.allocator, page_size=config.page_size)
        # Each engine builds its own plan from the spec: an analytical and
        # an executed run of the same config issue identical transfer
        # sequences, so their plans draw identical fault outcomes.
        self.fault_plan: Optional[FaultPlan] = (
            FaultPlan(config.faults) if config.faults is not None else None
        )
        self.tiers: Optional[TieredPageStore] = None
        if config.tiered:
            self.tiers = TieredPageStore(
                self.allocator,
                config.device_pages,
                config.host_pages,
                config.disk_pages,
                page_nbytes=page_bytes(config.model, config.fmt, config.page_size),
                model=config.tier_model,
                faults=self.fault_plan,
            )
        self.auditor: Optional[InvariantAuditor] = (
            InvariantAuditor(self.allocator, table=self.table, tiers=self.tiers)
            if config.audit_every is not None
            else None
        )
        #: Pages the decode working set must fit at once (whole pool when
        #: untiered).
        self.device_pages = config.device_pages if config.tiered else n_pages
        self.prefix_cache: Optional[PrefixCache] = (
            PrefixCache(self.allocator) if config.prefix_cache else None
        )
        self.backend = config.resolve_backend()
        self._runner = None
        if config.execute:
            from repro.attn.runner import ModelRunner

            # The runner's per-layer pools are indexed by this table's page
            # ids: admission, chunked prefill and preemption manipulate the
            # same pages the numerics read.
            self._runner = ModelRunner(
                config.model,
                self.backend,
                self.table,
                n_slots=config.max_batch,
                seed=config.execute_seed,
                tiers=self.tiers,
            )
        self.lifecycles: List[RequestLifecycle] = [
            self._make_lifecycle(r)
            for r in sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        ]
        #: Not-yet-arrived requests, sorted by arrival time; drained into
        #: the wait queue as the clock passes them.
        self._pending: Deque[RequestLifecycle] = deque(self.lifecycles)
        self._queue: Deque[RequestLifecycle] = deque()
        self._running: List[RequestLifecycle] = []
        #: Swap-preempted sequences: pages still mapped (demoted off the
        #: device tier), resumed FCFS when the device working set fits.
        self._swapped: Deque[RequestLifecycle] = deque()
        self._swap_outs = 0
        self._swap_ins = 0
        self._stall_s = 0.0
        self._overlapped_s = 0.0
        self._clock = 0.0
        self._steps = 0
        self._prefill_steps = 0
        self._decode_steps = 0
        self._mixed_steps = 0
        self._preemptions = 0
        self._total_generated = 0
        self._peak_resident = 0
        self._tbt_samples: List[float] = []
        self._prefix_probe_tokens = 0
        self._prefix_hit_tokens = 0
        self._prefix_reclaimed_pages = 0
        self._shared_pages_peak = 0
        self._healed_pages = 0
        self._healed_requests = 0
        self._slow_steps = 0
        self._slow_step_stall_s = 0.0

    # ------------------------------------------------------------- scheduling

    def _make_lifecycle(self, request: Request) -> RequestLifecycle:
        """Wrap a request, stamping its absolute deadline from the policy."""
        lc = RequestLifecycle(request)
        policy = self.config.deadline_policy
        if policy is not None:
            rel = request.deadline_s if request.deadline_s is not None else policy.default_deadline_s
            if rel is not None:
                lc.deadline_abs = request.arrival_s + rel
        return lc

    # ----------------------------------------------------------- router surface

    @property
    def clock_s(self) -> float:
        """Current simulation time."""
        return self._clock

    @property
    def load_requests(self) -> int:
        """Requests the engine is responsible for but has not finished:
        queued, resident, swapped out, and submitted-but-not-yet-arrived.
        The router's ``least_loaded`` policy reads this as queue depth."""
        return len(self._queue) + len(self._running) + len(self._swapped) + len(self._pending)

    @property
    def resident_pages(self) -> int:
        """Physical pages currently held by resident/swapped sequences."""
        return self.allocator.used_pages

    @property
    def tbt_samples(self) -> List[float]:
        """Per-token inter-arrival samples (for merged cluster percentiles)."""
        return list(self._tbt_samples)

    def submit(self, request: Request) -> RequestLifecycle:
        """Hand the engine one more request (router dispatch path).

        Requests must be submitted in arrival order — the pending queue is
        a sorted deque, exactly like a trace passed to the constructor.
        """
        if self._pending and request.arrival_s < self._pending[-1].request.arrival_s:
            raise ValueError(
                f"requests must be submitted in arrival order: "
                f"{request.arrival_s} arrives before the pending tail "
                f"{self._pending[-1].request.arrival_s}"
            )
        lc = self._make_lifecycle(request)
        self.lifecycles.append(lc)
        self._pending.append(lc)
        return lc

    def _pages_needed(self, tokens: int) -> int:
        return -(-tokens // self.config.page_size)

    def _reject_impossible(self, head: RequestLifecycle) -> bool:
        """Reject a request that could never finish with the pool to itself;
        admitting it would only preempt-thrash.  Under swap preemption the
        binding constraint is the *device* tier: a sequence's own decode
        working set (all its pages) must be device-resident at once."""
        if self._pages_needed(head.request.total_len) > min(self.n_pages, self.device_pages):
            head.rejected = True
            self._queue.popleft()
            return True
        return False

    def _probe_prefix(self, head: RequestLifecycle) -> List[int]:
        """Longest-prefix cache match for an admission, hit pages in order.

        Hits are capped one block short of the context so at least one
        token is always prefilled — the decode loop needs the last context
        token's hidden state, so a fully cached prompt would have nothing
        to seed generation from.  Pure: no counters move until the
        admission actually happens (the caller may still balk at the page
        gate and retry the probe next step).
        """
        if self.prefix_cache is None:
            return []
        max_blocks = (head.context_len - 1) // self.config.page_size
        keys = prefix_block_keys(head.request, max_blocks, self.config.page_size)
        return self.prefix_cache.match(keys)

    def _fresh_pages_available(self, need: int, hit_pages: List[int]) -> bool:
        """Can ``need`` pages be mapped given ``hit_pages`` arrive shared?

        Matched pages that currently sit in the allocator's cached pool
        count toward ``free_pages`` but will be resurrected, not
        reallocated — so they are subtracted from the reclaimable supply
        before the fresh remainder is checked.
        """
        if not self.config.prefix_share:
            return need <= self.allocator.free_pages
        resurrected = sum(1 for p in hit_pages if self.allocator.refcount(p) == 0)
        return need - len(hit_pages) <= self.allocator.free_pages - resurrected

    def _map_admission(self, head: RequestLifecycle, initial: int, hit_pages: List[int]) -> None:
        """Register the sequence, account the hit, bind the runner.

        In sharing mode the hit pages are mapped into the new sequence's
        block table (refcount acquire); in the copy diagnostic mode the
        sequence draws private pages and the runner clones the packed
        words, so the numerics are identical while nothing is shared.
        """
        share = self.config.prefix_share
        head.seq_id = self.table.add_sequence(initial, shared_pages=hit_pages if share else None)
        head.cached_tokens = len(hit_pages) * self.config.page_size
        head.registered_blocks = 0
        self._prefix_probe_tokens += head.context_len if self.prefix_cache else 0
        self._prefix_hit_tokens += head.cached_tokens
        self._prefix_reclaimed_pages += len(hit_pages)
        if head.admitted_s is None:
            head.admitted_s = self._clock
        if self._runner is not None:
            self._runner.on_admit(head, copy_from=None if share or not hit_pages else hit_pages)

    def _register_prefix(self, lc: RequestLifecycle) -> None:
        """Register newly prefilled page-aligned blocks with the cache.

        Runs after every prefill advance; only blocks fully written by
        prefill are registered (decode-produced blocks are not, their
        content depends on residency history).  First writer wins in the
        cache, so re-registering a hit block is a no-op.
        """
        if self.prefix_cache is None or lc.seq_id is None:
            return
        ps = self.config.page_size
        limit = min(lc.prefilled, lc.prefill_target) // ps
        if limit <= lc.registered_blocks:
            return
        keys = prefix_block_keys(lc.request, limit, ps)
        pages = self.table.sequences[lc.seq_id].pages
        for i in range(lc.registered_blocks, limit):
            self.prefix_cache.insert(keys[i], pages[i])
        lc.registered_blocks = limit

    def _admit(self) -> None:
        """FCFS admission: prefill queued requests while pages + slots last.

        With the prefix cache on, the head's context is probed block by
        block first: hit pages are mapped instead of allocated and their
        prefill compute is skipped — the prefill step is charged for the
        uncached suffix only.
        """
        cfg = self.config
        while self._queue and len(self._running) < cfg.max_batch:
            head = self._queue[0]
            if self._reject_impossible(head):
                continue
            if self._shed_head(head):
                continue
            need = self._pages_needed(head.context_len)
            hit_pages = self._probe_prefix(head)
            if not self._fresh_pages_available(need, hit_pages):
                break
            self._queue.popleft()
            self._map_admission(head, head.context_len, hit_pages)
            head.prefilled = head.prefill_target = head.context_len
            suffix = head.context_len - head.cached_tokens
            prefill_s = (
                self.backend.prefill_time_ms(cfg.model, cfg.arch, suffix, cfg.n_gpus) * 1e-3
            )
            promote_s = 0.0
            if self.tiers is not None and head.generated:
                # A fresh prompt's prefill only *writes* pages (the chunk
                # attends to itself, the tail lives in residual slots),
                # but a replay admission — recompute preemption or a heal
                # — re-decodes its consumed tokens and those decodes read
                # the context's *full* pages.  Promote exactly that read
                # set up front.  This is a *schedule-level* decision: the
                # analytical run issues the same transfers, which keeps
                # an executed chaos run's fault draws in lock-step even
                # when the replay re-admits onto host-tier frames — and
                # fault_in is a strict no-op when the set is already
                # resident.  The promotion DMA rides under the prefill
                # pass itself: only its overhang surfaces, and the
                # absorbed part must not be charged again by the step's
                # closing overlap math.  (Retry stalls from a fault plan
                # stay in the fault bucket — a failed DMA always blocks.)
                read_set = self.table.sequences[head.seq_id].pages[
                    : head.context_len // cfg.page_size
                ]
                promote_s = self.tiers.fault_in(read_set, prefetch=True) * 1e-3
                self.tiers.absorb_prefetch(promote_s * 1e3)
                self._overlapped_s += min(promote_s, prefill_s)
            self._clock += max(prefill_s, promote_s)
            self._prefill_steps += 1
            self._running.append(head)
            if self._runner is not None:
                self._runner.prefill(head, suffix)
            self._register_prefix(head)
        self._peak_resident = max(self._peak_resident, len(self._running))

    def _admit_chunked(self) -> None:
        """Chunked admission: commit to a context, reserve pages per chunk.

        Physical pages arrive lazily (one chunk at a time), but admission
        still gates on the same budget whole-prompt admission does: the
        contexts the running set has *committed* to plus the head's full
        context must fit the pool.  Without that gate every arrival would
        join the batch and page pressure would surface as preempt-thrash
        instead of queueing — and the per-format peak-resident numbers
        (the paper's "lower bits, more residents" chain) would be
        meaningless.  Admission itself charges no time; the prefill cost
        lands in the mixed steps that actually move tokens.
        """
        cfg = self.config
        committed = sum(self._pages_needed(lc.context_len) for lc in self._running)
        while self._queue and len(self._running) < cfg.max_batch:
            head = self._queue[0]
            if self._reject_impossible(head):
                continue
            if self._shed_head(head):
                continue
            need = self._pages_needed(head.context_len)
            hit_pages = self._probe_prefix(head)
            shared = len(hit_pages) if cfg.prefix_share else 0
            if committed + need - shared > self.n_pages:
                break
            self._queue.popleft()
            self._map_admission(head, len(hit_pages) * cfg.page_size, hit_pages)
            head.prefilled = head.cached_tokens
            head.prefill_target = head.context_len
            self._running.append(head)
            committed += need - shared
            self._register_prefix(head)
        self._peak_resident = max(self._peak_resident, len(self._running))

    def _preempt(self, victim: RequestLifecycle) -> None:
        """Release a sequence's pages and requeue it for recompute.

        Works mid-prefill too: the page table holds exactly the pages of
        the chunks written so far (chunk extension is all-or-nothing), so
        releasing the sequence frees precisely that reservation.
        """
        assert victim.seq_id is not None
        if self._runner is not None:
            self._runner.on_preempt(victim)
        self.table.release_sequence(victim.seq_id)
        victim.seq_id = None
        victim.prefilled = 0
        victim.prefill_target = 0
        victim.cached_tokens = 0
        victim.registered_blocks = 0
        victim.preemptions += 1
        self._preemptions += 1
        self._running.remove(victim)
        # Requeueing at the front cannot livelock: admission rejects any
        # request whose total context exceeds the pool, so a sequence that
        # has the pool to itself always has room to grow and the earliest
        # admitted sequence always completes.
        self._queue.appendleft(victim)

    # -------------------------------------------------- faults and deadlines

    def _abort(self, lc: RequestLifecycle, *, shed=False, timed_out=False, failed=False) -> None:
        """Remove a request from the system without finishing it.

        Releases whatever it still holds (pages, runner program, queue or
        resident slot) and stamps the terminal state.
        """
        if self._runner is not None:
            self._runner.on_abort(lc)
        if lc.seq_id is not None:
            self.table.release_sequence(lc.seq_id)
            lc.seq_id = None
        lc.prefilled = 0
        lc.prefill_target = 0
        lc.cached_tokens = 0
        lc.registered_blocks = 0
        lc.shed, lc.timed_out, lc.failed = shed, timed_out, failed
        if lc in self._running:
            self._running.remove(lc)
        if lc in self._swapped:
            self._swapped.remove(lc)
        try:
            self._queue.remove(lc)
        except ValueError:
            pass

    def _estimate_service_s(self, lc: RequestLifecycle) -> float:
        """Optimistic completion estimate for deadline-aware admission:
        the head's own prefill plus its remaining decodes priced at the
        batch it would join.  Optimistic (no queueing ahead of it, no
        faults) so shedding never drops a request that had a chance."""
        cfg = self.config
        prefill_ms = self.backend.prefill_time_ms(cfg.model, cfg.arch, lc.context_len, cfg.n_gpus)
        batch = len(self._running) + 1
        step_ms = self.backend.decode_step_ms(
            cfg.model, cfg.arch, batch, lc.request.total_len, cfg.n_gpus, tp=cfg.tp
        )
        remaining = lc.request.output_len - lc.generated
        return (prefill_ms + step_ms * remaining) * 1e-3

    def _shed_head(self, head: RequestLifecycle) -> bool:
        """Deadline-aware admission gate for the FCFS head.

        An already-expired head is timed out; a never-served head whose
        optimistic completion estimate overshoots its deadline is shed —
        graceful degradation instead of burning pages on a lost cause.
        Requests that already generated tokens (preempted or healed) are
        never shed: their work is sunk, the timeout check arbitrates.
        """
        policy = self.config.deadline_policy
        if policy is None or head.deadline_abs is None:
            return False
        if self._clock >= head.deadline_abs:
            self._queue.popleft()
            self._abort(head, timed_out=True)
            return True
        if not policy.shed_on_admission or head.generated or head.preemptions or head.heals:
            return False
        estimate = self._estimate_service_s(head) * policy.admission_slack
        if self._clock + estimate > head.deadline_abs:
            self._queue.popleft()
            self._abort(head, shed=True)
            return True
        return False

    def _enforce_deadlines(self) -> None:
        """Time out every request whose deadline the step just crossed.

        Runs after token emission, so a request finishing exactly on the
        step that crossed its deadline counts as FINISHED (though not as
        having met the deadline unless it did)."""
        if self.config.deadline_policy is None:
            return
        expired = [
            lc
            for lc in list(self._running) + list(self._swapped) + list(self._queue)
            if lc.deadline_abs is not None and self._clock >= lc.deadline_abs
        ]
        for lc in expired:
            self._abort(lc, timed_out=True)

    def _heal(self, lc: RequestLifecycle) -> None:
        """Recompute-style replay of a sequence whose page content died.

        Exactly a preemption (release pages, requeue front, keep the
        generated count and the runner's input program) except it can pull
        the victim out of the swapped set too, and it draws on a separate
        heal budget — a request the plan keeps killing eventually FAILs
        instead of looping forever.
        """
        assert lc.seq_id is not None
        if self._runner is not None:
            self._runner.on_preempt(lc)
        self.table.release_sequence(lc.seq_id)
        lc.seq_id = None
        lc.prefilled = 0
        lc.prefill_target = 0
        lc.cached_tokens = 0
        lc.registered_blocks = 0
        lc.heals += 1
        self._healed_requests += 1
        if lc in self._running:
            self._running.remove(lc)
        else:
            self._swapped.remove(lc)
        if lc.heals > self.config.max_heals:
            self._abort(lc, failed=True)
        else:
            self._queue.appendleft(lc)

    def _heal_bad_pages(self) -> None:
        """Drain the tier store's lost/corrupt ledger and recover.

        Every sequence mapping a bad page is healed (its release turns the
        page's content into garbage, so the damage cannot be read), and
        any prefix-cache registration of the page is forgotten so no
        future admission maps the damaged content.  Runs at every point
        the store may have produced bad pages, always *before* numerics.
        """
        if self.tiers is None or not self.tiers.has_bad_pages:
            return
        for page in self.tiers.drain_bad_pages():
            self._healed_pages += 1
            if self.prefix_cache is not None:
                self.prefix_cache.forget_page(page)
            victims = [
                lc
                for lc in list(self._running) + list(self._swapped)
                if lc.seq_id is not None and page in self.table.sequences[lc.seq_id].pages
            ]
            for lc in victims:
                self._heal(lc)

    # --------------------------------------------------------- swap preemption

    def _decode_working_pages(self) -> int:
        """Device pages the next decode step needs resident at once: every
        decode-ready sequence's pages after its one-token grow."""
        return sum(
            self._pages_needed(lc.context_len + 1)
            for lc in self._running
            if lc.seq_id is not None and lc.prefill_done
        )

    def _swap_out(self, victim: RequestLifecycle) -> None:
        """Demote a decode-ready sequence's pages off the device tier.

        Unlike :meth:`_preempt` nothing is released or requeued: the page
        table keeps the sequence mapped (the allocator still counts its
        pages used), the tier store moves the physical content to host
        frames (priced d2h), and the runner stashes only the FP16 residual
        rows that live outside the pages.
        """
        assert self.tiers is not None and victim.seq_id is not None
        if self._runner is not None:
            self._runner.on_swap_out(victim)
        self.tiers.demote(self.table.sequences[victim.seq_id].pages)
        self._running.remove(victim)
        self._swapped.append(victim)
        self._swap_outs += 1

    def _resume_swapped(self) -> None:
        """Promote swapped sequences back, FCFS, while their working set
        fits the device tier next to the resident decoders'."""
        assert self.tiers is not None
        while self._swapped and len(self._running) < self.config.max_batch:
            cand = self._swapped[0]
            need = self._pages_needed(cand.context_len + 1)
            if self._decode_working_pages() + need > self.device_pages:
                break
            self._swapped.popleft()
            if self._runner is not None:
                self._runner.on_swap_in(cand)
            # Promotion rides ahead of the step's compute (overlappable);
            # anything the model still misses faults in the measured path.
            self.tiers.ensure_resident(self.table.sequences[cand.seq_id].pages, prefetch=True)
            self._running.append(cand)
            self._swap_ins += 1

    def _swap_out_overflow(self) -> None:
        """Shrink the decode working set to device capacity by swapping out
        the most recently admitted decode-ready sequences (mirroring the
        recompute victim order).  At least one decoder always stays — a
        single sequence is guaranteed to fit by admission-time rejection."""
        assert self.tiers is not None
        while self._decode_working_pages() > self.device_pages:
            ready = [lc for lc in self._running if lc.seq_id is not None and lc.prefill_done]
            if len(ready) <= 1:
                break
            self._swap_out(ready[-1])

    def _charge_step(self, step_s: float) -> float:
        """Price a step's tier traffic on top of its compute time.

        Synchronous faults stall in full; prefetched/demoted transfers
        overlap the compute and only their overhang surfaces.  A fault
        plan may dilate the whole step (clock skew / noisy neighbor);
        the dilation is applied to the compute before the overlap math,
        since a slow step hides *more* prefetch, not less.
        """
        if self.fault_plan is not None:
            factor = self.fault_plan.step_factor()
            if factor != 1.0:
                self._slow_steps += 1
                self._slow_step_stall_s += step_s * (factor - 1.0)
                step_s *= factor
        if self.tiers is None:
            return step_s
        stall_s = self.tiers.step_fault_ms * 1e-3
        prefetch_s = self.tiers.step_prefetch_ms * 1e-3
        self._stall_s += stall_s
        self._overlapped_s += min(prefetch_s, step_s)
        return step_s + stall_s + max(0.0, prefetch_s - step_s)

    def _grow(self, lc: RequestLifecycle) -> bool:
        """Make room for one more token; False if ``lc`` itself got evicted."""
        return self._extend(lc, 1)

    def _extend(self, lc: RequestLifecycle, n_tokens: int) -> bool:
        """Grow ``lc`` by a chunk (or one decode token), evicting on demand.

        Chunk extension is all-or-nothing in the page table, so each retry
        either fully reserves the chunk or preempts the most recently
        admitted sequence and tries again; False means ``lc`` itself was
        the youngest resident and got evicted.
        """
        assert lc.seq_id is not None
        while True:
            try:
                self.table.extend_sequence(lc.seq_id, n_tokens)
                return True
            except OutOfPagesError:
                victim = self._running[-1]  # most recently admitted
                evicted_self = victim is lc
                self._preempt(victim)
                if evicted_self:
                    return False

    def _advance_prefills(self) -> List[Tuple[int, int]]:
        """Spend this step's token budget on in-flight prefills (FCFS).

        Returns the ``(context_len, chunk_tokens)`` descriptors of the
        chunks written, which is exactly what the mixed-step latency model
        prices.  A chunk whose sequence is later evicted in the same step
        stays in the list: the work was done before the eviction, and
        recompute discipline pays for wasted work.
        """
        budget = self.config.prefill_chunk_tokens
        assert budget is not None
        chunks: List[Tuple[int, int]] = []
        for lc in list(self._running):
            if budget <= 0:
                break
            if lc.seq_id is None or lc.prefill_done:
                continue
            take = min(budget, lc.prefill_target - lc.prefilled)
            if not self._extend(lc, take):
                continue
            chunks.append((lc.prefilled, take))
            lc.prefilled += take
            budget -= take
            if self.tiers is not None:
                # Same schedule-level promotion as whole-prompt admission:
                # the chunk's attention reads the full pages written so
                # far.  fault_in is a strict no-op when that set is
                # resident, so a fault-free run's schedule is untouched.
                self.tiers.fault_in(
                    self.table.sequences[lc.seq_id].pages[
                        : lc.prefilled // self.config.page_size
                    ],
                    prefetch=True,
                )
            if self._runner is not None:
                self._runner.prefill(lc, take)
            self._register_prefix(lc)
        return chunks

    def _emit_tokens(self, decoders: Sequence[RequestLifecycle]) -> None:
        """Credit one generated token to each decoder at the current clock."""
        for lc in decoders:
            if lc.seq_id is None:
                continue
            lc.generated += 1
            self._total_generated += 1
            if lc.first_token_s is None:
                lc.first_token_s = self._clock
            else:
                self._tbt_samples.append(self._clock - lc.last_token_s)
            lc.last_token_s = self._clock
            if lc.generated >= lc.request.output_len:
                if self._runner is not None:
                    self._runner.on_finish(lc)
                self.table.release_sequence(lc.seq_id)
                lc.seq_id = None
                lc.finish_s = self._clock
                self._running.remove(lc)

    def _decode_group_shapes(self, lcs) -> List[Tuple[int, int]]:
        """Shape groups ``(group_batch, group_seq_len)`` of one decode step.

        Sequences at equal context length share one batched kernel launch
        (the runner groups by position so RoPE tables match; the paged
        backend then sees a uniform-shape batch per group) — the step
        price models exactly those launches instead of ``batch``
        independent batch-1 launches, and each group pays its *own*
        context length rather than everyone-at-max.
        """
        groups: Dict[int, int] = {}
        for lc in lcs:
            length = lc.context_len + 1
            groups[length] = groups.get(length, 0) + 1
        return [(count, length) for length, count in groups.items()]

    def _decode(self) -> None:
        """One decode step: every resident sequence emits one token."""
        cfg = self.config
        for lc in list(self._running):
            if lc.seq_id is None:
                continue  # preempted earlier in this loop
            self._grow(lc)
        if not self._running:
            return
        if self.tiers is not None:
            # Residency walk in decode order: the first sequence's cold
            # pages fault (nothing to hide behind), every later sequence's
            # pages are prefetched under the preceding tile walks.
            live = [lc for lc in self._running if lc.seq_id is not None]
            for i, lc in enumerate(live):
                self.tiers.ensure_resident(self.table.sequences[lc.seq_id].pages, prefetch=i > 0)
            # Pages the walk lost or promoted corrupt are healed before
            # the numerics read anything: the victims leave the batch.
            self._heal_bad_pages()
        if not self._running:
            # Every resident sequence healed away.  The retry stalls and
            # wasted transfers still advance the clock.
            self._clock += self._charge_step(0.0)
            return
        if self._runner is not None:
            self._runner.decode_batch([lc for lc in self._running if lc.seq_id is not None])
        batch = len(self._running)
        seq_len = max(lc.context_len + 1 for lc in self._running)
        step_s = (
            self.backend.decode_step_ms(
                cfg.model,
                cfg.arch,
                batch,
                seq_len,
                cfg.n_gpus,
                decode_groups=self._decode_group_shapes(self._running),
                tp=cfg.tp,
            )
            * 1e-3
        )
        self._clock += self._charge_step(step_s)
        self._decode_steps += 1
        self._peak_resident = max(self._peak_resident, batch)
        self._emit_tokens(list(self._running))

    def _mixed_step(self) -> None:
        """One chunked-prefill step: prefill chunks + decode tokens together.

        Sequences whose prefill completes this step start decoding on the
        *next* step, mirroring whole-prompt admission where the first
        output token comes from the first decode step after prefill.
        """
        cfg = self.config
        decode_ready = [lc for lc in self._running if lc.prefill_done]
        chunks = self._advance_prefills()
        for lc in decode_ready:
            if lc.seq_id is None:
                continue  # preempted by a prefill extension or earlier grow
            self._grow(lc)
        decoders = [lc for lc in decode_ready if lc.seq_id is not None]
        if not chunks and not decoders:
            return
        if self.tiers is not None:
            for i, lc in enumerate(decoders):
                self.tiers.ensure_resident(self.table.sequences[lc.seq_id].pages, prefetch=i > 0)
            self._heal_bad_pages()
            decoders = [lc for lc in decoders if lc.seq_id is not None]
        if not chunks and not decoders:
            self._clock += self._charge_step(0.0)
            return
        if self._runner is not None:
            self._runner.decode_batch(decoders)
        batch = len(decoders)
        seq_len = max((lc.context_len + 1 for lc in decoders), default=0)
        step_s = (
            self.backend.mixed_step_ms(
                cfg.model,
                cfg.arch,
                batch,
                seq_len,
                chunks,
                cfg.n_gpus,
                decode_groups=self._decode_group_shapes(decoders),
                tp=cfg.tp,
            )
            * 1e-3
        )
        self._clock += self._charge_step(step_s)
        if chunks:
            self._prefill_steps += 1
        if decoders:
            self._decode_steps += 1
        if chunks and decoders:
            self._mixed_steps += 1
        self._peak_resident = max(self._peak_resident, len(self._running))
        self._emit_tokens(decoders)

    def _assert_conservation(self) -> None:
        """Pages held by resident sequences must equal the allocator's books.

        Under prefix sharing a physical page may appear in several block
        tables, so the check is refcount-aware: every page's refcount must
        equal the number of resident mappings, the distinct resident pages
        must equal the allocator's used count, and used + reclaimable
        (free list + cached LRU pool) must cover the pool.  The same walk
        records the instantaneous sharing saving (sum of refcount-1) whose
        peak the report surfaces as effective extra capacity.
        """
        mapped: dict = {}
        for lc in list(self._running) + list(self._swapped):
            if lc.seq_id is None:
                continue
            for page in self.table.sequences[lc.seq_id].pages:
                mapped[page] = mapped.get(page, 0) + 1
        used = self.allocator.used_pages
        free = self.allocator.free_pages
        bad_refs = [
            (page, count, self.allocator.refcount(page))
            for page, count in mapped.items()
            if self.allocator.refcount(page) != count
        ]
        if len(mapped) != used or used + free != self.n_pages or bad_refs:
            raise AssertionError(
                f"page conservation violated: residents map {len(mapped)} distinct "
                f"pages, allocator says {used} used + {free} reclaimable of "
                f"{self.n_pages}; refcount mismatches: {bad_refs[:5]}"
            )
        saving = sum(count - 1 for count in mapped.values())
        self._shared_pages_peak = max(self._shared_pages_peak, saving)

    # -------------------------------------------------------------------- run

    def _drain_arrivals(self) -> None:
        """Move every pending request whose arrival has passed to the queue."""
        while self._pending and self._pending[0].request.arrival_s <= self._clock:
            self._queue.append(self._pending.popleft())

    def _tick(self) -> bool:
        """One scheduler iteration; False when the engine cannot advance
        (trace drained or the step cap hit).

        Exactly one iteration of the classic ``run()`` loop: drain
        arrivals, jump the clock over idle gaps, then one admission phase
        plus one decode/mixed step with the tier, deadline and audit
        machinery around it.
        """
        self._drain_arrivals()
        if not self._queue and not self._running and not self._swapped:
            if not self._pending:
                return False
            self._clock = self._pending[0].request.arrival_s
            self._drain_arrivals()
        if self.config.max_steps is not None and self._steps >= self.config.max_steps:
            return False
        self._steps += 1
        if self.tiers is not None:
            self.tiers.start_step()
            self._resume_swapped()
            self._heal_bad_pages()
        if self.config.prefill_chunk_tokens is not None:
            self._admit_chunked()
            if self.tiers is not None:
                self._swap_out_overflow()
                self._heal_bad_pages()
            self._mixed_step()
        else:
            self._admit()
            if self.tiers is not None:
                self._swap_out_overflow()
                self._heal_bad_pages()
            self._decode()
        self._enforce_deadlines()
        self._assert_conservation()
        if self.auditor is not None and self._steps % self.config.audit_every == 0:
            self.auditor.audit(self._steps)
        return True

    def advance_until(self, t_s: float) -> None:
        """Step the engine until its clock reaches ``t_s`` or it goes idle.

        The router's lock-step driver: replicas advance to each arrival
        before the dispatch decision, so ``least_loaded`` reads loads as
        of the arrival instant.  Steps are atomic — the clock may overshoot
        ``t_s`` by a fraction of a step, just as it does in ``run()``.
        An idle engine does not jump its clock past ``t_s``: it waits for
        whatever is submitted next.
        """
        while self._clock < t_s:
            if not self._queue and not self._running and not self._swapped:
                if not self._pending or self._pending[0].request.arrival_s > t_s:
                    return
            if not self._tick():
                return

    def finish(self) -> ServingReport:
        """Final audit + report (after ``advance_until`` drove the trace)."""
        if self.auditor is not None:
            self.auditor.audit()
        return self._report()

    def run(self) -> ServingReport:
        """Drive the trace to completion (or the step cap) and report."""
        while self._tick():
            pass
        return self.finish()

    def _report(self) -> ServingReport:
        finished = [lc for lc in self.lifecycles if lc.finished]
        latencies = [lc.finish_s - lc.request.arrival_s for lc in finished]
        ttfts = [
            lc.first_token_s - lc.request.arrival_s
            for lc in self.lifecycles
            if lc.first_token_s is not None
        ]
        return ServingReport.build(
            format_name=self.config.fmt.name,
            n_pages=self.n_pages,
            page_size=self.config.page_size,
            n_requests=len(self.lifecycles),
            rejected=sum(1 for lc in self.lifecycles if lc.rejected),
            preemptions=self._preemptions,
            prefill_steps=self._prefill_steps,
            decode_steps=self._decode_steps,
            sim_time_s=self._clock,
            total_generated_tokens=self._total_generated,
            peak_resident_batch=self._peak_resident,
            latencies_s=latencies,
            ttfts_s=ttfts,
            tbts_s=self._tbt_samples,
            mixed_steps=self._mixed_steps,
            prefill_chunk_tokens=self.config.prefill_chunk_tokens,
            executed_tokens=(self._runner.executed_tokens if self._runner is not None else None),
            prefix_cache_enabled=self.config.prefix_cache,
            prefix_hit_tokens=self._prefix_hit_tokens,
            prefix_probe_tokens=self._prefix_probe_tokens,
            prefix_reclaimed_pages=self._prefix_reclaimed_pages,
            prefix_evictions=self.allocator.evictions,
            shared_pages_peak=self._shared_pages_peak,
            preemption=self.config.preemption,
            device_pages=self.device_pages,
            host_pages=self.config.host_pages or 0,
            disk_pages=self.config.disk_pages,
            swap_outs=self._swap_outs,
            swap_ins=self._swap_ins,
            offload_h2d_bytes=self.tiers.h2d_bytes if self.tiers else 0,
            offload_d2h_bytes=self.tiers.d2h_bytes if self.tiers else 0,
            offload_disk_bytes=self.tiers.disk_bytes if self.tiers else 0,
            offload_faults=self.tiers.faults if self.tiers else 0,
            offload_stall_s=self._stall_s,
            offload_overlapped_s=self._overlapped_s,
            faults_enabled=self.fault_plan is not None,
            transfer_retries=self.tiers.transfer_retries if self.tiers else 0,
            retry_backoff_s=(self.tiers.retry_backoff_ms_total if self.tiers else 0.0) * 1e-3,
            checksum_failures=self.tiers.checksum_failures if self.tiers else 0,
            lost_pages=self.tiers.lost_pages if self.tiers else 0,
            healed_pages=self._healed_pages,
            healed_requests=self._healed_requests,
            slow_steps=self._slow_steps,
            slow_step_stall_s=self._slow_step_stall_s,
            shed=sum(1 for lc in self.lifecycles if lc.shed),
            timed_out=sum(1 for lc in self.lifecycles if lc.timed_out),
            failed=sum(1 for lc in self.lifecycles if lc.failed),
            deadline_met=sum(1 for lc in self.lifecycles if lc.met_deadline),
            goodput_tokens=sum(
                lc.request.output_len for lc in self.lifecycles if lc.met_deadline
            ),
            audits=self.auditor.audits if self.auditor is not None else 0,
        )


def compare_formats(
    model: ModelConfig,
    arch: ArchSpec,
    stacks: Sequence[Tuple[CacheFormat, AttentionSystem]],
    requests: Sequence[Request],
    page_size: int = 64,
    max_batch: int = 384,
    n_gpus: int = 1,
    max_steps: Optional[int] = None,
    prefill_chunk_tokens: Optional[int] = None,
    prefix_cache: bool = False,
) -> List[ServingReport]:
    """Run the same trace through several (format, attention) stacks.

    Every stack gets the page pool its format affords within the *same*
    device-memory budget — the lower-bit formats earn more pages, which is
    the whole serving argument of the paper.  ``prefill_chunk_tokens``
    switches every stack to chunked prefill so on/off comparisons stay
    apples-to-apples; ``prefix_cache`` likewise turns prefix caching on
    for every stack.
    """
    reports = []
    for fmt, attention in stacks:
        engine = ContinuousBatchingEngine(
            EngineConfig(
                model=model,
                arch=arch,
                fmt=fmt,
                attention=attention,
                page_size=page_size,
                max_batch=max_batch,
                n_gpus=n_gpus,
                max_steps=max_steps,
                prefill_chunk_tokens=prefill_chunk_tokens,
                prefix_cache=prefix_cache,
            ),
            requests,
        )
        reports.append(engine.run())
    return reports
