"""A small runnable numpy transformer decoder.

A functional substrate for end-to-end *numerics*: RMSNorm, RoPE, attention
through any :class:`~repro.attn.protocol.AttentionBackend` (paged or
contiguous low-bit caches, or the exact FP16 reference when no backend is
set), and a SwiGLU MLP.  Used by the integration tests, the
LongBench-proxy accuracy suite and the serving engine's real-execution
mode (:class:`~repro.attn.runner.ModelRunner`) to push real activations
through the real quantized-cache code paths — not to reproduce
trained-model quality, which per DESIGN.md is out of scope for weights we
cannot download.

Cache state lives in a :class:`CacheSession` (per-layer cache handles +
the position cursor), so one weight set can serve many concurrent
sequences: the serving runner holds one session per resident request and
advances them independently through :meth:`TinyTransformer.prefill_chunk`
and :meth:`TinyTransformer.decode_step`.  The no-argument methods keep
operating on a default session, preserving the original single-sequence
API.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attn.contiguous import ContiguousBitBackend
from repro.attn.protocol import AttentionBackend, KVCacheHandle
from repro.attn.reference import causal_mask, chunked_causal_attention
from repro.core.attention import BitDecoding

__all__ = [
    "CacheSession",
    "LayerWeights",
    "TinyTransformer",
    "apply_rope",
    "causal_mask",
    "rms_norm",
    "rope_angles",
    "swiglu",
]


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer norm (LLaMA-style, no mean subtraction)."""
    x = np.asarray(x, dtype=np.float32)
    scale = 1.0 / np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x * scale * weight


def rope_angles(
    head_dim: int, positions: np.ndarray, base: float = 10000.0
) -> Tuple[np.ndarray, np.ndarray]:
    """(cos, sin) tables for rotary position embedding."""
    if head_dim % 2 != 0:
        raise ValueError("head_dim must be even for RoPE")
    inv_freq = base ** (-np.arange(0, head_dim, 2, dtype=np.float32) / head_dim)
    angles = np.outer(np.asarray(positions, dtype=np.float32), inv_freq)
    return np.cos(angles), np.sin(angles)


#: Max memoized RoPE tables per model; a decode step plus its prefill
#: context needs two, the rest is slack for interleaved usage patterns.
_ROPE_CACHE_ENTRIES = 8


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate pairs of channels; ``x`` is ``(..., seq, head_dim)``."""
    x = np.asarray(x, dtype=np.float32)
    x1, x2 = x[..., 0::2], x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return out


def swiglu(x: np.ndarray, w_gate: np.ndarray, w_up: np.ndarray, w_down: np.ndarray) -> np.ndarray:
    """SwiGLU MLP: ``down(silu(x @ gate) * (x @ up))``."""
    gate = x @ w_gate
    gate = gate / (1.0 + np.exp(-gate))  # SiLU
    return (gate * (x @ w_up)) @ w_down


@dataclass
class LayerWeights:
    """Weights of one decoder layer."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray
    norm_attn: np.ndarray
    norm_mlp: np.ndarray


@dataclass
class CacheSession:
    """Per-sequence decode state: one cache handle per layer + the cursor.

    ``caches`` holds backend handles (or None per layer until prefill
    creates them); ``ref_k``/``ref_v`` hold the exact-attention reference
    context when no backend is set.  Sessions are cheap: all weights stay
    on the owning :class:`TinyTransformer`.
    """

    caches: List[Optional[KVCacheHandle]] = field(default_factory=list)
    ref_k: List[Optional[np.ndarray]] = field(default_factory=list)
    ref_v: List[Optional[np.ndarray]] = field(default_factory=list)
    positions: int = 0


@dataclass
class TinyTransformer:
    """A decoder-only transformer with a pluggable attention backend.

    ``backend=None`` (and ``engine=None``) runs exact FP32 attention (the
    accuracy reference); otherwise all attention flows through the
    backend's cache — prefill packing, residual appends and the
    Packing-Kernel numerics end to end.  ``engine`` is the legacy knob: a
    :class:`~repro.core.attention.BitDecoding` engine is wrapped into a
    :class:`~repro.attn.contiguous.ContiguousBitBackend`.
    """

    n_layers: int
    hq: int
    hkv: int
    head_dim: int
    hidden: int
    intermediate: int
    engine: Optional[BitDecoding] = None
    backend: Optional[AttentionBackend] = None
    seed: int = 0
    layers: List[LayerWeights] = field(init=False)
    _rope_cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = field(
        init=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.hq * self.head_dim != self.hidden:
            raise ValueError("hq * head_dim must equal hidden")
        if self.backend is None and self.engine is not None:
            self.backend = ContiguousBitBackend(self.engine)
        self._session = self.new_session()
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / math.sqrt(self.hidden)
        kv_dim = self.hkv * self.head_dim

        def w(rows, cols):
            return (rng.standard_normal((rows, cols)) * scale).astype(np.float32)

        self.layers = [
            LayerWeights(
                wq=w(self.hidden, self.hidden),
                wk=w(self.hidden, kv_dim),
                wv=w(self.hidden, kv_dim),
                wo=w(self.hidden, self.hidden),
                w_gate=w(self.hidden, self.intermediate),
                w_up=w(self.hidden, self.intermediate),
                w_down=w(self.intermediate, self.hidden),
                norm_attn=np.ones(self.hidden, dtype=np.float32),
                norm_mlp=np.ones(self.hidden, dtype=np.float32),
            )
            for _ in range(self.n_layers)
        ]

    # ------------------------------------------------------------------ plumbing

    @property
    def caches(self) -> List[Optional[KVCacheHandle]]:
        """The default session's per-layer cache handles."""
        return self._session.caches

    def new_session(self, handles: Optional[Sequence[KVCacheHandle]] = None) -> CacheSession:
        """A fresh decode session, optionally over pre-bound cache handles.

        The serving runner passes per-layer paged handles already adopted
        into the engine's page table; plain callers let prefill create
        handles through the backend.
        """
        if handles is not None and len(handles) != self.n_layers:
            raise ValueError(f"expected {self.n_layers} handles, got {len(handles)}")
        return CacheSession(caches=list(handles) if handles is not None else [])

    def release_session(self, session: CacheSession) -> None:
        """Free whatever the session's cache handles pin in the backend.

        For the paged backend this returns the sequences' pages and
        residual slots to the shared pool; contiguous handles have
        nothing pooled to free.  The session is reset to empty and can be
        prefilled again.
        """
        if self.backend is not None:
            for handle in session.caches:
                if handle is not None:
                    self.backend.release(handle)
        session.caches = []
        session.ref_k = []
        session.ref_v = []
        session.positions = 0

    def _rope(self, pos0: int, seq: int) -> Tuple[np.ndarray, np.ndarray]:
        """RoPE (cos, sin) tables for positions ``pos0 .. pos0 + seq``.

        Every layer at a given position uses identical tables, so they are
        memoized on ``(pos0, seq)`` — one trig evaluation per decode step
        (or prefill) instead of one per layer.  Decode positions strictly
        increase, so old per-step entries are never hit again; the cache
        evicts oldest-first past a small bound instead of growing by one
        dead entry per generated token.
        """
        key = (pos0, seq)
        tables = self._rope_cache.get(key)
        if tables is None:
            tables = rope_angles(self.head_dim, np.arange(pos0, pos0 + seq))
            while len(self._rope_cache) >= _ROPE_CACHE_ENTRIES:
                self._rope_cache.pop(next(iter(self._rope_cache)))
            self._rope_cache[key] = tables
        return tables

    def _project_kv(self, layer: LayerWeights, x: np.ndarray, pos0: int):
        """(k, v) heads for tokens ``x`` of shape (batch, seq, hidden)."""
        batch, seq, _ = x.shape
        k = (x @ layer.wk).reshape(batch, seq, self.hkv, self.head_dim)
        v = (x @ layer.wv).reshape(batch, seq, self.hkv, self.head_dim)
        cos, sin = self._rope(pos0, seq)
        k = apply_rope(k.transpose(0, 2, 1, 3), cos, sin)  # (b, hkv, seq, d)
        v = v.transpose(0, 2, 1, 3)
        return k, v

    def _project_q(self, layer: LayerWeights, normed: np.ndarray, pos0: int) -> np.ndarray:
        """RoPE'd queries ``(batch, seq, hq, d)`` for ``normed`` tokens."""
        batch, seq, _ = normed.shape
        q = (normed @ layer.wq).reshape(batch, seq, self.hq, self.head_dim)
        cos, sin = self._rope(pos0, seq)
        q = apply_rope(q.transpose(0, 2, 1, 3), cos, sin)  # (b, hq, seq, d)
        return q.transpose(0, 2, 1, 3)

    # ------------------------------------------------------------------ forward

    def prefill(self, x: np.ndarray, session: Optional[CacheSession] = None) -> np.ndarray:
        """Process a prompt ``(batch, seq, hidden)`` into a fresh context.

        Replacing the default session releases the previous one's backend
        resources first — repeated prefills on a paged backend recycle
        their pages instead of leaking the shared pool.
        """
        if session is None:
            self.release_session(self._session)
            session = self._session = self.new_session()
        if session.positions:
            raise ValueError(
                "prefill on a session that already holds context; use "
                "prefill_chunk to continue it"
            )
        return self.prefill_chunk(x, session)

    def prefill_chunk(self, x: np.ndarray, session: CacheSession) -> np.ndarray:
        """Advance a session by one prefill chunk ``(batch, n, hidden)``.

        Chunk tokens attend the session's cached context unmasked and
        each other causally — the Sarathi/vLLM chunked-prefill forward.
        With a backend, context beyond the FP16 residual is read back
        through the quantized cache (that *is* the numerics of chunked
        prefill over a low-bit cache); without one, the exact reference
        context is used.
        """
        x = np.asarray(x, dtype=np.float32)
        batch, n, _ = x.shape
        sess = session
        pos0 = sess.positions
        if not sess.caches:
            sess.caches = [None] * self.n_layers
        if not sess.ref_k:
            sess.ref_k = [None] * self.n_layers
            sess.ref_v = [None] * self.n_layers
        h = x
        for i, layer in enumerate(self.layers):
            normed = rms_norm(h, layer.norm_attn)
            k, v = self._project_kv(layer, normed, pos0)
            q = self._project_q(layer, normed, pos0)
            if self.backend is not None:
                if sess.caches[i] is None:
                    sess.caches[i] = self.backend.new_handle(batch, self.hkv, self.head_dim)
                attn = self.backend.prefill(q, (k, v), sess.caches[i])
            else:
                attn = chunked_causal_attention(q, sess.ref_k[i], sess.ref_v[i], k, v)
                sess.ref_k[i] = (
                    k if sess.ref_k[i] is None else np.concatenate([sess.ref_k[i], k], axis=2)
                )
                sess.ref_v[i] = (
                    v if sess.ref_v[i] is None else np.concatenate([sess.ref_v[i], v], axis=2)
                )
            attn = attn.reshape(batch, n, self.hidden) @ layer.wo
            h = h + attn
            h = h + swiglu(rms_norm(h, layer.norm_mlp), layer.w_gate, layer.w_up, layer.w_down)
        sess.positions = pos0 + n
        return h

    def decode_step(self, x: np.ndarray, session: Optional[CacheSession] = None) -> np.ndarray:
        """One decode step for ``x`` of shape (batch, hidden)."""
        sess = session if session is not None else self._session
        x = np.asarray(x, dtype=np.float32)
        batch = x.shape[0]
        pos = sess.positions
        h = x[:, None, :]  # (b, 1, hidden)
        for i, layer in enumerate(self.layers):
            normed = rms_norm(h, layer.norm_attn)
            k_new, v_new = self._project_kv(layer, normed, pos)
            q = self._project_q(layer, normed, pos)
            if self.backend is not None:
                handle = sess.caches[i]
                self.backend.append_kv((k_new[:, :, 0], v_new[:, :, 0]), handle)
                attn = self.backend.decode_step(q, handle)
            else:
                sess.ref_k[i] = np.concatenate([sess.ref_k[i], k_new], axis=2)
                sess.ref_v[i] = np.concatenate([sess.ref_v[i], v_new], axis=2)
                attn = self._exact_decode(q, sess.ref_k[i], sess.ref_v[i])
            attn = attn.reshape(batch, 1, self.hidden) @ layer.wo
            h = h + attn
            h = h + swiglu(rms_norm(h, layer.norm_mlp), layer.w_gate, layer.w_up, layer.w_down)
        sess.positions += 1
        return h[:, 0, :]

    def _exact_decode(self, q, k, v) -> np.ndarray:
        """Exact FP32 decode attention, one grouped-query einsum per batch.

        Same softmax as :func:`repro.core.softmax.reference_attention`,
        vectorized over every (batch, query-head) pair at once.
        """
        batch = q.shape[0]
        gq = self.hq // self.hkv
        qg = np.asarray(q[:, 0], dtype=np.float32).reshape(batch, self.hkv, gq, self.head_dim)
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        # math.sqrt, not np.sqrt: a float64 scalar would promote the whole
        # path (and the caller's hidden state) to float64 under NEP 50.
        scale = np.float32(1.0 / math.sqrt(self.head_dim))
        s = np.einsum("bhgd,bhkd->bhgk", qg, k, optimize=True) * scale
        s -= s.max(axis=-1, keepdims=True)
        p = np.exp(s)
        p /= p.sum(axis=-1, keepdims=True)
        out = np.einsum("bhgk,bhkd->bhgd", p, v, optimize=True)
        return out.reshape(batch, 1, self.hq, self.head_dim)
