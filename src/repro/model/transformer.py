"""A small runnable numpy transformer decoder.

A functional substrate for end-to-end *numerics*: RMSNorm, RoPE, attention
through any pluggable engine (the BitDecoding engine, or exact FP16
reference), and a SwiGLU MLP.  Used by the integration tests and the
LongBench-proxy accuracy suite to push real activations through the real
quantized-cache code paths — not to reproduce trained-model quality, which
per DESIGN.md is out of scope for weights we cannot download.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.attention import BitDecoding, BitKVCache


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer norm (LLaMA-style, no mean subtraction)."""
    x = np.asarray(x, dtype=np.float32)
    scale = 1.0 / np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x * scale * weight


def rope_angles(
    head_dim: int, positions: np.ndarray, base: float = 10000.0
) -> Tuple[np.ndarray, np.ndarray]:
    """(cos, sin) tables for rotary position embedding."""
    if head_dim % 2 != 0:
        raise ValueError("head_dim must be even for RoPE")
    inv_freq = base ** (-np.arange(0, head_dim, 2, dtype=np.float32) / head_dim)
    angles = np.outer(np.asarray(positions, dtype=np.float32), inv_freq)
    return np.cos(angles), np.sin(angles)


#: Max memoized RoPE tables per model; a decode step plus its prefill
#: context needs two, the rest is slack for interleaved usage patterns.
_ROPE_CACHE_ENTRIES = 8


def causal_mask(seq: int) -> np.ndarray:
    """``(seq, seq)`` additive mask: ``-inf`` strictly above the diagonal.

    Built once per attention call and shared by every head — a 32k-token
    prefill allocates one O(seq^2) mask, not O(heads * seq^2) of them.
    The fill goes through a boolean upper-triangle (one byte per element
    of scratch); ``np.triu_indices`` would transiently cost ~2x the mask
    itself in int64 index arrays at that scale.
    """
    mask = np.zeros((seq, seq), dtype=np.float32)
    rows = np.arange(seq)
    mask[rows[:, None] < rows[None, :]] = -np.inf
    return mask


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate pairs of channels; ``x`` is ``(..., seq, head_dim)``."""
    x = np.asarray(x, dtype=np.float32)
    x1, x2 = x[..., 0::2], x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return out


def swiglu(x: np.ndarray, w_gate: np.ndarray, w_up: np.ndarray, w_down: np.ndarray) -> np.ndarray:
    """SwiGLU MLP: ``down(silu(x @ gate) * (x @ up))``."""
    gate = x @ w_gate
    gate = gate / (1.0 + np.exp(-gate))  # SiLU
    return (gate * (x @ w_up)) @ w_down


@dataclass
class LayerWeights:
    """Weights of one decoder layer."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray
    norm_attn: np.ndarray
    norm_mlp: np.ndarray


@dataclass
class TinyTransformer:
    """A decoder-only transformer with a pluggable KV-cache engine.

    ``engine=None`` runs exact FP16 attention (the accuracy reference);
    otherwise all attention flows through the BitDecoding engine's
    quantized cache, exercising prefill packing, residual appends and the
    Packing-Kernel numerics end to end.
    """

    n_layers: int
    hq: int
    hkv: int
    head_dim: int
    hidden: int
    intermediate: int
    engine: Optional[BitDecoding] = None
    seed: int = 0
    layers: List[LayerWeights] = field(init=False)
    caches: List[object] = field(init=False, default_factory=list)
    _ref_k: List[np.ndarray] = field(init=False, default_factory=list)
    _ref_v: List[np.ndarray] = field(init=False, default_factory=list)
    _positions: int = field(init=False, default=0)
    _rope_cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = field(
        init=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.hq * self.head_dim != self.hidden:
            raise ValueError("hq * head_dim must equal hidden")
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / math.sqrt(self.hidden)
        kv_dim = self.hkv * self.head_dim

        def w(rows, cols):
            return (rng.standard_normal((rows, cols)) * scale).astype(np.float32)

        self.layers = [
            LayerWeights(
                wq=w(self.hidden, self.hidden),
                wk=w(self.hidden, kv_dim),
                wv=w(self.hidden, kv_dim),
                wo=w(self.hidden, self.hidden),
                w_gate=w(self.hidden, self.intermediate),
                w_up=w(self.hidden, self.intermediate),
                w_down=w(self.intermediate, self.hidden),
                norm_attn=np.ones(self.hidden, dtype=np.float32),
                norm_mlp=np.ones(self.hidden, dtype=np.float32),
            )
            for _ in range(self.n_layers)
        ]

    # ------------------------------------------------------------------ plumbing

    def _rope(self, pos0: int, seq: int) -> Tuple[np.ndarray, np.ndarray]:
        """RoPE (cos, sin) tables for positions ``pos0 .. pos0 + seq``.

        Every layer at a given position uses identical tables, so they are
        memoized on ``(pos0, seq)`` — one trig evaluation per decode step
        (or prefill) instead of one per layer.  Decode positions strictly
        increase, so old per-step entries are never hit again; the cache
        evicts oldest-first past a small bound instead of growing by one
        dead entry per generated token.
        """
        key = (pos0, seq)
        tables = self._rope_cache.get(key)
        if tables is None:
            tables = rope_angles(self.head_dim, np.arange(pos0, pos0 + seq))
            while len(self._rope_cache) >= _ROPE_CACHE_ENTRIES:
                self._rope_cache.pop(next(iter(self._rope_cache)))
            self._rope_cache[key] = tables
        return tables

    def _project_kv(self, layer: LayerWeights, x: np.ndarray, pos0: int):
        """(k, v) heads for tokens ``x`` of shape (batch, seq, hidden)."""
        batch, seq, _ = x.shape
        k = (x @ layer.wk).reshape(batch, seq, self.hkv, self.head_dim)
        v = (x @ layer.wv).reshape(batch, seq, self.hkv, self.head_dim)
        cos, sin = self._rope(pos0, seq)
        k = apply_rope(k.transpose(0, 2, 1, 3), cos, sin)  # (b, hkv, seq, d)
        v = v.transpose(0, 2, 1, 3)
        return k, v

    def prefill(self, x: np.ndarray) -> np.ndarray:
        """Process a prompt ``(batch, seq, hidden)``; builds the caches."""
        x = np.asarray(x, dtype=np.float32)
        batch, seq, _ = x.shape
        self.caches = []
        self._ref_k, self._ref_v = [], []
        self._positions = seq
        h = x
        for layer in self.layers:
            normed = rms_norm(h, layer.norm_attn)
            k, v = self._project_kv(layer, normed, 0)
            if self.engine is not None:
                cache = self.engine.prefill(k.astype(np.float16), v.astype(np.float16))
                self.caches.append(cache)
            else:
                self.caches.append(None)
            self._ref_k.append(k)
            self._ref_v.append(v)
            attn = self._attend_prefill(layer, normed, k, v)
            h = h + attn
            h = h + swiglu(rms_norm(h, layer.norm_mlp), layer.w_gate, layer.w_up, layer.w_down)
        return h

    def _attend_prefill(self, layer, normed, k, v) -> np.ndarray:
        """Causal FP16 prefill attention (prefill is not the paper's focus).

        Vectorized over every (batch, query-head) pair: queries reshape to
        the grouped-query ``(b, hkv, gq, seq, d)`` layout so one einsum
        against ``(b, hkv, seq, d)`` K covers MHA, GQA and MQA alike, and
        the causal mask is built once per call, not once per head.
        """
        batch, seq, _ = normed.shape
        q = (normed @ layer.wq).reshape(batch, seq, self.hq, self.head_dim)
        cos, sin = self._rope(0, seq)
        q = apply_rope(q.transpose(0, 2, 1, 3), cos, sin)  # (b, hq, seq, d)
        gq = self.hq // self.hkv
        qg = q.reshape(batch, self.hkv, gq, seq, self.head_dim)
        scale = 1.0 / math.sqrt(self.head_dim)
        s = np.einsum("bhgqd,bhkd->bhgqk", qg, k, optimize=True) * scale
        s += causal_mask(seq)
        s -= s.max(axis=-1, keepdims=True)
        p = np.exp(s)
        p /= p.sum(axis=-1, keepdims=True)
        out = np.einsum("bhgqk,bhkd->bhgqd", p, v, optimize=True)
        out = out.reshape(batch, self.hq, seq, self.head_dim)
        out = out.transpose(0, 2, 1, 3).reshape(batch, seq, self.hidden)
        return out @ layer.wo

    def decode_step(self, x: np.ndarray) -> np.ndarray:
        """One decode step for ``x`` of shape (batch, hidden)."""
        x = np.asarray(x, dtype=np.float32)
        batch = x.shape[0]
        pos = self._positions
        h = x[:, None, :]  # (b, 1, hidden)
        for i, layer in enumerate(self.layers):
            normed = rms_norm(h, layer.norm_attn)
            k_new, v_new = self._project_kv(layer, normed, pos)
            q = (normed @ layer.wq).reshape(batch, 1, self.hq, self.head_dim)
            cos, sin = self._rope(pos, 1)
            q = apply_rope(q.transpose(0, 2, 1, 3), cos, sin).transpose(0, 2, 1, 3)

            if self.engine is not None:
                cache: BitKVCache = self.caches[i]
                cache.append_token(k_new[:, :, 0], v_new[:, :, 0])
                attn = self.engine.decode(q, cache)
            else:
                self._ref_k[i] = np.concatenate([self._ref_k[i], k_new], axis=2)
                self._ref_v[i] = np.concatenate([self._ref_v[i], v_new], axis=2)
                attn = self._exact_decode(q, self._ref_k[i], self._ref_v[i])
            attn = attn.reshape(batch, 1, self.hidden) @ layer.wo
            h = h + attn
            h = h + swiglu(rms_norm(h, layer.norm_mlp), layer.w_gate, layer.w_up, layer.w_down)
        self._positions += 1
        return h[:, 0, :]

    def _exact_decode(self, q, k, v) -> np.ndarray:
        """Exact FP32 decode attention, one grouped-query einsum per batch.

        Same softmax as :func:`repro.core.softmax.reference_attention`,
        vectorized over every (batch, query-head) pair at once.
        """
        batch = q.shape[0]
        gq = self.hq // self.hkv
        qg = np.asarray(q[:, 0], dtype=np.float32).reshape(batch, self.hkv, gq, self.head_dim)
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        # math.sqrt, not np.sqrt: a float64 scalar would promote the whole
        # path (and the caller's hidden state) to float64 under NEP 50.
        scale = np.float32(1.0 / math.sqrt(self.head_dim))
        s = np.einsum("bhgd,bhkd->bhgk", qg, k, optimize=True) * scale
        s -= s.max(axis=-1, keepdims=True)
        p = np.exp(s)
        p /= p.sum(axis=-1, keepdims=True)
        out = np.einsum("bhgk,bhkd->bhgd", p, v, optimize=True)
        return out.reshape(batch, 1, self.hq, self.head_dim)
