"""Serving model: memory capacity, batch limits, max throughput.

The paper's serving results (Figs. 12b, 13, Table I) hinge on one chain of
effects: lower-bit caches fit more sequences in device memory, bigger
batches amortize the weight GEMMs, and the attention kernel must not throw
the advantage away.  This module owns that chain: a memory model (weights +
paged KV + workspace), the max-batch computation, and a throughput sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.gpu.arch import ArchSpec
from repro.model.config import ModelConfig
from repro.model.inference import AttentionSystem, decode_throughput_tokens_per_s

#: Fraction of device memory usable for weights+cache (allocator slack,
#: activations, CUDA context).
_USABLE_MEMORY_FRACTION = 0.9


class ServingOOMError(RuntimeError):
    """A requested serving point does not fit in device memory."""


@dataclass(frozen=True)
class CacheFormat:
    """Storage cost of one KV-cache format."""

    name: str
    bits_per_value: float
    #: Metadata bytes per token per layer (scales/zeros across heads).
    meta_bytes_per_token_layer: float = 0.0
    #: Extra resident workspace the system needs, as a function of
    #: (batch, seq_len) -> bytes (e.g. KIVI's materialized score matrix).
    workspace_bytes: Optional[Callable[[int, int], float]] = None


def fp16_format() -> CacheFormat:
    return CacheFormat(name="FP16", bits_per_value=16.0)


def int_format(bits: int, model: ModelConfig, group_size: int = 64) -> CacheFormat:
    """Integer cache with channel-wise keys + per-token values (half2)."""
    k_meta = model.hkv * model.head_dim / group_size * 4.0
    v_meta = model.hkv * 4.0
    return CacheFormat(
        name=f"INT{bits}",
        bits_per_value=float(bits),
        meta_bytes_per_token_layer=k_meta + v_meta,
    )


def cache_bytes_per_token(model: ModelConfig, fmt: CacheFormat) -> float:
    per_layer = (
        2.0 * model.hkv * model.head_dim * fmt.bits_per_value / 8.0
        + fmt.meta_bytes_per_token_layer
    )
    return model.n_layers * per_layer


def memory_required_bytes(
    model: ModelConfig,
    fmt: CacheFormat,
    batch: int,
    seq_len: int,
    n_gpus: int = 1,
) -> float:
    """Device-resident bytes at a serving point (per GPU)."""
    total = model.weights_bytes() / n_gpus
    total += batch * seq_len * cache_bytes_per_token(model, fmt) / n_gpus
    if fmt.workspace_bytes is not None:
        total += fmt.workspace_bytes(batch, seq_len) / n_gpus
    return total


def fits(
    model: ModelConfig, arch: ArchSpec, fmt: CacheFormat,
    batch: int, seq_len: int, n_gpus: int = 1,
) -> bool:
    budget = arch.memory_gb * (1024 ** 3) * _USABLE_MEMORY_FRACTION
    return memory_required_bytes(model, fmt, batch, seq_len, n_gpus) <= budget


def max_batch_size(
    model: ModelConfig, arch: ArchSpec, fmt: CacheFormat,
    seq_len: int, n_gpus: int = 1, cap: int = 1024,
) -> int:
    """Largest batch that fits; 0 when even batch=1 OOMs."""
    if not fits(model, arch, fmt, 1, seq_len, n_gpus):
        return 0
    lo, hi = 1, cap
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(model, arch, fmt, mid, seq_len, n_gpus):
            lo = mid
        else:
            hi = mid - 1
    return lo


def max_throughput_tokens_per_s(
    model: ModelConfig,
    arch: ArchSpec,
    fmt: CacheFormat,
    attention: AttentionSystem,
    seq_len: int,
    n_gpus: int = 1,
    batch_cap: int = 1024,
) -> float:
    """Throughput at the largest feasible batch (the paper's protocol:
    "maximum throughput ... under the largest batch sizes available within
    GPU memory")."""
    batch = max_batch_size(model, arch, fmt, seq_len, n_gpus, cap=batch_cap)
    if batch == 0:
        raise ServingOOMError(
            f"{model.name} with {fmt.name} cache does not fit one sequence "
            f"of {seq_len} tokens on {arch.name} x{n_gpus}"
        )
    return decode_throughput_tokens_per_s(model, arch, attention, batch, seq_len, n_gpus)
