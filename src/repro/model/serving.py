"""Static serving model: memory capacity, batch limits, max throughput.

The paper's serving results (Figs. 12b, 13, Table I) hinge on one chain of
effects: lower-bit caches fit more sequences in device memory, bigger
batches amortize the weight GEMMs, and the attention kernel must not throw
the advantage away.  The byte-accounting half of that chain lives in
:mod:`repro.model.memory` (shared with the dynamic continuous-batching
engine in :mod:`repro.serving`); this module owns the static questions on
top of it: does a serving point fit, what is the largest batch that fits,
and what throughput does that batch deliver.
"""

from __future__ import annotations

from repro.gpu.arch import ArchSpec
from repro.model.config import ModelConfig
from repro.model.inference import AttentionSystem, decode_throughput_tokens_per_s

# Re-exported for compatibility: CacheFormat and the byte accounting moved
# to repro.model.memory so the dynamic engine shares one code path.
from repro.model.memory import (
    USABLE_MEMORY_FRACTION,
    CacheFormat,
    cache_bytes_per_token,
    fp16_format,
    int_format,
    memory_budget_bytes,
    memory_required_bytes,
)

__all__ = [
    "USABLE_MEMORY_FRACTION",
    "CacheFormat",
    "ServingOOMError",
    "cache_bytes_per_token",
    "fits",
    "fp16_format",
    "int_format",
    "max_batch_size",
    "max_throughput_tokens_per_s",
    "memory_budget_bytes",
    "memory_required_bytes",
]


class ServingOOMError(RuntimeError):
    """A requested serving point does not fit in device memory."""


def fits(
    model: ModelConfig, arch: ArchSpec, fmt: CacheFormat,
    batch: int, seq_len: int, n_gpus: int = 1,
) -> bool:
    budget = memory_budget_bytes(arch)
    return memory_required_bytes(model, fmt, batch, seq_len, n_gpus) <= budget


def max_batch_size(
    model: ModelConfig, arch: ArchSpec, fmt: CacheFormat,
    seq_len: int, n_gpus: int = 1, cap: int = 1024,
) -> int:
    """Largest batch that fits; 0 when even batch=1 OOMs."""
    if not fits(model, arch, fmt, 1, seq_len, n_gpus):
        return 0
    lo, hi = 1, cap
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(model, arch, fmt, mid, seq_len, n_gpus):
            lo = mid
        else:
            hi = mid - 1
    return lo


def max_throughput_tokens_per_s(
    model: ModelConfig,
    arch: ArchSpec,
    fmt: CacheFormat,
    attention: AttentionSystem,
    seq_len: int,
    n_gpus: int = 1,
    batch_cap: int = 1024,
) -> float:
    """Throughput at the largest feasible batch (the paper's protocol:
    "maximum throughput ... under the largest batch sizes available within
    GPU memory")."""
    batch = max_batch_size(model, arch, fmt, seq_len, n_gpus, cap=batch_cap)
    if batch == 0:
        raise ServingOOMError(
            f"{model.name} with {fmt.name} cache does not fit one sequence "
            f"of {seq_len} tokens on {arch.name} x{n_gpus}"
        )
    return decode_throughput_tokens_per_s(model, arch, attention, batch, seq_len, n_gpus)
