"""LongBench-proxy accuracy suite (Table I's accuracy column).

The paper reports LongBench scores for FP16/INT4/INT2 caches on
LLaMA-3.1-8B.  Without the checkpoint or the benchmark data, we measure the
same *mechanism* — quantization noise in K/V perturbing long-context
retrieval — with synthetic tasks whose answers depend entirely on attention
reading the right cache entries:

- **associative recall**: the context stores (key, value) vector pairs;
  the query asks for the value bound to one key among many distractors.
- **needle retrieval**: one relevant row hidden in a long noise context.

Every task runs through the *real* engine: prefill packs/quantizes the real
cache, decode runs the real Packing/Residual kernels.  Scores are the
fraction of trials where the attended output decodes (nearest-neighbor) to
the correct value.  FP16 runs the same tasks through exact attention, so
the FP16 -> INT4 -> INT2 degradation ordering and rough magnitudes are
directly comparable to Table I's deltas (-0.2% / -2.7%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.attention import BitDecoding
from repro.core.config import BitDecodingConfig
from repro.core.softmax import reference_attention


@dataclass(frozen=True)
class TaskConfig:
    """One synthetic retrieval task.

    ``n_pairs`` must be at least the largest residual block size in play
    (256 for INT2) so the cache actually quantizes — shorter contexts sit
    entirely in the FP16 residual and measure nothing.

    ``key_similarity`` mixes a shared direction into every key, shrinking
    the retrieval margin so that cache-quantization noise, not task noise,
    decides the borderline trials.
    """

    name: str
    n_pairs: int
    head_dim: int = 64
    noise: float = 0.15
    key_similarity: float = 0.5
    #: Sharpness of the retrieval logits (folds in the kernels' 1/sqrt(d)).
    logit_scale: float = 12.0
    trials: int = 150


DEFAULT_SUITE = (
    TaskConfig(name="recall-256", n_pairs=256),
    TaskConfig(name="recall-512", n_pairs=512, trials=100),
    TaskConfig(name="needle-hard", n_pairs=256, noise=0.20, trials=100),
)


def _similar_unit_rows(rng, n: int, d: int, similarity: float) -> np.ndarray:
    shared = rng.standard_normal(d).astype(np.float32)
    rows = similarity * shared[None, :] + rng.standard_normal((n, d)).astype(np.float32)
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def run_task(
    task: TaskConfig,
    engine: Optional[BitDecoding],
    seed: int = 0,
) -> float:
    """Accuracy of one task under one cache configuration.

    ``engine=None`` is the FP16 reference (exact attention); otherwise K/V
    go through the engine's quantized cache and the decode kernels.
    """
    rng = np.random.default_rng(seed)
    d = task.head_dim
    correct = 0
    for trial in range(task.trials):
        keys = _similar_unit_rows(rng, task.n_pairs, d, task.key_similarity)
        values = _similar_unit_rows(rng, task.n_pairs, d, 0.0)
        # The cached K rows are noisy renditions of the keys (as projections
        # of real hidden states would be).
        k_rows = keys + task.noise * rng.standard_normal((task.n_pairs, d)).astype(np.float32)
        target = int(rng.integers(task.n_pairs))
        q = keys[target] * task.logit_scale * math.sqrt(d)

        if engine is None:
            out = reference_attention(q[None, :], k_rows, values)[0]
        else:
            k4 = k_rows[None, None].astype(np.float16)  # [1, 1, L, d]
            v4 = values[None, None].astype(np.float16)
            cache = engine.prefill(k4, v4)
            q4 = q[None, None, None, :].astype(np.float16)  # [1, 1, 1, d]
            out = engine.decode(q4, cache)[0, 0, 0]

        pred = int(np.argmax(values @ out))
        correct += pred == target
    return correct / task.trials


def run_suite(
    engine: Optional[BitDecoding],
    suite=DEFAULT_SUITE,
    seed: int = 0,
) -> Dict[str, float]:
    """Run every task; returns per-task accuracy plus the ``average``."""
    scores = {task.name: run_task(task, engine, seed=seed + i) for i, task in enumerate(suite)}
    scores["average"] = sum(scores.values()) / len(suite)
    return scores


def accuracy_table(
    arch="a100", bit_widths=(4, 2), suite=DEFAULT_SUITE, seed: int = 0
) -> Dict[str, Dict[str, float]]:
    """Table I's accuracy column: FP16 vs quantized caches on the suite."""
    results = {"FP16": run_suite(None, suite, seed)}
    for bits in bit_widths:
        engine = BitDecoding(BitDecodingConfig(bits=bits, granularity="channel"), arch)
        results[f"INT{bits}"] = run_suite(engine, suite, seed)
    return results
