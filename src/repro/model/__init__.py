"""LLM substrate: model configs, a runnable transformer, e2e latency,
serving-throughput and accuracy-proxy models (Sec. VI-B / VI-C)."""

from repro.model.config import (
    LLAMA2_7B,
    LLAMA31_8B,
    LLAMA31_70B,
    MODEL_REGISTRY,
    ModelConfig,
    QWEN3_14B,
    QWEN3_8B,
    get_model,
)
from repro.model.inference import (
    DecodeStepBreakdown,
    decode_step_breakdown,
    decode_step_ms,
    decode_throughput_tokens_per_s,
    generation_latency_s,
    weight_gemm_ms,
)
from repro.model.serving import (
    CacheFormat,
    ServingOOMError,
    cache_bytes_per_token,
    fits,
    fp16_format,
    int_format,
    max_batch_size,
    max_throughput_tokens_per_s,
    memory_required_bytes,
)
from repro.model.transformer import TinyTransformer

__all__ = [
    "LLAMA2_7B",
    "LLAMA31_8B",
    "LLAMA31_70B",
    "QWEN3_8B",
    "QWEN3_14B",
    "MODEL_REGISTRY",
    "ModelConfig",
    "get_model",
    "DecodeStepBreakdown",
    "decode_step_breakdown",
    "decode_step_ms",
    "decode_throughput_tokens_per_s",
    "generation_latency_s",
    "weight_gemm_ms",
    "CacheFormat",
    "ServingOOMError",
    "cache_bytes_per_token",
    "fits",
    "fp16_format",
    "int_format",
    "max_batch_size",
    "max_throughput_tokens_per_s",
    "memory_required_bytes",
    "TinyTransformer",
]
