"""End-to-end decode latency model (Sec. VI-B).

One decode step of a transformer =

- **weight GEMMs** — memory-bound at small batch (stream every parameter),
  compute-bound at large batch (Tensor-Core roofline);
- **attention** — per-layer kernel time from whichever attention system is
  plugged in (BitDecoding, FlashDecoding, KIVI, QServe, ...), which is what
  the whole paper is about;
- **fixed overheads** — per-layer launch/dispatch not already counted in
  the attention kernel, and tensor-parallel all-reduces for multi-GPU.

The attention-system protocol is duck-typed: anything with
``decode_time_ms(geom)`` works (every kernel class in this repo does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.config import AttentionGeometry
from repro.gpu.arch import ArchSpec
from repro.model.config import ModelConfig

#: NVLink all-reduce bandwidth per GPU (A100 SXM, for the 70B/8xA100 row).
_NVLINK_BW_GBS = 300.0
#: Fixed all-reduce latency per layer per step.
_ALLREDUCE_LATENCY_US = 10.0
#: Non-attention kernels per layer (norms, GEMM launches) after CUDA-graph
#: style batching.
_AUX_LAUNCHES_PER_LAYER = 1.5


class AttentionSystem(Protocol):
    """Anything that can report a decode-attention latency."""

    def decode_time_ms(self, geom: AttentionGeometry) -> float: ...


@dataclass
class DecodeStepBreakdown:
    """Latency components of one end-to-end decode step (milliseconds)."""

    weights_ms: float
    attention_ms: float
    overhead_ms: float
    comm_ms: float

    @property
    def total_ms(self) -> float:
        return self.weights_ms + self.attention_ms + self.overhead_ms + self.comm_ms


def weight_gemm_ms(
    model: ModelConfig, arch: ArchSpec, batch: int, n_gpus: int = 1
) -> float:
    """Per-step weight-GEMM time: max(memory roofline, compute roofline)."""
    if batch <= 0 or n_gpus <= 0:
        raise ValueError("batch and n_gpus must be positive")
    weights = model.weights_bytes() / n_gpus
    t_mem = weights / arch.dram_bw_bytes_per_s
    flops = 2.0 * model.param_count * batch / n_gpus
    t_compute = flops / arch.tc_flops_per_s("fp16")
    return max(t_mem, t_compute) * 1e3


def decode_step_breakdown(
    model: ModelConfig,
    arch: ArchSpec,
    attention: AttentionSystem,
    batch: int,
    seq_len: int,
    n_gpus: int = 1,
) -> DecodeStepBreakdown:
    """Full latency breakdown of one decode step."""
    geom = model.attention_geometry(batch, seq_len)
    attn_ms = model.n_layers * attention.decode_time_ms(geom)
    weights_ms = weight_gemm_ms(model, arch, batch, n_gpus)
    overhead_ms = (
        model.n_layers * _AUX_LAUNCHES_PER_LAYER * arch.kernel_launch_us * 1e-3
    )
    comm_ms = 0.0
    if n_gpus > 1:
        bytes_per_layer = 2.0 * batch * model.hidden * 2.0  # two all-reduces
        comm_ms = model.n_layers * (
            bytes_per_layer / (_NVLINK_BW_GBS * 1e9) * 1e3
            + _ALLREDUCE_LATENCY_US * 1e-3
        )
    return DecodeStepBreakdown(
        weights_ms=weights_ms,
        attention_ms=attn_ms,
        overhead_ms=overhead_ms,
        comm_ms=comm_ms,
    )


def decode_step_ms(
    model: ModelConfig,
    arch: ArchSpec,
    attention: AttentionSystem,
    batch: int,
    seq_len: int,
    n_gpus: int = 1,
) -> float:
    return decode_step_breakdown(model, arch, attention, batch, seq_len, n_gpus).total_ms


def decode_throughput_tokens_per_s(
    model: ModelConfig,
    arch: ArchSpec,
    attention: AttentionSystem,
    batch: int,
    seq_len: int,
    n_gpus: int = 1,
) -> float:
    """Decoded tokens per second across the whole batch."""
    step_ms = decode_step_ms(model, arch, attention, batch, seq_len, n_gpus)
    return batch / (step_ms * 1e-3)


def prefill_time_ms(
    model: ModelConfig,
    arch: ArchSpec,
    prompt_len: int,
    n_gpus: int = 1,
) -> float:
    """Coarse prefill-latency model for the serving engine.

    Prefill is token-parallel, so the weight GEMMs see an effective batch
    of ``prompt_len`` tokens (compute-bound past a few hundred tokens) and
    causal attention adds ``2 * d * L^2`` Tensor-Core FLOPs per head per
    layer (QK^T + PV, halved by causality, 2 FLOPs per MAC).
    """
    if prompt_len <= 0:
        raise ValueError("prompt_len must be positive")
    gemm_ms = weight_gemm_ms(model, arch, batch=prompt_len, n_gpus=n_gpus)
    attn_flops = model.n_layers * model.hq * 2.0 * model.head_dim * float(prompt_len) ** 2
    attn_ms = attn_flops / (arch.tc_flops_per_s("fp16") * n_gpus) * 1e3
    return gemm_ms + attn_ms


def generation_latency_s(
    model: ModelConfig,
    arch: ArchSpec,
    attention: AttentionSystem,
    seq_len: int,
    new_tokens: int,
    batch: int = 1,
    n_gpus: int = 1,
) -> float:
    """Latency to generate ``new_tokens`` after a ``seq_len`` context.

    Sums per-step latencies as the cache grows (the Fig. 12a setting).
    """
    total_ms = 0.0
    for t in range(new_tokens):
        total_ms += decode_step_ms(model, arch, attention, batch, seq_len + t, n_gpus)
    return total_ms * 1e-3
