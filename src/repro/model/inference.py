"""End-to-end decode latency model (Sec. VI-B).

One decode step of a transformer =

- **weight GEMMs** — memory-bound at small batch (stream every parameter),
  compute-bound at large batch (Tensor-Core roofline);
- **attention** — per-layer kernel time from whichever attention system is
  plugged in (BitDecoding, FlashDecoding, KIVI, QServe, ...), which is what
  the whole paper is about;
- **fixed overheads** — per-layer launch/dispatch not already counted in
  the attention kernel, and tensor-parallel all-reduces for multi-GPU.

The serving engine additionally prices *mixed* steps
(:func:`mixed_step_ms`): a Sarathi/vLLM-style scheduler quantum that
carries prefill-chunk tokens and decode tokens through the same forward
pass, so chunked prefill costs what its token composition says rather
than one-or-the-other.

The attention-system protocol is duck-typed: anything with
``decode_time_ms(geom)`` works (every kernel class in this repo does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, Tuple

from repro.core.config import AttentionGeometry
from repro.gpu.arch import ArchSpec
from repro.model.config import ModelConfig

#: Non-attention kernels per layer (norms, GEMM launches) after CUDA-graph
#: style batching.
_AUX_LAUNCHES_PER_LAYER = 1.5


class AttentionSystem(Protocol):
    """Anything that can report a decode-attention latency."""

    def decode_time_ms(self, geom: AttentionGeometry) -> float: ...


@dataclass
class DecodeStepBreakdown:
    """Latency components of one end-to-end decode step (milliseconds)."""

    weights_ms: float
    attention_ms: float
    overhead_ms: float
    comm_ms: float

    @property
    def total_ms(self) -> float:
        return self.weights_ms + self.attention_ms + self.overhead_ms + self.comm_ms


def weight_gemm_ms(model: ModelConfig, arch: ArchSpec, batch: int, n_gpus: int = 1) -> float:
    """Per-step weight-GEMM time: max(memory roofline, compute roofline)."""
    if batch <= 0 or n_gpus <= 0:
        raise ValueError("batch and n_gpus must be positive")
    weights = model.weights_bytes() / n_gpus
    t_mem = weights / arch.dram_bw_bytes_per_s
    flops = 2.0 * model.param_count * batch / n_gpus
    t_compute = flops / arch.tc_flops_per_s("fp16")
    return max(t_mem, t_compute) * 1e3


def _fixed_overhead_ms(model: ModelConfig, arch: ArchSpec) -> float:
    """Per-step launch/dispatch overhead not counted in the kernels."""
    return model.n_layers * _AUX_LAUNCHES_PER_LAYER * arch.kernel_launch_us * 1e-3


def _allreduce_ms(model: ModelConfig, arch: ArchSpec, tokens: int, n_gpus: int) -> float:
    """Tensor-parallel all-reduce tax for one step over ``tokens`` tokens.

    Bandwidth and fixed latency come from the :class:`ArchSpec`
    interconnect fields, so TP pricing is per-architecture.
    """
    if n_gpus <= 1:
        return 0.0
    bytes_per_layer = 2.0 * tokens * model.hidden * 2.0  # two all-reduces
    return model.n_layers * (
        bytes_per_layer / (arch.nvlink_bw_gbs * 1e9) * 1e3 + arch.allreduce_latency_us * 1e-3
    )


def prefill_attention_flops(model: ModelConfig, context_len: int, chunk_tokens: int) -> float:
    """Causal-attention Tensor-Core FLOPs of one prefill chunk.

    A chunk of ``chunk_tokens`` new tokens attends to ``context_len``
    already-cached tokens plus its own causal prefix (QK^T + PV are two
    GEMMs at 2 FLOPs per MAC, causality halves the in-chunk square).  The
    count telescopes exactly: summed over any chunking of a prompt it
    equals the whole-prompt ``2 * d * L^2`` total, so chunking pays no
    phantom attention FLOPs — only the per-step overheads it really adds.
    """
    if context_len < 0 or chunk_tokens < 0:
        raise ValueError("context_len and chunk_tokens must be non-negative")
    macs = chunk_tokens * context_len + chunk_tokens**2 / 2.0
    return model.n_layers * model.hq * 4.0 * model.head_dim * macs


def _grouped_attention_ms(
    model: ModelConfig,
    attention: AttentionSystem,
    batch: int,
    seq_len: int,
    decode_groups: Optional[Sequence[Tuple[int, int]]],
    tp: int = 1,
) -> float:
    """Per-step decode-attention time, one kernel launch per shape group.

    ``decode_groups`` is ``(group_batch, group_seq_len)`` per equal-shape
    group the backend launches together (``None`` means one launch covers
    the whole batch at ``seq_len`` — the legacy uniform pricing).  Groups
    must partition the batch; each is priced at its *own* context length,
    so a ragged batch no longer pays everyone-at-max, and a batch the
    backend cannot group (the looped path) prices as ``batch`` batch-1
    launches by passing one group per sequence.

    ``tp`` shards the head space: each rank runs the same kernel over
    ``hq/tp`` query heads and ``hkv/tp`` KV heads, and ranks run
    concurrently, so the step pays one rank's (smaller) attention time.
    """
    if decode_groups is None:
        geom = model.attention_geometry(batch, seq_len, tp=tp)
        return model.n_layers * attention.decode_time_ms(geom)
    if sum(b for b, _ in decode_groups) != batch:
        raise ValueError("decode_groups batches must sum to the step's decode batch")
    attn_ms = 0.0
    for group_batch, group_seq_len in decode_groups:
        geom = model.attention_geometry(group_batch, group_seq_len, tp=tp)
        attn_ms += model.n_layers * attention.decode_time_ms(geom)
    return attn_ms


def decode_step_breakdown(
    model: ModelConfig,
    arch: ArchSpec,
    attention: AttentionSystem,
    batch: int,
    seq_len: int,
    n_gpus: int = 1,
    decode_groups: Optional[Sequence[Tuple[int, int]]] = None,
    tp: int = 1,
) -> DecodeStepBreakdown:
    """Full latency breakdown of one decode step.

    ``decode_groups`` prices the attention term per shape-group kernel
    launch (see :func:`_grouped_attention_ms`); the weight GEMMs, fixed
    overheads and all-reduce still see the whole batch once — grouping
    changes how attention is launched, not how many tokens flow.  ``tp``
    head-shards the attention kernel across ranks (the weight GEMMs and
    all-reduce already scale through ``n_gpus``).
    """
    attn_ms = _grouped_attention_ms(model, attention, batch, seq_len, decode_groups, tp=tp)
    weights_ms = weight_gemm_ms(model, arch, batch, n_gpus)
    overhead_ms = _fixed_overhead_ms(model, arch)
    comm_ms = _allreduce_ms(model, arch, batch, n_gpus)
    return DecodeStepBreakdown(
        weights_ms=weights_ms,
        attention_ms=attn_ms,
        overhead_ms=overhead_ms,
        comm_ms=comm_ms,
    )


def decode_step_ms(
    model: ModelConfig,
    arch: ArchSpec,
    attention: AttentionSystem,
    batch: int,
    seq_len: int,
    n_gpus: int = 1,
    decode_groups: Optional[Sequence[Tuple[int, int]]] = None,
    tp: int = 1,
) -> float:
    return decode_step_breakdown(
        model, arch, attention, batch, seq_len, n_gpus, decode_groups, tp
    ).total_ms


def decode_throughput_tokens_per_s(
    model: ModelConfig,
    arch: ArchSpec,
    attention: AttentionSystem,
    batch: int,
    seq_len: int,
    n_gpus: int = 1,
) -> float:
    """Decoded tokens per second across the whole batch."""
    step_ms = decode_step_ms(model, arch, attention, batch, seq_len, n_gpus)
    return batch / (step_ms * 1e-3)


def prefill_time_ms(
    model: ModelConfig,
    arch: ArchSpec,
    prompt_len: int,
    n_gpus: int = 1,
) -> float:
    """Coarse prefill-latency model for the serving engine.

    Prefill is token-parallel, so the weight GEMMs see an effective batch
    of ``prompt_len`` tokens (compute-bound past a few hundred tokens) and
    causal attention adds ``2 * d * L^2`` Tensor-Core FLOPs per head per
    layer (QK^T + PV, halved by causality, 2 FLOPs per MAC).
    """
    if prompt_len <= 0:
        raise ValueError("prompt_len must be positive")
    gemm_ms = weight_gemm_ms(model, arch, batch=prompt_len, n_gpus=n_gpus)
    attn_flops = prefill_attention_flops(model, 0, prompt_len)
    attn_ms = attn_flops / (arch.tc_flops_per_s("fp16") * n_gpus) * 1e3
    return gemm_ms + attn_ms


@dataclass
class MixedStepBreakdown:
    """Latency components of one mixed prefill+decode step (milliseconds)."""

    weights_ms: float
    attention_ms: float
    overhead_ms: float
    comm_ms: float
    prefill_tokens: int
    decode_tokens: int

    @property
    def total_ms(self) -> float:
        return self.weights_ms + self.attention_ms + self.overhead_ms + self.comm_ms


def mixed_step_breakdown(
    model: ModelConfig,
    arch: ArchSpec,
    attention: AttentionSystem,
    decode_batch: int,
    decode_seq_len: int,
    prefill_chunks: Sequence[Tuple[int, int]],
    n_gpus: int = 1,
    decode_groups: Optional[Sequence[Tuple[int, int]]] = None,
    tp: int = 1,
) -> MixedStepBreakdown:
    """Price one scheduler step by its token composition.

    ``prefill_chunks`` is one ``(context_len, chunk_tokens)`` pair per
    in-flight prefill advanced this step; ``decode_batch`` sequences emit
    one token each against a cache of up to ``decode_seq_len`` tokens.
    The weight GEMMs see the *combined* token count (the whole point of
    mixing: prefill chunks ride the weight stream the decode batch already
    pays for), attention is the sum of the decode kernel and the chunks'
    causal Tensor-Core FLOPs, and the fixed overheads are charged once per
    step rather than once per phase.

    A step with no prefill chunks prices identically to
    :func:`decode_step_breakdown` — whole-prompt and chunked scheduling
    share one cost model and differ only in composition.
    """
    prefill_tokens = sum(chunk for _, chunk in prefill_chunks)
    if decode_batch < 0:
        raise ValueError("decode_batch must be non-negative")
    total_tokens = decode_batch + prefill_tokens
    if total_tokens <= 0:
        raise ValueError("a mixed step must process at least one token")
    weights_ms = weight_gemm_ms(model, arch, batch=total_tokens, n_gpus=n_gpus)
    attn_ms = 0.0
    if decode_batch > 0:
        attn_ms += _grouped_attention_ms(
            model, attention, decode_batch, decode_seq_len, decode_groups, tp=tp
        )
    if prefill_chunks:
        flops = sum(prefill_attention_flops(model, ctx, chunk) for ctx, chunk in prefill_chunks)
        attn_ms += flops / (arch.tc_flops_per_s("fp16") * n_gpus) * 1e3
    return MixedStepBreakdown(
        weights_ms=weights_ms,
        attention_ms=attn_ms,
        overhead_ms=_fixed_overhead_ms(model, arch),
        comm_ms=_allreduce_ms(model, arch, total_tokens, n_gpus),
        prefill_tokens=prefill_tokens,
        decode_tokens=decode_batch,
    )


def mixed_step_ms(
    model: ModelConfig,
    arch: ArchSpec,
    attention: AttentionSystem,
    decode_batch: int,
    decode_seq_len: int,
    prefill_chunks: Sequence[Tuple[int, int]],
    n_gpus: int = 1,
    decode_groups: Optional[Sequence[Tuple[int, int]]] = None,
    tp: int = 1,
) -> float:
    return mixed_step_breakdown(
        model,
        arch,
        attention,
        decode_batch,
        decode_seq_len,
        prefill_chunks,
        n_gpus,
        decode_groups,
        tp,
    ).total_ms


def generation_latency_s(
    model: ModelConfig,
    arch: ArchSpec,
    attention: AttentionSystem,
    seq_len: int,
    new_tokens: int,
    batch: int = 1,
    n_gpus: int = 1,
) -> float:
    """Latency to generate ``new_tokens`` after a ``seq_len`` context.

    Sums per-step latencies as the cache grows (the Fig. 12a setting).
    """
    total_ms = 0.0
    for t in range(new_tokens):
        total_ms += decode_step_ms(model, arch, attention, batch, seq_len + t, n_gpus)
    return total_ms * 1e-3
