"""Device-memory accounting shared by the static and dynamic serving models.

One chain of numbers drives every serving result in the paper (Figs. 12b,
13, Table I): bytes per cached token at a given bit width, the device
memory left for KV after weights, and how many sequences that budget holds.
Both consumers of that chain live on top of this module:

- :mod:`repro.model.serving` — the *static* model (max batch that fits,
  throughput at that batch);
- :mod:`repro.serving` — the *dynamic* continuous-batching engine, which
  turns the same byte budget into a physical page pool and schedules
  request traffic over it.

Keeping the constants and formulas here means the two can never disagree
about what a cache format costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.gpu.arch import ArchSpec
from repro.model.config import ModelConfig

#: Fraction of device memory usable for weights+cache (allocator slack,
#: activations, CUDA context).
USABLE_MEMORY_FRACTION = 0.9


@dataclass(frozen=True)
class CacheFormat:
    """Storage cost of one KV-cache format."""

    name: str
    bits_per_value: float
    #: Metadata bytes per token per layer (scales/zeros across heads).
    meta_bytes_per_token_layer: float = 0.0
    #: Extra resident workspace the system needs, as a function of
    #: (batch, seq_len) -> bytes (e.g. KIVI's materialized score matrix).
    workspace_bytes: Optional[Callable[[int, int], float]] = None
    #: FP16 residual window kept per sequence (Sec. IV-A(2)): the newest
    #: tokens stay unquantized until a block of ``N_r`` fills up, so each
    #: resident sequence pins this many full-precision tokens on top of its
    #: packed pages.
    residual_window_tokens: int = 0


def fp16_format() -> CacheFormat:
    return CacheFormat(name="FP16", bits_per_value=16.0)


def int_format(
    bits: int,
    model: ModelConfig,
    group_size: int = 64,
    residual_window: int = 0,
) -> CacheFormat:
    """Integer cache with channel-wise keys + per-token values (half2)."""
    k_meta = model.hkv * model.head_dim / group_size * 4.0
    v_meta = model.hkv * 4.0
    return CacheFormat(
        name=f"INT{bits}",
        bits_per_value=float(bits),
        meta_bytes_per_token_layer=k_meta + v_meta,
        residual_window_tokens=residual_window,
    )


def cache_bytes_per_token(model: ModelConfig, fmt: CacheFormat) -> float:
    """Bytes one cached token costs across all layers (packed + metadata)."""
    per_layer = (
        2.0 * model.hkv * model.head_dim * fmt.bits_per_value / 8.0
        + fmt.meta_bytes_per_token_layer
    )
    return model.n_layers * per_layer


def residual_bytes_per_seq(model: ModelConfig, fmt: CacheFormat) -> float:
    """Fixed FP16 residual-buffer bytes each resident sequence pins."""
    return fmt.residual_window_tokens * model.kv_bytes_per_token(16.0)


def memory_required_bytes(
    model: ModelConfig,
    fmt: CacheFormat,
    batch: int,
    seq_len: int,
    n_gpus: int = 1,
) -> float:
    """Device-resident bytes at a serving point (per GPU)."""
    total = model.weights_bytes() / n_gpus
    total += batch * seq_len * cache_bytes_per_token(model, fmt) / n_gpus
    total += batch * residual_bytes_per_seq(model, fmt) / n_gpus
    if fmt.workspace_bytes is not None:
        total += fmt.workspace_bytes(batch, seq_len) / n_gpus
    return total


def memory_budget_bytes(arch: ArchSpec) -> float:
    """Usable device bytes (HBM minus the reserved fraction)."""
    return arch.memory_gb * (1024**3) * USABLE_MEMORY_FRACTION


def kv_budget_bytes(model: ModelConfig, arch: ArchSpec, n_gpus: int = 1) -> float:
    """Bytes left for the KV cache once weights are resident (per GPU)."""
    return max(0.0, memory_budget_bytes(arch) - model.weights_bytes() / n_gpus)


def page_bytes(model: ModelConfig, fmt: CacheFormat, page_size: int) -> float:
    """Physical bytes of one ``page_size``-token page in this format."""
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    return page_size * cache_bytes_per_token(model, fmt)


def pages_in_budget(
    model: ModelConfig, fmt: CacheFormat, page_size: int, budget_bytes: float
) -> int:
    """Pages a byte budget holds — the knob that makes "same memory,
    different bit width" comparable: lower-bit formats get more pages."""
    return int(budget_bytes // page_bytes(model, fmt, page_size))


#: The three places a physical page can live in the tiered store.
MEMORY_TIERS = ("device", "host", "disk")


@dataclass(frozen=True)
class MemoryTierModel:
    """Analytical bandwidth/latency model of page migration between tiers.

    Device <-> host transfers ride PCIe (one DMA per page migration);
    host <-> disk transfers ride NVMe, whose read and write bandwidths
    differ.  A device <-> disk migration stages through host memory and
    pays both legs.  Defaults approximate PCIe 4.0 x16 and a datacenter
    NVMe drive — deliberately round numbers, since every consumer prices
    *relative* costs (swap vs recompute), not absolute hardware truth.
    """

    pcie_gbs: float = 25.0
    pcie_latency_us: float = 10.0
    nvme_read_gbs: float = 7.0
    nvme_write_gbs: float = 3.5
    nvme_latency_us: float = 80.0

    def _leg_ms(self, nbytes: float, gbs: float, latency_us: float) -> float:
        return latency_us * 1e-3 + nbytes / (gbs * 1e9) * 1e3

    def transfer_ms(self, nbytes: float, src: str, dst: str) -> float:
        """Milliseconds to move ``nbytes`` from tier ``src`` to ``dst``."""
        for tier in (src, dst):
            if tier not in MEMORY_TIERS:
                raise ValueError(f"unknown memory tier {tier!r}; expected {MEMORY_TIERS}")
        if src == dst:
            return 0.0
        ms = 0.0
        if "device" in (src, dst):
            ms += self._leg_ms(nbytes, self.pcie_gbs, self.pcie_latency_us)
        if "disk" in (src, dst):
            gbs = self.nvme_read_gbs if src == "disk" else self.nvme_write_gbs
            ms += self._leg_ms(nbytes, gbs, self.nvme_latency_us)
        return ms


def page_pool_size(
    model: ModelConfig,
    arch: ArchSpec,
    fmt: CacheFormat,
    page_size: int = 64,
    n_gpus: int = 1,
    reserved_seqs: int = 0,
) -> int:
    """Size of the system-wide page pool the device(s) can back.

    KV pages are sharded across tensor-parallel ranks exactly like
    :func:`memory_required_bytes` assumes, so the pool is sized from the
    *total* KV budget (per-GPU budget times ``n_gpus``) against the full
    per-page byte cost — the static and dynamic models stay consistent.

    ``reserved_seqs`` preallocates FP16 residual buffers for that many
    batch slots (the serving engine reserves its max-batch worth), so the
    page pool never eats the residual working set.
    """
    budget = kv_budget_bytes(model, arch, n_gpus) * n_gpus
    budget -= reserved_seqs * residual_bytes_per_seq(model, fmt)
    if budget <= 0:
        return 0
    return pages_in_budget(model, fmt, page_size, budget)
