"""LLM architecture configurations used in the paper's evaluation.

Only shape parameters matter for the end-to-end latency/throughput model
(weights volume, heads, dims); the registry covers every model of
Sec. VI-B.  LLaMA-2-7B is the lone MHA model — the one where QServe still
looks good (Fig. 13); all others are GQA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import AttentionGeometry


@dataclass(frozen=True)
class ModelConfig:
    """Transformer shape parameters of one evaluated LLM."""

    name: str
    n_layers: int
    hq: int
    hkv: int
    head_dim: int
    hidden: int
    intermediate: int
    vocab: int

    def __post_init__(self) -> None:
        if self.hq % self.hkv != 0:
            raise ValueError("hq must be a multiple of hkv")
        if self.hq * self.head_dim != self.hidden:
            raise ValueError(
                f"{self.name}: hq * head_dim ({self.hq * self.head_dim}) "
                f"!= hidden ({self.hidden})"
            )

    @property
    def gq(self) -> int:
        return self.hq // self.hkv

    @property
    def attention_variant(self) -> str:
        return "MHA" if self.gq == 1 else ("MQA" if self.hkv == 1 else "GQA")

    @property
    def param_count(self) -> float:
        """Approximate parameter count (attention + SwiGLU MLP + embeddings)."""
        kv_dim = self.hkv * self.head_dim
        attn = self.hidden * (2 * self.hidden + 2 * kv_dim)  # Wq, Wo, Wk, Wv
        mlp = 3 * self.hidden * self.intermediate  # gate, up, down
        emb = 2 * self.vocab * self.hidden  # tied-ish in/out embeddings
        return float(self.n_layers * (attn + mlp) + emb)

    def weights_bytes(self, bytes_per_param: float = 2.0) -> float:
        return self.param_count * bytes_per_param

    def kv_bytes_per_token(self, bits_per_value: float = 16.0) -> float:
        """KV-cache bytes one token adds across all layers."""
        return 2.0 * self.n_layers * self.hkv * self.head_dim * bits_per_value / 8.0

    def attention_geometry(
        self, batch: int, seq_len: int, q_len: int = 1, tp: int = 1
    ) -> AttentionGeometry:
        """Per-layer decode-attention geometry at a serving point.

        ``tp`` head-shards the geometry across tensor-parallel ranks: each
        rank runs ``hq/tp`` query heads over ``hkv/tp`` KV heads (whole GQA
        groups — ``tp`` must divide ``hkv``), so one rank's kernel is what
        a TP step pays for attention.
        """
        if tp < 1:
            raise ValueError("tp must be >= 1")
        if self.hkv % tp != 0:
            raise ValueError(
                f"{self.name}: tp={tp} does not divide hkv={self.hkv}; "
                "tensor parallelism shards whole KV-head groups"
            )
        return AttentionGeometry(
            batch=batch,
            hq=self.hq // tp,
            hkv=self.hkv // tp,
            seq_len=seq_len,
            head_dim=self.head_dim,
            q_len=q_len,
        )


LLAMA2_7B = ModelConfig(
    name="llama-2-7B", n_layers=32, hq=32, hkv=32, head_dim=128,
    hidden=4096, intermediate=11008, vocab=32000,
)
LLAMA31_8B = ModelConfig(
    name="llama-3.1-8B", n_layers=32, hq=32, hkv=8, head_dim=128,
    hidden=4096, intermediate=14336, vocab=128256,
)
LLAMA31_70B = ModelConfig(
    name="llama-3.1-70B", n_layers=80, hq=64, hkv=8, head_dim=128,
    hidden=8192, intermediate=28672, vocab=128256,
)
QWEN3_8B = ModelConfig(
    name="Qwen3-8B", n_layers=36, hq=32, hkv=8, head_dim=128,
    hidden=4096, intermediate=12288, vocab=151936,
)
QWEN3_14B = ModelConfig(
    name="Qwen3-14B", n_layers=40, hq=40, hkv=8, head_dim=128,
    hidden=5120, intermediate=17408, vocab=151936,
)
#: A deliberately minuscule GQA model for the serving engine's real-token
#: execution mode (``serve-sim --execute``): small enough that running
#: every resident sequence through TinyTransformer numerics per scheduler
#: step is cheap in CI, yet it exercises grouped queries, multiple layers
#: and the paged low-bit cache end to end.
TINY = ModelConfig(
    name="tiny", n_layers=2, hq=4, hkv=2, head_dim=16,
    hidden=64, intermediate=128, vocab=256,
)

MODEL_REGISTRY: Dict[str, ModelConfig] = {
    m.name.lower(): m
    for m in (LLAMA2_7B, LLAMA31_8B, LLAMA31_70B, QWEN3_8B, QWEN3_14B, TINY)
}


def get_model(name: str) -> ModelConfig:
    key = name.lower()
    if key not in MODEL_REGISTRY:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return MODEL_REGISTRY[key]
