"""The Packing Kernel: fused dequantization + attention (Sec. V-C).

This is BitDecoding's main decode kernel.  Per (batch, kv-head, split) block
it streams packed KV tiles through shared memory (``cp.async`` on
SM80/SM89, TMA on Hopper), dequantizes on CUDA cores (lop3 fast path),
feeds Tensor-Core MMAs, and runs the multi-warp cooperative softmax.
The software pipeline overlaps the ``(i+1)``-th tile's load + dequant with
the ``i``-th tile's MMA (Fig. 7 right).

Implemented as the rest of the reproduction: real numerics over the packed
cache (including genuinely-wrong results when the cooperative softmax is
ablated with ``Wn > 1``), and an analytic trace builder for the performance
model that mirrors the same per-tile work.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.query_transform import gemm_m_dimension
from repro.core.quantization import quantize_fp4
from repro.core.softmax import OnlineSoftmaxState, pad_tail, tile_softmax_split
from repro.gpu.arch import ArchSpec
from repro.gpu.instructions import (
    dequant_ops,
    p_requant_ops,
    rescale_accum_ops,
    softmax_ops,
)
from repro.gpu.kernel import KernelLaunch
from repro.gpu.sm import occupancy
from repro.gpu.trace import AccessPattern, OpTrace
from repro.gpu.warp import WarpLayout, combined_hide_factor

#: Target resident blocks per SM when choosing the split-KV factor.
_SPLIT_TARGET_BLOCKS_PER_SM = 2

#: Documented tolerance of the ``fused`` numerics mode vs ``exact_tiled``,
#: as max |fused - tiled| / max(1, max |tiled|) per decode output.  The
#: bounds come from a sweep over bits {1, 2, 4, 8}, both granularities and
#: both FP4 formats (random fp16 K/V, contexts up to several N_r blocks):
#: integer paths differ only by fp32 summation order (measured <= ~2e-6);
#: the FP4 path also re-quantizes P against the global row maximum instead
#: of the per-tile running maximum (typical <= ~3.5e-2, with adversarial
#: MXFP4 cases observed up to ~9.3e-2).  The committed tolerances carry
#: headroom; ``tests/core/test_vectorized_cache.py`` enforces them as the
#: dual-mode contract and pins the worst discovered case.
FUSED_NUMERICS_TOLERANCE = {"int": 1e-5, "fp4": 1.25e-1}


def choose_splits(
    arch: ArchSpec, geom: AttentionGeometry, tile_n: int, seq_len: Optional[int] = None
) -> int:
    """FlashDecoding split-KV heuristic: fill the machine at small batch.

    With ``batch * hkv`` blocks already saturating the SMs no split is
    needed; at batch 1 the sequence is partitioned so enough blocks exist
    to reach peak memory bandwidth.
    """
    seq_len = geom.seq_len if seq_len is None else seq_len
    base_blocks = geom.batch * geom.hkv
    tiles = max(1, math.ceil(seq_len / tile_n))
    target = _SPLIT_TARGET_BLOCKS_PER_SM * arch.sm_count
    want = max(1, target // max(base_blocks, 1))
    return max(1, min(want, tiles))


# ---------------------------------------------------------------------------
# Numerics
# ---------------------------------------------------------------------------


def run_numeric(
    q_grouped: np.ndarray,
    k_hat: np.ndarray,
    v_hat: np.ndarray,
    config: BitDecodingConfig,
    scale: Optional[float] = None,
) -> OnlineSoftmaxState:
    """Attention of grouped queries over dequantized packed KV rows.

    ``q_grouped``: ``(..., M, d)``; ``k_hat``/``v_hat``: ``(..., L_pack, d)``
    *reconstructed* values (the cache object performs the real
    unpack+dequant; see :class:`repro.core.attention.BitKVCache`).  Leading
    dims are independent (batch, kv-head) problems — the vectorized cache
    passes ``[batch, hkv, ...]`` tensors so the whole decode batch walks
    each tile in one numpy update, with no per-head Python loop.

    Two numerics modes (``config.numerics_mode``):

    - ``fused`` (default): one batched QK^T over the entire packed range
      followed by a two-pass softmax — no Python tile loop at all.  Fusing
      changes BLAS summation order, so the result is *tolerance*-equal to
      the tiled walk, not bit-equal (see
      ``tests/core/test_vectorized_cache.py`` for the dual-mode contract).
    - ``exact_tiled``: walks the same ``tile_n``-wide tiles as the GPU
      kernel through the online softmax, bit-identical to the seed
      implementation.

    The deliberately non-cooperative softmax ablation (``Wn > 1`` with
    ``use_coop_softmax=False``) is tile-structured by definition — each
    warp's wrong local maximum lives inside a tile — so it always takes
    the tiled walk regardless of mode.  Split-KV (:func:`split_states`)
    fuses *within* each partition and still merges partial states through
    the reduction kernel.  On the Blackwell native path the probability
    tile is re-quantized to FP4 before the PV product, reproducing that
    path's extra numeric error in both modes.
    """
    q_grouped = np.asarray(q_grouped, dtype=np.float32)
    k_hat = np.asarray(k_hat, dtype=np.float32)
    v_hat = np.asarray(v_hat, dtype=np.float32)
    if scale is None:
        scale = 1.0 / math.sqrt(q_grouped.shape[-1])

    coop = config.use_coop_softmax or config.effective_wn == 1
    if config.numerics_mode == "fused" and coop:
        return _run_fused(q_grouped, k_hat, v_hat, config, scale)

    state = OnlineSoftmaxState.fresh(
        q_grouped.shape[-2], v_hat.shape[-1], leading=q_grouped.shape[:-2]
    )
    seq_len = k_hat.shape[-2]
    wn = config.effective_wn
    for t0 in range(0, seq_len, config.tile_n):
        t1 = min(t0 + config.tile_n, seq_len)
        k_tile = k_hat[..., t0:t1, :]
        s = (q_grouped @ np.swapaxes(k_tile, -1, -2)) * scale
        s, v_tile = pad_tail(s, v_hat[..., t0:t1, :], wn)
        if config.version == "fp4":
            state_update_fp4(state, s, v_tile, config)
        else:
            tile_softmax_split(state, s, v_tile, wn, cooperative=config.use_coop_softmax)
    return state


def _run_fused(
    q_grouped: np.ndarray,
    k_hat: np.ndarray,
    v_hat: np.ndarray,
    config: BitDecodingConfig,
    scale: float,
) -> OnlineSoftmaxState:
    """Fused tile walk: one QK^T GEMM + two-pass softmax over all tiles.

    On the FP4 path ``P`` is still re-quantized before the PV product, but
    against the row's global maximum instead of the per-tile running
    maximum; quantization blocks are padded (``-inf`` scores, zero value
    rows) to the micro-scaling block size, matching how the tiled walk
    pads its tail tile.
    """
    s = (q_grouped @ np.swapaxes(k_hat, -1, -2)) * scale
    if config.version != "fp4":
        return OnlineSoftmaxState.from_scores(s, v_hat)

    block = 32 if config.fp4_format == "mxfp4" else 16
    s, v_hat = pad_tail(s, v_hat, block)
    m = s.max(axis=-1)
    p = np.exp(s - np.where(np.isfinite(m), m, 0.0)[..., None])
    p_q, _ = quantize_fp4(p, config.fp4_format, axis=-1)
    return OnlineSoftmaxState(m=m, l=p_q.sum(axis=-1), acc=p_q @ np.asarray(v_hat, np.float32))


def state_update_fp4(
    state: OnlineSoftmaxState,
    scores: np.ndarray,
    values: np.ndarray,
    config: BitDecodingConfig,
) -> None:
    """Tile update on the Blackwell native-FP4 path.

    ``P = exp(S - m)`` is quantized to the micro-scaling FP4 format before
    the second MMA (``O = Quant(P) V``, Sec. III-B Challenge 2); values are
    already FP4-representable.  P rows lie in [0, 1], so a block of 16/32
    probabilities shares one scale.
    """
    scores = np.asarray(scores, dtype=np.float32)
    tile_max = scores.max(axis=-1)
    m_new = np.maximum(state.m, tile_max)
    correction = np.where(np.isfinite(state.m), np.exp(state.m - m_new), 0.0)
    p = np.exp(scores - m_new[..., None])
    p_q, _ = quantize_fp4(p, config.fp4_format, axis=-1)
    state.l = state.l * correction + p_q.sum(axis=-1)
    state.acc = state.acc * correction[..., None] + p_q @ np.asarray(values, np.float32)
    state.m = m_new


def split_states(
    q_grouped: np.ndarray,
    k_hat: np.ndarray,
    v_hat: np.ndarray,
    config: BitDecodingConfig,
    n_splits: int,
    scale: Optional[float] = None,
) -> List[OnlineSoftmaxState]:
    """Split-KV numerics: independent partial states, one per partition."""
    seq_len = k_hat.shape[-2]
    n_splits = max(1, min(n_splits, max(1, seq_len)))
    bounds = np.linspace(0, seq_len, n_splits + 1, dtype=np.int64)
    states = []
    for i in range(n_splits):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        if lo == hi:
            continue
        states.append(
            run_numeric(q_grouped, k_hat[..., lo:hi, :], v_hat[..., lo:hi, :], config, scale)
        )
    return states


# ---------------------------------------------------------------------------
# Trace builder
# ---------------------------------------------------------------------------


def build_packing_launch(
    geom: AttentionGeometry,
    config: BitDecodingConfig,
    arch: ArchSpec,
    packed_len: Optional[int] = None,
    n_splits: Optional[int] = None,
    paged: bool = False,
    page_size: int = 64,
) -> KernelLaunch:
    """Performance trace of the Packing Kernel over the packed cache.

    ``packed_len`` defaults to the geometry's full sequence (the common
    benchmark situation where the residual is negligible).  ``paged`` adds
    page-table lookups and the slightly reduced coalescing of paged layouts.
    """
    if packed_len is None:
        packed_len = geom.seq_len
    if packed_len <= 0:
        raise ValueError("packed_len must be positive")
    d = geom.head_dim
    _, m_pad = gemm_m_dimension(geom.hq, geom.hkv, geom.q_len)
    heads = geom.batch * geom.hkv
    if n_splits is None:
        n_splits = choose_splits(arch, geom, config.tile_n, packed_len)
    tiles = heads * math.ceil(packed_len / config.tile_n)

    bits_per_value = config.storage_bits_per_value
    kv_values = heads * 2.0 * packed_len * d
    packed_bytes = kv_values * bits_per_value / 8.0
    from repro.core.residual_kernel import _meta_bytes  # shared metadata math

    meta_bytes = _meta_bytes(heads, packed_len, d, config)

    trace = OpTrace()
    pattern = AccessPattern.STRIDED if paged else AccessPattern.COALESCED
    trace.gmem_read(packed_bytes, pattern)
    trace.gmem_read(meta_bytes)  # cp.async.ca fine-grained metadata stream
    trace.gmem_read(heads * n_splits * m_pad * d * 2.0)  # Q per block
    if paged:
        # Page-table entries: one 8-byte entry per page per block.
        trace.gmem_read(heads * (packed_len / page_size) * 8.0, AccessPattern.SCATTERED)
    if n_splits > 1:
        partial_bytes = heads * n_splits * m_pad * (d + 2.0) * 4.0
        trace.gmem_write(partial_bytes)
        trace.gmem_read(partial_bytes)  # reduction kernel
        trace.gmem_write(heads * m_pad * d * 2.0)
    else:
        trace.gmem_write(heads * m_pad * d * 2.0)

    # Tensor-core GEMMs: QK^T + PV with the M dimension padded to the tile.
    tc_precision = "fp4" if config.version == "fp4" else "fp16"
    trace.tensor_core(heads * 2.0 * 2.0 * m_pad * packed_len * d, tc_precision)

    subtraces: Dict[str, OpTrace] = {}
    if config.version == "fp4":
        requant = p_requant_ops(heads * m_pad * packed_len)
        trace.merge(requant)
        subtraces["p_requant"] = requant
    else:
        dq = dequant_ops(kv_values, config.bits, config.dequant_method)
        trace.merge(dq)
        subtraces["dequant"] = dq

    sm_ops = softmax_ops(heads * m_pad * packed_len, m_pad * tiles, config.effective_wn)
    trace.merge(sm_ops)
    subtraces["softmax"] = sm_ops
    trace.merge(rescale_accum_ops(m_pad * d * tiles))

    # Shared-memory staging: packed tiles in (cp.async) + ldmatrix out; the
    # cooperative softmax stages P through sAcc (write + ldmatrix back).
    smem_traffic = 2.0 * packed_bytes + 2.0 * meta_bytes
    if config.effective_wn > 1 and config.use_coop_softmax:
        smem_traffic += 2.0 * m_pad * config.tile_n * 2.0 * tiles
    if config.version == "v3":
        # STSM stores dequantized FP16 tiles for wgmma_SS consumption.
        smem_traffic += 2.0 * (kv_values * 2.0)
    conflict = 1.0 if config.use_layout_induction else 4.0
    trace.smem_traffic(smem_traffic, conflict_factor=conflict)

    if not config.use_layout_induction:
        # Continuous-packing baseline: explicit per-tile layout transform
        # (unpack, permute through shared memory, repack) before the MMA.
        transform = OpTrace()
        transform.alu_ops += 2.0 * kv_values
        transform.smem_traffic(2.0 * kv_values, conflict_factor=4.0)
        trace.merge(transform)
        subtraces["layout_transform"] = transform

    trace.barriers_per_block += 2.0 * math.ceil(packed_len / (n_splits * config.tile_n))

    warp_layout = WarpLayout(wm=config.wm, wn=config.effective_wn)
    smem_block = _smem_per_block(m_pad, d, config)
    grid = heads * n_splits
    occ = occupancy(arch, grid, warp_layout.warps_per_block, smem_block)
    hide = combined_hide_factor(
        warp_layout,
        inflight_warps_per_sm=occ.blocks_per_sm * warp_layout.warps_per_block,
        pipelined=config.use_pipeline,
    )
    if config.version == "v3":
        # Warp-specialized producer/consumer scheduling (FA-3 style) hides
        # residual exposure beyond what the SM80 pipeline reaches.
        hide = min(1.0, hide + 0.15)
    if not config.use_layout_induction:
        hide = min(hide, 0.3)

    return KernelLaunch(
        name="packing_kernel",
        trace=trace,
        grid_blocks=grid,
        warps_per_block=warp_layout.warps_per_block,
        smem_per_block_bytes=smem_block,
        hide_factor=hide,
        instruction_path=config.instruction_path,
        launches=2 if n_splits > 1 else 1,
        subtraces=subtraces,
    )


def _smem_per_block(m_pad: int, d: int, config: BitDecodingConfig) -> int:
    """Shared-memory footprint of one Packing-Kernel block."""
    packed_tile = 2 * config.tile_n * d * config.storage_bits_per_value / 8.0
    buffers = 2.0 if config.use_pipeline else 1.0  # double buffering
    q_tile = m_pad * d * 2.0
    s_acc = m_pad * config.tile_n * 2.0 if config.effective_wn > 1 else 0.0
    v3_stage = 2 * config.tile_n * d * 2.0 if config.version == "v3" else 0.0
    meta = 2048.0
    return int(packed_tile * buffers + q_tile + s_acc + v3_stage + meta)
