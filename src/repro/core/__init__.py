"""BitDecoding core: the paper's primary contribution.

Subpackage map (paper section in parentheses):

- :mod:`repro.core.layouts` — fragment layouts + layout induction (IV-A(1))
- :mod:`repro.core.packing` — bit packing, ``75316420`` interleave (IV-A(3))
- :mod:`repro.core.quantization` — INT-k KC/KT + MXFP4/NVFP4 (V-B, V-D)
- :mod:`repro.core.dequant` — lop3 vs static_cast dequantization (IV-A(3))
- :mod:`repro.core.residual_cache` — Eq. 1 residual sizing (IV-A(2))
- :mod:`repro.core.residual_kernel` — fused quant+pack kernel (V-B)
- :mod:`repro.core.packing_kernel` — fused dequant+attention kernel (V-C)
- :mod:`repro.core.softmax` — cooperative softmax, Algorithm 1 (IV-B(2))
- :mod:`repro.core.query_transform` — GQA/MQA query grouping (V-A)
- :mod:`repro.core.pipeline` — software pipeline model (V-C(2))
- :mod:`repro.core.arch_support` — Hopper/Blackwell paths (V-D)
- :mod:`repro.core.attention` — the contiguous cache + decode engine

The *public* cache/engine API moved to :mod:`repro.attn` (the
``AttentionBackend`` protocol and its paged / contiguous / analytical
implementations).  The 0.2-era ``repro.core.BitDecoding`` /
``repro.core.BitKVCache`` re-export shims were removed in 0.4; the
classes themselves live on in :mod:`repro.core.attention` as the
contiguous backend's internals.
"""

from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.quantization import QuantScheme

__all__ = [
    "AttentionGeometry",
    "BitDecodingConfig",
    "QuantScheme",
]
