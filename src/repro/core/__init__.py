"""BitDecoding core: the paper's primary contribution.

Subpackage map (paper section in parentheses):

- :mod:`repro.core.layouts` — fragment layouts + layout induction (IV-A(1))
- :mod:`repro.core.packing` — bit packing, ``75316420`` interleave (IV-A(3))
- :mod:`repro.core.quantization` — INT-k KC/KT + MXFP4/NVFP4 (V-B, V-D)
- :mod:`repro.core.dequant` — lop3 vs static_cast dequantization (IV-A(3))
- :mod:`repro.core.residual_cache` — Eq. 1 residual sizing (IV-A(2))
- :mod:`repro.core.residual_kernel` — fused quant+pack kernel (V-B)
- :mod:`repro.core.packing_kernel` — fused dequant+attention kernel (V-C)
- :mod:`repro.core.softmax` — cooperative softmax, Algorithm 1 (IV-B(2))
- :mod:`repro.core.query_transform` — GQA/MQA query grouping (V-A)
- :mod:`repro.core.pipeline` — software pipeline model (V-C(2))
- :mod:`repro.core.arch_support` — Hopper/Blackwell paths (V-D)
- :mod:`repro.core.attention` — the contiguous cache + decode engine

The *public* cache/engine API moved to :mod:`repro.attn` (the
``AttentionBackend`` protocol and its paged / contiguous / analytical
implementations).  ``repro.core.BitDecoding`` and ``repro.core.BitKVCache``
remain importable as deprecation shims; the classes themselves live on in
:mod:`repro.core.attention` as the contiguous backend's internals.
"""

import warnings

from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.quantization import QuantScheme

__all__ = [
    "BitDecoding",
    "BitKVCache",
    "AttentionGeometry",
    "BitDecodingConfig",
    "QuantScheme",
]

_DEPRECATED_REEXPORTS = ("BitDecoding", "BitKVCache")


def __getattr__(name: str):
    if name in _DEPRECATED_REEXPORTS:
        warnings.warn(
            f"importing {name} from repro.core is deprecated and will be "
            f"removed in repro 0.4: use the AttentionBackend API in "
            f"repro.attn (ContiguousBitBackend wraps this class), or "
            f"repro.core.attention.{name} for the internal class itself",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core import attention

        return getattr(attention, name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
