"""The Residual Kernel: fused compute + quantization + packing (Sec. V-B).

Per decode step the kernel (i) computes attention over the FP16 residual
KV cache and (ii) — on the step where the residual fills to ``N_r`` — fuses
quantization and packing of the completed block into the low-bit cache,
entirely in registers:

- thread-level min/max for the group statistics, reduced across the warp
  with ``__shfl_xor_sync`` butterflies (plus a small shared buffer when
  ``W_n > 1``),
- in-register affine quantization,
- thread-local packing in *fragment order* (layout induction, Fig. 5), so
  the stored words are already what the Packing Kernel's ``ldmatrix``
  expects.

Numerics here are bit-exact: :func:`flush_block` really quantizes and packs
through the fragment permutation; the Packing Kernel really unpacks the
words.  Trace builders mirror the same work for the performance model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.layouts import (
    MMA_M16N8K16_B,
    FragmentLayout,
    _block_fragment_indices,
    block_fragment_offsets,
    block_fragment_pack,
    block_fragment_unpack,
    tiled_layout,
)
from repro.core.packing import _word_dtype, gather_pack_into, unpack_values
from repro.core.quantization import (
    Fp4Params,
    QuantParams,
    QuantScheme,
    _quantize_chunk,
    dequantize,
    quantize_fp4,
    quantize_key,
    quantize_value,
)
from repro.core.query_transform import gemm_m_dimension
from repro.core.softmax import OnlineSoftmaxState, pad_tail, tile_softmax_split
from repro.gpu.arch import ArchSpec
from repro.gpu.instructions import quant_pack_ops, rescale_accum_ops, softmax_ops
from repro.gpu.kernel import KernelLaunch
from repro.gpu.trace import OpTrace
from repro.gpu.warp import WarpLayout, memory_hide_factor


def _kv_fragment_layout(config: BitDecodingConfig) -> FragmentLayout:
    """Fragment layout (with N-repeat) whose lane load fills whole words.

    A lane of ``mma.m16n8k16.B`` holds 4 values; bit widths whose packing
    ratio exceeds 4 need repeat tiling along N (Fig. 3a) so each lane packs
    complete words.
    """
    base = MMA_M16N8K16_B
    ratio = config.packing_ratio
    repeat = max(1, math.ceil(ratio / base.values_per_lane))
    return tiled_layout(base, repeat) if repeat > 1 else base


@dataclass
class PackedBlock:
    """One quantized+packed residual block of the low-bit KV cache.

    ``k_words`` is packed in (d, seq) orientation — K is the B operand of
    ``Q K^T`` whose contraction dimension is ``d`` — while ``v_words`` is
    packed in (seq, d) orientation for the ``P V`` MMA.
    """

    length: int
    head_dim: int
    bits: int
    word_bits: int
    layout_name: str
    k_words: np.ndarray
    v_words: np.ndarray
    k_params: QuantParams
    v_params: QuantParams

    def dequant_kv(self, config: BitDecodingConfig) -> Tuple[np.ndarray, np.ndarray]:
        """Unpack + dequantize this block back to FP32 ``(length, d)`` pairs."""
        layout = _kv_fragment_layout(config)
        if layout.name != self.layout_name:
            raise ValueError(
                "Packing Kernel instruction configuration "
                f"({layout.name}) does not match the Residual Kernel's "
                f"({self.layout_name}); Sec. IV-A(4) requires them identical"
            )
        interleaved = config.dequant_method == "lop3"
        k_codes = block_fragment_unpack(
            self.k_words,
            (self.head_dim, self.length),
            layout,
            self.bits,
            self.word_bits,
            interleaved=interleaved,
        )
        v_codes = block_fragment_unpack(
            self.v_words,
            (self.length, self.head_dim),
            layout,
            self.bits,
            self.word_bits,
            interleaved=interleaved,
        )
        k_hat = dequantize(k_codes.T, self.k_params)
        v_hat = dequantize(v_codes, self.v_params)
        return k_hat, v_hat

    @property
    def packed_nbytes(self) -> int:
        return self.k_words.nbytes + self.v_words.nbytes

    @property
    def meta_nbytes(self) -> float:
        return self.k_params.nbytes + self.v_params.nbytes


@dataclass
class Fp4Block:
    """One micro-scaling FP4 block (Blackwell native path).

    Stores the representable (already block-scaled) values the tensor cores
    compute with, plus the per-block scales for byte accounting.
    """

    length: int
    head_dim: int
    fmt: str
    k_values: np.ndarray
    v_values: np.ndarray
    k_scales: Fp4Params
    v_scales: Fp4Params

    def dequant_kv(self, config: BitDecodingConfig) -> Tuple[np.ndarray, np.ndarray]:
        return self.k_values.astype(np.float32), self.v_values.astype(np.float32)

    @property
    def packed_nbytes(self) -> int:
        return int(self.length * self.head_dim)  # 2 tensors x 4 bits

    @property
    def meta_nbytes(self) -> float:
        return self.k_scales.nbytes + self.v_scales.nbytes


def flush_block(k_block: np.ndarray, v_block: np.ndarray, config: BitDecodingConfig):
    """Quantize + pack one full residual block (the fused flush).

    ``k_block`` / ``v_block`` are FP16 ``(N_r, d)``.  Returns a
    :class:`PackedBlock` (integer path) or :class:`Fp4Block` (Blackwell
    native path).
    """
    k_block = np.asarray(k_block, dtype=np.float32)
    v_block = np.asarray(v_block, dtype=np.float32)
    n, d = k_block.shape
    if v_block.shape != (n, d):
        raise ValueError("K and V blocks must share a shape")

    if config.version == "fp4":
        k_vals, k_scales = quantize_fp4(k_block, config.fp4_format, axis=-1)
        v_vals, v_scales = quantize_fp4(v_block, config.fp4_format, axis=-1)
        return Fp4Block(
            length=n,
            head_dim=d,
            fmt=config.fp4_format,
            k_values=k_vals.astype(np.float16),
            v_values=v_vals.astype(np.float16),
            k_scales=k_scales,
            v_scales=v_scales,
        )

    # Group sizes clamp to the block's actual extents: the key group runs
    # along seq (KC) or channels (KT), the value group along channels.
    key_axis_len = n if config.granularity == "channel" else d
    key_scheme = config.key_scheme
    if key_scheme.group_size > key_axis_len:
        key_scheme = QuantScheme(
            bits=key_scheme.bits,
            granularity=key_scheme.granularity,
            group_size=key_axis_len,
        )
    k_codes, k_params = quantize_key(k_block, key_scheme, seq_axis=0, channel_axis=1)
    v_codes, v_params = quantize_value(
        v_block, config.bits, min(config.value_group_size, d), channel_axis=1
    )
    layout = _kv_fragment_layout(config)
    interleaved = config.dequant_method == "lop3"
    k_words = block_fragment_pack(
        k_codes.T, layout, config.bits, config.word_bits, interleaved=interleaved
    )
    v_words = block_fragment_pack(
        v_codes, layout, config.bits, config.word_bits, interleaved=interleaved
    )
    return PackedBlock(
        length=n,
        head_dim=d,
        bits=config.bits,
        word_bits=config.word_bits,
        layout_name=layout.name,
        k_words=k_words,
        v_words=v_words,
        k_params=k_params,
        v_params=v_params,
    )


# ---------------------------------------------------------------------------
# Batched struct-of-arrays storage (the vectorized two-part cache)
# ---------------------------------------------------------------------------


def _concat_params(a: QuantParams, b: QuantParams, block_axis: int) -> QuantParams:
    """Concatenate two batched :class:`QuantParams` along the block axis."""
    if (a.axis, a.group_size, a.bits) != (b.axis, b.group_size, b.bits):
        raise ValueError("cannot concatenate metadata of differently-quantized blocks")
    return QuantParams(
        scale=np.concatenate([a.scale, b.scale], axis=block_axis),
        zero=np.concatenate([a.zero, b.zero], axis=block_axis),
        axis=a.axis,
        group_size=a.group_size,
        bits=a.bits,
    )


@dataclass
class PackedBlockBatch:
    """All quantized+packed blocks of a cache, stored struct-of-arrays.

    Block axis is axis 2: ``k_words``/``v_words`` are
    ``[batch, hkv, n_blocks, tiles_r, tiles_c, 32, words_per_lane]`` (the
    per-block fragment-order words of :func:`flush_block`, batched), and the
    ``half2`` metadata inside ``k_params``/``v_params`` carries the same
    ``[batch, hkv, n_blocks, ...]`` leading dims.  K blocks are packed in
    ``(d, N_r)`` orientation, V blocks in ``(N_r, d)``, exactly as the
    per-block :class:`PackedBlock` stores them.
    """

    length: int
    head_dim: int
    bits: int
    word_bits: int
    layout_name: str
    k_words: np.ndarray
    v_words: np.ndarray
    k_params: QuantParams
    v_params: QuantParams

    @property
    def batch(self) -> int:
        return self.k_words.shape[0]

    @property
    def hkv(self) -> int:
        return self.k_words.shape[1]

    @property
    def n_blocks(self) -> int:
        return self.k_words.shape[2]

    def extend(self, other: "PackedBlockBatch") -> "PackedBlockBatch":
        """Append another batch of blocks (one flush) along the block axis."""
        if (self.length, self.head_dim, self.bits, self.word_bits, self.layout_name) != (
            other.length,
            other.head_dim,
            other.bits,
            other.word_bits,
            other.layout_name,
        ):
            raise ValueError("cannot extend with blocks of a different configuration")
        return PackedBlockBatch(
            length=self.length,
            head_dim=self.head_dim,
            bits=self.bits,
            word_bits=self.word_bits,
            layout_name=self.layout_name,
            k_words=np.concatenate([self.k_words, other.k_words], axis=2),
            v_words=np.concatenate([self.v_words, other.v_words], axis=2),
            k_params=_concat_params(self.k_params, other.k_params, block_axis=2),
            v_params=_concat_params(self.v_params, other.v_params, block_axis=2),
        )

    def dequant_kv(self, config: BitDecodingConfig) -> Tuple[np.ndarray, np.ndarray]:
        """Unpack + dequantize every block in one batched pass.

        Returns FP32 ``(K, V)`` of shape ``[batch, hkv, n_blocks * N_r, d]``
        — all heads reconstructed through the real fragment-order unpack,
        with no per-(batch, head, block) Python iteration.
        """
        layout = _kv_fragment_layout(config)
        if layout.name != self.layout_name:
            raise ValueError(
                "Packing Kernel instruction configuration "
                f"({layout.name}) does not match the Residual Kernel's "
                f"({self.layout_name}); Sec. IV-A(4) requires them identical"
            )
        interleaved = config.dequant_method == "lop3"
        n, d = self.length, self.head_dim
        batch, hkv = self.batch, self.hkv

        # The inverse fragment permutation turns the scatter back into a
        # gather (``np.take``), which runs an order of magnitude faster
        # than advanced-index assignment on 10^8-element caches.  K words
        # address the (d, N_r) packing orientation; the transposed offsets
        # land the codes straight in (N_r, d).
        k_frag = unpack_values(self.k_words, self.bits, self.word_bits, interleaved=interleaved)
        _, inv_k = block_fragment_offsets(layout, d, n, transposed=True)
        k_codes = np.take(k_frag.reshape(batch, hkv, self.n_blocks, n * d), inv_k, axis=-1)
        k_codes = k_codes.reshape(batch, hkv, self.n_blocks, n, d)

        v_frag = unpack_values(self.v_words, self.bits, self.word_bits, interleaved=interleaved)
        _, inv_v = block_fragment_offsets(layout, n, d)
        v_codes = np.take(v_frag.reshape(batch, hkv, self.n_blocks, n * d), inv_v, axis=-1)
        v_codes = v_codes.reshape(batch, hkv, self.n_blocks, n, d)

        k_hat = dequantize(k_codes, self.k_params)
        v_hat = dequantize(v_codes, self.v_params)
        return (
            k_hat.reshape(batch, hkv, self.n_blocks * n, d),
            v_hat.reshape(batch, hkv, self.n_blocks * n, d),
        )

    @property
    def packed_nbytes(self) -> int:
        """Packed-word bytes, from array shapes in O(1)."""
        return self.k_words.nbytes + self.v_words.nbytes

    @property
    def meta_nbytes(self) -> float:
        """half2 metadata bytes, from array shapes in O(1)."""
        return self.k_params.nbytes + self.v_params.nbytes


@dataclass
class Fp4BlockBatch:
    """All micro-scaling FP4 blocks of a cache, struct-of-arrays (axis 2)."""

    length: int
    head_dim: int
    fmt: str
    k_values: np.ndarray  # [batch, hkv, n_blocks, N_r, d] fp16
    v_values: np.ndarray
    k_scales: Fp4Params
    v_scales: Fp4Params

    @property
    def batch(self) -> int:
        return self.k_values.shape[0]

    @property
    def hkv(self) -> int:
        return self.k_values.shape[1]

    @property
    def n_blocks(self) -> int:
        return self.k_values.shape[2]

    def extend(self, other: "Fp4BlockBatch") -> "Fp4BlockBatch":
        if (self.length, self.head_dim, self.fmt) != (other.length, other.head_dim, other.fmt):
            raise ValueError("cannot extend with blocks of a different configuration")

        def cat(a: Fp4Params, b: Fp4Params) -> Fp4Params:
            return Fp4Params(
                scale=np.concatenate([a.scale, b.scale], axis=2),
                axis=a.axis,
                block_size=a.block_size,
                fmt=a.fmt,
            )

        return Fp4BlockBatch(
            length=self.length,
            head_dim=self.head_dim,
            fmt=self.fmt,
            k_values=np.concatenate([self.k_values, other.k_values], axis=2),
            v_values=np.concatenate([self.v_values, other.v_values], axis=2),
            k_scales=cat(self.k_scales, other.k_scales),
            v_scales=cat(self.v_scales, other.v_scales),
        )

    def dequant_kv(self, config: BitDecodingConfig) -> Tuple[np.ndarray, np.ndarray]:
        batch, hkv, nb = self.k_values.shape[:3]
        flat = (batch, hkv, nb * self.length, self.head_dim)
        return (
            self.k_values.astype(np.float32).reshape(flat),
            self.v_values.astype(np.float32).reshape(flat),
        )

    @property
    def packed_nbytes(self) -> int:
        # 2 tensors x 4 bits per value, as the per-block accounting.
        return int(self.batch * self.hkv * self.n_blocks * self.length * self.head_dim)

    @property
    def meta_nbytes(self) -> float:
        return self.k_scales.nbytes + self.v_scales.nbytes


#: Per-chunk working-set budget of the chunked flush, in K-or-V values.
#: A chunk touches ~9 bytes per value across its buffers (fp16 source,
#: fp32 affine, uint8 codes, word output + scratch); 512k values keeps
#: that a few MiB — inside the last-level cache on anything current — so
#: the quantize/gather/pack passes stream from cache instead of DRAM.
_FLUSH_CHUNK_VALUES = 512 * 1024


def flush_blocks(
    k_blocks: np.ndarray, v_blocks: np.ndarray, config: BitDecodingConfig
) -> Union[PackedBlockBatch, Fp4BlockBatch]:
    """Quantize + pack a batch of residual blocks, cache-blocked.

    ``k_blocks`` / ``v_blocks`` are ``[batch, hkv, n_blocks, N_r, d]``.
    Because no quantization group and no fragment permutation ever crosses
    a residual-block boundary, the flush is embarrassingly chunkable: the
    blocks are walked in runs sized to :data:`_FLUSH_CHUNK_VALUES` and
    each run does group statistics, affine quantization and the fused
    fragment-gather + word-pack (:func:`repro.core.packing.gather_pack_into`)
    while its working set is still cache-resident, with every intermediate
    buffer reused across chunks.  Bit-exact equivalent of calling
    :func:`flush_block` per (batch, head, block) — the hypothesis sweep in
    ``tests/core/test_vectorized_cache.py`` enforces exactly that.
    """
    k_blocks = np.asarray(k_blocks)
    v_blocks = np.asarray(v_blocks)
    if k_blocks.ndim != 5 or k_blocks.shape != v_blocks.shape:
        raise ValueError("K and V blocks must share a [batch, hkv, n_blocks, N_r, d] shape")
    batch, hkv, nb, n, d = k_blocks.shape

    if config.version == "fp4":
        k_blocks = k_blocks.astype(np.float32, copy=False)
        v_blocks = v_blocks.astype(np.float32, copy=False)
        k_vals, k_scales = quantize_fp4(k_blocks, config.fp4_format, axis=-1)
        v_vals, v_scales = quantize_fp4(v_blocks, config.fp4_format, axis=-1)
        return Fp4BlockBatch(
            length=n,
            head_dim=d,
            fmt=config.fp4_format,
            k_values=k_vals.astype(np.float16),
            v_values=v_vals.astype(np.float16),
            k_scales=k_scales,
            v_scales=v_scales,
        )

    # Group sizes clamp to the block's actual extents, as in flush_block.
    key_axis_len = n if config.granularity == "channel" else d
    key_group = min(config.key_group_size, key_axis_len)
    channel = config.granularity == "channel"
    value_group = min(config.value_group_size, d)
    layout = _kv_fragment_layout(config)
    interleaved = config.dequant_method == "lop3"
    ratio = config.packing_ratio
    n_words = (n * d) // ratio
    word_dtype = _word_dtype(config.word_bits)

    # Everything below works on a flat list of blocks: [batch * hkv * nb,
    # N_r, d] contiguous views in, [rows, n_words] word tensors out, all
    # reshaped back to the batched 5-D layouts at the end (pure views).
    rows = batch * hkv * nb
    k_flat = np.ascontiguousarray(k_blocks).reshape(rows, n, d)
    v_flat = np.ascontiguousarray(v_blocks).reshape(rows, n, d)
    flat_k, _ = block_fragment_offsets(layout, d, n, transposed=True)
    flat_v, _ = block_fragment_offsets(layout, n, d)
    k_words = np.empty((rows, n_words), word_dtype)
    v_words = np.empty((rows, n_words), word_dtype)
    # Raw-layout metadata (group axis in reduction position), filled per
    # chunk, transposed to the public half2 layout once at the end.
    k_scale = np.empty(
        (rows, n // key_group, d) if channel else (rows, n, d // key_group), np.float32
    )
    k_zero = np.empty_like(k_scale)
    v_scale = np.empty((rows, n, d // value_group), np.float32)
    v_zero = np.empty_like(v_scale)

    chunk_rows = max(1, _FLUSH_CHUNK_VALUES // (n * d))
    staged = codes = None
    scratch = None
    for r0 in range(0, rows, chunk_rows):
        r1 = min(r0 + chunk_rows, rows)
        if codes is None or codes.shape[0] != r1 - r0:
            shape = (r1 - r0, n, d)
            # FP32 staging: numpy's half-precision reductions run an order
            # of magnitude slower than float32 ones, so each chunk is cast
            # once while hot instead of reducing fp16 directly.  The staged
            # chunk doubles as the affine workspace (it is dead once the
            # group statistics are reduced), keeping the working set to
            # three chunk-sized buffers.
            staged = np.empty(shape, np.float32)
            codes = np.empty(shape, np.uint8)
            scratch = (
                np.empty((r1 - r0, n_words), np.uint8),
                np.empty((r1 - r0, n_words), word_dtype),
            )
        staged[...] = k_flat[r0:r1]
        _, ks, kz, _ = _quantize_chunk(
            staged, config.bits, 1 if channel else 2, key_group, codes, staged
        )
        k_scale[r0:r1], k_zero[r0:r1] = ks, kz
        gather_pack_into(
            codes.reshape(r1 - r0, n * d),
            flat_k,
            config.bits,
            k_words[r0:r1],
            config.word_bits,
            interleaved,
            scratch,
        )
        staged[...] = v_flat[r0:r1]
        _, vs, vz, _ = _quantize_chunk(staged, config.bits, 2, value_group, codes, staged)
        v_scale[r0:r1], v_zero[r0:r1] = vs, vz
        gather_pack_into(
            codes.reshape(r1 - r0, n * d),
            flat_v,
            config.bits,
            v_words[r0:r1],
            config.word_bits,
            interleaved,
            scratch,
        )

    k_frag_shape = _block_fragment_indices(layout, d, n)[0].shape
    v_frag_shape = _block_fragment_indices(layout, n, d)[0].shape
    lead = (batch, hkv, nb)

    def params(scale: np.ndarray, zero: np.ndarray, axis: int, group: int) -> QuantParams:
        # The 5-D group axis (3 for channel-wise K, 4 otherwise) moves to
        # last, matching what quantize() publishes for the batched tensor.
        full = scale.reshape(*lead, *scale.shape[1:])
        return QuantParams(
            scale=np.ascontiguousarray(np.moveaxis(full, axis, -1)),
            zero=np.ascontiguousarray(np.moveaxis(zero.reshape(full.shape), axis, -1)),
            axis=axis,
            group_size=group,
            bits=config.bits,
        )

    return PackedBlockBatch(
        length=n,
        head_dim=d,
        bits=config.bits,
        word_bits=config.word_bits,
        layout_name=layout.name,
        k_words=k_words.reshape(*lead, *k_frag_shape[:-1], k_frag_shape[-1] // ratio),
        v_words=v_words.reshape(*lead, *v_frag_shape[:-1], v_frag_shape[-1] // ratio),
        k_params=params(k_scale, k_zero, 3 if channel else 4, key_group),
        v_params=params(v_scale, v_zero, 4, value_group),
    )


def attend_residual(
    q_grouped: np.ndarray,
    k_res: np.ndarray,
    v_res: np.ndarray,
    config: BitDecodingConfig,
    scale: Optional[float] = None,
) -> OnlineSoftmaxState:
    """Attention of grouped queries over the FP16 residual rows.

    ``q_grouped``: ``(..., M, d)``; ``k_res``/``v_res``: ``(..., res_len, d)``.
    Leading dims (if any) are independent (batch, kv-head) problems — the
    vectorized cache passes ``[batch, hkv, M, d]`` queries so every head's
    residual attention runs in one batched update.  Returns the partial
    online-softmax state, merged by the caller with the Packing Kernel's
    state.
    """
    q_grouped = np.asarray(q_grouped, dtype=np.float32)
    k_res = np.asarray(k_res, dtype=np.float32)
    v_res = np.asarray(v_res, dtype=np.float32)
    if scale is None:
        scale = 1.0 / math.sqrt(q_grouped.shape[-1])
    state = OnlineSoftmaxState.fresh(
        q_grouped.shape[-2], v_res.shape[-1], leading=q_grouped.shape[:-2]
    )
    if k_res.shape[-2] == 0:
        return state
    s = (q_grouped @ np.swapaxes(k_res, -1, -2)) * scale
    # Pad the partial residual to the warp split (-inf scores / zero rows),
    # exactly as the kernel pads its warp tiles.
    wn = config.effective_wn
    s, v_tile = pad_tail(s, v_res, wn)
    tile_softmax_split(state, s, v_tile, wn, cooperative=config.use_coop_softmax)
    return state


def attend_residual_grouped(
    q_grouped: np.ndarray,
    k_res: np.ndarray,
    v_res: np.ndarray,
    res_lens: np.ndarray,
    config: BitDecodingConfig,
    scale: Optional[float] = None,
) -> OnlineSoftmaxState:
    """Residual attention for a ragged shape group, padded bit-exactly.

    ``q_grouped`` is ``[G, hkv, M, d]``; ``k_res``/``v_res`` are
    ``[G, hkv, r_max, d]`` where member ``g`` owns rows ``[0, res_lens[g])``
    and the tail rows are zero padding.  The padding contract is
    tolerance-free: the result is bit-identical to running
    :func:`attend_residual` per member on its unpadded rows, because

    - each member's score rows are computed by a matmul over exactly its
      ``res_lens[g]`` keys (a wider padded GEMM routes through a different
      BLAS kernel and drifts in the last bit), with pad columns then set to
      ``-inf`` so ``exp`` maps them to exact ``0.0`` and the zero value
      rows contribute exact zeros to the PV accumulation, and
    - the softmax denominator is summed per member over exactly the
      warp-padded width the per-sequence kernel uses
      (``ceil(r_g / wn) * wn`` columns), reproducing its summation tree —
      a shared full-width sum would regroup numpy's pairwise reduction and
      drift in the last bit.

    Only the cooperative softmax (or ``wn == 1``) admits ragged padding:
    the broken non-cooperative path is partition-sensitive by design, so
    callers must group such configs by exact residual fill instead.
    """
    res_lens = np.asarray(res_lens, dtype=np.int64)
    r_max = k_res.shape[-2]
    if r_max == 0 or np.all(res_lens == r_max):
        return attend_residual(q_grouped, k_res, v_res, config, scale)
    if not (config.use_coop_softmax or config.effective_wn == 1):
        raise ValueError(
            "ragged residual grouping requires the cooperative softmax; "
            "group by exact residual fill for non-cooperative configs"
        )
    q_grouped = np.asarray(q_grouped, dtype=np.float32)
    k_res = np.asarray(k_res, dtype=np.float32)
    v_res = np.asarray(v_res, dtype=np.float32)
    if scale is None:
        scale = 1.0 / math.sqrt(q_grouped.shape[-1])
    wn = config.effective_wn
    n_pad = -(-r_max // wn) * wn
    G, hkv = k_res.shape[0], k_res.shape[1]
    M = q_grouped.shape[-2]
    d = v_res.shape[-1]
    # Per-member QK^T at each member's true width (bit-exactness; see
    # docstring) — residual tiles are at most ``N_r`` keys, so this loop is
    # negligible next to the grouped packed-cache matmul.
    s = np.full((G, hkv, M, n_pad), -np.inf, dtype=np.float32)
    v_tile = np.zeros((G, hkv, n_pad, d), dtype=np.float32)
    v_tile[..., :r_max, :] = v_res
    for g, r in enumerate(res_lens.tolist()):
        if r:
            s[g, ..., :r] = (q_grouped[g] @ np.swapaxes(k_res[g, :, :r], -1, -2)) * scale
            v_tile[g, :, r:] = 0.0
    m = s.max(axis=-1)
    p = np.exp(s - np.where(np.isfinite(m), m, 0.0)[..., None])
    # ``+ 0.0`` mirrors the fresh-state ``0 * correction + …`` update so
    # even signed zeros match the per-sequence path.
    acc = p @ v_tile + 0.0
    lens = np.zeros(m.shape, dtype=np.float32)
    for g, r in enumerate(res_lens.tolist()):
        if r == 0:
            continue  # fresh-state identity: m=-inf, l=0, acc=0
        n_g = min(-(-r // wn) * wn, n_pad)
        lens[g] = p[g, ..., :n_g].sum(axis=-1) + 0.0
    return OnlineSoftmaxState(m=m, l=lens, acc=acc)


# ---------------------------------------------------------------------------
# Trace builders (performance model)
# ---------------------------------------------------------------------------


def build_residual_launch(
    geom: AttentionGeometry,
    config: BitDecodingConfig,
    arch: ArchSpec,
    res_len: Optional[int] = None,
    flush: bool = False,
) -> KernelLaunch:
    """Performance trace of one Residual-Kernel launch.

    Covers attention over ``res_len`` FP16 tokens per (batch, kv-head) and,
    when ``flush`` is set, the fused quantize+pack of the completed block.
    """
    nr = config.residual_block_size
    if res_len is None:
        res_len = nr
    if not 0 < res_len <= nr:
        raise ValueError(f"res_len must be in (0, {nr}], got {res_len}")
    d = geom.head_dim
    _, m_pad = gemm_m_dimension(geom.hq, geom.hkv, geom.q_len)
    heads = geom.batch * geom.hkv

    trace = OpTrace()
    # FP16 residual K/V rows + grouped Q per head.
    trace.gmem_read(heads * 2.0 * res_len * d * 2.0)
    trace.gmem_read(heads * m_pad * d * 2.0)
    # Partial-state output for the merge with the Packing Kernel.
    trace.gmem_write(heads * m_pad * (d + 2.0) * 4.0)
    # QK^T + PV on tensor cores over the residual rows.
    trace.tensor_core(heads * 2.0 * 2.0 * m_pad * res_len * d, "fp16")
    trace.merge(softmax_ops(heads * m_pad * res_len, heads * m_pad, config.effective_wn))
    trace.merge(rescale_accum_ops(heads * m_pad * d))
    # Staged tiles through shared memory (in + ldmatrix out).
    trace.smem_traffic(heads * 2.0 * (2.0 * res_len * d * 2.0 + m_pad * d * 2.0))
    trace.barriers_per_block += 2.0

    subtraces = {}
    if flush:
        n_values = heads * 2.0 * nr * d
        group = (
            config.key_group_size
            if config.version != "fp4"
            else (32 if config.fp4_format == "mxfp4" else 16)
        )
        quant = quant_pack_ops(n_values, 4 if config.version == "fp4" else config.bits, group)
        packed_bytes = heads * 2.0 * nr * d * config.storage_bits_per_value / 8.0
        meta_bytes = _meta_bytes(heads, nr, d, config)
        quant.gmem_write(packed_bytes + meta_bytes)
        trace.merge(quant)
        subtraces["quant_pack"] = quant

    warp_layout = WarpLayout(wm=config.wm, wn=config.effective_wn)
    # Residual rows are processed in tile_n-wide chunks like any other tile.
    stage_rows = min(nr, config.tile_n)
    smem = 2 * stage_rows * d * 2 + m_pad * d * 2 + 4096
    # The residual path is FP16 (no dequant in the hot loop); overlap is
    # governed by occupancy and the async-copy pipeline.
    hide = memory_hide_factor(2.0 * warp_layout.warps_per_block, pipelined=config.use_pipeline)
    return KernelLaunch(
        name="residual_kernel",
        trace=trace,
        grid_blocks=heads,
        warps_per_block=warp_layout.warps_per_block,
        smem_per_block_bytes=smem,
        hide_factor=hide,
        instruction_path=config.instruction_path,
        launches=1,
        subtraces=subtraces,
    )


def _meta_bytes(heads: float, n_tokens: float, d: float, config: BitDecodingConfig) -> float:
    """Metadata bytes (scale/zero or block scales) for ``n_tokens`` per head."""
    if config.version == "fp4":
        block = 32 if config.fp4_format == "mxfp4" else 16
        return heads * 2.0 * n_tokens * d / block
    if config.granularity == "channel":
        k_meta = heads * d * (n_tokens / config.key_group_size) * 4.0
    else:
        k_meta = heads * n_tokens * (d / config.key_group_size) * 4.0
    v_meta = heads * n_tokens * (d / config.value_group_size) * 4.0
    return k_meta + v_meta


def build_prefill_quant_launch(
    geom: AttentionGeometry, config: BitDecodingConfig, arch: ArchSpec
) -> KernelLaunch:
    """Trace of quantizing+packing a whole prefill context (Table II).

    BitDecoding fuses this into the prefill attention epilogue: the KV tiles
    are already in registers, so the only extra work is the quantization
    math and the packed-cache writes — no separate transform pass.
    """
    nr = config.residual_block_size
    packed_tokens = geom.seq_len - (geom.seq_len % nr)
    heads = geom.batch * geom.hkv
    d = geom.head_dim
    n_values = heads * 2.0 * packed_tokens * d

    trace = quant_pack_ops(n_values, config.bits, config.key_group_size)
    packed_bytes = n_values * config.storage_bits_per_value / 8.0
    trace.gmem_write(packed_bytes + _meta_bytes(heads, packed_tokens, d, config))

    warp_layout = WarpLayout(wm=config.wm, wn=config.effective_wn)
    return KernelLaunch(
        name="prefill_quant_fused",
        trace=trace,
        grid_blocks=max(1, heads * max(1, packed_tokens // config.tile_n)),
        warps_per_block=warp_layout.warps_per_block,
        smem_per_block_bytes=16 * 1024,
        hide_factor=1.0,
        instruction_path=config.instruction_path,
        launches=1,
    )
