"""The Residual Kernel: fused compute + quantization + packing (Sec. V-B).

Per decode step the kernel (i) computes attention over the FP16 residual
KV cache and (ii) — on the step where the residual fills to ``N_r`` — fuses
quantization and packing of the completed block into the low-bit cache,
entirely in registers:

- thread-level min/max for the group statistics, reduced across the warp
  with ``__shfl_xor_sync`` butterflies (plus a small shared buffer when
  ``W_n > 1``),
- in-register affine quantization,
- thread-local packing in *fragment order* (layout induction, Fig. 5), so
  the stored words are already what the Packing Kernel's ``ldmatrix``
  expects.

Numerics here are bit-exact: :func:`flush_block` really quantizes and packs
through the fragment permutation; the Packing Kernel really unpacks the
words.  Trace builders mirror the same work for the performance model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.layouts import (
    MMA_M16N8K16_B,
    FragmentLayout,
    block_fragment_pack,
    block_fragment_unpack,
    tiled_layout,
)
from repro.core.quantization import (
    Fp4Params,
    QuantParams,
    QuantScheme,
    dequantize,
    quantize_fp4,
    quantize_key,
    quantize_value,
)
from repro.core.query_transform import gemm_m_dimension
from repro.core.softmax import OnlineSoftmaxState, tile_softmax_split
from repro.gpu.arch import ArchSpec
from repro.gpu.instructions import quant_pack_ops, rescale_accum_ops, softmax_ops
from repro.gpu.kernel import KernelLaunch
from repro.gpu.trace import OpTrace
from repro.gpu.warp import WarpLayout, memory_hide_factor


def _kv_fragment_layout(config: BitDecodingConfig) -> FragmentLayout:
    """Fragment layout (with N-repeat) whose lane load fills whole words.

    A lane of ``mma.m16n8k16.B`` holds 4 values; bit widths whose packing
    ratio exceeds 4 need repeat tiling along N (Fig. 3a) so each lane packs
    complete words.
    """
    base = MMA_M16N8K16_B
    ratio = config.packing_ratio
    repeat = max(1, math.ceil(ratio / base.values_per_lane))
    return tiled_layout(base, repeat) if repeat > 1 else base


@dataclass
class PackedBlock:
    """One quantized+packed residual block of the low-bit KV cache.

    ``k_words`` is packed in (d, seq) orientation — K is the B operand of
    ``Q K^T`` whose contraction dimension is ``d`` — while ``v_words`` is
    packed in (seq, d) orientation for the ``P V`` MMA.
    """

    length: int
    head_dim: int
    bits: int
    word_bits: int
    layout_name: str
    k_words: np.ndarray
    v_words: np.ndarray
    k_params: QuantParams
    v_params: QuantParams

    def dequant_kv(self, config: BitDecodingConfig) -> Tuple[np.ndarray, np.ndarray]:
        """Unpack + dequantize this block back to FP32 ``(length, d)`` pairs."""
        layout = _kv_fragment_layout(config)
        if layout.name != self.layout_name:
            raise ValueError(
                "Packing Kernel instruction configuration "
                f"({layout.name}) does not match the Residual Kernel's "
                f"({self.layout_name}); Sec. IV-A(4) requires them identical"
            )
        k_codes = block_fragment_unpack(
            self.k_words, (self.head_dim, self.length), layout, self.bits, self.word_bits
        )
        v_codes = block_fragment_unpack(
            self.v_words, (self.length, self.head_dim), layout, self.bits, self.word_bits
        )
        k_hat = dequantize(k_codes.T, self.k_params)
        v_hat = dequantize(v_codes, self.v_params)
        return k_hat, v_hat

    @property
    def packed_nbytes(self) -> int:
        return self.k_words.nbytes + self.v_words.nbytes

    @property
    def meta_nbytes(self) -> float:
        return self.k_params.nbytes + self.v_params.nbytes


@dataclass
class Fp4Block:
    """One micro-scaling FP4 block (Blackwell native path).

    Stores the representable (already block-scaled) values the tensor cores
    compute with, plus the per-block scales for byte accounting.
    """

    length: int
    head_dim: int
    fmt: str
    k_values: np.ndarray
    v_values: np.ndarray
    k_scales: Fp4Params
    v_scales: Fp4Params

    def dequant_kv(self, config: BitDecodingConfig) -> Tuple[np.ndarray, np.ndarray]:
        return self.k_values.astype(np.float32), self.v_values.astype(np.float32)

    @property
    def packed_nbytes(self) -> int:
        return int(self.length * self.head_dim)  # 2 tensors x 4 bits

    @property
    def meta_nbytes(self) -> float:
        return self.k_scales.nbytes + self.v_scales.nbytes


def flush_block(
    k_block: np.ndarray, v_block: np.ndarray, config: BitDecodingConfig
):
    """Quantize + pack one full residual block (the fused flush).

    ``k_block`` / ``v_block`` are FP16 ``(N_r, d)``.  Returns a
    :class:`PackedBlock` (integer path) or :class:`Fp4Block` (Blackwell
    native path).
    """
    k_block = np.asarray(k_block, dtype=np.float32)
    v_block = np.asarray(v_block, dtype=np.float32)
    n, d = k_block.shape
    if v_block.shape != (n, d):
        raise ValueError("K and V blocks must share a shape")

    if config.version == "fp4":
        k_vals, k_scales = quantize_fp4(k_block, config.fp4_format, axis=-1)
        v_vals, v_scales = quantize_fp4(v_block, config.fp4_format, axis=-1)
        return Fp4Block(
            length=n,
            head_dim=d,
            fmt=config.fp4_format,
            k_values=k_vals.astype(np.float16),
            v_values=v_vals.astype(np.float16),
            k_scales=k_scales,
            v_scales=v_scales,
        )

    # Group sizes clamp to the block's actual extents: the key group runs
    # along seq (KC) or channels (KT), the value group along channels.
    key_axis_len = n if config.granularity == "channel" else d
    key_scheme = config.key_scheme
    if key_scheme.group_size > key_axis_len:
        key_scheme = QuantScheme(
            bits=key_scheme.bits,
            granularity=key_scheme.granularity,
            group_size=key_axis_len,
        )
    k_codes, k_params = quantize_key(
        k_block, key_scheme, seq_axis=0, channel_axis=1
    )
    v_codes, v_params = quantize_value(
        v_block, config.bits, min(config.value_group_size, d), channel_axis=1
    )
    layout = _kv_fragment_layout(config)
    interleaved = config.dequant_method == "lop3"
    k_words = block_fragment_pack(
        k_codes.T, layout, config.bits, config.word_bits, interleaved=interleaved
    )
    v_words = block_fragment_pack(
        v_codes, layout, config.bits, config.word_bits, interleaved=interleaved
    )
    return PackedBlock(
        length=n,
        head_dim=d,
        bits=config.bits,
        word_bits=config.word_bits,
        layout_name=layout.name,
        k_words=k_words,
        v_words=v_words,
        k_params=k_params,
        v_params=v_params,
    )


def attend_residual(
    q_grouped: np.ndarray,
    k_res: np.ndarray,
    v_res: np.ndarray,
    config: BitDecodingConfig,
    scale: Optional[float] = None,
) -> OnlineSoftmaxState:
    """Attention of grouped queries over the FP16 residual rows.

    ``q_grouped``: ``(M, d)`` for one (batch, kv-head); ``k_res``/``v_res``:
    ``(res_len, d)``.  Returns the partial online-softmax state, merged by
    the caller with the Packing Kernel's state.
    """
    q_grouped = np.asarray(q_grouped, dtype=np.float32)
    k_res = np.asarray(k_res, dtype=np.float32)
    v_res = np.asarray(v_res, dtype=np.float32)
    if scale is None:
        scale = 1.0 / math.sqrt(q_grouped.shape[-1])
    state = OnlineSoftmaxState.fresh(q_grouped.shape[0], v_res.shape[-1])
    if k_res.shape[0] == 0:
        return state
    s = (q_grouped @ k_res.T) * scale
    v_tile = v_res
    # Pad the partial residual to the warp split (-inf scores / zero rows),
    # exactly as the kernel pads its warp tiles.
    wn = config.effective_wn
    remainder = s.shape[-1] % wn
    if remainder:
        pad = wn - remainder
        s = np.concatenate(
            [s, np.full((s.shape[0], pad), -np.inf, dtype=s.dtype)], axis=-1
        )
        v_tile = np.concatenate(
            [v_tile, np.zeros((pad, v_tile.shape[-1]), dtype=v_tile.dtype)], axis=0
        )
    tile_softmax_split(state, s, v_tile, wn, cooperative=config.use_coop_softmax)
    return state


# ---------------------------------------------------------------------------
# Trace builders (performance model)
# ---------------------------------------------------------------------------


def build_residual_launch(
    geom: AttentionGeometry,
    config: BitDecodingConfig,
    arch: ArchSpec,
    res_len: Optional[int] = None,
    flush: bool = False,
) -> KernelLaunch:
    """Performance trace of one Residual-Kernel launch.

    Covers attention over ``res_len`` FP16 tokens per (batch, kv-head) and,
    when ``flush`` is set, the fused quantize+pack of the completed block.
    """
    nr = config.residual_block_size
    if res_len is None:
        res_len = nr
    if not 0 < res_len <= nr:
        raise ValueError(f"res_len must be in (0, {nr}], got {res_len}")
    d = geom.head_dim
    _, m_pad = gemm_m_dimension(geom.hq, geom.hkv, geom.q_len)
    heads = geom.batch * geom.hkv

    trace = OpTrace()
    # FP16 residual K/V rows + grouped Q per head.
    trace.gmem_read(heads * 2.0 * res_len * d * 2.0)
    trace.gmem_read(heads * m_pad * d * 2.0)
    # Partial-state output for the merge with the Packing Kernel.
    trace.gmem_write(heads * m_pad * (d + 2.0) * 4.0)
    # QK^T + PV on tensor cores over the residual rows.
    trace.tensor_core(heads * 2.0 * 2.0 * m_pad * res_len * d, "fp16")
    trace.merge(softmax_ops(heads * m_pad * res_len, heads * m_pad, config.effective_wn))
    trace.merge(rescale_accum_ops(heads * m_pad * d))
    # Staged tiles through shared memory (in + ldmatrix out).
    trace.smem_traffic(heads * 2.0 * (2.0 * res_len * d * 2.0 + m_pad * d * 2.0))
    trace.barriers_per_block += 2.0

    subtraces = {}
    if flush:
        n_values = heads * 2.0 * nr * d
        group = (
            config.key_group_size
            if config.version != "fp4"
            else (32 if config.fp4_format == "mxfp4" else 16)
        )
        quant = quant_pack_ops(n_values, 4 if config.version == "fp4" else config.bits, group)
        packed_bytes = heads * 2.0 * nr * d * config.storage_bits_per_value / 8.0
        meta_bytes = _meta_bytes(heads, nr, d, config)
        quant.gmem_write(packed_bytes + meta_bytes)
        trace.merge(quant)
        subtraces["quant_pack"] = quant

    warp_layout = WarpLayout(wm=config.wm, wn=config.effective_wn)
    # Residual rows are processed in tile_n-wide chunks like any other tile.
    stage_rows = min(nr, config.tile_n)
    smem = 2 * stage_rows * d * 2 + m_pad * d * 2 + 4096
    # The residual path is FP16 (no dequant in the hot loop); overlap is
    # governed by occupancy and the async-copy pipeline.
    hide = memory_hide_factor(
        2.0 * warp_layout.warps_per_block, pipelined=config.use_pipeline
    )
    return KernelLaunch(
        name="residual_kernel",
        trace=trace,
        grid_blocks=heads,
        warps_per_block=warp_layout.warps_per_block,
        smem_per_block_bytes=smem,
        hide_factor=hide,
        instruction_path=config.instruction_path,
        launches=1,
        subtraces=subtraces,
    )


def _meta_bytes(
    heads: float, n_tokens: float, d: float, config: BitDecodingConfig
) -> float:
    """Metadata bytes (scale/zero or block scales) for ``n_tokens`` per head."""
    if config.version == "fp4":
        block = 32 if config.fp4_format == "mxfp4" else 16
        return heads * 2.0 * n_tokens * d / block
    if config.granularity == "channel":
        k_meta = heads * d * (n_tokens / config.key_group_size) * 4.0
    else:
        k_meta = heads * n_tokens * (d / config.key_group_size) * 4.0
    v_meta = heads * n_tokens * (d / config.value_group_size) * 4.0
    return k_meta + v_meta


def build_prefill_quant_launch(
    geom: AttentionGeometry, config: BitDecodingConfig, arch: ArchSpec
) -> KernelLaunch:
    """Trace of quantizing+packing a whole prefill context (Table II).

    BitDecoding fuses this into the prefill attention epilogue: the KV tiles
    are already in registers, so the only extra work is the quantization
    math and the packed-cache writes — no separate transform pass.
    """
    nr = config.residual_block_size
    packed_tokens = geom.seq_len - (geom.seq_len % nr)
    heads = geom.batch * geom.hkv
    d = geom.head_dim
    n_values = heads * 2.0 * packed_tokens * d

    trace = quant_pack_ops(n_values, config.bits, config.key_group_size)
    packed_bytes = n_values * config.storage_bits_per_value / 8.0
    trace.gmem_write(packed_bytes + _meta_bytes(heads, packed_tokens, d, config))

    warp_layout = WarpLayout(wm=config.wm, wn=config.effective_wn)
    return KernelLaunch(
        name="prefill_quant_fused",
        trace=trace,
        grid_blocks=max(1, heads * max(1, packed_tokens // config.tile_n)),
        warps_per_block=warp_layout.warps_per_block,
        smem_per_block_bytes=16 * 1024,
        hide_factor=1.0,
        instruction_path=config.instruction_path,
        launches=1,
    )
