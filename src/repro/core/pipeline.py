"""Software-pipeline model (Fig. 7 right).

The Packing Kernel's inner loop is a producer/consumer pipeline over KV
tiles:

====================  =============================  ==================
stage                 hardware                       overlaps with
====================  =============================  ==================
``load``              ``cp.async`` / TMA (gmem)      everything
``ldmatrix+dequant``  LSU + CUDA cores               MMA of prior tile
``mma``               Tensor Cores                   load of next tile
``softmax``           CUDA cores (SFU/FMA)           MMA / loads
====================  =============================  ==================

This module provides an explicit steady-state pipeline calculator used for
analysis and tests: with the pipeline enabled the per-tile time approaches
the slowest stage; disabled, stages serialize.  The kernel-level time model
(:mod:`repro.gpu.kernel`) captures the same effect through its hide factor;
keeping the explicit stage model separate lets tests validate the overlap
algebra directly and benchmarks explain *why* a configuration stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class PipelineStage:
    """One stage of the tile pipeline."""

    name: str
    time_per_tile: float
    #: Resource class; stages on the same resource cannot overlap each
    #: other even across loop iterations.
    resource: str


@dataclass(frozen=True)
class PipelineTiming:
    """Steady-state timing of a tile pipeline."""

    per_tile_time: float
    fill_time: float
    n_tiles: int
    bottleneck: str

    @property
    def total_time(self) -> float:
        if self.n_tiles <= 0:
            return 0.0
        return self.fill_time + self.per_tile_time * self.n_tiles


def schedule(
    stages: Sequence[PipelineStage],
    n_tiles: int,
    pipelined: bool = True,
    parallel_streams: int = 1,
) -> PipelineTiming:
    """Steady-state pipeline timing over ``n_tiles`` iterations.

    ``pipelined=False`` serializes all stages per tile (no double
    buffering, no async copies).  ``parallel_streams`` models independent
    warps along N: a resource's effective serialization shrinks when
    several streams interleave on it (the SM scheduler hides one stream's
    stage under another's) — up to the point where a resource saturates.
    """
    if n_tiles < 0:
        raise ValueError("n_tiles must be non-negative")
    if parallel_streams < 1:
        raise ValueError("parallel_streams must be >= 1")
    if not stages:
        raise ValueError("pipeline needs at least one stage")

    if not pipelined:
        per_tile = sum(s.time_per_tile for s in stages) / parallel_streams
        # Without overlap the serialized chain *is* the critical path, but a
        # resource can never go faster than its own busy time.
        busiest = _busiest_resource(stages)
        per_tile = max(per_tile, busiest[1])
        return PipelineTiming(
            per_tile_time=per_tile, fill_time=0.0, n_tiles=n_tiles, bottleneck=busiest[0]
        )

    # Pipelined: steady-state per-tile time is the busiest *resource*
    # (stages sharing a resource add up); the fill is one pass through the
    # remaining stages.
    name, busy = _busiest_resource(stages)
    fill = sum(s.time_per_tile for s in stages) - busy
    return PipelineTiming(
        per_tile_time=busy, fill_time=max(0.0, fill), n_tiles=n_tiles, bottleneck=name
    )


def _busiest_resource(stages: Sequence[PipelineStage]) -> tuple:
    by_resource: Dict[str, float] = {}
    for s in stages:
        if s.time_per_tile < 0:
            raise ValueError(f"stage {s.name} has negative time")
        by_resource[s.resource] = by_resource.get(s.resource, 0.0) + s.time_per_tile
    name = max(by_resource, key=by_resource.get)
    return name, by_resource[name]


def packing_kernel_stages(
    load_time: float, dequant_time: float, mma_time: float, softmax_time: float
) -> List[PipelineStage]:
    """The Packing Kernel's canonical four-stage tile pipeline."""
    return [
        PipelineStage("load", load_time, "memory"),
        PipelineStage("dequant", dequant_time, "cuda_cores"),
        PipelineStage("mma", mma_time, "tensor_cores"),
        PipelineStage("softmax", softmax_time, "cuda_cores"),
    ]
