"""Query transformation for attention variants (paper Sec. V-A).

During decode the query has length 1, so a naive ``Q @ K^T`` per query head
is a GEMV that underfills Tensor-Core tiles.  Modern models share each KV
head across ``g_q = h_q / h_kv`` query heads (GQA/MQA); BitDecoding reshapes
the query from ``[q_len, (g_q, h_kv)]`` to ``[g_q, h_kv]`` so that the
``g_q`` grouped query heads form the M dimension of one larger GEMM against
their shared KV head — without changing attention semantics.

The transform is a pure reshape/transpose; :func:`ungroup_output` is its
exact inverse on the attention output.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def group_queries(q: np.ndarray, hkv: int) -> np.ndarray:
    """Reshape decode queries ``[batch, q_len, hq, d]`` to grouped form.

    Returns ``[batch, hkv, q_len * gq, d]``: for every KV head, the
    ``q_len * gq`` rows that attend against it, stacked as a GEMM M
    dimension.  Query head ``h`` attends to KV head ``h // gq`` (the
    standard GQA convention: consecutive query heads share a KV head).
    """
    q = np.asarray(q)
    if q.ndim != 4:
        raise ValueError(f"expected q of rank 4 [batch, q_len, hq, d], got {q.shape}")
    batch, q_len, hq, d = q.shape
    if hq % hkv != 0:
        raise ValueError(f"hq ({hq}) must be a multiple of hkv ({hkv})")
    gq = hq // hkv
    # [b, q_len, hkv, gq, d] -> [b, hkv, q_len, gq, d] -> [b, hkv, q_len*gq, d]
    grouped = q.reshape(batch, q_len, hkv, gq, d)
    grouped = grouped.transpose(0, 2, 1, 3, 4)
    return grouped.reshape(batch, hkv, q_len * gq, d)


def ungroup_output(out: np.ndarray, hq: int, q_len: int = 1) -> np.ndarray:
    """Inverse transform: ``[batch, hkv, q_len*gq, d] -> [batch, q_len, hq, d]``."""
    out = np.asarray(out)
    if out.ndim != 4:
        raise ValueError(f"expected grouped output of rank 4 [batch, hkv, m, d], got {out.shape}")
    batch, hkv, m, d = out.shape
    if hq % hkv != 0:
        raise ValueError(f"hq ({hq}) must be a multiple of hkv ({hkv})")
    gq = hq // hkv
    if m != q_len * gq:
        raise ValueError(f"grouped M ({m}) != q_len*gq ({q_len * gq})")
    restored = out.reshape(batch, hkv, q_len, gq, d)
    restored = restored.transpose(0, 2, 1, 3, 4)
    return restored.reshape(batch, q_len, hkv * gq, d)


def gemm_m_dimension(hq: int, hkv: int, q_len: int = 1, pad_to: int = 16) -> Tuple[int, int]:
    """(effective M, padded M) of the grouped GEMM.

    ``pad_to`` reflects the MMA tile granularity along M (16 rows for
    ``mma.m16n8k16``); padding rows are zero work semantically but occupy
    the fragment, so kernels account tile-padded FLOPs.
    """
    if hq % hkv != 0:
        raise ValueError(f"hq ({hq}) must be a multiple of hkv ({hkv})")
    m = (hq // hkv) * q_len
    padded = ((m + pad_to - 1) // pad_to) * pad_to
    return m, padded
