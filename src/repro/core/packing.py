"""Low-level bit packing and unpacking.

BitDecoding stores a quantized KV cache as ``beta``-bit unsigned integers
packed into ``omega``-bit storage words (Sec. IV-A(2)); the *packing ratio*
is ``R = omega / beta``.  This module implements the packing arithmetic on
numpy arrays, including the ``75316420`` interleaved nibble order that makes
the ``lop3``-based fast dequantization possible (Sec. IV-A(3)).

Conventions
-----------
- Quantized values are unsigned codes in ``[0, 2**bits)``.
- ``pack_values`` packs along the last axis; the number of values must be a
  multiple of the packing ratio (callers pad tiles to Tensor-Core-aligned
  sizes, which guarantees this — that is exactly what Eq. 1's residual block
  sizing is for).
- Value ``j`` of a word lands in bit-field ``j`` ("linear" order) or in
  field ``INTERLEAVE_75316420[j]`` ("interleaved" order).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Bit widths the cache supports.
SUPPORTED_BITS = (1, 2, 4, 8)
#: Storage word widths.
SUPPORTED_WORD_BITS = (8, 16, 32)

#: The paper's interleaved in-word order: logical value ``j`` is stored in
#: physical bit-field ``INTERLEAVE_75316420[j]``.  With this order, one
#: ``lop3`` mask extracts the even logical values and one the odd values as
#: two adjacent half-words, which is what the fast INT->FP16 trick needs.
INTERLEAVE_75316420: Tuple[int, ...] = (0, 2, 4, 6, 1, 3, 5, 7)


def _word_dtype(word_bits: int) -> np.dtype:
    if word_bits == 8:
        return np.dtype(np.uint8)
    if word_bits == 16:
        return np.dtype(np.uint16)
    if word_bits == 32:
        return np.dtype(np.uint32)
    raise ValueError(f"unsupported word width {word_bits}; use one of {SUPPORTED_WORD_BITS}")


def packing_ratio(bits: int, word_bits: int = 16) -> int:
    """Values per storage word, ``R = omega / beta`` (Sec. IV-A(2))."""
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"unsupported bit width {bits}; use one of {SUPPORTED_BITS}")
    if word_bits not in SUPPORTED_WORD_BITS:
        raise ValueError(f"unsupported word width {word_bits}; use one of {SUPPORTED_WORD_BITS}")
    if word_bits < bits:
        raise ValueError("word width must be at least the value width")
    return word_bits // bits


def _field_order(ratio: int, interleaved: bool) -> np.ndarray:
    """Physical field index for each logical value position within a word.

    The interleaved order places the first half of the logical values in the
    even physical fields and the second half in the odd fields; for a ratio
    of 8 this is exactly :data:`INTERLEAVE_75316420`.  For other ratios
    (e.g. INT2 in 32-bit words) the same even/odd construction generalizes
    while preserving the one-mask-per-half extraction property.
    """
    if not interleaved:
        return np.arange(ratio)
    if ratio < 2 or ratio % 2 != 0:
        return np.arange(ratio)
    half = ratio // 2
    order = np.empty(ratio, dtype=np.int64)
    order[:half] = np.arange(0, ratio, 2)
    order[half:] = np.arange(1, ratio, 2)
    return order


def pack_values(
    values: np.ndarray,
    bits: int,
    word_bits: int = 16,
    interleaved: bool = False,
) -> np.ndarray:
    """Pack unsigned ``bits``-wide codes into storage words.

    ``values`` may have any shape; packing collapses the last axis by the
    packing ratio.  Raises when the last axis is not a multiple of the ratio
    or when any code is out of range.
    """
    ratio = packing_ratio(bits, word_bits)
    values = np.asarray(values)
    if values.shape[-1] % ratio != 0:
        raise ValueError(
            f"last axis ({values.shape[-1]}) must be a multiple of the "
            f"packing ratio ({ratio})"
        )
    if values.size and (values.min() < 0 or values.max() >= (1 << bits)):
        raise ValueError(f"values out of range for {bits}-bit codes")

    dtype = _word_dtype(word_bits)
    # Shift and OR in the storage word's own width: every code shifted by
    # its field offset stays below 2**word_bits by construction, so the
    # narrow arithmetic is exact and the temporaries are word-sized.
    # (This is the seed packing arithmetic, deliberately left as-is: the
    # per-block reference cache and the hot-path benchmark baseline both
    # run through it.  The batched flush packs through the faster
    # :func:`gather_pack_into`, which is unit-tested bit-equal to it.)
    grouped = values.astype(dtype).reshape(*values.shape[:-1], -1, ratio)
    fields = _field_order(ratio, interleaved)
    shifts = (fields * bits).astype(dtype)
    return np.bitwise_or.reduce(grouped << shifts, axis=-1)


def gather_pack_into(
    codes_flat: np.ndarray,
    flat_index: np.ndarray,
    bits: int,
    out: np.ndarray,
    word_bits: int = 16,
    interleaved: bool = False,
    scratch: Tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Fused fragment gather + word pack: ``pack_values(take(codes))``.

    ``codes_flat`` is ``(..., n_values)`` uint8 codes (assumed in-range —
    the quantizer's clip guarantees it), ``flat_index`` the fragment-order
    gather offsets into the last axis (``block_fragment_offsets``), and
    ``out`` a preallocated ``(..., n_values // R)`` word tensor.  Instead
    of materializing the full fragment-ordered code tensor and then
    packing it, each of the ``R`` word fields is gathered and OR-merged
    directly into ``out`` — the temporaries are word-count sized, which
    is what keeps the chunked prefill flush inside the cache.

    ``scratch`` optionally supplies reusable ``(uint8, word)`` buffers of
    ``out``'s shape.  Returns ``out``.  Bit-identical to the unfused
    ``pack_values(np.take(codes_flat, flat_index, axis=-1), ...)``.
    """
    ratio = packing_ratio(bits, word_bits)
    dtype = _word_dtype(word_bits)
    if flat_index.size % ratio != 0:
        raise ValueError("flat_index length must be a multiple of the packing ratio")
    if out.shape != (*codes_flat.shape[:-1], flat_index.size // ratio) or out.dtype != dtype:
        raise ValueError("out must be a word tensor of the packed shape")
    if scratch is None:
        scratch = (np.empty(out.shape, np.uint8), np.empty(out.shape, dtype))
    taken, shifted = scratch
    fields = _field_order(ratio, interleaved)
    for j in range(ratio):
        # Word w is fed by fragment positions w*R + j; slicing the offsets
        # by stride R turns the scatter into R word-sized gathers.
        np.take(codes_flat, flat_index[j::ratio], axis=-1, out=taken)
        shift = dtype.type(int(fields[j]) * bits)
        if j == 0:
            np.left_shift(taken, shift, out=out, dtype=dtype)
        else:
            np.left_shift(taken, shift, out=shifted, dtype=dtype)
            np.bitwise_or(out, shifted, out=out)
    return out


def unpack_values(
    words: np.ndarray,
    bits: int,
    word_bits: int = 16,
    interleaved: bool = False,
) -> np.ndarray:
    """Inverse of :func:`pack_values`; expands the last axis by the ratio."""
    ratio = packing_ratio(bits, word_bits)
    dtype = _word_dtype(word_bits)
    words = np.asarray(words).astype(dtype, copy=False)
    fields = _field_order(ratio, interleaved)
    mask = dtype.type((1 << bits) - 1)
    shifts = (fields * bits).astype(dtype)
    out = ((words[..., None] >> shifts) & mask).astype(np.uint8)
    return out.reshape(*words.shape[:-1], -1)


def fast_parity_extract(
    words: np.ndarray, bits: int, word_bits: int = 16
) -> Tuple[np.ndarray, np.ndarray]:
    """Emulate the lop3 fast path on interleaved-packed words.

    Returns ``(first_half, second_half)``: logical values ``0..R/2-1`` and
    ``R/2..R-1``, each half obtained with a *single mask per field pair* —
    the software analogue of the ``lop3``-based extraction enabled by the
    ``75316420`` layout, where the first half of the values sits in the even
    physical fields and the second half in the odd fields.  Only meaningful
    for words packed with ``interleaved=True``.
    """
    ratio = packing_ratio(bits, word_bits)
    words = np.asarray(words).astype(np.uint32)
    half = ratio // 2
    mask = np.uint32((1 << bits) - 1)
    span = np.uint32(2 * bits)
    first = np.empty(words.shape + (half,), dtype=np.uint8)
    second = np.empty(words.shape + (half,), dtype=np.uint8)
    for j in range(half):
        first[..., j] = (words >> (span * np.uint32(j))) & mask
        second[..., j] = (words >> (span * np.uint32(j) + np.uint32(bits))) & mask
    return first, second


def packed_nbytes(n_values: int, bits: int, word_bits: int = 16) -> int:
    """Storage bytes for ``n_values`` codes (must divide the ratio evenly)."""
    ratio = packing_ratio(bits, word_bits)
    if n_values % ratio != 0:
        raise ValueError("n_values must be a multiple of the packing ratio")
    return (n_values // ratio) * (word_bits // 8)
