"""Online softmax and the multi-warp cooperative softmax (Algorithm 1).

FlashAttention keeps, per query row, a running maximum ``m``, a running
denominator ``l`` and an unnormalized accumulator ``O``; each KV tile
updates the three.  BitDecoding's wide warp layout (``Wn > 1``) splits every
score tile across warps along N, so the row maximum is no longer visible to
a single warp: Algorithm 1 adds a cross-warp reduction through the shared
``sTMP`` buffer, and stages ``P`` through ``sAcc`` so the PV MMA reads a
layout-aligned tile.

Omitting the cross-warp reduction while keeping ``Wn > 1`` is *numerically
wrong* — each warp exponentiates against its own local maximum, so the
staged ``P`` mixes incompatible scales.  Table III shows exactly this
(``Valid = x``); :func:`tile_softmax_split` reproduces both behaviours so
the benchmark can demonstrate the invalidity rather than assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


def reference_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, scale: Optional[float] = None
) -> np.ndarray:
    """Dense single-head attention ``softmax(q k^T / sqrt(d)) v`` in FP32."""
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    v = np.asarray(v, dtype=np.float32)
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    s = (q @ k.T) * scale
    s = s - s.max(axis=-1, keepdims=True)
    p = np.exp(s)
    p = p / p.sum(axis=-1, keepdims=True)
    return p @ v


@dataclass
class OnlineSoftmaxState:
    """Per-row running state of the flash-style online softmax.

    ``m``: running maxima ``(..., M)``; ``l``: running denominators
    ``(..., M)``; ``acc``: unnormalized output accumulator ``(..., M, d)``.
    The leading ``...`` dims (if any) are independent problems — the
    vectorized cache runs every ``(batch, kv-head)`` pair through one state.
    """

    m: np.ndarray
    l: np.ndarray
    acc: np.ndarray

    @classmethod
    def fresh(
        cls, n_rows: int, head_dim: int, leading: Tuple[int, ...] = ()
    ) -> "OnlineSoftmaxState":
        return cls(
            m=np.full((*leading, n_rows), -np.inf, dtype=np.float32),
            l=np.zeros((*leading, n_rows), dtype=np.float32),
            acc=np.zeros((*leading, n_rows, head_dim), dtype=np.float32),
        )

    @classmethod
    def from_scores(cls, scores: np.ndarray, values: np.ndarray) -> "OnlineSoftmaxState":
        """Two-pass (fused) softmax over a *complete* score matrix.

        ``scores`` is ``(..., M, L)`` for the whole KV range and ``values``
        ``(..., L, d)``: the row maximum is taken once over all of L, so no
        online rescaling ever happens.  The resulting ``m`` is identical to
        what a tile walk would converge to; ``l`` and ``acc`` differ from
        the tiled update only by floating-point summation order.  The state
        merges with other partial states (residual tail, split-KV) exactly
        like a tiled one.
        """
        scores = np.asarray(scores, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        m = scores.max(axis=-1)
        p = np.exp(scores - np.where(np.isfinite(m), m, 0.0)[..., None])
        return cls(m=m, l=p.sum(axis=-1), acc=p @ values)

    def update(self, scores: np.ndarray, values: np.ndarray) -> None:
        """Fold one tile: ``scores`` is ``(..., M, Tn)``, ``values`` ``(..., Tn, d)``."""
        scores = np.asarray(scores, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        tile_max = scores.max(axis=-1)
        m_new = np.maximum(self.m, tile_max)
        correction = np.exp(self.m - m_new)
        correction = np.where(np.isfinite(correction), correction, 0.0)
        p = np.exp(scores - m_new[..., None])
        self.l = self.l * correction + p.sum(axis=-1)
        self.acc = self.acc * correction[..., None] + p @ values
        self.m = m_new

    def merge(self, other: "OnlineSoftmaxState") -> None:
        """Combine two partial states (split-KV reduction kernel)."""
        m_new = np.maximum(self.m, other.m)
        c_self = np.where(np.isfinite(self.m), np.exp(self.m - m_new), 0.0)
        c_other = np.where(np.isfinite(other.m), np.exp(other.m - m_new), 0.0)
        self.l = self.l * c_self + other.l * c_other
        self.acc = self.acc * c_self[..., None] + other.acc * c_other[..., None]
        self.m = m_new

    def finalize(self) -> np.ndarray:
        """Normalized attention output ``(..., M, d)``."""
        if np.any(self.l <= 0):
            raise ValueError("finalize called with empty softmax state")
        return self.acc / self.l[..., None]


def pad_tail(
    scores: np.ndarray, values: np.ndarray, multiple: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Pad a score tile's last columns (``-inf``) and value rows (zeros).

    Real kernels pad tail tiles to their alignment unit — the warp split
    in the tiled walk, the micro-scaling block on the fused FP4 path.
    ``-inf`` scores contribute nothing to the softmax and zero rows
    nothing to PV, so padding never changes the result.  Returns the
    inputs unchanged when already aligned.
    """
    remainder = scores.shape[-1] % multiple
    if not remainder:
        return scores, values
    pad = multiple - remainder
    scores = np.concatenate(
        [scores, np.full((*scores.shape[:-1], pad), -np.inf, dtype=scores.dtype)], axis=-1
    )
    values = np.concatenate(
        [values, np.zeros((*values.shape[:-2], pad, values.shape[-1]), dtype=values.dtype)],
        axis=-2,
    )
    return scores, values


def tile_softmax_split(
    state: OnlineSoftmaxState,
    scores: np.ndarray,
    values: np.ndarray,
    wn: int,
    cooperative: bool = True,
) -> None:
    """Update ``state`` with a tile processed by ``wn`` warps along N.

    Models Algorithm 1 at warp granularity.  ``scores`` is ``(..., M, Tn)``
    and ``values`` ``(..., Tn, d)``; any leading dims are independent
    (batch, kv-head) problems updated in one shot.  The N axis of
    ``scores`` is partitioned into ``wn`` contiguous warp slices:

    - ``cooperative=True``: warps exchange local row maxima through the
      shared ``sTMP`` buffer before exponentiating; ``P`` slices staged in
      ``sAcc`` then share one scale and the PV accumulation is exact (up to
      float rounding) — equivalent to a single-warp update.
    - ``cooperative=False`` with ``wn > 1``: each warp uses its *own* local
      maximum (the missing synchronization of Table III); the staged ``P``
      mixes scales and the result is wrong whenever warp maxima differ.
    """
    scores = np.asarray(scores, dtype=np.float32)
    values = np.asarray(values, dtype=np.float32)
    n = scores.shape[-1]
    if n % wn != 0:
        raise ValueError(f"tile N ({n}) must divide evenly over wn ({wn}) warps")
    slice_n = n // wn
    slices = [slice(w * slice_n, (w + 1) * slice_n) for w in range(wn)]

    local_max = np.stack([scores[..., s].max(axis=-1) for s in slices], axis=0)

    if cooperative or wn == 1:
        # sTMP cross-warp reduction: every warp sees the true tile max.
        tile_max = local_max.max(axis=0)
        m_new = np.maximum(state.m, tile_max)
        correction = np.where(np.isfinite(state.m), np.exp(state.m - m_new), 0.0)
        s_acc = np.empty_like(scores)
        for w, s in enumerate(slices):
            s_acc[..., s] = np.exp(scores[..., s] - m_new[..., None])  # staged P
        state.l = state.l * correction + s_acc.sum(axis=-1)
        state.acc = state.acc * correction[..., None] + s_acc @ values
        state.m = m_new
        return

    # Broken path: each warp exponentiates against its own local max and
    # writes into sAcc; the PV MMA and the running state then treat the
    # mixed-scale tile as if it had one max (the first warp's).  A warp
    # whose slice is entirely padding (-inf) uses 0 as its max, as the
    # in-register code would after an identity-initialized reduction.
    safe_max = np.where(np.isfinite(local_max), local_max, 0.0)
    assumed_max = safe_max[0]
    m_new = np.maximum(state.m, assumed_max)
    correction = np.where(np.isfinite(state.m), np.exp(state.m - m_new), 0.0)
    s_acc = np.empty_like(scores)
    for w, s in enumerate(slices):
        s_acc[..., s] = np.exp(scores[..., s] - safe_max[w][..., None])
    state.l = state.l * correction + s_acc.sum(axis=-1)
    state.acc = state.acc * correction[..., None] + s_acc @ values
    state.m = m_new


def split_kv_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    n_splits: int,
    tile_n: int = 128,
    scale: Optional[float] = None,
) -> np.ndarray:
    """FlashDecoding-style split-KV attention (numerics reference).

    The KV sequence is divided into ``n_splits`` partitions processed with
    independent online-softmax states (separate thread blocks on GPU), then
    merged by the reduction kernel (:meth:`OnlineSoftmaxState.merge`).
    """
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    v = np.asarray(v, dtype=np.float32)
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    seq_len = k.shape[0]
    n_splits = max(1, min(n_splits, seq_len))
    bounds = np.linspace(0, seq_len, n_splits + 1, dtype=np.int64)

    partials: List[OnlineSoftmaxState] = []
    for i in range(n_splits):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        if lo == hi:
            continue
        st = OnlineSoftmaxState.fresh(q.shape[0], v.shape[-1])
        for t0 in range(lo, hi, tile_n):
            t1 = min(t0 + tile_n, hi)
            s = (q @ k[t0:t1].T) * scale
            st.update(s, v[t0:t1])
        partials.append(st)

    out = partials[0]
    for st in partials[1:]:
        out.merge(st)
    return out.finalize()
