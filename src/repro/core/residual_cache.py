"""The half-precision residual KV cache (paper Sec. IV-A(2), V-B).

Tensor Cores want fully-populated, alignment-friendly tiles, but the KV
cache grows one token at a time.  BitDecoding therefore splits the cache:

``X = X_pack ∪ X_res`` with ``X_pack = X[:L - N_r]`` quantized+packed and
``X_res = X[L - N_r:]`` kept in FP16.  The residual block size

    ``N_r = P_n x W_n x R``                                       (Eq. 1)

matches the warp tiling of the MMA exactly, so whenever the residual fills
up, one fused Residual-Kernel pass quantizes and packs a *complete,
fragment-aligned* block into the low-bit cache — never a partial tile.

This module owns the bookkeeping: appends, flush detection, and the
partitioning of a prefill context.  The numerical flush (quantize + pack)
lives in :mod:`repro.core.residual_kernel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.config import MMA_PN
from repro.core.packing import packing_ratio


def residual_block_size(wn: int, bits: int, word_bits: int = 16, pn: int = MMA_PN) -> int:
    """Eq. 1: residual block size ``N_r = P_n x W_n x R``."""
    if wn <= 0 or pn <= 0:
        raise ValueError("warp and tile factors must be positive")
    return pn * wn * packing_ratio(bits, word_bits)


def partition_prefill(seq_len: int, block_size: int) -> Tuple[int, int]:
    """Split a prefill context of ``seq_len`` tokens into (packed, residual).

    ``N_p = L - (L mod N_r)`` tokens are quantized and packed; the remaining
    ``L mod N_r`` stay in the FP16 residual cache (Sec. V-B(1)).
    """
    if seq_len < 0:
        raise ValueError("seq_len must be non-negative")
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    res_len = seq_len % block_size
    return seq_len - res_len, res_len


@dataclass
class ResidualBuffer:
    """FP16 K/V residual for one (sequence, KV-head) pair.

    Appending the token that fills the buffer returns the *complete block*
    for the Residual Kernel to quantize; the buffer then empties.  The
    capacity is always ``N_r``, so a flushed block is Tensor-Core aligned
    by construction.
    """

    capacity: int
    head_dim: int
    k: np.ndarray = field(init=False)
    v: np.ndarray = field(init=False)
    length: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.head_dim <= 0:
            raise ValueError("capacity and head_dim must be positive")
        self.k = np.zeros((self.capacity, self.head_dim), dtype=np.float16)
        self.v = np.zeros((self.capacity, self.head_dim), dtype=np.float16)

    @property
    def is_full(self) -> bool:
        return self.length == self.capacity

    def append(
        self, k_new: np.ndarray, v_new: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Append one token's K/V rows; return the full block when it flushes.

        Returns ``None`` while the buffer is filling.  When the append
        completes the block (``res_len == N_r``), returns FP16 copies of the
        block's (K, V) and resets the buffer.
        """
        k_new = np.asarray(k_new, dtype=np.float16).reshape(self.head_dim)
        v_new = np.asarray(v_new, dtype=np.float16).reshape(self.head_dim)
        if self.is_full:
            raise RuntimeError("append on a full residual buffer (missed flush)")
        self.k[self.length] = k_new
        self.v[self.length] = v_new
        self.length += 1
        if not self.is_full:
            return None
        block = (self.k.copy(), self.v.copy())
        self.length = 0
        return block

    def fill(self, k_rows: np.ndarray, v_rows: np.ndarray) -> None:
        """Bulk-load the residual from a prefill remainder (< capacity rows)."""
        k_rows = np.asarray(k_rows, dtype=np.float16)
        v_rows = np.asarray(v_rows, dtype=np.float16)
        n = k_rows.shape[0]
        if n >= self.capacity:
            raise ValueError(
                f"prefill remainder ({n}) must be smaller than the block size "
                f"({self.capacity}); pack complete blocks first"
            )
        if v_rows.shape[0] != n:
            raise ValueError("K and V remainders must have equal length")
        self.length = n
        self.k[:n] = k_rows
        self.v[:n] = v_rows

    def view(self) -> Tuple[np.ndarray, np.ndarray]:
        """Valid (K, V) rows currently in the residual."""
        return self.k[: self.length], self.v[: self.length]

    @property
    def nbytes(self) -> int:
        """FP16 storage the residual occupies (constant, = 2 buffers)."""
        return self.k.nbytes + self.v.nbytes


@dataclass
class BatchedResidual:
    """FP16 K/V residual for a whole ``[batch, hkv]`` cache, one tensor each.

    The struct-of-arrays counterpart of per-(sequence, head)
    :class:`ResidualBuffer` objects: ``k``/``v`` are
    ``[batch, hkv, N_r, d]`` with a *shared* fill cursor — the paper's
    padded "Batches" setting keeps every sequence at the same length, so
    all ``batch x hkv`` residuals fill and flush in lock-step.  An append
    is one slice write; a flush hands back all blocks at once for the
    batched quantize+pack.
    """

    batch: int
    hkv: int
    capacity: int
    head_dim: int
    k: np.ndarray = field(init=False)
    v: np.ndarray = field(init=False)
    length: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if min(self.batch, self.hkv, self.capacity, self.head_dim) <= 0:
            raise ValueError("batch, hkv, capacity and head_dim must be positive")
        shape = (self.batch, self.hkv, self.capacity, self.head_dim)
        self.k = np.zeros(shape, dtype=np.float16)
        self.v = np.zeros(shape, dtype=np.float16)

    @property
    def is_full(self) -> bool:
        return self.length == self.capacity

    def append(
        self, k_new: np.ndarray, v_new: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Append one token's K/V rows (``[batch, hkv, d]``) for every head.

        Returns ``None`` while filling; when the append completes the block,
        returns FP16 copies of all heads' blocks (``[batch, hkv, N_r, d]``)
        and resets the shared cursor.
        """
        if self.is_full:
            raise RuntimeError("append on a full residual buffer (missed flush)")
        self.k[:, :, self.length] = np.asarray(k_new, dtype=np.float16)
        self.v[:, :, self.length] = np.asarray(v_new, dtype=np.float16)
        self.length += 1
        if not self.is_full:
            return None
        block = (self.k.copy(), self.v.copy())
        self.length = 0
        return block

    def fill(self, k_rows: np.ndarray, v_rows: np.ndarray) -> None:
        """Bulk-load from a prefill remainder (``[batch, hkv, n, d]``, n < N_r)."""
        k_rows = np.asarray(k_rows, dtype=np.float16)
        v_rows = np.asarray(v_rows, dtype=np.float16)
        n = k_rows.shape[2]
        if n >= self.capacity:
            raise ValueError(
                f"prefill remainder ({n}) must be smaller than the block size "
                f"({self.capacity}); pack complete blocks first"
            )
        if v_rows.shape[2] != n:
            raise ValueError("K and V remainders must have equal length")
        self.length = n
        self.k[:, :, :n] = k_rows
        self.v[:, :, :n] = v_rows

    def view(self) -> Tuple[np.ndarray, np.ndarray]:
        """Valid (K, V) rows currently in the residual, ``[batch, hkv, len, d]``."""
        return self.k[:, :, : self.length], self.v[:, :, : self.length]

    @property
    def nbytes(self) -> int:
        """FP16 storage the residual occupies (constant, = 2 buffers)."""
        return self.k.nbytes + self.v.nbytes
