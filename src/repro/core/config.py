"""Configuration objects shared by kernels, baselines and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.packing import packing_ratio
from repro.core.quantization import QuantScheme

#: Elements one warp tile covers along N under ``mma.m16n8k16`` (P_n, Eq. 1).
MMA_PN = 8

#: Kernel instruction-path versions (paper Sec. V-D / Fig. 9).
KERNEL_VERSIONS = ("v2", "v3", "fp4")

#: Numerics modes of the decode tile walk (see ``run_numeric``):
#: ``fused`` computes one batched QK^T over every tile and a two-pass
#: softmax (fast; BLAS summation order differs from the per-tile online
#: update, so it is tolerance-equal, not bit-equal); ``exact_tiled`` walks
#: ``tile_n`` tiles through the online softmax exactly as the seed
#: implementation did and stays bit-identical to it.
NUMERICS_MODES = ("fused", "exact_tiled")


@dataclass(frozen=True)
class AttentionGeometry:
    """Shape of one decode-attention problem.

    ``seq_len`` is the KV-cache length; decode means ``q_len`` new queries
    per sequence (normally 1).  ``hq``/``hkv`` give MHA (equal), GQA
    (``hq > hkv``) or MQA (``hkv == 1``).
    """

    batch: int
    hq: int
    hkv: int
    seq_len: int
    head_dim: int
    q_len: int = 1

    def __post_init__(self) -> None:
        if min(self.batch, self.hq, self.hkv, self.seq_len, self.head_dim, self.q_len) <= 0:
            raise ValueError("all geometry dimensions must be positive")
        if self.hq % self.hkv != 0:
            raise ValueError(f"hq ({self.hq}) must be a multiple of hkv ({self.hkv})")

    @property
    def gq(self) -> int:
        """Query heads per KV head (1 = MHA, >1 = GQA, = hq = MQA)."""
        return self.hq // self.hkv

    @property
    def attention_variant(self) -> str:
        if self.gq == 1:
            return "MHA"
        if self.hkv == 1:
            return "MQA"
        return "GQA"

    @property
    def kv_elements(self) -> int:
        """Total K+V elements across the batch."""
        return 2 * self.batch * self.hkv * self.seq_len * self.head_dim

    @property
    def kv_bytes_fp16(self) -> int:
        return self.kv_elements * 2

    def kv_bytes_quantized(self, bits: float, metadata_bytes: float = 0.0) -> float:
        """Cache bytes at ``bits`` per element plus metadata."""
        return self.kv_elements * bits / 8.0 + metadata_bytes

    @property
    def attention_flops(self) -> float:
        """FLOPs of QK^T + PV for the whole problem (per decode step)."""
        per_head = 2.0 * self.q_len * self.seq_len * self.head_dim * 2.0
        return per_head * self.batch * self.hq


@dataclass(frozen=True)
class BitDecodingConfig:
    """Full configuration of the BitDecoding kernels.

    The ablation flags correspond to the paper's breakdown (Fig. 16) and
    Table III:

    - ``use_layout_induction`` — off reverts to the continuous-packing
      baseline's explicit layout-transform round trips.
    - ``use_warp_parallel`` — off forces the original ``Wn = 1`` layout.
    - ``use_pipeline`` — off serializes load / dequant / MMA phases.
    - ``use_coop_softmax`` — off skips the cross-warp max reduction
      (Algorithm 1); with ``Wn > 1`` this produces *incorrect results*.
    - ``use_residual_cache`` — off quantizes every new token immediately
      (per-step quantize+pack of a partial tile).

    ``numerics_mode`` selects the decode tile walk: ``fused`` (default)
    runs one batched QK^T + two-pass softmax over every tile at once;
    ``exact_tiled`` retains the seed per-tile online softmax and stays
    bit-identical to it (see :data:`NUMERICS_MODES`).
    """

    bits: int = 4
    granularity: str = "channel"
    key_group_size: int = 64
    value_group_size: int = 128
    word_bits: int = 16
    tile_n: int = 128
    wn: int = 4
    wm: int = 1
    version: str = "v2"
    dequant_method: str = "lop3"
    fp4_format: str = "mxfp4"
    numerics_mode: str = "fused"
    use_layout_induction: bool = True
    use_warp_parallel: bool = True
    use_pipeline: bool = True
    use_coop_softmax: bool = True
    use_residual_cache: bool = True

    def __post_init__(self) -> None:
        if self.version not in KERNEL_VERSIONS:
            raise ValueError(f"version must be one of {KERNEL_VERSIONS}, got {self.version!r}")
        if self.version != "fp4" and self.bits not in (1, 2, 4, 8):
            raise ValueError(f"unsupported bit width {self.bits}")
        if self.dequant_method not in ("lop3", "cvt"):
            raise ValueError("dequant_method must be 'lop3' or 'cvt'")
        if self.numerics_mode not in NUMERICS_MODES:
            raise ValueError(
                f"numerics_mode must be one of {NUMERICS_MODES}, got {self.numerics_mode!r}"
            )
        if self.tile_n <= 0 or self.wn <= 0 or self.wm <= 0:
            raise ValueError("tile_n / wn / wm must be positive")

    @property
    def effective_wn(self) -> int:
        """Warps along N after the warp-parallelism ablation flag."""
        return self.wn if self.use_warp_parallel else 1

    @property
    def warps_per_block(self) -> int:
        return self.effective_wn * self.wm

    @property
    def packing_ratio(self) -> int:
        return packing_ratio(self.bits, self.word_bits)

    @property
    def residual_block_size(self) -> int:
        """Eq. 1: ``N_r = P_n x W_n x R`` (Tensor-Core aligned)."""
        return MMA_PN * self.effective_wn * self.packing_ratio

    @property
    def key_scheme(self) -> QuantScheme:
        return QuantScheme(
            bits=self.bits, granularity=self.granularity, group_size=self.key_group_size
        )

    @property
    def instruction_path(self) -> str:
        """GPU-model instruction path for this kernel version."""
        if self.version == "v3":
            return "sm90"
        if self.version == "fp4":
            return "blackwell_fp4"
        return "sm80"

    @property
    def short_name(self) -> str:
        """Paper-style series label, e.g. ``BitDecoding-KC-4 (v2)``."""
        if self.version == "fp4":
            return f"BitDecoding-{self.fp4_format}"
        prefix = "KC" if self.granularity == "channel" else "KT"
        return f"BitDecoding-{prefix}-{self.bits} ({self.version})"

    def with_overrides(self, **kwargs) -> "BitDecodingConfig":
        """Return a modified copy (convenience for ablation sweeps)."""
        return replace(self, **kwargs)

    @property
    def storage_bits_per_value(self) -> float:
        """Cache bits per element, metadata excluded."""
        if self.version == "fp4":
            return 4.0
        return float(self.bits)
