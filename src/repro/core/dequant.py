"""Dequantization paths: the lop3 fast path vs naive ``static_cast``.

Sec. IV-A(3): casting low-bit integers to FP16 with ``static_cast`` is slow
(the conversion pipe has a fraction of the ALU's throughput); the fast path
packs values in the ``75316420`` interleaved order so bitwise ``lop3``
operations splice each 4-bit code directly into the mantissa field of an
FP16 magic constant, after which a single fused multiply-add applies
``scale``/``zero`` *and* removes the magic bias.

Numerically both paths reconstruct exactly ``code * scale + zero``; they
differ in the instruction mix, which :func:`dequant_trace` captures for the
performance model.
"""

from __future__ import annotations

import numpy as np

from repro.core.packing import fast_parity_extract, unpack_values
from repro.gpu.instructions import dequant_ops
from repro.gpu.trace import OpTrace

#: FP16 with exponent bits set so the low mantissa bits hold an integer in
#: [0, 1023]: 0x6400 is 1024.0; OR-ing a 4-bit code into the mantissa gives
#: 1024 + code.  Subtracting the bias recovers the code — the classic
#: "magic number" integer->float trick the lop3 path implements.
_FP16_MAGIC_BIAS = 1024.0
_FP16_MAGIC_BITS = np.uint16(0x6400)


def lop3_dequant_words(
    words: np.ndarray,
    bits: int,
    scale: np.ndarray,
    zero: np.ndarray,
    word_bits: int = 16,
) -> np.ndarray:
    """Fast dequantization of interleaved-packed words (lop3 emulation).

    ``scale``/``zero`` broadcast against the unpacked value array.  The
    function reproduces the instruction-level trick: codes are spliced into
    FP16 magic constants via bitwise ops (one mask per value pair thanks to
    the ``75316420`` order), then one FMA applies ``scale`` and
    ``zero - scale * bias`` at once.
    """
    first, second = fast_parity_extract(words, bits, word_bits)
    # Logical order per word is [first half, second half]; flatten the word
    # axis so the output matches the cast path element-for-element.
    codes = np.concatenate([first, second], axis=-1)
    codes = codes.reshape(*words.shape[:-1], -1)
    # Splice the code into the magic constant's mantissa (bitwise, no cvt).
    magic = (_FP16_MAGIC_BITS | codes.astype(np.uint16)).view(np.float16)
    biased = magic.astype(np.float32)  # register copy, not a cvt of the code
    scale = np.asarray(scale, dtype=np.float32)
    zero = np.asarray(zero, dtype=np.float32)
    # One HFMA2: x = biased * scale + (zero - scale * bias)
    return biased * scale + (zero - scale * _FP16_MAGIC_BIAS)


def cast_dequant_words(
    words: np.ndarray,
    bits: int,
    scale: np.ndarray,
    zero: np.ndarray,
    word_bits: int = 16,
    interleaved: bool = True,
) -> np.ndarray:
    """Naive path: unpack, ``static_cast`` each code, then scale.

    Both paths emit values in logical order, so they agree element-for-
    element; only the instruction mix differs.
    """
    codes = unpack_values(words, bits, word_bits, interleaved=interleaved)
    cast = codes.astype(np.float32)  # the cvt instruction per value
    scale = np.asarray(scale, dtype=np.float32)
    zero = np.asarray(zero, dtype=np.float32)
    return cast * scale + zero


def dequant_trace(n_values: float, bits: int, method: str = "lop3") -> OpTrace:
    """Instruction trace of dequantizing ``n_values`` (delegates to the
    cost tables in :mod:`repro.gpu.instructions`)."""
    return dequant_ops(n_values, bits, method)


def dequant_speed_ratio(arch, n_values: float, bits: int) -> float:
    """How much faster the lop3 path is than static_cast on ``arch``.

    Compares the standalone pipe times of the two instruction mixes; used
    by tests to pin the paper's claim that naive casts are slow.
    """
    from repro.gpu.kernel import KernelLaunch, simulate_kernel

    results = []
    for method in ("cvt", "lop3"):
        launch = KernelLaunch(
            name=f"dequant-{method}",
            trace=dequant_ops(n_values, bits, method),
            grid_blocks=max(1, int(n_values // 8192)),
            warps_per_block=4,
            hide_factor=1.0,
        )
        results.append(simulate_kernel(arch, launch).exec_time_s)
    cvt_time, lop3_time = results
    if lop3_time <= 0:
        raise ValueError("degenerate dequant trace")
    return cvt_time / lop3_time
