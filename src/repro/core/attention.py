"""Top-level BitDecoding API: the quantized KV cache and the decode engine.

This is the public face of the library:

>>> from repro import BitDecodingConfig, get_arch
>>> from repro.core.attention import BitDecoding
>>> engine = BitDecoding(BitDecodingConfig(bits=4), get_arch("a100"))
>>> cache = engine.prefill(k, v)            # [batch, hkv, seq, d] FP16
>>> out = engine.decode(q, cache)           # q: [batch, 1, hq, d]

``BitKVCache`` owns the two-part cache (packed low-bit blocks + FP16
residual, Sec. IV-A(2)) in *struct-of-arrays* form: one packed-words
tensor, one ``half2`` metadata tensor and one residual tensor per K/V,
each carrying ``[batch, hkv, ...]`` leading dims so prefill packing,
appends, flushes and dequantization run as single batched numpy ops —
no Python iteration over (batch, head, block) in the decode hot path.
``BitDecoding`` runs the Residual and Packing kernels over it, merges
their partial softmax states, and can report the simulated GPU timing of
every launch.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.arch_support import validate_config
from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.packing_kernel import build_packing_launch, run_numeric
from repro.core.query_transform import group_queries, ungroup_output
from repro.core.residual_cache import BatchedResidual, partition_prefill
from repro.core.residual_kernel import (
    Fp4BlockBatch,
    PackedBlockBatch,
    attend_residual,
    attend_residual_grouped,
    build_residual_launch,
    flush_blocks,
)
from repro.core.softmax import OnlineSoftmaxState
from repro.gpu.arch import ArchSpec, get_arch
from repro.gpu.kernel import KernelLaunch, KernelResult, simulate_kernel


class BitKVCache:
    """Two-part low-bit KV cache for a batch of sequences, struct-of-arrays.

    Storage is batched over every (sequence, kv-head) pair: the packed part
    is one :class:`~repro.core.residual_kernel.PackedBlockBatch` (or
    :class:`~repro.core.residual_kernel.Fp4BlockBatch`) whose word/metadata
    tensors carry ``[batch, hkv, n_blocks, ...]`` leading dims, and the FP16
    residual is one :class:`~repro.core.residual_cache.BatchedResidual`
    tensor pair with a shared fill cursor.  All sequences in the batch share
    a length (the paper's padded "Batches" setting), which is exactly what
    makes the lock-step layout valid.

    Dequantized packed K/V are memoized per flush epoch: decode steps that
    do not flush reuse the reconstruction instead of re-dequantizing every
    block (see :meth:`dequant_kv` / :meth:`invalidate_dequant_cache`).
    """

    def __init__(self, batch: int, hkv: int, head_dim: int, config: BitDecodingConfig):
        if min(batch, hkv, head_dim) <= 0:
            raise ValueError("batch, hkv and head_dim must be positive")
        self.batch = batch
        self.hkv = hkv
        self.head_dim = head_dim
        self.config = config
        nr = config.residual_block_size
        self.packed: Optional[Union[PackedBlockBatch, Fp4BlockBatch]] = None
        self.residual = BatchedResidual(batch, hkv, nr, head_dim)
        self.seq_len = 0
        self.flush_epoch = 0
        self._dequant_memo: Optional[Tuple[Tuple[int, int], Tuple[np.ndarray, np.ndarray]]] = None

    # ------------------------------------------------------------------ fill

    @classmethod
    def from_prefill(cls, k: np.ndarray, v: np.ndarray, config: BitDecodingConfig) -> "BitKVCache":
        """Build a cache from prefill K/V of shape ``[batch, hkv, seq, d]``.

        The first ``L - (L mod N_r)`` tokens are quantized+packed — all
        ``batch x hkv x n_blocks`` blocks in one vectorized flush — and the
        remainder seeds the FP16 residual (Sec. V-B(1)).
        """
        k = np.asarray(k)
        v = np.asarray(v)
        if k.ndim != 4 or k.shape != v.shape:
            raise ValueError("k and v must both be [batch, hkv, seq, d]")
        batch, hkv, seq_len, d = k.shape
        cache = cls(batch, hkv, d, config)
        nr = config.residual_block_size
        packed_len, res_len = partition_prefill(seq_len, nr)
        n_blocks = packed_len // nr
        if n_blocks:
            cache.packed = flush_blocks(
                k[:, :, :packed_len].reshape(batch, hkv, n_blocks, nr, d),
                v[:, :, :packed_len].reshape(batch, hkv, n_blocks, nr, d),
                config,
            )
            cache.flush_epoch += 1
        if res_len:
            cache.residual.fill(k[:, :, packed_len:], v[:, :, packed_len:])
        cache.seq_len = seq_len
        return cache

    def append_token(self, k_new: np.ndarray, v_new: np.ndarray) -> bool:
        """Append one decoded token's K/V (``[batch, hkv, d]``).

        One slice write into the batched residual; on the step where the
        residual fills to ``N_r``, all ``batch x hkv`` blocks are quantized
        and packed in a single vectorized flush.  Returns True when that
        flush happened (the once-per-``N_r``-steps quantization event).
        """
        k_new = np.asarray(k_new)
        v_new = np.asarray(v_new)
        expected = (self.batch, self.hkv, self.head_dim)
        if k_new.shape != expected or v_new.shape != expected:
            raise ValueError(f"new K/V must have shape {expected}")
        block = self.residual.append(k_new, v_new)
        flushed = block is not None
        if flushed:
            batch_blocks = flush_blocks(block[0][:, :, None], block[1][:, :, None], self.config)
            memo = self._dequant_memo
            extendable = (
                memo is not None
                and self.packed is not None
                and memo[0] == (self.packed.n_blocks, self.flush_epoch)
            )
            self.packed = (
                batch_blocks if self.packed is None else self.packed.extend(batch_blocks)
            )
            self.flush_epoch += 1
            if extendable:
                # A flush only appends blocks, so the memoized reconstruction
                # extends with just the new blocks' dequant — per-block
                # independence makes this bit-identical to a full rebuild,
                # and keeps flush steps O(N_r), not O(context).
                k_new_hat, v_new_hat = batch_blocks.dequant_kv(self.config)
                kv = (
                    np.concatenate([memo[1][0], k_new_hat], axis=2),
                    np.concatenate([memo[1][1], v_new_hat], axis=2),
                )
                self._dequant_memo = ((self.packed.n_blocks, self.flush_epoch), kv)
            else:
                self._dequant_memo = None
        self.seq_len += 1
        return flushed

    # ------------------------------------------------------------------ views

    def packed_len(self) -> int:
        """Tokens currently in the packed (low-bit) part, per head."""
        if self.packed is None:
            return 0
        return self.packed.n_blocks * self.packed.length

    def res_len(self) -> int:
        """Tokens currently in the FP16 residual, per head."""
        return self.residual.length

    def dequant_kv(self) -> Tuple[np.ndarray, np.ndarray]:
        """Reconstructed FP32 ``[batch, hkv, packed_len, d]`` K/V, memoized.

        The first call after a flush exercises the real batched unpack +
        dequantization of the stored fragment-order words; subsequent calls
        return the cached reconstruction until the next flush changes the
        packed part (keyed on ``(n_blocks, flush_epoch)``).  Callers that
        mutate the packed words or metadata in place must call
        :meth:`invalidate_dequant_cache`.
        """
        if self.packed is None:
            empty = np.zeros((self.batch, self.hkv, 0, self.head_dim), np.float32)
            return empty, empty
        key = (self.packed.n_blocks, self.flush_epoch)
        if self._dequant_memo is not None and self._dequant_memo[0] == key:
            return self._dequant_memo[1]
        kv = self.packed.dequant_kv(self.config)
        self._dequant_memo = (key, kv)
        return kv

    def invalidate_dequant_cache(self) -> None:
        """Drop the memoized dequantized K/V (after in-place mutation)."""
        self._dequant_memo = None

    def dequantized_packed(self, b: int, h: int) -> Tuple[np.ndarray, np.ndarray]:
        """Reconstructed FP32 ``(packed_len, d)`` K/V for one head."""
        k_hat, v_hat = self.dequant_kv()
        return k_hat[b, h], v_hat[b, h]

    def residual_kv(self) -> Tuple[np.ndarray, np.ndarray]:
        """Valid FP16 residual rows, ``[batch, hkv, res_len, d]``."""
        return self.residual.view()

    def residual_view(self, b: int, h: int) -> Tuple[np.ndarray, np.ndarray]:
        k_res, v_res = self.residual.view()
        return k_res[b, h], v_res[b, h]

    # ------------------------------------------------------------------ sizes

    @property
    def packed_nbytes(self) -> float:
        """Packed-word bytes, computed from array shapes in O(1)."""
        if self.packed is None:
            return 0.0
        return self.packed.packed_nbytes

    @property
    def meta_nbytes(self) -> float:
        """Quantization-metadata bytes, computed from array shapes in O(1)."""
        if self.packed is None:
            return 0.0
        return self.packed.meta_nbytes

    @property
    def residual_nbytes(self) -> float:
        """FP16 residual bytes (constant), from array shapes in O(1)."""
        return self.residual.nbytes

    @property
    def total_nbytes(self) -> float:
        return self.packed_nbytes + self.meta_nbytes + self.residual_nbytes

    def fp16_equivalent_nbytes(self) -> float:
        """Bytes an FP16 cache of the same contents would occupy."""
        return 2.0 * self.batch * self.hkv * self.seq_len * self.head_dim * 2.0

    def compression_ratio(self) -> float:
        if self.total_nbytes == 0:
            return 1.0
        return self.fp16_equivalent_nbytes() / self.total_nbytes


class BitDecoding:
    """The BitDecoding engine: decode attention over a :class:`BitKVCache`."""

    def __init__(self, config: BitDecodingConfig, arch: Union[ArchSpec, str] = "a100"):
        self.arch = get_arch(arch) if isinstance(arch, str) else arch
        validate_config(self.arch, config)
        self.config = config

    def _check_cache_compatible(self, cache: BitKVCache) -> None:
        """Refuse caches built under a different kernel configuration.

        The Packing Kernel must mirror the Residual Kernel's instruction
        configuration (Sec. IV-A(4)); bit width, word width, dequant path
        and version all feed that configuration.
        """
        ours, theirs = self.config, cache.config
        mismatched = (
            ours.bits != theirs.bits
            or ours.word_bits != theirs.word_bits
            or ours.version != theirs.version
            or ours.dequant_method != theirs.dequant_method
        )
        if mismatched:
            raise ValueError(
                f"engine configured as {ours.short_name} cannot decode a "
                f"cache packed as {theirs.short_name}: the kernels' "
                "instruction configurations must match (Sec. IV-A(4))"
            )

    # ------------------------------------------------------------- numerics

    def prefill(self, k: np.ndarray, v: np.ndarray) -> BitKVCache:
        """Quantize + pack a prefill context (``[batch, hkv, seq, d]``)."""
        return BitKVCache.from_prefill(k, v, self.config)

    def decode(
        self,
        q: np.ndarray,
        cache: BitKVCache,
        n_splits: Optional[int] = None,
    ) -> np.ndarray:
        """One decode step: attention of ``q`` over the full cache.

        ``q``: ``[batch, q_len, hq, d]``.  Returns ``[batch, q_len, hq, d]``.
        Runs the Packing Kernel over the packed part and the Residual
        Kernel over the FP16 tail — each as one batched pass over every
        (batch, kv-head) pair — and merges their partial online-softmax
        states exactly as the split-KV reduction kernel does.
        """
        q = np.asarray(q, dtype=np.float32)
        if q.ndim != 4:
            raise ValueError("q must be [batch, q_len, hq, d]")
        self._check_cache_compatible(cache)
        batch, q_len, hq, d = q.shape
        if batch != cache.batch or d != cache.head_dim:
            raise ValueError("query does not match the cache's batch/head_dim")
        if hq % cache.hkv != 0:
            raise ValueError("hq must be a multiple of the cache's hkv")
        scale = 1.0 / math.sqrt(d)

        grouped = group_queries(q, cache.hkv)  # [b, hkv, M, d]
        states: List[OnlineSoftmaxState] = []
        k_hat, v_hat = cache.dequant_kv()
        if k_hat.shape[-2]:
            if n_splits and n_splits > 1:
                from repro.core.packing_kernel import split_states

                states.extend(split_states(grouped, k_hat, v_hat, self.config, n_splits, scale))
            else:
                states.append(run_numeric(grouped, k_hat, v_hat, self.config, scale))
        k_res, v_res = cache.residual_kv()
        if k_res.shape[-2]:
            res_lens = getattr(cache, "residual_lengths", None)
            if res_lens is not None:
                states.append(
                    attend_residual_grouped(grouped, k_res, v_res, res_lens, self.config, scale)
                )
            else:
                states.append(attend_residual(grouped, k_res, v_res, self.config, scale))
        if not states:
            raise ValueError("decode on an empty cache")
        merged = states[0]
        for st in states[1:]:
            merged.merge(st)
        return ungroup_output(merged.finalize(), hq, q_len)

    def decode_speculative(
        self,
        q: np.ndarray,
        k_draft: np.ndarray,
        v_draft: np.ndarray,
        cache: BitKVCache,
        commit: bool = False,
    ) -> np.ndarray:
        """Multi-token (speculative-verification) decode.

        ``q``: ``[batch, n, hq, d]`` — queries for ``n`` draft tokens at
        positions ``L .. L+n-1``; ``k_draft``/``v_draft``:
        ``[batch, hkv, n, d]`` — the draft tokens' K/V.  Query ``i``
        attends over the whole cache plus draft tokens ``0..i`` (causal
        within the tail), which is exactly the verification pass of
        speculative decoding.  The grouped-query transform makes the tail
        a single ``(n*gq) x n`` masked tile per KV head, so Tensor-Core
        tiles stay full — the paper's "query length is typically small
        (<16)" observation is what makes this fit one MMA tile.

        With ``commit=True`` the draft tokens are appended to the cache
        afterwards (accepted-token bookkeeping is the caller's policy).
        """
        q = np.asarray(q, dtype=np.float32)
        k_draft = np.asarray(k_draft, dtype=np.float32)
        v_draft = np.asarray(v_draft, dtype=np.float32)
        if q.ndim != 4:
            raise ValueError("q must be [batch, n, hq, d]")
        self._check_cache_compatible(cache)
        batch, n, hq, d = q.shape
        if k_draft.shape != (batch, cache.hkv, n, d):
            raise ValueError(
                f"k_draft must be [batch, hkv, n, d] = "
                f"{(batch, cache.hkv, n, d)}, got {k_draft.shape}"
            )
        scale = 1.0 / math.sqrt(d)
        gq = hq // cache.hkv

        grouped = group_queries(q, cache.hkv)  # [b, hkv, n*gq, d]
        states: List[OnlineSoftmaxState] = []
        k_hat, v_hat = cache.dequant_kv()
        if k_hat.shape[-2]:
            states.append(run_numeric(grouped, k_hat, v_hat, self.config, scale))
        k_res, v_res = cache.residual_kv()
        if k_res.shape[-2]:
            states.append(attend_residual(grouped, k_res, v_res, self.config, scale))
        # Causal tail: query row r belongs to draft token r // gq and may
        # see draft columns 0 .. r // gq; one masked tile for every head.
        s_tail = (grouped @ np.swapaxes(k_draft, -1, -2)) * scale
        rows = np.arange(n * gq) // gq
        mask = np.arange(n)[None, :] > rows[:, None]
        s_tail = np.where(mask, -np.inf, s_tail)
        tail_state = OnlineSoftmaxState.fresh(n * gq, d, leading=(batch, cache.hkv))
        tail_state.update(s_tail, v_draft)
        states.append(tail_state)

        merged = states[0]
        for st in states[1:]:
            merged.merge(st)
        result = ungroup_output(merged.finalize(), hq, q_len=n)
        if commit:
            for i in range(n):
                cache.append_token(
                    k_draft[:, :, i].astype(np.float16),
                    v_draft[:, :, i].astype(np.float16),
                )
        return result

    # ---------------------------------------------------------- performance

    def decode_launches(
        self,
        geom: AttentionGeometry,
        res_len: Optional[int] = None,
        flush: bool = False,
        paged: bool = False,
        page_size: int = 64,
    ) -> List[KernelLaunch]:
        """Kernel launches of one decode step at a given geometry.

        ``res_len`` defaults to half the residual block (the average decode
        state); pass ``res_len=None, flush=True`` to model a flush step.
        """
        nr = self.config.residual_block_size
        if res_len is None:
            res_len = max(1, nr // 2)
        packed_len = max(0, geom.seq_len - res_len)
        launches = []
        if packed_len > 0:
            launches.append(
                build_packing_launch(
                    geom,
                    self.config,
                    self.arch,
                    packed_len=packed_len,
                    paged=paged,
                    page_size=page_size,
                )
            )
        launches.append(build_residual_launch(geom, self.config, self.arch, res_len, flush=flush))
        return launches

    def decode_results(self, geom: AttentionGeometry, **kwargs) -> List[KernelResult]:
        """Simulate one decode step's launches on this engine's device."""
        return [
            simulate_kernel(self.arch, launch)
            for launch in self.decode_launches(geom, **kwargs)
        ]

    def decode_time_ms(self, geom: AttentionGeometry, **kwargs) -> float:
        """Simulated latency (ms) of one decode attention step."""
        return sum(r.time_ms for r in self.decode_results(geom, **kwargs))
