"""KV-cache quantization: integer (INT8/4/2/1) and micro-scaling FP4.

BitDecoding must stay *general across quantization algorithms*
(Challenge 3): popular methods disagree on the Key tensor's scaling
granularity —

- **channel-wise (KC)**: one (scale, zero) per hidden channel, with the
  group running along the sequence dimension (KIVI, KVQuant style).  Best
  accuracy for Keys, whose outliers are per-channel.
- **tensor-wise (KT)**: one (scale, zero) per token, with the group running
  along the hidden dimension (KVQuant/Atom per-token style).

Values are always quantized tensor-wise (per token).  Following the paper's
Residual Kernel, scale and zero-point are stored together as a ``half2``
(both cast to FP16) so one load plus one ``HFMA2`` performs dequantization.

Blackwell's native formats are also provided: **MXFP4** (E2M1 element, one
shared power-of-two E8M0 scale per 32-element block) and **NVFP4** (E2M1
element, FP8-E4M3 scale per 16-element block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Key-scaling granularities (Sec. V-B): channel-wise groups run along
#: seq_len; tensor-wise groups run along the hidden dimension.
GRANULARITIES = ("channel", "tensor")

#: Representable magnitudes of the FP4 E2M1 element format.
E2M1_VALUES = np.asarray([0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0], dtype=np.float32)
E2M1_MAX = 6.0

#: Largest normal magnitude of FP8 E4M3 (NVFP4 block scale format).
E4M3_MAX = 448.0


@dataclass(frozen=True)
class QuantScheme:
    """Configuration of one integer quantization scheme."""

    bits: int
    granularity: str  # "channel" or "tensor"
    group_size: int

    def __post_init__(self) -> None:
        if self.bits not in (1, 2, 4, 8):
            raise ValueError(f"unsupported bit width {self.bits}")
        if self.granularity not in GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {GRANULARITIES}, got {self.granularity!r}"
            )
        if self.group_size <= 0:
            raise ValueError("group_size must be positive")

    @property
    def levels(self) -> int:
        return 1 << self.bits

    @property
    def short_name(self) -> str:
        """Paper-style tag, e.g. ``KC-4`` / ``KT-2``."""
        prefix = "KC" if self.granularity == "channel" else "KT"
        return f"{prefix}-{self.bits}"


@dataclass
class QuantParams:
    """Scale/zero-point metadata for one quantized tensor.

    ``scale`` and ``zero`` have one entry per group and are stored in FP16,
    emulating the paper's compact ``half2`` layout.  ``axis`` is the tensor
    axis the group runs along.
    """

    scale: np.ndarray
    zero: np.ndarray
    axis: int
    group_size: int
    bits: int

    @property
    def nbytes(self) -> float:
        """Metadata bytes (half2 per group)."""
        return self.scale.size * 2 + self.zero.size * 2


def _grouped_view(x: np.ndarray, axis: int, group_size: int) -> Tuple[np.ndarray, int]:
    """Split ``axis`` into ``(n_groups, group_size)`` as a zero-copy view.

    Splitting an axis in place never transposes memory, so group reductions
    and broadcasts stay contiguous no matter which axis the groups run
    along — the batched cache quantizes 10^8-element tensors through this.
    Returns the reshaped view and the (normalized) group axis position.
    """
    axis = axis % x.ndim
    n = x.shape[axis]
    if n % group_size != 0:
        raise ValueError(f"axis length {n} is not a multiple of group size {group_size}")
    shape = x.shape[:axis] + (n // group_size, group_size) + x.shape[axis + 1 :]
    return x.reshape(shape), axis


def _quantize_chunk(
    x: np.ndarray,
    bits: int,
    axis: int,
    group_size: int,
    codes_out: Optional[np.ndarray] = None,
    affine: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Shared quantization core: codes plus *raw-layout* group metadata.

    Returns ``(codes, scale, zero, group_axis)`` where ``scale``/``zero``
    keep the group axis in its natural (reduction) position — callers that
    publish :class:`QuantParams` apply the moveaxis themselves.  ``x`` may
    be FP16 or FP32: the group min/max are exact under the monotone
    FP16→FP32 cast and the affine ufuncs upcast on the fly, so skipping
    the whole-tensor FP32 copy changes no bit of the output.  This is the
    unit the chunked prefill flush loops over (quantization groups never
    cross a residual block, so per-chunk statistics are self-contained);
    ``codes_out``/``affine`` let that loop reuse its buffers.  ``affine``
    may alias ``x`` (the affine map is element-wise, so in-place is exact);
    ``x`` is then destroyed.
    """
    if bits not in (1, 2, 4, 8):
        raise ValueError(f"unsupported bit width {bits}")
    x = np.asarray(x)
    if x.dtype not in (np.float16, np.float32):
        x = x.astype(np.float32)
    axis = axis % x.ndim
    grouped, ax = _grouped_view(x, axis, group_size)
    gmin = grouped.min(axis=ax + 1).astype(np.float32)
    gmax = grouped.max(axis=ax + 1).astype(np.float32)
    # NaN/Inf propagate into the group min/max, so checking the (small)
    # reductions detects every poisoned value without another full pass.
    if x.size and not (np.all(np.isfinite(gmin)) and np.all(np.isfinite(gmax))):
        raise ValueError(
            "quantize received non-finite values; a NaN/Inf in K or V would "
            "poison a whole quantization group's scale"
        )
    levels = (1 << bits) - 1
    scale = (gmax - gmin) / levels
    # Guard degenerate all-equal groups; scale 0 would divide by zero.
    scale = np.where(scale <= 0, 1.0, scale)
    zero = gmin
    # half2 storage: metadata lives in FP16.
    scale = scale.astype(np.float16).astype(np.float32)
    scale = np.where(scale <= 0, np.float32(6e-5), scale)  # fp16 underflow guard
    zero = zero.astype(np.float16).astype(np.float32)

    expand = np.expand_dims(scale, ax + 1)
    expand_zero = np.expand_dims(zero, ax + 1)
    # The affine map runs through one preallocated buffer (no per-op
    # temporaries); this path is memory-bound at cache scale.
    if affine is None or affine.shape != x.shape:
        affine = np.empty(x.shape, dtype=np.float32)
    affine_grouped = affine.reshape(grouped.shape)
    np.subtract(grouped, expand_zero, out=affine_grouped)
    np.divide(affine_grouped, expand, out=affine_grouped)
    np.rint(affine_grouped, out=affine_grouped)
    np.clip(affine_grouped, 0, levels, out=affine_grouped)
    if codes_out is None:
        codes = affine.astype(np.uint8)
    else:
        codes = codes_out
        codes[...] = affine  # integral after rint; the uint8 cast is exact
    return codes, scale, zero, ax


def quantize(
    x: np.ndarray, bits: int, axis: int, group_size: int
) -> Tuple[np.ndarray, QuantParams]:
    """Asymmetric uniform quantization along ``axis`` in groups.

    Returns unsigned codes (same shape as ``x``) and :class:`QuantParams`.
    The affine map is ``code = round((x - zero) / scale)`` clamped to
    ``[0, 2**bits - 1]``; ``scale``/``zero`` are rounded to FP16 *before*
    quantization, exactly as a kernel storing ``half2`` metadata would.

    ``x`` may have any rank: the group statistics reduce over ``axis`` in
    one batched pass, so a whole ``[batch, hkv, n_blocks, N_r, d]`` cache
    quantizes in a single call.
    """
    x = np.asarray(x)
    axis = axis % max(x.ndim, 1)
    codes, scale, zero, ax = _quantize_chunk(x, bits, axis, group_size)
    # Public metadata layout keeps the group axis last (the ``half2``
    # stream the kernels read); the heavy per-value math above never
    # transposes, only this small array does.
    params = QuantParams(
        scale=np.moveaxis(scale, ax, -1),
        zero=np.moveaxis(zero, ax, -1),
        axis=axis,
        group_size=group_size,
        bits=bits,
    )
    return codes, params


def dequantize(codes: np.ndarray, params: QuantParams) -> np.ndarray:
    """Inverse affine map: ``x_hat = code * scale + zero`` (one HFMA2).

    Like :func:`quantize`, fully batched: the per-group scale/zero broadcast
    against a zero-copy grouped view — no transposes of the code tensor.
    """
    codes = np.asarray(codes)
    grouped, ax = _grouped_view(codes, params.axis, params.group_size)
    scale = np.expand_dims(np.moveaxis(params.scale, -1, ax), ax + 1)
    zero = np.expand_dims(np.moveaxis(params.zero, -1, ax), ax + 1)
    # Write through a preallocated C-contiguous buffer: the reconstruction's
    # memory layout must not depend on the codes' strides, so that every
    # caller (per-block or batched) hands the downstream GEMMs identical
    # arrays and decode stays bit-reproducible across cache layouts.
    out = np.empty(codes.shape, dtype=np.float32)
    out_grouped = out.reshape(grouped.shape)
    np.multiply(grouped, scale, out=out_grouped)
    np.add(out_grouped, zero, out=out_grouped)
    return out


def quantize_key(
    k: np.ndarray, scheme: QuantScheme, seq_axis: int = 0, channel_axis: int = -1
) -> Tuple[np.ndarray, QuantParams]:
    """Quantize a Key block ``(..., seq, ..., d)`` under a scheme.

    Channel-wise (KC): groups run along the sequence axis (one scale per
    channel per ``group_size`` tokens).  Tensor-wise (KT): groups run along
    the hidden axis (one scale per token per ``group_size`` channels).
    """
    axis = seq_axis if scheme.granularity == "channel" else channel_axis
    return quantize(k, scheme.bits, axis, scheme.group_size)


def quantize_value(
    v: np.ndarray, bits: int, group_size: int, channel_axis: int = -1
) -> Tuple[np.ndarray, QuantParams]:
    """Quantize a Value block tensor-wise (groups along the hidden axis)."""
    return quantize(v, bits, channel_axis, group_size)


def quantization_error_bound(params: QuantParams) -> float:
    """Worst-case absolute reconstruction error: half a step per group."""
    return float(np.max(params.scale)) / 2.0 + 1e-3  # fp16 metadata slack


# ---------------------------------------------------------------------------
# Micro-scaling FP4 (Blackwell native formats)
# ---------------------------------------------------------------------------


@dataclass
class Fp4Params:
    """Block scales of an MXFP4/NVFP4 tensor (one scale per block)."""

    scale: np.ndarray
    axis: int
    block_size: int
    fmt: str  # "mxfp4" or "nvfp4"

    @property
    def nbytes(self) -> float:
        return float(self.scale.size)  # E8M0 and E4M3 are 1 byte each


def _quantize_e2m1(x: np.ndarray) -> np.ndarray:
    """Round to the nearest representable E2M1 value (sign preserved)."""
    sign = np.sign(x)
    mag = np.abs(x)
    idx = np.argmin(np.abs(mag[..., None] - E2M1_VALUES), axis=-1)
    return sign * E2M1_VALUES[idx]


def quantize_fp4(x: np.ndarray, fmt: str = "mxfp4", axis: int = -1) -> Tuple[np.ndarray, Fp4Params]:
    """Quantize to a micro-scaling FP4 format.

    MXFP4: block 32, power-of-two (E8M0) scale.  NVFP4: block 16, FP8-E4M3
    scale.  Returns the *dequantized representable values* (what the tensor
    cores compute with) plus block scales; benchmarks use the scales' byte
    counts for traffic, numerics use the values.
    """
    if fmt == "mxfp4":
        block = 32
    elif fmt == "nvfp4":
        block = 16
    else:
        raise ValueError(f"unknown fp4 format {fmt!r}; use 'mxfp4' or 'nvfp4'")
    x = np.asarray(x, dtype=np.float32)
    axis = axis % x.ndim
    n = x.shape[axis]
    if n % block != 0:
        raise ValueError(f"axis length {n} not a multiple of block size {block}")

    moved = np.moveaxis(x, axis, -1)
    grouped = moved.reshape(*moved.shape[:-1], n // block, block)
    amax = np.abs(grouped).max(axis=-1)
    raw_scale = amax / E2M1_MAX
    raw_scale = np.where(raw_scale <= 0, 1.0, raw_scale)
    if fmt == "mxfp4":
        # E8M0: power-of-two scale, rounded up so the block max stays
        # representable.
        scale = 2.0 ** np.ceil(np.log2(raw_scale))
    else:
        # E4M3: round to FP8; emulate with the nearest value of limited
        # mantissa (3 bits) and clamp to the format's range.
        mant, exp = np.frexp(raw_scale)
        mant = np.round(mant * 16) / 16  # 1 sign-free mantissa step of 2^-4
        scale = np.clip(np.ldexp(mant, exp), 2.0**-9, E4M3_MAX)

    q = _quantize_e2m1(grouped / scale[..., None]) * scale[..., None]
    out = np.moveaxis(q.reshape(moved.shape), -1, axis)
    params = Fp4Params(scale=scale.astype(np.float32), axis=axis, block_size=block, fmt=fmt)
    return out, params


def fp4_storage_bits_per_value(fmt: str = "mxfp4") -> float:
    """Total storage bits per value including the amortized block scale."""
    if fmt == "mxfp4":
        return 4.0 + 8.0 / 32.0
    if fmt == "nvfp4":
        return 4.0 + 8.0 / 16.0
    raise ValueError(f"unknown fp4 format {fmt!r}")
