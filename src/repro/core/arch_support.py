"""Architecture-specific kernel paths (Sec. V-D).

- **Pre-Hopper (Ampere/Ada)** — the ``v2`` path: per-warp ``mma.m16n8k16``
  with ``ldmatrix`` + ``cp.async`` double buffering.
- **Hopper** — the ``v3`` path: ``wgmma`` warpgroup MMAs and TMA loads.
  ``wgmma`` constrains operand B to *shared memory* (``wgmma_SS``), so the
  dequantized FP16 tiles are stored back to SMEM with ``STSM``; the
  asynchronous ``wgmma`` overlaps those stores with computation.
- **Blackwell** — the ``fp4`` path: native micro-scaling MMA consumes the
  packed 4-bit data directly (no dequantization), at the price of
  re-quantizing ``P`` after every softmax tile.

:func:`resolve_version` picks the best path a device supports and refuses
impossible combinations — the same role as the paper's "configuration
setup" (Sec. IV-A(4)).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import BitDecodingConfig
from repro.gpu.arch import ArchSpec


def resolve_version(arch: ArchSpec, requested: Optional[str] = None) -> str:
    """Best kernel version for ``arch``, honoring an explicit request.

    Raises ``ValueError`` when the requested path needs hardware the device
    lacks (e.g. ``v3`` on Ampere, ``fp4`` on Hopper).
    """
    if requested is not None:
        validate_version(arch, requested)
        return requested
    if arch.has_native_fp4:
        return "fp4"
    if arch.has_wgmma:
        return "v3"
    return "v2"


def validate_version(arch: ArchSpec, version: str) -> None:
    """Raise unless ``arch`` can execute kernel ``version``."""
    if version == "v3" and not arch.has_wgmma:
        raise ValueError(
            f"kernel v3 needs wgmma (Hopper); {arch.name} ({arch.generation}) lacks it"
        )
    if version == "fp4" and not arch.has_native_fp4:
        raise ValueError(
            f"kernel fp4 needs native FP4 tensor cores (Blackwell); "
            f"{arch.name} ({arch.generation}) lacks them"
        )
    if version not in ("v2", "v3", "fp4"):
        raise ValueError(f"unknown kernel version {version!r}")


def validate_config(arch: ArchSpec, config: BitDecodingConfig) -> None:
    """Cross-check a full configuration against a device."""
    validate_version(arch, config.version)
    if config.version == "fp4" and config.fp4_format not in ("mxfp4", "nvfp4"):
        raise ValueError(f"unknown fp4 format {config.fp4_format!r}")


def wgmma_b_operand_in_smem(version: str) -> bool:
    """True when operand B must reside in shared memory (Hopper wgmma_SS)."""
    return version == "v3"


def stsm_staging_bytes(tile_n: int, head_dim: int) -> int:
    """Bytes `STSM` stores per dequantized K/V tile pair on the v3 path."""
    return 2 * tile_n * head_dim * 2


def uses_ldmatrix(version: str) -> bool:
    """The fp4 path feeds packed data straight to the MMA; v2/v3 use
    ``ldmatrix`` to load fragments."""
    return version in ("v2", "v3")
