"""Tensor-Core fragment layouts and BitDecoding's layout induction.

A Tensor-Core ``mma`` instruction reads its operands from registers in a
rigid, *interleaved* thread-to-value mapping (the "fragment layout",
Fig. 3a).  ``ldmatrix`` is the load instruction that deposits a shared-memory
tile into exactly that mapping.  BitDecoding's key insight (Sec. IV-A(1)) is:

    if each thread quantizes and packs *the values it already holds in its
    fragment*, the packed low-bit buffer implicitly preserves the fragment
    order — so when the Packing Kernel later loads the packed words with the
    same ``ldmatrix`` configuration and unpacks thread-locally, every value
    is already in the register slot the ``mma`` expects.  No global
    reshuffle ever happens.

Packing the quantized tile *contiguously* instead (row-major, Fig. 3b)
breaks this: after unpacking, values sit in the wrong lanes and the MMA
computes garbage.  Both behaviours are implemented here so tests and
benchmarks can demonstrate the validity argument, not just assert it.

Layouts are modelled as explicit permutations between tile coordinates
``(row, col)`` and fragment coordinates ``(lane, slot)`` for a 32-thread
warp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.core.packing import pack_values, packing_ratio, unpack_values

WARP_LANES = 32


@dataclass(frozen=True)
class FragmentLayout:
    """A warp-level fragment layout for one MMA operand tile.

    ``rows`` x ``cols`` values are distributed over 32 lanes with
    ``values_per_lane`` register slots each.  ``coords`` maps
    ``(lane, slot) -> (row, col)``; the inverse is derived and cached.
    """

    name: str
    rows: int
    cols: int
    coords: Callable[[int, int], Tuple[int, int]]

    def __post_init__(self) -> None:
        if (self.rows * self.cols) % WARP_LANES != 0:
            raise ValueError("tile size must be divisible by the warp width")

    @property
    def values_per_lane(self) -> int:
        return (self.rows * self.cols) // WARP_LANES

    def lane_slot_table(self) -> np.ndarray:
        """``(32, values_per_lane, 2)`` array of (row, col) per register slot."""
        table = np.empty((WARP_LANES, self.values_per_lane, 2), dtype=np.int64)
        for lane in range(WARP_LANES):
            for slot in range(self.values_per_lane):
                row, col = self.coords(lane, slot)
                if not (0 <= row < self.rows and 0 <= col < self.cols):
                    raise ValueError(
                        f"{self.name}: (lane {lane}, slot {slot}) maps to "
                        f"out-of-tile coordinate ({row}, {col})"
                    )
                table[lane, slot] = (row, col)
        return table

    def validate_bijective(self) -> None:
        """Raise unless every tile element is owned by exactly one slot."""
        table = self.lane_slot_table().reshape(-1, 2)
        seen = set(map(tuple, table))
        if len(seen) != self.rows * self.cols:
            raise ValueError(f"{self.name}: fragment mapping is not a bijection")

    # ---- fragment gather / scatter ---------------------------------------

    def gather(self, tile: np.ndarray) -> np.ndarray:
        """Distribute a ``(rows, cols)`` tile into ``(32, values_per_lane)``.

        This is what ``ldmatrix`` does: after it, lane ``i`` holds
        ``frag[i, :]`` in registers.
        """
        tile = np.asarray(tile)
        if tile.shape != (self.rows, self.cols):
            raise ValueError(
                f"{self.name} expects a ({self.rows}, {self.cols}) tile, "
                f"got {tile.shape}"
            )
        table = self.lane_slot_table()
        return tile[table[..., 0], table[..., 1]]

    def scatter(self, frag: np.ndarray, dtype=None) -> np.ndarray:
        """Inverse of :meth:`gather`: registers back to a tile."""
        frag = np.asarray(frag)
        expected = (WARP_LANES, self.values_per_lane)
        if frag.shape != expected:
            raise ValueError(f"{self.name} expects fragment shape {expected}, got {frag.shape}")
        table = self.lane_slot_table()
        tile = np.empty((self.rows, self.cols), dtype=dtype or frag.dtype)
        tile[table[..., 0], table[..., 1]] = frag
        return tile


# ---------------------------------------------------------------------------
# Concrete layouts (PTX ISA fragment definitions)
# ---------------------------------------------------------------------------


def _mma_m16n8k16_b(lane: int, slot: int) -> Tuple[int, int]:
    """Operand B of ``mma.m16n8k16`` (K x N = 16 x 8, Fig. 3a).

    Lane ``t`` owns column ``t // 4``; its four slots cover rows
    ``2r, 2r+1, 2r+8, 2r+9`` with ``r = t % 4`` — the interleaved split
    between the two K-halves that makes contiguous packing invalid.
    """
    group = lane // 4
    r = lane % 4
    row = 2 * r + (slot % 2) + 8 * (slot // 2)
    return row, group


def _mma_m16n8k8_b(lane: int, slot: int) -> Tuple[int, int]:
    """Operand B of ``mma.m16n8k8`` (K x N = 8 x 8): two slots per lane."""
    group = lane // 4
    r = lane % 4
    row = 2 * r + (slot % 2)
    return row, group


def _mma_m16n8k16_a(lane: int, slot: int) -> Tuple[int, int]:
    """Operand A of ``mma.m16n8k16`` (M x K = 16 x 16): eight slots."""
    group = lane // 4
    r = lane % 4
    row = group + 8 * ((slot % 4) // 2)
    col = 2 * r + (slot % 2) + 8 * (slot // 4)
    return row, col


def _mma_m16n8_c(lane: int, slot: int) -> Tuple[int, int]:
    """Accumulator C/D of ``mma.m16n8kX`` (M x N = 16 x 8): four slots."""
    group = lane // 4
    r = lane % 4
    row = group + 8 * (slot // 2)
    col = 2 * r + (slot % 2)
    return row, col


MMA_M16N8K16_B = FragmentLayout("mma.m16n8k16.B", 16, 8, _mma_m16n8k16_b)
MMA_M16N8K8_B = FragmentLayout("mma.m16n8k8.B", 8, 8, _mma_m16n8k8_b)
MMA_M16N8K16_A = FragmentLayout("mma.m16n8k16.A", 16, 16, _mma_m16n8k16_a)
MMA_M16N8_C = FragmentLayout("mma.m16n8.C", 16, 8, _mma_m16n8_c)

#: Layout registry by instruction name.  Hopper's ``wgmma`` sources operand
#: B from shared memory (SS variant), so the B "layout" question disappears
#: for it — see :mod:`repro.core.arch_support`.
FRAGMENT_LAYOUTS: Dict[str, FragmentLayout] = {
    layout.name: layout
    for layout in (MMA_M16N8K16_B, MMA_M16N8K8_B, MMA_M16N8K16_A, MMA_M16N8_C)
}


def tiled_layout(base: FragmentLayout, n_repeat: int) -> FragmentLayout:
    """Repeat a fragment layout ``n_repeat`` times along the N dimension.

    Fig. 3a shows ``mma.m16n8k16`` "with repeat tiling along the N
    dimension": a warp issues the instruction on ``n_repeat`` adjacent
    8-column tiles, so each lane accumulates ``n_repeat x values_per_lane``
    register slots.  This is how a lane comes to hold enough values to fill
    whole packed words at low bit widths (INT2 needs 8 values per 16-bit
    word; one 16 x 8 tile only gives a lane 4).
    """
    if n_repeat <= 0:
        raise ValueError("n_repeat must be positive")
    base_vpl = base.values_per_lane

    def coords(lane: int, slot: int) -> Tuple[int, int]:
        tile_idx, base_slot = divmod(slot, base_vpl)
        row, col = base.coords(lane, base_slot)
        return row, col + tile_idx * base.cols

    return FragmentLayout(
        name=f"{base.name}.x{n_repeat}",
        rows=base.rows,
        cols=base.cols * n_repeat,
        coords=coords,
    )


# ---------------------------------------------------------------------------
# Layout induction (Fig. 5): pack in fragment order
# ---------------------------------------------------------------------------


def induced_pack(
    qtile: np.ndarray,
    layout: FragmentLayout,
    bits: int,
    word_bits: int = 16,
    interleaved: bool = True,
) -> np.ndarray:
    """Pack a quantized tile in *fragment order* (the Residual Kernel's way).

    The tile is first gathered into fragments (as ``ldmatrix`` leaves it in
    registers after the attention MMA), then each lane packs its own slots
    into words.  The result is the warp's packed buffer with shape
    ``(32, values_per_lane / R)`` — lane-major, exactly as the threads would
    store it to the low-bit KV cache.
    """
    frag = layout.gather(qtile)
    ratio = packing_ratio(bits, word_bits)
    if layout.values_per_lane % ratio != 0:
        raise ValueError(
            f"{layout.name}: {layout.values_per_lane} values per lane is not "
            f"a multiple of the packing ratio {ratio}; pad the tile along N "
            "(this is what Eq. 1's residual block sizing guarantees)"
        )
    return pack_values(frag, bits, word_bits, interleaved=interleaved)


def induced_unpack(
    packed: np.ndarray,
    layout: FragmentLayout,
    bits: int,
    word_bits: int = 16,
    interleaved: bool = True,
) -> np.ndarray:
    """Unpack a fragment-order packed buffer back to a tile.

    Models the Packing Kernel: ``ldmatrix`` hands each lane its own packed
    words; thread-local unpacking then lands every value in the register
    slot the MMA expects, so scattering reproduces the tile exactly.  This
    round-trip being the identity *is* the paper's zero-cost layout claim.
    """
    frag = unpack_values(packed, bits, word_bits, interleaved=interleaved)
    return layout.scatter(frag)


def contiguous_pack(qtile: np.ndarray, bits: int, word_bits: int = 16) -> np.ndarray:
    """Pack a quantized tile row-major (the naive layout of Fig. 3b)."""
    qtile = np.asarray(qtile)
    flat = qtile.reshape(1, -1)
    return pack_values(flat, bits, word_bits, interleaved=False)


def mismatched_unpack(
    packed_contiguous: np.ndarray,
    layout: FragmentLayout,
    bits: int,
    word_bits: int = 16,
) -> np.ndarray:
    """What the MMA *actually sees* if the cache was packed contiguously.

    The Packing Kernel distributes packed words to lanes as if they were in
    fragment order; with a contiguous buffer the words land on the wrong
    lanes, so after unpack+scatter the tile is a permutation of the truth.
    Returns that (generally wrong) tile so callers can show the corruption.
    """
    ratio = packing_ratio(bits, word_bits)
    if layout.values_per_lane % ratio != 0:
        raise ValueError(
            f"{layout.name}: lane holds {layout.values_per_lane} values, "
            f"not a multiple of packing ratio {ratio}"
        )
    words_per_lane = layout.values_per_lane // ratio
    words = np.asarray(packed_contiguous).reshape(WARP_LANES, words_per_lane)
    frag = unpack_values(words, bits, word_bits, interleaved=False)
    return layout.scatter(frag)


# ---------------------------------------------------------------------------
# Block-level packing: a whole residual block through the fragment layout
# ---------------------------------------------------------------------------

_BLOCK_INDEX_CACHE: Dict[Tuple[str, int, int], Tuple[np.ndarray, np.ndarray]] = {}


def _block_fragment_indices(
    layout: FragmentLayout, n_rows: int, n_cols: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Index arrays mapping a block to warp-fragment storage order.

    The block is covered by a grid of ``layout.rows x layout.cols`` tiles;
    storage order is ``[tile_row, tile_col, lane, slot]`` — each lane's
    slots are contiguous, so thread-local packing produces contiguous words.
    Returns ``(row_idx, col_idx)`` of shape
    ``(tiles_r, tiles_c, 32, values_per_lane)``; cached per layout/shape.
    """
    key = (layout.name, n_rows, n_cols)
    if key in _BLOCK_INDEX_CACHE:
        return _BLOCK_INDEX_CACHE[key]
    if n_rows % layout.rows or n_cols % layout.cols:
        raise ValueError(
            f"block ({n_rows} x {n_cols}) is not a multiple of the "
            f"{layout.name} tile ({layout.rows} x {layout.cols})"
        )
    table = layout.lane_slot_table()  # (32, vpl, 2)
    tiles_r, tiles_c = n_rows // layout.rows, n_cols // layout.cols
    tr = np.arange(tiles_r)[:, None, None, None]
    tc = np.arange(tiles_c)[None, :, None, None]
    row_idx = tr * layout.rows + table[None, None, :, :, 0]
    col_idx = tc * layout.cols + table[None, None, :, :, 1]
    full = (tiles_r, tiles_c, WARP_LANES, layout.values_per_lane)
    row_idx = np.broadcast_to(row_idx, full).copy()
    col_idx = np.broadcast_to(col_idx, full).copy()
    _BLOCK_INDEX_CACHE[key] = (row_idx, col_idx)
    return row_idx, col_idx


_BLOCK_OFFSET_CACHE: Dict[Tuple[str, int, int, bool], Tuple[np.ndarray, np.ndarray]] = {}


def block_fragment_offsets(
    layout: FragmentLayout, n_rows: int, n_cols: int, transposed: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Flattened gather/scatter offsets between a block and fragment order.

    ``flat[slot]`` is the offset of fragment slot ``slot`` (storage order
    ``[tile_row, tile_col, lane, slot]``, raveled) into the C-contiguous
    block — of shape ``(n_rows, n_cols)``, or ``(n_cols, n_rows)`` when
    ``transposed`` (the K operand's case: indices address the packing
    orientation while the codes live transposed).  ``inv`` is the inverse
    permutation, turning the scatter back into a gather: ``np.take`` with
    these is far faster than advanced indexing on 10^8-element caches.
    """
    key = (layout.name, n_rows, n_cols, transposed)
    if key in _BLOCK_OFFSET_CACHE:
        return _BLOCK_OFFSET_CACHE[key]
    row_idx, col_idx = _block_fragment_indices(layout, n_rows, n_cols)
    if transposed:
        flat = (col_idx * n_rows + row_idx).ravel()
    else:
        flat = (row_idx * n_cols + col_idx).ravel()
    inv = np.empty_like(flat)
    inv[flat] = np.arange(flat.size, dtype=flat.dtype)
    _BLOCK_OFFSET_CACHE[key] = (flat, inv)
    return flat, inv


def block_fragment_pack(
    qblock: np.ndarray,
    layout: FragmentLayout,
    bits: int,
    word_bits: int = 16,
    interleaved: bool = True,
) -> np.ndarray:
    """Pack a whole quantized block (e.g. ``N_r x d``) in fragment order.

    Vectorized equivalent of running :func:`induced_pack` over every tile of
    the block.  Returns the packed words in storage order, shape
    ``(tiles_r, tiles_c, 32, words_per_lane)``.
    """
    qblock = np.asarray(qblock)
    row_idx, col_idx = _block_fragment_indices(layout, *qblock.shape)
    frag = qblock[row_idx, col_idx]  # (tr, tc, 32, vpl)
    return pack_values(frag, bits, word_bits, interleaved=interleaved)


def block_fragment_unpack(
    packed: np.ndarray,
    block_shape: Tuple[int, int],
    layout: FragmentLayout,
    bits: int,
    word_bits: int = 16,
    interleaved: bool = True,
) -> np.ndarray:
    """Inverse of :func:`block_fragment_pack`: packed words back to a block."""
    frag = unpack_values(packed, bits, word_bits, interleaved=interleaved)
    row_idx, col_idx = _block_fragment_indices(layout, *block_shape)
    block = np.empty(block_shape, dtype=frag.dtype)
    block[row_idx, col_idx] = frag
    return block


def layouts_match(layout_store: FragmentLayout, layout_load: FragmentLayout) -> bool:
    """True when packing under one layout and unpacking under another is safe.

    The paper's coordination rule (Sec. IV-A(4)): the Residual Kernel and
    the Packing Kernel must use the *same* ``ldmatrix``/``mma`` variant.
    Two layouts are compatible exactly when their lane/slot tables agree.
    """
    if (layout_store.rows, layout_store.cols) != (layout_load.rows, layout_load.cols):
        return False
    return bool(np.array_equal(layout_store.lane_slot_table(), layout_load.lane_slot_table()))
