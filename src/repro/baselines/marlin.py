"""Marlin repack cost model (Table II).

Marlin (Frantar et al., 2024) is a weight-only mpGEMM kernel: it expects
its low-bit operand in a bespoke interleaved layout produced by an
*offline* repacking utility.  Applying it to a KV cache means running that
pre-transform on data that changes every step.  Marlin's packer is a
host-side utility: tensors round-trip over PCIe, get permuted on the CPU,
and return — fine offline, prohibitive online (58 ms for a 128K-context
cache; 0.41 ms *per decoded token*).

This module models that mechanism: PCIe transfers both ways, a host-side
permutation pass, and fixed transfer/launch latencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AttentionGeometry
from repro.gpu.arch import ArchSpec

#: Effective host<->device bandwidth (PCIe 4.0 x16, one direction).
_PCIE_BW_GBS = 17.5
#: Host-side permutation throughput (single-threaded numpy-style repack).
_HOST_PERMUTE_GBS = 40.0
#: Fixed host<->device round-trip latency (sync + transfer setup).
_PCIE_ROUND_TRIP_MS = 0.12


@dataclass
class MarlinRepack:
    """Cost of (re)packing a KV cache into Marlin's weight layout."""

    arch: ArchSpec
    bits: int = 4

    @property
    def name(self) -> str:
        return "Marlin"

    def prefill_latency_ms(self, geom: AttentionGeometry) -> float:
        """Repack an entire prefilled cache (offline-style pre-transform)."""
        fp16_bytes = geom.kv_bytes_fp16
        packed_bytes = geom.kv_elements * self.bits / 8.0
        down = fp16_bytes / (_PCIE_BW_GBS * 1e9)
        permute = fp16_bytes / (_HOST_PERMUTE_GBS * 1e9)
        up = packed_bytes / (_PCIE_BW_GBS * 1e9)
        return (down + permute + up) * 1e3 + _PCIE_ROUND_TRIP_MS

    def decode_latency_ms(self, geom: AttentionGeometry) -> float:
        """Per-token cost: the new block round-trips the host each step."""
        block_bytes = 2.0 * geom.batch * geom.hkv * 128 * geom.head_dim * 2.0
        transfer = 2.0 * block_bytes / (_PCIE_BW_GBS * 1e9)
        permute = block_bytes / (_HOST_PERMUTE_GBS * 1e9)
        return (transfer + permute) * 1e3 + 2.0 * _PCIE_ROUND_TRIP_MS
