"""KIVI baseline: non-fused low-bit attention with separated kernels.

KIVI (Liu et al., 2024) implements 2-/4-bit KV attention as a chain of
standalone Triton kernels: a QK kernel (dequantizing K tile-by-tile but
writing the full score matrix to global memory), a softmax kernel, and a
PV kernel, plus small quantization kernels for newly appended tokens.  The
paper's critique (Sec. II):

- the isolated launches repeatedly move intermediates through global
  memory and pay per-kernel launch overhead;
- kernels parallelize over *query* heads with no sequence split, so small
  batches underfill the machine and GQA re-streams each KV head ``g_q``
  times;
- the non-tiled formulation materializes the full score matrix — which is
  also why long-context prefill OOMs (Fig. 12a).

Numerics use the same integer quantization substrate as BitDecoding, so
accuracy comparisons are apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.common import gqa_reread_traffic, int_kv_metadata_bytes
from repro.core.config import AttentionGeometry
from repro.gpu.arch import ArchSpec
from repro.gpu.instructions import dequant_ops, softmax_ops
from repro.gpu.kernel import KernelLaunch, KernelResult, simulate_kernel
from repro.gpu.sm import occupancy
from repro.gpu.trace import AccessPattern, OpTrace
from repro.gpu.warp import memory_hide_factor

#: Kernel launches per decode step: QK, softmax, PV, token quant, append.
_KIVI_LAUNCHES = 5

_KIVI_WARPS = 4


@dataclass
class Kivi:
    """Non-fused low-bit attention (KIVI-4 / KIVI-2)."""

    arch: ArchSpec
    bits: int = 4
    group_size: int = 32  # KIVI quantizes in groups of 32 along seq

    def __post_init__(self) -> None:
        if self.bits not in (2, 4):
            raise ValueError("KIVI supports 2- and 4-bit caches")

    @property
    def name(self) -> str:
        return f"KIVI-{self.bits}"

    # -------------------------------------------------------------- numerics

    def run_numeric(self, q: np.ndarray, k_hat: np.ndarray, v_hat: np.ndarray) -> np.ndarray:
        """Non-fused attention: full score matrix materialized (no tiling).

        ``k_hat``/``v_hat`` are dequantized rows (the quantization error is
        applied by the shared substrate); this mirrors KIVI's numerics,
        which match any other correct softmax up to float associativity.
        """
        q = np.asarray(q, dtype=np.float32)
        s = (q @ np.asarray(k_hat, np.float32).T) / math.sqrt(q.shape[-1])
        s = s - s.max(axis=-1, keepdims=True)
        p = np.exp(s)
        p /= p.sum(axis=-1, keepdims=True)
        return p @ np.asarray(v_hat, np.float32)

    # ------------------------------------------------------------------ perf

    def build_launch(self, geom: AttentionGeometry) -> KernelLaunch:
        d = geom.head_dim
        heads = geom.batch * geom.hkv

        packed_bytes = geom.kv_elements * self.bits / 8.0
        meta_bytes = int_kv_metadata_bytes(geom, self.group_size)
        dram_kv, l2_kv = gqa_reread_traffic(self.arch, geom, packed_bytes + meta_bytes)

        trace = OpTrace()
        # KIVI's packed layout interleaves group-of-32 metadata with data;
        # the Triton GEMV tiles read it at roughly half coalescing.
        trace.gmem_read(dram_kv * 0.5)
        trace.gmem_read(dram_kv * 0.5, AccessPattern.STRIDED)
        trace.l2_read(l2_kv)
        # Intermediate score/probability matrices round-trip global memory:
        # QK writes S, softmax reads S writes P, PV reads P.
        s_bytes = geom.batch * geom.hq * geom.q_len * geom.seq_len * 2.0
        trace.gmem_read(2.0 * s_bytes)
        trace.gmem_write(2.0 * s_bytes)
        trace.gmem_read(geom.batch * geom.hq * geom.q_len * d * 2.0)  # Q
        trace.gmem_write(geom.batch * geom.hq * geom.q_len * d * 2.0)  # O

        # Matmuls run on tensor cores (Triton tl.dot); each query head is a
        # separate M=1 GEMV padded to the 16-row MMA tile.
        single_head_m_pad = 16.0
        trace.tensor_core(
            2.0 * 2.0 * geom.batch * geom.hq * single_head_m_pad * geom.seq_len * d,
            "fp16",
        )
        trace.merge(dequant_ops(geom.kv_elements * geom.gq, self.bits, "lop3"))
        trace.merge(
            softmax_ops(geom.batch * geom.hq * geom.q_len * geom.seq_len,
                        geom.batch * geom.hq * geom.q_len)
        )
        trace.smem_traffic(2.0 * packed_bytes)
        trace.barriers_per_block += 2.0

        # The GEMV kernels parallelize over sequence blocks (natural for a
        # (1, L) output), so occupancy is healthy; the non-fused costs are
        # the intermediate round trips, the launches, and the GQA re-reads.
        grid = geom.batch * geom.hq * max(1, math.ceil(geom.seq_len / 128))
        smem = 48 * 1024
        occ = occupancy(self.arch, grid, _KIVI_WARPS, smem)
        hide = memory_hide_factor(occ.blocks_per_sm * _KIVI_WARPS, pipelined=True)
        return KernelLaunch(
            name=self.name,
            trace=trace,
            grid_blocks=grid,
            warps_per_block=_KIVI_WARPS,
            smem_per_block_bytes=smem,
            hide_factor=hide,
            instruction_path="sm80",
            launches=_KIVI_LAUNCHES,
        )

    def decode_result(self, geom: AttentionGeometry) -> KernelResult:
        return simulate_kernel(self.arch, self.build_launch(geom))

    def decode_time_ms(self, geom: AttentionGeometry) -> float:
        return self.decode_result(geom).time_ms

    # -------------------------------------------------------------- capacity

    def prefill_workspace_bytes(self, geom: AttentionGeometry) -> float:
        """Peak prefill workspace: the materialized score matrix.

        Without block tiling, prefill attention holds an ``L x L`` score
        tile (FP16) per concurrently-processed head (two in flight).  This
        is the term that OOMs at 128K (Fig. 12a).
        """
        return 2.0 * float(geom.seq_len) ** 2 * 2.0

    def cache_bytes(self, geom: AttentionGeometry) -> float:
        return geom.kv_elements * self.bits / 8.0 + int_kv_metadata_bytes(geom, self.group_size)
