"""QServe baseline: fused low-bit attention on CUDA cores only.

QServe (Lin et al., 2024) fuses dequantization directly into a
FlashAttention-style kernel, but performs the matrix work as FMA-based
GEMV on CUDA cores — no Tensor-Core MMAs (Sec. II, Fig. 2).  Consequences
the paper measures:

- dequantization, scaling and the GEMV all compete for the same pipes, so
  nearly half the kernel time is dequant overhead (Fig. 15a);
- on GQA models the arithmetic intensity rises by ``g_q`` while the
  available FLOPs stay at CUDA-core level, so speedups collapse (4090:
  3.5x MHA -> 1.4x GQA, Fig. 10) — and on the A100, whose CUDA-core peak
  is lowest relative to its bandwidth, QServe lands *below* the FP16
  Tensor-Core baseline (Fig. 11);
- it supports paged caches (its native serving mode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.common import (
    CUDA_GEMV_EFFICIENCY,
    gqa_reread_traffic,
    int_kv_metadata_bytes,
)
from repro.core.config import AttentionGeometry
from repro.gpu.arch import ArchSpec
from repro.gpu.instructions import dequant_ops, softmax_ops
from repro.gpu.kernel import KernelLaunch, KernelResult, simulate_kernel
from repro.gpu.sm import occupancy
from repro.gpu.trace import AccessPattern, OpTrace
from repro.gpu.warp import memory_hide_factor

_QSERVE_WARPS = 4


@dataclass
class QServe:
    """Fused CUDA-core-only low-bit decode attention (W4A8KV4's KV path)."""

    arch: ArchSpec
    bits: int = 4
    group_size: int = 64

    @property
    def name(self) -> str:
        return "QServe"

    # -------------------------------------------------------------- numerics

    def run_numeric(self, q: np.ndarray, k_hat: np.ndarray, v_hat: np.ndarray) -> np.ndarray:
        """Fused online-softmax attention (numerically standard)."""
        from repro.core.softmax import split_kv_attention

        return split_kv_attention(q, k_hat, v_hat, n_splits=1)

    # ------------------------------------------------------------------ perf

    def build_launch(self, geom: AttentionGeometry, paged: bool = True) -> KernelLaunch:
        d = geom.head_dim
        packed_bytes = geom.kv_elements * self.bits / 8.0
        meta_bytes = int_kv_metadata_bytes(geom, self.group_size)
        dram_kv, l2_kv = gqa_reread_traffic(self.arch, geom, packed_bytes + meta_bytes)

        trace = OpTrace()
        pattern = AccessPattern.STRIDED if paged else AccessPattern.COALESCED
        trace.gmem_read(dram_kv, pattern)
        trace.l2_read(l2_kv)
        trace.gmem_read(geom.batch * geom.hq * geom.q_len * d * 2.0)
        trace.gmem_write(geom.batch * geom.hq * geom.q_len * d * 2.0)
        if paged:
            trace.gmem_read(
                geom.batch * geom.hkv * (geom.seq_len / 64.0) * 8.0,
                AccessPattern.SCATTERED,
            )

        # Both GEMVs on CUDA cores; FMA GEMV sustains a fraction of peak, so
        # the effective FLOP cost is inflated by 1/efficiency.
        gemv_flops = 2.0 * 2.0 * geom.batch * geom.hq * geom.q_len * geom.seq_len * d
        trace.fma_flops += gemv_flops / CUDA_GEMV_EFFICIENCY

        # Dequant instructions interleave into the same FMA GEMV stream and
        # run at its degraded issue rate, so their cost inflates equally.
        dq = dequant_ops(geom.kv_elements * geom.gq, self.bits, "lop3").scaled(
            1.0 / CUDA_GEMV_EFFICIENCY
        )
        trace.merge(dq)
        trace.merge(
            softmax_ops(
                geom.batch * geom.hq * geom.q_len * geom.seq_len,
                geom.batch * geom.hq * geom.q_len,
            )
        )
        trace.smem_traffic(2.0 * packed_bytes)
        trace.barriers_per_block += 2.0

        grid = geom.batch * geom.hq  # query-head parallel, no split-KV
        smem = 32 * 1024
        occ = occupancy(self.arch, grid, _QSERVE_WARPS, smem)
        # Fused single kernel: loads overlap compute reasonably, but dequant
        # and GEMV share the CUDA pipes (nothing hides them under an MMA).
        hide = memory_hide_factor(occ.blocks_per_sm * _QSERVE_WARPS, pipelined=True)
        return KernelLaunch(
            name=self.name,
            trace=trace,
            grid_blocks=grid,
            warps_per_block=_QSERVE_WARPS,
            smem_per_block_bytes=smem,
            hide_factor=hide,
            instruction_path="sm80",
            launches=1,
            subtraces={"dequant": dq},
        )

    def decode_result(self, geom: AttentionGeometry, paged: bool = True) -> KernelResult:
        return simulate_kernel(self.arch, self.build_launch(geom, paged=paged))

    def decode_time_ms(self, geom: AttentionGeometry, paged: bool = True) -> float:
        return self.decode_result(geom, paged=paged).time_ms

    def cache_bytes(self, geom: AttentionGeometry) -> float:
        return geom.kv_elements * self.bits / 8.0 + int_kv_metadata_bytes(geom, self.group_size)
