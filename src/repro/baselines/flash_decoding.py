"""FP16 baselines: FlashDecoding-v2 and the FlashAttention-2/3 decode path.

FlashDecoding (the paper's speedup-normalization baseline) is
FlashAttention-2's decode kernel with split-KV partitioning: the KV
sequence is divided across thread blocks so small-batch decode still fills
the machine, and a reduction kernel merges the partial softmax states.
``FlashAttention2`` is the same kernel without the split (the "Flash-attn-
v2" series of Figs. 9/11).  ``FlashDecodingV3`` is the Hopper rebuild with
``wgmma`` + TMA (the "Flash-attn-v3" series) — it escapes the ~35% legacy
SM80 instruction penalty.

All of them read the *FP16* cache; their numerics are exact attention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.common import attention_gflops
from repro.core.config import AttentionGeometry
from repro.core.query_transform import gemm_m_dimension
from repro.core.softmax import split_kv_attention
from repro.gpu.arch import ArchSpec
from repro.gpu.instructions import rescale_accum_ops, softmax_ops
from repro.gpu.kernel import KernelLaunch, KernelResult, simulate_kernel
from repro.gpu.sm import occupancy
from repro.gpu.trace import AccessPattern, OpTrace
from repro.gpu.warp import memory_hide_factor

#: FlashAttention-2 decode warp layout: all warps along M (the layout the
#: paper's Fig. 4 discusses); fine for FP16 since there is no dequant to
#: stall on.
_FA2_WARPS = 4


@dataclass
class FlashDecodingV2:
    """FP16 split-KV decode attention (the 1.0x reference)."""

    arch: ArchSpec
    tile_n: int = 128
    split_kv: bool = True
    name: str = "FlashDecoding-v2"

    # -------------------------------------------------------------- numerics

    def run_numeric(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray, n_splits: int = 4
    ) -> np.ndarray:
        """Exact FP16 attention for one head: ``q (M, d)``, ``k/v (L, d)``."""
        if not self.split_kv:
            n_splits = 1
        return split_kv_attention(q, k, v, n_splits, tile_n=self.tile_n)

    # ------------------------------------------------------------------ perf

    def n_splits(self, geom: AttentionGeometry) -> int:
        if not self.split_kv:
            return 1
        base_blocks = geom.batch * geom.hkv
        tiles = max(1, math.ceil(geom.seq_len / self.tile_n))
        want = max(1, (2 * self.arch.sm_count) // max(base_blocks, 1))
        return max(1, min(want, tiles))

    def build_launch(self, geom: AttentionGeometry, paged: bool = False) -> KernelLaunch:
        d = geom.head_dim
        _, m_pad = gemm_m_dimension(geom.hq, geom.hkv, geom.q_len)
        heads = geom.batch * geom.hkv
        splits = self.n_splits(geom)

        trace = OpTrace()
        pattern = AccessPattern.STRIDED if paged else AccessPattern.COALESCED
        trace.gmem_read(geom.kv_bytes_fp16, pattern)
        trace.gmem_read(heads * splits * m_pad * d * 2.0)  # Q per block
        if splits > 1:
            partial = heads * splits * m_pad * (d + 2.0) * 4.0
            trace.gmem_write(partial)
            trace.gmem_read(partial)
            trace.gmem_write(heads * m_pad * d * 2.0)
        else:
            trace.gmem_write(heads * m_pad * d * 2.0)

        trace.tensor_core(attention_gflops(geom, m_pad), "fp16")
        trace.merge(softmax_ops(heads * m_pad * geom.seq_len, heads * m_pad))
        tiles = heads * math.ceil(geom.seq_len / self.tile_n)
        trace.merge(rescale_accum_ops(m_pad * d * tiles))
        # FP16 tiles staged through smem (cp.async in + ldmatrix out).
        trace.smem_traffic(2.0 * geom.kv_bytes_fp16)
        trace.barriers_per_block += 2.0 * math.ceil(geom.seq_len / (splits * self.tile_n))

        grid = heads * splits
        # K+V FP16 tiles + Q; double-buffer only where the SM has room
        # (consumer parts run these kernels single-buffered).
        tile_pair = 2 * self.tile_n * d * 2
        smem = int(tile_pair + m_pad * d * 2 + 2048)
        if smem + tile_pair <= self.arch.smem_per_sm_bytes:
            smem += tile_pair
        occ = occupancy(self.arch, grid, _FA2_WARPS, smem)
        # FP16 kernels have no dequantization to stall on; overlap quality
        # is set by the cp.async double buffering and resident warps.
        hide = memory_hide_factor(occ.blocks_per_sm * _FA2_WARPS, pipelined=True)
        return KernelLaunch(
            name=self.name,
            trace=trace,
            grid_blocks=grid,
            warps_per_block=_FA2_WARPS,
            smem_per_block_bytes=smem,
            hide_factor=hide,
            instruction_path=self._instruction_path(),
            launches=2 if splits > 1 else 1,
        )

    def _instruction_path(self) -> str:
        return "sm80"

    def decode_result(self, geom: AttentionGeometry, paged: bool = False) -> KernelResult:
        return simulate_kernel(self.arch, self.build_launch(geom, paged=paged))

    def decode_time_ms(self, geom: AttentionGeometry, paged: bool = False) -> float:
        return self.decode_result(geom, paged=paged).time_ms


@dataclass
class FlashAttention2(FlashDecodingV2):
    """FlashAttention-2 decode without split-KV (``Flash-attn-v2``)."""

    split_kv: bool = False
    name: str = "Flash-attn-v2"


@dataclass
class FlashDecodingV3(FlashDecodingV2):
    """Hopper rebuild: ``wgmma`` warpgroups + TMA (``Flash-attn-v3``).

    Needs a device with warpgroup MMA; on anything else construction of a
    launch raises, mirroring the real kernel's SM90 requirement.
    """

    name: str = "Flash-attn-v3"

    def _instruction_path(self) -> str:
        return "sm90"

    def build_launch(self, geom: AttentionGeometry, paged: bool = False) -> KernelLaunch:
        launch = super().build_launch(geom, paged=paged)
        # Warp-specialized producer/consumer pipeline: better overlap.
        launch.hide_factor = min(1.0, launch.hide_factor + 0.15)
        return launch
