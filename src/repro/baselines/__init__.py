"""Baseline systems the paper compares against.

==================  =============================  =========================
system              design                          weakness the paper shows
==================  =============================  =========================
FlashDecoding-v2    FP16, Tensor Cores, split-KV    2x cache bytes
FlashAttention-2    FP16, no split                  underfills at batch=1
FlashAttention-3    FP16, Hopper wgmma/TMA          still 2x cache bytes
KIVI                low-bit, separated kernels      launches + traffic, GQA
QServe              low-bit, fused, CUDA cores      no Tensor Cores, GQA
Atom                low-bit, fused, CUDA cores      MHA only, naive casts
Marlin              weight repack utility           host-side pre-transform
Ladder              weight layout compiler          static-shape transforms
ContinuousPacking   repack every step               Fig. 16 baseline
==================  =============================  =========================
"""

from repro.baselines.atom import Atom
from repro.baselines.continuous_packing import ContinuousPacking, ablation_config
from repro.baselines.flash_decoding import (
    FlashAttention2,
    FlashDecodingV2,
    FlashDecodingV3,
)
from repro.baselines.kivi import Kivi
from repro.baselines.ladder import LadderTransform
from repro.baselines.marlin import MarlinRepack
from repro.baselines.qserve import QServe

__all__ = [
    "Atom",
    "ContinuousPacking",
    "ablation_config",
    "FlashAttention2",
    "FlashDecodingV2",
    "FlashDecodingV3",
    "Kivi",
    "LadderTransform",
    "MarlinRepack",
    "QServe",
]
