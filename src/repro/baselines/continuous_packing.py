"""Continuous-packing baseline for the Fig. 16 breakdown.

Following the QuaRot-style approach the paper uses as its breakdown
baseline ([2], Sec. VI-C): the low-bit cache is quantized and re-packed at
*every* generation step — a full pass over the packed data to keep the
layout valid after each append — and the attention kernel itself runs
without BitDecoding's layout induction (so every tile pays an explicit
layout transform), with the original ``Wn = 1`` warp design, and without
the software pipeline.

The three optimizations are then enabled cumulatively via the config
flags, which is exactly how ``benchmarks/bench_fig16_breakdown.py`` builds
the bars:

====================  ==========================================
bar                   config
====================  ==========================================
Baseline              repack pass + all three flags off
+ Layout              repack pass dropped, induction on
+ Layout + Warps      ... and ``use_warp_parallel`` on
+ ... + Pipeline      full BitDecoding
====================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import AttentionGeometry, BitDecodingConfig
from repro.core.packing_kernel import build_packing_launch
from repro.gpu.arch import ArchSpec
from repro.gpu.instructions import quant_pack_ops
from repro.gpu.kernel import KernelLaunch, KernelResult, simulate_kernel
from repro.gpu.trace import OpTrace


def ablation_config(
    base: BitDecodingConfig, layout: bool, warps: bool, pipeline: bool
) -> BitDecodingConfig:
    """Config with the breakdown's three knobs set explicitly."""
    return base.with_overrides(
        use_layout_induction=layout,
        use_warp_parallel=warps,
        use_pipeline=pipeline,
    )


def build_repack_launch(
    geom: AttentionGeometry, config: BitDecodingConfig, arch: ArchSpec
) -> KernelLaunch:
    """Per-step full-cache repack pass of the continuous-packing baseline."""
    packed_bytes = geom.kv_elements * config.bits / 8.0
    trace = OpTrace()
    trace.gmem_read(packed_bytes)
    trace.gmem_write(packed_bytes)
    trace.merge(quant_pack_ops(float(geom.kv_elements), config.bits, config.key_group_size))
    return KernelLaunch(
        name="continuous_repack",
        trace=trace,
        grid_blocks=max(1, geom.batch * geom.hkv * (geom.seq_len // 512)),
        warps_per_block=4,
        smem_per_block_bytes=16 * 1024,
        hide_factor=0.8,
        instruction_path="sm80",
        launches=1,
    )


@dataclass
class ContinuousPacking:
    """The full breakdown baseline: repack pass + unoptimized attention."""

    arch: ArchSpec
    config: BitDecodingConfig

    def decode_results(self, geom: AttentionGeometry) -> List[KernelResult]:
        cfg = ablation_config(self.config, layout=False, warps=False, pipeline=False)
        attention = build_packing_launch(geom, cfg, self.arch)
        repack = build_repack_launch(geom, cfg, self.arch)
        return [
            simulate_kernel(self.arch, repack),
            simulate_kernel(self.arch, attention),
        ]

    def decode_time_ms(self, geom: AttentionGeometry) -> float:
        return sum(r.time_ms for r in self.decode_results(geom))
