"""Shared modelling helpers for the baseline systems.

The baselines differ from BitDecoding along three axes the paper analyses:

1. **Fusion** — KIVI launches separate kernels per attention stage
   (inflated launches + intermediate global traffic); Atom/QServe fuse but
   run everything on CUDA cores; BitDecoding fuses and splits work across
   both pipes.
2. **Compute placement** — CUDA-core FMA GEMV attention sustains a small
   fraction of the cores' peak (register bandwidth, no MMA operand reuse);
   :data:`CUDA_GEMV_EFFICIENCY` captures it.
3. **GQA handling** — kernels that parallelize over *query* heads stream
   each KV head ``g_q`` times; repeated reads partially hit in L2.
"""

from __future__ import annotations

from repro.core.config import AttentionGeometry
from repro.gpu.arch import ArchSpec

#: Fraction of CUDA-core peak a fused FMA-based attention GEMV sustains.
#: FMA pipelines lack the operand reuse of MMA fragments: every
#: multiply-accumulate needs fresh register file bandwidth, and the same
#: instructions also issue the dequant/scale math.
CUDA_GEMV_EFFICIENCY = 0.25

#: Cap on the L2 hit rate of repeated KV streams: the blocks re-reading a
#: KV head are only partially co-scheduled with the block that brought it
#: in, so even a cache-resident stream misses about half its repeats.
L2_HIT_CAP = 0.5


def l2_hit_fraction(arch: ArchSpec, stream_bytes: float) -> float:
    """Expected L2 hit rate when a KV stream of ``stream_bytes`` is re-read.

    When the concurrently-live stream fits in L2, repeats mostly hit
    (capped at :data:`L2_HIT_CAP`); beyond that, hits decay with the
    ratio of cache to stream.
    """
    if stream_bytes <= 0:
        return L2_HIT_CAP
    l2_bytes = arch.l2_size_mb * 1024 * 1024
    return min(L2_HIT_CAP, l2_bytes / stream_bytes)


def gqa_reread_traffic(arch: ArchSpec, geom: AttentionGeometry, kv_bytes: float) -> tuple:
    """(DRAM bytes, L2 bytes) for a kernel that streams KV per *query* head.

    The cache is semantically ``kv_bytes``; a query-head-parallel kernel
    reads it ``g_q`` times.  Repeats hit L2 at :func:`l2_hit_fraction` of
    the per-step working set.
    """
    gq = geom.gq
    if gq <= 1:
        return kv_bytes, 0.0
    hit = l2_hit_fraction(arch, kv_bytes)
    repeats = (gq - 1) * kv_bytes
    dram = kv_bytes + repeats * (1.0 - hit)
    l2 = repeats * hit
    return dram, l2


def int_kv_metadata_bytes(geom: AttentionGeometry, group_size: int, seq_len: float = None) -> float:
    """half2 scale/zero bytes for an integer-quantized KV cache.

    Assumes channel-wise keys (one half2 per channel per ``group_size``
    tokens) and per-token values (one half2 per token) — the configuration
    every system in the evaluation shares.
    """
    seq = geom.seq_len if seq_len is None else seq_len
    heads = geom.batch * geom.hkv
    k_meta = heads * geom.head_dim * (seq / group_size) * 4.0
    v_meta = heads * seq * 4.0
    return k_meta + v_meta


def attention_gflops(geom: AttentionGeometry, m_rows: float) -> float:
    """FLOPs of QK^T + PV when the kernel computes ``m_rows`` query rows
    per KV head (padded rows included — they occupy the pipes)."""
    return 2.0 * 2.0 * geom.batch * geom.hkv * m_rows * geom.seq_len * geom.head_dim
